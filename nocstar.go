// Package nocstar is a from-scratch reproduction of "Scalable Distributed
// Last-Level TLBs Using Low-Latency Interconnects" (Bharadwaj, Cox,
// Krishna, Bhattacharjee — MICRO 2018).
//
// NOCSTAR organizes a shared last-level TLB as per-core slices connected
// by a latchless, circuit-switched interconnect with near single-cycle
// traversal, combining the hit rates of shared TLBs with the access
// latency of private ones. This package exposes the cycle-level simulator
// of the full design space — private, monolithic-banked, distributed-mesh
// and NOCSTAR last-level TLBs over Haswell-class cores with transparent
// superpages, page-table walkers, shootdowns, prefetching and SMT — plus
// the synthetic workload suite and the drivers that regenerate every
// table and figure of the paper's evaluation.
//
// Quick start:
//
//	spec, _ := nocstar.WorkloadByName("canneal")
//	baseline, _ := nocstar.Run(nocstar.Config{
//		Org:   nocstar.Private,
//		Cores: 16,
//		Apps:  []nocstar.App{{Spec: spec, Threads: 16, HammerSlice: nocstar.HammerNone}},
//	})
//	result, _ := nocstar.Run(nocstar.Config{
//		Org:   nocstar.Nocstar,
//		Cores: 16,
//		Apps:  []nocstar.App{{Spec: spec, Threads: 16, HammerSlice: nocstar.HammerNone}},
//	})
//	fmt.Printf("speedup: %.2fx\n", result.SpeedupOver(baseline))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package nocstar

import (
	"context"
	"io"

	"nocstar/internal/experiments"
	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/system"
	"nocstar/internal/trace"
	"nocstar/internal/workload"
)

// Config describes one simulated machine and run.
type Config = system.Config

// App is one application of a (possibly multiprogrammed) workload mix.
type App = system.App

// Result is the outcome of a run.
type Result = system.Result

// AppResult is one application's outcome within a run.
type AppResult = system.AppResult

// Org selects the last-level TLB organization.
type Org = system.Org

// Last-level TLB organizations (Fig. 1 of the paper, plus the idealized
// references its evaluation compares against).
const (
	// Private is the baseline per-core private L2 TLB.
	Private = system.Private
	// MonolithicMesh is the banked monolithic shared TLB over a mesh.
	MonolithicMesh = system.MonolithicMesh
	// MonolithicSMART is the monolithic organization over a SMART NoC.
	MonolithicSMART = system.MonolithicSMART
	// MonolithicFixed forces a flat total access latency (Fig. 4).
	MonolithicFixed = system.MonolithicFixed
	// DistributedMesh is per-core shared slices over a multi-hop mesh.
	DistributedMesh = system.DistributedMesh
	// Nocstar is the paper's design: slices over the circuit-switched
	// single-cycle fabric.
	Nocstar = system.Nocstar
	// NocstarIdeal is NOCSTAR with a contention-free fabric.
	NocstarIdeal = system.NocstarIdeal
	// IdealShared is the zero-interconnect-latency shared reference.
	IdealShared = system.IdealShared
)

// TopologyKind selects the fabric topology (Config.Topology) for the
// organizations that route a generic packet-switched interconnect.
type TopologyKind = noc.TopologyKind

// Fabric topologies.
const (
	// TopoMesh is the paper's 2-D mesh with XY routing (the default).
	TopoMesh = noc.TopoMesh
	// TopoTorus wraps both mesh dimensions.
	TopoTorus = noc.TopoTorus
	// TopoXBar is a single-hop crossbar.
	TopoXBar = noc.TopoXBar
	// TopoHybrid is the TeraNoC-style mesh-of-clusters bridged by a
	// hub crossbar.
	TopoHybrid = noc.TopoHybrid
)

// PlacementStrategy selects the address-to-slice placement
// (Config.Placement) for the sliced shared organizations.
type PlacementStrategy = place.Strategy

// Slice-placement strategies.
const (
	// PlaceRowMajor is the identity mapping (the default).
	PlaceRowMajor = place.RowMajor
	// PlaceRandom is a seeded random permutation.
	PlaceRandom = place.Random
	// PlaceLocality greedily co-locates hot slices with central tiles.
	PlaceLocality = place.LocalityAware
	// PlaceAnnealed minimizes traffic-weighted hop distance by
	// simulated annealing.
	PlaceAnnealed = place.Annealed
)

// WalkPolicy selects where shared-slice-miss page walks execute.
type WalkPolicy = system.WalkPolicy

// Walk placement policies (Section III-F).
const (
	WalkAtRequester = system.WalkAtRequester
	WalkAtRemote    = system.WalkAtRemote
)

// StormConfig enables the Section V TLB-storm microbenchmark co-run.
type StormConfig = system.StormConfig

// HammerNone disables App.HammerSlice redirection (the usual setting).
const HammerNone = system.HammerNone

// FieldError names one invalid Config field (see Config.Validate).
type FieldError = system.FieldError

// ValidationError is the typed list of everything wrong with a Config,
// returned by Config.Validate.
type ValidationError = system.ValidationError

// ConfigSchemaVersion identifies the canonical Config JSON layout
// produced by Config.MarshalCanonical and accepted by UnmarshalConfig.
const ConfigSchemaVersion = system.ConfigSchemaVersion

// Typed run-termination errors returned by RunContext.
var (
	ErrCanceled         = system.ErrCanceled
	ErrDeadlineExceeded = system.ErrDeadlineExceeded
)

// WorkloadSpec is the generative model of one benchmark.
type WorkloadSpec = workload.Spec

// Run executes one configured simulation to completion.
func Run(cfg Config) (Result, error) { return system.Run(cfg) }

// RunContext is Run under a context: cancellation is polled on a coarse
// simulated-cycle stride (preserving the allocation-free critical
// path), and a canceled or deadlined run returns an error matching
// ErrCanceled or ErrDeadlineExceeded.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	return system.RunContext(ctx, cfg)
}

// UnmarshalConfig decodes a JSON config document (the canonical
// encoding Config.MarshalCanonical produces, or hand-written input with
// suite-workload shorthand), rejecting unknown fields.
func UnmarshalConfig(data []byte) (Config, error) { return system.UnmarshalConfig(data) }

// Workloads returns the paper's eleven evaluation workloads.
func Workloads() []WorkloadSpec { return workload.Suite() }

// WorkloadByName finds a suite workload.
func WorkloadByName(name string) (WorkloadSpec, bool) { return workload.ByName(name) }

// UniformWorkload builds a uniform-random microbenchmark workload.
func UniformWorkload(name string, pages uint64) WorkloadSpec {
	return workload.Uniform(name, pages)
}

// Stream is a per-thread source of virtual-address references; synthetic
// generators and trace replayers both implement it.
type Stream = workload.Stream

// Trace is a captured per-thread address trace.
type Trace = trace.Trace

// TraceStats summarizes a trace's TLB-relevant properties.
type TraceStats = trace.Stats

// CaptureTrace records a workload's address streams for later replay.
func CaptureTrace(spec WorkloadSpec, threads int, refsPerThread uint64, seed int64) *Trace {
	return trace.Capture(spec, threads, refsPerThread, seed)
}

// WriteTrace serializes a trace to w.
func WriteTrace(w io.Writer, t *Trace) error { return trace.Write(w, t) }

// ReadTrace deserializes a trace from r.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// AnalyzeTrace computes a trace's summary statistics.
func AnalyzeTrace(t *Trace) TraceStats { return trace.Analyze(t) }

// ExperimentOptions tune the scale of the paper-reproduction experiments.
type ExperimentOptions = experiments.Options

// Experiment describes one runnable table/figure reproduction.
type Experiment = experiments.Entry

// Experiments lists every reproducible table and figure by ID.
func Experiments() []Experiment { return experiments.Registry() }

// RunExperiment regenerates one table or figure and returns its rendered
// rows.
func RunExperiment(id string, opts ExperimentOptions) (string, error) {
	e, err := experiments.Lookup(id)
	if err != nil {
		return "", err
	}
	return e.Run(opts).Render(), nil
}

// DefaultExperimentOptions returns the scale used for EXPERIMENTS.md.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }
