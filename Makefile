GO ?= go

.PHONY: all build vet test race bench bench-engine ci clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector permanently covers the parallel runner and every
# driver that submits through it.
race:
	$(GO) test -race ./...

# Short smoke at benchOptions() scale: representative figures plus the
# engine event-queue microbenchmarks (watch allocs/op: the typed 4-ary
# heap must stay allocation-free in steady state).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig12$$|BenchmarkFig16Left$$|BenchmarkFig11c$$' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkScheduleRun' -benchtime 1s -benchmem ./internal/engine/

bench-engine:
	$(GO) test -run xxx -bench . -benchtime 2s -benchmem ./internal/engine/

ci: build vet race bench

clean:
	$(GO) clean ./...
