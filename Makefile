GO ?= go
GOFMT ?= gofmt

.PHONY: all build fmt vet staticcheck test race bench bench-engine alloc smoke profile ci clean

all: build vet test

build:
	$(GO) build ./...

# Fails if any file needs reformatting (prints the offenders).
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when installed, skip (loudly)
# when the environment doesn't have it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping"; fi

test:
	$(GO) test ./...

# The race detector permanently covers the parallel runner and every
# driver that submits through it.
race:
	$(GO) test -race ./...

# Short smoke at benchOptions() scale: representative figures plus the
# engine event-queue microbenchmarks (watch allocs/op: the typed 4-ary
# heap must stay allocation-free in steady state).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig12$$|BenchmarkFig16Left$$|BenchmarkFig11c$$' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkScheduleRun' -benchtime 1s -benchmem ./internal/engine/

bench-engine:
	$(GO) test -run xxx -bench . -benchtime 2s -benchmem ./internal/engine/

# The allocation-regression gate: the steady-state translation critical
# path (NoC request/grant round trip, and the full system access path)
# must stay at exactly zero heap allocations.
alloc:
	$(GO) test -run 'TestRequestPathAllocFree' -count 1 -v ./internal/noc/
	$(GO) test -run 'TestAccessL2AllocFree' -count 1 -v ./internal/system/

# End-to-end smoke of the report pipeline: tiny run, JSON document out.
smoke:
	$(GO) run ./cmd/nocstar-exp -quiet -instr 2000 -report /tmp/nocstar-report.json fig12

# CPU and heap profiles of the heavyweight Table III sweep, written to
# ./profiles/ for `go tool pprof` (see EXPERIMENTS.md "Allocation-free
# critical path" for the recorded baselines).
profile:
	mkdir -p profiles
	$(GO) test -run xxx -bench 'BenchmarkTable3$$' -benchtime 2x \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out \
		-o profiles/nocstar.test .
	@echo "inspect with: go tool pprof -top profiles/nocstar.test profiles/cpu.out"

ci: build fmt vet staticcheck race bench alloc smoke

clean:
	$(GO) clean ./...
