GO ?= go
GOFMT ?= gofmt

.PHONY: all help build fmt vet staticcheck test race bench bench-engine bench-json bench-json-smoke bench-compare alloc check fuzz smoke serve-smoke serve-cluster-smoke sharded placement profile ci clean

all: build vet test

help:
	@echo "nocstar targets:"
	@echo "  build        compile all packages"
	@echo "  test         run the full test suite"
	@echo "  race         full test suite under the race detector"
	@echo "  bench        short performance smoke benchmarks"
	@echo "  bench-json   record BenchmarkTable3 as BENCH_<yyyymmdd>.json (perf trajectory)"
	@echo "  bench-compare benchstat OLD=<file> NEW=<file> raw bench outputs"
	@echo "  alloc        zero-allocation gates for the translation critical path"
	@echo "  check        invariant-checker gate: shadow-oracle runs + fuzz seed corpora"
	@echo "  fuzz         open-ended randomized checking (grows fuzz corpora)"
	@echo "  smoke        end-to-end report-pipeline smoke run"
	@echo "  serve-smoke  HTTP service smoke: submit/poll/cache/sweep/persistent-store over a loopback listener"
	@echo "  serve-cluster-smoke  three-node membership smoke: exactly-once execution, replication, kill-owner handoff"
	@echo "  sharded      partitioned-engine determinism gate: K-identity, golden event order, report matrix, -race storm"
	@echo "  placement    fabric/placement gate: topology contract, annealed determinism, placement report matrix"
	@echo "  profile      CPU/heap profiles of the Table III sweep"
	@echo "  ci           build fmt vet staticcheck race bench bench-json-smoke alloc check sharded placement smoke serve-smoke serve-cluster-smoke"

build:
	$(GO) build ./...

# Fails if any file needs reformatting (prints the offenders).
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when installed, skip (loudly)
# when the environment doesn't have it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping"; fi

test:
	$(GO) test ./...

# The race detector permanently covers the parallel runner and every
# driver that submits through it.
race:
	$(GO) test -race ./...

# Short smoke at benchOptions() scale: representative figures plus the
# engine event-queue microbenchmarks (watch allocs/op: the typed 4-ary
# heap must stay allocation-free in steady state).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig12$$|BenchmarkFig16Left$$|BenchmarkFig11c$$' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkScheduleRun' -benchtime 1s -benchmem ./internal/engine/
	$(GO) test -run xxx -bench 'BenchmarkSharded$$' -benchtime 1x -benchmem ./internal/system/

bench-engine:
	$(GO) test -run xxx -bench . -benchtime 2s -benchmem ./internal/engine/

# The per-PR performance record: run the canonical heavyweight benchmark
# (the Table III sweep) and write a machine-readable BENCH_<yyyymmdd>.json
# (s/op, B/op, allocs/op, custom metrics, git SHA). The raw text output is
# kept next to it for `make bench-compare`. Run on an otherwise-idle
# machine; commit the JSON so the trajectory is tracked per PR.
BENCHTIME ?= 3x
BENCH_OUT ?= BENCH_$(shell date +%Y%m%d).json
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkTable3$$' -benchtime $(BENCHTIME) -benchmem . \
		| tee $(BENCH_OUT:.json=.txt)
	$(GO) test -run xxx -bench 'BenchmarkSharded$$' -benchtime $(BENCHTIME) -benchmem ./internal/system/ \
		| tee -a $(BENCH_OUT:.json=.txt)
	$(GO) run ./cmd/nocstar-bench -in $(BENCH_OUT:.json=.txt) -out $(BENCH_OUT)

# Cheap ci gate for the recording pipeline: parse a fast real benchmark
# through the tool and require valid JSON out.
bench-json-smoke:
	$(GO) test -run xxx -bench 'BenchmarkFig11c$$' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/nocstar-bench -in - -out /tmp/nocstar-bench-smoke.json
	@grep -q '"sec_per_op"' /tmp/nocstar-bench-smoke.json

# Compare two raw `go test -bench` outputs (e.g. the .txt files bench-json
# leaves behind) with benchstat. benchstat is fetched on demand — in an
# offline environment the target degrades to a plain diff so the workflow
# still functions.
BENCHSTAT ?= golang.org/x/perf/cmd/benchstat@latest
bench-compare:
	@test -n "$(OLD)" && test -n "$(NEW)" \
		|| { echo "usage: make bench-compare OLD=old.txt NEW=new.txt"; exit 1; }
	@if $(GO) run $(BENCHSTAT) $(OLD) $(NEW); then :; else \
		echo "benchstat unavailable (offline container?), raw diff instead:"; \
		diff -u $(OLD) $(NEW) || true; fi

# The allocation-regression gate: the steady-state translation critical
# path (NoC request/grant round trip, and the full system access path)
# must stay at exactly zero heap allocations.
alloc:
	$(GO) test -run 'TestRequestPathAllocFree' -count 1 -v ./internal/noc/
	$(GO) test -run 'TestAccessL2AllocFree' -count 1 -v ./internal/system/

# The invariant-checker gate (internal/check): the checker's own unit and
# circuit-shadow tests, every organization run under the shadow oracle
# (including the PR 3 legacy-release reintroduction), and the fuzz seed
# corpora of the page-table and checked-system fuzzers. Deterministic —
# `go test` executes fuzz targets over their seeds only.
check:
	$(GO) test -count 1 ./internal/check/
	$(GO) test -count 1 -run 'TestChecked|TestCheckerCatches|TestMonoFullFlush|TestStormContextSwitch|FuzzCheckedSystem' ./internal/system/
	$(GO) test -count 1 -run 'TestPromote2M|FuzzPageTable' ./internal/vm/

# Open-ended randomized checking (not part of ci): grow the fuzz corpora.
fuzz:
	cd internal/vm && $(GO) test -fuzz FuzzPageTable -fuzztime 30s .
	cd internal/system && $(GO) test -fuzz FuzzCheckedSystem -fuzztime 60s -run FuzzCheckedSystem .

# End-to-end smoke of the report pipeline: tiny run, JSON document out.
smoke:
	$(GO) run ./cmd/nocstar-exp -quiet -instr 2000 -report /tmp/nocstar-report.json fig12

# End-to-end smoke of the HTTP service: boot against a loopback listener,
# submit a run, poll to completion, verify byte identity with a direct
# in-process Run, resubmit and verify a result-cache hit, stream a sweep
# over SSE, and verify the persistent store survives a server restart.
serve-smoke:
	$(GO) run ./cmd/nocstar-serve -selftest

# Three in-process nodes joined by heartbeat gossip, driven through the
# public typed client: membership converges, a double-submitted config
# executes exactly once cluster-wide, the finished result replicates to
# both HRW successors, and after the owner is hard-killed the survivors
# serve its job ID and hash from replicas and absorb its hash range.
serve-cluster-smoke:
	$(GO) run ./cmd/nocstar-serve -selftest-cluster

# The partitioned-engine determinism gate: Result identity and per-region
# golden event order across shard counts, the end-to-end report matrix
# (-shards x -j byte identity through the nocstar-exp binary), and a short
# multi-worker shootdown storm under the race detector.
sharded:
	$(GO) test -count 1 -run 'TestShardedSystemIdentity|TestShardedGoldenEventOrder|TestShardedFallback|TestShardedRegionAllocFree' ./internal/system/
	$(GO) test -count 1 -run 'TestReportShardMatrix' ./cmd/nocstar-exp/
	$(GO) test -race -count 1 -run 'TestShardedStormContention' ./internal/system/

# The fabric/placement gate: the Topology interface contract (symmetry,
# zero diagonal, the MinHops lookahead bound), annealed-placement
# determinism (identical mapping and identical Result for a fixed seed),
# K-identity of every topology and placement under the partitioned
# engine, cache-key distinctness of the placement knobs, and the
# end-to-end placement report matrix through the nocstar-exp binary.
placement:
	$(GO) test -count 1 -run 'TestTopologyContract|TestTopologyGoldenHops|TestGridForProperty' ./internal/noc/
	$(GO) test -count 1 ./internal/place/
	$(GO) test -count 1 -run 'TestBankNodesWithinCores|TestTopologyShardIdentity|TestPlacementShardIdentity|TestPlacementDeterminism|TestPlacementKeyDistinctness' ./internal/system/
	$(GO) test -count 1 -run 'TestReportPlacementMatrix' ./cmd/nocstar-exp/

# CPU and heap profiles of the heavyweight Table III sweep, written to
# ./profiles/ for `go tool pprof` (see EXPERIMENTS.md "Allocation-free
# critical path" for the recorded baselines).
profile:
	mkdir -p profiles
	$(GO) test -run xxx -bench 'BenchmarkTable3$$' -benchtime 2x \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out \
		-o profiles/nocstar.test .
	@echo "inspect with: go tool pprof -top profiles/nocstar.test profiles/cpu.out"

ci: build fmt vet staticcheck race bench bench-json-smoke alloc check sharded placement smoke serve-smoke serve-cluster-smoke

clean:
	$(GO) clean ./...
