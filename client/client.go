// Package client is the typed Go client for the nocstar serve tier.
// It covers every /v1 endpoint — run submission and tracking, streamed
// sweeps, workload and experiment catalogs, cluster introspection —
// with contexts plumbed through and the server's unified error
// envelope decoded into errors.Is-able typed errors.
//
// Quick start:
//
//	c := client.New("http://localhost:8080")
//	st, err := c.Run(ctx, cfg) // submit + wait
//	if err != nil { ... }
//	var res nocstar.Result
//	_ = st.Decode(&res)
//
// Any cluster node answers for any run ID: the serve tier's shared job
// namespace resolves IDs minted elsewhere by proxying to the live
// owner or serving from the replicated store, so the client can point
// at a load balancer without sticky sessions.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"nocstar"
)

// Client talks to one nocstar serve-tier base URL.
type Client struct {
	base string
	http *http.Client
	poll time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default client has no global
// timeout — per-call contexts bound each request — so SSE streams and
// long waits are not cut off mid-flight.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithPollInterval sets the status-poll cadence Wait falls back to
// when the event stream is unavailable (default 50ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// New builds a client for the node (or load balancer) at baseURL.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(strings.TrimSpace(baseURL), "/"),
		http: &http.Client{},
		poll: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the base URL the client targets.
func (c *Client) BaseURL() string { return c.base }

// Run states, mirroring the server's job lifecycle.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// RunStatus is one run's wire status.
type RunStatus struct {
	// ID is the cluster-wide run ID (resolvable on any node).
	ID string `json:"id"`
	// State is one of the State* constants.
	State string `json:"state"`
	// ConfigHash is the canonical config hash the run executes.
	ConfigHash string `json:"config_hash"`
	// Node identifies the cluster node that minted the run.
	Node string `json:"node,omitempty"`
	// Cached reports the result was served from the content-addressed
	// store rather than executed.
	Cached bool `json:"cached,omitempty"`
	// Deduped reports the submission joined an identical live run.
	Deduped bool `json:"deduped,omitempty"`
	// Error is the failure or cancellation reason for terminal states.
	Error string `json:"error,omitempty"`
	// Result holds the marshaled nocstar.Result for done runs —
	// byte-identical to a direct in-process Run of the same config.
	Result json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the status is done, failed, or canceled.
func (st RunStatus) Terminal() bool {
	return st.State == StateDone || st.State == StateFailed || st.State == StateCanceled
}

// Decode unmarshals the run's result bytes into out.
func (st RunStatus) Decode(out *nocstar.Result) error {
	if st.Result == nil {
		return fmt.Errorf("nocstar: run %s has no result (state %s)", st.ID, st.State)
	}
	return json.Unmarshal(st.Result, out)
}

// RunOption customizes one submission.
type RunOption func(*url.Values)

// WithTimeout sets the server-side run deadline (?timeout=).
func WithTimeout(d time.Duration) RunOption {
	return func(v *url.Values) { v.Set("timeout", d.String()) }
}

// SubmitRun submits one config. The returned status is 202-queued (or
// running/proxied), 200-done for a store hit, or deduped onto an
// identical live run; follow it with Wait.
func (c *Client) SubmitRun(ctx context.Context, cfg nocstar.Config, opts ...RunOption) (RunStatus, error) {
	body, err := cfg.MarshalCanonical()
	if err != nil {
		return RunStatus{}, fmt.Errorf("nocstar: marshaling config: %w", err)
	}
	return c.SubmitRunJSON(ctx, body, opts...)
}

// SubmitRunJSON submits a raw JSON config document (the canonical
// encoding, or hand-written input with suite-workload shorthand).
func (c *Client) SubmitRunJSON(ctx context.Context, cfg []byte, opts ...RunOption) (RunStatus, error) {
	var st RunStatus
	err := c.do(ctx, http.MethodPost, "/v1/runs"+runQuery(opts), cfg, &st)
	return st, err
}

// GetRun fetches one run's status (result included when terminal).
// The ID need not have been minted by this client's node.
func (c *Client) GetRun(ctx context.Context, id string) (RunStatus, error) {
	var st RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// ListRuns lists the node's retained runs (results elided).
func (c *Client) ListRuns(ctx context.Context) ([]RunStatus, error) {
	var out []RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &out)
	return out, err
}

// Cancel stops a queued or running run.
func (c *Client) Cancel(ctx context.Context, id string) (RunStatus, error) {
	var st RunStatus
	err := c.do(ctx, http.MethodDelete, "/v1/runs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Wait follows a run to a terminal state and returns its final status,
// result bytes included. It prefers the server's SSE event stream and
// falls back to polling when streaming is unavailable; either way the
// terminal status is re-fetched with GetRun so the result payload is
// present.
func (c *Client) Wait(ctx context.Context, id string) (RunStatus, error) {
	if err := c.waitEvents(ctx, id); err != nil {
		// Stream unavailable (proxy in the path, owner restarted, ...):
		// poll instead. Context errors are final.
		if ctx.Err() != nil {
			return RunStatus{}, ctx.Err()
		}
		if err := c.waitPoll(ctx, id); err != nil {
			return RunStatus{}, err
		}
	}
	return c.GetRun(ctx, id)
}

// Run submits cfg and waits for its terminal status: the one-call path
// for synchronous callers.
func (c *Client) Run(ctx context.Context, cfg nocstar.Config, opts ...RunOption) (RunStatus, error) {
	st, err := c.SubmitRun(ctx, cfg, opts...)
	if err != nil {
		return st, err
	}
	if st.Terminal() {
		return st, nil
	}
	return c.Wait(ctx, st.ID)
}

// waitEvents follows the run's SSE stream until a terminal frame.
func (c *Client) waitEvents(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/runs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	saw := false
	err = readSSE(resp.Body, func(event string, data []byte) error {
		var st RunStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
		if st.Terminal() {
			saw = true
			return errStopSSE
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !saw {
		return fmt.Errorf("nocstar: event stream for %s ended before a terminal state", id)
	}
	return nil
}

// waitPoll polls the run's status until terminal.
func (c *Client) waitPoll(ctx context.Context, id string) error {
	for {
		var st RunStatus
		if err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil, &st); err != nil {
			return err
		}
		if st.Terminal() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.poll):
		}
	}
}

// Workloads fetches the server's workload suite.
func (c *Client) Workloads(ctx context.Context) ([]nocstar.WorkloadSpec, error) {
	var out []nocstar.WorkloadSpec
	err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &out)
	return out, err
}

// ExperimentInfo describes one runnable paper-reproduction experiment.
type ExperimentInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

// Experiments lists the server's reproducible tables and figures.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// ClusterNode is one member of the serve tier's membership view.
type ClusterNode struct {
	ID           string `json:"id"`
	Addr         string `json:"addr"`
	Epoch        int64  `json:"epoch"`
	State        string `json:"state"` // alive | suspect | dead
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	StoreEntries int    `json:"store_entries"`
	LastSeenMS   int64  `json:"last_seen_ms"`
}

// ClusterView is the versioned membership snapshot.
type ClusterView struct {
	Version uint64        `json:"version"`
	Self    string        `json:"self"`
	Nodes   []ClusterNode `json:"nodes"`
}

// Live returns the view's alive members.
func (v ClusterView) Live() []ClusterNode {
	var out []ClusterNode
	for _, n := range v.Nodes {
		if n.State == "alive" {
			out = append(out, n)
		}
	}
	return out
}

// Ownership is the ?hash= ownership preview: where the current view
// places a canonical config hash.
type Ownership struct {
	Hash       string        `json:"hash"`
	Owner      ClusterNode   `json:"owner"`
	Successors []ClusterNode `json:"successors,omitempty"`
}

// ClusterInfo is the GET /v1/cluster response.
type ClusterInfo struct {
	View      ClusterView `json:"view"`
	Ownership *Ownership  `json:"ownership,omitempty"`
}

// Cluster fetches the node's membership view. A non-empty hash adds
// the ownership preview for that canonical config hash.
func (c *Client) Cluster(ctx context.Context, hash string) (ClusterInfo, error) {
	path := "/v1/cluster"
	if hash != "" {
		path += "?hash=" + url.QueryEscape(hash)
	}
	var out ClusterInfo
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Health is the /healthz document.
type Health struct {
	Status   string `json:"status"` // ok | draining
	Workers  int    `json:"workers"`
	Running  int64  `json:"running"`
	Queued   int    `json:"queued"`
	QueueCap int    `json:"queue_cap"`
	Jobs     int    `json:"jobs"`
	Cached   int    `json:"cached"`
	Node     string `json:"node"`
	Epoch    string `json:"epoch"`
	Addr     string `json:"addr"`
	Members  int    `json:"members"`
}

// Health fetches the node's health document. A draining node answers
// 503; the document is still returned alongside the typed error.
func (c *Client) Health(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Health{}, err
	}
	var h Health
	if jerr := json.Unmarshal(raw, &h); jerr != nil {
		return Health{}, fmt.Errorf("nocstar: decoding health: %w", jerr)
	}
	if resp.StatusCode != http.StatusOK {
		return h, &APIError{Status: resp.StatusCode, Code: "draining", Message: "server is draining"}
	}
	return h, nil
}

// Metrics scrapes /metrics and returns every sample by name (Prometheus
// text format flattened; counters and gauges alike).
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, sc.Err()
}

// Metric scrapes one sample from /metrics; absent names return 0.
func (c *Client) Metric(ctx context.Context, name string) (float64, error) {
	all, err := c.Metrics(ctx)
	if err != nil {
		return 0, err
	}
	return all[name], nil
}

// runQuery renders submission options as a query string.
func runQuery(opts []RunOption) string {
	if len(opts) == 0 {
		return ""
	}
	v := url.Values{}
	for _, o := range opts {
		o(&v)
	}
	if len(v) == 0 {
		return ""
	}
	return "?" + v.Encode()
}

// do performs one JSON round-trip: non-2xx decodes to *APIError, 2xx
// decodes into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("nocstar: decoding %s %s response: %w", method, path, err)
	}
	return nil
}
