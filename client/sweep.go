package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"nocstar"
)

// SweepResult is one streamed sweep leg: the terminal status of the
// config at Index in the submitted batch.
type SweepResult struct {
	Index      int             `json:"index"`
	ID         string          `json:"id"`
	ConfigHash string          `json:"config_hash"`
	State      string          `json:"state"`
	Cached     bool            `json:"cached,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Decode unmarshals the leg's result bytes into out.
func (sr SweepResult) Decode(out *nocstar.Result) error {
	if sr.Result == nil {
		return fmt.Errorf("nocstar: sweep leg %d has no result (state %s)", sr.Index, sr.State)
	}
	return json.Unmarshal(sr.Result, out)
}

// SweepSummary is the sweep's terminal accounting frame.
type SweepSummary struct {
	Total       int `json:"total"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Canceled    int `json:"canceled"`
	CacheHits   int `json:"cache_hits"`
	Unsubmitted int `json:"unsubmitted,omitempty"`
}

// ErrStopSweep, returned from a Sweep callback, abandons the rest of
// the stream without error.
var ErrStopSweep = errors.New("nocstar: stop sweep")

// Sweep submits a whole batch of configs and streams each leg's
// terminal result to fn as it completes (completion order, not
// submission order). Returns the summary frame. The callback may
// return ErrStopSweep to abandon the stream early, or any other error
// to abort and surface it.
func (c *Client) Sweep(ctx context.Context, cfgs []nocstar.Config, fn func(SweepResult) error, opts ...RunOption) (SweepSummary, error) {
	raws := make([]json.RawMessage, len(cfgs))
	for i, cfg := range cfgs {
		b, err := cfg.MarshalCanonical()
		if err != nil {
			return SweepSummary{}, fmt.Errorf("nocstar: marshaling config %d: %w", i, err)
		}
		raws[i] = b
	}
	body, err := json.Marshal(raws)
	if err != nil {
		return SweepSummary{}, err
	}
	return c.SweepJSON(ctx, body, fn, opts...)
}

// SweepJSON is Sweep over a raw JSON array of config documents.
func (c *Client) SweepJSON(ctx context.Context, body []byte, fn func(SweepResult) error, opts ...RunOption) (SweepSummary, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sweeps"+runQuery(opts), bytes.NewReader(body))
	if err != nil {
		return SweepSummary{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return SweepSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return SweepSummary{}, decodeError(resp)
	}
	var summary SweepSummary
	sawSummary := false
	err = readSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case "result":
			var sr SweepResult
			if err := json.Unmarshal(data, &sr); err != nil {
				return fmt.Errorf("nocstar: decoding sweep result: %w", err)
			}
			if fn != nil {
				if err := fn(sr); err != nil {
					if errors.Is(err, ErrStopSweep) {
						return errStopSSE
					}
					return err
				}
			}
		case "summary":
			if err := json.Unmarshal(data, &summary); err != nil {
				return fmt.Errorf("nocstar: decoding sweep summary: %w", err)
			}
			sawSummary = true
			return errStopSSE
		}
		return nil
	})
	if err != nil {
		return summary, err
	}
	if !sawSummary {
		return summary, fmt.Errorf("nocstar: sweep stream ended without a summary")
	}
	return summary, nil
}

// errStopSSE is the internal "stop reading frames" signal.
var errStopSSE = errors.New("stop sse")

// readSSE parses a server-sent-events stream, invoking fn once per
// frame with the event name and data payload. fn returning errStopSSE
// ends the read cleanly.
func readSSE(r io.Reader, fn func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	event := ""
	var data []byte
	flush := func() error {
		if len(data) == 0 {
			event = ""
			return nil
		}
		err := fn(event, data)
		event, data = "", nil
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				if errors.Is(err, errStopSSE) {
					return nil
				}
				return err
			}
		case len(line) > 7 && line[:7] == "event: ":
			event = line[7:]
		case len(line) > 6 && line[:6] == "data: ":
			data = append(data, line[6:]...)
		}
	}
	if err := flush(); err != nil && !errors.Is(err, errStopSSE) {
		return err
	}
	return sc.Err()
}
