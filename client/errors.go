package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"nocstar"
)

// Sentinel errors for the server's stable error codes. Every non-2xx
// response decodes to an *APIError, and errors.Is(err, ErrQueueFull)
// (etc.) matches on the code, so callers branch without string
// comparison:
//
//	st, err := c.SubmitRun(ctx, cfg)
//	if errors.Is(err, client.ErrQueueFull) { backoff() }
var (
	// ErrBadRequest: the request itself was malformed.
	ErrBadRequest = errors.New("nocstar: bad request")
	// ErrInvalidConfig: the config failed decoding or validation; the
	// APIError's Fields carry the per-field diagnoses.
	ErrInvalidConfig = errors.New("nocstar: invalid config")
	// ErrQueueFull: admission control rejected the work; the APIError's
	// RetryAfter says when to retry.
	ErrQueueFull = errors.New("nocstar: queue full")
	// ErrDraining: the node is shutting down.
	ErrDraining = errors.New("nocstar: server draining")
	// ErrNotFound: no such run anywhere the cluster can see.
	ErrNotFound = errors.New("nocstar: run not found")
	// ErrOwnerUnreachable: the run's node is down and no replica exists.
	ErrOwnerUnreachable = errors.New("nocstar: owner unreachable")
	// ErrInternal: the server failed.
	ErrInternal = errors.New("nocstar: internal server error")
)

// codeSentinels maps the wire codes to their errors.Is sentinels.
var codeSentinels = map[string]error{
	"bad_request":       ErrBadRequest,
	"invalid_config":    ErrInvalidConfig,
	"queue_full":        ErrQueueFull,
	"draining":          ErrDraining,
	"not_found":         ErrNotFound,
	"owner_unreachable": ErrOwnerUnreachable,
	"internal":          ErrInternal,
}

// APIError is a decoded non-2xx response: the HTTP status, the
// server's stable machine-readable code, its human message, and — for
// invalid configs — the per-field validation diagnoses.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable error code from the envelope.
	Code string
	// Message is the server's human-readable explanation.
	Message string
	// Fields carries per-field validation errors (invalid_config).
	Fields []nocstar.FieldError
	// RetryAfter is the parsed Retry-After header, when present.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if len(e.Fields) > 0 {
		return fmt.Sprintf("nocstar: %s (%d): %s (%d invalid fields)", e.Code, e.Status, e.Message, len(e.Fields))
	}
	return fmt.Sprintf("nocstar: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Is matches the sentinel for e's code, making *APIError errors.Is-able.
func (e *APIError) Is(target error) bool {
	return codeSentinels[e.Code] == target
}

// errorEnvelope is the wire form of every non-2xx /v1 response.
type errorEnvelope struct {
	Error struct {
		Code    string               `json:"code"`
		Message string               `json:"message"`
		Fields  []nocstar.FieldError `json:"fields,omitempty"`
	} `json:"error"`
}

// decodeError turns a non-2xx response into an *APIError. Bodies that
// are not the envelope (a proxy in the path, say) still produce a
// typed error with the raw body as the message.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	apiErr := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
		apiErr.Fields = env.Error.Fields
		return apiErr
	}
	apiErr.Code = "internal"
	apiErr.Message = fmt.Sprintf("unexpected response: %s", truncate(raw, 200))
	return apiErr
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}
