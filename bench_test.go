package nocstar_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its artifact at a reduced (but shape-preserving)
// scale and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as a smoke reproduction of the
// whole evaluation. For publication-scale numbers use cmd/nocstar-exp
// with the default options (see EXPERIMENTS.md).

import (
	"testing"

	"nocstar/internal/experiments"
	"nocstar/internal/runner"
)

// benchOptions is the reduced scale: three representative workloads and a
// short instruction budget.
func benchOptions() experiments.Options {
	return experiments.Options{
		Instr:     40_000,
		Seed:      1,
		Workloads: []string{"canneal", "olio", "gups"},
	}
}

// reportRefs reports simulation throughput as refs/sec: the memory
// references completed on the process-wide runner during the benchmark,
// over its measured wall time. Call it deferred at benchmark entry.
func reportRefs(b *testing.B) func() {
	b.ReportAllocs()
	start := runner.Default().Progress().MemRefs
	return func() {
		delta := runner.Default().Progress().MemRefs - start
		if sec := b.Elapsed().Seconds(); delta > 0 && sec > 0 {
			b.ReportMetric(float64(delta)/sec, "refs/sec")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if len(r.Points) != 6 {
			b.Fatal("design space incomplete")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(o)
		b.ReportMetric(r.Eliminated["canneal"][64], "%eliminated-canneal-64c")
	}
}

func BenchmarkFig3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3()
		b.ReportMetric(float64(r.Cycles[len(r.Cycles)-1]), "cycles-at-64x")
	}
}

func BenchmarkFig4(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(o)
		b.ReportMetric(r.Average("Shared(9-cc)")/r.Average("Shared(25-cc)"), "9cc-over-25cc")
	}
}

func BenchmarkFig5(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(o)
		f := r.Fractions["canneal"]
		b.ReportMetric(f[0]+f[1], "frac-low-concurrency")
	}
}

func BenchmarkFig6(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Workloads = []string{"canneal"}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(o)
		f := r.Right["512slices"]
		b.ReportMetric(f[0], "frac-no-contention-512slices")
	}
}

func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9()
		_, both := r.Costs.InterconnectAreaFraction()
		b.ReportMetric(100*both, "%tile-area-overhead")
	}
}

func BenchmarkFig11a(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11a()
		last := len(r.Hops) - 1
		b.ReportMetric(float64(r.Latency["NOCSTAR-HPC16"][last]), "nocstar-cycles-12hops")
	}
}

func BenchmarkFig11b(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11b()
		last := len(r.Hops) - 1
		b.ReportMetric(r.Energy["M"][last].Total()/r.Energy["N"][last].Total(), "mono-over-nocstar-pJ")
	}
}

func BenchmarkFig11c(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11c(o)
		// Latency at 0.1 injection, the paper's "high for TLB traffic".
		b.ReportMetric(r.NocstarLat[2], "cycles-at-0.1-injection")
	}
}

func BenchmarkFig12(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(o)
		b.ReportMetric(r.Average("NOCSTAR"), "nocstar-speedup-16c-4K")
	}
}

func BenchmarkFig13(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(o)
		b.ReportMetric(r.Average("NOCSTAR"), "nocstar-speedup-16c-THP")
	}
}

func BenchmarkFig14(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Workloads = []string{"canneal", "gups"}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14(o)
		for _, row := range r.Rows {
			if row.Cores == 64 && row.Org == "NOCSTAR" {
				b.ReportMetric(row.Avg, "nocstar-speedup-64c")
				b.ReportMetric(row.EnergySaved, "%energy-saved-64c")
			}
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15(o)
		b.ReportMetric(r.Average("NOCSTAR")/r.Average("Ideal"), "nocstar-over-ideal")
	}
}

func BenchmarkFig16Left(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Workloads = []string{"canneal", "gups"}
	o.CoreCounts = []int{16, 32}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16Left(o)
		b.ReportMetric(r.Average(32, "2xone-way")-r.Average(32, "1xtwo-way"), "oneway-minus-roundtrip")
	}
}

func BenchmarkFig16Right(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Workloads = []string{"canneal", "gups"}
	o.CoreCounts = []int{32}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16Right(o)
		b.ReportMetric(r.Average(32, "per-8-core"), "per8core-speedup-32c")
	}
}

func BenchmarkFig17(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Workloads = []string{"canneal", "gups"}
	o.CoreCounts = []int{16, 32}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17(o)
		b.ReportMetric(r.Average(32, "Request")-r.Average(32, "Remote"), "request-minus-remote")
	}
}

func BenchmarkTable3(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Workloads = []string{"canneal", "gups"}
	o.Instr = 25_000
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(o)
		if row, ok := r.Row("No/1/Fixed-80", "NOCSTAR"); ok {
			b.ReportMetric(row.Avg, "nocstar-fixed80-avg")
		}
	}
}

func BenchmarkFig18(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Instr = 20_000
	o.Combos = 5
	for i := 0; i < b.N; i++ {
		r := experiments.Fig18(o)
		b.ReportMetric(r.DegradedFraction("NOCSTAR", true), "nocstar-degraded-frac")
	}
}

func BenchmarkFig19(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Workloads = []string{"canneal", "gups"}
	o.Instr = 25_000
	o.CoreCounts = []int{16, 32}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig19(o)
		if c, ok := r.Cell(32, "NSTAR"); ok {
			b.ReportMetric(c.WithUB, "nocstar-storm-speedup-32c")
		}
	}
}

func BenchmarkSliceHammer(b *testing.B) {
	o := benchOptions()
	defer reportRefs(b)()
	o.Instr = 25_000
	for i := 0; i < b.N; i++ {
		r := experiments.SliceHammer(o)
		b.ReportMetric(r.Victim["NOCSTAR"], "victim-speedup")
	}
}
