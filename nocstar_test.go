package nocstar_test

import (
	"strings"
	"testing"

	"nocstar"
)

func TestQuickstartFlow(t *testing.T) {
	spec, ok := nocstar.WorkloadByName("canneal")
	if !ok {
		t.Fatal("canneal missing")
	}
	mk := func(org nocstar.Org) nocstar.Config {
		return nocstar.Config{
			Org:            org,
			Cores:          8,
			Apps:           []nocstar.App{{Spec: spec, Threads: 8, HammerSlice: nocstar.HammerNone}},
			InstrPerThread: 20_000,
			Seed:           1,
		}
	}
	baseline, err := nocstar.Run(mk(nocstar.Private))
	if err != nil {
		t.Fatal(err)
	}
	result, err := nocstar.Run(mk(nocstar.Nocstar))
	if err != nil {
		t.Fatal(err)
	}
	if s := result.SpeedupOver(baseline); s < 1.0 {
		t.Fatalf("NOCSTAR speedup %.3f < 1", s)
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(nocstar.Workloads()) != 11 {
		t.Fatal("suite size wrong")
	}
	u := nocstar.UniformWorkload("x", 100)
	if u.FootprintPages != 100 {
		t.Fatal("uniform workload wrong")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(nocstar.Experiments()) != 26 {
		t.Fatalf("experiments = %d", len(nocstar.Experiments()))
	}
	opts := nocstar.DefaultExperimentOptions()
	if opts.Instr == 0 {
		t.Fatal("default options degenerate")
	}
	out, err := nocstar.RunExperiment("fig3", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 3") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := nocstar.RunExperiment("nope", opts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
