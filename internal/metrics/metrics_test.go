package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Hist("x", nil)
}

func TestMean(t *testing.T) {
	r := NewRegistry()
	m := r.Mean("m")
	for _, v := range []float64{4, 2, 6} {
		m.Observe(v)
	}
	snap := r.Snapshot()
	mv := snap.Means[0]
	if mv.N != 3 || mv.Mean != 4 || mv.Min != 2 || mv.Max != 6 {
		t.Fatalf("mean snapshot = %+v", mv)
	}
}

func TestEmptyMeanSnapshotsZero(t *testing.T) {
	r := NewRegistry()
	r.Mean("m")
	mv := r.Snapshot().Means[0]
	if mv.N != 0 || mv.Mean != 0 || mv.Min != 0 || mv.Max != 0 {
		t.Fatalf("empty mean snapshot = %+v, want zeros (JSON cannot carry NaN)", mv)
	}
}

func TestHistBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("h", []uint64{1, 4, 16})
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	hv, ok := r.Snapshot().Hist("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []uint64{2, 2, 2, 2} // <=1: {0,1}; <=4: {2,4}; <=16: {5,16}; over: {17,1000}
	if !reflect.DeepEqual(hv.Counts, want) {
		t.Fatalf("counts = %v, want %v", hv.Counts, want)
	}
	if hv.Count != 8 || hv.Sum != 1045 || hv.Min != 0 || hv.Max != 1000 {
		t.Fatalf("summary = %+v", hv)
	}
}

func TestHistDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("h", nil)
	h.Observe(3)
	hv, _ := r.Snapshot().Hist("h")
	if len(hv.Bounds) != len(DefaultLatencyBounds) || len(hv.Counts) != len(hv.Bounds)+1 {
		t.Fatalf("bounds/counts = %d/%d", len(hv.Bounds), len(hv.Counts))
	}
}

func TestSnapshotSortedAndMarshalable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Counter("a")
	r.Hist("m", nil).Observe(7)
	s := r.Snapshot()
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "z" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	if v, ok := s.Counter("z"); !ok || v != 0 {
		t.Fatalf("Counter lookup = %d,%v", v, ok)
	}
}

// TestHotPathAllocFree pins the package's core contract: registered
// metrics and a warm tracer never allocate on observation.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	m := r.Mean("m")
	h := r.Hist("h", nil)
	tr := NewTracer(64)
	avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		m.Observe(1.5)
		h.Observe(42)
		tr.Emit(TraceL2Hit, 10, 4, 1, 2)
	})
	if avg != 0 {
		t.Fatalf("hot-path observation allocates: %.1f allocs/op, want 0", avg)
	}
}

func TestTracerBoundedWindow(t *testing.T) {
	tr := NewTracer(2)
	tr.Emit(TraceL2Hit, 1, 0, 0, 0)
	tr.Emit(TraceL2Miss, 2, 0, 0, 0)
	tr.Emit(TraceWalk, 3, 5, 0, 0)
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 2/1", tr.Len(), tr.Dropped())
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(TraceWalk, 10, 30, 2, 5)    // span
	tr.Emit(TracePathGrant, 4, 0, 1, 3) // instant, out of order
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	// Sorted by start cycle: the grant (ts 4) precedes the walk (ts 10).
	if doc.TraceEvents[0]["name"] != "path-grant" || doc.TraceEvents[0]["ph"] != "i" {
		t.Fatalf("first event = %v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1]["name"] != "walk" || doc.TraceEvents[1]["ph"] != "X" ||
		doc.TraceEvents[1]["dur"] != float64(30) {
		t.Fatalf("second event = %v", doc.TraceEvents[1])
	}
}
