// Package metrics is the simulator's observability layer: named, typed
// metrics (counters, online means, fixed-bucket latency histograms)
// collected in a per-System registry and snapshotted into a stable,
// JSON-marshalable form for machine-readable run reports.
//
// The design contract is a zero-allocation steady state: all metrics are
// registered up front (at System construction), and every hot-path
// operation — Counter.Inc/Add, Mean.Observe, Hist.Observe, Tracer.Emit —
// writes into preallocated storage and never touches the heap. The
// allocation-regression suite (make alloc) pins the full translation
// critical path at exactly zero allocs/op with the registry attached.
package metrics

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v }

// Name reports the registered name.
func (c *Counter) Name() string { return c.name }

// AtomicCounter is a monotonically increasing event count safe for
// concurrent increment — the service layer's counterpart of Counter,
// whose single-writer unsynchronized increment is reserved for the
// simulator's hot path.
type AtomicCounter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *AtomicCounter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *AtomicCounter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *AtomicCounter) Value() uint64 { return c.v.Load() }

// Name reports the registered name.
func (c *AtomicCounter) Name() string { return c.name }

// Mean is an online mean/min/max accumulator over float64 samples.
type Mean struct {
	name     string
	n        uint64
	sum      float64
	min, max float64
}

// Observe records a sample.
func (m *Mean) Observe(v float64) {
	if m.n == 0 || v < m.min {
		m.min = v
	}
	if m.n == 0 || v > m.max {
		m.max = v
	}
	m.n++
	m.sum += v
}

// N reports the sample count.
func (m *Mean) N() uint64 { return m.n }

// Sum reports the sample sum.
func (m *Mean) Sum() float64 { return m.sum }

// Name reports the registered name.
func (m *Mean) Name() string { return m.name }

// DefaultLatencyBounds are the inclusive upper bounds (in cycles) of the
// standard latency histogram, spanning a same-cycle port hit through a
// many-thousand-cycle contended walk. A final open-ended overflow bucket
// is implicit.
var DefaultLatencyBounds = []uint64{
	1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
	1024, 2048, 4096,
}

// Hist is a fixed-bucket histogram over uint64 samples (cycle counts).
// Bucket i counts samples <= bounds[i]; one extra open-ended bucket
// catches the overflow. Observe is allocation-free.
type Hist struct {
	name     string
	bounds   []uint64
	counts   []uint64 // len(bounds)+1; last is the overflow bucket
	n, sum   uint64
	min, max uint64
}

// Observe records a sample.
func (h *Hist) Observe(v uint64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	// Linear scan: bounds are short and simulator latencies overwhelmingly
	// land in the first few buckets, where a scan beats a binary search.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count reports the number of samples.
func (h *Hist) Count() uint64 { return h.n }

// Sum reports the sample sum.
func (h *Hist) Sum() uint64 { return h.sum }

// Mean reports the sample mean, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Name reports the registered name.
func (h *Hist) Name() string { return h.name }

// Merge folds other's samples into m. Means merge exactly: count, sum,
// and extrema are all associative.
func (m *Mean) Merge(other *Mean) {
	if other.n == 0 {
		return
	}
	if m.n == 0 || other.min < m.min {
		m.min = other.min
	}
	if m.n == 0 || other.max > m.max {
		m.max = other.max
	}
	m.n += other.n
	m.sum += other.sum
}

// Merge folds other's samples into h. Both histograms must share bucket
// bounds (they do when registered with the same name and bounds — the
// per-region registries of a sharded run are built identically).
func (h *Hist) Merge(other *Hist) {
	if len(other.counts) != len(h.counts) {
		panic(fmt.Sprintf("metrics: Merge %q: bucket count mismatch", h.name))
	}
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}

// Merge folds every metric of other into the identically-shaped registry
// r, by position: both registries must have been built by the same
// registration sequence (the sharded runtime constructs one registry per
// region from one constructor). Names are cross-checked.
func (r *Registry) Merge(other *Registry) {
	if len(other.counters) != len(r.counters) || len(other.atomics) != len(r.atomics) ||
		len(other.means) != len(r.means) || len(other.hists) != len(r.hists) {
		panic("metrics: Merge: registry shapes differ")
	}
	for i, c := range r.counters {
		if c.name != other.counters[i].name {
			panic(fmt.Sprintf("metrics: Merge: counter %q vs %q", c.name, other.counters[i].name))
		}
		c.v += other.counters[i].v
	}
	for i, c := range r.atomics {
		if c.name != other.atomics[i].name {
			panic(fmt.Sprintf("metrics: Merge: counter %q vs %q", c.name, other.atomics[i].name))
		}
		c.v.Add(other.atomics[i].Value())
	}
	for i, m := range r.means {
		if m.name != other.means[i].name {
			panic(fmt.Sprintf("metrics: Merge: mean %q vs %q", m.name, other.means[i].name))
		}
		m.Merge(other.means[i])
	}
	for i, h := range r.hists {
		if h.name != other.hists[i].name {
			panic(fmt.Sprintf("metrics: Merge: hist %q vs %q", h.name, other.hists[i].name))
		}
		h.Merge(other.hists[i])
	}
}

// Registry holds one run's metrics. All registration happens at
// construction time (System.New); the returned typed handles are then
// incremented directly on the hot path with zero indirection beyond a
// pointer, and Snapshot freezes everything into a stable, sorted form.
type Registry struct {
	counters []*Counter
	atomics  []*AtomicCounter
	means    []*Mean
	hists    []*Hist
	names    map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]struct{}{}}
}

// register panics on duplicate names: metric names are code, and a
// collision is a wiring bug better caught at construction than merged
// silently.
func (r *Registry) register(name string) {
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.names[name] = struct{}{}
}

// Counter registers and returns a named counter.
func (r *Registry) Counter(name string) *Counter {
	r.register(name)
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// AtomicCounter registers and returns a named concurrency-safe counter.
// It shares the counter namespace and appears in snapshots alongside
// plain counters.
func (r *Registry) AtomicCounter(name string) *AtomicCounter {
	r.register(name)
	c := &AtomicCounter{name: name}
	r.atomics = append(r.atomics, c)
	return c
}

// Mean registers and returns a named online mean.
func (r *Registry) Mean(name string) *Mean {
	r.register(name)
	m := &Mean{name: name}
	r.means = append(r.means, m)
	return m
}

// Hist registers and returns a named histogram with the given inclusive
// upper bounds (nil selects DefaultLatencyBounds). Bounds must ascend.
func (r *Registry) Hist(name string, bounds []uint64) *Hist {
	r.register(name)
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &Hist{name: name, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.hists = append(r.hists, h)
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// MeanValue is one online mean in a snapshot. Min/Max/Mean are 0 when
// N == 0 (NaN is not JSON-marshalable; N disambiguates).
type MeanValue struct {
	Name string  `json:"name"`
	N    uint64  `json:"n"`
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// HistValue is one histogram in a snapshot. Counts has one more entry
// than Bounds: the final open-ended overflow bucket.
type HistValue struct {
	Name   string   `json:"name"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Mean   float64  `json:"mean"`
	Min    uint64   `json:"min"`
	Max    uint64   `json:"max"`
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

// Snapshot is a frozen, name-sorted copy of a registry's state, stable
// under JSON marshaling and reflect.DeepEqual (the determinism tests
// compare full Results including their snapshots).
type Snapshot struct {
	Counters []CounterValue `json:"counters"`
	Means    []MeanValue    `json:"means,omitempty"`
	Hists    []HistValue    `json:"histograms"`
}

// Snapshot freezes the registry. It allocates; call it once per run, off
// the hot path.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.v})
	}
	for _, c := range r.atomics {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	for _, m := range r.means {
		mv := MeanValue{Name: m.name, N: m.n, Sum: m.sum}
		if m.n > 0 {
			mv.Mean = m.sum / float64(m.n)
			mv.Min, mv.Max = m.min, m.max
		}
		s.Means = append(s.Means, mv)
	}
	for _, h := range r.hists {
		hv := HistValue{
			Name: h.name, Count: h.n, Sum: h.sum, Mean: h.Mean(),
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
		}
		if h.n > 0 {
			hv.Min, hv.Max = h.min, h.max
		}
		s.Hists = append(s.Hists, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Means, func(i, j int) bool { return s.Means[i].Name < s.Means[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// Counter finds a counter value by name in a snapshot.
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Hist finds a histogram by name in a snapshot.
func (s Snapshot) Hist(name string) (HistValue, bool) {
	for _, h := range s.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return HistValue{}, false
}

// Reset zeroes every registered metric while keeping the registrations
// and returned handles valid, so a measurement phase that begins mid-run
// (after a warmup) reports only its own events. Bounds and names are
// preserved; only accumulated state clears.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.v = 0
	}
	for _, c := range r.atomics {
		c.v.Store(0)
	}
	for _, m := range r.means {
		m.n, m.sum, m.min, m.max = 0, 0, 0, 0
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i] = 0
		}
		h.n, h.sum, h.min, h.max = 0, 0, 0, 0
	}
}
