package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promName sanitizes a registered metric name into a legal Prometheus
// metric name and applies the family prefix: dots and every other
// character outside [a-zA-Z0-9_] become underscores.
func promName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + 1 + len(name))
	b.WriteString(prefix)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the snapshot in the Prometheus text exposition
// format (one family per metric, prefixed with prefix): counters as
// counter families, online means as _count/_sum/_min/_max gauges, and
// histograms as native Prometheus histograms with cumulative le
// buckets. Output order follows the snapshot's sorted order, so equal
// snapshots encode identically — the /metrics endpoint is deterministic
// for a quiesced server.
func (s Snapshot) WriteProm(w io.Writer, prefix string) error {
	for _, c := range s.Counters {
		name := promName(prefix, c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, m := range s.Means {
		name := promName(prefix, m.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_count gauge\n%s_count %d\n# TYPE %s_sum gauge\n%s_sum %s\n",
			name, name, m.N, name, name, formatFloat(m.Sum)); err != nil {
			return err
		}
		if m.N > 0 {
			if _, err := fmt.Fprintf(w, "# TYPE %s_min gauge\n%s_min %s\n# TYPE %s_max gauge\n%s_max %s\n",
				name, name, formatFloat(m.Min), name, name, formatFloat(m.Max)); err != nil {
				return err
			}
		}
	}
	for _, h := range s.Hists {
		name := promName(prefix, h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, h.Count, name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
