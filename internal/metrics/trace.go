package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Trace event kinds. The tracer records the simulator's translation-path
// milestones: NOCSTAR path setups/grants/releases, shared-TLB hits and
// misses, and page walks.
const (
	TracePathSetup uint8 = iota // A=src node, B=dst node; Dur=setup cycles
	TracePathGrant              // A=src, B=dst; instant at first traversal cycle
	TraceRelease                // A=src, B=dst; instant early link release
	TraceL2Hit                  // A=core, B=slice; Dur=access cycles
	TraceL2Miss                 // A=core, B=slice; instant at access start
	TraceWalk                   // A=core, B=slice; Dur=walk cycles
	traceKinds
)

// traceNames and traceCats label events in the Chrome trace_event output.
var traceNames = [traceKinds]string{
	"path-setup", "path-grant", "path-release", "l2-hit", "l2-miss", "walk",
}

var traceCats = [traceKinds]string{
	"noc", "noc", "noc", "tlb", "tlb", "ptw",
}

// TraceEvent is one recorded milestone. Cycle is the event's start cycle
// and Dur its span (0 = instant); A and B identify the participants
// (nodes, cores, slices) per kind.
type TraceEvent struct {
	Cycle uint64
	Dur   uint64
	Kind  uint8
	A, B  int32
}

// Tracer records a bounded window of TraceEvents into preallocated
// storage. Emit is allocation-free; once the window fills, further events
// are counted as dropped and discarded, so a tracer attached to an
// arbitrarily long run costs bounded memory. A nil *Tracer is the
// disabled state: hot paths guard every Emit with a nil check, which is
// the entire cost when tracing is off.
type Tracer struct {
	events  []TraceEvent
	dropped uint64
}

// DefaultTraceCapacity bounds the recording window when NewTracer is
// given no explicit capacity.
const DefaultTraceCapacity = 1 << 20

// NewTracer returns a tracer recording up to capacity events
// (<= 0 selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{events: make([]TraceEvent, 0, capacity)}
}

// Emit records one event, dropping it if the window is full.
func (t *Tracer) Emit(kind uint8, cycle, dur uint64, a, b int32) {
	if len(t.events) == cap(t.events) {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{Cycle: cycle, Dur: dur, Kind: kind, A: a, B: b})
}

// Len reports how many events were recorded.
func (t *Tracer) Len() int { return len(t.events) }

// Dropped reports how many events fell outside the recording window.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Events returns the recorded window.
func (t *Tracer) Events() []TraceEvent { return t.events }

// WriteChrome writes the recorded window as Chrome trace_event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Timestamps are
// simulated cycles (one trace "microsecond" = one cycle); spans use
// complete ("X") events and instants use "i". Events are sorted by start
// cycle, which Perfetto expects; hit/miss spans are emitted at decision
// time with their true start cycle, so the raw buffer is only mostly
// sorted.
func (t *Tracer) WriteChrome(w io.Writer) error {
	evs := append([]TraceEvent(nil), t.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range evs {
		sep := ","
		if i == len(evs)-1 {
			sep = ""
		}
		name, cat := traceNames[ev.Kind], traceCats[ev.Kind]
		if ev.Dur > 0 {
			fmt.Fprintf(bw, "{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":0,\"tid\":%d,\"args\":{\"a\":%d,\"b\":%d}}%s\n",
				name, cat, ev.Cycle, ev.Dur, ev.A, ev.A, ev.B, sep)
		} else {
			fmt.Fprintf(bw, "{\"name\":%q,\"cat\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"args\":{\"a\":%d,\"b\":%d}}%s\n",
				name, cat, ev.Cycle, ev.A, ev.A, ev.B, sep)
		}
	}
	if _, err := bw.WriteString("],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
