package metrics

import (
	"strings"
	"testing"
)

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("l2.hits").Add(42)
	r.AtomicCounter("server.runs.submitted").Add(3)
	m := r.Mean("walk.depth")
	m.Observe(2)
	m.Observe(4)
	h := r.Hist("lat", []uint64{1, 4, 16})
	h.Observe(1)  // le=1
	h.Observe(3)  // le=4
	h.Observe(5)  // le=16
	h.Observe(99) // overflow

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b, "nocstar"); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		// Names are sanitized (dots become underscores) and prefixed.
		"# TYPE nocstar_l2_hits counter\nnocstar_l2_hits 42\n",
		// AtomicCounters share the counter family.
		"nocstar_server_runs_submitted 3\n",
		// Means export count/sum/min/max.
		"nocstar_walk_depth_count 2\n",
		"nocstar_walk_depth_sum 6\n",
		"nocstar_walk_depth_min 2\n",
		"nocstar_walk_depth_max 4\n",
		// Histogram buckets are cumulative, closed by +Inf.
		"nocstar_lat_bucket{le=\"1\"} 1\n",
		"nocstar_lat_bucket{le=\"4\"} 2\n",
		"nocstar_lat_bucket{le=\"16\"} 3\n",
		"nocstar_lat_bucket{le=\"+Inf\"} 4\n",
		"nocstar_lat_sum 108\n",
		"nocstar_lat_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Empty means elide min/max (NaN has no exposition form).
	r2 := NewRegistry()
	r2.Mean("empty")
	var b2 strings.Builder
	if err := r2.Snapshot().WriteProm(&b2, "x"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), "_min") {
		t.Errorf("empty mean exported min/max:\n%s", b2.String())
	}

	// Determinism: a second encode of an equal snapshot is identical.
	var b3 strings.Builder
	r.Snapshot().WriteProm(&b3, "nocstar")
	if b3.String() != out {
		t.Error("WriteProm is not deterministic for equal snapshots")
	}
}
