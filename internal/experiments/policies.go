package experiments

import (
	"fmt"

	"nocstar/internal/noc"
	"nocstar/internal/ptw"
	"nocstar/internal/runner"
	"nocstar/internal/stats"
	"nocstar/internal/system"
)

// focusGrid runs NOCSTAR variants over the four policy-study workloads at
// several core counts, reporting speedup versus the private baseline.
type focusGrid struct {
	Title     string
	Cores     []int
	Variants  []string
	Workloads []string
	// Speedup[cores][variant][workload]
	Speedup map[int]map[string]map[string]float64
}

// Render prints one block per core count.
func (g focusGrid) Render() string {
	t := stats.NewTable(g.Title)
	t.Row(append([]interface{}{"cores", "variant"}, toIfaces(append(g.Workloads, "average"))...)...)
	for _, c := range g.Cores {
		for _, v := range g.Variants {
			row := []interface{}{c, v}
			var vs []float64
			for _, w := range g.Workloads {
				s := g.Speedup[c][v][w]
				vs = append(vs, s)
				row = append(row, fmt.Sprintf("%.3f", s))
			}
			row = append(row, fmt.Sprintf("%.3f", stats.Mean64(vs)))
			t.Row(row...)
		}
	}
	return t.String()
}

// Average returns the mean speedup of one (cores, variant) row.
func (g focusGrid) Average(cores int, variant string) float64 {
	var vs []float64
	for _, w := range g.Workloads {
		vs = append(vs, g.Speedup[cores][variant][w])
	}
	return stats.Mean64(vs)
}

// runFocus evaluates NOCSTAR variants on the focus workloads.
func runFocus(o Options, title string, cores []int, variants []string,
	build func(variant string, cores int, cfg *system.Config)) focusGrid {
	g := focusGrid{
		Title:    title,
		Cores:    cores,
		Variants: variants,
		Speedup:  map[int]map[string]map[string]float64{},
	}
	specs := o.focusSuite()
	for _, s := range specs {
		g.Workloads = append(g.Workloads, s.Name)
	}
	type cell struct {
		cores         int
		variant, name string
		baseline, run *runner.Future
	}
	var cells []cell
	for _, c := range cores {
		g.Speedup[c] = map[string]map[string]float64{}
		for _, v := range variants {
			g.Speedup[c][v] = map[string]float64{}
			for _, spec := range specs {
				cfg := o.baseConfig(system.Nocstar, spec, c, false)
				cfg.L2EntriesPerCore = 0
				build(v, c, &cfg)
				cells = append(cells, cell{c, v, spec.Name,
					o.baselineFuture(spec, c, false), o.submit(cfg)})
			}
		}
	}
	for _, cl := range cells {
		g.Speedup[cl.cores][cl.variant][cl.name] = cl.run.Wait().SpeedupOver(cl.baseline.Wait())
	}
	return g
}

// Fig16LeftResult is the link-acquisition study.
type Fig16LeftResult struct{ focusGrid }

// Fig16Left compares round-trip (1xtwo-way) against per-message
// (2xone-way) link acquisition at 16/32/64 cores.
func Fig16Left(o Options) Fig16LeftResult {
	g := runFocus(o, "Fig. 16 (left): link acquisition policy",
		o.coreCounts(), []string{"1xtwo-way", "2xone-way"},
		func(v string, _ int, cfg *system.Config) {
			if v == "1xtwo-way" {
				cfg.Acquire = noc.RoundTripAcquire
			} else {
				cfg.Acquire = noc.OneWayAcquire
			}
		})
	return Fig16LeftResult{g}
}

// Fig16RightResult is the invalidation-leader study.
type Fig16RightResult struct{ focusGrid }

// Fig16Right compares shootdown invalidation-leader granularities
// (one leader per 4 cores, per 8 cores, per N cores i.e. direct sends)
// under steady shootdown traffic.
func Fig16Right(o Options) Fig16RightResult {
	g := runFocus(o, "Fig. 16 (right): TLB invalidation leader granularity",
		o.coreCounts(), []string{"per-4-core", "per-8-core", "per-N-core"},
		func(v string, cores int, cfg *system.Config) {
			cfg.ShootdownInterval = 3_000
			switch v {
			case "per-4-core":
				cfg.InvLeaders = cores / 4
			case "per-8-core":
				cfg.InvLeaders = cores / 8
			default: // per-N: every core relays its own invalidations
				cfg.InvLeaders = 0
			}
		})
	return Fig16RightResult{g}
}

// Fig17Result is the page-walk placement study.
type Fig17Result struct{ focusGrid }

// Fig17 compares walking at the requesting core against walking at the
// remote slice-owning core, at 16/32/64 cores.
func Fig17(o Options) Fig17Result {
	g := runFocus(o, "Fig. 17: page table walk placement",
		o.coreCounts(), []string{"Request", "Remote"},
		func(v string, _ int, cfg *system.Config) {
			if v == "Remote" {
				cfg.Policy = system.WalkAtRemote
			} else {
				cfg.Policy = system.WalkAtRequester
			}
		})
	return Fig17Result{g}
}

// ---------------------------------------------------------------------
// Table III — sensitivity to prefetching, SMT, and page-walk latency on
// a 32-core system.

// Table3Row is one scenario x organization row.
type Table3Row struct {
	Prefetch      string
	SMT           int
	PTW           string
	Org           string
	Min, Avg, Max float64
}

// Table3Result holds all rows.
type Table3Result struct {
	Rows []Table3Row
}

// table3Scenarios mirrors the paper's row set.
var table3Scenarios = []struct {
	label    string
	prefetch int
	smt      int
	ptw      ptw.Config
}{
	{"No/1/Variable", 0, 1, ptw.Config{Mode: ptw.Variable}},
	{"1/1/Variable", 1, 1, ptw.Config{Mode: ptw.Variable}},
	{"1,2/1/Variable", 2, 1, ptw.Config{Mode: ptw.Variable}},
	{"1-3/1/Variable", 3, 1, ptw.Config{Mode: ptw.Variable}},
	{"No/2/Variable", 0, 2, ptw.Config{Mode: ptw.Variable}},
	{"No/4/Variable", 0, 4, ptw.Config{Mode: ptw.Variable}},
	{"No/1/Fixed-10", 0, 1, ptw.Config{Mode: ptw.Fixed, FixedLatency: 10}},
	{"No/1/Fixed-20", 0, 1, ptw.Config{Mode: ptw.Fixed, FixedLatency: 20}},
	{"No/1/Fixed-40", 0, 1, ptw.Config{Mode: ptw.Fixed, FixedLatency: 40}},
	{"No/1/Fixed-80", 0, 1, ptw.Config{Mode: ptw.Fixed, FixedLatency: 80}},
}

// Table3 runs the sensitivity sweep. The scenario labels read
// prefetch/SMT/page-walk-latency, matching the paper's columns.
func Table3(o Options) Table3Result {
	var res Table3Result
	const cores = 32
	orgs := []struct {
		name string
		org  system.Org
	}{
		{"Monolithic", system.MonolithicMesh},
		{"Distributed", system.DistributedMesh},
		{"NOCSTAR", system.Nocstar},
	}
	// Submit every scenario's baselines and organization runs before
	// joining any: scenario baselines and shared-org runs are mutually
	// independent.
	type scenarioRuns struct {
		baselines map[string]*runner.Future
		orgRuns   [][]*runner.Future // [org][workload]
	}
	var pending []scenarioRuns
	for _, sc := range table3Scenarios {
		sr := scenarioRuns{baselines: map[string]*runner.Future{}}
		// Baselines must share the scenario's SMT and PTW settings.
		for _, spec := range o.suite() {
			cfg := o.baseConfig(system.Private, spec, cores, false)
			applyScenario(&cfg, sc.prefetch, sc.smt, sc.ptw, cores)
			sr.baselines[spec.Name] = o.submit(cfg)
		}
		for _, org := range orgs {
			var futs []*runner.Future
			for _, spec := range o.suite() {
				cfg := o.baseConfig(org.org, spec, cores, false)
				cfg.L2EntriesPerCore = 0
				applyScenario(&cfg, sc.prefetch, sc.smt, sc.ptw, cores)
				futs = append(futs, o.submit(cfg))
			}
			sr.orgRuns = append(sr.orgRuns, futs)
		}
		pending = append(pending, sr)
	}
	for si, sc := range table3Scenarios {
		sr := pending[si]
		for oi, org := range orgs {
			var vs []float64
			for wi, spec := range o.suite() {
				base := sr.baselines[spec.Name].Wait()
				vs = append(vs, sr.orgRuns[oi][wi].Wait().SpeedupOver(base))
			}
			lo, hi := stats.MinMax(vs)
			res.Rows = append(res.Rows, Table3Row{
				Prefetch: sc.label, SMT: sc.smt, PTW: ptwLabel(sc.ptw),
				Org: org.name, Min: lo, Avg: stats.Mean64(vs), Max: hi,
			})
		}
	}
	return res
}

// applyScenario sets the Table III knobs on a config.
func applyScenario(cfg *system.Config, prefetch, smt int, p ptw.Config, cores int) {
	cfg.PrefetchDegree = prefetch
	cfg.SMT = smt
	cfg.PTW = p
	if smt > 1 {
		cfg.Apps[0].Threads = cores * smt
		// Keep total work comparable across SMT settings.
		cfg.InstrPerThread /= uint64(smt)
		if cfg.InstrPerThread == 0 {
			cfg.InstrPerThread = 1
		}
	}
}

func ptwLabel(p ptw.Config) string {
	if p.Mode == ptw.Fixed {
		return fmt.Sprintf("Fixed-%d", p.FixedLatency)
	}
	return "Variable"
}

// Render prints the table.
func (r Table3Result) Render() string {
	t := stats.NewTable("Table III: sensitivity (prefetch/SMT/PTW latency), 32 cores")
	t.Row("scenario", "org", "min", "avg", "max")
	for _, row := range r.Rows {
		t.Row(row.Prefetch, row.Org,
			fmt.Sprintf("%.3f", row.Min), fmt.Sprintf("%.3f", row.Avg), fmt.Sprintf("%.3f", row.Max))
	}
	return t.String()
}

// Row finds a row by scenario label and organization.
func (r Table3Result) Row(scenario, org string) (Table3Row, bool) {
	for _, row := range r.Rows {
		if row.Prefetch == scenario && row.Org == org {
			return row, true
		}
	}
	return Table3Row{}, false
}
