package experiments

import (
	"fmt"
	"strings"

	"nocstar/internal/energy"
	"nocstar/internal/noc"
	"nocstar/internal/runner"
	"nocstar/internal/sram"
	"nocstar/internal/stats"
)

// ---------------------------------------------------------------------
// Fig. 3 — SRAM TLB access latency vs array size.

// Fig3Result holds the latency curve.
type Fig3Result struct {
	Multipliers []float64
	Cycles      []int
}

// Fig3 reproduces the post-synthesis latency curve.
func Fig3() Fig3Result {
	res := Fig3Result{}
	for _, m := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64} {
		res.Multipliers = append(res.Multipliers, m)
		res.Cycles = append(res.Cycles, sram.AccessCycles(int(m*sram.ReferenceEntries)))
	}
	return res
}

// Render prints the curve.
func (r Fig3Result) Render() string {
	t := stats.NewTable("Fig. 3: SRAM TLB access latency vs size (1x = 1536 entries)")
	t.Row("size", "cycles")
	for i, m := range r.Multipliers {
		t.Row(fmt.Sprintf("%gx", m), r.Cycles[i])
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Fig. 9 — place-and-route tile costs.

// Fig9Result holds the published tile breakdown.
type Fig9Result struct {
	Costs sram.TileCosts
}

// Fig9 returns the tile cost table.
func Fig9() Fig9Result { return Fig9Result{Costs: sram.Fig9()} }

// Render prints the per-tile power/area rows of Fig. 9.
func (r Fig9Result) Render() string {
	t := stats.NewTable("Fig. 9: per-tile power and area (28nm TSMC, 0.5ns clock)")
	t.Row("component", "power (mW)", "area (mm^2)")
	t.Row("Switch", r.Costs.SwitchPowerMW, r.Costs.SwitchAreaMM2)
	t.Row("4x Arbiters", r.Costs.ArbiterPowerMW, r.Costs.ArbiterAreaMM2)
	t.Row("SRAM TLB", r.Costs.SRAMPowerMW, r.Costs.SRAMAreaMM2)
	sw, both := r.Costs.InterconnectAreaFraction()
	return t.String() + fmt.Sprintf("switch area / SRAM area = %.2f%%; switch+arbiters = %.2f%%\n",
		100*sw, 100*both)
}

// ---------------------------------------------------------------------
// Fig. 11(a) — message latency vs hops for the shared TLB designs.

// Fig11aResult holds per-design latency-vs-hops series.
type Fig11aResult struct {
	Hops    []int
	Designs []string
	Latency map[string][]int
}

// Fig11a computes total access latency (SRAM lookup + network) per hop
// count for the monolithic, distributed, and NOCSTAR (HPCmax 4/8/16)
// designs at the 32-core scale. The per-design series are independent, so
// they fan out on the shared pool and join in design order.
func Fig11a() Fig11aResult {
	res := Fig11aResult{
		Hops:    []int{0, 1, 2, 4, 6, 8, 10, 12},
		Latency: map[string][]int{},
	}
	sliceLat := sram.AccessCycles(1024)
	monoLat := sram.AccessCycles(32 * 1024)
	mesh := noc.NewMesh(noc.DefaultMeshConfig(noc.GridFor(32)))

	type design struct {
		name string
		f    func(h int) int
	}
	designs := []design{
		{"Monolithic", func(h int) int { return monoLat + mesh.LatencyForHops(h) }},
		{"Distributed", func(h int) int { return sliceLat + mesh.LatencyForHops(h) }},
	}
	for _, hpc := range []int{4, 8, 16} {
		ns := noc.NewNocstar(nil, noc.NocstarConfig{Geometry: noc.GridFor(32), HPCmax: hpc})
		designs = append(designs, design{fmt.Sprintf("NOCSTAR-HPC%d", hpc), func(h int) int {
			if h == 0 {
				return sliceLat
			}
			return sliceLat + 1 + ns.TraversalCycles(h) // setup + traversal
		}})
	}
	series := runner.Map(runner.Default(), designs, func(d design) []int {
		out := make([]int, 0, len(res.Hops))
		for _, h := range res.Hops {
			out = append(out, d.f(h))
		}
		return out
	})
	for i, d := range designs {
		res.Designs = append(res.Designs, d.name)
		res.Latency[d.name] = series[i]
	}
	return res
}

// Render prints the latency series.
func (r Fig11aResult) Render() string {
	t := stats.NewTable("Fig. 11(a): access latency (cycles) vs hops")
	header := []interface{}{"design"}
	for _, h := range r.Hops {
		header = append(header, fmt.Sprintf("h=%d", h))
	}
	t.Row(header...)
	for _, d := range r.Designs {
		row := []interface{}{d}
		for _, v := range r.Latency[d] {
			row = append(row, v)
		}
		t.Row(row...)
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Fig. 11(b) — per-message energy vs hops, split into link / switch /
// control / SRAM, for (M)onolithic, (D)istributed, (N)OCSTAR.

// Fig11bResult holds the energy breakdowns.
type Fig11bResult struct {
	Hops   []int
	Energy map[string][]energy.MessageEnergy // "M"/"D"/"N"
}

// Fig11b computes the Fig. 11(b) bars at the 32-core scale.
func Fig11b() Fig11bResult {
	res := Fig11bResult{
		Hops:   []int{0, 1, 2, 4, 6, 8, 10, 12},
		Energy: map[string][]energy.MessageEnergy{},
	}
	for _, h := range res.Hops {
		res.Energy["M"] = append(res.Energy["M"], energy.MonolithicMessage(h, 32*1024))
		res.Energy["D"] = append(res.Energy["D"], energy.DistributedMessage(h, 1024))
		res.Energy["N"] = append(res.Energy["N"], energy.NocstarMessage(h, 1024))
	}
	return res
}

// Render prints the component breakdown per design and hop count.
func (r Fig11bResult) Render() string {
	t := stats.NewTable("Fig. 11(b): per-message energy (pJ): link/switch/control/SRAM")
	t.Row("hops", "design", "link", "switch", "control", "SRAM", "total")
	for i, h := range r.Hops {
		for _, d := range []string{"M", "D", "N"} {
			e := r.Energy[d][i]
			t.Row(h, d, e.Link, e.Switch, e.Control, e.SRAM, e.Total())
		}
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Table I — interconnect design space.

// Table1Result pairs numeric design points with qualitative verdicts.
type Table1Result struct {
	Points   []noc.DesignPoint
	Verdicts []noc.DesignVerdicts
}

// Table1 computes the design space for a 64-node chip.
func Table1() Table1Result {
	points := noc.DesignSpace(64)
	return Table1Result{Points: points, Verdicts: noc.Classify(points)}
}

// Render prints numeric values and the paper's qualitative marks.
func (r Table1Result) Render() string {
	var b strings.Builder
	t := stats.NewTable("Table I: TLB interconnect design choices (64 nodes)")
	t.Row("NOC", "avg latency", "bisection links", "area mm^2", "power mW",
		"Lat", "BW", "Area", "Pow")
	for i, p := range r.Points {
		v := r.Verdicts[i]
		t.Row(p.Name, fmt.Sprintf("%.1f", p.AvgLatency), p.BisectionLinks,
			fmt.Sprintf("%.2f", p.AreaMM2), fmt.Sprintf("%.0f", p.PowerMW),
			v.Latency.String(), v.Bandwidth.String(), v.Area.String(), v.Power.String())
	}
	b.WriteString(t.String())
	return b.String()
}
