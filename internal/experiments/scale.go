package experiments

import (
	"fmt"

	"nocstar/internal/stats"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// ---------------------------------------------------------------------
// 1024-core smoke — the scale target the partitioned parallel engine
// exists for. One gups-like high-miss workload on a 32x32 mesh of
// distributed slices, with a deliberately small per-thread instruction
// budget: over a thousand threads that still totals millions of memory
// references, enough to exercise every slice, but it completes in
// minutes rather than hours. Results are deterministic and invariant in
// Options.Shards.

// smoke1024Instr caps the per-thread budget: the point of the smoke is
// breadth (1024 tiles live at once), not depth.
const smoke1024Instr = 10_000

// ScaleSmokeResult summarizes the 1024-core run.
type ScaleSmokeResult struct {
	Cores          int
	InstrPerThread uint64
	Cycles         uint64
	IPC            float64
	L1MissRate     float64
	L2MissRate     float64
	LocalFraction  float64
	Walks          uint64
	AvgNetCycles   float64
}

// Smoke1024 runs the 1024-core DistributedMesh smoke.
func Smoke1024(o Options) ScaleSmokeResult {
	const cores = 1024
	instr := o.Instr
	if instr == 0 || instr > smoke1024Instr {
		instr = smoke1024Instr
	}
	spec, ok := workload.ByName("gups")
	if !ok {
		spec = workload.Suite()[0]
	}
	cfg := o.baseConfig(system.DistributedMesh, spec, cores, false)
	cfg.InstrPerThread = instr
	cfg.WarmupInstr = 0 // cold: the smoke measures breadth, not steady state
	r := o.submit(cfg).Wait()
	local := 0.0
	if r.L2Accesses > 0 {
		local = float64(r.LocalSlice) / float64(r.L2Accesses)
	}
	return ScaleSmokeResult{
		Cores:          cores,
		InstrPerThread: instr,
		Cycles:         r.Cycles,
		IPC:            r.IPC,
		L1MissRate:     r.L1MissRate(),
		L2MissRate:     r.L2MissRate(),
		LocalFraction:  local,
		Walks:          r.Walks,
		AvgNetCycles:   r.AvgNetCycles,
	}
}

// Render prints the smoke summary.
func (r ScaleSmokeResult) Render() string {
	t := stats.NewTable(fmt.Sprintf("%d-core DistributedMesh smoke (%d instr/thread)",
		r.Cores, r.InstrPerThread))
	t.Row("cycles", "ipc", "l1 miss", "l2 miss", "local frac", "walks", "avg net cyc")
	t.Row(r.Cycles, fmt.Sprintf("%.3f", r.IPC),
		fmt.Sprintf("%.4f", r.L1MissRate), fmt.Sprintf("%.4f", r.L2MissRate),
		fmt.Sprintf("%.3f", r.LocalFraction), r.Walks,
		fmt.Sprintf("%.1f", r.AvgNetCycles))
	return t.String()
}
