package experiments

import (
	"fmt"
	"sort"
	"strings"

	"nocstar/internal/runner"
	"nocstar/internal/stats"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// ---------------------------------------------------------------------
// Fig. 18 — multiprogrammed combinations of four applications, eight
// threads each, on a 32-core system: overall throughput speedup and the
// worst-performing application's speedup, for each shared organization.

// Fig18Combo is one 4-app combination's outcome.
type Fig18Combo struct {
	Apps []string
	// Throughput and Worst map organization -> speedup vs private.
	Throughput map[string]float64
	Worst      map[string]float64
}

// Fig18Result holds all evaluated combinations.
type Fig18Result struct {
	Combos []Fig18Combo
	Orgs   []string
}

// fig18Orgs are the organizations Fig. 18 plots.
var fig18Orgs = map[string]system.Org{
	"Monolithic":  system.MonolithicMesh,
	"Distributed": system.DistributedMesh,
	"NOCSTAR":     system.Nocstar,
}

// Fig18 evaluates the C(11,4) = 330 combinations (or the first
// o.Combos of them in deterministic order). Each application runs eight
// threads, using all 32 cores.
func Fig18(o Options) Fig18Result {
	suite := workload.Suite()
	combos := chooseFour(len(suite))
	if o.Combos > 0 && o.Combos < len(combos) {
		combos = combos[:o.Combos]
	}
	res := Fig18Result{Orgs: []string{"Monolithic", "Distributed", "NOCSTAR"}}
	// Submit every combination's private and shared runs up front, then
	// join in the deterministic combination order.
	type comboRuns struct {
		names []string
		priv  *runner.Future
		orgs  []*runner.Future // indexed like res.Orgs
	}
	var pending []comboRuns
	for _, idx := range combos {
		apps := make([]system.App, 4)
		names := make([]string, 4)
		for i, wi := range idx {
			apps[i] = system.App{Spec: suite[wi], Threads: 8, HammerSlice: system.HammerNone}
			names[i] = suite[wi].Name
		}
		mkConfig := func(org system.Org) system.Config {
			return system.Config{
				Org:            org,
				Cores:          32,
				Apps:           apps,
				InstrPerThread: o.Instr,
				Seed:           o.Seed,
			}
		}
		cr := comboRuns{names: names, priv: o.submit(mkConfig(system.Private))}
		for _, name := range res.Orgs {
			cr.orgs = append(cr.orgs, o.submit(mkConfig(fig18Orgs[name])))
		}
		pending = append(pending, cr)
	}
	for _, cr := range pending {
		priv := cr.priv.Wait()
		combo := Fig18Combo{
			Apps:       cr.names,
			Throughput: map[string]float64{},
			Worst:      map[string]float64{},
		}
		for i, name := range res.Orgs {
			r := cr.orgs[i].Wait()
			combo.Throughput[name] = r.ThroughputSpeedupOver(priv)
			combo.Worst[name] = r.WorstAppSpeedupOver(priv)
		}
		res.Combos = append(res.Combos, combo)
	}
	return res
}

// chooseFour enumerates 4-element index combinations in lexicographic
// order.
func chooseFour(n int) [][4]int {
	var out [][4]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				for d := c + 1; d < n; d++ {
					out = append(out, [4]int{a, b, c, d})
				}
			}
		}
	}
	return out
}

// SortedThroughput returns one organization's throughput speedups in
// ascending order (the paper plots the sorted curve).
func (r Fig18Result) SortedThroughput(org string) []float64 {
	var out []float64
	for _, c := range r.Combos {
		out = append(out, c.Throughput[org])
	}
	sort.Float64s(out)
	return out
}

// SortedWorst returns the worst-app speedups in ascending order.
func (r Fig18Result) SortedWorst(org string) []float64 {
	var out []float64
	for _, c := range r.Combos {
		out = append(out, c.Worst[org])
	}
	sort.Float64s(out)
	return out
}

// DegradedFraction reports the fraction of combinations where the
// organization's metric falls below 1.0.
func (r Fig18Result) DegradedFraction(org string, worst bool) float64 {
	if len(r.Combos) == 0 {
		return 0
	}
	n := 0
	for _, c := range r.Combos {
		v := c.Throughput[org]
		if worst {
			v = c.Worst[org]
		}
		if v < 1 {
			n++
		}
	}
	return float64(n) / float64(len(r.Combos))
}

// Render prints summary percentiles of both sorted curves.
func (r Fig18Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 18: %d multiprogrammed 4-app combinations on 32 cores\n", len(r.Combos))
	t := stats.NewTable("overall throughput speedup (percentiles of sorted curve)")
	t.Row("org", "min", "p25", "median", "p75", "max", "% degraded")
	for _, org := range r.Orgs {
		// Already ascending: PercentileSorted avoids re-copying and
		// re-sorting the curve for every percentile.
		s := r.SortedThroughput(org)
		t.Row(org,
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 0)),
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 25)),
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 50)),
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 75)),
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 100)),
			fmt.Sprintf("%.1f", 100*r.DegradedFraction(org, false)))
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	t2 := stats.NewTable("minimum achieved (worst-app) speedup")
	t2.Row("org", "min", "p25", "median", "p75", "max", "% degraded")
	for _, org := range r.Orgs {
		s := r.SortedWorst(org)
		t2.Row(org,
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 0)),
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 25)),
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 50)),
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 75)),
			fmt.Sprintf("%.3f", stats.PercentileSorted(s, 100)),
			fmt.Sprintf("%.1f", 100*r.DegradedFraction(org, true)))
	}
	b.WriteString(t2.String())
	return b.String()
}
