package experiments

import (
	"fmt"
	"sort"
)

// Renderer is any experiment result that can print its rows.
type Renderer interface {
	Render() string
}

// Entry describes one runnable experiment.
type Entry struct {
	ID          string
	Description string
	Run         func(Options) Renderer
}

// Registry lists every experiment by figure/table ID. Each entry's Run
// stamps Options.Experiment with its ID (unless the caller set one), so
// every simulation a driver submits carries its experiment's name as a
// pprof label.
func Registry() []Entry {
	entries := []Entry{
		{"tab1", "Table I: interconnect design space",
			func(Options) Renderer { return Table1() }},
		{"fig2", "Fig. 2: % private L2 TLB misses eliminated by sharing",
			func(o Options) Renderer { return Fig2(o) }},
		{"fig3", "Fig. 3: SRAM TLB latency vs size",
			func(Options) Renderer { return Fig3() }},
		{"fig4", "Fig. 4: monolithic shared TLB at forced access latencies",
			func(o Options) Renderer { return Fig4(o) }},
		{"fig5", "Fig. 5: shared L2 TLB access concurrency (32 cores)",
			func(o Options) Renderer { return Fig5(o) }},
		{"fig6", "Fig. 6: concurrency vs L1 size, core count, slice count",
			func(o Options) Renderer { return Fig6(o) }},
		{"fig9", "Fig. 9: NOCSTAR tile power/area",
			func(Options) Renderer { return Fig9() }},
		{"fig11a", "Fig. 11(a): access latency vs hops",
			func(Options) Renderer { return Fig11a() }},
		{"fig11b", "Fig. 11(b): per-message energy vs hops",
			func(Options) Renderer { return Fig11b() }},
		{"fig11c", "Fig. 11(c): latency vs injection rate (64 nodes)",
			func(o Options) Renderer { return Fig11c(o) }},
		{"fig12", "Fig. 12: speedups, 16 cores, 4KB pages",
			func(o Options) Renderer { return Fig12(o) }},
		{"fig13", "Fig. 13: speedups, 16 cores, superpages",
			func(o Options) Renderer { return Fig13(o) }},
		{"fig14", "Fig. 14: scalability and energy, 16-64 cores",
			func(o Options) Renderer { return Fig14(o) }},
		{"fig15", "Fig. 15: interconnect decomposition, 32 cores",
			func(o Options) Renderer { return Fig15(o) }},
		{"fig16l", "Fig. 16 (left): link acquisition policy",
			func(o Options) Renderer { return Fig16Left(o) }},
		{"fig16r", "Fig. 16 (right): invalidation leader granularity",
			func(o Options) Renderer { return Fig16Right(o) }},
		{"fig17", "Fig. 17: page walk placement",
			func(o Options) Renderer { return Fig17(o) }},
		{"tab3", "Table III: prefetch/SMT/PTW-latency sensitivity",
			func(o Options) Renderer { return Table3(o) }},
		{"fig18", "Fig. 18: 330 multiprogrammed combinations",
			func(o Options) Renderer { return Fig18(o) }},
		{"fig19", "Fig. 19: TLB storm microbenchmark",
			func(o Options) Renderer { return Fig19(o) }},
		{"slice", "TLB slice microbenchmark",
			func(o Options) Renderer { return SliceHammer(o) }},
		{"abl-hpc", "Ablation: NOCSTAR vs HPCmax pipelining bound",
			func(o Options) Renderer { return AblationHPC(o) }},
		{"abl-spec", "Ablation: speculative response path setup",
			func(o Options) Renderer { return AblationSpeculation(o) }},
		{"abl-qos", "Ablation: QoS slice partitioning (future work)",
			func(o Options) Renderer { return AblationQoS(o) }},
		{"smoke1024", "1024-core DistributedMesh smoke (sharded-engine scale target)",
			func(o Options) Renderer { return Smoke1024(o) }},
		{"placement", "Slice placement vs fabric topology (speedup over row-major)",
			func(o Options) Renderer { return Placement(o) }},
	}
	for i := range entries {
		id, run := entries[i].ID, entries[i].Run
		entries[i].Run = func(o Options) Renderer {
			if o.Experiment == "" {
				o.Experiment = id
			}
			return run(o)
		}
	}
	return entries
}

// Description is the marshalable summary of one registry entry, the
// document GET /v1/experiments serves.
type Description struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

// Describe lists every experiment's ID and description in registry
// order.
func Describe() []Description {
	reg := Registry()
	out := make([]Description, len(reg))
	for i, e := range reg {
		out[i] = Description{ID: e.ID, Description: e.Description}
	}
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Registry()))
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
