package experiments

import (
	"strings"
	"testing"
)

// testOptions shrinks runs for test speed while keeping enough work for
// the qualitative shapes to emerge. A reduced workload set covers the
// three behaviour classes: poor locality (canneal, gups), moderate
// (graph500), good (olio).
func testOptions() Options {
	return Options{
		Instr:     60_000,
		Seed:      1,
		Workloads: []string{"canneal", "graph500", "olio", "gups"},
	}
}

func TestFig2Shape(t *testing.T) {
	r := Fig2(testOptions())
	if len(r.Workloads) != 4 {
		t.Fatalf("workloads = %v", r.Workloads)
	}
	for _, w := range r.Workloads {
		for _, c := range r.Cores {
			v := r.Eliminated[w][c]
			if v < 10 || v > 100 {
				t.Fatalf("%s @%d cores: elimination %.1f%% outside plausible band", w, c, v)
			}
		}
		// Elimination must grow with core count (the paper's key trend).
		if r.Eliminated[w][64] <= r.Eliminated[w][16] {
			t.Fatalf("%s: elimination did not grow with cores: %v", w, r.Eliminated[w])
		}
	}
	if !strings.Contains(r.Render(), "average") {
		t.Fatal("render missing average row")
	}
}

func TestFig3Anchors(t *testing.T) {
	r := Fig3()
	if len(r.Multipliers) != 8 {
		t.Fatalf("points = %d", len(r.Multipliers))
	}
	if r.Cycles[1] != 9 {
		t.Fatalf("1x latency = %d, want 9", r.Cycles[1])
	}
	for i := 1; i < len(r.Cycles); i++ {
		if r.Cycles[i] < r.Cycles[i-1] {
			t.Fatal("latency curve not monotone")
		}
	}
	if !strings.Contains(r.Render(), "0.5x") {
		t.Fatal("render missing sizes")
	}
}

func TestFig4LatencyOrdering(t *testing.T) {
	r := Fig4(testOptions())
	// Lower forced access latency must never hurt: 9cc >= 16cc >= 25cc.
	for _, w := range r.Workloads {
		s := r.Speedup[w]
		if s["Shared(9-cc)"] < s["Shared(16-cc)"] || s["Shared(16-cc)"] < s["Shared(25-cc)"] {
			t.Fatalf("%s: speedups not ordered by latency: %v", w, s)
		}
	}
	// The paper's 25-cycle configuration dips 10-15% below the 9-cycle
	// one. Our absolute levels sit higher (variable page walks make the
	// hit-rate gains worth more; see EXPERIMENTS.md), but the relative
	// latency penalty must reproduce.
	lo, hi := r.Average("Shared(25-cc)"), r.Average("Shared(9-cc)")
	if hi/lo < 1.08 {
		t.Fatalf("9-cc (%.3f) not clearly above 25-cc (%.3f)", hi, lo)
	}
}

func TestFig5MostAccessesLowConcurrency(t *testing.T) {
	r := Fig5(testOptions())
	for _, w := range r.Workloads {
		f := r.Fractions[w]
		low := f[0] + f[1] + f[2] // 1, 2-4, 5-8
		if low < 0.5 {
			t.Fatalf("%s: only %.2f of accesses at low concurrency", w, low)
		}
	}
}

func TestFig6SmallerL1MoreContention(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal", "olio"}
	r := Fig6(o)
	weight := func(f []float64) float64 {
		// Expected concurrency proxy: weight buckets by their midpoint.
		mids := []float64{1, 3, 6.5, 10.5, 14.5, 18.5, 22.5, 26.5, 31}
		sum := 0.0
		for i, v := range f {
			sum += v * mids[i]
		}
		return sum
	}
	if weight(r.Left["0.5xL1"]) <= weight(r.Left["1.5xL1"]) {
		t.Fatalf("smaller L1 TLBs did not raise concurrency: %.2f vs %.2f",
			weight(r.Left["0.5xL1"]), weight(r.Left["1.5xL1"]))
	}
	// Per-slice concurrency stays low even at high slice counts
	// (Fig. 6 right: ~60% of accesses contention-free at 256-512).
	for _, label := range r.RightLabels {
		f := r.Right[label]
		if f[0]+f[1] < 0.4 {
			t.Fatalf("%s: per-slice concurrency too high: %v", label, f)
		}
	}
}

func TestFig9Published(t *testing.T) {
	r := Fig9()
	if r.Costs.SRAMPowerMW != 10.91 {
		t.Fatal("Fig. 9 numbers drifted")
	}
	if !strings.Contains(r.Render(), "Arbiters") {
		t.Fatal("render missing components")
	}
}

func TestFig11aOrdering(t *testing.T) {
	r := Fig11a()
	// At every nonzero hop count: NOCSTAR < distributed < monolithic,
	// and higher HPCmax is never slower.
	for i, h := range r.Hops {
		if h == 0 {
			continue
		}
		m := r.Latency["Monolithic"][i]
		d := r.Latency["Distributed"][i]
		n4 := r.Latency["NOCSTAR-HPC4"][i]
		n8 := r.Latency["NOCSTAR-HPC8"][i]
		n16 := r.Latency["NOCSTAR-HPC16"][i]
		if !(n16 <= n8 && n8 <= n4 && n4 <= d && d < m) {
			t.Fatalf("h=%d: ordering broken: m=%d d=%d n4=%d n8=%d n16=%d", h, m, d, n4, n8, n16)
		}
		if h >= 4 && n4 >= d {
			t.Fatalf("h=%d: NOCSTAR not strictly below distributed", h)
		}
	}
	// The paper's extremes: monolithic reaches ~40 cycles at 12 hops,
	// NOCSTAR stays near the slice latency.
	last := len(r.Hops) - 1
	if r.Latency["Monolithic"][last] < 35 || r.Latency["NOCSTAR-HPC16"][last] > 13 {
		t.Fatalf("extremes off: mono=%d nocstar=%d",
			r.Latency["Monolithic"][last], r.Latency["NOCSTAR-HPC16"][last])
	}
}

func TestFig11bShape(t *testing.T) {
	r := Fig11b()
	last := len(r.Hops) - 1
	m := r.Energy["M"][last]
	d := r.Energy["D"][last]
	n := r.Energy["N"][last]
	if !(n.Total() < d.Total() && d.Total() < m.Total()) {
		t.Fatalf("energy ordering broken: N=%v D=%v M=%v", n.Total(), d.Total(), m.Total())
	}
	if n.Control <= d.Control {
		t.Fatal("NOCSTAR control energy should exceed distributed")
	}
}

func TestFig11cContentionGrowsWithRate(t *testing.T) {
	o := testOptions()
	r := Fig11c(o)
	if len(r.Rates) != 9 {
		t.Fatalf("rates = %v", r.Rates)
	}
	first, last := r.NoContention[0], r.NoContention[len(r.NoContention)-1]
	if first <= last {
		t.Fatalf("contention-free fraction did not drop with rate: %.1f -> %.1f", first, last)
	}
	// Paper: at 0.1 injection the average latency stays within ~3 cycles.
	for i, rate := range r.Rates {
		if rate == 0.1 && r.NocstarLat[i] > 4 {
			t.Fatalf("latency at 0.1 injection = %.2f, paper reports <=3", r.NocstarLat[i])
		}
	}
	// NOCSTAR under load stays well below the multi-hop mesh reference.
	if r.NocstarLat[4] >= r.MeshLat[4] {
		t.Fatalf("NOCSTAR %.2f not below mesh %.2f", r.NocstarLat[4], r.MeshLat[4])
	}
}

func TestFig12Ordering(t *testing.T) {
	r := Fig12(testOptions())
	mono := r.Average("Monolithic")
	dist := r.Average("Distributed")
	ns := r.Average("NOCSTAR")
	ideal := r.Average("Ideal")
	if !(mono < ns && dist < ns && ns <= ideal*1.001) {
		t.Fatalf("ordering broken: mono=%.3f dist=%.3f ns=%.3f ideal=%.3f", mono, dist, ns, ideal)
	}
	if ns < 1.05 {
		t.Fatalf("NOCSTAR average %.3f, expected >1.05", ns)
	}
	if ns < 0.92*ideal {
		t.Fatalf("NOCSTAR %.3f not within ~95%% of ideal %.3f", ns, ideal)
	}
}

func TestFig13SuperpagesStillWin(t *testing.T) {
	r := Fig13(testOptions())
	ns := r.Average("NOCSTAR")
	if ns < 1.04 {
		t.Fatalf("NOCSTAR with THP = %.3f, expected clear speedup", ns)
	}
	if r.Average("Monolithic") >= ns {
		t.Fatal("monolithic beat NOCSTAR under THP")
	}
}

func TestFig14Scaling(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal", "gups"}
	o.Instr = 40_000
	r := Fig14(o)
	get := func(cores int, org string) Fig14Row {
		for _, row := range r.Rows {
			if row.Cores == cores && row.Org == org {
				return row
			}
		}
		t.Fatalf("missing row %d/%s", cores, org)
		return Fig14Row{}
	}
	for _, cores := range []int{16, 32, 64} {
		ns := get(cores, "NOCSTAR")
		if ns.Avg <= get(cores, "Monolithic").Avg || ns.Avg <= get(cores, "Distributed").Avg {
			t.Fatalf("%d cores: NOCSTAR not best", cores)
		}
		if ns.EnergySaved <= 0 {
			t.Fatalf("%d cores: NOCSTAR saved no energy", cores)
		}
		if ns.Min > ns.Avg || ns.Avg > ns.Max {
			t.Fatalf("%d cores: min/avg/max inconsistent", cores)
		}
	}
	// NOCSTAR's advantage grows with core count.
	if get(64, "NOCSTAR").Avg <= get(16, "NOCSTAR").Avg {
		t.Fatal("NOCSTAR speedup did not grow with cores")
	}
}

func TestFig15Decomposition(t *testing.T) {
	r := Fig15(testOptions())
	ns := r.Average("NOCSTAR")
	nsIdeal := r.Average("NOCSTAR(ideal)")
	ideal := r.Average("Ideal")
	if !(r.Average("Mono(mesh)") <= r.Average("Mono(SMART)")+0.02) {
		t.Fatal("SMART did not help the monolithic design")
	}
	if !(r.Average("Distributed") < ns && ns <= nsIdeal*1.005 && nsIdeal <= ideal*1.005) {
		t.Fatalf("decomposition ordering broken: dist=%.3f ns=%.3f nsIdeal=%.3f ideal=%.3f",
			r.Average("Distributed"), ns, nsIdeal, ideal)
	}
	// Headline claim: within 95% of the zero-latency ideal.
	if ns < 0.93*ideal {
		t.Fatalf("NOCSTAR %.3f below 95%% of ideal %.3f", ns, ideal)
	}
}

func TestFig16LeftOneWayWins(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal", "gups"}
	o.CoreCounts = []int{16, 32}
	r := Fig16Left(o)
	for _, cores := range r.Cores {
		if r.Average(cores, "2xone-way") < r.Average(cores, "1xtwo-way")-0.005 {
			t.Fatalf("%d cores: one-way acquire lost: %.3f vs %.3f", cores,
				r.Average(cores, "2xone-way"), r.Average(cores, "1xtwo-way"))
		}
	}
}

func TestFig16RightLeadersHelp(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal", "gups"}
	o.Instr = 40_000
	r := Fig16Right(o)
	for _, cores := range r.Cores {
		for _, v := range r.Variants {
			if avg := r.Average(cores, v); avg <= 0 {
				t.Fatalf("%d/%s: degenerate speedup %.3f", cores, v, avg)
			}
		}
	}
	// With leader batching the performance should be at least as good as
	// direct sends at the largest core count (the paper's motivation).
	best := r.Average(64, "per-8-core")
	direct := r.Average(64, "per-N-core")
	if best < direct-0.01 {
		t.Fatalf("leaders (%.3f) notably worse than direct sends (%.3f)", best, direct)
	}
}

func TestFig17RequestSlightlyBetter(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal", "gups"}
	o.CoreCounts = []int{16, 32}
	r := Fig17(o)
	for _, cores := range r.Cores {
		req := r.Average(cores, "Request")
		rem := r.Average(cores, "Remote")
		if req < rem-0.02 {
			t.Fatalf("%d cores: request-core policy clearly worse: %.3f vs %.3f", cores, req, rem)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal", "gups"}
	o.Instr = 40_000
	r := Table3(o)
	if len(r.Rows) != len(table3Scenarios)*3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// NOCSTAR beats distributed beats monolithic in the base scenario.
	base := "No/1/Variable"
	ns, _ := r.Row(base, "NOCSTAR")
	d, _ := r.Row(base, "Distributed")
	m, _ := r.Row(base, "Monolithic")
	if !(ns.Avg > d.Avg && d.Avg > m.Avg) {
		t.Fatalf("base scenario ordering broken: %v %v %v", m.Avg, d.Avg, ns.Avg)
	}
	// Higher fixed PTW latency favours shared TLBs monotonically.
	f10, _ := r.Row("No/1/Fixed-10", "NOCSTAR")
	f80, _ := r.Row("No/1/Fixed-80", "NOCSTAR")
	if f80.Avg <= f10.Avg {
		t.Fatalf("Fixed-80 (%.3f) not above Fixed-10 (%.3f)", f80.Avg, f10.Avg)
	}
	// Even at the unrealistically low Fixed-10, NOCSTAR still wins.
	if f10.Avg < 1.0 {
		t.Fatalf("NOCSTAR at Fixed-10 = %.3f, paper reports >1", f10.Avg)
	}
}

func TestFig18Shapes(t *testing.T) {
	o := testOptions()
	o.Instr = 25_000
	o.Combos = 6
	r := Fig18(o)
	if len(r.Combos) != 6 {
		t.Fatalf("combos = %d", len(r.Combos))
	}
	// NOCSTAR improves aggregate throughput for every combination and
	// degrades fewer combinations than monolithic.
	if frac := r.DegradedFraction("NOCSTAR", false); frac > 0.2 {
		t.Fatalf("NOCSTAR degraded %.0f%% of combos", 100*frac)
	}
	if r.DegradedFraction("Monolithic", true) < r.DegradedFraction("NOCSTAR", true) {
		t.Fatal("monolithic degraded fewer worst-apps than NOCSTAR")
	}
	sorted := r.SortedThroughput("NOCSTAR")
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("sorted curve not sorted")
		}
	}
}

func TestFig19StormDegradesButNocstarLeads(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal", "gups"}
	o.Instr = 40_000
	o.CoreCounts = []int{16, 32}
	r := Fig19(o)
	for _, cores := range []int{16, 32} {
		ns, ok := r.Cell(cores, "NSTAR")
		if !ok {
			t.Fatalf("missing NSTAR cell at %d cores", cores)
		}
		mon, _ := r.Cell(cores, "Mon")
		if ns.WithUB <= mon.WithUB {
			t.Fatalf("%d cores: NOCSTAR (%.3f) not above monolithic (%.3f) under storm",
				cores, ns.WithUB, mon.WithUB)
		}
	}
}

func TestSliceHammerNocstarBest(t *testing.T) {
	o := testOptions()
	o.Instr = 40_000
	r := SliceHammer(o)
	ns := r.Victim["NOCSTAR"]
	if ns <= r.Victim["Monolithic"] {
		t.Fatalf("NOCSTAR (%.3f) not above monolithic (%.3f) under hammering",
			ns, r.Victim["Monolithic"])
	}
}

func TestTable1Render(t *testing.T) {
	r := Table1()
	out := r.Render()
	for _, name := range []string{"Bus", "Mesh", "FBFly-wide", "FBFly-narrow", "SMART", "NOCSTAR"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table I missing %s", name)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 26 {
		t.Fatalf("registry has %d entries, want 26", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Fatalf("incomplete entry %s", e.ID)
		}
	}
	if _, err := Lookup("fig12"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted unknown id")
	}
}

func TestChooseFourCount(t *testing.T) {
	if got := len(chooseFour(11)); got != 330 {
		t.Fatalf("C(11,4) = %d, want 330", got)
	}
	if got := len(chooseFour(4)); got != 1 {
		t.Fatalf("C(4,4) = %d", got)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Instr == 0 || o.Seed == 0 {
		t.Fatal("degenerate defaults")
	}
	if len(o.suite()) != 11 {
		t.Fatal("default suite incomplete")
	}
	if len(o.focusSuite()) != 4 {
		t.Fatal("focus suite wrong")
	}
}

func TestAblationHPCShape(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal"}
	o.Instr = 30_000
	r := AblationHPC(o)
	if len(r.HPC) != len(r.Speedup) {
		t.Fatal("ragged result")
	}
	// Tighter HPC bounds (more latch stages) must not help.
	if r.Speedup[0] > r.Speedup[len(r.Speedup)-1]+0.01 {
		t.Fatalf("HPC=2 (%.3f) beat unbounded (%.3f)", r.Speedup[0], r.Speedup[len(r.Speedup)-1])
	}
	for _, v := range r.Speedup {
		if v < 1.0 {
			t.Fatalf("NOCSTAR below private even pipelined: %v", r.Speedup)
		}
	}
}

func TestAblationSpeculation(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"canneal"}
	o.Instr = 30_000
	r := AblationSpeculation(o)
	// Speculative setup can only help (it removes a cycle of response
	// latency when uncontended).
	if r.Demand > r.Speculative+0.005 {
		t.Fatalf("demand setup (%.3f) beat speculative (%.3f)", r.Demand, r.Speculative)
	}
}

func TestAblationQoSProtectsVictim(t *testing.T) {
	o := testOptions()
	o.Instr = 40_000
	r := AblationQoS(o)
	if r.VictimQoS < r.VictimFree-0.01 {
		t.Fatalf("quota hurt the victim: %.3f vs %.3f", r.VictimQoS, r.VictimFree)
	}
	if r.AggressorQoS > r.AggressorFree+0.05 {
		t.Fatalf("quota helped the aggressor? %.3f vs %.3f", r.AggressorQoS, r.AggressorFree)
	}
}

func TestCSVOutputs(t *testing.T) {
	o := testOptions()
	o.Workloads = []string{"olio"}
	o.Instr = 15_000
	grid := Fig12(o)
	csv := grid.CSV()
	if !strings.HasPrefix(csv, "workload,config,speedup\n") {
		t.Fatalf("grid CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "olio,NOCSTAR,") {
		t.Fatal("grid CSV missing data row")
	}
	o.Combos = 1
	f18 := Fig18(o)
	c18 := f18.CSV()
	if !strings.Contains(c18, "throughput_NOCSTAR") || len(strings.Split(c18, "\n")) < 3 {
		t.Fatalf("fig18 CSV malformed:\n%s", c18)
	}
	// Every CSVer-implementing result type compiles against the
	// interface.
	for _, c := range []CSVer{grid, f18, Fig2Result{}, Fig5Result{}, Fig11cResult{},
		Fig14Result{}, Fig19Result{}, Table3Result{}, focusGrid{}} {
		_ = c
	}
}
