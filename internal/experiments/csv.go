package experiments

import (
	"fmt"
	"strings"
)

// CSVer is implemented by experiment results that can emit their full
// data series as CSV, for plotting the figures rather than reading the
// rendered tables. cmd/nocstar-exp writes these with its -csv flag.
type CSVer interface {
	CSV() string
}

// csvRow joins cells, quoting nothing (all cells are numeric or simple
// identifiers).
func csvRow(cells ...string) string { return strings.Join(cells, ",") + "\n" }

func f3(v float64) string { return fmt.Sprintf("%.4f", v) }

// CSV emits workload,config,speedup triples.
func (g SpeedupGrid) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("workload", "config", "speedup"))
	for _, w := range g.Workloads {
		for _, c := range g.Configs {
			b.WriteString(csvRow(w, c, f3(g.Speedup[w][c])))
		}
	}
	return b.String()
}

// CSV emits workload,cores,percent_eliminated triples.
func (r Fig2Result) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("workload", "cores", "percent_eliminated"))
	for _, w := range r.Workloads {
		for _, c := range r.Cores {
			b.WriteString(csvRow(w, fmt.Sprint(c), f3(r.Eliminated[w][c])))
		}
	}
	return b.String()
}

// CSV emits the per-bucket fractions per workload.
func (r Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow(append([]string{"workload"}, r.Buckets...)...))
	for _, w := range r.Workloads {
		cells := []string{w}
		for _, f := range r.Fractions[w] {
			cells = append(cells, f3(f))
		}
		b.WriteString(csvRow(cells...))
	}
	return b.String()
}

// CSV emits the injection sweep series.
func (r Fig11cResult) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("injection_rate", "nocstar_latency", "percent_no_contention", "mesh_latency"))
	for i := range r.Rates {
		b.WriteString(csvRow(f3(r.Rates[i]), f3(r.NocstarLat[i]),
			f3(r.NoContention[i]), f3(r.MeshLat[i])))
	}
	return b.String()
}

// CSV emits the scalability rows.
func (r Fig14Result) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("cores", "org", "min", "avg", "max", "percent_energy_saved"))
	for _, row := range r.Rows {
		b.WriteString(csvRow(fmt.Sprint(row.Cores), row.Org,
			f3(row.Min), f3(row.Avg), f3(row.Max), f3(row.EnergySaved)))
	}
	return b.String()
}

// CSV emits the full sorted Fig. 18 curves: rank, then one throughput and
// one worst-app column per organization — exactly the series the paper
// plots.
func (r Fig18Result) CSV() string {
	var b strings.Builder
	header := []string{"rank"}
	for _, org := range r.Orgs {
		header = append(header, "throughput_"+org, "worst_"+org)
	}
	b.WriteString(csvRow(header...))
	curves := map[string][]float64{}
	for _, org := range r.Orgs {
		curves["t"+org] = r.SortedThroughput(org)
		curves["w"+org] = r.SortedWorst(org)
	}
	for i := 0; i < len(r.Combos); i++ {
		cells := []string{fmt.Sprint(i)}
		for _, org := range r.Orgs {
			cells = append(cells, f3(curves["t"+org][i]), f3(curves["w"+org][i]))
		}
		b.WriteString(csvRow(cells...))
	}
	return b.String()
}

// CSV emits the storm grid.
func (r Fig19Result) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("cores", "org", "alone", "with_ub"))
	for _, c := range r.Cells {
		b.WriteString(csvRow(fmt.Sprint(c.Cores), c.Org, f3(c.Alone), f3(c.WithUB)))
	}
	return b.String()
}

// CSV emits cores,variant,workload,speedup rows.
func (g focusGrid) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("cores", "variant", "workload", "speedup"))
	for _, c := range g.Cores {
		for _, v := range g.Variants {
			for _, w := range g.Workloads {
				b.WriteString(csvRow(fmt.Sprint(c), v, w, f3(g.Speedup[c][v][w])))
			}
		}
	}
	return b.String()
}

// CSV emits the sensitivity rows.
func (r Table3Result) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("scenario", "org", "min", "avg", "max"))
	for _, row := range r.Rows {
		b.WriteString(csvRow(row.Prefetch, row.Org, f3(row.Min), f3(row.Avg), f3(row.Max)))
	}
	return b.String()
}
