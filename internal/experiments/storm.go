package experiments

import (
	"fmt"

	"nocstar/internal/runner"
	"nocstar/internal/stats"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// ---------------------------------------------------------------------
// Fig. 19 — the TLB-storm microbenchmark: workloads co-run with a
// process that context-switches aggressively (flushing all shared TLB
// state) and continuously promotes/demotes superpages (512-entry
// invalidation bursts), at 16/32/64 cores.

// Fig19Cell is one (cores, org) pair of speedups.
type Fig19Cell struct {
	Cores  int
	Org    string
	Alone  float64 // workload running alone (matches Figs. 12-14 data)
	WithUB float64 // co-run with the storm microbenchmark
}

// Fig19Result holds the grid.
type Fig19Result struct {
	Cells []Fig19Cell
}

// stormConfig is the paper's most aggressive setting, scaled to the
// simulated window: context switches every ~0.5 ms equivalent and a
// steady promote/demote churn.
func stormConfig(instr uint64) *system.StormConfig {
	cs := instr / 4
	if cs < 10_000 {
		cs = 10_000
	}
	return &system.StormConfig{
		ContextSwitchInterval: cs,
		PromoteDemoteInterval: 8_000,
		Pages:                 4096,
	}
}

// Fig19 runs the storm study, averaging speedups across the (possibly
// filtered) suite.
func Fig19(o Options) Fig19Result {
	var res Fig19Result
	orgs := []struct {
		name string
		org  system.Org
	}{
		{"Mon", system.MonolithicMesh},
		{"Dis", system.DistributedMesh},
		{"NSTAR", system.Nocstar},
	}
	type quad struct {
		privAlone, alone, privStorm, storm *runner.Future
	}
	var pending [][]quad // one slice of quads per (cores, org) cell
	for _, cores := range o.coreCounts() {
		for _, org := range orgs {
			var quads []quad
			for _, spec := range o.suite() {
				cfgA := o.baseConfig(org.org, spec, cores, false)
				cfgA.L2EntriesPerCore = 0

				// Under the storm, private baselines suffer too: the
				// comparison is each organization with the storm active
				// versus private with the storm active. Shared
				// organizations route invalidations through one leader
				// per 8 cores, the paper's middle-ground policy.
				cfgPS := o.baseConfig(system.Private, spec, cores, false)
				cfgPS.Storm = stormConfig(o.Instr)

				cfgS := o.baseConfig(org.org, spec, cores, false)
				cfgS.L2EntriesPerCore = 0
				cfgS.Storm = stormConfig(o.Instr)
				cfgS.InvLeaders = cores / 8

				quads = append(quads, quad{
					privAlone: o.baselineFuture(spec, cores, false),
					alone:     o.submit(cfgA),
					privStorm: o.submit(cfgPS),
					storm:     o.submit(cfgS),
				})
			}
			pending = append(pending, quads)
		}
	}
	i := 0
	for _, cores := range o.coreCounts() {
		for _, org := range orgs {
			var alone, withUB []float64
			for _, q := range pending[i] {
				alone = append(alone, q.alone.Wait().SpeedupOver(q.privAlone.Wait()))
				withUB = append(withUB, q.storm.Wait().SpeedupOver(q.privStorm.Wait()))
			}
			i++
			res.Cells = append(res.Cells, Fig19Cell{
				Cores: cores, Org: org.name,
				Alone: stats.Mean64(alone), WithUB: stats.Mean64(withUB),
			})
		}
	}
	return res
}

// Cell finds a grid cell.
func (r Fig19Result) Cell(cores int, org string) (Fig19Cell, bool) {
	for _, c := range r.Cells {
		if c.Cores == cores && c.Org == org {
			return c, true
		}
	}
	return Fig19Cell{}, false
}

// Render prints the grid.
func (r Fig19Result) Render() string {
	t := stats.NewTable("Fig. 19: TLB-storm microbenchmark (avg speedup vs private)")
	t.Row("cores", "org", "alone", "w/ub")
	for _, c := range r.Cells {
		t.Row(c.Cores, c.Org, fmt.Sprintf("%.3f", c.Alone), fmt.Sprintf("%.3f", c.WithUB))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// The Section V "TLB slice microbenchmark": N-1 threads continuously
// hammer the L2 TLB slice assigned to the Nth core while that core runs
// a real workload.

// SliceHammerResult holds per-organization victim speedups.
type SliceHammerResult struct {
	Cores int
	// Speedup of the victim application vs the same scenario on private
	// L2 TLBs, per organization.
	Victim map[string]float64
}

// SliceHammer runs the stress test on a 16-core system with canneal as
// the victim.
func SliceHammer(o Options) SliceHammerResult {
	const cores = 16
	victim, _ := workload.ByName("canneal")
	hammer := workload.Uniform("hammer", 8000)

	mkConfig := func(org system.Org) system.Config {
		return system.Config{
			Org:   org,
			Cores: cores,
			Apps: []system.App{
				{Spec: victim, Threads: 1, HammerSlice: system.HammerNone},
				{Spec: hammer, Threads: cores - 1, HammerSlice: cores - 1},
			},
			InstrPerThread: o.Instr,
			Seed:           o.Seed,
		}
	}
	orgs := []struct {
		name string
		org  system.Org
	}{
		{"Monolithic", system.MonolithicMesh},
		{"Distributed", system.DistributedMesh},
		{"NOCSTAR", system.Nocstar},
	}
	privF := o.submit(mkConfig(system.Private))
	futs := make([]*runner.Future, len(orgs))
	for i, org := range orgs {
		futs[i] = o.submit(mkConfig(org.org))
	}
	priv := privF.Wait()
	res := SliceHammerResult{Cores: cores, Victim: map[string]float64{}}
	for i, org := range orgs {
		r := futs[i].Wait()
		res.Victim[org.name] = r.Apps[0].IPC / priv.Apps[0].IPC
	}
	return res
}

// Render prints the victim's speedups.
func (r SliceHammerResult) Render() string {
	t := stats.NewTable("TLB slice microbenchmark: victim speedup under slice hammering")
	t.Row("org", "victim speedup vs private")
	for _, k := range sortedKeys(r.Victim) {
		t.Row(k, fmt.Sprintf("%.3f", r.Victim[k]))
	}
	return t.String()
}
