package experiments

import (
	"encoding/json"
	"io"

	"nocstar/internal/metrics"
	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/ptw"
	"nocstar/internal/runner"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// ReportSchemaVersion identifies the RunReport JSON layout. Bump it on
// any breaking change to the document structure so downstream consumers
// (diff tooling, regression trackers) can refuse inputs they don't
// understand.
const ReportSchemaVersion = 1

// RunReport is the machine-readable record of one nocstar-exp
// invocation: the options it ran with, every experiment's structured
// data alongside its rendered text, and per-workload probe runs exposing
// the full metrics registry, NoC contention accounting, and energy
// breakdown. The document contains no timestamps or host state, so two
// invocations with the same options produce byte-identical reports at
// any -j.
type RunReport struct {
	Schema      int                `json:"schema"`
	Tool        string             `json:"tool"`
	Options     ReportOptions      `json:"options"`
	Experiments []ExperimentReport `json:"experiments"`
	Probes      []ProbeReport      `json:"probes"`
}

// ReportOptions echoes the Options the run used (the fields that affect
// results; Parallelism and Shards deliberately excluded — neither may
// change a number, so -shards=1 and -shards=4 reports are byte-identical).
type ReportOptions struct {
	Instr      uint64   `json:"instr"`
	Seed       int64    `json:"seed"`
	Workloads  []string `json:"workloads,omitempty"`
	Combos     int      `json:"combos,omitempty"`
	CoreCounts []int    `json:"core_counts,omitempty"`
	// The fabric overrides appear only when set off their defaults, so
	// reports from older invocations keep their exact bytes (additive,
	// schema stays 1).
	Topology      string `json:"topology,omitempty"`
	Placement     string `json:"placement,omitempty"`
	PlacementSeed int64  `json:"placement_seed,omitempty"`
}

// RanExperiment pairs an executed experiment with its result.
type RanExperiment struct {
	ID          string
	Description string
	Result      Renderer
}

// ExperimentReport is one experiment in the report: the result struct
// marshaled as-is (its exported fields are the figure's data series) plus
// the rendered ASCII for human eyes.
type ExperimentReport struct {
	ID          string `json:"id"`
	Description string `json:"description"`
	Data        any    `json:"data"`
	Rendered    string `json:"rendered"`
}

// ProbeReport is one per-workload NOCSTAR probe run: a standard
// one-thread-per-core simulation whose full observability surface is
// exported — every registry metric, the fabric's contention/retry/release
// accounting, the walker statistics, and the energy breakdown.
type ProbeReport struct {
	Workload         string           `json:"workload"`
	Org              string           `json:"org"`
	Cores            int              `json:"cores"`
	Cycles           uint64           `json:"cycles"`
	Instructions     uint64           `json:"instructions"`
	IPC              float64          `json:"ipc"`
	SpeedupVsPrivate float64          `json:"speedup_vs_private"`
	L1MissRate       float64          `json:"l1_miss_rate"`
	L2MissRate       float64          `json:"l2_miss_rate"`
	Metrics          metrics.Snapshot `json:"metrics"`
	Noc              NocReport        `json:"noc"`
	Energy           EnergyReport     `json:"energy"`
	PTW              ptw.Stats        `json:"ptw"`
}

// NocReport flattens the NOCSTAR fabric statistics with their derived
// ratios.
type NocReport struct {
	Messages             uint64  `json:"messages"`
	SetupAttempts        uint64  `json:"setup_attempts"`
	FirstTryGrants       uint64  `json:"first_try_grants"`
	Retries              uint64  `json:"retries"`
	Releases             uint64  `json:"releases"`
	ReleasedLinks        uint64  `json:"released_links"`
	ForeignLinks         uint64  `json:"foreign_links"`
	AvgSetupCycles       float64 `json:"avg_setup_cycles"`
	NoContentionFraction float64 `json:"no_contention_fraction"`
	AvgNetworkLatency    float64 `json:"avg_network_latency"`
}

// EnergyReport is the run's address-translation energy breakdown in pJ.
type EnergyReport struct {
	L1TLBPJ   float64 `json:"l1_tlb_pj"`
	L2TLBPJ   float64 `json:"l2_tlb_pj"`
	NetworkPJ float64 `json:"network_pj"`
	WalkPJ    float64 `json:"walk_pj"`
	StaticPJ  float64 `json:"static_pj"`
	TotalPJ   float64 `json:"total_pj"`
}

// BuildReport assembles the report for one invocation: the experiments
// that ran, plus one NOCSTAR probe (and its memoized private baseline)
// per selected workload at the smallest configured core count. Probe runs
// go through the shared pool, so they execute concurrently and dedupe
// against runs the experiments already performed.
func BuildReport(o Options, ran []RanExperiment) *RunReport {
	rep := &RunReport{
		Schema: ReportSchemaVersion,
		Tool:   "nocstar-exp",
		Options: ReportOptions{
			Instr:      o.Instr,
			Seed:       o.Seed,
			Workloads:  o.Workloads,
			Combos:     o.Combos,
			CoreCounts: o.CoreCounts,
		},
		Experiments: []ExperimentReport{},
		Probes:      []ProbeReport{},
	}
	if o.Topology != noc.TopoMesh {
		rep.Options.Topology = o.Topology.String()
	}
	if o.Placement != place.RowMajor {
		rep.Options.Placement = o.Placement.String()
		rep.Options.PlacementSeed = o.PlacementSeed
	}
	for _, e := range ran {
		rep.Experiments = append(rep.Experiments, ExperimentReport{
			ID:          e.ID,
			Description: e.Description,
			Data:        e.Result,
			Rendered:    e.Result.Render(),
		})
	}

	cores := o.coreCounts()[0]
	type probeRuns struct {
		spec      workload.Spec
		noc, base *runner.Future
	}
	var probes []probeRuns
	for _, spec := range o.suite() {
		probes = append(probes, probeRuns{
			spec: spec,
			noc:  o.submit(o.baseConfig(system.Nocstar, spec, cores, false)),
			base: o.baselineFuture(spec, cores, false),
		})
	}
	for _, p := range probes {
		res := p.noc.Wait()
		base := p.base.Wait()
		ns := res.Noc
		pr := ProbeReport{
			Workload:         p.spec.Name,
			Org:              "nocstar",
			Cores:            cores,
			Cycles:           res.Cycles,
			Instructions:     res.Instructions,
			IPC:              res.IPC,
			SpeedupVsPrivate: res.SpeedupOver(base),
			L1MissRate:       res.L1MissRate(),
			L2MissRate:       res.L2MissRate(),
			Metrics:          res.Metrics,
			Noc: NocReport{
				Messages:             ns.Messages,
				SetupAttempts:        ns.SetupAttempts,
				FirstTryGrants:       ns.FirstTryGrants,
				Retries:              ns.Retries,
				Releases:             ns.Releases,
				ReleasedLinks:        ns.ReleasedLinks,
				ForeignLinks:         ns.ForeignLinks,
				AvgSetupCycles:       ns.AvgSetupCycles(),
				NoContentionFraction: ns.NoContentionFraction(),
				AvgNetworkLatency:    ns.AvgNetworkLatency(),
			},
			Energy: EnergyReport{
				L1TLBPJ:   res.Energy.L1TLBPJ,
				L2TLBPJ:   res.Energy.L2TLBPJ,
				NetworkPJ: res.Energy.NetworkPJ,
				WalkPJ:    res.Energy.WalkPJ,
				StaticPJ:  res.Energy.StaticPJ,
				TotalPJ:   res.Energy.TotalPJ(),
			},
			PTW: res.PTW,
		}
		rep.Probes = append(rep.Probes, pr)
	}
	return rep
}

// WriteJSON writes the report as indented, key-stable JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
