package experiments

import (
	"fmt"

	"nocstar/internal/runner"
	"nocstar/internal/stats"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// This file holds ablations of NOCSTAR design choices beyond the paper's
// own figures: the maximum-hops-per-cycle pipelining bound (Section
// III-B3), the speculative response-path setup of the Fig. 10 timeline,
// and the QoS slice partitioning the paper leaves to future work.

// ---------------------------------------------------------------------
// HPCmax ablation: how much of NOCSTAR's win survives as technology
// forces pipeline latches onto the single-cycle datapath?

// HPCResult holds per-HPCmax average speedups at 64 cores.
type HPCResult struct {
	HPC     []int // 0 means unbounded (whole chip per cycle)
	Speedup []float64
}

// AblationHPC sweeps HPCmax on the 64-core system.
func AblationHPC(o Options) HPCResult {
	res := HPCResult{HPC: []int{2, 4, 8, 16, 0}}
	const cores = 64
	type pair struct{ baseline, run *runner.Future }
	runs := make([][]pair, len(res.HPC))
	for i, hpc := range res.HPC {
		for _, spec := range o.suite() {
			cfg := o.baseConfig(system.Nocstar, spec, cores, false)
			cfg.L2EntriesPerCore = 0
			cfg.HPCmax = hpc
			if hpc == 0 {
				cfg.HPCmax = 1 << 20 // effectively unbounded
			}
			runs[i] = append(runs[i], pair{o.baselineFuture(spec, cores, false), o.submit(cfg)})
		}
	}
	for _, hpcRuns := range runs {
		var vs []float64
		for _, p := range hpcRuns {
			vs = append(vs, p.run.Wait().SpeedupOver(p.baseline.Wait()))
		}
		res.Speedup = append(res.Speedup, stats.Mean64(vs))
	}
	return res
}

// Render prints the sweep.
func (r HPCResult) Render() string {
	t := stats.NewTable("Ablation: NOCSTAR speedup vs HPCmax (64 cores)")
	t.Row("HPCmax", "avg speedup")
	for i, h := range r.HPC {
		label := fmt.Sprintf("%d", h)
		if h == 0 {
			label = "unbounded"
		}
		t.Row(label, fmt.Sprintf("%.3f", r.Speedup[i]))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Speculative response-path setup ablation (Fig. 10: "The response path
// can be setup speculatively, during the L2 TLB lookup").

// SpeculationResult compares speculative vs demand response setup.
type SpeculationResult struct {
	Speculative float64
	Demand      float64
}

// AblationSpeculation measures both modes at 32 cores.
func AblationSpeculation(o Options) SpeculationResult {
	const cores = 32
	type trio struct{ baseline, spec, demand *runner.Future }
	var runs []trio
	for _, w := range o.suite() {
		cfg := o.baseConfig(system.Nocstar, w, cores, false)
		cfg.L2EntriesPerCore = 0
		cfg2 := o.baseConfig(system.Nocstar, w, cores, false)
		cfg2.L2EntriesPerCore = 0
		cfg2.NoSpeculativeResponse = true
		runs = append(runs, trio{o.baselineFuture(w, cores, false), o.submit(cfg), o.submit(cfg2)})
	}
	var spec, demand []float64
	for _, t := range runs {
		priv := t.baseline.Wait()
		spec = append(spec, t.spec.Wait().SpeedupOver(priv))
		demand = append(demand, t.demand.Wait().SpeedupOver(priv))
	}
	return SpeculationResult{
		Speculative: stats.Mean64(spec),
		Demand:      stats.Mean64(demand),
	}
}

// Render prints both modes.
func (r SpeculationResult) Render() string {
	t := stats.NewTable("Ablation: speculative response path setup (32 cores)")
	t.Row("response setup", "avg speedup")
	t.Row("speculative (Fig. 10)", fmt.Sprintf("%.3f", r.Speculative))
	t.Row("demand (after lookup)", fmt.Sprintf("%.3f", r.Demand))
	return t.String()
}

// ---------------------------------------------------------------------
// QoS slice partitioning (the paper's future work): an aggressive tenant
// (gups) shares the chip with a victim (olio); way quotas protect the
// victim's slice occupancy.

// QoSResult compares victim and aggressor speedups with and without
// per-context way quotas.
type QoSResult struct {
	// Victim/Aggressor speedups vs the private-TLB baseline of the same
	// mix, without and with the quota.
	VictimFree, VictimQoS         float64
	AggressorFree, AggressorQoS   float64
	ThroughputFree, ThroughputQoS float64
}

// AblationQoS runs the 2-tenant interference scenario on 16 cores. At
// the paper's slice sizes cross-tenant capacity interference is minimal
// (consistent with Fig. 18's mild degradations), so the ablation uses
// capacity-pressured 256-entry slices, where an unregulated aggressor
// does crowd the victim out and quotas have something to protect.
func AblationQoS(o Options) QoSResult {
	const cores = 16
	victim, _ := workload.ByName("olio")
	aggressor, _ := workload.ByName("gups")
	mk := func(org system.Org, quota int) system.Config {
		return system.Config{
			Org:   org,
			Cores: cores,
			Apps: []system.App{
				{Spec: victim, Threads: cores / 4, HammerSlice: system.HammerNone},
				{Spec: aggressor, Threads: 3 * cores / 4, HammerSlice: system.HammerNone},
			},
			L2EntriesPerCore: 256,
			QoSMaxCtxWays:    quota,
			InstrPerThread:   o.Instr,
			Seed:             o.Seed,
		}
	}
	privF := o.submit(mk(system.Private, 0))
	freeF := o.submit(mk(system.Nocstar, 0))
	qosF := o.submit(mk(system.Nocstar, 5)) // 5 of 8 ways per tenant
	priv, free, qos := privF.Wait(), freeF.Wait(), qosF.Wait()

	ratio := func(r system.Result, i int) float64 {
		return r.Apps[i].IPC / priv.Apps[i].IPC
	}
	return QoSResult{
		VictimFree:     ratio(free, 0),
		VictimQoS:      ratio(qos, 0),
		AggressorFree:  ratio(free, 1),
		AggressorQoS:   ratio(qos, 1),
		ThroughputFree: free.ThroughputSpeedupOver(priv),
		ThroughputQoS:  qos.ThroughputSpeedupOver(priv),
	}
}

// Render prints the interference comparison.
func (r QoSResult) Render() string {
	t := stats.NewTable("Ablation: QoS slice partitioning (olio victim + gups aggressor, 16 cores)")
	t.Row("metric", "no quota", "5/8-way quota")
	t.Row("victim speedup", fmt.Sprintf("%.3f", r.VictimFree), fmt.Sprintf("%.3f", r.VictimQoS))
	t.Row("aggressor speedup", fmt.Sprintf("%.3f", r.AggressorFree), fmt.Sprintf("%.3f", r.AggressorQoS))
	t.Row("overall throughput", fmt.Sprintf("%.3f", r.ThroughputFree), fmt.Sprintf("%.3f", r.ThroughputQoS))
	return t.String()
}
