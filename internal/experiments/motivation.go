package experiments

import (
	"fmt"
	"strings"

	"nocstar/internal/runner"
	"nocstar/internal/stats"
	"nocstar/internal/system"
)

// ---------------------------------------------------------------------
// Fig. 2 — percentage of private L2 TLB misses eliminated by replacing
// private L2 TLBs with a shared TLB, for 16/32/64-core systems.

// Fig2Result holds per-workload, per-core-count elimination percentages.
type Fig2Result struct {
	Cores      []int
	Workloads  []string
	Eliminated map[string]map[int]float64 // workload -> cores -> percent
}

// Fig2 reproduces Fig. 2 using the zero-interconnect shared organization
// (elimination is a hit-rate property, independent of the interconnect).
func Fig2(o Options) Fig2Result {
	res := Fig2Result{
		Cores:      []int{16, 32, 64},
		Eliminated: map[string]map[int]float64{},
	}
	type cell struct {
		name            string
		cores           int
		baseline, share *runner.Future
	}
	var cells []cell
	for _, spec := range o.suite() {
		res.Workloads = append(res.Workloads, spec.Name)
		res.Eliminated[spec.Name] = map[int]float64{}
		for _, cores := range res.Cores {
			cells = append(cells, cell{spec.Name, cores,
				o.baselineFuture(spec, cores, false),
				o.submit(o.baseConfig(system.IdealShared, spec, cores, false))})
		}
	}
	for _, c := range cells {
		res.Eliminated[c.name][c.cores] = 100 * c.share.Wait().MissesEliminatedVs(c.baseline.Wait())
	}
	return res
}

// Render prints the Fig. 2 rows.
func (r Fig2Result) Render() string {
	t := stats.NewTable("Fig. 2: percent of private L2 TLB misses eliminated by a shared TLB")
	t.Row("workload", "16-core", "32-core", "64-core")
	avgs := make([]float64, len(r.Cores))
	for _, w := range r.Workloads {
		row := []interface{}{w}
		for i, c := range r.Cores {
			v := r.Eliminated[w][c]
			avgs[i] += v
			row = append(row, fmt.Sprintf("%.1f", v))
		}
		t.Row(row...)
	}
	row := []interface{}{"average"}
	for i := range avgs {
		row = append(row, fmt.Sprintf("%.1f", avgs[i]/float64(len(r.Workloads))))
	}
	t.Row(row...)
	return t.String()
}

// ---------------------------------------------------------------------
// Fig. 5 — fraction of shared L2 TLB accesses concurrent with 1 other
// access, 2-4 others, etc., on a 32-core system.

// Fig5Result holds per-workload concurrency histograms.
type Fig5Result struct {
	Workloads []string
	Buckets   []string
	Fractions map[string][]float64
}

// Fig5 reproduces Fig. 5 on the distributed shared organization.
func Fig5(o Options) Fig5Result {
	res := Fig5Result{Fractions: map[string][]float64{}}
	for _, b := range stats.ConcurrencyBuckets {
		res.Buckets = append(res.Buckets, b.Label)
	}
	var futs []*runner.Future
	for _, spec := range o.suite() {
		res.Workloads = append(res.Workloads, spec.Name)
		futs = append(futs, o.submit(o.baseConfig(system.Nocstar, spec, 32, false)))
	}
	for i, name := range res.Workloads {
		r := futs[i].Wait()
		res.Fractions[name] = r.Conc.Fractions()
	}
	return res
}

// Render prints the histogram rows.
func (r Fig5Result) Render() string {
	t := stats.NewTable("Fig. 5: concurrency of shared L2 TLB accesses (32 cores)")
	header := append([]interface{}{"workload"}, toIfaces(r.Buckets)...)
	t.Row(header...)
	for _, w := range r.Workloads {
		row := []interface{}{w}
		for _, f := range r.Fractions[w] {
			row = append(row, fmt.Sprintf("%.2f", f))
		}
		t.Row(row...)
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Fig. 6 — concurrency vs L1 TLB size and core count (left), and
// per-slice concurrency vs slice count (right).

// Fig6Result holds the two panels.
type Fig6Result struct {
	Buckets []string
	// Left: label -> global concurrency fractions.
	LeftLabels []string
	Left       map[string][]float64
	// Right: slice count -> per-slice concurrency fractions.
	RightLabels []string
	Right       map[string][]float64
}

// Fig6 reproduces both panels, averaging across the (possibly filtered)
// suite as the paper does.
func Fig6(o Options) Fig6Result {
	res := Fig6Result{Left: map[string][]float64{}, Right: map[string][]float64{}}
	for _, b := range stats.ConcurrencyBuckets {
		res.Buckets = append(res.Buckets, b.Label)
	}

	submitConc := func(cores int, l1Scale float64) []*runner.Future {
		var futs []*runner.Future
		for _, spec := range o.suite() {
			cfg := o.baseConfig(system.Nocstar, spec, cores, false)
			cfg.L1Scale = l1Scale
			if cores > 32 {
				// Keep total simulated work constant across core counts.
				cfg.InstrPerThread = o.Instr * 32 / uint64(cores)
			}
			futs = append(futs, o.submit(cfg))
		}
		return futs
	}
	joinConc := func(futs []*runner.Future, perSlice bool) []float64 {
		var agg stats.ConcurrencyHist
		for _, f := range futs {
			r := f.Wait()
			if perSlice {
				agg.Merge(&r.SliceConc)
			} else {
				agg.Merge(&r.Conc)
			}
		}
		return agg.Fractions()
	}

	left := []struct {
		label string
		cores int
		scale float64
	}{
		{"baseline", 32, 1},
		{"0.5xL1", 32, 0.5},
		{"1.5xL1", 32, 1.5},
		{"64cores", 64, 1},
		{"128cores", 128, 1},
		{"256cores", 256, 1},
		{"512cores", 512, 1},
	}
	// Submit both panels' runs before joining any of them.
	leftFuts := make([][]*runner.Future, len(left))
	for i, c := range left {
		leftFuts[i] = submitConc(c.cores, c.scale)
	}
	sliceCounts := []int{32, 64, 128, 256, 512}
	rightFuts := make([][]*runner.Future, len(sliceCounts))
	for i, slices := range sliceCounts {
		rightFuts[i] = submitConc(slices, 1)
	}
	for i, c := range left {
		res.LeftLabels = append(res.LeftLabels, c.label)
		res.Left[c.label] = joinConc(leftFuts[i], false)
	}
	for i, slices := range sliceCounts {
		label := fmt.Sprintf("%dslices", slices)
		res.RightLabels = append(res.RightLabels, label)
		res.Right[label] = joinConc(rightFuts[i], true)
	}
	return res
}

// Render prints both panels.
func (r Fig6Result) Render() string {
	var b strings.Builder
	t := stats.NewTable("Fig. 6 (left): shared L2 TLB concurrency vs L1 size and core count")
	t.Row(append([]interface{}{"config"}, toIfaces(r.Buckets)...)...)
	for _, l := range r.LeftLabels {
		row := []interface{}{l}
		for _, f := range r.Left[l] {
			row = append(row, fmt.Sprintf("%.2f", f))
		}
		t.Row(row...)
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	t2 := stats.NewTable("Fig. 6 (right): per-slice concurrency vs slice count")
	t2.Row(append([]interface{}{"config"}, toIfaces(r.Buckets)...)...)
	for _, l := range r.RightLabels {
		row := []interface{}{l}
		for _, f := range r.Right[l] {
			row = append(row, fmt.Sprintf("%.2f", f))
		}
		t2.Row(row...)
	}
	b.WriteString(t2.String())
	return b.String()
}

// toIfaces converts strings for table rows.
func toIfaces(ss []string) []interface{} {
	out := make([]interface{}, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// workloadNames lists the selected suite's names.
func workloadNames(o Options) []string {
	var out []string
	for _, s := range o.suite() {
		out = append(out, s.Name)
	}
	return out
}
