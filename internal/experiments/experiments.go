// Package experiments regenerates every table and figure of the paper's
// evaluation (and the simulation-derived motivation figures of Section
// II). Each driver returns a structured result whose Render method prints
// the same rows or series the paper reports; cmd/nocstar-exp exposes them
// on the command line and bench_test.go as testing.B benchmarks.
package experiments

import (
	"context"
	"runtime"
	"sort"

	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/runner"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// Options tune experiment scale. The defaults favour fidelity; benchmarks
// and tests shrink Instr for speed.
type Options struct {
	// Instr is the per-thread instruction budget of each run.
	Instr uint64
	// Seed drives all randomness.
	Seed int64
	// Workloads filters the suite (nil = all eleven).
	Workloads []string
	// Combos bounds the Fig. 18 multiprogrammed combinations (0 = all 330).
	Combos int
	// CoreCounts overrides the scaling experiments' core counts
	// (nil = the paper's 16/32/64).
	CoreCounts []int
	// Parallelism bounds how many simulations run concurrently
	// (0 = GOMAXPROCS). Each run is a self-contained deterministic
	// simulation, so rendered output is byte-identical at any setting.
	Parallelism int
	// Warmup is the per-thread warmup instruction budget applied to
	// every simulation (0 = cold start). Configs that share a warmup
	// prefix reuse one checkpointed warm state across the sweep.
	Warmup uint64
	// Experiment names the figure/table submitting runs; the registry
	// stamps it so profiles attribute simulations to their experiment.
	Experiment string
	// Shards, when > 0, runs every shardable config (system.Shardable:
	// Private and DistributedMesh organizations) on the partitioned
	// parallel engine with that many worker goroutines per run. Results
	// are invariant in the shard count; the partitioned engine itself is
	// a documented model variant, so sharded and legacy runs are cached
	// separately and never compared. When Parallelism is 0, the sweep
	// worker count is budgeted to GOMAXPROCS/Shards so sweep-level and
	// intra-run parallelism do not multiply past the machine.
	Shards int
	// Topology selects the fabric topology for every experiment config
	// whose organization routes a generic packet-switched interconnect
	// (monolithic-mesh and distributed); other organizations keep the
	// mesh their structure requires.
	Topology noc.TopologyKind
	// Placement selects the slice-placement strategy for every config
	// with a sliced shared organization; others are unaffected.
	Placement place.Strategy
	// PlacementSeed seeds the seeded placement strategies (0 = adopt
	// each config's Seed).
	PlacementSeed int64
}

// applyFabric applies the fabric overrides to one config, gated by the
// same organization rules Config validation enforces, so a sweep that
// mixes organizations stays valid under -topology/-placement.
func (o Options) applyFabric(cfg *system.Config) {
	if o.Topology != noc.TopoMesh {
		switch cfg.Org {
		case system.MonolithicMesh, system.DistributedMesh:
			cfg.Topology = o.Topology
		}
	}
	if o.Placement != place.RowMajor {
		switch cfg.Org {
		case system.DistributedMesh, system.Nocstar, system.NocstarIdeal, system.IdealShared:
			cfg.Placement = o.Placement
			cfg.PlacementSeed = o.PlacementSeed
		}
	}
}

// coreCounts returns the core-count sweep.
func (o Options) coreCounts() []int {
	if len(o.CoreCounts) > 0 {
		return o.CoreCounts
	}
	return []int{16, 32, 64}
}

// DefaultOptions returns the scale used for the recorded results in
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Instr: 150_000, Seed: 1}
}

// suite returns the selected workload specs.
func (o Options) suite() []workload.Spec {
	if len(o.Workloads) == 0 {
		return workload.Suite()
	}
	var out []workload.Spec
	for _, name := range o.Workloads {
		if s, ok := workload.ByName(name); ok {
			out = append(out, s)
		}
	}
	return out
}

// focusSuite returns the four workloads the paper uses in its policy
// studies (Figs. 16 and 17), intersected with any filter.
func (o Options) focusSuite() []workload.Spec {
	focus := []string{"canneal", "graph500", "gups", "xsbench"}
	if len(o.Workloads) > 0 {
		focus = o.Workloads
	}
	var out []workload.Spec
	for _, name := range focus {
		if s, ok := workload.ByName(name); ok {
			out = append(out, s)
		}
	}
	return out
}

// baseConfig builds the standard single-application configuration: one
// thread per core running spec.
func (o Options) baseConfig(org system.Org, spec workload.Spec, cores int, thp bool) system.Config {
	cfg := system.Config{
		Org:            org,
		Cores:          cores,
		Apps:           []system.App{{Spec: spec, Threads: cores, HammerSlice: system.HammerNone}},
		THP:            thp,
		InstrPerThread: o.Instr,
		WarmupInstr:    o.Warmup,
		Seed:           o.Seed,
	}
	o.applyFabric(&cfg)
	return cfg
}

// pool returns the process-wide runner resized to o.Parallelism. All
// drivers submit their runs through it: identical in-flight configs are
// deduplicated, and private baselines are memoized across experiments.
func (o Options) pool() *runner.Runner {
	r := runner.Default()
	par := o.Parallelism
	if o.Shards > 0 && par == 0 {
		// Budget sweep workers against intra-run workers: K shard workers
		// per run, so admit ~GOMAXPROCS/K runs at once.
		par = runtime.GOMAXPROCS(0) / o.Shards
		if par < 1 {
			par = 1
		}
	}
	r.SetParallelism(par)
	r.SetShards(o.Shards)
	return r
}

// ctx labels submissions with the owning experiment for pprof.
func (o Options) ctx() context.Context {
	if o.Experiment == "" {
		return context.Background()
	}
	return runner.WithExperiment(context.Background(), o.Experiment)
}

// submit schedules a config on the pool.
func (o Options) submit(cfg system.Config) *runner.Future {
	return o.pool().SubmitContext(o.ctx(), cfg)
}

// baselineFuture schedules (or retrieves the memoized) private-L2-TLB run
// every speedup is measured against. The pool's memo cache replaces the
// old package-level baselineCache map, which had no synchronization.
func (o Options) baselineFuture(spec workload.Spec, cores int, thp bool) *runner.Future {
	return o.pool().SubmitCachedContext(o.ctx(), o.baseConfig(system.Private, spec, cores, thp))
}

// privateBaseline is baselineFuture for call sites that need the result
// immediately.
func (o Options) privateBaseline(spec workload.Spec, cores int, thp bool) system.Result {
	return o.baselineFuture(spec, cores, thp).Wait()
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
