package experiments

import (
	"fmt"

	"nocstar/internal/engine"
	"nocstar/internal/noc"
	"nocstar/internal/runner"
	"nocstar/internal/stats"
)

// ---------------------------------------------------------------------
// Fig. 11(c) — synthetic uniform-random traffic on a 64-node NOCSTAR
// fabric: average message latency and fraction of contention-free path
// setups versus injection rate, against the multi-hop-mesh reference.

// Fig11cResult holds the injection sweep.
type Fig11cResult struct {
	Rates        []float64
	NocstarLat   []float64 // average setup+traversal cycles
	NoContention []float64 // fraction granted first try
	MeshLat      []float64 // contention-free multi-hop mesh reference
}

// Fig11cPoint runs one injection rate on an n-node fabric for the given
// number of cycles. rate is the per-node probability of injecting a
// message each cycle (the paper sweeps 0.01-0.4; 0.1 means one message
// every 10 cycles per core, already "high for TLB traffic").
func Fig11cPoint(n int, rate float64, cycles uint64, seed int64) (avgLat, noContention float64) {
	eng := engine.New()
	geo := noc.GridFor(n)
	fabric := noc.NewNocstar(eng, noc.NocstarConfig{Geometry: geo, HPCmax: 16})
	rng := engine.NewRand(seed)

	var tick func()
	tick = func() {
		now := eng.Now()
		if uint64(now) >= cycles {
			return
		}
		for node := 0; node < geo.Nodes(); node++ {
			if rng.Float64() >= rate {
				continue
			}
			src := noc.NodeID(node)
			dst := noc.NodeID(rng.Intn(geo.Nodes() - 1))
			if dst >= src {
				dst++
			}
			fabric.RequestPath(src, dst, fabric.HoldCyclesOneWay(src, dst), func(int) {})
		}
		eng.Schedule(1, tick)
	}
	eng.Schedule(1, tick)
	eng.Run()

	st := fabric.Stats()
	return st.AvgNetworkLatency(), st.NoContentionFraction()
}

// Fig11c sweeps injection rates on the 64-node system.
func Fig11c(o Options) Fig11cResult {
	res := Fig11cResult{}
	geo := noc.GridFor(64)
	mesh := noc.NewMesh(noc.DefaultMeshConfig(geo))
	meshAvg := 0.0
	{
		// Contention-free mesh average over uniform pairs.
		total, cnt := 0, 0
		for s := 0; s < geo.Nodes(); s++ {
			for d := 0; d < geo.Nodes(); d++ {
				if s == d {
					continue
				}
				total += mesh.LatencyForHops(geo.Hops(noc.NodeID(s), noc.NodeID(d)))
				cnt++
			}
		}
		meshAvg = float64(total) / float64(cnt)
	}
	cycles := o.Instr / 5
	if cycles < 2000 {
		cycles = 2000
	}
	// Each injection-rate point is an independent fabric simulation; fan
	// them out on the pool and join in rate order.
	rates := []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}
	type point struct{ lat, free float64 }
	points := runner.Map(o.pool(), rates, func(rate float64) point {
		lat, free := Fig11cPoint(64, rate, cycles, o.Seed)
		return point{lat, free}
	})
	for i, rate := range rates {
		res.Rates = append(res.Rates, rate)
		res.NocstarLat = append(res.NocstarLat, points[i].lat)
		res.NoContention = append(res.NoContention, 100*points[i].free)
		res.MeshLat = append(res.MeshLat, meshAvg)
	}
	return res
}

// Render prints the sweep.
func (r Fig11cResult) Render() string {
	t := stats.NewTable("Fig. 11(c): NOCSTAR latency vs injection rate (64 nodes, uniform random)")
	t.Row("injection", "NOCSTAR avg lat", "% no contention", "multi-hop mesh")
	for i, rate := range r.Rates {
		t.Row(fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%.2f", r.NocstarLat[i]),
			fmt.Sprintf("%.1f", r.NoContention[i]),
			fmt.Sprintf("%.1f", r.MeshLat[i]))
	}
	return t.String()
}
