package experiments

import (
	"reflect"
	"testing"

	"nocstar/internal/runner"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// The engine promises bit-for-bit reproducibility: equal configs produce
// equal Results. These tests pin that contract under the typed 4-ary
// event heap and the parallel worker pool, and require the experiment
// drivers' rendered output to be byte-identical between -j 1 and -j N.

func TestRunDeterminism(t *testing.T) {
	spec, _ := workload.ByName("graph500")
	cfg := system.Config{
		Org:            system.Nocstar,
		Cores:          32,
		Apps:           []system.App{{Spec: spec, Threads: 32, HammerSlice: -1}},
		InstrPerThread: 10_000,
		Seed:           7,
	}
	a, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two direct runs of the same config diverged")
	}
	// The same config through a parallel pool, twice, racing against
	// unrelated runs on the same pool.
	pool := runner.New(4)
	other := cfg
	other.Seed = 8
	noise := pool.Submit(other)
	c := pool.Submit(cfg).Wait()
	d := pool.Submit(cfg).Wait()
	noise.Wait()
	if !reflect.DeepEqual(a, c) || !reflect.DeepEqual(a, d) {
		t.Fatal("pooled run diverged from direct run")
	}
}

// Two full drivers rendered at -j 1 and at -j 6 must produce identical
// bytes (the acceptance contract for every driver; Fig. 12 exercises the
// speedup-grid path and Fig. 16 left the focus-grid path, which between
// them cover the baseline cache, in-flight dedup, and ordered joins).
func TestRenderDeterministicAcrossParallelism(t *testing.T) {
	base := Options{
		Instr:      15_000,
		Seed:       1,
		Workloads:  []string{"canneal", "gups"},
		CoreCounts: []int{16, 32},
	}
	serial := base
	serial.Parallelism = 1
	par := base
	par.Parallelism = 6

	if a, b := Fig12(serial).Render(), Fig12(par).Render(); a != b {
		t.Fatalf("Fig12 output differs between -j 1 and -j 6:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if a, b := Fig16Left(serial).Render(), Fig16Left(par).Render(); a != b {
		t.Fatalf("Fig16Left output differs between -j 1 and -j 6:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	serial.Combos = 3
	par.Combos = 3
	if a, b := Fig18(serial).Render(), Fig18(par).Render(); a != b {
		t.Fatalf("Fig18 output differs between -j 1 and -j 6:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
