package experiments

import (
	"reflect"
	"testing"

	"nocstar/internal/runner"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// The engine promises bit-for-bit reproducibility: equal configs produce
// equal Results. These tests pin that contract under the typed 4-ary
// event heap and the parallel worker pool, and require the experiment
// drivers' rendered output to be byte-identical between -j 1 and -j N.

func TestRunDeterminism(t *testing.T) {
	spec, _ := workload.ByName("graph500")
	cfg := system.Config{
		Org:            system.Nocstar,
		Cores:          32,
		Apps:           []system.App{{Spec: spec, Threads: 32, HammerSlice: system.HammerNone}},
		InstrPerThread: 10_000,
		Seed:           7,
	}
	a, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two direct runs of the same config diverged")
	}
	// The same config through a parallel pool, twice, racing against
	// unrelated runs on the same pool.
	pool := runner.New(4)
	other := cfg
	other.Seed = 8
	noise := pool.Submit(other)
	c := pool.Submit(cfg).Wait()
	d := pool.Submit(cfg).Wait()
	noise.Wait()
	if !reflect.DeepEqual(a, c) || !reflect.DeepEqual(a, d) {
		t.Fatal("pooled run diverged from direct run")
	}
}

// fnvMix folds v into the running FNV-1a-64 hash h, one byte at a time,
// little-endian.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// TestGoldenEventOrder pins the engine's total event order — the exact
// (cycle, seq) stream — for two NOCSTAR configurations. The hashes were
// captured on the closure-continuation/binary-heap scheduler that predates
// the typed transaction objects and the timing wheel; any scheduling
// refactor that reorders even one pair of same-cycle events changes the
// hash. This is deliberately stricter than TestRunDeterminism, which only
// requires runs to agree with each other.
func TestGoldenEventOrder(t *testing.T) {
	spec, _ := workload.ByName("graph500")
	base := system.Config{
		Org:            system.Nocstar,
		Cores:          16,
		Apps:           []system.App{{Spec: spec, Threads: 16, HammerSlice: system.HammerNone}},
		InstrPerThread: 3_000,
		Seed:           7,
	}
	remote := base
	remote.Policy = system.WalkAtRemote
	remote.ShootdownInterval = 5_000

	golden := []struct {
		name   string
		cfg    system.Config
		events int
		hash   uint64
	}{
		{"oneway", base, 9274, 0x3f89308201d036e8},
		{"remote-walk", remote, 9272, 0x5c20614e14ff4851},
	}
	for _, g := range golden {
		var h uint64 = 14695981039346656037
		n := 0
		if _, err := system.RunTraced(g.cfg, func(cycle, seq uint64) {
			h = fnvMix(fnvMix(h, cycle), seq)
			n++
		}); err != nil {
			t.Fatal(err)
		}
		if n != g.events || h != g.hash {
			t.Errorf("%s: event stream changed: events=%d hash=%#x, want events=%d hash=%#x",
				g.name, n, h, g.events, g.hash)
		}
	}
}

// Two full drivers rendered at -j 1 and at -j 6 must produce identical
// bytes (the acceptance contract for every driver; Fig. 12 exercises the
// speedup-grid path and Fig. 16 left the focus-grid path, which between
// them cover the baseline cache, in-flight dedup, and ordered joins).
func TestRenderDeterministicAcrossParallelism(t *testing.T) {
	base := Options{
		Instr:      15_000,
		Seed:       1,
		Workloads:  []string{"canneal", "gups"},
		CoreCounts: []int{16, 32},
	}
	serial := base
	serial.Parallelism = 1
	par := base
	par.Parallelism = 6

	if a, b := Fig12(serial).Render(), Fig12(par).Render(); a != b {
		t.Fatalf("Fig12 output differs between -j 1 and -j 6:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if a, b := Fig16Left(serial).Render(), Fig16Left(par).Render(); a != b {
		t.Fatalf("Fig16Left output differs between -j 1 and -j 6:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	serial.Combos = 3
	par.Combos = 3
	if a, b := Fig18(serial).Render(), Fig18(par).Render(); a != b {
		t.Fatalf("Fig18 output differs between -j 1 and -j 6:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
