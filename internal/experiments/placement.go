package experiments

import (
	"fmt"

	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/runner"
	"nocstar/internal/stats"
	"nocstar/internal/system"
)

// PlacementRow is one (fabric, strategy) cell of the placement study.
type PlacementRow struct {
	// Topology and Strategy are the wire names of the fabric and the
	// placement that produced the row.
	Topology string `json:"topology"`
	Strategy string `json:"strategy"`
	// PredictedHops is the optimizer's own objective: the traffic-weighted
	// mean hop distance of the chosen mapping under the fabric (computed
	// from the sampled demand matrix, before any simulation).
	PredictedHops float64 `json:"predicted_hops"`
	// Cycles is the measured end-to-end run length.
	Cycles uint64 `json:"cycles"`
	// Speedup is measured against the same fabric's row-major run.
	Speedup float64 `json:"speedup_vs_row_major"`
}

// PlacementResult is the slice-placement study: for each fabric
// topology, how much the searchable placements recover versus the
// paper's fixed row-major mapping.
type PlacementResult struct {
	Workload   string         `json:"workload"`
	Cores      int            `json:"cores"`
	Strategies []string       `json:"strategies"`
	Rows       []PlacementRow `json:"rows"`
}

// Render prints one row per (topology, strategy).
func (r PlacementResult) Render() string {
	t := stats.NewTable(fmt.Sprintf(
		"Slice placement vs fabric topology (%s, %d cores, distributed)", r.Workload, r.Cores))
	t.Row("topology", "placement", "pred-hops", "cycles", "speedup-vs-row-major")
	for _, row := range r.Rows {
		t.Row(row.Topology, row.Strategy,
			fmt.Sprintf("%.3f", row.PredictedHops), row.Cycles,
			fmt.Sprintf("%.3f", row.Speedup))
	}
	return t.String()
}

// Speedup returns one cell's measured speedup (1.0 for missing cells).
func (r PlacementResult) Speedup(topology, strategy string) float64 {
	for _, row := range r.Rows {
		if row.Topology == topology && row.Strategy == strategy {
			return row.Speedup
		}
	}
	return 1
}

// placementCores returns the study's core count: the first configured
// count, defaulting to the 256-core chip where placement distances are
// large enough to matter (the usual 16-64 sweep is too small to
// separate the strategies).
func (o Options) placementCores() int {
	if len(o.CoreCounts) > 0 {
		return o.CoreCounts[0]
	}
	return 256
}

// Placement runs the placement study: the distributed organization on
// one focus workload, swept over every fabric topology and every
// placement strategy, each cell reporting the optimizer's predicted
// mean hop distance and the measured speedup over the same fabric's
// row-major mapping.
func Placement(o Options) PlacementResult {
	spec := o.focusSuite()[0]
	cores := o.placementCores()
	res := PlacementResult{Workload: spec.Name, Cores: cores}
	for _, s := range place.Strategies() {
		res.Strategies = append(res.Strategies, s.String())
	}

	build := func(kind noc.TopologyKind, strat place.Strategy) system.Config {
		cfg := o.baseConfig(system.DistributedMesh, spec, cores, false)
		cfg.Topology = kind
		cfg.Placement = strat
		return cfg
	}

	type cell struct {
		kind  noc.TopologyKind
		strat place.Strategy
		run   *runner.Future
	}
	var cells []cell
	for _, kind := range noc.TopologyKinds() {
		for _, strat := range place.Strategies() {
			cells = append(cells, cell{kind, strat, o.submit(build(kind, strat))})
		}
	}

	base := map[noc.TopologyKind]system.Result{}
	for _, c := range cells {
		if c.strat == place.RowMajor {
			base[c.kind] = c.run.Wait()
		}
	}
	for _, c := range cells {
		r := c.run.Wait()
		tab, tr, topo, err := system.PlacementPlan(build(c.kind, c.strat))
		if err != nil {
			panic(err) // configs validated by construction
		}
		res.Rows = append(res.Rows, PlacementRow{
			Topology:      c.kind.String(),
			Strategy:      c.strat.String(),
			PredictedHops: place.Cost(tab, topo, tr),
			Cycles:        r.Cycles,
			Speedup:       r.SpeedupOver(base[c.kind]),
		})
	}
	return res
}
