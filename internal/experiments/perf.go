package experiments

import (
	"fmt"
	"nocstar/internal/energy"
	"nocstar/internal/runner"
	"nocstar/internal/stats"
	"nocstar/internal/system"
)

// SpeedupGrid is a generic workload x configuration speedup table versus
// the private-L2-TLB baseline.
type SpeedupGrid struct {
	Title     string
	Workloads []string
	Configs   []string
	Speedup   map[string]map[string]float64 // workload -> config -> speedup
}

// Render prints the grid with a closing average row.
func (g SpeedupGrid) Render() string {
	t := stats.NewTable(g.Title)
	t.Row(append([]interface{}{"workload"}, toIfaces(g.Configs)...)...)
	sums := make([]float64, len(g.Configs))
	for _, w := range g.Workloads {
		row := []interface{}{w}
		for i, c := range g.Configs {
			v := g.Speedup[w][c]
			sums[i] += v
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Row(row...)
	}
	row := []interface{}{"average"}
	for i := range sums {
		row = append(row, fmt.Sprintf("%.3f", sums[i]/float64(len(g.Workloads))))
	}
	t.Row(row...)
	return t.String()
}

// Average returns the mean speedup of one configuration column.
func (g SpeedupGrid) Average(config string) float64 {
	var vs []float64
	for _, w := range g.Workloads {
		vs = append(vs, g.Speedup[w][config])
	}
	return stats.Mean64(vs)
}

// MinMax returns the extremes of one configuration column.
func (g SpeedupGrid) MinMax(config string) (lo, hi float64) {
	var vs []float64
	for _, w := range g.Workloads {
		vs = append(vs, g.Speedup[w][config])
	}
	return stats.MinMax(vs)
}

// speedupGrid runs each (workload, config) pair against the memoized
// private baseline. All runs are submitted to the pool up front and
// joined in submission order, so the grid is identical to the serial
// path at any parallelism.
func speedupGrid(o Options, title string, cores int, thp bool,
	configs []string, build func(name string, cfg *system.Config)) SpeedupGrid {
	g := SpeedupGrid{
		Title:   title,
		Configs: configs,
		Speedup: map[string]map[string]float64{},
	}
	type cell struct {
		workload, config string
		baseline, run    *runner.Future
	}
	var cells []cell
	for _, spec := range o.suite() {
		g.Workloads = append(g.Workloads, spec.Name)
		g.Speedup[spec.Name] = map[string]float64{}
		priv := o.baselineFuture(spec, cores, thp)
		for _, name := range configs {
			cfg := o.baseConfig(system.Private, spec, cores, thp)
			build(name, &cfg)
			cells = append(cells, cell{spec.Name, name, priv, o.submit(cfg)})
		}
	}
	for _, c := range cells {
		g.Speedup[c.workload][c.config] = c.run.Wait().SpeedupOver(c.baseline.Wait())
	}
	return g
}

// ---------------------------------------------------------------------
// Fig. 4 — monolithic shared TLB speedups at forced total access
// latencies of 25/16/11/9 cycles, 32 cores.

// Fig4 reproduces the Section II-D motivation study.
func Fig4(o Options) SpeedupGrid {
	configs := []string{"Shared(25-cc)", "Shared(16-cc)", "Shared(11-cc)", "Shared(9-cc)"}
	lats := map[string]int{"Shared(25-cc)": 25, "Shared(16-cc)": 16, "Shared(11-cc)": 11, "Shared(9-cc)": 9}
	return speedupGrid(o, "Fig. 4: monolithic shared TLB speedup vs forced access latency (32 cores)",
		32, false, configs, func(name string, cfg *system.Config) {
			cfg.Org = system.MonolithicFixed
			cfg.FixedAccessLatency = lats[name]
		})
}

// orgConfigs is the Fig. 12/13 configuration set.
var orgConfigs = map[string]system.Org{
	"Monolithic":  system.MonolithicMesh,
	"Distributed": system.DistributedMesh,
	"NOCSTAR":     system.Nocstar,
	"Ideal":       system.IdealShared,
}

// Fig12 — speedups at 16 cores with only 4 KB pages.
func Fig12(o Options) SpeedupGrid {
	return figPerf(o, "Fig. 12: speedups, 16 cores, 4KB pages", 16, false)
}

// Fig13 — speedups at 16 cores with transparent 2 MB superpages.
func Fig13(o Options) SpeedupGrid {
	return figPerf(o, "Fig. 13: speedups, 16 cores, transparent superpages", 16, true)
}

func figPerf(o Options, title string, cores int, thp bool) SpeedupGrid {
	configs := []string{"Monolithic", "Distributed", "NOCSTAR", "Ideal"}
	return speedupGrid(o, title, cores, thp, configs, func(name string, cfg *system.Config) {
		cfg.Org = orgConfigs[name]
		cfg.L2EntriesPerCore = 0 // re-derive default per org (920 for NOCSTAR)
	})
}

// ---------------------------------------------------------------------
// Fig. 14 — scalability (left: min/avg/max speedups; right: percent of
// address-translation energy saved) at 16/32/64 cores with superpages.

// Fig14Row is one (cores, org) cell.
type Fig14Row struct {
	Cores         int
	Org           string
	Min, Avg, Max float64
	EnergySaved   float64 // percent of baseline translation energy
}

// Fig14Result holds the scalability sweep.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14 runs the sweep.
func Fig14(o Options) Fig14Result {
	var res Fig14Result
	orgs := []string{"Monolithic", "Distributed", "NOCSTAR"}
	for _, cores := range o.coreCounts() {
		grids := figPerf(o, "", cores, true)
		// Submit every energy run of this core count before joining any.
		type enRun struct {
			baseline, run *runner.Future
		}
		energyRuns := map[string][]enRun{}
		for _, org := range orgs {
			for _, spec := range o.suite() {
				cfg := o.baseConfig(orgConfigs[org], spec, cores, true)
				cfg.L2EntriesPerCore = 0
				energyRuns[org] = append(energyRuns[org],
					enRun{o.baselineFuture(spec, cores, true), o.submit(cfg)})
			}
		}
		for _, org := range orgs {
			lo, hi := grids.MinMax(org)
			row := Fig14Row{Cores: cores, Org: org, Min: lo, Avg: grids.Average(org), Max: hi}
			// Energy: average percent saved across the suite.
			var saved []float64
			for _, er := range energyRuns[org] {
				priv := er.baseline.Wait()
				r := er.run.Wait()
				saved = append(saved, energy.PercentSaved(&r.Energy, &priv.Energy))
			}
			row.EnergySaved = stats.Mean64(saved)
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Render prints both panels of Fig. 14.
func (r Fig14Result) Render() string {
	t := stats.NewTable("Fig. 14: scalability (speedups and % translation energy saved, THP)")
	t.Row("cores", "org", "min", "avg", "max", "% energy saved")
	for _, row := range r.Rows {
		t.Row(row.Cores, row.Org,
			fmt.Sprintf("%.3f", row.Min), fmt.Sprintf("%.3f", row.Avg),
			fmt.Sprintf("%.3f", row.Max), fmt.Sprintf("%.1f", row.EnergySaved))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Fig. 15 — teasing apart the interconnect contribution at 32 cores:
// monolithic over multi-hop mesh and SMART, distributed, NOCSTAR,
// NOCSTAR with an ideal (contention-free) fabric, and the
// zero-interconnect ideal.

// Fig15 runs the interconnect decomposition.
func Fig15(o Options) SpeedupGrid {
	configs := []string{"Mono(mesh)", "Mono(SMART)", "Distributed", "NOCSTAR", "NOCSTAR(ideal)", "Ideal"}
	orgs := map[string]system.Org{
		"Mono(mesh)":     system.MonolithicMesh,
		"Mono(SMART)":    system.MonolithicSMART,
		"Distributed":    system.DistributedMesh,
		"NOCSTAR":        system.Nocstar,
		"NOCSTAR(ideal)": system.NocstarIdeal,
		"Ideal":          system.IdealShared,
	}
	return speedupGrid(o, "Fig. 15: interconnect decomposition, 32 cores",
		32, false, configs, func(name string, cfg *system.Config) {
			cfg.Org = orgs[name]
			cfg.L2EntriesPerCore = 0
		})
}
