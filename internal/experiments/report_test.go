package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// reportOptions is a deliberately tiny scale: one workload, one core
// count, a few thousand instructions — enough to exercise every layer of
// the report without slowing the suite.
func reportOptions(parallelism int) Options {
	return Options{
		Instr:       5_000,
		Seed:        1,
		Workloads:   []string{"gups"},
		CoreCounts:  []int{16},
		Parallelism: parallelism,
	}
}

func buildReportJSON(t *testing.T, parallelism int) []byte {
	t.Helper()
	o := reportOptions(parallelism)
	e, err := Lookup("fig12")
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(o, []RanExperiment{
		{ID: e.ID, Description: e.Description, Result: e.Run(o)},
	})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReportSchema is the golden-schema test: a -report document must
// carry the schema version, the echoed options, every executed
// experiment with structured data and rendered text, and per-workload
// probes exposing metrics, NoC accounting, and energy.
func TestReportSchema(t *testing.T) {
	raw := buildReportJSON(t, 0)

	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if v, ok := doc["schema"].(float64); !ok || int(v) != ReportSchemaVersion {
		t.Fatalf("schema = %v, want %d", doc["schema"], ReportSchemaVersion)
	}
	if doc["tool"] != "nocstar-exp" {
		t.Fatalf("tool = %v", doc["tool"])
	}

	opts, ok := doc["options"].(map[string]any)
	if !ok || opts["instr"].(float64) != 5000 || opts["seed"].(float64) != 1 {
		t.Fatalf("options = %v", doc["options"])
	}

	exps, ok := doc["experiments"].([]any)
	if !ok || len(exps) != 1 {
		t.Fatalf("experiments = %v", doc["experiments"])
	}
	exp := exps[0].(map[string]any)
	if exp["id"] != "fig12" {
		t.Fatalf("experiment id = %v", exp["id"])
	}
	if s, ok := exp["rendered"].(string); !ok || len(s) == 0 {
		t.Fatal("experiment rendered text missing")
	}
	if _, ok := exp["data"].(map[string]any); !ok {
		t.Fatal("experiment structured data missing")
	}

	probes, ok := doc["probes"].([]any)
	if !ok || len(probes) != 1 {
		t.Fatalf("probes = %v", doc["probes"])
	}
	p := probes[0].(map[string]any)
	if p["workload"] != "gups" || p["org"] != "nocstar" || p["cores"].(float64) != 16 {
		t.Fatalf("probe header = %v", p)
	}
	if p["speedup_vs_private"].(float64) <= 0 {
		t.Fatalf("speedup_vs_private = %v", p["speedup_vs_private"])
	}

	m, ok := p["metrics"].(map[string]any)
	if !ok {
		t.Fatal("probe metrics missing")
	}
	counters := m["counters"].([]any)
	hists := m["histograms"].([]any)
	if len(counters) == 0 || len(hists) == 0 {
		t.Fatalf("metrics snapshot empty: %d counters, %d histograms", len(counters), len(hists))
	}
	found := map[string]float64{}
	for _, c := range counters {
		cv := c.(map[string]any)
		found[cv["name"].(string)] = cv["value"].(float64)
	}
	for _, name := range []string{"sys.mem_refs", "tlb.l2_accesses", "vm.walks", "engine.events"} {
		if found[name] <= 0 {
			t.Fatalf("counter %q missing or zero in probe metrics (have %v)", name, found)
		}
	}

	noc, ok := p["noc"].(map[string]any)
	if !ok || noc["messages"].(float64) <= 0 {
		t.Fatalf("noc accounting = %v", p["noc"])
	}
	en, ok := p["energy"].(map[string]any)
	if !ok || en["total_pj"].(float64) <= 0 {
		t.Fatalf("energy = %v", p["energy"])
	}
}

// TestReportDeterministicAcrossParallelism pins the report's byte-for-
// byte determinism contract: -j must not leak into the document.
func TestReportDeterministicAcrossParallelism(t *testing.T) {
	a := buildReportJSON(t, 1)
	b := buildReportJSON(t, 6)
	if !bytes.Equal(a, b) {
		t.Fatalf("report differs between -j 1 and -j 6:\n--- j1 ---\n%s\n--- j6 ---\n%s", a, b)
	}
}
