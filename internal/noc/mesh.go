package noc

// This file models the packet-switched baselines the paper compares
// against: a classic multi-hop mesh and the SMART bypass NoC.
//
// The paper's methodology deliberately idealizes both baselines: "we place
// enough buffers and links in the system to prevent link contention.
// Including any network contention may further degrade performance of
// workloads for traditional mesh networks" (Section IV). Both models are
// therefore contention-free closed forms, which is *conservative for
// NOCSTAR* — NOCSTAR is the only fabric simulated with real contention.

// MeshConfig describes the baseline packet-switched fabric.
type MeshConfig struct {
	Geometry Geometry
	// Topology supplies the route-length model; nil selects the XY mesh
	// over Geometry (the paper's baseline and the historical behavior).
	Topology      Topology
	RouterCycles  int // tr: per-hop router pipeline delay (paper: 1)
	LinkCycles    int // tw: per-hop wire delay (paper: 1)
	Serialization int // Ts: extra cycles for wide packets on narrow links
}

// DefaultMeshConfig returns the paper's 1-cycle-router, 1-cycle-link mesh.
func DefaultMeshConfig(g Geometry) MeshConfig {
	return MeshConfig{Geometry: g, RouterCycles: 1, LinkCycles: 1}
}

// Mesh is the contention-free multi-hop packet-switched baseline. Its
// latency formula is the textbook T = H(tr + tw) + Ts; the hop count H
// comes from the configured Topology, so the same model covers the
// mesh, torus, crossbar, and hybrid fabrics.
type Mesh struct {
	cfg      MeshConfig
	topo     Topology
	messages uint64
	totalLat uint64
}

// NewMesh returns a mesh.
func NewMesh(cfg MeshConfig) *Mesh {
	if cfg.RouterCycles <= 0 {
		cfg.RouterCycles = 1
	}
	if cfg.LinkCycles <= 0 {
		cfg.LinkCycles = 1
	}
	if cfg.Topology == nil {
		cfg.Topology = NewTopology(TopoMesh, cfg.Geometry)
	}
	return &Mesh{cfg: cfg, topo: cfg.Topology}
}

// Topology returns the route-length model the mesh latencies use.
func (m *Mesh) Topology() Topology { return m.topo }

// Latency returns the one-way message latency from src to dst using the
// textbook formula T = H(tr + tw) + Ts with zero contention. Local
// delivery (src == dst) is free.
func (m *Mesh) Latency(src, dst NodeID) int {
	h := m.topo.Hops(src, dst)
	if h == 0 {
		return 0
	}
	lat := h*(m.cfg.RouterCycles+m.cfg.LinkCycles) + m.cfg.Serialization
	m.messages++
	m.totalLat += uint64(lat)
	return lat
}

// LatencyForHops returns the latency of an h-hop traversal.
func (m *Mesh) LatencyForHops(h int) int {
	if h <= 0 {
		return 0
	}
	return h*(m.cfg.RouterCycles+m.cfg.LinkCycles) + m.cfg.Serialization
}

// Hops returns the hop distance from src to dst without recording a
// message — the pure counterpart of Latency. Sharded runs own their
// route accounting per region and fold it back through AddStats.
func (m *Mesh) Hops(src, dst NodeID) int {
	return m.topo.Hops(src, dst)
}

// MinCrossLatency reports the smallest nonzero one-way latency the
// fabric can produce — the latency of a MinHops traversal. It bounds how
// far apart two regions' clocks may drift in a sharded run (the
// conservative lookahead window): every cross-tile message covers at
// least MinHops hops, so its latency is at least this value.
func (m *Mesh) MinCrossLatency() int { return m.LatencyForHops(m.topo.MinHops()) }

// AddStats folds externally accumulated message statistics into the
// mesh's counters. Sharded runs count messages and latency per region
// (Latency's internal accumulation is single-writer) and fold the
// per-region totals here, in region order, at collection time.
func (m *Mesh) AddStats(messages, totalLat uint64) {
	m.messages += messages
	m.totalLat += totalLat
}

// Stats reports message count and mean latency.
func (m *Mesh) Stats() (messages uint64, avgLatency float64) {
	if m.messages == 0 {
		return 0, 0
	}
	return m.messages, float64(m.totalLat) / float64(m.messages)
}

// SMARTConfig describes the SMART bypass NoC [Krishna et al., HPCA 2013],
// which the paper evaluates under the monolithic organization (Fig. 15).
type SMARTConfig struct {
	Geometry Geometry
	// HPCmax is the maximum hops bypassed per cycle.
	HPCmax int
	// SetupCycles is the per-message bypass-path setup cost (SSR
	// broadcast), 1 cycle in the original design.
	SetupCycles int
}

// DefaultSMARTConfig returns SMART with HPCmax=8 and 1-cycle setup.
func DefaultSMARTConfig(g Geometry) SMARTConfig {
	return SMARTConfig{Geometry: g, HPCmax: 8, SetupCycles: 1}
}

// SMART is the bypass-mesh baseline, modeled contention-free like the
// mesh (optimistic for the baseline: the paper notes SMART paths "are not
// guaranteed", with false positives and negatives).
type SMART struct {
	cfg SMARTConfig
}

// NewSMART returns a SMART NoC model.
func NewSMART(cfg SMARTConfig) *SMART {
	if cfg.HPCmax <= 0 {
		cfg.HPCmax = 8
	}
	if cfg.SetupCycles < 0 {
		cfg.SetupCycles = 1
	}
	return &SMART{cfg: cfg}
}

// Latency returns one-way latency from src to dst: setup plus one cycle
// per HPCmax-hop bypass segment.
func (s *SMART) Latency(src, dst NodeID) int {
	return s.LatencyForHops(s.cfg.Geometry.Hops(src, dst))
}

// LatencyForHops returns the latency of an h-hop traversal.
func (s *SMART) LatencyForHops(h int) int {
	if h <= 0 {
		return 0
	}
	return s.cfg.SetupCycles + (h+s.cfg.HPCmax-1)/s.cfg.HPCmax
}

// Hops returns the hop distance from src to dst (SMART latencies never
// accumulate internal statistics, but sharded route ownership uses the
// same pure-hops interface for both fabrics).
func (s *SMART) Hops(src, dst NodeID) int {
	return s.cfg.Geometry.Hops(src, dst)
}

// MinCrossLatency reports the smallest nonzero one-way SMART latency —
// the sharded lookahead bound under the monolithic-SMART organization.
func (s *SMART) MinCrossLatency() int { return s.LatencyForHops(1) }

// ResetStats zeroes the accumulated mesh statistics.
func (m *Mesh) ResetStats() { m.messages, m.totalLat = 0, 0 }
