package noc

import (
	"testing"

	"nocstar/internal/engine"
	"nocstar/internal/metrics"
)

// pingPong drives an endless request/response conversation across the
// fabric: every grant turns the path around and re-requests it, so a
// steady state exercises enqueue, end-of-cycle arbitration, denial and
// retry (when several drivers contend), grant delivery, and setup-request
// recycling — the complete NoC critical path.
type pingPong struct {
	eng      *engine.Engine
	n        *Nocstar
	src, dst NodeID
	left     int
	grants   int
}

func (p *pingPong) Act(op uint8, arg any) {
	p.n.RequestPathTo(p.src, p.dst, p.n.HoldCyclesOneWay(p.src, p.dst), p, 0, nil)
}

func (p *pingPong) PathGranted(op uint8, arg any, traversal int) {
	p.grants++
	p.src, p.dst = p.dst, p.src
	if p.left--; p.left > 0 {
		p.eng.ScheduleAct(1, p, 0, nil)
	}
}

// crossTraffic builds drivers whose XY paths overlap, so arbitration
// rounds see contention, denials, and multi-request priority sorting.
func crossTraffic(eng *engine.Engine, n *Nocstar) []*pingPong {
	g := n.Geometry()
	last := NodeID(g.Nodes() - 1)
	return []*pingPong{
		{eng: eng, n: n, src: 0, dst: last},
		{eng: eng, n: n, src: g.Node(0, g.Cols-1), dst: g.Node(g.Rows-1, 0)},
		{eng: eng, n: n, src: g.Node(g.Rows/2, 0), dst: g.Node(g.Rows/2, g.Cols-1)},
		{eng: eng, n: n, src: last, dst: 0},
	}
}

func runTraffic(eng *engine.Engine, drivers []*pingPong, msgs int) {
	for _, d := range drivers {
		d.left = msgs
		eng.ScheduleAct(1, d, 0, nil)
	}
	eng.Run()
}

// TestRequestPathAllocFree pins the tentpole property on the NoC side:
// once the engine's wheel, the arbitration buffers, and the setup-request
// free list are warm, a path request/grant round trip allocates nothing.
func TestRequestPathAllocFree(t *testing.T) {
	eng := engine.New()
	n := NewNocstar(eng, NocstarConfig{Geometry: GridFor(16)})
	// Metrics and tracer attached: observation must stay allocation-free
	// (the tracer's window is kept saturated by the warmup, exercising the
	// drop path too).
	n.AttachMetrics(metrics.NewRegistry())
	n.SetTracer(metrics.NewTracer(1 << 12))
	drivers := crossTraffic(eng, n)
	// Warm the arbitration buffers, the setup-request free list, and — by
	// running past a full lap of the engine's timing wheel — every wheel
	// bucket the steady state will reuse.
	runTraffic(eng, drivers, 6000)

	avg := testing.AllocsPerRun(10, func() {
		runTraffic(eng, drivers, 32)
	})
	if avg != 0 {
		t.Fatalf("steady-state NoC request/response path allocates: %.1f allocs/run, want 0", avg)
	}
	for i, d := range drivers {
		if d.grants == 0 {
			t.Fatalf("driver %d was never granted a path", i)
		}
	}
}

// BenchmarkRequestPath measures one contended request/grant round trip.
func BenchmarkRequestPath(b *testing.B) {
	eng := engine.New()
	n := NewNocstar(eng, NocstarConfig{Geometry: GridFor(16)})
	drivers := crossTraffic(eng, n)
	runTraffic(eng, drivers, 64)
	b.ReportAllocs()
	b.ResetTimer()
	runTraffic(eng, drivers, b.N)
}
