// Package noc implements the on-chip interconnects of the paper: the
// multi-hop mesh and SMART baselines, the Table I design-space models
// (bus, flattened butterfly), and NOCSTAR itself — a latchless,
// circuit-switched fabric with per-link arbiters that sets up an entire
// source-to-destination path in one cycle and traverses it in
// ceil(hops/HPCmax) cycles (Section III-B).
package noc

import (
	"fmt"
	"sync"
)

// NodeID identifies a tile. Tiles are numbered row-major on a 2-D grid.
type NodeID int

// Geometry is a 2-D grid of tiles.
type Geometry struct {
	Rows, Cols int
}

// GridFor returns the most square geometry that tiles exactly n cores
// when n has a reasonable factorization (16 → 4x4, 32 → 8x4, 128 → 16x8),
// matching how the paper lays out 16-512 core chips; otherwise the
// smallest near-square grid with at least n tiles.
func GridFor(n int) Geometry {
	if n <= 0 {
		panic("noc: GridFor with non-positive node count")
	}
	best := Geometry{}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			c := n / r
			if c <= 2*r || best.Rows == 0 {
				best = Geometry{Rows: c, Cols: r}
			}
		}
	}
	if best.Rows != 0 && best.Rows <= 2*best.Cols {
		return best
	}
	rows := 1
	for rows*rows < n {
		rows++
	}
	cols := rows
	for rows*(cols-1) >= n {
		cols--
	}
	return Geometry{Rows: rows, Cols: cols}
}

// Nodes reports the tile count.
func (g Geometry) Nodes() int { return g.Rows * g.Cols }

// Coord returns the (row, col) of a node.
func (g Geometry) Coord(n NodeID) (row, col int) {
	if int(n) < 0 || int(n) >= g.Nodes() {
		panic(fmt.Sprintf("noc: node %d outside %dx%d grid", n, g.Rows, g.Cols))
	}
	return int(n) / g.Cols, int(n) % g.Cols
}

// Node returns the NodeID at (row, col).
func (g Geometry) Node(row, col int) NodeID {
	if row < 0 || row >= g.Rows || col < 0 || col >= g.Cols {
		panic(fmt.Sprintf("noc: coordinate (%d,%d) outside %dx%d grid", row, col, g.Rows, g.Cols))
	}
	return NodeID(row*g.Cols + col)
}

// Hops returns the Manhattan distance between two nodes — the hop count H
// in the paper's latency formula.
func (g Geometry) Hops(a, b NodeID) int {
	ra, ca := g.Coord(a)
	rb, cb := g.Coord(b)
	return abs(ra-rb) + abs(ca-cb)
}

// MeanHops returns the average Manhattan distance from a uniformly random
// source to a uniformly random (possibly equal) destination.
func (g Geometry) MeanHops() float64 {
	// Mean |i-j| over a line of k points is (k^2-1)/(3k).
	lineMean := func(k int) float64 {
		return float64(k*k-1) / float64(3*k)
	}
	return lineMean(g.Rows) + lineMean(g.Cols)
}

// Direction of a directed mesh link out of a node.
type Direction int

// Mesh link directions.
const (
	East Direction = iota
	West
	North
	South
	numDirections
)

// LinkID identifies one directed mesh link as node*4+direction.
type LinkID int

// NumLinks reports the size of the directed-link ID space (including
// edge slots that have no physical link; those are simply never used).
func (g Geometry) NumLinks() int { return g.Nodes() * int(numDirections) }

// Link returns the ID of the directed link leaving n in direction d.
func (g Geometry) Link(n NodeID, d Direction) LinkID {
	return LinkID(int(n)*int(numDirections) + int(d))
}

// XYPath returns the directed links of the XY route from src to dst:
// all X (east/west) movement first, then Y (north/south). The paper's
// NOCSTAR uses XY routing for its arbitrated paths (Section III-B2).
// The path is empty when src == dst.
func (g Geometry) XYPath(src, dst NodeID) []LinkID {
	r0, c0 := g.Coord(src)
	r1, c1 := g.Coord(dst)
	path := make([]LinkID, 0, abs(r0-r1)+abs(c0-c1))
	r, c := r0, c0
	for c != c1 {
		if c < c1 {
			path = append(path, g.Link(g.Node(r, c), East))
			c++
		} else {
			path = append(path, g.Link(g.Node(r, c), West))
			c--
		}
	}
	for r != r1 {
		if r < r1 {
			path = append(path, g.Link(g.Node(r, c), South))
			r++
		} else {
			path = append(path, g.Link(g.Node(r, c), North))
			r--
		}
	}
	return path
}

// routeTable holds every (src, dst) XY route of one grid, flattened into
// a single links array with per-pair offsets. Routes are static under XY
// routing, so the table is computed once per grid shape and shared by
// every simulated system of that shape; Route hands out sub-slices of the
// shared storage, eliminating the per-request path allocation that
// XYPath's freshly built slices cost on the NoC critical path.
type routeTable struct {
	nodes int
	off   []int32  // len nodes*nodes+1; route i spans links[off[i]:off[i+1]]
	links []LinkID // all routes concatenated, src-major then dst
}

// routeTables caches one table per grid shape for the process lifetime.
// The table is a pure function of (Rows, Cols), so a racing double build
// stores identical content and determinism is unaffected.
var routeTables sync.Map // [2]int{rows, cols} -> *routeTable

// routesFor returns the (possibly freshly built) route table of g.
func routesFor(g Geometry) *routeTable {
	key := [2]int{g.Rows, g.Cols}
	if v, ok := routeTables.Load(key); ok {
		return v.(*routeTable)
	}
	n := g.Nodes()
	rt := &routeTable{nodes: n, off: make([]int32, n*n+1)}
	// Total link count: sum of Manhattan distances over all pairs.
	total := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			total += g.Hops(NodeID(src), NodeID(dst))
		}
	}
	rt.links = make([]LinkID, 0, total)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			rt.links = append(rt.links, g.XYPath(NodeID(src), NodeID(dst))...)
			rt.off[src*n+dst+1] = int32(len(rt.links))
		}
	}
	v, _ := routeTables.LoadOrStore(key, rt)
	return v.(*routeTable)
}

// route returns the precomputed XY route from src to dst as a sub-slice
// of the shared table storage.
func (rt *routeTable) route(src, dst NodeID) []LinkID {
	i := int(src)*rt.nodes + int(dst)
	lo, hi := rt.off[i], rt.off[i+1]
	return rt.links[lo:hi:hi]
}

// Route returns the XY route from src to dst out of the grid's
// precomputed route table, equal element-for-element to XYPath. The
// returned slice is shared, read-only storage: callers must not modify
// it. Hot callers that issue many route queries should capture the table
// once via the fabric (as Nocstar does) rather than re-resolving the
// grid's table on every call.
func (g Geometry) Route(src, dst NodeID) []LinkID {
	return routesFor(g).route(src, dst)
}

// LinkEndpoints returns the tail and head nodes of a link. It panics for
// IDs whose direction would leave the grid.
func (g Geometry) LinkEndpoints(l LinkID) (from, to NodeID) {
	n := NodeID(int(l) / int(numDirections))
	d := Direction(int(l) % int(numDirections))
	r, c := g.Coord(n)
	switch d {
	case East:
		return n, g.Node(r, c+1)
	case West:
		return n, g.Node(r, c-1)
	case North:
		return n, g.Node(r-1, c)
	case South:
		return n, g.Node(r+1, c)
	}
	panic("noc: invalid link")
}

// ArbiterFanin returns, for the link l, how many distinct source nodes can
// ever request it under XY routing — the paper's Fig. 7(d) fan-in
// discussion (an X link has few requesters, a Y link up to a column's
// worth of rows times columns).
func (g Geometry) ArbiterFanin(l LinkID) int {
	// Sources are scanned in ascending NodeID order and counted at most
	// once each, so the result is structurally deterministic — unlike the
	// map-set this replaces, whose iteration order was only incidentally
	// irrelevant.
	rt := routesFor(g)
	fanin := 0
	for src := 0; src < g.Nodes(); src++ {
	dsts:
		for dst := 0; dst < g.Nodes(); dst++ {
			if src == dst {
				continue
			}
			for _, pl := range rt.route(NodeID(src), NodeID(dst)) {
				if pl == l {
					fanin++
					break dsts
				}
			}
		}
	}
	return fanin
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
