package noc

import (
	"sort"

	"nocstar/internal/engine"
)

// AcquireMode selects the paper's two link-reservation policies
// (Section V, "Path setup options" / Fig. 16 left).
type AcquireMode int

const (
	// OneWayAcquire reserves links only for one message's traversal; the
	// response arbitrates separately (the paper's better-performing
	// "2×one-way" mode).
	OneWayAcquire AcquireMode = iota
	// RoundTripAcquire holds the path for the whole remote access,
	// request through response ("1×two-way").
	RoundTripAcquire
)

// PriorityRotationPeriod is how often the static arbitration priority
// rotates round-robin to prevent starvation (Section III-B2: every 1000
// cycles).
const PriorityRotationPeriod = 1000

// NocstarConfig configures the circuit-switched fabric.
type NocstarConfig struct {
	Geometry Geometry
	// HPCmax is the maximum hops a signal travels per cycle before a
	// pipeline latch is required (Section III-B3). Zero means the whole
	// chip is reachable in one cycle.
	HPCmax int
	// Ideal disables contention: every setup is granted immediately.
	// Used for the paper's "NOCSTAR (ideal)" series in Fig. 15.
	Ideal bool
}

// NocstarStats aggregates fabric behaviour for Fig. 11(c) and Fig. 15.
type NocstarStats struct {
	Messages        uint64 // granted traversals
	SetupAttempts   uint64 // one per arbitration try
	FirstTryGrants  uint64 // messages granted with zero contention delay
	TotalSetupDelay uint64 // cycles from first request to grant, >= 1 each
	TotalTraversal  uint64 // datapath cycles
}

// AvgSetupCycles reports the mean cycles spent acquiring a path
// (1.0 = no contention ever).
func (s NocstarStats) AvgSetupCycles() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.TotalSetupDelay) / float64(s.Messages)
}

// NoContentionFraction reports the fraction of messages whose path was
// granted on the first attempt (plotted in Fig. 11(c)).
func (s NocstarStats) NoContentionFraction() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.FirstTryGrants) / float64(s.Messages)
}

// AvgNetworkLatency reports mean setup+traversal cycles per message.
func (s NocstarStats) AvgNetworkLatency() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.TotalSetupDelay+s.TotalTraversal) / float64(s.Messages)
}

// setupReq is one in-flight path-setup request.
type setupReq struct {
	src, dst   NodeID
	links      []LinkID
	hold       engine.Cycle // cycles the links stay reserved once granted
	firstTry   engine.Cycle
	onGranted  func(traversal int)
}

// Nocstar is the latchless circuit-switched TLB interconnect. All link
// arbiters resolve synchronously at the end of each cycle: a requester
// must win every link of its XY path in the same cycle or it retries next
// cycle (Section III-B2, "no packets traversing partial paths").
type Nocstar struct {
	cfg  NocstarConfig
	eng  *engine.Engine
	geo  Geometry
	// reservedUntil[l] is the last cycle link l is held through.
	reservedUntil []engine.Cycle
	pending       []*setupReq
	arbScheduled  bool
	stats         NocstarStats
}

// NewNocstar builds the fabric on an engine.
func NewNocstar(eng *engine.Engine, cfg NocstarConfig) *Nocstar {
	return &Nocstar{
		cfg:           cfg,
		eng:           eng,
		geo:           cfg.Geometry,
		reservedUntil: make([]engine.Cycle, cfg.Geometry.NumLinks()),
	}
}

// Geometry returns the fabric's grid.
func (n *Nocstar) Geometry() Geometry { return n.geo }

// Stats returns a copy of the accumulated statistics.
func (n *Nocstar) Stats() NocstarStats { return n.stats }

// TraversalCycles returns the datapath cycles for h hops: a single cycle
// when the path fits within HPCmax, one more per additional HPCmax-hop
// segment (pipeline latches, Section III-B3). Zero hops (local slice)
// costs nothing.
func (n *Nocstar) TraversalCycles(h int) int {
	if h <= 0 {
		return 0
	}
	if n.cfg.HPCmax <= 0 {
		return 1
	}
	return (h + n.cfg.HPCmax - 1) / n.cfg.HPCmax
}

// HoldCyclesOneWay returns how long links are reserved for a one-way
// message between src and dst.
func (n *Nocstar) HoldCyclesOneWay(src, dst NodeID) engine.Cycle {
	return engine.Cycle(n.TraversalCycles(n.geo.Hops(src, dst)))
}

// RequestPath begins acquiring the XY path from src to dst. Arbitration
// happens at the end of the current cycle; on a conflict the request
// retries automatically every cycle until it wins. onGranted runs at the
// start of the cycle the message may begin traversing, and receives the
// traversal cycle count. hold is how many cycles the links stay reserved
// from that point (use HoldCyclesOneWay, or the full round-trip residency
// for RoundTripAcquire).
//
// src == dst is a caller bug — local slices bypass the network — and
// panics to surface model errors early.
func (n *Nocstar) RequestPath(src, dst NodeID, hold engine.Cycle, onGranted func(traversal int)) {
	if src == dst {
		panic("noc: RequestPath for local access")
	}
	req := &setupReq{
		src:       src,
		dst:       dst,
		links:     n.geo.XYPath(src, dst),
		hold:      hold,
		firstTry:  n.eng.Now(),
		onGranted: onGranted,
	}
	n.enqueue(req)
}

// enqueue adds a request to this cycle's arbitration round.
func (n *Nocstar) enqueue(req *setupReq) {
	n.pending = append(n.pending, req)
	if !n.arbScheduled {
		n.arbScheduled = true
		n.eng.AtEndOfCycle(n.arbitrate)
	}
}

// priority returns the rotating static priority of a source node: lower
// is better. The rotation shifts the favoured node round-robin every
// PriorityRotationPeriod cycles, which guarantees starvation freedom.
func (n *Nocstar) priority(src NodeID, now engine.Cycle) int {
	nodes := n.geo.Nodes()
	rot := int(now/PriorityRotationPeriod) % nodes
	return (int(src) - rot + nodes) % nodes
}

// arbitrate resolves every setup request issued in the current cycle.
// Requests are considered in static-priority order; a request wins only
// if every link of its path is free for its entire hold window. Losers
// retry next cycle.
func (n *Nocstar) arbitrate() {
	n.arbScheduled = false
	reqs := n.pending
	n.pending = nil
	now := n.eng.Now()

	sort.SliceStable(reqs, func(i, j int) bool {
		return n.priority(reqs[i].src, now) < n.priority(reqs[j].src, now)
	})

	for _, req := range reqs {
		n.stats.SetupAttempts++
		if n.granted(req, now) {
			continue
		}
		// Denied: retry at the end of the next cycle.
		req := req
		n.eng.Schedule(1, func() { n.enqueue(req) })
	}
}

// granted attempts to reserve the request's links for [now+1, now+hold].
// On success it schedules onGranted for the next cycle.
func (n *Nocstar) granted(req *setupReq, now engine.Cycle) bool {
	if !n.cfg.Ideal {
		for _, l := range req.links {
			if n.reservedUntil[l] > now {
				return false
			}
		}
		until := now + req.hold
		for _, l := range req.links {
			n.reservedUntil[l] = until
		}
	}
	n.stats.Messages++
	setupDelay := uint64(now-req.firstTry) + 1
	n.stats.TotalSetupDelay += setupDelay
	if setupDelay == 1 {
		n.stats.FirstTryGrants++
	}
	traversal := n.TraversalCycles(len(req.links))
	n.stats.TotalTraversal += uint64(traversal)
	n.eng.Schedule(1, func() { req.onGranted(traversal) })
	return true
}

// Release frees the links of the XY path from src to dst immediately.
// RoundTripAcquire holders call this when the response has been consumed
// earlier than the conservatively reserved window.
func (n *Nocstar) Release(src, dst NodeID) {
	now := n.eng.Now()
	for _, l := range n.geo.XYPath(src, dst) {
		if n.reservedUntil[l] > now {
			n.reservedUntil[l] = now
		}
	}
}
