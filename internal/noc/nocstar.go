package noc

import (
	"nocstar/internal/engine"
	"nocstar/internal/metrics"
)

// AcquireMode selects the paper's two link-reservation policies
// (Section V, "Path setup options" / Fig. 16 left).
type AcquireMode int

const (
	// OneWayAcquire reserves links only for one message's traversal; the
	// response arbitrates separately (the paper's better-performing
	// "2×one-way" mode).
	OneWayAcquire AcquireMode = iota
	// RoundTripAcquire holds the path for the whole remote access,
	// request through response ("1×two-way").
	RoundTripAcquire
)

// PriorityRotationPeriod is how often the static arbitration priority
// rotates round-robin to prevent starvation (Section III-B2: every 1000
// cycles).
const PriorityRotationPeriod = 1000

// NocstarConfig configures the circuit-switched fabric.
type NocstarConfig struct {
	Geometry Geometry
	// HPCmax is the maximum hops a signal travels per cycle before a
	// pipeline latch is required (Section III-B3). Zero means the whole
	// chip is reachable in one cycle.
	HPCmax int
	// Ideal disables contention: every setup is granted immediately.
	// Used for the paper's "NOCSTAR (ideal)" series in Fig. 15.
	Ideal bool
}

// NocstarStats aggregates fabric behaviour for Fig. 11(c) and Fig. 15.
type NocstarStats struct {
	Messages        uint64 // granted traversals
	SetupAttempts   uint64 // one per arbitration try
	FirstTryGrants  uint64 // messages granted with zero contention delay
	TotalSetupDelay uint64 // cycles from first request to grant, >= 1 each
	TotalTraversal  uint64 // datapath cycles
	Retries         uint64 // denied arbitration attempts (SetupAttempts - Messages)
	Releases        uint64 // early Release calls (RoundTripAcquire only)
	ReleasedLinks   uint64 // links actually freed early by Release
	ForeignLinks    uint64 // links a Release skipped because another grant held them
}

// AvgSetupCycles reports the mean cycles spent acquiring a path
// (1.0 = no contention ever).
func (s NocstarStats) AvgSetupCycles() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.TotalSetupDelay) / float64(s.Messages)
}

// NoContentionFraction reports the fraction of messages whose path was
// granted on the first attempt (plotted in Fig. 11(c)).
func (s NocstarStats) NoContentionFraction() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.FirstTryGrants) / float64(s.Messages)
}

// AvgNetworkLatency reports mean setup+traversal cycles per message.
func (s NocstarStats) AvgNetworkLatency() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.TotalSetupDelay+s.TotalTraversal) / float64(s.Messages)
}

// CircuitObserver observes the fabric's reservation state changes, for
// invariant checking (internal/check): CircuitGranted runs after a
// grant reserves its links through cycle until, CircuitReleased after
// an early Release for the hold window ending at until has been
// processed. links is shared route-table storage and must not be
// retained or written. The observer is never invoked on an Ideal
// fabric, which keeps no reservations.
type CircuitObserver interface {
	CircuitGranted(src, dst NodeID, links []LinkID, now, until engine.Cycle)
	CircuitReleased(src, dst NodeID, links []LinkID, now, until engine.Cycle)
}

// GrantHandler receives path grants from typed setup requests. Like
// engine.Actor, the (handler, op, arg) triple replaces a captured
// closure: the handler is a persistent model object, op selects the
// continuation, and arg is an opaque pointer payload. PathGranted runs at
// the start of the cycle the message may begin traversing.
type GrantHandler interface {
	PathGranted(op uint8, arg any, traversal int)
}

// setupReq is one in-flight path-setup request. Requests are recycled
// through the fabric's free list once their grant is delivered.
type setupReq struct {
	src, dst NodeID
	links    []LinkID     // shared route-table storage; never written
	hold     engine.Cycle // cycles the links stay reserved once granted
	firstTry engine.Cycle
	prio     int // rotating static priority, computed per arbitration round

	// Exactly one continuation style is set: the legacy closure, or the
	// typed (handler, op, arg) triple.
	onGranted func(traversal int)
	h         GrantHandler
	op        uint8
	arg       any

	traversal int // datapath cycles, filled at grant time
	next      *setupReq
}

// Nocstar's own engine.Actor operation codes.
const (
	nocOpRetry uint8 = iota // re-enter arbitration after a denied cycle
	nocOpGrant              // deliver a granted request to its continuation
)

// Nocstar is the latchless circuit-switched TLB interconnect. All link
// arbiters resolve synchronously at the end of each cycle: a requester
// must win every link of its XY path in the same cycle or it retries next
// cycle (Section III-B2, "no packets traversing partial paths").
type Nocstar struct {
	cfg    NocstarConfig
	eng    *engine.Engine
	geo    Geometry
	routes *routeTable // precomputed XY routes of geo, shared read-only
	// reservedUntil[l] is the last cycle link l is held through.
	reservedUntil []engine.Cycle
	pending       []*setupReq
	pendingFree   []*setupReq // drained pending buffer, recycled
	arbScheduled  bool
	arbFn         func() // n.arbitrate, bound once to keep AtEndOfCycle allocation-free
	free          *setupReq
	stats         NocstarStats

	// Optional observability, attached before the run starts. All are
	// nil-checked on the hot path; detached costs one branch.
	setupHist *metrics.Hist   // cycles from first request to grant
	tracer    *metrics.Tracer // path setup/grant/release events
	observer  CircuitObserver // reservation invariant checking

	// legacyRelease restores the pre-fix unconditional rewind in Release
	// — the PR 3 clobber bug, where a late round-trip release freed links
	// a later grant had re-reserved. It exists only so the invariant
	// checker's regression test can demonstrate the historical bug is
	// caught; never set it outside tests.
	legacyRelease bool
}

// NewNocstar builds the fabric on an engine.
func NewNocstar(eng *engine.Engine, cfg NocstarConfig) *Nocstar {
	n := &Nocstar{
		cfg:           cfg,
		eng:           eng,
		geo:           cfg.Geometry,
		routes:        routesFor(cfg.Geometry),
		reservedUntil: make([]engine.Cycle, cfg.Geometry.NumLinks()),
	}
	n.arbFn = n.arbitrate
	return n
}

// Geometry returns the fabric's grid.
func (n *Nocstar) Geometry() Geometry { return n.geo }

// Stats returns a copy of the accumulated statistics.
func (n *Nocstar) Stats() NocstarStats { return n.stats }

// AttachMetrics registers the fabric's latency histograms on reg. Call
// once, before the run starts; observations are allocation-free.
func (n *Nocstar) AttachMetrics(reg *metrics.Registry) {
	n.setupHist = reg.Hist("noc.setup_cycles", nil)
}

// SetTracer attaches an event tracer (nil detaches).
func (n *Nocstar) SetTracer(tr *metrics.Tracer) { n.tracer = tr }

// SetCircuitObserver attaches a reservation observer (nil detaches).
// Call before the run starts.
func (n *Nocstar) SetCircuitObserver(o CircuitObserver) { n.observer = o }

// ReservedUntil reports the last cycle link l is currently held
// through. It exposes the fabric's reservation state read-only so an
// observer can cross-check its own shadow copy.
func (n *Nocstar) ReservedUntil(l LinkID) engine.Cycle { return n.reservedUntil[l] }

// SetLegacyReleaseForTest switches Release to the pre-fix unconditional
// rewind (the PR 3 clobber bug). Test-only: it exists so the invariant
// checker can be validated against a known historical bug.
func (n *Nocstar) SetLegacyReleaseForTest(on bool) { n.legacyRelease = on }

// TraversalCycles returns the datapath cycles for h hops: a single cycle
// when the path fits within HPCmax, one more per additional HPCmax-hop
// segment (pipeline latches, Section III-B3). Zero hops (local slice)
// costs nothing.
func (n *Nocstar) TraversalCycles(h int) int {
	if h <= 0 {
		return 0
	}
	if n.cfg.HPCmax <= 0 {
		return 1
	}
	return (h + n.cfg.HPCmax - 1) / n.cfg.HPCmax
}

// HoldCyclesOneWay returns how long links are reserved for a one-way
// message between src and dst.
func (n *Nocstar) HoldCyclesOneWay(src, dst NodeID) engine.Cycle {
	return engine.Cycle(n.TraversalCycles(n.geo.Hops(src, dst)))
}

// RequestPath begins acquiring the XY path from src to dst. Arbitration
// happens at the end of the current cycle; on a conflict the request
// retries automatically every cycle until it wins. onGranted runs at the
// start of the cycle the message may begin traversing, and receives the
// traversal cycle count. hold is how many cycles the links stay reserved
// from that point (use HoldCyclesOneWay, or the full round-trip residency
// for RoundTripAcquire).
//
// src == dst is a caller bug — local slices bypass the network — and
// panics to surface model errors early.
func (n *Nocstar) RequestPath(src, dst NodeID, hold engine.Cycle, onGranted func(traversal int)) {
	req := n.newReq(src, dst, hold)
	req.onGranted = onGranted
	n.enqueue(req)
}

// RequestPathTo is the typed, allocation-free form of RequestPath: on
// grant, h.PathGranted(op, arg, traversal) runs instead of a closure.
// Semantics and arbitration order are otherwise identical.
func (n *Nocstar) RequestPathTo(src, dst NodeID, hold engine.Cycle, h GrantHandler, op uint8, arg any) {
	req := n.newReq(src, dst, hold)
	req.h, req.op, req.arg = h, op, arg
	n.enqueue(req)
}

// newReq initializes a setup request from the free list.
func (n *Nocstar) newReq(src, dst NodeID, hold engine.Cycle) *setupReq {
	if src == dst {
		panic("noc: RequestPath for local access")
	}
	req := n.free
	if req == nil {
		req = &setupReq{}
	} else {
		n.free = req.next
		*req = setupReq{}
	}
	req.src = src
	req.dst = dst
	req.links = n.routes.route(src, dst)
	req.hold = hold
	req.firstTry = n.eng.Now()
	return req
}

// freeReq recycles a request whose grant has been delivered.
func (n *Nocstar) freeReq(req *setupReq) {
	*req = setupReq{next: n.free}
	n.free = req
}

// enqueue adds a request to this cycle's arbitration round.
func (n *Nocstar) enqueue(req *setupReq) {
	n.pending = append(n.pending, req)
	if !n.arbScheduled {
		n.arbScheduled = true
		n.eng.AtEndOfCycle(n.arbFn)
	}
}

// Act dispatches the fabric's own typed events.
func (n *Nocstar) Act(op uint8, arg any) {
	req := arg.(*setupReq)
	switch op {
	case nocOpRetry:
		n.enqueue(req)
	case nocOpGrant:
		// Recycle before delivering: the continuation may request a new
		// path immediately and reuse this object.
		h, hop, harg, tr, fn := req.h, req.op, req.arg, req.traversal, req.onGranted
		n.freeReq(req)
		if fn != nil {
			fn(tr)
		} else {
			h.PathGranted(hop, harg, tr)
		}
	}
}

// priority returns the rotating static priority of a source node: lower
// is better. The rotation shifts the favoured node round-robin every
// PriorityRotationPeriod cycles, which guarantees starvation freedom.
func (n *Nocstar) priority(src NodeID, now engine.Cycle) int {
	nodes := n.geo.Nodes()
	rot := int(now/PriorityRotationPeriod) % nodes
	return (int(src) - rot + nodes) % nodes
}

// arbitrate resolves every setup request issued in the current cycle.
// Requests are considered in static-priority order; a request wins only
// if every link of its path is free for its entire hold window. Losers
// retry next cycle.
func (n *Nocstar) arbitrate() {
	n.arbScheduled = false
	reqs := n.pending
	// Swap in the recycled buffer: retries issued below are events for
	// the next cycle, so nothing appends to n.pending while reqs drains,
	// but a second arbitration round within this cycle may.
	n.pending = n.pendingFree[:0]
	now := n.eng.Now()

	// Stable insertion sort by rotating priority. Equivalent ordering to
	// sort.SliceStable, without the per-call closure and interface-header
	// allocations; rounds are small (tens of requests), where insertion
	// sort also wins outright.
	for i := range reqs {
		reqs[i].prio = n.priority(reqs[i].src, now)
	}
	for i := 1; i < len(reqs); i++ {
		req := reqs[i]
		j := i - 1
		for j >= 0 && reqs[j].prio > req.prio {
			reqs[j+1] = reqs[j]
			j--
		}
		reqs[j+1] = req
	}

	for _, req := range reqs {
		n.stats.SetupAttempts++
		if n.granted(req, now) {
			continue
		}
		// Denied: retry at the end of the next cycle.
		n.stats.Retries++
		n.eng.ScheduleAct(1, n, nocOpRetry, req)
	}
	n.pendingFree = reqs[:0]
}

// granted attempts to reserve the request's links for [now+1, now+hold].
// On success it schedules onGranted for the next cycle.
func (n *Nocstar) granted(req *setupReq, now engine.Cycle) bool {
	if !n.cfg.Ideal {
		for _, l := range req.links {
			if n.reservedUntil[l] > now {
				return false
			}
		}
		until := now + req.hold
		for _, l := range req.links {
			n.reservedUntil[l] = until
		}
		if n.observer != nil {
			n.observer.CircuitGranted(req.src, req.dst, req.links, now, until)
		}
	}
	n.stats.Messages++
	setupDelay := uint64(now-req.firstTry) + 1
	n.stats.TotalSetupDelay += setupDelay
	if setupDelay == 1 {
		n.stats.FirstTryGrants++
	}
	traversal := n.TraversalCycles(len(req.links))
	n.stats.TotalTraversal += uint64(traversal)
	req.traversal = traversal
	if n.setupHist != nil {
		n.setupHist.Observe(setupDelay)
	}
	if n.tracer != nil {
		n.tracer.Emit(metrics.TracePathSetup, uint64(req.firstTry), setupDelay,
			int32(req.src), int32(req.dst))
		n.tracer.Emit(metrics.TracePathGrant, uint64(now+1), 0,
			int32(req.src), int32(req.dst))
	}
	n.eng.ScheduleAct(1, n, nocOpGrant, req)
	return true
}

// Release frees the links of the XY path from src to dst that are still
// held by the caller's own grant, identified by its reservation window:
// until is the grant's reservedUntil value (grant-delivery cycle - 1 +
// hold). RoundTripAcquire holders call this when the response has been
// consumed earlier than the conservatively reserved window.
//
// The per-grant match matters: reservations on a link strictly grow (a
// new grant requires the old one to have expired and always reserves
// further into the future), so reservedUntil[l] == until identifies the
// caller's hold exactly. A link whose reservation has moved past until
// belongs to a later grant on a shared segment and must not be rewound —
// the unconditional rewind this replaces let a late round-trip release
// clobber another message's circuit, allowing overlapping paths.
func (n *Nocstar) Release(src, dst NodeID, until engine.Cycle) {
	now := n.eng.Now()
	n.stats.Releases++
	links := n.routes.route(src, dst)
	for _, l := range links {
		switch {
		case n.reservedUntil[l] <= now:
			// Already expired or never held; nothing to free.
		case n.legacyRelease || n.reservedUntil[l] == until:
			// The legacy arm is the PR 3 bug: rewind whatever is held,
			// even a later grant's reservation on a shared segment.
			n.reservedUntil[l] = now
			n.stats.ReleasedLinks++
		default:
			// A later grant owns this link now.
			n.stats.ForeignLinks++
		}
	}
	if n.observer != nil && !n.cfg.Ideal {
		n.observer.CircuitReleased(src, dst, links, now, until)
	}
	if n.tracer != nil {
		n.tracer.Emit(metrics.TraceRelease, uint64(now), 0, int32(src), int32(dst))
	}
}

// SnapshotReserved returns a copy of the per-link reservation horizon.
// It is only meaningful at a quiescent point (no pending setup requests
// and no arbitration scheduled); it panics otherwise, because a snapshot
// taken mid-flight could not be restored faithfully.
func (n *Nocstar) SnapshotReserved() []engine.Cycle {
	if len(n.pending) > 0 || n.arbScheduled {
		panic("noc: SnapshotReserved with in-flight setup requests")
	}
	return append([]engine.Cycle(nil), n.reservedUntil...)
}

// RestoreReserved overwrites the per-link reservation horizon with a
// snapshot from an identically shaped fabric.
func (n *Nocstar) RestoreReserved(r []engine.Cycle) {
	if len(r) != len(n.reservedUntil) {
		panic("noc: RestoreReserved geometry mismatch")
	}
	copy(n.reservedUntil, r)
}

// ResetStats zeroes the accumulated fabric statistics.
func (n *Nocstar) ResetStats() { n.stats = NocstarStats{} }
