package noc

import (
	"testing"
	"testing/quick"
)

func TestGridFor(t *testing.T) {
	cases := []struct {
		n, rows, cols int
	}{
		{1, 1, 1}, {4, 2, 2}, {16, 4, 4}, {32, 6, 6}, {64, 8, 8},
		{128, 12, 11}, {256, 16, 16}, {512, 23, 23},
	}
	for _, c := range cases {
		g := GridFor(c.n)
		if g.Nodes() < c.n {
			t.Fatalf("GridFor(%d) = %dx%d holds only %d nodes", c.n, g.Rows, g.Cols, g.Nodes())
		}
		if g.Rows*g.Cols >= 2*c.n && c.n > 1 {
			t.Fatalf("GridFor(%d) = %dx%d wastes too much", c.n, g.Rows, g.Cols)
		}
	}
}

// TestGridForProperty sweeps every core count up to just past 1024 (the
// scaling study's ceiling) and checks the invariants consumers rely on:
// the grid holds all n cores, stays near-square (so padded tiles — grid
// nodes with IDs at or above n — are bounded), and never pads a whole
// row's worth of waste.
func TestGridForProperty(t *testing.T) {
	for n := 1; n <= 1025; n++ {
		g := GridFor(n)
		if g.Nodes() < n {
			t.Fatalf("GridFor(%d) = %dx%d holds only %d nodes", n, g.Rows, g.Cols, g.Nodes())
		}
		if g.Cols < 1 || g.Rows < g.Cols {
			t.Fatalf("GridFor(%d) = %dx%d not row-dominant", n, g.Rows, g.Cols)
		}
		if g.Rows > 2*g.Cols {
			t.Fatalf("GridFor(%d) = %dx%d too elongated", n, g.Rows, g.Cols)
		}
		// Either an exact factorization or minimal padding: dropping a
		// column must lose capacity.
		if g.Nodes() != n && g.Rows*(g.Cols-1) >= n {
			t.Fatalf("GridFor(%d) = %dx%d pads a full spare column", n, g.Rows, g.Cols)
		}
	}
}

func TestGridForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GridFor(0) did not panic")
		}
	}()
	GridFor(0)
}

func TestCoordNodeRoundTrip(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 8}
	for n := 0; n < g.Nodes(); n++ {
		r, c := g.Coord(NodeID(n))
		if g.Node(r, c) != NodeID(n) {
			t.Fatalf("round trip failed for node %d", n)
		}
	}
}

func TestHops(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 4}
	if h := g.Hops(0, 15); h != 6 {
		t.Fatalf("corner-to-corner hops = %d, want 6", h)
	}
	if h := g.Hops(5, 5); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
	if g.Hops(0, 1) != 1 || g.Hops(0, 4) != 1 {
		t.Fatal("adjacent hops != 1")
	}
}

func TestMeanHops(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 4}
	// Brute force check.
	sum, cnt := 0.0, 0
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			sum += float64(g.Hops(NodeID(a), NodeID(b)))
			cnt++
		}
	}
	want := sum / float64(cnt)
	if got := g.MeanHops(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("MeanHops = %v, brute force = %v", got, want)
	}
}

func TestXYPathShape(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 4}
	// Top-left to bottom-right: 3 east links then 3 south links.
	path := g.XYPath(0, 15)
	if len(path) != 6 {
		t.Fatalf("path length = %d, want 6", len(path))
	}
	for i, l := range path {
		d := Direction(int(l) % int(numDirections))
		if i < 3 && d != East {
			t.Fatalf("hop %d direction %d, want East first", i, d)
		}
		if i >= 3 && d != South {
			t.Fatalf("hop %d direction %d, want South after X", i, d)
		}
	}
	if len(g.XYPath(7, 7)) != 0 {
		t.Fatal("self path not empty")
	}
}

// Property: XY paths are contiguous (each link starts where the previous
// ended), start at src, end at dst, and have minimal length.
func TestXYPathContiguityProperty(t *testing.T) {
	g := Geometry{Rows: 6, Cols: 7}
	f := func(sRaw, dRaw uint16) bool {
		src := NodeID(int(sRaw) % g.Nodes())
		dst := NodeID(int(dRaw) % g.Nodes())
		path := g.XYPath(src, dst)
		if len(path) != g.Hops(src, dst) {
			return false
		}
		cur := src
		for _, l := range path {
			from, to := g.LinkEndpoints(l)
			if from != cur {
				return false
			}
			cur = to
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkEndpoints(t *testing.T) {
	g := Geometry{Rows: 3, Cols: 3}
	from, to := g.LinkEndpoints(g.Link(4, East))
	if from != 4 || to != 5 {
		t.Fatalf("east link = %d->%d", from, to)
	}
	from, to = g.LinkEndpoints(g.Link(4, North))
	if from != 4 || to != 1 {
		t.Fatalf("north link = %d->%d", from, to)
	}
	from, to = g.LinkEndpoints(g.Link(4, South))
	if from != 4 || to != 7 {
		t.Fatalf("south link = %d->%d", from, to)
	}
	from, to = g.LinkEndpoints(g.Link(4, West))
	if from != 4 || to != 3 {
		t.Fatalf("west link = %d->%d", from, to)
	}
}

func TestArbiterFanin(t *testing.T) {
	// Fig. 7(d): under XY routing an X-direction link has fewer possible
	// requesters than a Y-direction link near the middle of the chip.
	g := Geometry{Rows: 4, Cols: 4}
	xLink := g.Link(g.Node(1, 1), East)
	yLink := g.Link(g.Node(1, 1), South)
	fx, fy := g.ArbiterFanin(xLink), g.ArbiterFanin(yLink)
	if fx == 0 || fy == 0 {
		t.Fatalf("fanin zero: x=%d y=%d", fx, fy)
	}
	if fx >= fy {
		t.Fatalf("X-link fanin %d not below Y-link fanin %d (Fig. 7d)", fx, fy)
	}
	// An X link in a row can only be requested by nodes earlier in that
	// row (XY routing): at most Cols-1 sources.
	if fx > g.Cols-1 {
		t.Fatalf("X-link fanin %d exceeds row bound %d", fx, g.Cols-1)
	}
}
