package noc

// This file reproduces Table I: the latency / bandwidth / area / power
// design space of candidate TLB interconnects. The paper presents the
// table qualitatively (check / cross marks); we compute first-order
// numeric estimates from component models anchored to the Fig. 9
// place-and-route data and classify them against thresholds, so the same
// code regenerates both the numbers and the paper's qualitative verdicts.

// Component cost constants (28 nm, 2 GHz design point). The NOCSTAR
// switch and arbiter costs are the published Fig. 9 numbers; the buffered
// router costs are first-order estimates for a 5-port 4-VC mesh router in
// the same node, and the high-radix flattened-butterfly router scales by
// its port count.
const (
	switchAreaMM2  = 0.0022 // NOCSTAR latchless mux switch (Fig. 9)
	switchPowerMW  = 0.43
	arbiterAreaMM2 = 0.0038 // NOCSTAR tile's link arbiters (Fig. 9)
	arbiterPowerMW = 2.39

	meshRouterAreaMM2 = 0.030 // buffered 5-port mesh router
	meshRouterPowerMW = 6.5
	fbflyRadixFactor  = 4.0 // high-radix router vs mesh router
	busWireAreaMM2    = 0.010
	busDriverPowerMW  = 9.0 // full-chip broadcast driver
)

// DesignPoint is one Table I row, numerically.
type DesignPoint struct {
	Name string
	// AvgLatency is the mean no-load one-way latency (cycles) between a
	// random source/destination pair.
	AvgLatency float64
	// BisectionLinks counts unidirectional links crossing the bisection —
	// the bandwidth proxy.
	BisectionLinks int
	// AreaMM2 and PowerMW are chip-total interconnect estimates.
	AreaMM2 float64
	PowerMW float64
}

// Verdict is the paper's qualitative classification of one metric.
type Verdict int

// Verdict values: Good is the paper's check mark, Poor its cross,
// VeryGood/VeryPoor the double marks.
const (
	Poor Verdict = iota
	VeryPoor
	Good
	VeryGood
)

// String renders the verdict as the paper's symbols.
func (v Verdict) String() string {
	switch v {
	case Good:
		return "+"
	case VeryGood:
		return "++"
	case Poor:
		return "-"
	case VeryPoor:
		return "--"
	}
	return "?"
}

// DesignVerdicts is one qualitative Table I row.
type DesignVerdicts struct {
	Name                            string
	Latency, Bandwidth, Area, Power Verdict
}

// DesignSpace computes the Table I rows for an n-node system with the
// given flit serialization factor for narrow designs.
func DesignSpace(n int) []DesignPoint {
	g := GridFor(n)
	mean := g.MeanHops()
	rows, cols := g.Rows, g.Cols
	nodes := float64(g.Nodes())

	// Mesh: 2 cycles per hop; bisection = 2*rows directed links; routers
	// plus per-node link wiring.
	mesh := DesignPoint{
		Name:           "Mesh",
		AvgLatency:     2 * mean,
		BisectionLinks: 2 * rows,
		AreaMM2:        nodes * meshRouterAreaMM2,
		PowerMW:        nodes * meshRouterPowerMW,
	}

	// Bus: single shared medium. No-load latency is excellent (a repeated
	// wire spans the chip in 1-2 cycles) and the wire itself is cheap, but
	// the single medium has unit bisection bandwidth and every traversal
	// is a full-chip broadcast, so power scales with node count — the
	// paper's "does not scale and each traversal is a broadcast".
	bus := DesignPoint{
		Name:           "Bus",
		AvgLatency:     2,
		BisectionLinks: 1,
		AreaMM2:        busWireAreaMM2 * nodes,
		PowerMW:        busDriverPowerMW * nodes,
	}

	// FBFly-wide: all-to-all within rows and columns; ~2 hops average,
	// high-radix routers at every node.
	radix := float64(rows + cols - 2)
	fbWide := DesignPoint{
		Name:           "FBFly-wide",
		AvgLatency:     2 * 2,       // ~2 hops x (router+link)
		BisectionLinks: rows * cols, // row links crossing + express links
		AreaMM2:        nodes * meshRouterAreaMM2 * fbflyRadixFactor * radix / 8,
		PowerMW:        nodes * meshRouterPowerMW * fbflyRadixFactor * radix / 8,
	}

	// FBFly-narrow: same topology with links narrowed to mesh-equivalent
	// area; a TLB packet of ~4 flits adds serialization.
	const narrowTs = 4
	fbNarrow := DesignPoint{
		Name:           "FBFly-narrow",
		AvgLatency:     2*2 + narrowTs,
		BisectionLinks: rows * cols / narrowTs,
		AreaMM2:        nodes * meshRouterAreaMM2,
		PowerMW:        nodes * meshRouterPowerMW,
	}

	// SMART: mesh wiring plus bypass; latency ~ 1 + H/HPC, but keeps the
	// mesh's buffered routers plus SSR control wiring.
	smart := DesignPoint{
		Name:           "SMART",
		AvgLatency:     1 + mean/8 + 1,
		BisectionLinks: 2 * rows,
		AreaMM2:        nodes * meshRouterAreaMM2 * 1.15,
		PowerMW:        nodes * meshRouterPowerMW * 1.10,
	}

	// NOCSTAR: latchless switches and link arbiters only; single-cycle
	// datapath plus single-cycle setup.
	nstar := DesignPoint{
		Name:           "NOCSTAR",
		AvgLatency:     1 + 1 + mean/16,
		BisectionLinks: 2 * rows,
		AreaMM2:        nodes * (switchAreaMM2 + arbiterAreaMM2),
		PowerMW:        nodes * (switchPowerMW + arbiterPowerMW),
	}

	return []DesignPoint{bus, mesh, fbWide, fbNarrow, smart, nstar}
}

// Classify converts numeric design points into the paper's qualitative
// Table I verdicts, judging each metric relative to the mesh reference
// (the commodity choice) — except bandwidth, which is judged against the
// TLB traffic requirement the same way the paper does: the bus's single
// shared medium is the only inadequate design.
func Classify(points []DesignPoint) []DesignVerdicts {
	var mesh DesignPoint
	for _, p := range points {
		if p.Name == "Mesh" {
			mesh = p
		}
	}
	out := make([]DesignVerdicts, 0, len(points))
	for _, p := range points {
		v := DesignVerdicts{Name: p.Name}

		switch {
		case p.AvgLatency <= mesh.AvgLatency/2:
			v.Latency = Good
		default:
			v.Latency = Poor
		}

		switch {
		case p.BisectionLinks <= 1:
			v.Bandwidth = Poor
		case p.BisectionLinks > 2*mesh.BisectionLinks:
			v.Bandwidth = VeryGood
		default:
			v.Bandwidth = Good
		}

		switch {
		case p.AreaMM2 <= mesh.AreaMM2/2:
			v.Area = Good
		case p.AreaMM2 > 2*mesh.AreaMM2:
			v.Area = VeryPoor
		default:
			v.Area = Poor
		}

		switch {
		case p.PowerMW <= mesh.PowerMW/2:
			v.Power = Good
		case p.PowerMW > 2*mesh.PowerMW:
			v.Power = VeryPoor
		default:
			v.Power = Poor
		}

		out = append(out, v)
	}
	return out
}
