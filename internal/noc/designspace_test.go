package noc

import "testing"

// TestDesignSpaceRows pins the Table I row set and the first-order
// relationships the paper's qualitative table encodes.
func TestDesignSpaceRows(t *testing.T) {
	points := DesignSpace(256)
	wantNames := []string{"Bus", "Mesh", "FBFly-wide", "FBFly-narrow", "SMART", "NOCSTAR"}
	if len(points) != len(wantNames) {
		t.Fatalf("DesignSpace returned %d rows, want %d", len(points), len(wantNames))
	}
	byName := map[string]DesignPoint{}
	for i, p := range points {
		if p.Name != wantNames[i] {
			t.Fatalf("row %d = %q, want %q", i, p.Name, wantNames[i])
		}
		byName[p.Name] = p
		if p.AvgLatency <= 0 || p.AreaMM2 <= 0 || p.PowerMW <= 0 || p.BisectionLinks < 1 {
			t.Fatalf("row %q has non-positive metric: %+v", p.Name, p)
		}
	}
	mesh, nstar, smart := byName["Mesh"], byName["NOCSTAR"], byName["SMART"]
	if nstar.AvgLatency >= mesh.AvgLatency {
		t.Fatalf("NOCSTAR latency %v not below mesh %v", nstar.AvgLatency, mesh.AvgLatency)
	}
	if smart.AvgLatency >= mesh.AvgLatency {
		t.Fatalf("SMART latency %v not below mesh %v", smart.AvgLatency, mesh.AvgLatency)
	}
	if nstar.AreaMM2 >= mesh.AreaMM2 || nstar.PowerMW >= mesh.PowerMW {
		t.Fatalf("NOCSTAR area/power (%v, %v) not below mesh (%v, %v)",
			nstar.AreaMM2, nstar.PowerMW, mesh.AreaMM2, mesh.PowerMW)
	}
	if nstar.BisectionLinks != mesh.BisectionLinks {
		t.Fatalf("NOCSTAR bisection %d != mesh %d (same wiring)", nstar.BisectionLinks, mesh.BisectionLinks)
	}
	if byName["Bus"].BisectionLinks != 1 {
		t.Fatalf("bus bisection = %d, want 1", byName["Bus"].BisectionLinks)
	}
}

// TestClassifyVerdictsScaleInvariant checks the qualitative verdicts
// survive scaling: the exact verdicts TestDesignSpaceTable1 pins at 64
// cores must hold at every paper design point up to the 1024-core
// scaling study, and the bus's single shared medium stays the one
// inadequate bandwidth design throughout.
func TestClassifyVerdictsScaleInvariant(t *testing.T) {
	for _, n := range []int{16, 64, 256, 512, 1024} {
		byName := map[string]DesignVerdicts{}
		for _, v := range Classify(DesignSpace(n)) {
			byName[v.Name] = v
		}
		if byName["Bus"].Bandwidth != Poor {
			t.Fatalf("n=%d: bus bandwidth verdict = %v, want %v", n, byName["Bus"].Bandwidth, Poor)
		}
		mesh := byName["Mesh"]
		if mesh.Latency != Poor || mesh.Bandwidth != Good || mesh.Area != Poor || mesh.Power != Poor {
			t.Fatalf("n=%d: mesh reference verdicts = %+v", n, mesh)
		}
		nstar := byName["NOCSTAR"]
		if nstar.Latency != Good || nstar.Bandwidth != Good || nstar.Area != Good || nstar.Power != Good {
			t.Fatalf("n=%d: NOCSTAR verdicts = %+v, want all good", n, nstar)
		}
	}
}
