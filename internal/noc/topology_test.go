package noc

import (
	"testing"
)

// testGrids spans the shapes the property tests sweep: degenerate,
// square, rectangular, and larger-than-one-cluster for the hybrid.
var testGrids = []Geometry{
	{Rows: 1, Cols: 1},
	{Rows: 2, Cols: 2},
	{Rows: 3, Cols: 2},
	{Rows: 4, Cols: 4},
	{Rows: 5, Cols: 4},
	{Rows: 6, Cols: 6},
	{Rows: 8, Cols: 8},
}

func TestTopologyKindTokens(t *testing.T) {
	for _, k := range TopologyKinds() {
		if !k.Valid() {
			t.Fatalf("declared kind %d invalid", int(k))
		}
		got, ok := ParseTopologyKind(k.String())
		if !ok || got != k {
			t.Fatalf("token round trip failed for %v: got %v ok=%v", k, got, ok)
		}
	}
	if _, ok := ParseTopologyKind("ring"); ok {
		t.Fatal("parsed unknown token")
	}
	toks := TopologyTokens()
	if len(toks) != len(TopologyKinds()) {
		t.Fatalf("token count %d != kind count %d", len(toks), len(TopologyKinds()))
	}
	for i := 1; i < len(toks); i++ {
		if toks[i-1] >= toks[i] {
			t.Fatalf("tokens not sorted: %q before %q", toks[i-1], toks[i])
		}
	}
	if TopologyKind(99).Valid() {
		t.Fatal("kind 99 reported valid")
	}
	if TopologyKind(99).String() != "TopologyKind(99)" {
		t.Fatalf("invalid-kind String = %q", TopologyKind(99).String())
	}
}

func TestNewTopologyPanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopology with invalid kind did not panic")
		}
	}()
	NewTopology(numTopologyKinds, Geometry{Rows: 2, Cols: 2})
}

// TestTopologyGoldenHops pins the hop tables of every fabric on a 4x4
// grid (nodes numbered row-major): full rows from the corner tile 0 and
// the interior tile 5, hand-derived from each topology's definition.
func TestTopologyGoldenHops(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 4}
	golden := map[TopologyKind]map[NodeID][16]int{
		TopoMesh: {
			0: {0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5, 3, 4, 5, 6},
			5: {2, 1, 2, 3, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 4},
		},
		TopoTorus: {
			0: {0, 1, 2, 1, 1, 2, 3, 2, 2, 3, 4, 3, 1, 2, 3, 2},
			5: {2, 1, 2, 3, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 4},
		},
		TopoXBar: {
			0: {0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
			5: {1, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		},
		// A 4x4 grid is exactly one hybrid cluster, so the hybrid
		// degenerates to the local mesh.
		TopoHybrid: {
			0: {0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5, 3, 4, 5, 6},
			5: {2, 1, 2, 3, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 4},
		},
	}
	for kind, rows := range golden {
		topo := NewTopology(kind, g)
		for src, want := range rows {
			for dst := 0; dst < 16; dst++ {
				if got := topo.Hops(src, NodeID(dst)); got != want[dst] {
					t.Errorf("%v Hops(%d,%d) = %d, want %d", kind, src, dst, got, want[dst])
				}
			}
		}
	}
}

// TestHybridCrossCluster exercises the two-level path on an 8x8 grid
// (four 4x4 clusters, hubs at the top-left tile of each).
func TestHybridCrossCluster(t *testing.T) {
	g := Geometry{Rows: 8, Cols: 8}
	topo := NewTopology(TopoHybrid, g)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{g.Node(0, 0), g.Node(0, 3), 3}, // same cluster: local mesh
		{g.Node(0, 0), g.Node(0, 4), 1}, // hub to hub: one crossbar hop
		{g.Node(0, 3), g.Node(0, 4), 4}, // 3 to own hub + xbar + 0
		{g.Node(7, 7), g.Node(0, 0), 7}, // (3+3) to hub + xbar + 0
		{g.Node(5, 5), g.Node(2, 1), 6}, // (1+1) + xbar + (2+1)
	}
	for _, c := range cases {
		if got := topo.Hops(c.a, c.b); got != c.want {
			t.Errorf("hybrid Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestTopologyContract checks the interface contract every consumer
// depends on — symmetry, zero exactly on the diagonal, the MinHops
// lower bound (the sharded engine's lookahead soundness), and accessor
// consistency — for every kind over a range of grid shapes.
func TestTopologyContract(t *testing.T) {
	for _, kind := range TopologyKinds() {
		for _, g := range testGrids {
			topo := NewTopology(kind, g)
			if topo.Kind() != kind {
				t.Fatalf("%v over %dx%d reports kind %v", kind, g.Rows, g.Cols, topo.Kind())
			}
			if topo.Geometry() != g {
				t.Fatalf("%v geometry mismatch", kind)
			}
			if mh := topo.MinHops(); mh < 1 {
				t.Fatalf("%v MinHops = %d < 1 breaks the lookahead window", kind, mh)
			}
			n := g.Nodes()
			minSeen := 0
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					h := topo.Hops(NodeID(a), NodeID(b))
					if rev := topo.Hops(NodeID(b), NodeID(a)); rev != h {
						t.Fatalf("%v %dx%d Hops(%d,%d)=%d asymmetric with %d", kind, g.Rows, g.Cols, a, b, h, rev)
					}
					if (h == 0) != (a == b) {
						t.Fatalf("%v %dx%d Hops(%d,%d)=%d violates zero-iff-equal", kind, g.Rows, g.Cols, a, b, h)
					}
					if a != b && (minSeen == 0 || h < minSeen) {
						minSeen = h
					}
				}
			}
			if n > 1 && minSeen < topo.MinHops() {
				t.Fatalf("%v %dx%d observed min hop %d below MinHops %d", kind, g.Rows, g.Cols, minSeen, topo.MinHops())
			}
		}
	}
}

// TestTopologyMeanHops cross-checks every closed-form MeanHops against
// the brute-force average over all ordered pairs.
func TestTopologyMeanHops(t *testing.T) {
	for _, kind := range TopologyKinds() {
		for _, g := range testGrids {
			topo := NewTopology(kind, g)
			n := g.Nodes()
			sum := 0
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					sum += topo.Hops(NodeID(a), NodeID(b))
				}
			}
			want := float64(sum) / float64(n*n)
			if got := topo.MeanHops(); got < want-1e-9 || got > want+1e-9 {
				t.Fatalf("%v %dx%d MeanHops = %v, brute force = %v", kind, g.Rows, g.Cols, got, want)
			}
		}
	}
}

// TestTopologyHopsBoundsCheck verifies every fabric rejects
// out-of-grid nodes the same way the mesh does.
func TestTopologyHopsBoundsCheck(t *testing.T) {
	g := Geometry{Rows: 2, Cols: 2}
	for _, kind := range TopologyKinds() {
		topo := NewTopology(kind, g)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v Hops with out-of-grid node did not panic", kind)
				}
			}()
			topo.Hops(0, NodeID(g.Nodes()))
		}()
	}
}

// TestMeshMinCrossLatencyPerTopology pins the lookahead window each
// fabric hands the partitioned engine: with MinHops fixed at 1 for all
// built-ins, the window equals LatencyForHops(1) regardless of kind.
func TestMeshMinCrossLatencyPerTopology(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 4}
	for _, kind := range TopologyKinds() {
		mc := DefaultMeshConfig(g)
		mc.Topology = NewTopology(kind, g)
		m := NewMesh(mc)
		if got, want := m.MinCrossLatency(), m.LatencyForHops(1); got != want {
			t.Fatalf("%v MinCrossLatency = %d, want LatencyForHops(1) = %d", kind, got, want)
		}
	}
}
