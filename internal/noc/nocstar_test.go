package noc

import (
	"testing"

	"nocstar/internal/engine"
)

func newFabric(t *testing.T, n, hpc int, ideal bool) (*engine.Engine, *Nocstar) {
	t.Helper()
	eng := engine.New()
	ns := NewNocstar(eng, NocstarConfig{Geometry: GridFor(n), HPCmax: hpc, Ideal: ideal})
	return eng, ns
}

func TestTraversalCycles(t *testing.T) {
	_, ns := newFabric(t, 64, 8, false)
	cases := []struct{ hops, want int }{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {14, 2}, {16, 2}, {17, 3},
	}
	for _, c := range cases {
		if got := ns.TraversalCycles(c.hops); got != c.want {
			t.Fatalf("TraversalCycles(%d) = %d, want %d", c.hops, got, c.want)
		}
	}
	// HPCmax=0 means whole chip in one cycle.
	_, ns0 := newFabric(t, 64, 0, false)
	if ns0.TraversalCycles(14) != 1 {
		t.Fatal("HPCmax=0 should give single-cycle traversal")
	}
}

func TestSingleRequestGrantTiming(t *testing.T) {
	eng, ns := newFabric(t, 16, 16, false)
	var grantedAt engine.Cycle
	var traversal int
	eng.Schedule(5, func() {
		ns.RequestPath(0, 15, ns.HoldCyclesOneWay(0, 15), func(tr int) {
			grantedAt = eng.Now()
			traversal = tr
		})
	})
	eng.Run()
	// Fig. 10 timeline: setup during cycle 5, traversal begins cycle 6.
	if grantedAt != 6 {
		t.Fatalf("granted at %d, want 6", grantedAt)
	}
	if traversal != 1 {
		t.Fatalf("traversal = %d, want 1 (6 hops, HPC 16)", traversal)
	}
	st := ns.Stats()
	if st.Messages != 1 || st.FirstTryGrants != 1 || st.TotalSetupDelay != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConflictingRequestsSerialize(t *testing.T) {
	eng, ns := newFabric(t, 16, 16, false)
	// Node 0 and node 0's neighbour both need link 1->2 on row 0:
	// paths 0->3 and 1->3 share links.
	var grants []engine.Cycle
	eng.Schedule(1, func() {
		ns.RequestPath(0, 3, ns.HoldCyclesOneWay(0, 3), func(int) {
			grants = append(grants, eng.Now())
		})
		ns.RequestPath(1, 3, ns.HoldCyclesOneWay(1, 3), func(int) {
			grants = append(grants, eng.Now())
		})
	})
	eng.Run()
	if len(grants) != 2 {
		t.Fatalf("grants = %v", grants)
	}
	if grants[0] == grants[1] {
		t.Fatal("conflicting paths granted in the same cycle")
	}
	st := ns.Stats()
	if st.FirstTryGrants != 1 {
		t.Fatalf("first-try grants = %d, want 1", st.FirstTryGrants)
	}
	if st.Messages != 2 {
		t.Fatalf("messages = %d", st.Messages)
	}
}

func TestDisjointPathsShareCycle(t *testing.T) {
	eng, ns := newFabric(t, 16, 16, false)
	// Row 0 and row 3 paths are disjoint: both grant in the same cycle.
	var grants []engine.Cycle
	eng.Schedule(1, func() {
		ns.RequestPath(0, 3, ns.HoldCyclesOneWay(0, 3), func(int) {
			grants = append(grants, eng.Now())
		})
		ns.RequestPath(12, 15, ns.HoldCyclesOneWay(12, 15), func(int) {
			grants = append(grants, eng.Now())
		})
	})
	eng.Run()
	if len(grants) != 2 || grants[0] != grants[1] {
		t.Fatalf("disjoint paths did not grant together: %v", grants)
	}
	if ns.Stats().FirstTryGrants != 2 {
		t.Fatalf("stats = %+v", ns.Stats())
	}
}

func TestNoPartialPathReservation(t *testing.T) {
	eng, ns := newFabric(t, 16, 16, false)
	// First request holds 0->1->2->3 for 10 cycles. A second request
	// 1->2 (subset) must be denied while held; a third request 4->7 on
	// another row must be unaffected.
	eng.Schedule(1, func() {
		ns.RequestPath(0, 3, 10, func(int) {})
	})
	var secondGrant, thirdGrant engine.Cycle
	eng.Schedule(2, func() {
		ns.RequestPath(1, 3, ns.HoldCyclesOneWay(1, 3), func(int) { secondGrant = eng.Now() })
		ns.RequestPath(4, 7, ns.HoldCyclesOneWay(4, 7), func(int) { thirdGrant = eng.Now() })
	})
	eng.Run()
	if thirdGrant != 3 {
		t.Fatalf("independent path granted at %d, want 3", thirdGrant)
	}
	// Held through cycle 11 (granted end of cycle 1, hold 10 from cycle
	// 2): next winnable arbitration is end of cycle 11, grant cycle 12.
	if secondGrant < 12 {
		t.Fatalf("overlapping path granted at %d while links held", secondGrant)
	}
}

func TestIdealModeNeverBlocks(t *testing.T) {
	eng, ns := newFabric(t, 16, 16, true)
	var grants []engine.Cycle
	eng.Schedule(1, func() {
		for i := 0; i < 8; i++ {
			ns.RequestPath(0, 3, 100, func(int) { grants = append(grants, eng.Now()) })
		}
	})
	eng.Run()
	if len(grants) != 8 {
		t.Fatalf("grants = %d", len(grants))
	}
	for _, g := range grants {
		if g != 2 {
			t.Fatalf("ideal grant at %d, want 2", g)
		}
	}
}

func TestReleaseFreesLinks(t *testing.T) {
	eng, ns := newFabric(t, 16, 16, false)
	eng.Schedule(1, func() {
		// Arbitrated end of cycle 1: links reserved through 1+1000.
		ns.RequestPath(0, 3, 1000, func(int) {
			// Holder releases early at cycle 5, identifying its own
			// reservation window.
			eng.At(5, func() { ns.Release(0, 3, 1001) })
		})
	})
	var grant engine.Cycle
	eng.Schedule(3, func() {
		ns.RequestPath(0, 3, 1, func(int) { grant = eng.Now() })
	})
	eng.Run()
	if grant != 6 {
		t.Fatalf("post-release grant at %d, want 6", grant)
	}
	st := ns.Stats()
	if st.Releases != 1 || st.ReleasedLinks == 0 || st.ForeignLinks != 0 {
		t.Fatalf("release stats = %+v", st)
	}
}

// TestLateReleaseDoesNotClobber is the regression test for the
// link-release clobbering bug: a round-trip holder whose release fires
// after its reservation window expired must not rewind reservations a
// *different* granted message now holds on the shared links.
//
// Timeline (path 0->3, same links throughout):
//
//	cycle 1:  A requests, hold 20 -> granted end of cycle 1, links
//	          reserved through cycle 21.
//	cycle 22: B requests, hold 20 -> A's reservation has expired, B is
//	          granted, links reserved through cycle 42.
//	cycle 30: A's release finally arrives (a queued response made the
//	          round trip outlast the conservative hold). A identifies its
//	          reservation window (21); the links now carry B's (42), so
//	          nothing may be freed.
//	cycle 31: C requests, hold 1. With the fix C waits for B: first
//	          winnable arbitration is end of cycle 42, grant cycle 43.
//	          The old unconditional rewind freed B's links at cycle 30
//	          and C was granted at cycle 32, overlapping B's circuit.
func TestLateReleaseDoesNotClobber(t *testing.T) {
	eng, ns := newFabric(t, 16, 16, false)
	eng.Schedule(1, func() {
		ns.RequestPath(0, 3, 20, func(int) {}) // A: reserved through 21
	})
	eng.Schedule(22, func() {
		ns.RequestPath(0, 3, 20, func(int) {}) // B: reserved through 42
	})
	eng.Schedule(30, func() {
		ns.Release(0, 3, 21) // A's late release
	})
	var cGrant engine.Cycle
	eng.Schedule(31, func() {
		ns.RequestPath(0, 3, 1, func(int) { cGrant = eng.Now() })
	})
	eng.Run()
	if cGrant != 43 {
		t.Fatalf("C granted at %d, want 43 (B's circuit must stay reserved through 42)", cGrant)
	}
	st := ns.Stats()
	if st.Releases != 1 || st.ReleasedLinks != 0 || st.ForeignLinks == 0 {
		t.Fatalf("release stats = %+v", st)
	}
}

func TestPriorityRotationPreventsStarvation(t *testing.T) {
	// Node 0 (statically favoured at rotation 0) floods the fabric with
	// back-to-back requests over the same path; node 1's overlapping
	// request must still eventually win thanks to round-robin rotation.
	eng, ns := newFabric(t, 16, 16, false)
	stop := engine.Cycle(3 * PriorityRotationPeriod)
	var flood func()
	flood = func() {
		if eng.Now() >= stop {
			return
		}
		ns.RequestPath(0, 3, 2, func(int) {
			flood()
		})
	}
	var victimGranted bool
	eng.Schedule(1, flood)
	eng.Schedule(10, func() {
		ns.RequestPath(1, 3, 1, func(int) { victimGranted = true })
	})
	eng.Run()
	if !victimGranted {
		t.Fatal("low-priority requester starved despite rotation")
	}
}

func TestLocalRequestPanics(t *testing.T) {
	eng, ns := newFabric(t, 16, 16, false)
	defer func() {
		if recover() == nil {
			t.Fatal("RequestPath(src==dst) did not panic")
		}
	}()
	_ = eng
	ns.RequestPath(3, 3, 1, func(int) {})
}

func TestStatsAverages(t *testing.T) {
	var st NocstarStats
	if st.AvgSetupCycles() != 0 || st.NoContentionFraction() != 0 || st.AvgNetworkLatency() != 0 {
		t.Fatal("empty stats should be zero")
	}
	st = NocstarStats{Messages: 4, FirstTryGrants: 3, TotalSetupDelay: 6, TotalTraversal: 4}
	if st.AvgSetupCycles() != 1.5 {
		t.Fatalf("AvgSetupCycles = %v", st.AvgSetupCycles())
	}
	if st.NoContentionFraction() != 0.75 {
		t.Fatalf("NoContentionFraction = %v", st.NoContentionFraction())
	}
	if st.AvgNetworkLatency() != 2.5 {
		t.Fatalf("AvgNetworkLatency = %v", st.AvgNetworkLatency())
	}
}

func TestMeshLatency(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 4}
	m := NewMesh(DefaultMeshConfig(g))
	if got := m.Latency(0, 15); got != 12 {
		t.Fatalf("mesh 6-hop latency = %d, want 12 (2/hop)", got)
	}
	if m.Latency(5, 5) != 0 {
		t.Fatal("local mesh latency != 0")
	}
	if m.LatencyForHops(3) != 6 {
		t.Fatalf("LatencyForHops(3) = %d", m.LatencyForHops(3))
	}
	msgs, avg := m.Stats()
	if msgs != 1 || avg != 12 {
		t.Fatalf("mesh stats = %d %v", msgs, avg)
	}
}

func TestMeshSerialization(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 4}
	m := NewMesh(MeshConfig{Geometry: g, RouterCycles: 1, LinkCycles: 1, Serialization: 4})
	if got := m.Latency(0, 1); got != 6 {
		t.Fatalf("narrow mesh latency = %d, want 2+4", got)
	}
}

func TestSMARTLatency(t *testing.T) {
	g := Geometry{Rows: 8, Cols: 8}
	s := NewSMART(DefaultSMARTConfig(g))
	if got := s.Latency(0, 63); got != 1+2 {
		t.Fatalf("SMART 14-hop latency = %d, want 3", got)
	}
	if s.LatencyForHops(0) != 0 {
		t.Fatal("SMART local latency != 0")
	}
	if s.LatencyForHops(8) != 2 {
		t.Fatalf("SMART 8-hop latency = %d, want 2", s.LatencyForHops(8))
	}
}

func TestDesignSpaceTable1(t *testing.T) {
	points := DesignSpace(64)
	verdicts := Classify(points)
	byName := map[string]DesignVerdicts{}
	for _, v := range verdicts {
		byName[v.Name] = v
	}
	// The paper's Table I rows.
	checks := []struct {
		name                            string
		latency, bandwidth, area, power bool // true = favourable
	}{
		{"Bus", true, false, true, false},
		{"Mesh", false, true, false, false},
		{"FBFly-wide", true, true, false, false},
		{"FBFly-narrow", false, true, false, false},
		{"SMART", true, true, false, false},
		{"NOCSTAR", true, true, true, true},
	}
	fav := func(v Verdict) bool { return v == Good || v == VeryGood }
	for _, c := range checks {
		v, ok := byName[c.name]
		if !ok {
			t.Fatalf("design %q missing", c.name)
		}
		if fav(v.Latency) != c.latency || fav(v.Bandwidth) != c.bandwidth ||
			fav(v.Area) != c.area || fav(v.Power) != c.power {
			t.Fatalf("%s verdicts = lat %v bw %v area %v pow %v, want %v %v %v %v",
				c.name, v.Latency, v.Bandwidth, v.Area, v.Power,
				c.latency, c.bandwidth, c.area, c.power)
		}
	}
	// FBFly-wide must be very good on bandwidth and very poor on area,
	// matching the paper's double marks.
	if byName["FBFly-wide"].Bandwidth != VeryGood || byName["FBFly-wide"].Area != VeryPoor {
		t.Fatalf("FBFly-wide double verdicts wrong: %+v", byName["FBFly-wide"])
	}
}

func TestVerdictString(t *testing.T) {
	if Good.String() != "+" || VeryPoor.String() != "--" || Poor.String() != "-" || VeryGood.String() != "++" {
		t.Fatal("verdict strings wrong")
	}
}
