package noc

// This file defines the pluggable fabric-topology layer. The paper's
// baselines route over a 2-D mesh; the ROADMAP's design-space item adds
// alternatives from the related work — a 2-D torus, a single-hop
// crossbar, and a TeraNoC-style hybrid that keeps small mesh clusters
// and bridges them with a chip-wide crossbar. A Topology supplies the
// hop model the latency formulas and the slice-placement optimizer
// consume, plus the minimum cross-tile hop count that bounds the
// partitioned engine's conservative lookahead window.

import (
	"fmt"
	"sort"
)

// TopologyKind selects a fabric topology.
type TopologyKind int

const (
	// TopoMesh is the paper's 2-D mesh with XY dimension-order routing
	// (the default; hop count is the Manhattan distance).
	TopoMesh TopologyKind = iota
	// TopoTorus wraps both mesh dimensions, halving worst-case and mean
	// hop distance at the cost of long wrap links.
	TopoTorus
	// TopoXBar is a single-stage crossbar: every distinct pair is one
	// hop. It models the flat high-radix extreme of the design space.
	TopoXBar
	// TopoHybrid is the TeraNoC-style two-level fabric: tiles route over
	// a local mesh within a fixed-size cluster, and clusters are bridged
	// by a single-hop crossbar between per-cluster hub tiles.
	TopoHybrid

	numTopologyKinds
)

// topologyTokens are the stable wire names of the topologies, used by
// the canonical config encoding and the -topology flag.
var topologyTokens = map[TopologyKind]string{
	TopoMesh:   "mesh",
	TopoTorus:  "torus",
	TopoXBar:   "xbar",
	TopoHybrid: "hybrid",
}

// Valid reports whether k names a known topology.
func (k TopologyKind) Valid() bool { return k >= TopoMesh && k < numTopologyKinds }

// String returns the wire name of the topology.
func (k TopologyKind) String() string {
	if tok, ok := topologyTokens[k]; ok {
		return tok
	}
	return fmt.Sprintf("TopologyKind(%d)", int(k))
}

// ParseTopologyKind resolves a wire name back to a topology kind.
func ParseTopologyKind(tok string) (TopologyKind, bool) {
	for k, t := range topologyTokens {
		if t == tok {
			return k, true
		}
	}
	return 0, false
}

// TopologyTokens returns the wire names of every topology, sorted.
func TopologyTokens() []string {
	out := make([]string, 0, len(topologyTokens))
	for _, tok := range topologyTokens {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// TopologyKinds returns every topology kind in declaration order.
func TopologyKinds() []TopologyKind {
	return []TopologyKind{TopoMesh, TopoTorus, TopoXBar, TopoHybrid}
}

// Topology is a fabric's route-length model over a tile grid. The
// contract the rest of the system depends on:
//
//   - Hops is symmetric, zero exactly when a == b, and bounded below by
//     MinHops for every distinct pair.
//   - MinHops is >= 1: it is the hop count the latency formula turns
//     into the smallest nonzero cross-tile latency, which the sharded
//     engine adopts as its conservative lookahead window. Every
//     cross-region message therefore arrives at least one window ahead
//     of the receiver's clock, for any implementation of this interface.
//   - All methods are pure: implementations carry no per-run state and
//     may be shared.
type Topology interface {
	// Kind identifies the topology.
	Kind() TopologyKind
	// Geometry returns the tile grid the topology spans.
	Geometry() Geometry
	// Hops returns the route length between two tiles.
	Hops(a, b NodeID) int
	// MinHops returns the smallest Hops value over distinct pairs
	// (1 by construction for every built-in topology).
	MinHops() int
	// MeanHops returns the average Hops from a uniformly random source
	// to a uniformly random (possibly equal) destination.
	MeanHops() float64
}

// NewTopology constructs the topology of the given kind over g. It
// panics on an invalid kind (Config validation rejects those upstream).
func NewTopology(kind TopologyKind, g Geometry) Topology {
	switch kind {
	case TopoMesh:
		return meshTopo{g}
	case TopoTorus:
		return torusTopo{g}
	case TopoXBar:
		return xbarTopo{g}
	case TopoHybrid:
		return hybridTopo{g}
	}
	panic(fmt.Sprintf("noc: unknown topology kind %d", int(kind)))
}

// meshTopo is the XY mesh: hop count is the Manhattan distance,
// identical to Geometry.Hops.
type meshTopo struct{ g Geometry }

func (t meshTopo) Kind() TopologyKind { return TopoMesh }
func (t meshTopo) Geometry() Geometry { return t.g }
func (t meshTopo) Hops(a, b NodeID) int {
	return t.g.Hops(a, b)
}

// MinHops is 1: adjacent tiles are one hop apart (trivially the minimum
// over distinct pairs, and on a 1-tile grid there are no distinct pairs
// to bound).
func (t meshTopo) MinHops() int { return 1 }

func (t meshTopo) MeanHops() float64 { return t.g.MeanHops() }

// torusTopo wraps both dimensions: the per-dimension distance is the
// shorter way around the ring.
type torusTopo struct{ g Geometry }

func (t torusTopo) Kind() TopologyKind { return TopoTorus }
func (t torusTopo) Geometry() Geometry { return t.g }

func ringDist(a, b, k int) int {
	d := abs(a - b)
	if w := k - d; w < d {
		return w
	}
	return d
}

func (t torusTopo) Hops(a, b NodeID) int {
	ra, ca := t.g.Coord(a)
	rb, cb := t.g.Coord(b)
	return ringDist(ra, rb, t.g.Rows) + ringDist(ca, cb, t.g.Cols)
}

// MinHops is 1: wrap links do not create shortcuts below one hop.
func (t torusTopo) MinHops() int { return 1 }

func (t torusTopo) MeanHops() float64 {
	// Mean ring distance over a ring of k points (including a == b).
	ringMean := func(k int) float64 {
		total := 0
		for d := 0; d < k; d++ {
			total += ringDist(0, d, k)
		}
		return float64(total) / float64(k)
	}
	return ringMean(t.g.Rows) + ringMean(t.g.Cols)
}

// xbarTopo is the single-stage crossbar: every remote pair is exactly
// one hop.
type xbarTopo struct{ g Geometry }

func (t xbarTopo) Kind() TopologyKind { return TopoXBar }
func (t xbarTopo) Geometry() Geometry { return t.g }
func (t xbarTopo) Hops(a, b NodeID) int {
	// Coord bounds-checks the IDs so all topologies reject out-of-grid
	// nodes identically.
	t.g.Coord(a)
	t.g.Coord(b)
	if a == b {
		return 0
	}
	return 1
}
func (t xbarTopo) MinHops() int { return 1 }
func (t xbarTopo) MeanHops() float64 {
	n := float64(t.g.Nodes())
	return (n - 1) / n
}

// hybridClusterDim is the side length of one hybrid mesh cluster. 4x4
// clusters match the TeraNoC organization the related work scales to
// 1000+ cores: local traffic stays on a cheap small mesh, global
// traffic pays two local legs plus one crossbar hop.
const hybridClusterDim = 4

// hybridTopo routes intra-cluster pairs over the local mesh and
// inter-cluster pairs through the per-cluster hub tiles (the top-left
// tile of each cluster) bridged by a single-hop crossbar:
//
//	Hops = mesh(a, hub(a)) + 1 + mesh(hub(b), b)
type hybridTopo struct{ g Geometry }

func (t hybridTopo) Kind() TopologyKind { return TopoHybrid }
func (t hybridTopo) Geometry() Geometry { return t.g }

// hub returns the coordinates of the cluster hub tile of (r, c).
func hybridHub(r, c int) (hr, hc int) {
	return r - r%hybridClusterDim, c - c%hybridClusterDim
}

func (t hybridTopo) Hops(a, b NodeID) int {
	ra, ca := t.g.Coord(a)
	rb, cb := t.g.Coord(b)
	har, hac := hybridHub(ra, ca)
	hbr, hbc := hybridHub(rb, cb)
	if har == hbr && hac == hbc {
		return abs(ra-rb) + abs(ca-cb)
	}
	return abs(ra-har) + abs(ca-hac) + 1 + abs(rb-hbr) + abs(cb-hbc)
}

// MinHops is 1: intra-cluster neighbours are one mesh hop, and the
// closest inter-cluster pair (hub to hub) is exactly the crossbar hop.
func (t hybridTopo) MinHops() int { return 1 }

func (t hybridTopo) MeanHops() float64 {
	n := t.g.Nodes()
	total := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			total += t.Hops(NodeID(a), NodeID(b))
		}
	}
	return float64(total) / float64(n*n)
}
