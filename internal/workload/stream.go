package workload

import "nocstar/internal/vm"

// Stream is a source of one thread's virtual-address references. The
// synthetic Generator implements it, as does a trace replayer — the
// simulator consumes either interchangeably, mirroring how the paper's
// Simics-based infrastructure can run live or from captured traces.
type Stream interface {
	Next() vm.VirtAddr
}

var _ Stream = (*Generator)(nil)
