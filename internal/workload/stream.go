package workload

import "nocstar/internal/vm"

// Stream is a source of one thread's virtual-address references. The
// synthetic Generator implements it, as does a trace replayer — the
// simulator consumes either interchangeably, mirroring how the paper's
// Simics-based infrastructure can run live or from captured traces.
type Stream interface {
	Next() vm.VirtAddr
}

// BatchStream is a Stream that can also fill a whole slice of references
// in one call, letting the consumer's hot loop reduce to a buffer index
// bump. NextBatch must produce exactly the addresses len(buf) calls to
// Next would have. The simulator type-asserts for this at setup and falls
// back to per-reference Next for plain Streams.
type BatchStream interface {
	Stream
	NextBatch(buf []vm.VirtAddr)
}

var (
	_ Stream      = (*Generator)(nil)
	_ BatchStream = (*Generator)(nil)
)
