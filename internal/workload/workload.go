// Package workload provides synthetic address-stream models for the
// paper's benchmark suite (Parsec, CloudSuite, graph500, GUPS and the
// commercial server workloads), plus the stress microbenchmarks of
// Section V.
//
// The real workloads ran on 2 TB machines under Linux 4.14; the paper
// characterizes them solely through their TLB-relevant statistics:
// private L2 TLB miss rates of 5-18 %, shared-TLB miss elimination of
// 40-95 % that grows with core count (Fig. 2), heavy cross-thread sharing
// (shared libraries, OS structures, shared heaps), 50-80 % superpage
// coverage under transparent hugepages, and low concurrency at the shared
// TLB (Fig. 5). Each Spec below is a generative model matched to those
// statistics: a footprint split into a shared and per-thread private
// region, a hot set with Zipf-like skew, a temporal-reuse ring that
// produces realistic L1 TLB hit rates, and a uniform cold tail whose size
// controls the compulsory/capacity miss mix.
package workload

import (
	"math"

	"nocstar/internal/engine"
	"nocstar/internal/vm"
)

// Spec is the generative model of one benchmark.
type Spec struct {
	Name string

	// FootprintPages is the application's total touched pages (4 KiB
	// units) across shared and private regions.
	FootprintPages uint64
	// SharedFrac is the fraction of the footprint (and of non-repeat
	// accesses) in the region shared by all threads of the application.
	SharedFrac float64
	// HotFrac is the fraction of each region that is hot.
	HotFrac float64
	// HotProb is the probability a fresh access goes to the hot set.
	HotProb float64
	// ZipfTheta in [0,1) skews accesses within the hot set (0 = uniform).
	ZipfTheta float64
	// RepeatProb is the probability an access reuses a recently touched
	// page (temporal locality; produces L1 TLB hits).
	RepeatProb float64

	// MemRefPerInstr is the memory references issued per instruction.
	MemRefPerInstr float64
	// BaseCPI is the workload's cycles per instruction excluding address
	// translation stalls.
	BaseCPI float64
	// SuperpageFrac is the fraction of the footprint Linux backs with
	// transparent 2 MB pages (the paper measured 50-80 %).
	SuperpageFrac float64
}

// Suite returns the paper's eleven evaluation workloads in figure order.
func Suite() []Spec {
	// Hot sets are sized slightly above one private L2 TLB (1024 entries)
	// and HotProb keeps cold-tail draws at 4-15 % of fresh accesses, which
	// lands private L2 TLB miss rates in the paper's reported 5-18 % band
	// while the cold tail provides the capacity misses a shared TLB
	// increasingly eliminates at higher core counts (Fig. 2).
	return []Spec{
		{Name: "graph500", FootprintPages: 60000, SharedFrac: 0.90, HotFrac: 0.017,
			HotProb: 0.93, ZipfTheta: 0.60, RepeatProb: 0.90,
			MemRefPerInstr: 0.35, BaseCPI: 1.2, SuperpageFrac: 0.70},
		{Name: "canneal", FootprintPages: 50000, SharedFrac: 0.95, HotFrac: 0.015,
			HotProb: 0.92, ZipfTheta: 0.50, RepeatProb: 0.88,
			MemRefPerInstr: 0.33, BaseCPI: 1.3, SuperpageFrac: 0.60},
		{Name: "xsbench", FootprintPages: 70000, SharedFrac: 0.90, HotFrac: 0.019,
			HotProb: 0.91, ZipfTheta: 0.50, RepeatProb: 0.88,
			MemRefPerInstr: 0.35, BaseCPI: 1.1, SuperpageFrac: 0.70},
		{Name: "datacaching", FootprintPages: 30000, SharedFrac: 0.80, HotFrac: 0.033,
			HotProb: 0.94, ZipfTheta: 0.70, RepeatProb: 0.92,
			MemRefPerInstr: 0.30, BaseCPI: 1.0, SuperpageFrac: 0.50},
		{Name: "swtesting", FootprintPages: 25000, SharedFrac: 0.70, HotFrac: 0.040,
			HotProb: 0.95, ZipfTheta: 0.70, RepeatProb: 0.93,
			MemRefPerInstr: 0.30, BaseCPI: 1.0, SuperpageFrac: 0.50},
		{Name: "graphanalytics", FootprintPages: 55000, SharedFrac: 0.90, HotFrac: 0.0185,
			HotProb: 0.92, ZipfTheta: 0.60, RepeatProb: 0.90,
			MemRefPerInstr: 0.33, BaseCPI: 1.2, SuperpageFrac: 0.60},
		{Name: "nutch", FootprintPages: 28000, SharedFrac: 0.75, HotFrac: 0.038,
			HotProb: 0.94, ZipfTheta: 0.80, RepeatProb: 0.92,
			MemRefPerInstr: 0.28, BaseCPI: 1.1, SuperpageFrac: 0.50},
		{Name: "olio", FootprintPages: 20000, SharedFrac: 0.70, HotFrac: 0.047,
			HotProb: 0.96, ZipfTheta: 0.80, RepeatProb: 0.94,
			MemRefPerInstr: 0.28, BaseCPI: 1.0, SuperpageFrac: 0.50},
		{Name: "redis", FootprintPages: 35000, SharedFrac: 0.80, HotFrac: 0.030,
			HotProb: 0.93, ZipfTheta: 0.90, RepeatProb: 0.91,
			MemRefPerInstr: 0.30, BaseCPI: 1.0, SuperpageFrac: 0.60},
		{Name: "mongodb", FootprintPages: 40000, SharedFrac: 0.80, HotFrac: 0.029,
			HotProb: 0.93, ZipfTheta: 0.80, RepeatProb: 0.91,
			MemRefPerInstr: 0.32, BaseCPI: 1.1, SuperpageFrac: 0.60},
		{Name: "gups", FootprintPages: 90000, SharedFrac: 0.95, HotFrac: 0.0064,
			HotProb: 0.85, ZipfTheta: 0.0, RepeatProb: 0.85,
			MemRefPerInstr: 0.40, BaseCPI: 1.0, SuperpageFrac: 0.80},
	}
}

// ByName returns the suite spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the suite workload names in figure order.
func Names() []string {
	suite := Suite()
	out := make([]string, len(suite))
	for i, s := range suite {
		out[i] = s.Name
	}
	return out
}

// Virtual layout constants: each application places its shared region at
// a fixed base and gives each thread a private arena.
const (
	sharedBase  vm.VirtAddr = 0x100_0000_0000
	privateBase vm.VirtAddr = 0x4000_0000_0000
	privateStep             = uint64(1) << 38 // 256 GiB per-thread arena spacing
)

// SpreadFactor scatters a workload's touched pages across a virtual span
// SpreadFactor times larger than its touched-page count (~8 touched pages
// per 2 MB extent). The paper's workloads have 2 TB footprints with poor
// spatial density, so their working sets overflow the TLBs at *superpage*
// granularity too — this is what makes Fig. 13's THP runs still exhibit
// frequent L1 TLB misses.
const SpreadFactor = 64

// scatterStride returns a multiplier coprime with span near the golden
// ratio of it, so consecutive page ranks land in far-apart 2 MB extents —
// two hot pages almost never share a superpage, as in a fragmented
// big-data heap.
func scatterStride(span uint64) uint64 {
	if span <= 1 {
		return 1
	}
	stride := uint64(float64(span)*0.6180339887) | 1
	if stride == 0 || stride >= span {
		stride = span/2 | 1
	}
	for gcd(stride, span) != 1 {
		stride -= 2
		if stride < 1 {
			return 1
		}
	}
	return stride
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LineCluster is how many consecutively ranked pages stay adjacent when
// scattered: they share a page-table-entry cache line (8 PTEs per line),
// so similar-frequency pages amortize leaf PTE fetches, while distinct
// clusters land in far-apart 2 MB extents.
const LineCluster = 4

// PageSlot maps the idx-th touched page of a region (of `pages` touched
// pages) to its sparse page offset within the region's span: rank
// clusters of LineCluster stay contiguous, and clusters are scattered by
// a coprime stride — a bijection into the SpreadFactor-larger slot space.
// The OS-side models (shootdown generators) use it to aim at pages the
// workload actually touches.
func PageSlot(idx, pages uint64) uint64 {
	span := pages * SpreadFactor
	if span == 0 {
		return 0
	}
	idx %= pages
	groups := span / LineCluster
	group := idx / LineCluster
	off := idx % LineCluster
	return group*scatterStride(groups)%groups*LineCluster + off
}

// Region is a virtual range of the workload, used by the OS model to
// decide superpage backing. Pages counts the touched (resident) 4 KiB
// pages; Span is the sparse virtual extent they are scattered over.
type Region struct {
	Base  vm.VirtAddr
	Pages uint64 // touched 4 KiB pages
	Span  uint64 // virtual 4 KiB page slots (Pages * SpreadFactor)
}

// End returns the first address past the region's span.
func (r Region) End() vm.VirtAddr {
	return r.Base + vm.VirtAddr(r.Span*vm.Page4K.Bytes())
}

// Regions returns the shared region followed by each thread's private
// region for an application with the given thread count.
func (s Spec) Regions(threads int) []Region {
	shared, private := s.split(threads)
	out := []Region{{Base: sharedBase, Pages: shared, Span: shared * SpreadFactor}}
	for t := 0; t < threads; t++ {
		out = append(out, Region{
			Base:  privateBase + vm.VirtAddr(uint64(t)*privateStep),
			Pages: private,
			Span:  private * SpreadFactor,
		})
	}
	return out
}

// split returns the shared region size and the per-thread private size.
func (s Spec) split(threads int) (shared, private uint64) {
	if threads <= 0 {
		threads = 1
	}
	shared = uint64(float64(s.FootprintPages) * s.SharedFrac)
	if shared < 1 {
		shared = 1
	}
	private = (s.FootprintPages - shared) / uint64(threads)
	if private < 1 {
		private = 1
	}
	return shared, private
}

// page4KBytes hoists vm.Page4K.Bytes() out of the per-reference path.
const page4KBytes = 4096

// recentRing remembers the last touched pages for temporal reuse.
const recentRingSize = 12

// Generator produces one thread's virtual address stream.
type Generator struct {
	spec    Spec
	rng     *engine.Rand
	thread  int
	shared  uint64 // shared region pages
	private uint64 // this thread's private region pages
	privBas vm.VirtAddr

	sharedStride uint64
	privStride   uint64

	ring  [recentRingSize]vm.VirtAddr
	ringN int
	ringW int

	// Sequential-run state: cold draws walk a few consecutive ranks (a
	// scan through an array or log), the spatial locality that the
	// paper's ±k translation prefetching exploits.
	runLeft   int
	runRank   uint64
	runBase   vm.VirtAddr
	runPages  uint64
	runStride uint64

	zipfExp float64

	// Precomputed engine.Threshold values of the spec's probabilities:
	// the hot path decides with one integer compare per draw.
	repeatT, sharedT, hotT, halfT uint64
}

// coldRunLen is the length of a cold sequential scan burst.
const coldRunLen = 4

// NewGenerator builds the address generator for one thread of an
// application with the given total thread count. rng must be a private
// stream for this thread.
func NewGenerator(spec Spec, threads, thread int, rng *engine.Rand) *Generator {
	shared, private := spec.split(threads)
	return &Generator{
		spec:         spec,
		rng:          rng,
		thread:       thread,
		shared:       shared,
		private:      private,
		privBas:      privateBase + vm.VirtAddr(uint64(thread)*privateStep),
		sharedStride: scatterStride(shared * SpreadFactor / LineCluster),
		privStride:   scatterStride(private * SpreadFactor / LineCluster),
		zipfExp:      1 / (1 - clampTheta(spec.ZipfTheta)),
		repeatT:      engine.Threshold(spec.RepeatProb),
		sharedT:      engine.Threshold(spec.SharedFrac),
		hotT:         engine.Threshold(spec.HotProb),
		halfT:        engine.Threshold(0.5),
	}
}

func clampTheta(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 0.99 {
		return 0.99
	}
	return t
}

// zipfRank draws a rank in [0, n) with Zipf-like skew: the inverse-CDF
// approximation P(X <= x) ~ (x/n)^(1-theta).
func (g *Generator) zipfRank(rng *engine.Rand, n uint64) uint64 {
	if n <= 1 {
		return 0
	}
	r := uint64(float64(n) * math.Pow(rng.Float64(), g.zipfExp))
	if r >= n {
		r = n - 1
	}
	return r
}

// regionPick draws a page within a region of n pages using the hot/cold
// two-level model, scattering the chosen rank across the sparse span.
func (g *Generator) regionPick(rng *engine.Rand, base vm.VirtAddr, n, stride uint64) vm.VirtAddr {
	hot := uint64(float64(n) * g.spec.HotFrac)
	if hot < 1 {
		hot = 1
	}
	var page uint64
	if rng.Below(g.hotT) || hot >= n {
		page = g.zipfRank(rng, hot)
	} else {
		page = hot + rng.Uint64n(n-hot)
		// Begin a sequential scan over the following ranks.
		g.runLeft = coldRunLen - 1
		g.runRank = page
		g.runBase = base
		g.runPages = n
		g.runStride = stride
	}
	return base + vm.VirtAddr(slotFor(page, n, stride)*vm.Page4K.Bytes())
}

// slotFor scatters rank `page` of an n-page region using the cached
// group stride.
func slotFor(page, n, stride uint64) uint64 {
	groups := n * SpreadFactor / LineCluster
	return page/LineCluster*stride%groups*LineCluster + page%LineCluster
}

// next draws one address using rng, which is either the generator's own
// stream (scalar Next) or a stack-local copy of it (NextBatch). Single
// body for both paths so they cannot diverge: every rng draw happens in
// the same order with the same bounds.
func (g *Generator) next(rng *engine.Rand) vm.VirtAddr {
	if g.ringN > 0 && rng.Below(g.repeatT) {
		// Reuse a recent page, geometrically favouring the most recent.
		idx := 0
		for idx < g.ringN-1 && rng.Below(g.halfT) {
			idx++
		}
		pos := (g.ringW - 1 - idx + recentRingSize) % recentRingSize
		va := g.ring[pos]
		return va + vm.VirtAddr(rng.Uint64n(page4KBytes)&^7)
	}

	var va vm.VirtAddr
	if g.runLeft > 0 {
		g.runLeft--
		g.runRank = (g.runRank + 1) % g.runPages
		va = g.runBase + vm.VirtAddr(slotFor(g.runRank, g.runPages, g.runStride)*vm.Page4K.Bytes())
	} else if rng.Below(g.sharedT) {
		va = g.regionPick(rng, sharedBase, g.shared, g.sharedStride)
	} else {
		va = g.regionPick(rng, g.privBas, g.private, g.privStride)
	}
	g.ring[g.ringW] = va
	g.ringW = (g.ringW + 1) % recentRingSize
	if g.ringN < recentRingSize {
		g.ringN++
	}
	return va + vm.VirtAddr(rng.Uint64n(page4KBytes)&^7)
}

// Next returns the next virtual address of this thread's stream.
func (g *Generator) Next() vm.VirtAddr { return g.next(g.rng) }

// NextBatch fills buf with the next len(buf) addresses of the stream. It
// produces exactly the sequence len(buf) calls to Next would: the only
// difference is that the RNG state lives in a stack local for the whole
// batch instead of being loaded and stored per reference.
func (g *Generator) NextBatch(buf []vm.VirtAddr) {
	rng := *g.rng
	for i := range buf {
		buf[i] = g.next(&rng)
	}
	*g.rng = rng
}

// State is the checkpointable portion of a Generator: the RNG stream plus
// the reuse-ring and sequential-run registers. Everything else in the
// Generator is derived from (Spec, threads, thread) at construction and
// is re-derived on restore. The layout is versioned by
// system.CheckpointVersion.
type State struct {
	Rng       uint64
	Ring      [recentRingSize]vm.VirtAddr
	RingN     int
	RingW     int
	RunLeft   int
	RunRank   uint64
	RunBase   vm.VirtAddr
	RunPages  uint64
	RunStride uint64
}

// State snapshots the generator's mutable state.
func (g *Generator) State() State {
	return State{
		Rng:       g.rng.State(),
		Ring:      g.ring,
		RingN:     g.ringN,
		RingW:     g.ringW,
		RunLeft:   g.runLeft,
		RunRank:   g.runRank,
		RunBase:   g.runBase,
		RunPages:  g.runPages,
		RunStride: g.runStride,
	}
}

// SetState restores a snapshot taken by State.
func (g *Generator) SetState(st State) {
	g.rng.SetState(st.Rng)
	g.ring = st.Ring
	g.ringN = st.RingN
	g.ringW = st.RingW
	g.runLeft = st.RunLeft
	g.runRank = st.RunRank
	g.runBase = st.RunBase
	g.runPages = st.RunPages
	g.runStride = st.RunStride
}

// Spec returns the generator's workload spec.
func (g *Generator) Spec() Spec { return g.spec }

// Uniform returns a microbenchmark spec touching pages uniformly at
// random over the given footprint — the TLB-storm microbenchmark's own
// access pattern and the slice-hammer driver.
func Uniform(name string, pages uint64) Spec {
	return Spec{
		Name:           name,
		FootprintPages: pages,
		SharedFrac:     1.0,
		HotFrac:        1.0,
		HotProb:        1.0,
		ZipfTheta:      0,
		RepeatProb:     0.5,
		MemRefPerInstr: 0.5,
		BaseCPI:        1.0,
		SuperpageFrac:  0,
	}
}
