package workload

import (
	"testing"

	"nocstar/internal/engine"
	"nocstar/internal/vm"
)

// TestBatchMatchesScalar pins the batched generator's core contract: for
// every workload family and any mix of batch sizes, NextBatch produces
// exactly the address stream Next would, and leaves the generator in the
// same state (so batch and scalar consumers can interleave freely and a
// warm-state checkpoint taken after either is identical).
func TestBatchMatchesScalar(t *testing.T) {
	specs := Suite()
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 992288} {
				for _, threads := range []int{1, 3} {
					scalar := NewGenerator(spec, threads, 0, engine.NewRand(seed))
					batch := NewGenerator(spec, threads, 0, engine.NewRand(seed))

					const total = 10_000
					want := make([]vm.VirtAddr, total)
					for i := range want {
						want[i] = scalar.Next()
					}

					// Consume the same stream through ragged batch sizes,
					// including size 1 and a scalar call mid-stream.
					sizes := []int{1, 13, 1024, 7, 256, 1, 64}
					got := make([]vm.VirtAddr, 0, total)
					si := 0
					for len(got) < total {
						n := sizes[si%len(sizes)]
						si++
						if si%5 == 0 {
							got = append(got, batch.Next())
							continue
						}
						if rem := total - len(got); n > rem {
							n = rem
						}
						buf := make([]vm.VirtAddr, n)
						batch.NextBatch(buf)
						got = append(got, buf...)
					}

					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed %d threads %d: ref %d: batch %#x, scalar %#x",
								seed, threads, i, got[i], want[i])
						}
					}
					if scalar.State() != batch.State() {
						t.Fatalf("seed %d threads %d: generator states diverge after identical streams",
							seed, threads)
					}
				}
			}
		})
	}
}

// TestBatchDistinctSeedsDiverge guards against a batch implementation
// that reuses one RNG draw across a buffer: distinct seeds must produce
// distinct streams.
func TestBatchDistinctSeedsDiverge(t *testing.T) {
	spec := Suite()[0]
	a := NewGenerator(spec, 1, 0, engine.NewRand(1))
	b := NewGenerator(spec, 1, 0, engine.NewRand(2))
	bufA := make([]vm.VirtAddr, 512)
	bufB := make([]vm.VirtAddr, 512)
	a.NextBatch(bufA)
	b.NextBatch(bufB)
	same := 0
	for i := range bufA {
		if bufA[i] == bufB[i] {
			same++
		}
	}
	if same == len(bufA) {
		t.Fatal("distinct seeds produced identical batches")
	}
}
