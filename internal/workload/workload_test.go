package workload

import (
	"testing"

	"nocstar/internal/engine"
	"nocstar/internal/vm"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 11 {
		t.Fatalf("suite has %d workloads, want 11", len(suite))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if seen[s.Name] {
			t.Fatalf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
		if s.FootprintPages == 0 || s.MemRefPerInstr <= 0 || s.BaseCPI <= 0 {
			t.Fatalf("workload %q has degenerate parameters: %+v", s.Name, s)
		}
		if s.SharedFrac < 0 || s.SharedFrac > 1 || s.SuperpageFrac < 0 || s.SuperpageFrac > 1 {
			t.Fatalf("workload %q has out-of-range fractions", s.Name)
		}
	}
	for _, name := range []string{"graph500", "canneal", "xsbench", "gups", "redis"} {
		if !seen[name] {
			t.Fatalf("paper workload %q missing", name)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("gups")
	if !ok || s.Name != "gups" {
		t.Fatal("ByName(gups) failed")
	}
	if _, ok := ByName("doom"); ok {
		t.Fatal("ByName invented a workload")
	}
	if len(Names()) != 11 {
		t.Fatal("Names() length wrong")
	}
}

func TestRegionsPartition(t *testing.T) {
	s, _ := ByName("canneal")
	regions := s.Regions(8)
	if len(regions) != 9 {
		t.Fatalf("regions = %d, want shared + 8 private", len(regions))
	}
	// Regions must not overlap.
	for i, a := range regions {
		for j, b := range regions {
			if i >= j {
				continue
			}
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestGeneratorAddressesInRegions(t *testing.T) {
	s, _ := ByName("graph500")
	g := NewGenerator(s, 8, 3, engine.NewRand(1))
	regions := s.Regions(8)
	inAny := func(va vm.VirtAddr) bool {
		for _, r := range regions {
			if va >= r.Base && va < r.End() {
				return true
			}
		}
		return false
	}
	for i := 0; i < 20000; i++ {
		va := g.Next()
		if !inAny(va) {
			t.Fatalf("address %#x outside all regions", uint64(va))
		}
	}
}

func TestGeneratorThreadPrivacy(t *testing.T) {
	// Two threads' private draws must never collide; shared draws must
	// overlap heavily.
	s, _ := ByName("olio")
	g0 := NewGenerator(s, 8, 0, engine.NewRand(1))
	g1 := NewGenerator(s, 8, 1, engine.NewRand(2))
	pages0 := map[uint64]bool{}
	sharedLimit := uint64(sharedBase)/4096 + uint64(float64(s.FootprintPages)*s.SharedFrac)*SpreadFactor
	for i := 0; i < 20000; i++ {
		pages0[uint64(g0.Next())/4096] = true
	}
	sharedOverlap, privateCollision := 0, 0
	for i := 0; i < 20000; i++ {
		p := uint64(g1.Next()) / 4096
		if !pages0[p] {
			continue
		}
		if p < sharedLimit {
			sharedOverlap++
		} else {
			privateCollision++
		}
	}
	if privateCollision != 0 {
		t.Fatalf("%d private-page collisions between threads", privateCollision)
	}
	if sharedOverlap == 0 {
		t.Fatal("threads never overlapped on the shared region")
	}
}

func TestGeneratorTemporalLocality(t *testing.T) {
	// With RepeatProb ~0.9 the distinct-page rate must be far below 1.
	s, _ := ByName("graph500")
	g := NewGenerator(s, 8, 0, engine.NewRand(7))
	distinct := map[uint64]bool{}
	const n = 50000
	for i := 0; i < n; i++ {
		distinct[uint64(g.Next())/4096] = true
	}
	rate := float64(len(distinct)) / n
	if rate > 0.2 {
		t.Fatalf("distinct-page rate %.3f too high for RepeatProb %.2f", rate, s.RepeatProb)
	}
	if rate < 0.001 {
		t.Fatalf("distinct-page rate %.4f degenerate", rate)
	}
}

func TestGeneratorSkew(t *testing.T) {
	// redis (theta 0.9) must concentrate accesses far more than gups
	// (theta 0, mostly uniform cold).
	count := func(name string) float64 {
		s, _ := ByName(name)
		g := NewGenerator(s, 8, 0, engine.NewRand(3))
		freq := map[uint64]int{}
		const n = 30000
		for i := 0; i < n; i++ {
			freq[uint64(g.Next())/4096]++
		}
		max := 0
		for _, c := range freq {
			if c > max {
				max = c
			}
		}
		return float64(max) / n
	}
	if count("redis") <= count("gups") {
		t.Fatal("redis not more skewed than gups")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	s, _ := ByName("mongodb")
	a := NewGenerator(s, 4, 2, engine.NewRand(42))
	b := NewGenerator(s, 4, 2, engine.NewRand(42))
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("generator not deterministic for equal seeds")
		}
	}
}

func TestSplitSmallFootprints(t *testing.T) {
	s := Spec{Name: "tiny", FootprintPages: 4, SharedFrac: 0.5}
	shared, private := s.split(64)
	if shared < 1 || private < 1 {
		t.Fatalf("split degenerate: %d %d", shared, private)
	}
	// Zero threads must not panic.
	shared, private = s.split(0)
	if shared < 1 || private < 1 {
		t.Fatal("split with 0 threads degenerate")
	}
}

func TestUniformSpec(t *testing.T) {
	u := Uniform("storm", 5000)
	if u.FootprintPages != 5000 || u.SharedFrac != 1.0 {
		t.Fatalf("uniform spec = %+v", u)
	}
	g := NewGenerator(u, 4, 0, engine.NewRand(5))
	seen := map[uint64]bool{}
	for i := 0; i < 30000; i++ {
		seen[uint64(g.Next())/4096] = true
	}
	// Uniform over 5000 pages: should touch most of them.
	if len(seen) < 3000 {
		t.Fatalf("uniform generator touched only %d/5000 pages", len(seen))
	}
}

func TestClampTheta(t *testing.T) {
	if clampTheta(-1) != 0 || clampTheta(2) != 0.99 || clampTheta(0.5) != 0.5 {
		t.Fatal("clampTheta wrong")
	}
}

func TestSpecAccessor(t *testing.T) {
	s, _ := ByName("gups")
	g := NewGenerator(s, 1, 0, engine.NewRand(1))
	if g.Spec().Name != "gups" {
		t.Fatal("Spec() accessor wrong")
	}
}
