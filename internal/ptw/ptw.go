// Package ptw implements the page-table walker. Walk latency is the
// paper's key sensitivity knob (Table III): in "variable" mode each
// page-table level is fetched through the core's cache hierarchy, so
// latency depends on where the PTEs reside (the realistic configuration);
// in "fixed-N" mode every walk costs N cycles.
//
// A small page-walk cache (MMU cache, [Bhattacharjee, MICRO 2013], the
// paper's reference [28]) short-circuits the upper levels, which is what
// keeps realistic walks in the paper's observed 20-40 cycle band while
// 70-87 % of walks still reach the LLC or memory for the leaf PTE.
package ptw

import (
	"nocstar/internal/cache"
	"nocstar/internal/engine"
	"nocstar/internal/vm"
)

// Mode selects the walk-latency model.
type Mode int

const (
	// Variable walks fetch each level through the cache hierarchy.
	Variable Mode = iota
	// Fixed walks cost Config.FixedLatency cycles flat.
	Fixed
)

// Config configures a walker.
type Config struct {
	Mode         Mode
	FixedLatency int // used when Mode == Fixed
	// PWCEntries sizes the page-walk cache (0 disables it).
	PWCEntries int
	// Overhead is the fixed per-walk cost in Variable mode beyond the PTE
	// fetches themselves: miss-handler dispatch, walker occupancy, the
	// TLB fill, and the pipeline restart after the translation stall.
	Overhead int
	// Walkers is the number of concurrent page walks the unit supports
	// (Haswell-class MMUs have two); additional walks queue. 0 means 2.
	Walkers int
}

// DefaultOverhead is the Variable-mode per-walk fixed cost.
const DefaultOverhead = 15

// DefaultConfig returns the realistic configuration: variable latency
// with a 32-entry page-walk cache, the default per-walk overhead, and
// two concurrent walkers.
func DefaultConfig() Config {
	return Config{Mode: Variable, PWCEntries: 32, Overhead: DefaultOverhead, Walkers: 2}
}

// Stats aggregates walker behaviour.
type Stats struct {
	Walks       uint64
	TotalCycles uint64
	QueueCycles uint64
	PWCHits     uint64
	// LeafFromLLCOrMem counts walks whose leaf PTE came from the LLC or
	// memory — the paper reports 70-87 % on its baseline.
	LeafFromLLCOrMem uint64
	// MemRefsByLevel counts PTE fetches by the semantic level that
	// served them — L1, L2, LLC, memory — regardless of the walker
	// hierarchy's depth, for the energy model.
	MemRefsByLevel [4]uint64
}

// AvgCycles reports mean walk latency excluding queueing.
func (s Stats) AvgCycles() float64 {
	if s.Walks == 0 {
		return 0
	}
	return float64(s.TotalCycles) / float64(s.Walks)
}

// LeafLLCOrMemFraction reports the fraction of walks whose leaf PTE
// required an LLC or memory access.
func (s Stats) LeafLLCOrMemFraction() float64 {
	if s.Walks == 0 {
		return 0
	}
	return float64(s.LeafFromLLCOrMem) / float64(s.Walks)
}

// pwcKey identifies a cached upper-level walk: one PDPT-entry reach
// (1 GB of VA) per entry.
type pwcKey struct {
	ctx    vm.ContextID
	prefix uint64 // va >> 30
}

// Walker performs page-table walks for one core. It serves one walk at a
// time; concurrent requests queue (the paper's remote-walk policy
// discussion notes walker congestion as the key risk).
type Walker struct {
	cfg   Config
	hier  *cache.Hierarchy
	slots []engine.Cycle // per-concurrent-walk busy-until times

	pwc      map[pwcKey]struct{}
	pwcOrder []pwcKey // FIFO eviction ring
	pwcNext  int

	stats Stats
}

// New returns a walker that fetches PTEs through hier. hier must be
// non-nil in Variable mode.
func New(cfg Config, hier *cache.Hierarchy) *Walker {
	if cfg.Mode == Variable && hier == nil {
		panic("ptw: Variable mode requires a cache hierarchy")
	}
	if cfg.Walkers <= 0 {
		cfg.Walkers = 2
	}
	w := &Walker{cfg: cfg, hier: hier, slots: make([]engine.Cycle, cfg.Walkers)}
	if cfg.PWCEntries > 0 {
		w.pwc = make(map[pwcKey]struct{}, cfg.PWCEntries)
		w.pwcOrder = make([]pwcKey, cfg.PWCEntries)
	}
	return w
}

// Stats returns a copy of the accumulated statistics.
func (w *Walker) Stats() Stats { return w.stats }

// Hierarchy returns the cache hierarchy PTEs are fetched through (nil in
// Fixed mode without one).
func (w *Walker) Hierarchy() *cache.Hierarchy { return w.hier }

// pwcLookup reports whether the upper levels for va are cached, and
// caches them if not.
func (w *Walker) pwcLookup(ctx vm.ContextID, va vm.VirtAddr) bool {
	if w.pwc == nil {
		return false
	}
	key := pwcKey{ctx: ctx, prefix: uint64(va) >> 30}
	if _, ok := w.pwc[key]; ok {
		return true
	}
	// FIFO-evict into the ring slot.
	old := w.pwcOrder[w.pwcNext]
	if _, ok := w.pwc[old]; ok {
		delete(w.pwc, old)
	}
	w.pwcOrder[w.pwcNext] = key
	w.pwcNext = (w.pwcNext + 1) % len(w.pwcOrder)
	w.pwc[key] = struct{}{}
	return false
}

// InvalidatePWC flushes the page-walk cache (shootdowns and context
// switches must not leave stale upper-level pointers).
func (w *Walker) InvalidatePWC() {
	if w.pwc == nil {
		return
	}
	for k := range w.pwc {
		delete(w.pwc, k)
	}
	for i := range w.pwcOrder {
		w.pwcOrder[i] = pwcKey{}
	}
}

// Walk performs the page-table walk for va in space as, starting at
// cycle now. It returns the total latency including any queueing behind
// an in-flight walk, and the walk result. ok is false if va is unmapped
// (the caller demand-maps first, so this indicates a model bug upstream).
func (w *Walker) Walk(now engine.Cycle, as *vm.AddressSpace, va vm.VirtAddr) (total int, res vm.WalkResult, ok bool) {
	res, ok = as.PT.Walk(va)
	if !ok {
		return 0, res, false
	}

	// Dispatch to the earliest-free walker slot.
	slot := 0
	for i, busy := range w.slots {
		if busy < w.slots[slot] {
			slot = i
		}
	}
	queue := 0
	if w.slots[slot] > now {
		queue = int(w.slots[slot] - now)
	}

	var walk int
	switch w.cfg.Mode {
	case Fixed:
		walk = w.cfg.FixedLatency
	case Variable:
		walk = w.cfg.Overhead + w.variableLatency(as.Ctx, va, res)
	}

	w.stats.Walks++
	w.stats.TotalCycles += uint64(walk)
	w.stats.QueueCycles += uint64(queue)
	w.slots[slot] = now + engine.Cycle(queue+walk)
	return queue + walk, res, true
}

// variableLatency charges the cache hierarchy for each level the walk
// touches, honouring the page-walk cache.
func (w *Walker) variableLatency(ctx vm.ContextID, va vm.VirtAddr, res vm.WalkResult) int {
	first := 0
	if w.pwcLookup(ctx, va) {
		w.stats.PWCHits++
		// Upper two levels (PML4, PDPT) are cached; start at the PD.
		first = 2
		if first > res.Levels-1 {
			first = res.Levels - 1
		}
	}
	// Map the hierarchy's level indices to the semantic L1/L2/LLC/memory
	// buckets: a 2-level walker view (L2 share + LLC) starts at L2.
	offset := 3 - w.hier.Levels()
	if offset < 0 {
		offset = 0
	}
	total := 0
	for i := first; i < res.Levels; i++ {
		lat, lvl := w.hier.Access(res.PTEAddrs[i])
		total += lat
		w.stats.MemRefsByLevel[min(lvl+offset, 3)]++
		if i == res.Levels-1 && lvl >= w.hier.Levels()-1 {
			w.stats.LeafFromLLCOrMem++
		}
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Snapshot is a deep copy of the walker's dynamic state: slot busy
// times and page-walk cache contents. The cfg and hierarchy are not
// included — a snapshot restores into a walker built from the same
// Config (the PWC map is rebuilt from the eviction ring, whose non-zero
// entries are exactly the cached keys; context IDs start at 1, so the
// zero key never collides with a real one).
type Snapshot struct {
	slots  []engine.Cycle
	order  []pwcKey
	next   int
	hasPWC bool
}

// Snapshot captures the walker's dynamic state. Statistics are not
// captured; pair with ResetStats at the measurement boundary.
func (w *Walker) Snapshot() Snapshot {
	return Snapshot{
		slots:  append([]engine.Cycle(nil), w.slots...),
		order:  append([]pwcKey(nil), w.pwcOrder...),
		next:   w.pwcNext,
		hasPWC: w.pwc != nil,
	}
}

// RestoreSnapshot overwrites the walker's dynamic state with a snapshot
// taken from an identically configured walker.
func (w *Walker) RestoreSnapshot(s Snapshot) {
	if len(s.slots) != len(w.slots) || s.hasPWC != (w.pwc != nil) || len(s.order) != len(w.pwcOrder) {
		panic("ptw: RestoreSnapshot configuration mismatch")
	}
	copy(w.slots, s.slots)
	copy(w.pwcOrder, s.order)
	w.pwcNext = s.next
	if w.pwc != nil {
		for k := range w.pwc {
			delete(w.pwc, k)
		}
		for _, k := range w.pwcOrder {
			if k != (pwcKey{}) {
				w.pwc[k] = struct{}{}
			}
		}
	}
}

// ResetStats zeroes the accumulated statistics.
func (w *Walker) ResetStats() { w.stats = Stats{} }
