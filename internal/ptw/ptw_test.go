package ptw

import (
	"testing"

	"nocstar/internal/cache"
	"nocstar/internal/engine"
	"nocstar/internal/vm"
)

func space(t *testing.T) *vm.AddressSpace {
	t.Helper()
	as := vm.NewAddressSpace(1)
	as.EnsureMapped(0x1000, vm.Page4K)
	return as
}

func TestFixedMode(t *testing.T) {
	as := space(t)
	w := New(Config{Mode: Fixed, FixedLatency: 40}, nil)
	lat, res, ok := w.Walk(0, as, 0x1000)
	if !ok || lat != 40 {
		t.Fatalf("fixed walk = %d ok=%v", lat, ok)
	}
	if res.Size != vm.Page4K {
		t.Fatalf("size = %v", res.Size)
	}
	if w.Stats().Walks != 1 || w.Stats().AvgCycles() != 40 {
		t.Fatalf("stats = %+v", w.Stats())
	}
}

func TestVariableModeRequiresHierarchy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Variable mode without hierarchy did not panic")
		}
	}()
	New(Config{Mode: Variable}, nil)
}

func TestVariableColdVsWarm(t *testing.T) {
	as := space(t)
	w := New(Config{Mode: Variable}, cache.DefaultHierarchy()) // no PWC
	cold, _, ok := w.Walk(0, as, 0x1000)
	if !ok {
		t.Fatal("walk failed")
	}
	// Cold 4-level walk: 4 memory fetches at 200 each.
	if cold != 800 {
		t.Fatalf("cold walk = %d, want 800", cold)
	}
	warm, _, _ := w.Walk(engine.Cycle(cold), as, 0x1000)
	// All four PTE lines now in L1: 4 x 4 cycles.
	if warm != 16 {
		t.Fatalf("warm walk = %d, want 16", warm)
	}
}

func TestPWCSkipsUpperLevels(t *testing.T) {
	as := space(t)
	w := New(DefaultConfig(), cache.DefaultHierarchy())
	first, _, _ := w.Walk(0, as, 0x1000) // PWC miss: 4 levels + overhead
	if first != 800+DefaultOverhead {
		t.Fatalf("first walk = %d, want %d", first, 800+DefaultOverhead)
	}
	// Map a second page in the same 1GB region; its upper levels are PWC
	// hits, so only PD + PT are fetched.
	as.EnsureMapped(0x200000, vm.Page4K)
	second, _, _ := w.Walk(1000, as, 0x200000)
	// PD line is warm (same PD as 0x1000? 0x200000 has a different PD
	// index but the same PD page -> same or adjacent line). Expect 2
	// fetches, each between L1 hit and memory.
	if second >= first {
		t.Fatalf("PWC did not reduce walk latency: %d vs %d", second, first)
	}
	if w.Stats().PWCHits != 1 {
		t.Fatalf("PWC hits = %d", w.Stats().PWCHits)
	}
}

func TestQueueingSerializesWalks(t *testing.T) {
	as := space(t)
	w := New(Config{Mode: Fixed, FixedLatency: 30, Walkers: 1}, nil)
	lat1, _, _ := w.Walk(100, as, 0x1000)
	lat2, _, _ := w.Walk(110, as, 0x1000)
	if lat1 != 30 {
		t.Fatalf("first walk = %d", lat1)
	}
	// Second arrives 10 cycles in: waits 20, then 30 of service.
	if lat2 != 50 {
		t.Fatalf("queued walk = %d, want 50", lat2)
	}
	if w.Stats().QueueCycles != 20 {
		t.Fatalf("queue cycles = %d", w.Stats().QueueCycles)
	}
}

func TestTwoWalkersOverlap(t *testing.T) {
	as := space(t)
	w := New(Config{Mode: Fixed, FixedLatency: 30, Walkers: 2}, nil)
	lat1, _, _ := w.Walk(100, as, 0x1000)
	lat2, _, _ := w.Walk(110, as, 0x1000) // second slot: no queueing
	lat3, _, _ := w.Walk(112, as, 0x1000) // both busy: queues behind slot 0
	if lat1 != 30 || lat2 != 30 {
		t.Fatalf("concurrent walks = %d, %d, want 30 each", lat1, lat2)
	}
	if lat3 != 18+30 {
		t.Fatalf("third walk = %d, want 48 (wait 18 + 30)", lat3)
	}
}

func TestWalkUnmapped(t *testing.T) {
	as := vm.NewAddressSpace(2)
	w := New(Config{Mode: Fixed, FixedLatency: 10}, nil)
	if _, _, ok := w.Walk(0, as, 0xdead000); ok {
		t.Fatal("walk of unmapped VA succeeded")
	}
	if w.Stats().Walks != 0 {
		t.Fatal("failed walk counted")
	}
}

func TestLeafLLCOrMemFraction(t *testing.T) {
	as := vm.NewAddressSpace(3)
	w := New(DefaultConfig(), cache.DefaultHierarchy())
	// Touch many distinct pages spread far apart: leaf PTEs are cold.
	for i := uint64(0); i < 200; i++ {
		va := vm.VirtAddr(i * 2 << 20) // one page per PT page
		as.EnsureMapped(va, vm.Page4K)
		w.Walk(engine.Cycle(i*1000), as, va)
	}
	frac := w.Stats().LeafLLCOrMemFraction()
	if frac < 0.5 {
		t.Fatalf("cold-leaf fraction = %v, expected mostly LLC/mem", frac)
	}
}

func TestInvalidatePWC(t *testing.T) {
	as := space(t)
	w := New(DefaultConfig(), cache.DefaultHierarchy())
	w.Walk(0, as, 0x1000)
	w.InvalidatePWC()
	as.EnsureMapped(0x3000, vm.Page4K)
	w.Walk(1000, as, 0x3000)
	if w.Stats().PWCHits != 0 {
		t.Fatalf("PWC hit after invalidation: %+v", w.Stats())
	}
}

func TestPWCFIFOEviction(t *testing.T) {
	as := vm.NewAddressSpace(4)
	w := New(Config{Mode: Variable, PWCEntries: 2}, cache.DefaultHierarchy())
	vas := []vm.VirtAddr{0, 1 << 30, 2 << 30}
	for _, va := range vas {
		as.EnsureMapped(va, vm.Page4K)
		w.Walk(0, as, va) // three distinct regions through a 2-entry PWC
	}
	// Region 0 was evicted; walking it again is a PWC miss.
	before := w.Stats().PWCHits
	w.Walk(10000, as, 0)
	if w.Stats().PWCHits != before {
		t.Fatal("evicted PWC entry hit")
	}
	// Region 2 is still resident.
	w.Walk(20000, as, 2<<30)
	if w.Stats().PWCHits != before+1 {
		t.Fatal("resident PWC entry missed")
	}
}

func TestStatsFractions(t *testing.T) {
	var s Stats
	if s.AvgCycles() != 0 || s.LeafLLCOrMemFraction() != 0 {
		t.Fatal("empty stats not zero")
	}
	s = Stats{Walks: 4, TotalCycles: 100, LeafFromLLCOrMem: 3}
	if s.AvgCycles() != 25 || s.LeafLLCOrMemFraction() != 0.75 {
		t.Fatalf("stats math wrong: %+v", s)
	}
}

func Test2MWalkShorter(t *testing.T) {
	as := vm.NewAddressSpace(5)
	as.EnsureMapped(0x40000000, vm.Page2M)
	as.EnsureMapped(0x80000000, vm.Page4K)
	// Separate walkers/hierarchies so the first walk cannot warm the
	// second's upper-level PTE lines.
	w2m := New(Config{Mode: Variable}, cache.DefaultHierarchy())
	w4k := New(Config{Mode: Variable}, cache.DefaultHierarchy())
	lat2m, res2m, _ := w2m.Walk(0, as, 0x40000000)
	lat4k, res4k, _ := w4k.Walk(0, as, 0x80000000)
	if res2m.Levels != 3 || res4k.Levels != 4 {
		t.Fatalf("levels = %d, %d", res2m.Levels, res4k.Levels)
	}
	if lat2m >= lat4k {
		t.Fatalf("2M walk (%d) not cheaper than 4K walk (%d)", lat2m, lat4k)
	}
}
