package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Dir is a persistent content-addressed store: one "<hash>.json" blob
// per result under a single directory. Writes go to a temp file in the
// same directory and are renamed into place, so a reader — including a
// different server replica sharing the directory over a common volume —
// either sees the whole blob or none of it, never a torn write. Blobs
// are immutable, so there is no overwrite path to race on.
//
// An in-memory index tracks recency for LRU eviction under entry and
// byte bounds; Opening a directory rebuilds the index from the blobs on
// disk (ordered by modification time), which is how results survive
// restarts. A Get for a hash absent from the index still probes the
// disk, so blobs written by another replica are found and adopted.
type Dir struct {
	dir        string
	maxEntries int
	maxBytes   int64 // 0 = unbounded

	mu    sync.Mutex
	order *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64
}

type dirEntry struct {
	key  string
	size int64
}

// DefaultDirEntries bounds a directory store when OpenDir is given a
// non-positive entry cap.
const DefaultDirEntries = 4096

// OpenDir opens (creating if needed) a directory store bounded to
// maxEntries blobs (<= 0 selects DefaultDirEntries) and maxBytes total
// payload (<= 0 leaves size unbounded). Existing blobs are indexed by
// modification time so eviction order survives restarts approximately.
func OpenDir(dir string, maxEntries int, maxBytes int64) (*Dir, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultDirEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	d := &Dir{
		dir:        dir,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		items:      make(map[string]*list.Element),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	type onDisk struct {
		key   string
		size  int64
		mtime int64
	}
	var found []onDisk
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		if !validHash(key) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, f := range found { // oldest first, so the newest ends up MRU
		d.items[f.key] = d.order.PushFront(&dirEntry{key: f.key, size: f.size})
		d.bytes += f.size
	}
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	return d, nil
}

// Path returns the directory backing the store.
func (d *Dir) Path() string { return d.dir }

func (d *Dir) blobPath(hash string) string {
	return filepath.Join(d.dir, hash+".json")
}

// validHash accepts only lowercase-hex content hashes (what
// Config.CanonicalHash emits), which doubles as the path-traversal
// guard: a key can never escape the store directory or collide with
// the temp-file prefix.
func validHash(h string) bool {
	if len(h) < 4 || len(h) > 128 {
		return false
	}
	for _, c := range h {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the blob stored under hash. Index misses probe the disk
// so blobs written by other replicas sharing the directory are adopted;
// index hits whose file vanished (evicted by another replica) are
// dropped and miss.
func (d *Dir) Get(hash string) ([]byte, bool) {
	if !validHash(hash) {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b, err := os.ReadFile(d.blobPath(hash))
	el, indexed := d.items[hash]
	if err != nil {
		if indexed {
			d.bytes -= el.Value.(*dirEntry).size
			d.order.Remove(el)
			delete(d.items, hash)
		}
		return nil, false
	}
	if indexed {
		ent := el.Value.(*dirEntry)
		d.bytes += int64(len(b)) - ent.size
		ent.size = int64(len(b))
		d.order.MoveToFront(el)
	} else {
		d.items[hash] = d.order.PushFront(&dirEntry{key: hash, size: int64(len(b))})
		d.bytes += int64(len(b))
		d.evictLocked()
	}
	return b, true
}

// Put stores result under hash with an atomic temp-write + rename. A
// hash already present only has its recency refreshed (blobs are
// immutable). Eviction of least-recently-used blobs keeps the store
// within its entry and byte bounds.
func (d *Dir) Put(hash string, result []byte) error {
	if !validHash(hash) {
		return fmt.Errorf("store: invalid content hash %q", hash)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.items[hash]; ok {
		d.order.MoveToFront(el)
		return nil
	}
	tmp, err := os.CreateTemp(d.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	if _, err := tmp.Write(result); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.blobPath(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing blob: %w", err)
	}
	d.items[hash] = d.order.PushFront(&dirEntry{key: hash, size: int64(len(result))})
	d.bytes += int64(len(result))
	d.evictLocked()
	return nil
}

// evictLocked removes least-recently-used blobs (index entry and file)
// until the store fits its bounds. A single blob larger than the byte
// bound is kept — an empty store would just re-admit it. Caller holds
// d.mu.
func (d *Dir) evictLocked() {
	for d.order.Len() > 0 {
		overEntries := d.order.Len() > d.maxEntries
		overBytes := d.maxBytes > 0 && d.bytes > d.maxBytes && d.order.Len() > 1
		if !overEntries && !overBytes {
			return
		}
		last := d.order.Back()
		ent := last.Value.(*dirEntry)
		d.order.Remove(last)
		delete(d.items, ent.key)
		d.bytes -= ent.size
		os.Remove(d.blobPath(ent.key))
	}
}

// Len reports the number of indexed blobs.
func (d *Dir) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.order.Len()
}

// Bytes reports the indexed payload size.
func (d *Dir) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}
