// Package store provides content-addressed result stores for the HTTP
// service: immutable result blobs keyed by the canonical config hash
// (system.Config.CanonicalHash). Because equal configs produce
// bit-identical Results, a result is a pure function of its key — there
// is no invalidation, only eviction — which makes the store safe to
// share between server replicas and across restarts.
//
// Two implementations are provided: Memory, a bounded in-process LRU
// (the original server cache), and Dir, a persistent directory of
// <hash>.json blobs written atomically so replicas sharing a volume
// never observe torn writes. Tiered composes them front-to-back.
package store

// Store is a content-addressed result store. Get returns the stored
// blob for a canonical config hash; Put records one. Implementations
// are safe for concurrent use. Put reports I/O failures so callers can
// surface them (a persistent store on a full disk must not fail
// silently); the stored bytes are immutable — a second Put under the
// same hash only refreshes recency.
type Store interface {
	Get(hash string) ([]byte, bool)
	Put(hash string, result []byte) error
	Len() int
}

// tiered is a two-level store: a fast front (typically Memory) over an
// authoritative back (typically Dir). Gets promote back-tier hits into
// the front tier; Puts write through to both.
type tiered struct {
	fast Store
	slow Store
}

// Tiered layers a fast front store over an authoritative back store.
// Len reports the back tier's count — the authoritative population.
func Tiered(fast, slow Store) Store {
	return &tiered{fast: fast, slow: slow}
}

func (t *tiered) Get(hash string) ([]byte, bool) {
	if b, ok := t.fast.Get(hash); ok {
		return b, true
	}
	b, ok := t.slow.Get(hash)
	if ok {
		t.fast.Put(hash, b) // promotion; Memory.Put cannot fail
	}
	return b, ok
}

func (t *tiered) Put(hash string, result []byte) error {
	err := t.slow.Put(hash, result)
	t.fast.Put(hash, result)
	return err
}

func (t *tiered) Len() int { return t.slow.Len() }
