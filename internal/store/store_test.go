package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func hashN(n int) string { return fmt.Sprintf("%064x", n+1) }

func TestMemoryLRU(t *testing.T) {
	m := NewMemory(2)
	m.Put(hashN(0), []byte("a"))
	m.Put(hashN(1), []byte("b"))
	if _, ok := m.Get(hashN(0)); !ok { // refresh 0 → 1 becomes LRU
		t.Fatal("miss on fresh entry")
	}
	m.Put(hashN(2), []byte("c"))
	if _, ok := m.Get(hashN(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if b, ok := m.Get(hashN(0)); !ok || !bytes.Equal(b, []byte("a")) {
		t.Fatalf("refreshed entry lost: %q %v", b, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("len %d, want 2", m.Len())
	}
}

func TestDirPutGetReload(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"cycles":12345}`)
	if err := d.Put(hashN(0), blob); err != nil {
		t.Fatal(err)
	}
	if b, ok := d.Get(hashN(0)); !ok || !bytes.Equal(b, blob) {
		t.Fatalf("get after put: %q %v", b, ok)
	}

	// A new store over the same directory — a restart — finds the blob.
	d2, err := OpenDir(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("reloaded len %d, want 1", d2.Len())
	}
	if b, ok := d2.Get(hashN(0)); !ok || !bytes.Equal(b, blob) {
		t.Fatalf("get after reload: %q %v", b, ok)
	}
}

func TestDirEntryEviction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Put(hashN(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 3 {
		t.Fatalf("len %d, want 3", d.Len())
	}
	for i := 0; i < 2; i++ { // oldest two evicted, files deleted
		if _, ok := d.Get(hashN(i)); ok {
			t.Fatalf("entry %d survived eviction", i)
		}
		if _, err := os.Stat(filepath.Join(dir, hashN(i)+".json")); !os.IsNotExist(err) {
			t.Fatalf("evicted blob %d still on disk: %v", i, err)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := d.Get(hashN(i)); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
}

func TestDirByteEviction(t *testing.T) {
	d, err := OpenDir(t.TempDir(), 100, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Put(hashN(i), make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 2 || d.Bytes() != 32 {
		t.Fatalf("len %d bytes %d, want 2/32", d.Len(), d.Bytes())
	}
	// A single blob over the bound is kept rather than thrashing.
	if err := d.Put(hashN(9), make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(hashN(9)); !ok {
		t.Fatal("oversized blob not retained")
	}
	if d.Len() != 1 {
		t.Fatalf("len %d, want 1 after oversized put", d.Len())
	}
}

// TestDirCrossReplicaAdoption models two replicas sharing a volume: a
// blob written by one store instance is found by another whose index
// has never seen the hash.
func TestDirCrossReplicaAdoption(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDir(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDir(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"from":"replica-b"}`)
	if err := b.Put(hashN(7), blob); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get(hashN(7)); !ok || !bytes.Equal(got, blob) {
		t.Fatalf("replica blob not adopted: %q %v", got, ok)
	}
	if a.Len() != 1 {
		t.Fatalf("adopted blob not indexed: len %d", a.Len())
	}
}

func TestDirRejectsBadKeys(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "abc", "../../../../etc/passwd", "ABCDEF1234", "deadbeef/x", "deadbeef.."} {
		if err := d.Put(key, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", key)
		}
		if _, ok := d.Get(key); ok {
			t.Fatalf("Get(%q) hit", key)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("bad keys left %d files behind", len(entries))
	}
}

func TestTieredPromotion(t *testing.T) {
	fast := NewMemory(4)
	slow, err := OpenDir(t.TempDir(), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := Tiered(fast, slow)
	blob := []byte(`{"r":1}`)
	if err := st.Put(hashN(0), blob); err != nil {
		t.Fatal(err)
	}
	if fast.Len() != 1 || slow.Len() != 1 {
		t.Fatalf("write-through failed: fast %d slow %d", fast.Len(), slow.Len())
	}
	// Simulate a restart of the front tier: the back tier repopulates it.
	fast2 := NewMemory(4)
	st2 := Tiered(fast2, slow)
	if b, ok := st2.Get(hashN(0)); !ok || !bytes.Equal(b, blob) {
		t.Fatalf("tiered get: %q %v", b, ok)
	}
	if fast2.Len() != 1 {
		t.Fatal("back-tier hit not promoted")
	}
}
