package store

import (
	"container/list"
	"sync"
)

// Memory is a fixed-capacity least-recently-used in-process store. It
// amortizes the repeated-query pattern of paper sweeps: re-submitting a
// config already simulated serves the cached bytes instead of
// re-running. A capacity <= 0 disables the store (every Get misses).
type Memory struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type memEntry struct {
	key string
	val []byte
}

// NewMemory returns an LRU store bounded to capacity entries.
func NewMemory(capacity int) *Memory {
	return &Memory{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the stored value and marks it most recently used.
func (c *Memory) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when over capacity. It never fails.
func (c *Memory) Put(key string, val []byte) error {
	if c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*memEntry).val = val
		c.order.MoveToFront(el)
		return nil
	}
	c.items[key] = c.order.PushFront(&memEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*memEntry).key)
	}
	return nil
}

// Len reports the number of stored entries.
func (c *Memory) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
