package check

import (
	"strings"
	"testing"

	"nocstar/internal/vm"
)

func TestEventOrder(t *testing.T) {
	c := New()
	c.event(5, 1)
	c.event(5, 2)
	c.event(7, 3)
	if !c.Ok() {
		t.Fatalf("monotone event stream flagged: %v", c.Err())
	}
	c.event(7, 3) // seq did not advance within the cycle
	if c.Ok() {
		t.Fatal("repeated (cycle, seq) not flagged")
	}

	c = New()
	c.event(5, 1)
	c.event(4, 2) // cycle decreased
	if c.Ok() {
		t.Fatal("decreasing event cycle not flagged")
	}
	if c.Stats().Events != 2 {
		t.Fatalf("Events = %d, want 2", c.Stats().Events)
	}
}

func TestPortHorizonMonotone(t *testing.T) {
	c := New()
	c.BindPorts(2, 1, 3)
	c.Port(PortSlice, 0, 10)
	c.Port(PortSlice, 0, 10) // unchanged horizon is fine
	c.Port(PortSlice, 1, 4)
	c.Port(PortBank, 0, 2)
	c.Port(PortPriv, 2, 9)
	if !c.Ok() {
		t.Fatalf("monotone horizons flagged: %v", c.Err())
	}
	c.Port(PortSlice, 0, 9) // rewound past an already-charged horizon
	if c.Ok() {
		t.Fatal("rewound slice horizon not flagged")
	}
	if !strings.Contains(c.Violations()[0].Msg, "slicePortFree[0]") {
		t.Fatalf("violation does not name the port: %v", c.Violations()[0])
	}

	c = New()
	c.BindPorts(1, 0, 0)
	c.Port(PortBank, 0, 1) // no banks bound
	if c.Ok() {
		t.Fatal("out-of-range port index not flagged")
	}
}

func TestServedOracle(t *testing.T) {
	as := vm.NewAddressSpace(1)
	va := vm.VirtAddr(0x1000)
	as.EnsureMapped(va, vm.Page4K)
	pa, _, _ := as.Translate(va)
	pfn := uint64(pa) >> vm.Page4K.Shift()
	vpn := va.VPN(vm.Page4K)

	c := New()
	c.Served(as, vpn, vm.Page4K, pfn)
	if !c.Ok() {
		t.Fatalf("correct translation flagged: %v", c.Err())
	}
	c.Served(as, vpn, vm.Page4K, pfn+1)
	if len(c.Violations()) != 1 {
		t.Fatal("wrong PFN not flagged")
	}
	c.Served(as, 0x999, vm.Page4K, 5)
	if len(c.Violations()) != 2 {
		t.Fatal("unmapped serve not flagged")
	}
	if c.Stats().Translations != 3 {
		t.Fatalf("Translations = %d, want 3", c.Stats().Translations)
	}

	// Size mismatch: the page table holds a 2M mapping, the TLB claims 4K.
	as2 := vm.NewAddressSpace(2)
	big := vm.VirtAddr(0x400000)
	as2.EnsureMapped(big, vm.Page2M)
	pa2, _, _ := as2.Translate(big)
	c = New()
	c.Served(as2, big.VPN(vm.Page4K), vm.Page4K, uint64(pa2)>>vm.Page4K.Shift())
	if c.Ok() || !strings.Contains(c.Violations()[0].Msg, "page table has 2M") {
		t.Fatalf("size mismatch not flagged: %v", c.Violations())
	}
}

func TestWalkResultOracle(t *testing.T) {
	as := vm.NewAddressSpace(3)
	va := vm.VirtAddr(0x7000)
	as.EnsureMapped(va, vm.Page4K)
	res, ok := as.PT.Walk(va)
	if !ok {
		t.Fatal("setup walk failed")
	}

	c := New()
	c.WalkResult(as, va, res)
	if !c.Ok() {
		t.Fatalf("correct walk flagged: %v", c.Err())
	}
	bad := res
	bad.PA += 0x1000
	c.WalkResult(as, va, bad)
	if len(c.Violations()) != 1 {
		t.Fatal("wrong walk PA not flagged")
	}
	c.WalkResult(as, 0x123456789000, res) // walker claims a mapping, table has none
	if len(c.Violations()) != 2 {
		t.Fatal("walk of unmapped va not flagged")
	}
}

func TestStaleServeDetection(t *testing.T) {
	as := vm.NewAddressSpace(4)
	va := vm.VirtAddr(0x5000)
	as.EnsureMapped(va, vm.Page4K)
	pa, _, _ := as.Translate(va)
	pfn := uint64(pa) >> vm.Page4K.Shift()
	vpn := va.VPN(vm.Page4K)
	serve := func(c *Checker) { c.Served(as, vpn, vm.Page4K, pfn) }

	c := New()
	c.Inserted(as.Ctx, vpn, vm.Page4K)
	serve(c)
	if !c.Ok() {
		t.Fatalf("fresh serve flagged: %v", c.Err())
	}

	// Targeted invalidation: the old entry becomes stale until re-inserted.
	c.Invalidated(vm.Invalidation{Ctx: as.Ctx, VPN: vpn, Size: vm.Page4K})
	serve(c)
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("stale serve after invalidation: %d violations, want 1", n)
	}
	c.Inserted(as.Ctx, vpn, vm.Page4K)
	serve(c)
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("re-inserted serve flagged: %d violations", n)
	}

	// Per-context full flush covers the key too.
	c.Invalidated(vm.Invalidation{Ctx: as.Ctx, FullFlush: true})
	serve(c)
	if n := len(c.Violations()); n != 2 {
		t.Fatalf("stale serve after context flush: %d violations, want 2", n)
	}
	c.Inserted(as.Ctx, vpn, vm.Page4K)

	// Global flush (storm context switch) invalidates everything.
	c.FlushedAll()
	serve(c)
	if n := len(c.Violations()); n != 3 {
		t.Fatalf("stale serve after global flush: %d violations, want 3", n)
	}
	if c.Stats().Invalidations != 3 || c.Stats().Inserts != 3 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestCommitted(t *testing.T) {
	c := New()
	c.Committed(0, 500, 500)
	if !c.Ok() {
		t.Fatalf("matching commit flagged: %v", c.Err())
	}
	c.Committed(3, 499, 500)
	if c.Ok() || !strings.Contains(c.Violations()[0].Msg, "core 3") {
		t.Fatalf("short commit not flagged: %v", c.Violations())
	}
}

func TestViolationCapAndErr(t *testing.T) {
	c := New()
	if c.Err() != nil {
		t.Fatal("clean checker returned an error")
	}
	hooked := 0
	c.OnViolation = func(Violation) { hooked++ }
	for i := 0; i < maxViolations+10; i++ {
		c.Violatef("boom %d", i)
	}
	if len(c.Violations()) != maxViolations {
		t.Fatalf("recorded %d violations, cap is %d", len(c.Violations()), maxViolations)
	}
	if c.Dropped() != 10 {
		t.Fatalf("Dropped = %d, want 10", c.Dropped())
	}
	if hooked != maxViolations {
		t.Fatalf("OnViolation ran %d times, want %d (recorded only)", hooked, maxViolations)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "74 invariant violation(s)") {
		t.Fatalf("Err = %v", err)
	}
	if !strings.Contains(err.Error(), "boom 0") {
		t.Fatalf("Err does not carry the first violation: %v", err)
	}
	if got := c.Violations()[0].String(); !strings.Contains(got, "cycle 0") {
		t.Fatalf("Violation.String = %q", got)
	}
}
