package check

import (
	"strings"
	"testing"

	"nocstar/internal/engine"
	"nocstar/internal/noc"
)

// shadowedFabric builds a 4x4 NOCSTAR fabric with a fresh Checker's
// circuit shadow and event-order hook attached.
func shadowedFabric() (*engine.Engine, *noc.Nocstar, *Checker) {
	eng := engine.New()
	n := noc.NewNocstar(eng, noc.NocstarConfig{Geometry: noc.GridFor(16)})
	c := New()
	c.AttachEngine(eng)
	c.AttachFabric(n)
	return eng, n, c
}

// lateReleaseTraffic drives the exact timeline of the historical
// link-release clobber (noc.TestLateReleaseDoesNotClobber): holder A's
// round-trip release arrives after its window expired and B re-reserved
// the shared links, then C requests the same path.
func lateReleaseTraffic(eng *engine.Engine, n *noc.Nocstar) {
	eng.Schedule(1, func() {
		n.RequestPath(0, 3, 20, func(int) {}) // A: reserved through 21
	})
	eng.Schedule(22, func() {
		n.RequestPath(0, 3, 20, func(int) {}) // B: reserved through 42
	})
	eng.Schedule(30, func() {
		n.Release(0, 3, 21) // A's late release; B owns the links now
	})
	eng.Schedule(31, func() {
		n.RequestPath(0, 3, 1, func(int) {}) // C: must wait for B
	})
	eng.Run()
}

func TestCircuitShadowCleanTraffic(t *testing.T) {
	eng, n, c := shadowedFabric()
	lateReleaseTraffic(eng, n)
	if !c.Ok() {
		t.Fatalf("correct release semantics flagged: %v", c.Err())
	}
	st := c.Stats()
	if st.Grants != 3 || st.Releases != 1 {
		t.Fatalf("shadow coverage: grants=%d releases=%d, want 3/1", st.Grants, st.Releases)
	}
	if n.Stats().ForeignLinks == 0 {
		t.Fatal("timeline did not exercise the foreign-hold release path")
	}
}

func TestCircuitShadowEarlyRelease(t *testing.T) {
	eng, n, c := shadowedFabric()
	eng.Schedule(1, func() {
		// Granted end of cycle 1: links reserved through 1001.
		n.RequestPath(0, 3, 1000, func(int) {
			eng.At(5, func() { n.Release(0, 3, 1001) })
		})
	})
	eng.Schedule(6, func() {
		n.RequestPath(0, 3, 1, func(int) {})
	})
	eng.Run()
	if !c.Ok() {
		t.Fatalf("early self-release flagged: %v", c.Err())
	}
	if c.Stats().Grants != 2 || c.Stats().Releases != 1 {
		t.Fatalf("shadow coverage: %+v", c.Stats())
	}
}

// TestCircuitShadowCatchesLegacyRelease reintroduces the PR 3
// unconditional-rewind bug and asserts the shadow reports it: the fabric
// frees B's hold on A's late release (divergence at the release event),
// and C's subsequent grant overlaps what the shadow still records as B's
// circuit.
func TestCircuitShadowCatchesLegacyRelease(t *testing.T) {
	eng, n, c := shadowedFabric()
	n.SetLegacyReleaseForTest(true)
	lateReleaseTraffic(eng, n)
	if c.Ok() {
		t.Fatal("legacy unconditional release escaped the circuit shadow")
	}
	var sawRelease, sawOverlap bool
	for _, v := range c.Violations() {
		if strings.Contains(v.Msg, "release did not free exactly the caller's hold") {
			sawRelease = true
		}
		if strings.Contains(v.Msg, "overlaps link") {
			sawOverlap = true
		}
	}
	if !sawRelease {
		t.Fatalf("no release-divergence violation recorded: %v", c.Violations())
	}
	if !sawOverlap {
		t.Fatalf("no overlapping-grant violation recorded: %v", c.Violations())
	}
}
