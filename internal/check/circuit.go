package check

import (
	"nocstar/internal/engine"
	"nocstar/internal/noc"
)

// circuitShadow is an independent replica of the NOCSTAR fabric's
// per-link reservation state. The fabric enforces non-overlap by
// construction at grant time, so a bug that corrupts reservations —
// PR 3's Release clobber, which unconditionally rewound a link another
// grant had re-reserved — is invisible to the fabric itself: the next
// grant simply sees a free link and two circuits overlap silently. The
// shadow applies the *correct* semantics to its own copy and compares
// against the fabric after every grant and release, so the first
// divergence is reported at the event that caused it.
type circuitShadow struct {
	fabric        *noc.Nocstar
	reservedUntil []engine.Cycle
}

// AttachFabric binds the checker to a NOCSTAR fabric and installs the
// circuit observer. Call once, before the run starts.
func (c *Checker) AttachFabric(f *noc.Nocstar) {
	c.circuit = circuitShadow{
		fabric:        f,
		reservedUntil: make([]engine.Cycle, f.Geometry().NumLinks()),
	}
	f.SetCircuitObserver(c)
}

// CircuitGranted implements noc.CircuitObserver: the fabric reserved
// links for [now+1, until]. The shadow asserts no link of the route was
// still held (an overlapping foreign reservation means two circuits
// share a wire), then mirrors the reservation and cross-checks the
// fabric's own state.
func (c *Checker) CircuitGranted(src, dst noc.NodeID, links []noc.LinkID, now, until engine.Cycle) {
	c.stats.Grants++
	sh := &c.circuit
	for _, l := range links {
		if sh.reservedUntil[l] > now {
			c.Violatef("noc: grant %d->%d overlaps link %d held through cycle %d (grant window ends %d)",
				int(src), int(dst), int(l), uint64(sh.reservedUntil[l]), uint64(until))
		}
		sh.reservedUntil[l] = until
		if got := sh.fabric.ReservedUntil(l); got != until {
			c.Violatef("noc: grant %d->%d link %d reserved through %d in fabric, want %d",
				int(src), int(dst), int(l), uint64(got), uint64(until))
		}
	}
}

// CircuitReleased implements noc.CircuitObserver: an early release for
// the grant whose reservation window ended at until. The shadow frees
// exactly the links still held by that window — a link whose
// reservation has moved on belongs to a later grant and must not be
// touched — then asserts the fabric agrees link by link. The
// unconditional-rewind bug diverges here immediately: the fabric frees
// a foreign hold the shadow correctly retains.
func (c *Checker) CircuitReleased(src, dst noc.NodeID, links []noc.LinkID, now, until engine.Cycle) {
	c.stats.Releases++
	sh := &c.circuit
	for _, l := range links {
		if sh.reservedUntil[l] > now && sh.reservedUntil[l] == until {
			sh.reservedUntil[l] = now
		}
		if got := sh.fabric.ReservedUntil(l); got != sh.reservedUntil[l] {
			c.Violatef("noc: release %d->%d (window %d) freed link %d to %d, want %d — release did not free exactly the caller's hold",
				int(src), int(dst), uint64(until), int(l), uint64(got), uint64(sh.reservedUntil[l]))
		}
	}
}
