// Package check is the simulator's opt-in differential-oracle and
// invariant-checking subsystem. A Checker shadows one run of a
// system.Config (hang it on Config.Check) and verifies, as the run
// executes, properties that plausible-but-wrong timing models silently
// violate:
//
//   - Translation oracle: every translation served by an L1 TLB, a
//     shared slice, a monolithic bank, or a page walk is re-walked
//     against the owning address space's page table; the served
//     (PFN, size) must match, and no translation invalidated by a
//     delivered shootdown may ever be served again afterwards
//     (stale-TLB detection).
//   - NoC circuit invariants: a per-link shadow replica of the NOCSTAR
//     fabric's reservations asserts that no grant overlaps a foreign
//     reservation and that every release frees exactly the caller's own
//     hold — the invariant whose absence let PR 3's link-release clobber
//     survive (see circuit.go).
//   - Engine and timing invariants: executed event cycles never
//     decrease, the port-free horizons (slice, bank, and private-L2
//     ports) are monotone, and per-thread committed reference counts
//     reconcile with the workload length at the end of the run.
//
// A Checker belongs to exactly one run: the system binds it at New and
// the shadow state is meaningless across runs. With Config.Check nil the
// simulator's hot paths pay a predictable nil-test branch and nothing
// else — the allocation-regression gates pin that the checked-off
// critical path still runs at zero heap allocations.
package check

import (
	"fmt"

	"nocstar/internal/engine"
	"nocstar/internal/vm"
)

// Violation is one recorded invariant failure.
type Violation struct {
	Cycle engine.Cycle
	Msg   string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s", uint64(v.Cycle), v.Msg)
}

// maxViolations bounds the recorded list: a broken model can violate an
// invariant millions of times and the first few are the diagnostic ones.
const maxViolations = 64

// Stats counts how much checking a run actually performed, so a test
// enabling the checker can assert the oracle was exercised (a checker
// that silently checked nothing would pass vacuously).
type Stats struct {
	Translations  uint64 // served translations verified against the page table
	Walks         uint64 // walk results verified
	Inserts       uint64 // TLB inserts recorded for stale detection
	Invalidations uint64 // delivered shootdown invalidations recorded
	Grants        uint64 // circuit grants shadowed
	Releases      uint64 // circuit releases shadowed
	Events        uint64 // engine events order-checked
	Ports         uint64 // port-horizon updates checked
}

// Port kinds for the horizon-monotonicity check.
const (
	PortSlice uint8 = iota
	PortBank
	PortPriv
)

var portNames = [...]string{"slicePortFree", "bankPortFree", "privPortFree"}

// invKey identifies one translation for the stale-serve record.
type invKey struct {
	ctx  vm.ContextID
	vpn  uint64
	size vm.PageSize
}

// Checker is the shadow oracle for one run. Construct with New, assign
// to system.Config.Check, and inspect after the run. The zero value is
// not ready for use.
type Checker struct {
	// OnViolation, when non-nil, runs on every recorded violation (e.g.
	// a test's t.Errorf, or a panic for fail-fast debugging). It is
	// called after the violation is recorded.
	OnViolation func(Violation)

	now        func() engine.Cycle
	violations []Violation
	dropped    uint64 // violations beyond maxViolations
	stats      Stats

	// Engine event-order shadow.
	lastWhen engine.Cycle
	lastSeq  uint64
	sawEvent bool

	// Port-free horizon shadows, sized by BindPorts.
	ports [3][]engine.Cycle

	// Stale-TLB record: a translation is stale when its latest recorded
	// insert generation predates the latest invalidation generation
	// covering it (per-page, per-context full flush, or global flush).
	gen      uint64
	inserts  map[invKey]uint64
	invs     map[invKey]uint64
	ctxFlush map[vm.ContextID]uint64
	allFlush uint64

	circuit circuitShadow
}

// New returns an unbound Checker. The system it is handed to (via
// Config.Check) binds it to the run's engine, fabric, and port arrays.
func New() *Checker {
	return &Checker{
		inserts:  map[invKey]uint64{},
		invs:     map[invKey]uint64{},
		ctxFlush: map[vm.ContextID]uint64{},
	}
}

// Ok reports whether no invariant has been violated so far.
func (c *Checker) Ok() bool { return len(c.violations) == 0 }

// Violations returns the recorded violations (capped; see Dropped).
func (c *Checker) Violations() []Violation { return c.violations }

// Dropped reports how many violations were recorded beyond the cap.
func (c *Checker) Dropped() uint64 { return c.dropped }

// Stats returns the checking-coverage counters.
func (c *Checker) Stats() Stats { return c.stats }

// Err returns nil when the run was clean, or an error summarizing the
// first violation and the total count.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s), first: %s",
		uint64(len(c.violations))+c.dropped, c.violations[0])
}

// Violatef records an invariant violation. Exported so the layers the
// checker is wired through can report failures they detect themselves
// (e.g. the system's probe-after-invalidate assertion).
func (c *Checker) Violatef(format string, args ...any) {
	v := Violation{Cycle: c.cycle(), Msg: fmt.Sprintf(format, args...)}
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, v)
	if c.OnViolation != nil {
		c.OnViolation(v)
	}
}

// cycle returns the bound engine's current cycle, or 0 when unbound.
func (c *Checker) cycle() engine.Cycle {
	if c.now == nil {
		return 0
	}
	return c.now()
}

// ---------------------------------------------------------------------
// Binding. The system calls these from New when Config.Check is set.

// AttachEngine binds the checker to the run's clock and installs the
// engine's event-order check hook: executed event cycles must never
// decrease, and within a cycle sequence numbers must strictly increase
// (the engine's total (cycle, seq) order).
func (c *Checker) AttachEngine(eng *engine.Engine) {
	c.now = eng.Now
	eng.SetCheck(c.event)
}

// event is the engine check hook.
func (c *Checker) event(when engine.Cycle, seq uint64) {
	c.stats.Events++
	if c.sawEvent {
		if when < c.lastWhen {
			c.Violatef("engine: event cycle decreased: %d after %d", uint64(when), uint64(c.lastWhen))
		} else if when == c.lastWhen && seq <= c.lastSeq {
			c.Violatef("engine: event order violated at cycle %d: seq %d after %d",
				uint64(when), seq, c.lastSeq)
		}
	}
	c.sawEvent = true
	c.lastWhen, c.lastSeq = when, seq
}

// BindPorts sizes the port-free horizon shadows: slices and banks are
// the shared-structure port arrays (zero for organizations without
// them), cores is the private-L2 port count.
func (c *Checker) BindPorts(slices, banks, cores int) {
	c.ports[PortSlice] = make([]engine.Cycle, slices)
	c.ports[PortBank] = make([]engine.Cycle, banks)
	c.ports[PortPriv] = make([]engine.Cycle, cores)
}

// Port verifies one port-free horizon update: horizons only ever move
// forward (a port busy through cycle T can never become busy only
// through some earlier T' — that would retroactively un-charge
// contention already paid for).
func (c *Checker) Port(kind uint8, idx int, v engine.Cycle) {
	c.stats.Ports++
	shadow := c.ports[kind]
	if idx < 0 || idx >= len(shadow) {
		c.Violatef("port: %s index %d out of range (%d ports bound)",
			portNames[kind], idx, len(shadow))
		return
	}
	if v < shadow[idx] {
		c.Violatef("port: %s[%d] horizon moved backwards: %d after %d",
			portNames[kind], idx, uint64(v), uint64(shadow[idx]))
	}
	shadow[idx] = v
}

// ---------------------------------------------------------------------
// Translation oracle.

// Served verifies one translation the moment a TLB lookup returns it:
// the served (PFN, size) must match a fresh page-table walk of the
// owning address space, and the entry must not predate a delivered
// invalidation that covers it. Lookups are synchronous in the model, so
// a hit on an invalidated tuple means the structure failed to apply a
// shootdown (or the wrong home structure was invalidated).
func (c *Checker) Served(as *vm.AddressSpace, vpn uint64, size vm.PageSize, pfn uint64) {
	c.stats.Translations++
	va := vm.VirtAddr(vpn << size.Shift())
	pa, gotSize, ok := as.Translate(va)
	switch {
	case !ok:
		c.Violatef("oracle: ctx %d served translation for unmapped va %#x (vpn %#x, %s)",
			as.Ctx, uint64(va), vpn, size)
	case gotSize != size:
		c.Violatef("oracle: ctx %d va %#x served as %s page, page table has %s",
			as.Ctx, uint64(va), size, gotSize)
	case uint64(pa)>>size.Shift() != pfn:
		c.Violatef("oracle: ctx %d va %#x served PFN %#x, page table has %#x",
			as.Ctx, uint64(va), pfn, uint64(pa)>>size.Shift())
	}
	key := invKey{ctx: as.Ctx, vpn: vpn, size: size}
	if ig := c.invGen(key); ig > 0 && c.inserts[key] < ig {
		c.Violatef("oracle: ctx %d vpn %#x (%s) served stale: invalidated at gen %d, last insert gen %d",
			as.Ctx, vpn, size, ig, c.inserts[key])
	}
}

// WalkResult verifies a completed page-table walk against a direct
// re-translation (the differential contract between the timing walker
// and the functional page table).
func (c *Checker) WalkResult(as *vm.AddressSpace, va vm.VirtAddr, res vm.WalkResult) {
	c.stats.Walks++
	pa, size, ok := as.Translate(va)
	switch {
	case !ok:
		c.Violatef("oracle: walk of ctx %d va %#x returned (%#x, %s) but page table has no mapping",
			as.Ctx, uint64(va), uint64(res.PA), res.Size)
	case size != res.Size || pa != res.PA:
		c.Violatef("oracle: walk of ctx %d va %#x returned (%#x, %s), page table has (%#x, %s)",
			as.Ctx, uint64(va), uint64(res.PA), res.Size, uint64(pa), size)
	}
}

// Inserted records a TLB insert of (ctx, vpn, size) for stale-serve
// detection. Every install site — L1 fills, slice/bank/private-L2
// inserts, prefetches — reports here.
func (c *Checker) Inserted(ctx vm.ContextID, vpn uint64, size vm.PageSize) {
	c.stats.Inserts++
	c.gen++
	c.inserts[invKey{ctx: ctx, vpn: vpn, size: size}] = c.gen
}

// Invalidated records one delivered shootdown invalidation. Any
// translation whose last insert predates this generation is stale if
// served afterwards.
func (c *Checker) Invalidated(inv vm.Invalidation) {
	c.stats.Invalidations++
	c.gen++
	if inv.FullFlush {
		c.ctxFlush[inv.Ctx] = c.gen
		return
	}
	c.invs[invKey{ctx: inv.Ctx, vpn: inv.VPN, size: inv.Size}] = c.gen
}

// FlushedAll records a global TLB flush (the storm's x86 context
// switch): every translation inserted before it is invalidated.
func (c *Checker) FlushedAll() {
	c.stats.Invalidations++
	c.gen++
	c.allFlush = c.gen
}

// invGen returns the latest invalidation generation covering key.
func (c *Checker) invGen(key invKey) uint64 {
	g := c.invs[key]
	if cg := c.ctxFlush[key.ctx]; cg > g {
		g = cg
	}
	if c.allFlush > g {
		g = c.allFlush
	}
	return g
}

// ---------------------------------------------------------------------
// End-of-run reconciliation.

// Committed verifies one thread's committed memory references against
// the workload length it was configured with, at the end of the run.
func (c *Checker) Committed(core int, committed, expected uint64) {
	if committed != expected {
		c.Violatef("commit: core %d committed %d references, workload length is %d",
			core, committed, expected)
	}
}
