package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nocstar/internal/system"
)

// smallConfig finishes in well under a second; seed varies the run so
// tests that must avoid dedup can diverge.
func smallConfig(seed int64) string {
	return fmt.Sprintf(`{
		"schema": 1, "org": "nocstar", "cores": 4,
		"apps": [{"workload": "gups", "threads": 4}],
		"instr_per_thread": 5000, "seed": %d
	}`, seed)
}

// endlessConfig would simulate for hours; only cancellation ends it.
func endlessConfig(seed int64) string {
	return fmt.Sprintf(`{
		"schema": 1, "org": "nocstar", "cores": 4,
		"apps": [{"workload": "gups", "threads": 4}],
		"instr_per_thread": 1099511627776, "seed": %d
	}`, seed)
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func postRun(t *testing.T, base, body string) (int, runStatus) {
	t.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st runStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return resp.StatusCode, st
}

func pollUntilTerminal(t *testing.T, base, id string) runStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st runStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jobState(st.State).terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in state %q", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitPollByteIdentical is the service's core contract: the
// result served over HTTP is byte-for-byte the marshaled Result of a
// direct in-process Run of the same config.
func TestSubmitPollByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body := smallConfig(1)

	cfg, err := system.UnmarshalConfig([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	code, st := postRun(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID)
	if final.State != string(stateDone) {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("HTTP result differs from direct run (%d vs %d bytes)", len(final.Result), len(want))
	}

	// Resubmission is a cache hit with the same bytes.
	code, again := postRun(t, ts.URL, body)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("resubmit: status %d cached=%v", code, again.Cached)
	}
	if !bytes.Equal(again.Result, want) {
		t.Fatal("cached result differs from direct run")
	}
}

// TestSubmitFabricConfig pushes the new fabric knobs through the full
// HTTP path: a torus-topology, annealed-placement distributed config
// must round-trip the decoder, simulate, and serve bytes identical to
// the direct run — and a config differing only in placement seed must
// occupy its own cache entry.
func TestSubmitFabricConfig(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	fabricConfig := func(placementSeed int64) string {
		return fmt.Sprintf(`{
		"schema": 3, "org": "distributed", "cores": 8,
		"topology": "torus", "placement": "annealed", "placement_seed": %d,
		"apps": [{"workload": "gups", "threads": 8}],
		"instr_per_thread": 5000, "seed": 1
	}`, placementSeed)
	}
	body := fabricConfig(4)

	cfg, err := system.UnmarshalConfig([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	code, st := postRun(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID)
	if final.State != string(stateDone) {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("HTTP result differs from direct run (%d vs %d bytes)", len(final.Result), len(want))
	}

	// A different placement seed is a different simulation, not a cache hit.
	code, other := postRun(t, ts.URL, fabricConfig(5))
	if code != http.StatusAccepted {
		t.Fatalf("distinct placement seed served from cache (status %d)", code)
	}
	if done := pollUntilTerminal(t, ts.URL, other.ID); done.State != string(stateDone) {
		t.Fatalf("seed-5 run ended %s: %s", done.State, done.Error)
	}
}

// TestConcurrentDuplicatesSingleflight hammers one config from many
// goroutines and checks exactly one simulation executed.
func TestConcurrentDuplicatesSingleflight(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 64})
	body := smallConfig(2)

	const clients = 16
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st runStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	// Every submission resolved to the same job (or a cache hit on it).
	final := pollUntilTerminal(t, ts.URL, ids[0])
	if final.State != string(stateDone) {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	for _, id := range ids {
		st := pollUntilTerminal(t, ts.URL, id)
		if !bytes.Equal(st.Result, final.Result) {
			t.Fatalf("job %s result differs", id)
		}
	}
	if got := srv.met.executed.Value(); got != 1 {
		t.Fatalf("%d clients caused %d executions, want 1", clients, got)
	}
}

// TestCancellation submits an effectively endless run and checks DELETE
// stops it promptly.
func TestCancellation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, st := postRun(t, ts.URL, endlessConfig(3))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	time.Sleep(100 * time.Millisecond) // let the worker get into the run

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	start := time.Now()
	final := pollUntilTerminal(t, ts.URL, st.ID)
	if final.State != string(stateCanceled) {
		t.Fatalf("run ended %s, want canceled", final.State)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunTimeout checks the ?timeout= deadline cancels a run on its own.
func TestRunTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, st := postRun(t, ts.URL+"", endlessConfig(4))
	_ = st
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// A second distinct endless run with a short deadline.
	resp, err := http.Post(ts.URL+"/v1/runs?timeout=200ms", "application/json",
		strings.NewReader(endlessConfig(5)))
	if err != nil {
		t.Fatal(err)
	}
	var timed runStatus
	if err := json.NewDecoder(resp.Body).Decode(&timed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Free the single worker so the timed run gets scheduled.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	final := pollUntilTerminal(t, ts.URL, timed.ID)
	if final.State != string(stateCanceled) {
		t.Fatalf("deadlined run ended %s (%s), want canceled", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", final.Error)
	}
}

// TestValidationErrors checks malformed and invalid configs map to 400
// with typed field errors.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// Invalid config: missing cores, zero threads.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"schema": 1, "org": "nocstar", "apps": [{"workload": "gups", "threads": 0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config: status %d, want 400", resp.StatusCode)
	}
	var se struct {
		Error  string              `json:"error"`
		Fields []system.FieldError `json:"fields"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&se); err != nil {
		t.Fatal(err)
	}
	fields := map[string]bool{}
	for _, f := range se.Fields {
		fields[f.Field] = true
	}
	if !fields["Cores"] || !fields["Apps[0].Threads"] {
		t.Fatalf("400 body missing typed field errors: %+v", se)
	}

	// Unknown field: decode-level rejection, still 400.
	resp2, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"org": "nocstar", "coars": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp2.StatusCode)
	}

	// Bad timeout parameter.
	resp3, err := http.Post(ts.URL+"/v1/runs?timeout=soon", "application/json",
		strings.NewReader(smallConfig(1)))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d, want 400", resp3.StatusCode)
	}
}

// TestQueueFull checks backpressure: with one worker and a one-slot
// queue, a burst of distinct long runs sees 429s.
func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	var accepted []string
	rejected := 0
	for seed := int64(10); seed < 15; seed++ {
		code, st := postRun(t, ts.URL, endlessConfig(seed))
		switch code {
		case http.StatusAccepted:
			accepted = append(accepted, st.ID)
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if len(accepted) == 0 || rejected == 0 {
		t.Fatalf("want a mix of accepted and 429, got %d accepted, %d rejected",
			len(accepted), rejected)
	}
	// Unblock the pool so Cleanup's drain does not wait on endless runs.
	for _, id := range accepted {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestEvents streams SSE frames and checks the stream replays the
// current state and closes on a terminal one.
func TestEvents(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, st := postRun(t, ts.URL, smallConfig(6))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var states []string
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev jobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		states = append(states, ev.State)
	}
	if len(states) == 0 {
		t.Fatal("no SSE frames received")
	}
	last := states[len(states)-1]
	if !jobState(last).terminal() {
		t.Fatalf("stream ended on non-terminal state %q (saw %v)", last, states)
	}
}

// TestReadEndpoints smokes the read-only surface.
func TestReadEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, tc := range []struct{ path, want string }{
		{"/healthz", `"status":"ok"`},
		{"/v1/workloads", "canneal"},
		{"/v1/experiments", "fig12"},
		{"/v1/runs", "[]"},
		{"/metrics", "nocstar_server_http_requests"},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", tc.path, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Fatalf("GET %s: body missing %q:\n%s", tc.path, tc.want, body)
		}
	}
	// Unknown run is a 404.
	resp, err := http.Get(ts.URL + "/v1/runs/run-999999-nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: status %d, want 404", resp.StatusCode)
	}
}

// TestCancelQueuedThenResubmit is the regression test for the stale
// singleflight entry: canceling a job still waiting in the queue must
// deregister its hash immediately, so an identical resubmission gets a
// fresh execution instead of being deduped onto the dead job and told
// "canceled" for a run it never canceled.
func TestCancelQueuedThenResubmit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	// Occupy the single worker so the next submission stays queued.
	code, blocker := postRun(t, ts.URL, endlessConfig(20))
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit: status %d", code)
	}
	time.Sleep(50 * time.Millisecond)

	victim := smallConfig(21)
	code, queued := postRun(t, ts.URL, victim)
	if code != http.StatusAccepted {
		t.Fatalf("victim submit: status %d", code)
	}
	// Cancel it while queued.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	// Resubmit the identical config: must be a fresh job, not a dedup
	// onto the canceled one.
	code, fresh := postRun(t, ts.URL, victim)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	if fresh.Deduped {
		t.Fatal("resubmission was deduped onto a canceled job")
	}
	if fresh.ID == queued.ID {
		t.Fatalf("resubmission returned the canceled job %s", fresh.ID)
	}

	// Free the worker; the fresh job must execute to done for real.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+blocker.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	final := pollUntilTerminal(t, ts.URL, fresh.ID)
	if final.State != string(stateDone) {
		t.Fatalf("resubmitted run ended %s: %s", final.State, final.Error)
	}
	if len(final.Result) == 0 {
		t.Fatal("resubmitted run has no result")
	}
}

// TestTerminalJobHistoryBounded is the regression test for unbounded
// registry growth: under sweep-replay traffic (every cache hit used to
// register a job forever), the registry must stay within the terminal
// history cap.
func TestTerminalJobHistoryBounded(t *testing.T) {
	const histCap = 8
	srv, ts := newTestServer(t, Options{Workers: 1, JobHistory: histCap})
	body := smallConfig(30)

	code, st := postRun(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if final := pollUntilTerminal(t, ts.URL, st.ID); final.State != string(stateDone) {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}

	// 10x the cap in cache-hit submissions.
	for i := 0; i < 10*histCap; i++ {
		code, hit := postRun(t, ts.URL, body)
		if code != http.StatusOK || !hit.Cached {
			t.Fatalf("submission %d: status %d cached=%v", i, code, hit.Cached)
		}
	}

	srv.mu.Lock()
	jobs, order := len(srv.jobs), len(srv.order)
	srv.mu.Unlock()
	if jobs > histCap || order > histCap {
		t.Fatalf("registry grew to %d jobs / %d order entries, cap %d", jobs, order, histCap)
	}
	if jobs == 0 {
		t.Fatal("history pruned everything")
	}
}

// TestHealthDraining is the regression test for the load-balancer trap:
// a draining node must fail its health check (503), not report 200 with
// a body the balancer never reads.
func TestHealthDraining(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy node: status %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining node: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"status":"draining"`) {
		t.Fatalf("draining body: %s", body)
	}
}

// TestShutdownDrains checks graceful shutdown finishes in-flight work
// and then refuses new submissions with 503.
func TestShutdownDrains(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, st := postRun(t, ts.URL, smallConfig(7))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The in-flight run completed rather than being killed.
	final := pollUntilTerminal(t, ts.URL, st.ID)
	if final.State != string(stateDone) {
		t.Fatalf("drained run ended %s: %s", final.State, final.Error)
	}

	// New work is refused.
	code, _ = postRun(t, ts.URL, smallConfig(8))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: status %d, want 503", code)
	}
}
