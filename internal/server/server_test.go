package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nocstar/client"
	"nocstar/internal/system"
)

// The e2e tests drive the server exclusively through the public typed
// client package, so every assertion here also exercises the client's
// encoding, error mapping, and streaming paths.

// smallConfig finishes in well under a second; seed varies the run so
// tests that must avoid dedup can diverge.
func smallConfig(seed int64) string {
	return fmt.Sprintf(`{
		"schema": 1, "org": "nocstar", "cores": 4,
		"apps": [{"workload": "gups", "threads": 4}],
		"instr_per_thread": 5000, "seed": %d
	}`, seed)
}

// endlessConfig would simulate for hours; only cancellation ends it.
func endlessConfig(seed int64) string {
	return fmt.Sprintf(`{
		"schema": 1, "org": "nocstar", "cores": 4,
		"apps": [{"workload": "gups", "threads": 4}],
		"instr_per_thread": 1099511627776, "seed": %d
	}`, seed)
}

func newTestServer(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, client.New(ts.URL)
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// mustCancel cancels a run, failing the test on transport errors.
func mustCancel(t *testing.T, c *client.Client, id string) {
	t.Helper()
	if _, err := c.Cancel(ctxT(t), id); err != nil {
		t.Fatalf("cancel %s: %v", id, err)
	}
}

// TestSubmitPollByteIdentical is the service's core contract: the
// result served over HTTP is byte-for-byte the marshaled Result of a
// direct in-process Run of the same config.
func TestSubmitPollByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := ctxT(t)
	body := smallConfig(1)

	cfg, err := system.UnmarshalConfig([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.SubmitRunJSON(ctx, []byte(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.Terminal() {
		t.Fatalf("fresh submission born terminal: %s", st.State)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("HTTP result differs from direct run (%d vs %d bytes)", len(final.Result), len(want))
	}

	// Resubmission is a cache hit with the same bytes.
	again, err := c.SubmitRunJSON(ctx, []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatalf("resubmit not served from cache: %+v", again)
	}
	if !bytes.Equal(again.Result, want) {
		t.Fatal("cached result differs from direct run")
	}

	// The typed decode round-trips too.
	var res system.Result
	if err := final.Decode(&res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
}

// TestSubmitFabricConfig pushes the fabric knobs through the full HTTP
// path: a torus-topology, annealed-placement distributed config must
// round-trip the decoder, simulate, and serve bytes identical to the
// direct run — and a config differing only in placement seed must
// occupy its own cache entry.
func TestSubmitFabricConfig(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := ctxT(t)
	fabricConfig := func(placementSeed int64) string {
		return fmt.Sprintf(`{
		"schema": 3, "org": "distributed", "cores": 8,
		"topology": "torus", "placement": "annealed", "placement_seed": %d,
		"apps": [{"workload": "gups", "threads": 8}],
		"instr_per_thread": 5000, "seed": 1
	}`, placementSeed)
	}
	body := fabricConfig(4)

	cfg, err := system.UnmarshalConfig([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.SubmitRunJSON(ctx, []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("HTTP result differs from direct run (%d vs %d bytes)", len(final.Result), len(want))
	}

	// A different placement seed is a different simulation, not a cache hit.
	other, err := c.SubmitRunJSON(ctx, []byte(fabricConfig(5)))
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Fatal("distinct placement seed served from cache")
	}
	if done, err := c.Wait(ctx, other.ID); err != nil || done.State != client.StateDone {
		t.Fatalf("seed-5 run: %v %+v", err, done)
	}
}

// TestConcurrentDuplicatesSingleflight hammers one config from many
// goroutines and checks exactly one simulation executed.
func TestConcurrentDuplicatesSingleflight(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 4, QueueDepth: 64})
	ctx := ctxT(t)
	body := []byte(smallConfig(2))

	const clients = 16
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitRunJSON(ctx, body)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	// Every submission resolved to the same job (or a cache hit on it).
	final, err := c.Wait(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	for _, id := range ids {
		st, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.Result, final.Result) {
			t.Fatalf("job %s result differs", id)
		}
	}
	if got := srv.met.executed.Value(); got != 1 {
		t.Fatalf("%d clients caused %d executions, want 1", clients, got)
	}
}

// TestCancellation submits an effectively endless run and checks Cancel
// stops it promptly.
func TestCancellation(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := ctxT(t)
	st, err := c.SubmitRunJSON(ctx, []byte(endlessConfig(3)))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the worker get into the run

	mustCancel(t, c, st.ID)
	start := time.Now()
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateCanceled {
		t.Fatalf("run ended %s, want canceled", final.State)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunTimeout checks the WithTimeout deadline cancels a run on its
// own.
func TestRunTimeout(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := ctxT(t)
	blocker, err := c.SubmitRunJSON(ctx, []byte(endlessConfig(4)))
	if err != nil {
		t.Fatal(err)
	}
	// A second distinct endless run with a short deadline.
	timed, err := c.SubmitRunJSON(ctx, []byte(endlessConfig(5)), client.WithTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	// Free the single worker so the timed run gets scheduled.
	mustCancel(t, c, blocker.ID)

	final, err := c.Wait(ctx, timed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateCanceled {
		t.Fatalf("deadlined run ended %s (%s), want canceled", final.State, final.Error)
	}
	if !bytes.Contains([]byte(final.Error), []byte("deadline")) {
		t.Fatalf("error %q does not mention the deadline", final.Error)
	}
}

// TestValidationErrors checks malformed and invalid configs map to the
// typed invalid_config error with per-field diagnoses.
func TestValidationErrors(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := ctxT(t)

	// Invalid config: missing cores, zero threads.
	_, err := c.SubmitRunJSON(ctx,
		[]byte(`{"schema": 1, "org": "nocstar", "apps": [{"workload": "gups", "threads": 0}]}`))
	if !errors.Is(err, client.ErrInvalidConfig) {
		t.Fatalf("invalid config error: %v, want ErrInvalidConfig", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T is not *client.APIError", err)
	}
	fields := map[string]bool{}
	for _, f := range apiErr.Fields {
		fields[f.Field] = true
	}
	if !fields["Cores"] || !fields["Apps[0].Threads"] {
		t.Fatalf("typed field errors missing: %+v", apiErr.Fields)
	}

	// Unknown field: decode-level rejection, still invalid_config.
	_, err = c.SubmitRunJSON(ctx, []byte(`{"org": "nocstar", "coars": 4}`))
	if !errors.Is(err, client.ErrInvalidConfig) {
		t.Fatalf("unknown field error: %v, want ErrInvalidConfig", err)
	}

	// Bad timeout parameter.
	_, err = c.SubmitRunJSON(ctx, []byte(smallConfig(1)), client.WithTimeout(-1*time.Second))
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("bad timeout error: %v, want ErrBadRequest", err)
	}
}

// TestQueueFull checks backpressure: with one worker and a one-slot
// queue, a burst of distinct long runs sees typed queue-full errors
// with Retry-After.
func TestQueueFull(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	ctx := ctxT(t)
	var accepted []string
	rejected := 0
	for seed := int64(10); seed < 15; seed++ {
		st, err := c.SubmitRunJSON(ctx, []byte(endlessConfig(seed)))
		switch {
		case err == nil:
			accepted = append(accepted, st.ID)
		case errors.Is(err, client.ErrQueueFull):
			rejected++
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.RetryAfter <= 0 {
				t.Fatalf("queue-full error missing Retry-After: %v", err)
			}
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if len(accepted) == 0 || rejected == 0 {
		t.Fatalf("want a mix of accepted and queue-full, got %d accepted, %d rejected",
			len(accepted), rejected)
	}
	// Unblock the pool so Cleanup's drain does not wait on endless runs.
	for _, id := range accepted {
		mustCancel(t, c, id)
	}
}

// TestEvents checks Wait's SSE path follows a live run to its terminal
// state (the client prefers the event stream and only falls back to
// polling when streaming is unavailable).
func TestEvents(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := ctxT(t)
	st, err := c.SubmitRunJSON(ctx, []byte(smallConfig(6)))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	if len(final.Result) == 0 {
		t.Fatal("terminal status has no result payload")
	}
}

// TestReadEndpoints smokes the read-only surface through the client.
func TestReadEndpoints(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := ctxT(t)

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v, %v", h, err)
	}
	if h.Node == "" || h.Members != 1 {
		t.Fatalf("health node identity missing: %+v", h)
	}

	wls, err := c.Workloads(ctx)
	if err != nil || len(wls) == 0 {
		t.Fatalf("workloads: %d, %v", len(wls), err)
	}
	seen := false
	for _, w := range wls {
		if w.Name == "canneal" {
			seen = true
		}
	}
	if !seen {
		t.Fatal("workload suite missing canneal")
	}

	exps, err := c.Experiments(ctx)
	if err != nil || len(exps) == 0 {
		t.Fatalf("experiments: %d, %v", len(exps), err)
	}

	runs, err := c.ListRuns(ctx)
	if err != nil || len(runs) != 0 {
		t.Fatalf("fresh server lists %d runs, %v", len(runs), err)
	}

	mets, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mets["nocstar_server_http_requests"]; !ok {
		t.Fatalf("metrics missing request counter: %d samples", len(mets))
	}

	// Unknown run is a typed not-found.
	if _, err := c.GetRun(ctx, "run-999999-nope"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown run error: %v, want ErrNotFound", err)
	}
}

// TestClusterEndpointSingleNode: /v1/cluster answers on an unclustered
// node with a synthesized one-member view and a self-owned preview, so
// the endpoint's shape is uniform for tooling.
func TestClusterEndpointSingleNode(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := ctxT(t)
	info, err := c.Cluster(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.View.Nodes) != 1 || info.View.Nodes[0].State != "alive" {
		t.Fatalf("single-node view: %+v", info.View)
	}
	if info.Ownership != nil {
		t.Fatal("unrequested ownership preview present")
	}

	withOwner, err := c.Cluster(ctx, "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if withOwner.Ownership == nil || withOwner.Ownership.Owner.ID != info.View.Self {
		t.Fatalf("ownership preview: %+v", withOwner.Ownership)
	}

	// A malformed hash is a typed bad request.
	if _, err := c.Cluster(ctx, "NOT-HEX"); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("bad hash error: %v, want ErrBadRequest", err)
	}
}

// TestCancelQueuedThenResubmit is the regression test for the stale
// singleflight entry: canceling a job still waiting in the queue must
// deregister its hash immediately, so an identical resubmission gets a
// fresh execution instead of being deduped onto the dead job and told
// "canceled" for a run it never canceled.
func TestCancelQueuedThenResubmit(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)

	// Occupy the single worker so the next submission stays queued.
	blocker, err := c.SubmitRunJSON(ctx, []byte(endlessConfig(20)))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	victim := []byte(smallConfig(21))
	queued, err := c.SubmitRunJSON(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel it while queued.
	mustCancel(t, c, queued.ID)

	// Resubmit the identical config: must be a fresh job, not a dedup
	// onto the canceled one.
	fresh, err := c.SubmitRunJSON(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Deduped {
		t.Fatal("resubmission was deduped onto a canceled job")
	}
	if fresh.ID == queued.ID {
		t.Fatalf("resubmission returned the canceled job %s", fresh.ID)
	}

	// Free the worker; the fresh job must execute to done for real.
	mustCancel(t, c, blocker.ID)
	final, err := c.Wait(ctx, fresh.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("resubmitted run ended %s: %s", final.State, final.Error)
	}
	if len(final.Result) == 0 {
		t.Fatal("resubmitted run has no result")
	}
}

// TestTerminalJobHistoryBounded is the regression test for unbounded
// registry growth: under sweep-replay traffic (every cache hit used to
// register a job forever), the registry must stay within the terminal
// history cap.
func TestTerminalJobHistoryBounded(t *testing.T) {
	const histCap = 8
	srv, c := newTestServer(t, Options{Workers: 1, JobHistory: histCap})
	ctx := ctxT(t)
	body := []byte(smallConfig(30))

	st, err := c.SubmitRunJSON(ctx, body)
	if err != nil {
		t.Fatal(err)
	}
	if final, err := c.Wait(ctx, st.ID); err != nil || final.State != client.StateDone {
		t.Fatalf("run: %v %+v", err, final)
	}

	// 10x the cap in cache-hit submissions.
	for i := 0; i < 10*histCap; i++ {
		hit, err := c.SubmitRunJSON(ctx, body)
		if err != nil || !hit.Cached {
			t.Fatalf("submission %d: %v cached=%v", i, err, hit.Cached)
		}
	}

	srv.mu.Lock()
	jobs, order := len(srv.jobs), len(srv.order)
	srv.mu.Unlock()
	if jobs > histCap || order > histCap {
		t.Fatalf("registry grew to %d jobs / %d order entries, cap %d", jobs, order, histCap)
	}
	if jobs == 0 {
		t.Fatal("history pruned everything")
	}
}

// TestHealthDraining is the regression test for the load-balancer trap:
// a draining node must fail its health check (503), not report 200 with
// a body the balancer never reads.
func TestHealthDraining(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := ctxT(t)

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthy node: %+v, %v", h, err)
	}

	sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err == nil {
		t.Fatal("draining node passed its health check")
	}
	if h.Status != "draining" {
		t.Fatalf("draining body: %+v", h)
	}
}

// TestShutdownDrains checks graceful shutdown finishes in-flight work
// and then refuses new submissions with the typed draining error.
func TestShutdownDrains(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := ctxT(t)

	st, err := c.SubmitRunJSON(ctx, []byte(smallConfig(7)))
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The in-flight run completed rather than being killed.
	final, err := c.GetRun(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("drained run ended %s: %s", final.State, final.Error)
	}

	// New work is refused.
	if _, err := c.SubmitRunJSON(ctx, []byte(smallConfig(8))); !errors.Is(err, client.ErrDraining) {
		t.Fatalf("post-shutdown submit: %v, want ErrDraining", err)
	}
}
