package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"nocstar/internal/system"
)

// jobState is one station of the job lifecycle:
//
//	queued -> running -> done | failed | canceled
//
// Cache-served jobs are born done (Cached set). State only ever moves
// forward; done/failed/canceled are terminal.
type jobState string

const (
	stateQueued   jobState = "queued"
	stateRunning  jobState = "running"
	stateDone     jobState = "done"
	stateFailed   jobState = "failed"
	stateCanceled jobState = "canceled"
)

func (s jobState) terminal() bool {
	return s == stateDone || s == stateFailed || s == stateCanceled
}

// jobEvent is one SSE progress message.
type jobEvent struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// job is one accepted simulation request.
type job struct {
	id   string
	node string // minting node's cluster ID
	hash string
	cfg  system.Config
	// timeout is the effective run deadline the job was created with,
	// forwarded verbatim when the job is proxied to its owning peer.
	timeout time.Duration

	// ctx governs the execution (server base context plus the request's
	// deadline); cancel releases it and is also the DELETE handler's
	// lever.
	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu     sync.Mutex
	state  jobState
	cached bool
	errMsg string
	// result holds json.Marshal(system.Result) for done jobs — the exact
	// bytes a direct in-process Run of the same Config marshals to, and
	// what the LRU cache stores.
	result json.RawMessage
	subs   []chan jobEvent
}

// runStatus is the wire form of a job, served by POST /v1/runs and
// GET /v1/runs/{id}. Result embeds the marshaled Result verbatim
// (json.RawMessage), preserving byte identity with a direct Run.
type runStatus struct {
	ID         string          `json:"id"`
	State      string          `json:"state"`
	ConfigHash string          `json:"config_hash"`
	Node       string          `json:"node,omitempty"`
	Cached     bool            `json:"cached,omitempty"`
	Deduped    bool            `json:"deduped,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// status snapshots the job for a response. withResult false elides the
// (large) result payload, for listings.
func (j *job) status(withResult bool) runStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := runStatus{
		ID:         j.id,
		State:      string(j.state),
		ConfigHash: j.hash,
		Node:       j.node,
		Cached:     j.cached,
		Error:      j.errMsg,
	}
	if withResult {
		st.Result = j.result
	}
	return st
}

// terminal reports whether the job has reached a terminal state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal()
}

// event snapshots the job as an SSE progress message.
func (j *job) event() jobEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobEvent{ID: j.id, State: string(j.state), Error: j.errMsg}
}

// setState advances the lifecycle and notifies subscribers. result and
// errMsg apply to terminal states; done is closed on the first terminal
// transition. Calls after a terminal state are ignored (a DELETE racing
// completion must not resurrect the job).
func (j *job) setState(state jobState, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	ev := jobEvent{ID: j.id, State: string(state), Error: errMsg}
	subs := make([]chan jobEvent, len(j.subs))
	copy(subs, j.subs)
	j.mu.Unlock()
	if state.terminal() {
		close(j.done)
	}
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // slow subscriber: it will catch the terminal state via done
		}
	}
}

// subscribe registers an SSE listener and returns its channel plus the
// current state to replay first.
func (j *job) subscribe() (chan jobEvent, jobEvent) {
	ch := make(chan jobEvent, 8)
	j.mu.Lock()
	cur := jobEvent{ID: j.id, State: string(j.state), Error: j.errMsg}
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	return ch, cur
}

// unsubscribe removes an SSE listener.
func (j *job) unsubscribe(ch chan jobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, c := range j.subs {
		if c == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}
