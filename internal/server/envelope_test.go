package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestErrorEnvelopeGolden pins the unified error envelope: the exact
// bytes of a validation failure (code, message, per-field diagnoses)
// against testdata/error_envelope.golden.json, and the schema shape of
// every other error class. The envelope is public API surface — the
// typed client and external tooling branch on it — so any change here
// must be deliberate. Regenerate with -update.
func TestErrorEnvelopeGolden(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"schema": 1, "org": "nocstar", "apps": [{"workload": "gups", "threads": 0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	got = bytes.TrimSpace(got)

	golden := filepath.Join("testdata", "error_envelope.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (set UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(got, bytes.TrimSpace(want)) {
		t.Fatalf("error envelope drifted from golden:\n got: %s\nwant: %s", got, bytes.TrimSpace(want))
	}

	// Every other error class conforms to the same schema: a single
	// top-level "error" object with non-empty code and message.
	for _, tc := range []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode string
		status   int
	}{
		{"not_found", http.MethodGet, "/v1/runs/run-999999-nope", "", "not_found", 404},
		{"bad_request", http.MethodPost, "/v1/sweeps", `{"not":"an array"}`, "bad_request", 400},
		{"bad_hash", http.MethodGet, "/v1/cluster?hash=XYZ", "", "bad_request", 400},
		{"invalid_config", http.MethodPost, "/v1/runs", `{"org":"nocstar","coars":4}`, "invalid_config", 400},
	} {
		var rd io.Reader
		if tc.body != "" {
			rd = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s: non-JSON error body %s", tc.name, raw)
		}
		if len(doc) != 1 {
			t.Fatalf("%s: envelope has %d top-level keys, want exactly {error}: %s", tc.name, len(doc), raw)
		}
		var inner struct {
			Code    string          `json:"code"`
			Message string          `json:"message"`
			Fields  json.RawMessage `json:"fields"`
		}
		if err := json.Unmarshal(doc["error"], &inner); err != nil {
			t.Fatalf("%s: malformed error object: %s", tc.name, raw)
		}
		if inner.Code != tc.wantCode || inner.Message == "" {
			t.Fatalf("%s: code %q message %q, want code %q and a message", tc.name, inner.Code, inner.Message, tc.wantCode)
		}
	}
}
