package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Consistent-hash work sharding. With a static peer list, every
// canonical config hash has exactly one owner under rendezvous (HRW)
// hashing: the peer whose (peer, hash) digest is highest. Rendezvous
// hashing needs no ring state, and removing or adding one peer only
// remaps the hashes that peer owned — the rest of the design space
// stays put, and the content-addressed store makes any remapped hash a
// cache hit anyway. A submission landing on a non-owner is mirrored
// into a local proxy job that forwards to the owner and tracks the
// remote run, so clients interact with any node uniformly; an
// unreachable owner degrades to local execution.

// forwardHeader marks a request already forwarded by a peer. A
// forwarded submission always resolves locally, bounding proxy chains
// at one hop even when peers disagree about the peer list.
const forwardHeader = "X-Nocstar-Forwarded"

// isForwarded reports whether a peer forwarded this request.
func isForwarded(r *http.Request) bool { return r.Header.Get(forwardHeader) != "" }

// owner returns the peer base URL owning hash, or "" when this node
// owns it (or sharding is disabled).
func (s *Server) owner(hash string) string {
	if len(s.peers) == 0 {
		return ""
	}
	best, bestScore := "", uint64(0)
	for _, p := range s.peers {
		h := fnv.New64a()
		io.WriteString(h, p)
		h.Write([]byte{0})
		io.WriteString(h, hash)
		score := h.Sum64()
		// Ties break toward the lexically smaller peer so every node
		// computes the same owner.
		if best == "" || score > bestScore || (score == bestScore && p < best) {
			best, bestScore = p, score
		}
	}
	if best == s.self {
		return ""
	}
	return best
}

// proxyPollInterval paces status polls against the owning peer.
const proxyPollInterval = 50 * time.Millisecond

// proxyClient is the HTTP client for peer traffic: connection reuse,
// but a bounded per-call timeout so a hung peer degrades to local
// execution instead of wedging the proxy job.
var proxyClient = &http.Client{Timeout: 30 * time.Second}

// proxyJob mirrors j onto its owning peer: the config is forwarded,
// the remote run polled to a terminal state, and the outcome — result
// bytes included, so they enter this node's store too — copied onto
// the local job. Any transport-level failure falls back to executing
// locally on the shared pool, so a dead peer costs latency, never
// availability. Cancellation of the local job (DELETE, deadline,
// shutdown) is relayed to the owner best-effort.
func (s *Server) proxyJob(j *job, owner string) {
	j.setState(stateRunning, nil, "")
	st, err := s.proxyRemote(j, owner)
	if err == nil {
		s.finishJob(j, jobState(st.State), st.Result, st.Error)
		return
	}
	if j.ctx.Err() != nil || j.terminal() {
		// Canceled while proxying: nothing left to fall back for.
		s.finishJob(j, stateCanceled, nil, "canceled by request")
		return
	}
	s.met.proxyFallbck.Inc()
	s.execJob(j)
}

// proxyRemote submits j's config to owner and follows the remote run to
// a terminal status. Errors mean "owner unreachable or unusable" and
// select the local fallback; a remote terminal status (even failed or
// canceled) is returned as-is.
func (s *Server) proxyRemote(j *job, owner string) (runStatus, error) {
	body, err := j.cfg.MarshalCanonical()
	if err != nil {
		return runStatus{}, err
	}
	submitURL := owner + "/v1/runs"
	if j.timeout > 0 {
		submitURL += "?timeout=" + url.QueryEscape(j.timeout.String())
	}
	st, code, err := s.proxyRequest(j.ctx, http.MethodPost, submitURL, body)
	if err != nil {
		return runStatus{}, err
	}
	switch code {
	case http.StatusOK, http.StatusAccepted:
	default:
		// 429/503/4xx from the owner: treat as unavailable for this
		// hash and run locally.
		return runStatus{}, fmt.Errorf("owner %s refused submission: status %d", owner, code)
	}
	for !jobState(st.State).terminal() {
		select {
		case <-j.ctx.Done():
			// Relay the cancellation so the owner stops simulating, on a
			// fresh context (ours is the one that died).
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			req, err := http.NewRequestWithContext(ctx, http.MethodDelete, owner+"/v1/runs/"+st.ID, nil)
			if err == nil {
				req.Header.Set(forwardHeader, s.self)
				if resp, err := proxyClient.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			cancel()
			return runStatus{State: string(stateCanceled), Error: "canceled by request"}, nil
		case <-time.After(proxyPollInterval):
		}
		st, code, err = s.proxyRequest(j.ctx, http.MethodGet, owner+"/v1/runs/"+st.ID, nil)
		if err != nil {
			return runStatus{}, err
		}
		if code != http.StatusOK {
			return runStatus{}, fmt.Errorf("owner %s lost run %s: status %d", owner, st.ID, code)
		}
	}
	return st, nil
}

// proxyRequest performs one peer call and decodes the runStatus body.
func (s *Server) proxyRequest(ctx context.Context, method, url string, body []byte) (runStatus, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return runStatus{}, 0, err
	}
	req.Header.Set(forwardHeader, s.self)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := proxyClient.Do(req)
	if err != nil {
		return runStatus{}, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return runStatus{}, 0, err
	}
	var st runStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			return runStatus{}, 0, fmt.Errorf("decoding peer response: %w", err)
		}
	}
	return st, resp.StatusCode, nil
}
