package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"nocstar/internal/cluster"
)

// Consistent-hash work sharding over dynamic membership. Every
// canonical config hash has exactly one owner under rendezvous (HRW)
// hashing computed over the *live* members of the current view
// (internal/cluster), so ownership recomputes on join/leave.
// Rendezvous hashing needs no ring state, and removing or adding one
// node only remaps the hashes that node owned — the rest of the design
// space stays put, and the content-addressed store makes any remapped
// hash a cache hit anyway. A submission landing on a non-owner is
// mirrored into a local proxy job that forwards to the owner and
// tracks the remote run, so clients interact with any node uniformly.
// When the owner becomes unreachable mid-flight, the job hands off to
// the next live node in HRW order — checking the local store first, in
// case the owner's write-behind replica already landed — and only then
// degrades to local execution. Either way the execution is counted;
// never silently duplicated.

// forwardHeader marks a request already forwarded by a peer. Its value
// is "<senderID> <senderViewVersion> <hops>": the sender's cluster ID,
// the membership view version it routed with, and how many forwarding
// hops the request has taken. A receiver whose view is strictly newer
// than the sender's may re-resolve ownership once (hops 1 -> 2);
// hops >= 2 always resolves locally, bounding proxy chains even when
// views disagree.
const forwardHeader = "X-Nocstar-Forwarded"

// forwardInfo is the parsed forwardHeader.
type forwardInfo struct {
	forwarded bool
	senderID  string
	version   uint64
	hops      int
}

// parseForward decodes the forward header. A malformed value is
// treated as an exhausted forward (hops 2): resolve locally rather
// than risk a proxy loop with a peer speaking a different dialect.
func parseForward(r *http.Request) forwardInfo {
	v := r.Header.Get(forwardHeader)
	if v == "" {
		return forwardInfo{}
	}
	parts := strings.Fields(v)
	if len(parts) != 3 {
		return forwardInfo{forwarded: true, hops: 2}
	}
	ver, err1 := strconv.ParseUint(parts[1], 10, 64)
	hops, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || hops < 1 {
		return forwardInfo{forwarded: true, hops: 2}
	}
	return forwardInfo{forwarded: true, senderID: parts[0], version: ver, hops: hops}
}

// forwardValue renders the header this node attaches when proxying
// with the given hop count.
func (s *Server) forwardValue(hops int) string {
	var ver uint64
	if s.clu != nil {
		ver = s.clu.Version()
	}
	return fmt.Sprintf("%s %d %d", s.nodeID, ver, hops)
}

// proxyTarget is one routing decision: the node to forward to and the
// hop count to stamp on the forwarded request.
type proxyTarget struct {
	node cluster.Node
	hops int
}

// route decides where a validated hash executes. Returns remote=false
// for local execution. For first-hand submissions the target is the
// HRW owner (or, when allowSpill is set and the gossiped view shows
// the owner's queue saturated, its first less-loaded successor, with
// hops exhausted so the successor runs it rather than bouncing it back
// to the owner). For forwarded submissions the default is local — the
// one-hop bound — except that a receiver with a strictly newer view
// than the sender may re-resolve once: if its view names a third node
// as owner (ownership moved mid-flight), the request follows the move
// instead of being executed by a node that no longer owns the hash.
func (s *Server) route(hash string, fwd forwardInfo, allowSpill bool) (proxyTarget, bool) {
	if s.clu == nil {
		return proxyTarget{}, false
	}
	self := s.clu.SelfID()
	if fwd.forwarded {
		if fwd.hops >= 2 {
			return proxyTarget{}, false
		}
		if s.clu.Version() <= fwd.version {
			return proxyTarget{}, false
		}
		owner, ok := s.clu.Owner(hash)
		if !ok || owner.ID == self || owner.ID == fwd.senderID {
			return proxyTarget{}, false
		}
		s.met.reresolved.Inc()
		return proxyTarget{node: owner, hops: fwd.hops + 1}, true
	}
	owner, ok := s.clu.Owner(hash)
	if !ok || owner.ID == self {
		return proxyTarget{}, false
	}
	if allowSpill && owner.QueueCap > 0 && owner.QueueDepth >= owner.QueueCap {
		for _, succ := range s.clu.Successors(hash, s.opts.Replicas+1) {
			if succ.QueueCap > 0 && succ.QueueDepth >= succ.QueueCap {
				continue
			}
			s.met.sweepSpilled.Inc()
			if succ.ID == self {
				return proxyTarget{}, false
			}
			// Hops exhausted: the successor must run the leg itself, not
			// route it back to the owner we are spilling away from.
			return proxyTarget{node: succ, hops: 2}, true
		}
	}
	return proxyTarget{node: owner, hops: 1}, true
}

// proxyPollInterval paces status polls against the owning peer.
const proxyPollInterval = 50 * time.Millisecond

// proxyClient is the HTTP client for peer traffic: connection reuse,
// but a bounded per-call timeout so a hung peer degrades to handoff
// instead of wedging the proxy job.
var proxyClient = &http.Client{Timeout: 30 * time.Second}

// proxyJob mirrors j onto target: the config is forwarded, the remote
// run polled to a terminal state, and the outcome — result bytes
// included, so they enter this node's store too — copied onto the
// local job. When the target becomes unreachable the job hands off:
// first the local store is consulted (the owner's write-behind replica
// may already hold the result — zero re-executions), then ownership is
// re-resolved against the membership view (the failure report demotes
// the dead node) and the run forwarded to the new owner; only when no
// untried live owner remains does the job fall back to local
// execution. Every path is counted. Cancellation of the local job
// (DELETE, deadline, shutdown) is relayed to the remote best-effort.
func (s *Server) proxyJob(j *job, target proxyTarget) {
	j.setState(stateRunning, nil, "")
	st, err := s.proxyRemote(j, target)
	if err == nil {
		s.finishProxied(j, jobState(st.State), st.Result, st.Error, st.Cached)
		return
	}
	if j.ctx.Err() != nil || j.terminal() {
		// Canceled while proxying: nothing left to hand off for.
		s.finishProxied(j, stateCanceled, nil, "canceled by request", false)
		return
	}
	// Handoff step 1: the owner's write-behind replica may have landed
	// here before the owner died. Serving it re-executes nothing.
	if res, ok := s.results.Get(j.hash); ok {
		s.met.proxyHandoff.Inc()
		s.finishProxied(j, stateDone, res, "", true)
		return
	}
	// Step 2: report the failure so ownership routes around the dead
	// node immediately, then re-resolve.
	s.clu.ReportFailure(target.node.ID)
	if owner, ok := s.clu.Owner(j.hash); ok && owner.ID != s.clu.SelfID() && owner.ID != target.node.ID {
		s.met.proxyHandoff.Inc()
		// Hops exhausted: our view already demoted the dead node, but
		// the new owner's may not have yet — it must run the job, not
		// bounce it back toward the corpse.
		st, err = s.proxyRemote(j, proxyTarget{node: owner, hops: 2})
		if err == nil {
			s.finishProxied(j, jobState(st.State), st.Result, st.Error, st.Cached)
			return
		}
		if j.ctx.Err() != nil || j.terminal() {
			s.finishProxied(j, stateCanceled, nil, "canceled by request", false)
			return
		}
		s.clu.ReportFailure(owner.ID)
	}
	// Step 3: last resort — run it here. Counted, never silent.
	s.met.proxyFallbck.Inc()
	s.execJob(j)
}

// finishProxied finishes a proxy job. A done result enters the local
// store (copy-on-proxy), but is not re-replicated: the executing node
// already pushed it to the hash's successors.
func (s *Server) finishProxied(j *job, state jobState, result json.RawMessage, msg string, cached bool) {
	s.unregisterInflight(j)
	if state == stateDone {
		if err := s.results.Put(j.hash, result); err != nil {
			s.met.storeErrors.Inc()
		}
	}
	if cached {
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
	}
	j.setState(state, result, msg)
	switch state {
	case stateDone:
		s.met.completed.Inc()
	case stateCanceled:
		s.met.canceledRun.Inc()
	default:
		s.met.failed.Inc()
	}
}

// proxyRemote submits j's config to target and follows the remote run
// to a terminal status. Errors mean "target unreachable or unusable"
// and select handoff; a remote terminal status (even failed or
// canceled) is returned as-is.
func (s *Server) proxyRemote(j *job, target proxyTarget) (runStatus, error) {
	body, err := j.cfg.MarshalCanonical()
	if err != nil {
		return runStatus{}, err
	}
	addr := target.node.Addr
	submitURL := addr + "/v1/runs"
	if j.timeout > 0 {
		submitURL += "?timeout=" + url.QueryEscape(j.timeout.String())
	}
	fwd := s.forwardValue(target.hops)
	st, code, err := s.proxyRequest(j.ctx, http.MethodPost, submitURL, body, fwd)
	if err != nil {
		return runStatus{}, err
	}
	switch code {
	case http.StatusOK, http.StatusAccepted:
	default:
		// 429/503/4xx from the target: treat as unavailable for this
		// hash and let the handoff path decide.
		return runStatus{}, fmt.Errorf("peer %s refused submission: status %d", addr, code)
	}
	for !jobState(st.State).terminal() {
		select {
		case <-j.ctx.Done():
			// Relay the cancellation so the remote stops simulating, on a
			// fresh context (ours is the one that died).
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			req, err := http.NewRequestWithContext(ctx, http.MethodDelete, addr+"/v1/runs/"+st.ID, nil)
			if err == nil {
				req.Header.Set(forwardHeader, s.forwardValue(2))
				if resp, err := proxyClient.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			cancel()
			return runStatus{State: string(stateCanceled), Error: "canceled by request"}, nil
		case <-time.After(proxyPollInterval):
		}
		st, code, err = s.proxyRequest(j.ctx, http.MethodGet, addr+"/v1/runs/"+st.ID, nil, s.forwardValue(2))
		if err != nil {
			return runStatus{}, err
		}
		if code != http.StatusOK {
			return runStatus{}, fmt.Errorf("peer %s lost run %s: status %d", addr, st.ID, code)
		}
	}
	return st, nil
}

// proxyRequest performs one peer call and decodes the runStatus body.
func (s *Server) proxyRequest(ctx context.Context, method, url string, body []byte, fwd string) (runStatus, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return runStatus{}, 0, err
	}
	req.Header.Set(forwardHeader, fwd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := proxyClient.Do(req)
	if err != nil {
		return runStatus{}, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return runStatus{}, 0, err
	}
	var st runStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			return runStatus{}, 0, fmt.Errorf("decoding peer response: %w", err)
		}
	}
	return st, resp.StatusCode, nil
}
