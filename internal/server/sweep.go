package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"nocstar/internal/system"
)

// POST /v1/sweeps accepts a JSON array of configs — a whole design-space
// sweep in one request — validates every element up front (any invalid
// config fails the whole batch with a 400 naming its index, before a
// byte of the stream is committed), then fans the batch through the
// same acquire path as single submissions: store hits are served
// instantly, duplicates singleflight, peer-owned hashes proxy (with
// legs spilling from saturated owners to their HRW successors), the
// rest flow through the bounded queue (a full queue backpressures the
// sweep instead of rejecting it). In a cluster the sweep is
// admission-controlled first: the queue depths gossiped in heartbeats
// say how much work the cluster already holds, and a sweep that would
// push the aggregate past the budget is rejected with 429 and
// Retry-After before any leg is committed. Results stream back as SSE
// "result" events in completion order, each embedding the raw
// marshaled Result — byte-identical to a direct system.Run — and a
// terminal "summary" event closes the stream.

// maxSweepConfigs bounds one sweep request; larger design spaces are
// split by the client.
const maxSweepConfigs = 4096

// sweepResult is one SSE "result" frame: the terminal status of the
// sweep element at Index.
type sweepResult struct {
	Index      int             `json:"index"`
	ID         string          `json:"id"`
	ConfigHash string          `json:"config_hash"`
	State      string          `json:"state"`
	Cached     bool            `json:"cached,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// sweepSummary is the terminal SSE "summary" frame.
type sweepSummary struct {
	Total     int `json:"total"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	CacheHits int `json:"cache_hits"`
	// Unsubmitted counts configs never acquired: the server began
	// draining, or the client went away, mid-sweep.
	Unsubmitted int `json:"unsubmitted,omitempty"`
}

// admitSweep applies the cluster-wide sweep budget: the gossiped queue
// depths plus this sweep's size must fit Options.ClusterQueueBudget
// (default: the live members' summed queue capacities). Store hits
// consume no queue slot, but counting them keeps admission cheap and
// conservative. Forwarded sweeps are exempt — the first-hop node
// already admitted them.
func (s *Server) admitSweep(n int, fwd forwardInfo) bool {
	if s.clu == nil || fwd.forwarded {
		return true
	}
	depth, capSum := s.clu.Load()
	budget := s.opts.ClusterQueueBudget
	if budget <= 0 {
		budget = capSum
	}
	if budget <= 0 {
		return true
	}
	return depth+n <= budget
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(body, &raws); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "want a JSON array of config objects")
		return
	}
	if len(raws) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty sweep")
		return
	}
	if len(raws) > maxSweepConfigs {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("sweep of %d configs exceeds the %d-config limit", len(raws), maxSweepConfigs))
		return
	}
	timeout, err := s.parseTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	fwd := parseForward(r)
	if !s.admitSweep(len(raws), fwd) {
		s.met.sweepBounced.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("sweep of %d configs exceeds the cluster queue budget; retry later", len(raws)))
		return
	}
	// Validate the whole batch before committing the response status:
	// SSE cannot report a 400 once streaming has begun.
	cfgs := make([]system.Config, len(raws))
	hashes := make([]string, len(raws))
	for i, raw := range raws {
		cfg, err := system.UnmarshalConfig(raw)
		if err != nil {
			s.met.invalid.Inc()
			writeError(w, http.StatusBadRequest, codeInvalidConfig, fmt.Sprintf("config[%d]: %v", i, err))
			return
		}
		if err := cfg.Validate(); err != nil {
			s.met.invalid.Inc()
			msg := fmt.Sprintf("config[%d]: invalid", i)
			var fields []system.FieldError
			var ve *system.ValidationError
			if errors.As(err, &ve) {
				fields = ve.Fields
			} else {
				msg = fmt.Sprintf("config[%d]: %v", i, err)
			}
			writeErrorFields(w, http.StatusBadRequest, codeInvalidConfig, msg, fields)
			return
		}
		hash, err := cfg.CanonicalHash()
		if err != nil {
			s.met.invalid.Inc()
			writeError(w, http.StatusBadRequest, codeInvalidConfig, fmt.Sprintf("config[%d]: %v", i, err))
			return
		}
		cfgs[i], hashes[i] = cfg, hash
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal, "streaming unsupported")
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	s.met.sweepConfigs.Add(uint64(len(cfgs)))

	// Acquire every config. Legs may spill from a saturated owner to
	// its successors (first-hand sweeps only; a forwarded leg stays
	// put). A full local queue backpressures (retry until a slot frees)
	// rather than failing the sweep; draining or a gone client abandons
	// the remainder.
	jobs := make([]*job, len(cfgs))
	summary := sweepSummary{Total: len(cfgs)}
acquire:
	for i := range cfgs {
		for {
			j, how, err := s.acquire(cfgs[i], hashes[i], timeout, fwd, !fwd.forwarded)
			switch {
			case err == nil:
				jobs[i] = j
				if how == acqCached {
					summary.CacheHits++
				}
			case errors.Is(err, errQueueFull):
				select {
				case <-time.After(10 * time.Millisecond):
					continue
				case <-r.Context().Done():
					break acquire
				}
			default: // draining
				break acquire
			}
			break
		}
	}

	// Stream terminal results in completion order.
	completed := make(chan int, len(jobs))
	watching := 0
	for i, j := range jobs {
		if j == nil {
			summary.Unsubmitted++
			continue
		}
		watching++
		go func(i int, done <-chan struct{}) {
			select {
			case <-done:
				completed <- i
			case <-r.Context().Done():
			}
		}(i, j.done)
	}
stream:
	for n := 0; n < watching; n++ {
		select {
		case i := <-completed:
			st := jobs[i].status(true)
			switch jobState(st.State) {
			case stateDone:
				summary.Done++
			case stateCanceled:
				summary.Canceled++
			default:
				summary.Failed++
			}
			ev := sweepResult{
				Index:      i,
				ID:         st.ID,
				ConfigHash: st.ConfigHash,
				State:      st.State,
				Cached:     st.Cached,
				Error:      st.Error,
				Result:     st.Result,
			}
			if writeSSE(w, "result", ev) != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			break stream
		}
	}
	writeSSE(w, "summary", summary)
	flusher.Flush()
}

// writeSSE emits one named SSE frame, reporting marshal and write
// failures so the stream terminates instead of silently dropping data.
func writeSSE(w io.Writer, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("marshaling %s event: %w", event, err)
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}
