package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"nocstar/internal/cluster"
)

// Cluster-facing plumbing for the serve tier: the /v1/cluster
// introspection endpoint, write-behind result replication, and the
// shared job namespace — resolving /v1/runs/{id} requests whose ID was
// minted by another node, by serving from the replicated store or
// proxying to the live minting node.

// clusterOwnership is the ?hash= ownership preview in a /v1/cluster
// response.
type clusterOwnership struct {
	Hash       string         `json:"hash"`
	Owner      cluster.Node   `json:"owner"`
	Successors []cluster.Node `json:"successors,omitempty"`
}

// clusterInfo is the GET /v1/cluster response document.
type clusterInfo struct {
	View      cluster.View      `json:"view"`
	Ownership *clusterOwnership `json:"ownership,omitempty"`
}

// clusterView snapshots the membership, synthesizing a single-node
// view when clustering is disabled so the endpoint's shape is uniform.
func (s *Server) clusterView() cluster.View {
	if s.clu != nil {
		return s.clu.View()
	}
	return cluster.View{
		Self: s.nodeID,
		Nodes: []cluster.Node{{
			ID:           s.nodeID,
			Addr:         s.self,
			Epoch:        s.epoch,
			State:        cluster.StateAlive,
			QueueDepth:   len(s.queue),
			QueueCap:     s.opts.QueueDepth,
			StoreEntries: s.results.Len(),
		}},
	}
}

// handleCluster serves the membership view, and with ?hash= an
// ownership preview: the HRW owner and replication successors the
// current view assigns that canonical hash.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	info := clusterInfo{View: s.clusterView()}
	if hash := r.URL.Query().Get("hash"); hash != "" {
		if !validHexHash(hash) {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Sprintf("bad hash %q: want 4-128 lowercase hex characters", hash))
			return
		}
		own := &clusterOwnership{Hash: hash}
		if s.clu != nil {
			owner, ok := s.clu.Owner(hash)
			if !ok {
				writeError(w, http.StatusServiceUnavailable, codeInternal, "no live members")
				return
			}
			own.Owner = owner
			own.Successors = s.clu.Successors(hash, s.opts.Replicas)
		} else {
			own.Owner = info.View.Nodes[0]
		}
		info.Ownership = own
	}
	writeJSON(w, http.StatusOK, info)
}

// validHexHash bounds and charset-checks a hash path/query element —
// the same shape store.Dir accepts, so a hash passing here is safe as
// a store key.
func validHexHash(hash string) bool {
	if len(hash) < 4 || len(hash) > 128 {
		return false
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// replicate pushes a terminal result write-behind to the hash's HRW
// successors (Options.Replicas of them), so an owner death loses no
// hot results: any successor can serve the hash — and any job ID
// embedding it — straight from its store. Pushes are asynchronous and
// best-effort; a failed push reports the peer to the membership and is
// counted, and the periodic heartbeats plus copy-on-proxy make up any
// shortfall once the peer returns.
func (s *Server) replicate(hash string, result json.RawMessage) {
	if s.clu == nil || s.opts.Replicas <= 0 {
		return
	}
	targets := s.clu.Successors(hash, s.opts.Replicas)
	if len(targets) == 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for _, n := range targets {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			req, err := http.NewRequestWithContext(ctx, http.MethodPut,
				n.Addr+"/v1/store/"+hash, bytes.NewReader(result))
			if err != nil {
				cancel()
				continue
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := proxyClient.Do(req)
			cancel()
			if err != nil {
				s.met.replicaErrs.Inc()
				s.clu.ReportFailure(n.ID)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 300 {
				s.met.replicaErrs.Inc()
				continue
			}
			s.met.replicaPush.Inc()
		}
	}()
}

// handleStorePut receives one replicated result: PUT /v1/store/{hash}
// with the raw marshaled Result as the body. The store is
// content-addressed, so the operation is idempotent and
// last-writer-wins is harmless (same hash, same bytes).
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !validHexHash(hash) {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("bad hash %q: want 4-128 lowercase hex characters", hash))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil || len(body) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "reading replica body")
		return
	}
	if err := s.results.Put(hash, body); err != nil {
		s.met.storeErrors.Inc()
		writeError(w, http.StatusInternalServerError, codeInternal, fmt.Sprintf("storing replica: %v", err))
		return
	}
	s.met.replicaRecv.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// remoteJobNode resolves a non-local job ID to a proxy decision:
//   - storeHit: the embedded hash is in the local (replicated) store —
//     serve the terminal result without any network hop, even when the
//     minting node is dead.
//   - proxy to node: the minting node is alive; forward the request.
//   - otherwise an error status: not_found for IDs no view can route,
//     owner_unreachable for IDs minted by a known-but-down node.
func (s *Server) remoteJobNode(id string, fwd forwardInfo) (res json.RawMessage, hash string, node cluster.Node, status int, code string) {
	nodeID, _, h, ok := parseJobID(id)
	if !ok {
		return nil, "", cluster.Node{}, http.StatusNotFound, codeNotFound
	}
	if r, ok := s.results.Get(h); ok {
		return r, h, cluster.Node{}, 0, ""
	}
	// A forwarded lookup resolves locally: the sender already consulted
	// its view, and bouncing further would loop.
	if fwd.forwarded || s.clu == nil || nodeID == s.nodeID {
		return nil, "", cluster.Node{}, http.StatusNotFound, codeNotFound
	}
	n, known := s.clu.Lookup(nodeID)
	if !known {
		return nil, "", cluster.Node{}, http.StatusNotFound, codeNotFound
	}
	if n.State != cluster.StateAlive {
		return nil, "", cluster.Node{}, http.StatusBadGateway, codeOwnerUnreachable
	}
	return nil, h, n, 0, ""
}

// storedStatus synthesizes the terminal status a replicated result
// stands in for: the run is done, served from the store, under the
// caller's job ID.
func storedStatus(id, hash string, result json.RawMessage) runStatus {
	return runStatus{
		ID:         id,
		State:      string(stateDone),
		ConfigHash: hash,
		Cached:     true,
		Result:     result,
	}
}

// resolveRemoteGet serves GET /v1/runs/{id} for IDs minted elsewhere.
func (s *Server) resolveRemoteGet(w http.ResponseWriter, r *http.Request, id string) {
	res, hash, node, status, code := s.remoteJobNode(id, parseForward(r))
	switch {
	case res != nil:
		s.met.remoteGets.Inc()
		writeJSON(w, http.StatusOK, storedStatus(id, hash, res))
	case status != 0:
		s.writeLookupError(w, status, code, id)
	default:
		s.met.remoteGets.Inc()
		s.relayRequest(w, r, node, http.MethodGet, "/v1/runs/"+id, id, hash)
	}
}

// resolveRemoteCancel serves DELETE /v1/runs/{id} for IDs minted
// elsewhere. A store-served ID is already terminal; cancellation is a
// no-op success, mirroring DELETE of a local done job.
func (s *Server) resolveRemoteCancel(w http.ResponseWriter, r *http.Request, id string) {
	res, hash, node, status, code := s.remoteJobNode(id, parseForward(r))
	switch {
	case res != nil:
		st := storedStatus(id, hash, res)
		st.Result = nil
		writeJSON(w, http.StatusOK, st)
	case status != 0:
		s.writeLookupError(w, status, code, id)
	default:
		s.relayRequest(w, r, node, http.MethodDelete, "/v1/runs/"+id, id, hash)
	}
}

// resolveRemoteEvents serves GET /v1/runs/{id}/events for IDs minted
// elsewhere: a store-served ID emits its single terminal frame; a live
// minting node has its SSE stream relayed frame-by-frame.
func (s *Server) resolveRemoteEvents(w http.ResponseWriter, r *http.Request, id string) {
	res, hash, node, status, code := s.remoteJobNode(id, parseForward(r))
	if status != 0 {
		s.writeLookupError(w, status, code, id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal, "streaming unsupported")
		return
	}
	if res != nil {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		writeEvent(w, jobEvent{ID: id, State: string(stateDone)})
		flusher.Flush()
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		node.Addr+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, codeOwnerUnreachable, err.Error())
		return
	}
	req.Header.Set(forwardHeader, s.forwardValue(2))
	resp, err := (&http.Client{}).Do(req) // no client timeout: SSE is long-lived
	if err != nil {
		s.eventsFallback(w, flusher, id, hash, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.relayResponseStatus(w, resp)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			flusher.Flush()
		}
		if err != nil {
			return
		}
	}
}

// eventsFallback answers an events relay whose upstream died: if the
// replicated result landed meanwhile, emit the terminal frame; else
// report the owner unreachable.
func (s *Server) eventsFallback(w http.ResponseWriter, flusher http.Flusher, id, hash string, err error) {
	if res, ok := s.results.Get(hash); ok && res != nil {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		writeEvent(w, jobEvent{ID: id, State: string(stateDone)})
		flusher.Flush()
		return
	}
	writeError(w, http.StatusBadGateway, codeOwnerUnreachable, err.Error())
}

// writeLookupError emits the enveloped error for a failed remote
// resolution.
func (s *Server) writeLookupError(w http.ResponseWriter, status int, code, id string) {
	msg := fmt.Sprintf("no run %s", id)
	if code == codeOwnerUnreachable {
		msg = fmt.Sprintf("run %s was minted by an unreachable node and no replica is available", id)
	}
	writeError(w, status, code, msg)
}

// relayRequest forwards one /v1/runs/{id} request to the minting node
// and copies the response back verbatim (the remote speaks the same
// envelope). A transport failure re-checks the replicated store — the
// node may have died after pushing its replica — before reporting the
// owner unreachable.
func (s *Server) relayRequest(w http.ResponseWriter, r *http.Request, node cluster.Node, method, path, id, hash string) {
	req, err := http.NewRequestWithContext(r.Context(), method, node.Addr+path, nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, codeOwnerUnreachable, err.Error())
		return
	}
	req.Header.Set(forwardHeader, s.forwardValue(2))
	resp, err := proxyClient.Do(req)
	if err != nil {
		s.clu.ReportFailure(node.ID)
		if res, ok := s.results.Get(hash); ok {
			st := storedStatus(id, hash, res)
			if method == http.MethodDelete {
				st.Result = nil
			}
			writeJSON(w, http.StatusOK, st)
			return
		}
		writeError(w, http.StatusBadGateway, codeOwnerUnreachable,
			fmt.Sprintf("relaying to %s: %v", node.Addr, err))
		return
	}
	defer resp.Body.Close()
	s.relayResponseStatus(w, resp)
}

// relayResponseStatus copies a peer response (status, content type,
// body) back to the client.
func (s *Server) relayResponseStatus(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, 64<<20))
}
