// Package server exposes the simulator as a long-running HTTP service —
// the "simulation as a service" front door. A daemon accepts simulation
// jobs (POST /v1/runs with a JSON Config), validates them with typed
// field errors, canonically hashes them, and executes them on a bounded
// worker pool that reuses internal/runner's singleflight machinery; an
// LRU cache keyed on the canonical config hash serves repeated sweeps
// from memory. Results served over HTTP are byte-identical to a direct
// in-process system.Run of the same Config.
//
// Production plumbing: per-request run deadlines (?timeout=30s),
// backpressure (a bounded queue that rejects with 429 when full),
// graceful shutdown that drains in-flight runs, /healthz, and /metrics
// exporting the internal/metrics counters in Prometheus text format.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"nocstar/internal/experiments"
	"nocstar/internal/metrics"
	"nocstar/internal/runner"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// Options configures the daemon. The zero value selects sane defaults.
type Options struct {
	// Workers bounds concurrently executing simulations (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet executing; a full
	// queue rejects submissions with 429 (<= 0 selects 64).
	QueueDepth int
	// CacheEntries bounds the LRU result cache (<= 0 selects 128).
	CacheEntries int
	// MaxRunDuration caps every run's wall-clock execution, counted
	// from submission. 0 leaves runs uncapped; requests may always set
	// a tighter deadline with ?timeout=.
	MaxRunDuration time.Duration
	// Shards, when > 0, executes shardable configs (Private and
	// DistributedMesh organizations) on the partitioned parallel engine
	// with that many worker goroutines per run. The setting is
	// process-wide, so the result cache stays internally consistent:
	// every cached result for a shardable config came from the same
	// engine. Results are invariant in the shard count itself.
	Shards int
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 128
	}
	if o.Shards < 0 {
		o.Shards = 0
	}
	return o
}

// serverMetrics are the service-level counters exported by /metrics.
type serverMetrics struct {
	requests    *metrics.AtomicCounter
	submitted   *metrics.AtomicCounter
	invalid     *metrics.AtomicCounter
	rejected    *metrics.AtomicCounter
	deduped     *metrics.AtomicCounter
	cacheHits   *metrics.AtomicCounter
	executed    *metrics.AtomicCounter
	completed   *metrics.AtomicCounter
	failed      *metrics.AtomicCounter
	canceledRun *metrics.AtomicCounter
}

// Server is the resident simulation service. Create with New, mount
// Handler on an http.Server, and stop with Shutdown.
type Server struct {
	opts Options
	pool *runner.Runner
	mux  *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string        // job IDs in submission order, for listing
	inflight map[string]*job // canonical hash -> live (non-terminal) job
	cache    *lru

	seq     atomic.Uint64
	running atomic.Int64

	reg *metrics.Registry
	met serverMetrics
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.normalized()
	s := &Server{
		opts:     opts,
		pool:     runner.New(opts.Workers),
		queue:    make(chan *job, opts.QueueDepth),
		jobs:     map[string]*job{},
		inflight: map[string]*job{},
		cache:    newLRU(opts.CacheEntries),
		reg:      metrics.NewRegistry(),
	}
	s.pool.SetShards(opts.Shards)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.met = serverMetrics{
		requests:    s.reg.AtomicCounter("server.http.requests"),
		submitted:   s.reg.AtomicCounter("server.runs.submitted"),
		invalid:     s.reg.AtomicCounter("server.runs.invalid"),
		rejected:    s.reg.AtomicCounter("server.runs.rejected"),
		deduped:     s.reg.AtomicCounter("server.runs.deduped"),
		cacheHits:   s.reg.AtomicCounter("server.cache.hits"),
		executed:    s.reg.AtomicCounter("server.runs.executed"),
		completed:   s.reg.AtomicCounter("server.runs.completed"),
		failed:      s.reg.AtomicCounter("server.runs.failed"),
		canceledRun: s.reg.AtomicCounter("server.runs.canceled"),
	}
	s.routes()
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Shutdown gracefully stops the server: submissions are refused with
// 503, queued and running jobs drain to completion, and the worker pool
// exits. If ctx expires first, every remaining run is canceled (they
// stop at the next context-poll stride) and Shutdown returns ctx's
// error once the pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job through the shared runner pool.
func (s *Server) runJob(j *job) {
	j.setState(stateRunning, nil, "")
	s.running.Add(1)
	s.met.executed.Inc()
	res, err := s.pool.SubmitContext(j.ctx, j.cfg).Result()
	s.running.Add(-1)
	j.cancel() // release the deadline timer

	var result json.RawMessage
	var state jobState
	var msg string
	switch {
	case err == nil:
		if b, merr := json.Marshal(res); merr != nil {
			state, msg = stateFailed, fmt.Sprintf("marshaling result: %v", merr)
		} else {
			state, result = stateDone, b
		}
	case errors.Is(err, system.ErrCanceled), errors.Is(err, system.ErrDeadlineExceeded):
		state, msg = stateCanceled, err.Error()
	default:
		state, msg = stateFailed, err.Error()
	}

	s.mu.Lock()
	if s.inflight[j.hash] == j {
		delete(s.inflight, j.hash)
	}
	if state == stateDone {
		s.cache.add(j.hash, result)
	}
	s.mu.Unlock()

	j.setState(state, result, msg)
	switch state {
	case stateDone:
		s.met.completed.Inc()
	case stateCanceled:
		s.met.canceledRun.Inc()
	default:
		s.met.failed.Inc()
	}
}

// newJob constructs a job (not yet registered) with its execution
// context.
func (s *Server) newJob(hash string, cfg system.Config, timeout time.Duration) *job {
	j := &job{
		id:    fmt.Sprintf("run-%06d-%s", s.seq.Add(1), hash[:12]),
		hash:  hash,
		cfg:   cfg,
		done:  make(chan struct{}),
		state: stateQueued,
	}
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	return j
}

// submitError is the 400 response body: a top-level message plus the
// typed per-field errors from Config.Validate when available.
type submitError struct {
	Error  string              `json:"error"`
	Fields []system.FieldError `json:"fields,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, submitError{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}
	cfg, err := system.UnmarshalConfig(body)
	if err != nil {
		s.met.invalid.Inc()
		writeJSON(w, http.StatusBadRequest, submitError{Error: err.Error()})
		return
	}
	if err := cfg.Validate(); err != nil {
		s.met.invalid.Inc()
		resp := submitError{Error: "invalid config"}
		var ve *system.ValidationError
		if errors.As(err, &ve) {
			resp.Fields = ve.Fields
		} else {
			resp.Error = err.Error()
		}
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	hash, err := cfg.CanonicalHash()
	if err != nil {
		s.met.invalid.Inc()
		writeJSON(w, http.StatusBadRequest, submitError{Error: err.Error()})
		return
	}
	timeout := s.opts.MaxRunDuration
	if tq := r.URL.Query().Get("timeout"); tq != "" {
		d, err := time.ParseDuration(tq)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, submitError{
				Error: fmt.Sprintf("bad timeout %q: want a positive Go duration like 30s", tq)})
			return
		}
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, submitError{Error: "server is shutting down"})
		return
	}
	// Result cache: a config already simulated is served from memory,
	// as a job born in the done state.
	if cached, ok := s.cache.get(hash); ok {
		j := s.newJob(hash, cfg, 0)
		j.state = stateDone
		j.cached = true
		j.result = cached
		close(j.done)
		j.cancel()
		s.registerLocked(j)
		s.mu.Unlock()
		s.met.cacheHits.Inc()
		writeJSON(w, http.StatusOK, j.status(true))
		return
	}
	// Singleflight: an identical config already queued or running is
	// joined, not re-simulated.
	if live, ok := s.inflight[hash]; ok {
		s.mu.Unlock()
		s.met.deduped.Inc()
		st := live.status(false)
		st.Deduped = true
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	j := s.newJob(hash, cfg, timeout)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		j.cancel()
		s.met.rejected.Inc()
		writeJSON(w, http.StatusTooManyRequests, submitError{
			Error: fmt.Sprintf("queue full (%d jobs waiting); retry later", s.opts.QueueDepth)})
		return
	}
	s.registerLocked(j)
	s.inflight[hash] = j
	s.mu.Unlock()
	s.met.submitted.Inc()
	w.Header().Set("Location", "/v1/runs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// registerLocked records a job in the ID index. Caller holds s.mu.
func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, submitError{Error: "no such run"})
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]runStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, submitError{Error: "no such run"})
		return
	}
	j.cancel()
	// A job still waiting in the queue never reaches a worker's
	// RunContext poll promptly, so resolve it here; runJob's terminal
	// setState is a no-op if the worker picks it up concurrently.
	j.setState(stateCanceled, nil, "canceled by request")
	writeJSON(w, http.StatusOK, j.status(false))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, submitError{Error: "no such run"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, submitError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, cur := j.subscribe()
	defer j.unsubscribe(ch)
	writeEvent(w, cur)
	flusher.Flush()
	if jobState(cur.State).terminal() {
		return
	}
	for {
		select {
		case ev := <-ch:
			writeEvent(w, ev)
			flusher.Flush()
			if jobState(ev.State).terminal() {
				return
			}
		case <-j.done:
			writeEvent(w, j.event())
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame.
func writeEvent(w io.Writer, ev jobEvent) {
	b, _ := json.Marshal(ev)
	fmt.Fprintf(w, "event: state\ndata: %s\n\n", b)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workload.Suite())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.Describe())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	jobs := len(s.jobs)
	cached := s.cache.len()
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"workers":   s.opts.Workers,
		"running":   s.running.Load(),
		"queued":    len(s.queue),
		"queue_cap": s.opts.QueueDepth,
		"jobs":      jobs,
		"cached":    cached,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap := s.reg.Snapshot()
	if err := snap.WriteProm(w, "nocstar"); err != nil {
		return
	}
	// The shared pool's own counters, for dedup observability.
	p := s.pool.Progress()
	fmt.Fprintf(w, "# TYPE nocstar_pool_submitted counter\nnocstar_pool_submitted %d\n", p.Submitted)
	fmt.Fprintf(w, "# TYPE nocstar_pool_completed counter\nnocstar_pool_completed %d\n", p.Completed)
	fmt.Fprintf(w, "# TYPE nocstar_pool_deduped counter\nnocstar_pool_deduped %d\n", p.Deduped)
}

// writeJSON writes a JSON response with the given status. No indenting:
// an indenting encoder would reformat embedded json.RawMessage results
// and break their byte identity with a direct in-process Run.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
