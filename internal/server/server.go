// Package server exposes the simulator as a long-running HTTP service —
// the "simulation as a service" front door. A daemon accepts simulation
// jobs (POST /v1/runs with a JSON Config, or POST /v1/sweeps with an
// array of them), validates them with typed field errors, canonically
// hashes them, and executes them on a bounded worker pool that reuses
// internal/runner's singleflight machinery; a content-addressed result
// store keyed on the canonical config hash serves repeated sweeps —
// from memory, and optionally from a persistent directory shared
// between replicas, so results survive restarts. Results served over
// HTTP are byte-identical to a direct in-process system.Run of the same
// Config.
//
// Horizontal scale: with a static peer list (Options.Peers/Node), each
// canonical hash has exactly one owner under rendezvous hashing, and a
// submission landing on a non-owner is transparently proxied to the
// owner — N replicas each simulate a disjoint slice of the design space
// while every replica serves any cached hash. An unreachable owner
// degrades to local execution, never an error.
//
// Production plumbing: per-request run deadlines (?timeout=30s),
// backpressure (a bounded queue that rejects with 429 when full),
// graceful shutdown that drains in-flight runs, /healthz (503 while
// draining, so load balancers stop routing), a bounded terminal-job
// history, and /metrics exporting the internal/metrics counters in
// Prometheus text format.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"nocstar/internal/experiments"
	"nocstar/internal/metrics"
	"nocstar/internal/runner"
	"nocstar/internal/store"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// Options configures the daemon. The zero value selects sane defaults.
type Options struct {
	// Workers bounds concurrently executing simulations (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet executing; a full
	// queue rejects submissions with 429 (<= 0 selects 64).
	QueueDepth int
	// CacheEntries bounds the in-memory tier of the result store
	// (<= 0 selects 128).
	CacheEntries int
	// StoreDir, when non-empty, backs the in-memory cache with a
	// persistent content-addressed store: one <hash>.json blob per
	// result, written atomically, shareable between replicas via a
	// common volume. Results survive restarts.
	StoreDir string
	// StoreMaxEntries bounds the directory store
	// (<= 0 selects store.DefaultDirEntries).
	StoreMaxEntries int
	// StoreMaxBytes bounds the directory store's payload bytes
	// (<= 0 leaves it unbounded).
	StoreMaxBytes int64
	// Store overrides the result store outright; when set, the
	// CacheEntries/StoreDir fields are ignored.
	Store store.Store
	// JobHistory bounds retained terminal jobs: once more than this
	// many jobs have reached a terminal state, the oldest are evicted
	// from the registry (their IDs 404). <= 0 selects 512.
	JobHistory int
	// Node and Peers enable consistent-hash work sharding. Peers is the
	// full static list of replica base URLs (including this node); Node
	// is this replica's own entry. Each canonical config hash is owned
	// by exactly one peer under rendezvous (HRW) hashing; submissions
	// for a hash owned elsewhere are transparently proxied. Empty Peers
	// disables sharding.
	Node  string
	Peers []string
	// MaxRunDuration caps every run's wall-clock execution, counted
	// from submission. 0 leaves runs uncapped; requests may always set
	// a tighter deadline with ?timeout=.
	MaxRunDuration time.Duration
	// Shards, when > 0, executes shardable configs (Private and
	// DistributedMesh organizations) on the partitioned parallel engine
	// with that many worker goroutines per run. The setting is
	// process-wide, so the result cache stays internally consistent:
	// every cached result for a shardable config came from the same
	// engine. Results are invariant in the shard count itself.
	Shards int
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 128
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 512
	}
	if o.Shards < 0 {
		o.Shards = 0
	}
	return o
}

// serverMetrics are the service-level counters exported by /metrics.
type serverMetrics struct {
	requests     *metrics.AtomicCounter
	submitted    *metrics.AtomicCounter
	invalid      *metrics.AtomicCounter
	rejected     *metrics.AtomicCounter
	deduped      *metrics.AtomicCounter
	cacheHits    *metrics.AtomicCounter
	executed     *metrics.AtomicCounter
	completed    *metrics.AtomicCounter
	failed       *metrics.AtomicCounter
	canceledRun  *metrics.AtomicCounter
	proxied      *metrics.AtomicCounter
	proxyFallbck *metrics.AtomicCounter
	sweepConfigs *metrics.AtomicCounter
	storeErrors  *metrics.AtomicCounter
}

// Server is the resident simulation service. Create with New, mount
// Handler on an http.Server, and stop with Shutdown.
type Server struct {
	opts  Options
	pool  *runner.Runner
	mux   *http.ServeMux
	peers []string // normalized peer base URLs; empty = unsharded
	self  string   // this node's entry in peers

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string        // job IDs in submission order, for listing
	inflight map[string]*job // canonical hash -> live (non-terminal) job
	results  store.Store

	seq     atomic.Uint64
	running atomic.Int64

	reg *metrics.Registry
	met serverMetrics
}

// New builds a server and starts its worker pool. It fails when the
// persistent store directory cannot be opened or the peer list is
// inconsistent (a non-empty Peers requires Node to be one of its
// entries).
func New(opts Options) (*Server, error) {
	opts = opts.normalized()
	results := opts.Store
	if results == nil {
		mem := store.NewMemory(opts.CacheEntries)
		if opts.StoreDir != "" {
			dir, err := store.OpenDir(opts.StoreDir, opts.StoreMaxEntries, opts.StoreMaxBytes)
			if err != nil {
				return nil, err
			}
			results = store.Tiered(mem, dir)
		} else {
			results = mem
		}
	}
	peers, self, err := normalizePeers(opts.Peers, opts.Node)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:     opts,
		pool:     runner.New(opts.Workers),
		peers:    peers,
		self:     self,
		queue:    make(chan *job, opts.QueueDepth),
		jobs:     map[string]*job{},
		inflight: map[string]*job{},
		results:  results,
		reg:      metrics.NewRegistry(),
	}
	s.pool.SetShards(opts.Shards)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.met = serverMetrics{
		requests:     s.reg.AtomicCounter("server.http.requests"),
		submitted:    s.reg.AtomicCounter("server.runs.submitted"),
		invalid:      s.reg.AtomicCounter("server.runs.invalid"),
		rejected:     s.reg.AtomicCounter("server.runs.rejected"),
		deduped:      s.reg.AtomicCounter("server.runs.deduped"),
		cacheHits:    s.reg.AtomicCounter("server.cache.hits"),
		executed:     s.reg.AtomicCounter("server.runs.executed"),
		completed:    s.reg.AtomicCounter("server.runs.completed"),
		failed:       s.reg.AtomicCounter("server.runs.failed"),
		canceledRun:  s.reg.AtomicCounter("server.runs.canceled"),
		proxied:      s.reg.AtomicCounter("server.runs.proxied"),
		proxyFallbck: s.reg.AtomicCounter("server.proxy.fallback"),
		sweepConfigs: s.reg.AtomicCounter("server.sweep.configs"),
		storeErrors:  s.reg.AtomicCounter("server.store.errors"),
	}
	s.routes()
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// normalizePeers canonicalizes the static peer list (trailing slashes
// trimmed, empties dropped) and locates this node's own entry.
func normalizePeers(peers []string, node string) ([]string, string, error) {
	var out []string
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, "", nil
	}
	self := strings.TrimRight(strings.TrimSpace(node), "/")
	if self == "" {
		return nil, "", fmt.Errorf("server: -peers requires -node (this replica's own peer entry)")
	}
	for _, p := range out {
		if p == self {
			return out, self, nil
		}
	}
	return nil, "", fmt.Errorf("server: node %q is not in the peer list %v", self, out)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Shutdown gracefully stops the server: submissions are refused with
// 503, queued and running jobs (including proxied ones) drain to
// completion, and the worker pool exits. If ctx expires first, every
// remaining run is canceled (they stop at the next context-poll stride)
// and Shutdown returns ctx's error once the pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job through the shared runner pool. A job already
// terminal — canceled while it waited in the queue — is only
// deregistered, never executed: its context is dead, and running it
// would park a stale singleflight call in the runner that a fresh
// resubmission could join.
func (s *Server) runJob(j *job) {
	if j.terminal() {
		s.unregisterInflight(j)
		return
	}
	j.setState(stateRunning, nil, "")
	s.execJob(j)
}

// execJob runs j's config on the pool and finishes the job. It is the
// local-execution tail shared by queue workers and the proxy fallback.
func (s *Server) execJob(j *job) {
	s.running.Add(1)
	s.met.executed.Inc()
	res, err := s.pool.SubmitContext(j.ctx, j.cfg).Result()
	s.running.Add(-1)
	j.cancel() // release the deadline timer

	var result json.RawMessage
	var state jobState
	var msg string
	switch {
	case err == nil:
		if b, merr := json.Marshal(res); merr != nil {
			state, msg = stateFailed, fmt.Sprintf("marshaling result: %v", merr)
		} else {
			state, result = stateDone, b
		}
	case errors.Is(err, system.ErrCanceled), errors.Is(err, system.ErrDeadlineExceeded):
		state, msg = stateCanceled, err.Error()
	default:
		state, msg = stateFailed, err.Error()
	}
	s.finishJob(j, state, result, msg)
}

// finishJob moves j to a terminal state: it leaves the singleflight
// registry, a done result enters the content-addressed store, and the
// outcome counters advance.
func (s *Server) finishJob(j *job, state jobState, result json.RawMessage, msg string) {
	s.unregisterInflight(j)
	if state == stateDone {
		if err := s.results.Put(j.hash, result); err != nil {
			s.met.storeErrors.Inc()
		}
	}
	j.setState(state, result, msg)
	switch state {
	case stateDone:
		s.met.completed.Inc()
	case stateCanceled:
		s.met.canceledRun.Inc()
	default:
		s.met.failed.Inc()
	}
}

// unregisterInflight removes j from the singleflight registry if it is
// still the registered entry for its hash.
func (s *Server) unregisterInflight(j *job) {
	s.mu.Lock()
	if s.inflight[j.hash] == j {
		delete(s.inflight, j.hash)
	}
	s.mu.Unlock()
}

// newJob constructs a job (not yet registered) with its execution
// context.
func (s *Server) newJob(hash string, cfg system.Config, timeout time.Duration) *job {
	j := &job{
		id:    fmt.Sprintf("run-%06d-%s", s.seq.Add(1), hash[:12]),
		hash:  hash,
		cfg:   cfg,
		done:  make(chan struct{}),
		state: stateQueued,
	}
	j.timeout = timeout
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	return j
}

// submitError is the 400 response body: a top-level message plus the
// typed per-field errors from Config.Validate when available.
type submitError struct {
	Error  string              `json:"error"`
	Fields []system.FieldError `json:"fields,omitempty"`
}

// Sentinel outcomes of acquire, mapped to HTTP statuses by handlers.
var (
	errDraining  = errors.New("server is shutting down")
	errQueueFull = errors.New("queue full")
)

// acquisition says how acquire resolved a config to a job.
type acquisition int

const (
	// acqCached: the result store had the hash; the job is born done.
	acqCached acquisition = iota
	// acqJoined: an identical live job absorbed the submission.
	acqJoined
	// acqQueued: a fresh job entered the bounded queue.
	acqQueued
	// acqProxied: the hash is owned by a peer; a proxy job mirrors the
	// remote execution.
	acqProxied
)

// acquire resolves a validated config to a job: a store hit is born
// done, an identical live job is joined, a hash owned by a peer is
// transparently proxied (unless the request was already forwarded by a
// peer — forwarded requests always resolve locally, which bounds any
// proxy chain at one hop), and otherwise a fresh job enters the bounded
// queue. The returned errors are errDraining and errQueueFull.
func (s *Server) acquire(cfg system.Config, hash string, timeout time.Duration, forwarded bool) (*job, acquisition, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, 0, errDraining
	}
	s.mu.Unlock()

	// Result store: a config already simulated — by this process, a
	// previous incarnation of it, or a replica sharing the store — is
	// served as a job born in the done state. The store read happens
	// outside s.mu (it may touch disk); a racing identical submission
	// is resolved by the singleflight check below.
	if cached, ok := s.results.Get(hash); ok {
		j := s.newJob(hash, cfg, 0)
		j.state = stateDone
		j.cached = true
		j.result = cached
		close(j.done)
		j.cancel()
		s.mu.Lock()
		s.registerLocked(j)
		s.mu.Unlock()
		s.met.cacheHits.Inc()
		return j, acqCached, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, 0, errDraining
	}
	// Singleflight: an identical config already queued, running, or
	// proxied is joined, not re-simulated.
	if live, ok := s.inflight[hash]; ok {
		s.met.deduped.Inc()
		return live, acqJoined, nil
	}
	if owner := s.owner(hash); owner != "" && !forwarded {
		j := s.newJob(hash, cfg, timeout)
		s.registerLocked(j)
		s.inflight[hash] = j
		s.met.proxied.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.proxyJob(j, owner)
		}()
		return j, acqProxied, nil
	}
	j := s.newJob(hash, cfg, timeout)
	select {
	case s.queue <- j:
	default:
		j.cancel()
		s.met.rejected.Inc()
		return nil, 0, errQueueFull
	}
	s.registerLocked(j)
	s.inflight[hash] = j
	s.met.submitted.Inc()
	return j, acqQueued, nil
}

// parseTimeout resolves the effective run deadline from the server cap
// and the request's ?timeout= override.
func (s *Server) parseTimeout(r *http.Request) (time.Duration, error) {
	timeout := s.opts.MaxRunDuration
	if tq := r.URL.Query().Get("timeout"); tq != "" {
		d, err := time.ParseDuration(tq)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("bad timeout %q: want a positive Go duration like 30s", tq)
		}
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}
	return timeout, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, submitError{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}
	cfg, err := system.UnmarshalConfig(body)
	if err != nil {
		s.met.invalid.Inc()
		writeJSON(w, http.StatusBadRequest, submitError{Error: err.Error()})
		return
	}
	if err := cfg.Validate(); err != nil {
		s.met.invalid.Inc()
		resp := submitError{Error: "invalid config"}
		var ve *system.ValidationError
		if errors.As(err, &ve) {
			resp.Fields = ve.Fields
		} else {
			resp.Error = err.Error()
		}
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	hash, err := cfg.CanonicalHash()
	if err != nil {
		s.met.invalid.Inc()
		writeJSON(w, http.StatusBadRequest, submitError{Error: err.Error()})
		return
	}
	timeout, err := s.parseTimeout(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, submitError{Error: err.Error()})
		return
	}

	j, how, err := s.acquire(cfg, hash, timeout, isForwarded(r))
	switch {
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, submitError{Error: "server is shutting down"})
		return
	case errors.Is(err, errQueueFull):
		writeJSON(w, http.StatusTooManyRequests, submitError{
			Error: fmt.Sprintf("queue full (%d jobs waiting); retry later", s.opts.QueueDepth)})
		return
	}
	switch how {
	case acqCached:
		writeJSON(w, http.StatusOK, j.status(true))
	case acqJoined:
		st := j.status(false)
		st.Deduped = true
		writeJSON(w, http.StatusAccepted, st)
	default: // queued or proxied
		w.Header().Set("Location", "/v1/runs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.status(false))
	}
}

// registerLocked records a job in the ID index and prunes the terminal
// history. Caller holds s.mu.
func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneLocked()
}

// pruneLocked evicts the oldest terminal jobs beyond Options.JobHistory
// so sweep-replay traffic (every cache hit registers a born-done job)
// cannot grow the registry without bound. Live jobs are never evicted.
// Caller holds s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].terminal() {
			terminal++
		}
	}
	excess := terminal - s.opts.JobHistory
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, submitError{Error: "no such run"})
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]runStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, submitError{Error: "no such run"})
		return
	}
	j.cancel()
	// A job still waiting in the queue never reaches a worker's
	// RunContext poll promptly, so resolve it here; runJob's terminal
	// setState is a no-op if the worker picks it up concurrently.
	j.setState(stateCanceled, nil, "canceled by request")
	// The canceled job must stop absorbing identical submissions
	// immediately: left registered, a resubmission of the same config
	// would be deduped onto a dead job and see "canceled" for a run it
	// never canceled.
	s.unregisterInflight(j)
	writeJSON(w, http.StatusOK, j.status(false))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, submitError{Error: "no such run"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, submitError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, cur := j.subscribe()
	defer j.unsubscribe(ch)
	if writeEvent(w, cur) != nil {
		return
	}
	flusher.Flush()
	if jobState(cur.State).terminal() {
		return
	}
	for {
		select {
		case ev := <-ch:
			if writeEvent(w, ev) != nil {
				return
			}
			flusher.Flush()
			if jobState(ev.State).terminal() {
				return
			}
		case <-j.done:
			writeEvent(w, j.event())
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame, reporting marshal and write failures
// so callers terminate the stream instead of silently dropping frames.
func writeEvent(w io.Writer, ev jobEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("marshaling event: %w", err)
	}
	_, err = fmt.Fprintf(w, "event: state\ndata: %s\n\n", b)
	return err
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workload.Suite())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.Describe())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	jobs := len(s.jobs)
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		// A draining node 503s every submission; it must fail its
		// health check too, or load balancers keep routing to it.
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"workers":   s.opts.Workers,
		"running":   s.running.Load(),
		"queued":    len(s.queue),
		"queue_cap": s.opts.QueueDepth,
		"jobs":      jobs,
		"cached":    s.results.Len(),
		"node":      s.self,
		"peers":     len(s.peers),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap := s.reg.Snapshot()
	if err := snap.WriteProm(w, "nocstar"); err != nil {
		return
	}
	// The shared pool's own counters, for dedup observability.
	p := s.pool.Progress()
	fmt.Fprintf(w, "# TYPE nocstar_pool_submitted counter\nnocstar_pool_submitted %d\n", p.Submitted)
	fmt.Fprintf(w, "# TYPE nocstar_pool_completed counter\nnocstar_pool_completed %d\n", p.Completed)
	fmt.Fprintf(w, "# TYPE nocstar_pool_deduped counter\nnocstar_pool_deduped %d\n", p.Deduped)
}

// writeJSON writes a JSON response with the given status. No indenting:
// an indenting encoder would reformat embedded json.RawMessage results
// and break their byte identity with a direct in-process Run.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
