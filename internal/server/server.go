// Package server exposes the simulator as a long-running HTTP service —
// the "simulation as a service" front door. A daemon accepts simulation
// jobs (POST /v1/runs with a JSON Config, or POST /v1/sweeps with an
// array of them), validates them with typed field errors, canonically
// hashes them, and executes them on a bounded worker pool that reuses
// internal/runner's singleflight machinery; a content-addressed result
// store keyed on the canonical config hash serves repeated sweeps —
// from memory, and optionally from a persistent directory shared
// between replicas, so results survive restarts. Results served over
// HTTP are byte-identical to a direct in-process system.Run of the same
// Config.
//
// Horizontal scale: with a peer list (Options.Peers/Node), nodes form a
// dynamic cluster over heartbeat-based membership (internal/cluster).
// Each canonical hash has exactly one owner under rendezvous hashing
// over the *live* membership view, so ownership recomputes on
// join/leave instead of being frozen at process start. A submission
// landing on a non-owner is transparently proxied to the owner; when
// the owner becomes unreachable mid-flight, the submission hands off to
// the next live node in HRW order (counted, never silently duplicated)
// and only then degrades to local execution. Terminal results are
// pushed write-behind to the hash's HRW successors (Options.Replicas),
// so an owner death loses no hot results; and job IDs embed the minting
// node and its epoch, so every /v1/runs/{id} endpoint resolves
// non-local IDs by consulting the membership view — proxying to the
// live owner or serving straight from the replicated store.
//
// Production plumbing: per-request run deadlines (?timeout=30s),
// backpressure (a bounded local queue plus a cluster-wide sweep
// admission budget fed by gossiped queue depths; both reject with 429
// and Retry-After), graceful shutdown that drains in-flight runs,
// /healthz (503 while draining, so load balancers stop routing), a
// bounded terminal-job history, /v1/cluster exposing the membership
// view and ownership previews, and /metrics exporting the
// internal/metrics counters in Prometheus text format. Every non-2xx
// response uses the unified error envelope (see errors.go).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"nocstar/internal/cluster"
	"nocstar/internal/experiments"
	"nocstar/internal/metrics"
	"nocstar/internal/runner"
	"nocstar/internal/store"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

// Options configures the daemon. The zero value selects sane defaults.
type Options struct {
	// Workers bounds concurrently executing simulations (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet executing; a full
	// queue rejects submissions with 429 (<= 0 selects 64).
	QueueDepth int
	// CacheEntries bounds the in-memory tier of the result store
	// (<= 0 selects 128).
	CacheEntries int
	// StoreDir, when non-empty, backs the in-memory cache with a
	// persistent content-addressed store: one <hash>.json blob per
	// result, written atomically, shareable between replicas via a
	// common volume. Results survive restarts.
	StoreDir string
	// StoreMaxEntries bounds the directory store
	// (<= 0 selects store.DefaultDirEntries).
	StoreMaxEntries int
	// StoreMaxBytes bounds the directory store's payload bytes
	// (<= 0 leaves it unbounded).
	StoreMaxBytes int64
	// Store overrides the result store outright; when set, the
	// CacheEntries/StoreDir fields are ignored.
	Store store.Store
	// JobHistory bounds retained terminal jobs: once more than this
	// many jobs have reached a terminal state, the oldest are evicted
	// from the registry (their IDs 404). <= 0 selects 512.
	JobHistory int
	// Node and Peers enable clustering. Peers seeds the membership
	// (base URLs; more members are learned via heartbeat gossip, so
	// the list need not be complete); Node is this replica's own base
	// URL and must be reachable by peers. Empty Peers disables
	// clustering.
	Node  string
	Peers []string
	// HeartbeatInterval paces membership heartbeats (<= 0 selects 1s).
	HeartbeatInterval time.Duration
	// SuspectAfter and DeadAfter are the membership silence deadlines
	// (<= 0 selects 3x and 8x HeartbeatInterval).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Replicas is the number of HRW successors every terminal result
	// is pushed to write-behind (0 selects 2, < 0 disables).
	Replicas int
	// ClusterQueueBudget bounds the aggregate queued jobs a sweep may
	// add cluster-wide: admission compares the gossiped queue depths
	// plus the sweep size against this budget and rejects with 429
	// when exceeded. <= 0 derives the budget from the live members'
	// summed queue capacities.
	ClusterQueueBudget int
	// MaxRunDuration caps every run's wall-clock execution, counted
	// from submission. 0 leaves runs uncapped; requests may always set
	// a tighter deadline with ?timeout=.
	MaxRunDuration time.Duration
	// Shards, when > 0, executes shardable configs (Private and
	// DistributedMesh organizations) on the partitioned parallel engine
	// with that many worker goroutines per run. The setting is
	// process-wide, so the result cache stays internally consistent:
	// every cached result for a shardable config came from the same
	// engine. Results are invariant in the shard count itself.
	Shards int
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 128
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 512
	}
	if o.Shards < 0 {
		o.Shards = 0
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	switch {
	case o.Replicas == 0:
		o.Replicas = 2
	case o.Replicas < 0:
		o.Replicas = 0
	}
	return o
}

// serverMetrics are the service-level counters exported by /metrics.
type serverMetrics struct {
	requests     *metrics.AtomicCounter
	submitted    *metrics.AtomicCounter
	invalid      *metrics.AtomicCounter
	rejected     *metrics.AtomicCounter
	deduped      *metrics.AtomicCounter
	cacheHits    *metrics.AtomicCounter
	executed     *metrics.AtomicCounter
	completed    *metrics.AtomicCounter
	failed       *metrics.AtomicCounter
	canceledRun  *metrics.AtomicCounter
	proxied      *metrics.AtomicCounter
	proxyFallbck *metrics.AtomicCounter
	proxyHandoff *metrics.AtomicCounter
	reresolved   *metrics.AtomicCounter
	remoteGets   *metrics.AtomicCounter
	sweepConfigs *metrics.AtomicCounter
	sweepSpilled *metrics.AtomicCounter
	sweepBounced *metrics.AtomicCounter
	replicaPush  *metrics.AtomicCounter
	replicaRecv  *metrics.AtomicCounter
	replicaErrs  *metrics.AtomicCounter
	storeErrors  *metrics.AtomicCounter
}

// Server is the resident simulation service. Create with New, mount
// Handler on an http.Server, and stop with Shutdown.
type Server struct {
	opts Options
	pool *runner.Runner
	mux  *http.ServeMux

	// clu tracks dynamic membership; nil when clustering is disabled.
	clu *cluster.Membership
	// nodeID and epochToken identify this process incarnation; every
	// job ID minted here embeds both, so any cluster node can route
	// the ID back (or detect that the incarnation is gone).
	nodeID     string
	epoch      int64
	epochToken string
	self       string // this node's base URL ("" when unclustered)

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string        // job IDs in submission order, for listing
	inflight map[string]*job // canonical hash -> live (non-terminal) job
	results  store.Store

	seq     atomic.Uint64
	running atomic.Int64

	reg *metrics.Registry
	met serverMetrics
}

// New builds a server and starts its worker pool (and, when Peers is
// non-empty, its membership heartbeats). It fails when the persistent
// store directory cannot be opened or the peer list is inconsistent (a
// non-empty Peers requires Node).
func New(opts Options) (*Server, error) {
	opts = opts.normalized()
	results := opts.Store
	if results == nil {
		mem := store.NewMemory(opts.CacheEntries)
		if opts.StoreDir != "" {
			dir, err := store.OpenDir(opts.StoreDir, opts.StoreMaxEntries, opts.StoreMaxBytes)
			if err != nil {
				return nil, err
			}
			results = store.Tiered(mem, dir)
		} else {
			results = mem
		}
	}
	peers, self, err := normalizePeers(opts.Peers, opts.Node)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:     opts,
		pool:     runner.New(opts.Workers),
		self:     self,
		queue:    make(chan *job, opts.QueueDepth),
		jobs:     map[string]*job{},
		inflight: map[string]*job{},
		results:  results,
		reg:      metrics.NewRegistry(),
	}
	s.pool.SetShards(opts.Shards)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if len(peers) > 0 {
		s.clu = cluster.New(cluster.Options{
			Self:         self,
			Seeds:        peers,
			Interval:     opts.HeartbeatInterval,
			SuspectAfter: opts.SuspectAfter,
			DeadAfter:    opts.DeadAfter,
			StatsFunc: func() cluster.Stats {
				return cluster.Stats{
					QueueDepth:   len(s.queue),
					QueueCap:     opts.QueueDepth,
					StoreEntries: s.results.Len(),
				}
			},
		})
		s.nodeID = s.clu.SelfID()
		s.epoch = s.clu.Epoch()
	} else {
		// Unclustered nodes still mint namespaced IDs so the API shape
		// is uniform; the identity is synthetic but the epoch is real.
		id := opts.Node
		if id == "" {
			id = "local"
		}
		s.nodeID = cluster.NodeID(id)
		s.epoch = time.Now().UnixNano()
	}
	s.epochToken = epochToken(s.epoch)
	s.met = serverMetrics{
		requests:     s.reg.AtomicCounter("server.http.requests"),
		submitted:    s.reg.AtomicCounter("server.runs.submitted"),
		invalid:      s.reg.AtomicCounter("server.runs.invalid"),
		rejected:     s.reg.AtomicCounter("server.runs.rejected"),
		deduped:      s.reg.AtomicCounter("server.runs.deduped"),
		cacheHits:    s.reg.AtomicCounter("server.cache.hits"),
		executed:     s.reg.AtomicCounter("server.runs.executed"),
		completed:    s.reg.AtomicCounter("server.runs.completed"),
		failed:       s.reg.AtomicCounter("server.runs.failed"),
		canceledRun:  s.reg.AtomicCounter("server.runs.canceled"),
		proxied:      s.reg.AtomicCounter("server.runs.proxied"),
		proxyFallbck: s.reg.AtomicCounter("server.proxy.fallback"),
		proxyHandoff: s.reg.AtomicCounter("server.proxy.handoff"),
		reresolved:   s.reg.AtomicCounter("server.proxy.reresolved"),
		remoteGets:   s.reg.AtomicCounter("server.runs.remote_resolved"),
		sweepConfigs: s.reg.AtomicCounter("server.sweep.configs"),
		sweepSpilled: s.reg.AtomicCounter("server.sweep.spilled"),
		sweepBounced: s.reg.AtomicCounter("server.sweep.admission_rejected"),
		replicaPush:  s.reg.AtomicCounter("server.replica.pushed"),
		replicaRecv:  s.reg.AtomicCounter("server.replica.received"),
		replicaErrs:  s.reg.AtomicCounter("server.replica.errors"),
		storeErrors:  s.reg.AtomicCounter("server.store.errors"),
	}
	s.routes()
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	if s.clu != nil {
		s.clu.Start()
	}
	return s, nil
}

// epochToken renders a process epoch as the compact base-36 token job
// IDs embed.
func epochToken(epoch int64) string {
	return strconv.FormatInt(epoch, 36)
}

// normalizePeers canonicalizes the peer seed list (trailing slashes
// trimmed, empties dropped) and this node's own base URL. Unlike the
// static-sharding era the list is only a seed: membership is dynamic,
// and Node need not appear in Peers.
func normalizePeers(peers []string, node string) ([]string, string, error) {
	var out []string
	self := strings.TrimRight(strings.TrimSpace(node), "/")
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" && p != self {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, self, nil
	}
	if self == "" {
		return nil, "", fmt.Errorf("server: -peers requires -node (this replica's reachable base URL)")
	}
	return out, self, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("PUT /v1/store/{hash}", s.handleStorePut)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.clu != nil {
		s.mux.HandleFunc("POST /v1/cluster/heartbeat", s.clu.HandleHeartbeat)
	}
}

// Shutdown gracefully stops the server: submissions are refused with
// 503, queued and running jobs (including proxied ones) drain to
// completion, and the worker pool exits. Heartbeats stop immediately,
// so live peers route new work around this node while it drains. If
// ctx expires first, every remaining run is canceled (they stop at the
// next context-poll stride) and Shutdown returns ctx's error once the
// pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	if s.clu != nil {
		s.clu.Stop()
	}

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job through the shared runner pool. A job already
// terminal — canceled while it waited in the queue — is only
// deregistered, never executed: its context is dead, and running it
// would park a stale singleflight call in the runner that a fresh
// resubmission could join.
func (s *Server) runJob(j *job) {
	if j.terminal() {
		s.unregisterInflight(j)
		return
	}
	j.setState(stateRunning, nil, "")
	s.execJob(j)
}

// execJob runs j's config on the pool and finishes the job. It is the
// local-execution tail shared by queue workers and the proxy fallback.
func (s *Server) execJob(j *job) {
	s.running.Add(1)
	s.met.executed.Inc()
	res, err := s.pool.SubmitContext(j.ctx, j.cfg).Result()
	s.running.Add(-1)
	j.cancel() // release the deadline timer

	var result json.RawMessage
	var state jobState
	var msg string
	switch {
	case err == nil:
		if b, merr := json.Marshal(res); merr != nil {
			state, msg = stateFailed, fmt.Sprintf("marshaling result: %v", merr)
		} else {
			state, result = stateDone, b
		}
	case errors.Is(err, system.ErrCanceled), errors.Is(err, system.ErrDeadlineExceeded):
		state, msg = stateCanceled, err.Error()
	default:
		state, msg = stateFailed, err.Error()
	}
	s.finishJob(j, state, result, msg)
}

// finishJob moves j to a terminal state: it leaves the singleflight
// registry, a done result enters the content-addressed store (and is
// pushed write-behind to the hash's HRW successors), and the outcome
// counters advance.
func (s *Server) finishJob(j *job, state jobState, result json.RawMessage, msg string) {
	s.unregisterInflight(j)
	if state == stateDone {
		if err := s.results.Put(j.hash, result); err != nil {
			s.met.storeErrors.Inc()
		}
		s.replicate(j.hash, result)
	}
	j.setState(state, result, msg)
	switch state {
	case stateDone:
		s.met.completed.Inc()
	case stateCanceled:
		s.met.canceledRun.Inc()
	default:
		s.met.failed.Inc()
	}
}

// unregisterInflight removes j from the singleflight registry if it is
// still the registered entry for its hash.
func (s *Server) unregisterInflight(j *job) {
	s.mu.Lock()
	if s.inflight[j.hash] == j {
		delete(s.inflight, j.hash)
	}
	s.mu.Unlock()
}

// newJob constructs a job (not yet registered) with its execution
// context. IDs are namespaced cluster-wide:
//
//	<nodeID>-<epoch36>-<seq>-<canonical hash>
//
// so any node can route an ID back to the node (and incarnation) that
// minted it, and — because the full canonical hash rides along — serve
// the result straight from the replicated store when that node is gone.
func (s *Server) newJob(hash string, cfg system.Config, timeout time.Duration) *job {
	j := &job{
		id:    fmt.Sprintf("%s-%s-%06d-%s", s.nodeID, s.epochToken, s.seq.Add(1), hash),
		node:  s.nodeID,
		hash:  hash,
		cfg:   cfg,
		done:  make(chan struct{}),
		state: stateQueued,
	}
	j.timeout = timeout
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	return j
}

// parseJobID splits a namespaced job ID into its minting node, epoch
// token, and canonical hash. It rejects strings that do not fit the
// scheme.
func parseJobID(id string) (nodeID, epoch, hash string, ok bool) {
	parts := strings.SplitN(id, "-", 4)
	if len(parts) != 4 {
		return "", "", "", false
	}
	nodeID, epoch, hash = parts[0], parts[1], parts[3]
	if len(nodeID) != 16 || epoch == "" || len(hash) < 4 || len(hash) > 128 {
		return "", "", "", false
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", "", "", false
		}
	}
	return nodeID, epoch, hash, true
}

// Sentinel outcomes of acquire, mapped to HTTP statuses by handlers.
var (
	errDraining  = errors.New("server is shutting down")
	errQueueFull = errors.New("queue full")
)

// acquisition says how acquire resolved a config to a job.
type acquisition int

const (
	// acqCached: the result store had the hash; the job is born done.
	acqCached acquisition = iota
	// acqJoined: an identical live job absorbed the submission.
	acqJoined
	// acqQueued: a fresh job entered the bounded queue.
	acqQueued
	// acqProxied: the hash is owned by (or spilled to) a peer; a proxy
	// job mirrors the remote execution.
	acqProxied
)

// acquire resolves a validated config to a job: a store hit is born
// done, an identical live job is joined, a hash owned by a live peer is
// transparently proxied (with forwarded requests allowed one re-resolve
// against a newer membership view before resolving locally — see
// route), and otherwise a fresh job enters the bounded queue. allowSpill
// permits routing a leg to the owner's HRW successor when the gossiped
// view shows the owner's queue saturated. The returned errors are
// errDraining and errQueueFull.
func (s *Server) acquire(cfg system.Config, hash string, timeout time.Duration, fwd forwardInfo, allowSpill bool) (*job, acquisition, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, 0, errDraining
	}
	s.mu.Unlock()

	// Result store: a config already simulated — by this process, a
	// previous incarnation of it, or a replica sharing the store — is
	// served as a job born in the done state. The store read happens
	// outside s.mu (it may touch disk); a racing identical submission
	// is resolved by the singleflight check below.
	if cached, ok := s.results.Get(hash); ok {
		j := s.newJob(hash, cfg, 0)
		j.state = stateDone
		j.cached = true
		j.result = cached
		close(j.done)
		j.cancel()
		s.mu.Lock()
		s.registerLocked(j)
		s.mu.Unlock()
		s.met.cacheHits.Inc()
		return j, acqCached, nil
	}

	// Routing happens outside s.mu: it reads the membership view.
	target, remote := s.route(hash, fwd, allowSpill)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, 0, errDraining
	}
	// Singleflight: an identical config already queued, running, or
	// proxied is joined, not re-simulated.
	if live, ok := s.inflight[hash]; ok {
		s.met.deduped.Inc()
		return live, acqJoined, nil
	}
	if remote {
		j := s.newJob(hash, cfg, timeout)
		s.registerLocked(j)
		s.inflight[hash] = j
		s.met.proxied.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.proxyJob(j, target)
		}()
		return j, acqProxied, nil
	}
	j := s.newJob(hash, cfg, timeout)
	select {
	case s.queue <- j:
	default:
		j.cancel()
		s.met.rejected.Inc()
		return nil, 0, errQueueFull
	}
	s.registerLocked(j)
	s.inflight[hash] = j
	s.met.submitted.Inc()
	return j, acqQueued, nil
}

// parseTimeout resolves the effective run deadline from the server cap
// and the request's ?timeout= override.
func (s *Server) parseTimeout(r *http.Request) (time.Duration, error) {
	timeout := s.opts.MaxRunDuration
	if tq := r.URL.Query().Get("timeout"); tq != "" {
		d, err := time.ParseDuration(tq)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("bad timeout %q: want a positive Go duration like 30s", tq)
		}
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}
	return timeout, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	cfg, err := system.UnmarshalConfig(body)
	if err != nil {
		s.met.invalid.Inc()
		writeError(w, http.StatusBadRequest, codeInvalidConfig, err.Error())
		return
	}
	if err := cfg.Validate(); err != nil {
		s.met.invalid.Inc()
		msg := "invalid config"
		var fields []system.FieldError
		var ve *system.ValidationError
		if errors.As(err, &ve) {
			fields = ve.Fields
		} else {
			msg = err.Error()
		}
		writeErrorFields(w, http.StatusBadRequest, codeInvalidConfig, msg, fields)
		return
	}
	hash, err := cfg.CanonicalHash()
	if err != nil {
		s.met.invalid.Inc()
		writeError(w, http.StatusBadRequest, codeInvalidConfig, err.Error())
		return
	}
	timeout, err := s.parseTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}

	j, how, err := s.acquire(cfg, hash, timeout, parseForward(r), false)
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, codeDraining, "server is shutting down")
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("queue full (%d jobs waiting); retry later", s.opts.QueueDepth))
		return
	}
	switch how {
	case acqCached:
		writeJSON(w, http.StatusOK, j.status(true))
	case acqJoined:
		st := j.status(false)
		st.Deduped = true
		writeJSON(w, http.StatusAccepted, st)
	default: // queued or proxied
		w.Header().Set("Location", "/v1/runs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.status(false))
	}
}

// registerLocked records a job in the ID index and prunes the terminal
// history. Caller holds s.mu.
func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneLocked()
}

// pruneLocked evicts the oldest terminal jobs beyond Options.JobHistory
// so sweep-replay traffic (every cache hit registers a born-done job)
// cannot grow the registry without bound. Live jobs are never evicted.
// Caller holds s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].terminal() {
			terminal++
		}
	}
	excess := terminal - s.opts.JobHistory
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.lookup(id); ok {
		writeJSON(w, http.StatusOK, j.status(true))
		return
	}
	s.resolveRemoteGet(w, r, id)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]runStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		s.resolveRemoteCancel(w, r, id)
		return
	}
	j.cancel()
	// A job still waiting in the queue never reaches a worker's
	// RunContext poll promptly, so resolve it here; runJob's terminal
	// setState is a no-op if the worker picks it up concurrently.
	j.setState(stateCanceled, nil, "canceled by request")
	// The canceled job must stop absorbing identical submissions
	// immediately: left registered, a resubmission of the same config
	// would be deduped onto a dead job and see "canceled" for a run it
	// never canceled.
	s.unregisterInflight(j)
	writeJSON(w, http.StatusOK, j.status(false))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		s.resolveRemoteEvents(w, r, id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, cur := j.subscribe()
	defer j.unsubscribe(ch)
	if writeEvent(w, cur) != nil {
		return
	}
	flusher.Flush()
	if jobState(cur.State).terminal() {
		return
	}
	for {
		select {
		case ev := <-ch:
			if writeEvent(w, ev) != nil {
				return
			}
			flusher.Flush()
			if jobState(ev.State).terminal() {
				return
			}
		case <-j.done:
			writeEvent(w, j.event())
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame, reporting marshal and write failures
// so callers terminate the stream instead of silently dropping frames.
func writeEvent(w io.Writer, ev jobEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("marshaling event: %w", err)
	}
	_, err = fmt.Fprintf(w, "event: state\ndata: %s\n\n", b)
	return err
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workload.Suite())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.Describe())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	jobs := len(s.jobs)
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		// A draining node 503s every submission; it must fail its
		// health check too, or load balancers keep routing to it.
		status, code = "draining", http.StatusServiceUnavailable
	}
	members := 1
	if s.clu != nil {
		members = len(s.clu.View().Nodes)
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"workers":   s.opts.Workers,
		"running":   s.running.Load(),
		"queued":    len(s.queue),
		"queue_cap": s.opts.QueueDepth,
		"jobs":      jobs,
		"cached":    s.results.Len(),
		"node":      s.nodeID,
		"epoch":     s.epochToken,
		"addr":      s.self,
		"members":   members,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap := s.reg.Snapshot()
	if err := snap.WriteProm(w, "nocstar"); err != nil {
		return
	}
	// The shared pool's own counters, for dedup observability.
	p := s.pool.Progress()
	fmt.Fprintf(w, "# TYPE nocstar_pool_submitted counter\nnocstar_pool_submitted %d\n", p.Submitted)
	fmt.Fprintf(w, "# TYPE nocstar_pool_completed counter\nnocstar_pool_completed %d\n", p.Completed)
	fmt.Fprintf(w, "# TYPE nocstar_pool_deduped counter\nnocstar_pool_deduped %d\n", p.Deduped)
	// Membership gauges: the live view in numbers.
	if s.clu != nil {
		v := s.clu.View()
		counts := map[cluster.State]int{}
		depth := 0
		for _, n := range v.Nodes {
			counts[n.State]++
			if n.State == cluster.StateAlive {
				depth += n.QueueDepth
			}
		}
		fmt.Fprintf(w, "# TYPE nocstar_cluster_view_version gauge\nnocstar_cluster_view_version %d\n", v.Version)
		fmt.Fprintf(w, "# TYPE nocstar_cluster_members_alive gauge\nnocstar_cluster_members_alive %d\n", counts[cluster.StateAlive])
		fmt.Fprintf(w, "# TYPE nocstar_cluster_members_suspect gauge\nnocstar_cluster_members_suspect %d\n", counts[cluster.StateSuspect])
		fmt.Fprintf(w, "# TYPE nocstar_cluster_members_dead gauge\nnocstar_cluster_members_dead %d\n", counts[cluster.StateDead])
		fmt.Fprintf(w, "# TYPE nocstar_cluster_queue_depth gauge\nnocstar_cluster_queue_depth %d\n", depth)
	}
}

// writeJSON writes a JSON response with the given status. No indenting:
// an indenting encoder would reformat embedded json.RawMessage results
// and break their byte identity with a direct in-process Run.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
