package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"nocstar/client"
	"nocstar/internal/system"
)

// directBytes is the byte-identity reference: json.Marshal of a direct
// in-process Run of the config.
func directBytes(t *testing.T, body string) []byte {
	t.Helper()
	cfg, err := system.UnmarshalConfig([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func hashOf(t *testing.T, body string) string {
	t.Helper()
	cfg, err := system.UnmarshalConfig([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	h, err := cfg.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// cfgWith builds a config with a chosen seed and instruction count, so
// tests control both identity and run duration.
func cfgWith(seed, instr int64) string {
	return fmt.Sprintf(`{
		"schema": 1, "org": "nocstar", "cores": 4,
		"apps": [{"workload": "gups", "threads": 4}],
		"instr_per_thread": %d, "seed": %d
	}`, instr, seed)
}

// TestRestartSurvival populates the persistent store through one server,
// shuts it down, and verifies a brand-new server over the same directory
// serves the result as a cache hit — byte-identical, zero executions.
func TestRestartSurvival(t *testing.T) {
	dir := t.TempDir()
	body := smallConfig(40)
	want := directBytes(t, body)
	ctx := ctxT(t)

	srv1, c1 := newTestServer(t, Options{Workers: 2, StoreDir: dir})
	st, err := c1.SubmitRunJSON(ctx, []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if final, err := c1.Wait(ctx, st.ID); err != nil || final.State != client.StateDone {
		t.Fatalf("run: %v %+v", err, final)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same store directory.
	srv2, c2 := newTestServer(t, Options{Workers: 2, StoreDir: dir})
	hit, err := c2.SubmitRunJSON(ctx, []byte(body))
	if err != nil || !hit.Cached {
		t.Fatalf("post-restart submit: %v cached=%v", err, hit.Cached)
	}
	if !bytes.Equal(hit.Result, want) {
		t.Fatalf("post-restart result differs from direct run (%d vs %d bytes)", len(hit.Result), len(want))
	}
	if got := srv2.met.executed.Value(); got != 0 {
		t.Fatalf("restarted server executed %d runs, want 0", got)
	}
}

// clusterNode is one booted cluster member with its own listener, so
// it can be killed independently.
type clusterNode struct {
	srv  *Server
	base string
	hs   *http.Server
	c    *client.Client
}

// hbOpts are the fast heartbeat timings cluster tests run with.
func hbOpts(o Options) Options {
	o.HeartbeatInterval = 25 * time.Millisecond
	o.SuspectAfter = 150 * time.Millisecond
	o.DeadAfter = 600 * time.Millisecond
	return o
}

// bootCluster boots n servers on pre-bound loopback listeners so peer
// URLs exist before the servers that use them, then waits for the
// membership views to converge to n live members everywhere.
func bootCluster(t *testing.T, n int, mkOpts func(i int, self string, peers []string) Options) []clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]clusterNode, n)
	for i := range nodes {
		srv, err := New(mkOpts(i, peers[i], peers))
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		nodes[i] = clusterNode{srv: srv, base: peers[i], hs: hs, c: client.New(peers[i])}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
			srv.Shutdown(ctx)
		})
	}
	waitLive(t, nodes, n)
	return nodes
}

// waitLive blocks until every given node's view has exactly `want`
// live members.
func waitLive(t *testing.T, nodes []clusterNode, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if len(n.srv.clusterView().Live()) != want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			counts := make([]int, len(nodes))
			for i, n := range nodes {
				counts[i] = len(n.srv.clusterView().Live())
			}
			t.Fatalf("views never converged to %d live: %v", want, counts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// killNode hard-kills a node: its listener closes (peers get connection
// errors, not graceful drains) and its in-flight runs are canceled.
func killNode(t *testing.T, n clusterNode) {
	t.Helper()
	n.hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n.srv.Shutdown(ctx)
}

// configOwnedBy seed-searches for a config whose canonical hash the
// current view assigns to nodeID.
func configOwnedBy(t *testing.T, srv *Server, nodeID string, seedStart, instr int64) string {
	t.Helper()
	for seed := seedStart; seed < seedStart+500; seed++ {
		cand := cfgWith(seed, instr)
		if owner, ok := srv.clu.Owner(hashOf(t, cand)); ok && owner.ID == nodeID {
			return cand
		}
	}
	t.Fatalf("no config owned by %s in 500 seeds", nodeID)
	return ""
}

// TestTwoNodeProxy is the consistent-hash sharding contract: a config
// whose hash is owned by node B, submitted to node A, executes exactly
// once cluster-wide (on B), is served byte-identically through A, and
// afterwards lives in A's own store so A serves it without B.
func TestTwoNodeProxy(t *testing.T) {
	nodes := bootCluster(t, 2, func(i int, self string, peers []string) Options {
		return hbOpts(Options{Workers: 2, StoreDir: t.TempDir(), Node: self, Peers: peers})
	})
	a, b := nodes[0], nodes[1]
	ctx := ctxT(t)

	body := configOwnedBy(t, a.srv, b.srv.nodeID, 50, 5000)
	want := directBytes(t, body)

	st, err := a.c.SubmitRunJSON(ctx, []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	final, err := a.c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("proxied run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("proxied result differs from direct run (%d vs %d bytes)", len(final.Result), len(want))
	}

	// Exactly one execution cluster-wide, and it happened on the owner.
	if got := b.srv.met.executed.Value(); got != 1 {
		t.Fatalf("owner executed %d runs, want 1", got)
	}
	if got := a.srv.met.executed.Value(); got != 0 {
		t.Fatalf("non-owner executed %d runs, want 0", got)
	}
	if got := a.srv.met.proxied.Value(); got != 1 {
		t.Fatalf("non-owner proxied %d runs, want 1", got)
	}

	// The proxied result entered A's own store: resubmission hits the
	// cache without touching B.
	hit, err := a.c.SubmitRunJSON(ctx, []byte(body))
	if err != nil || !hit.Cached {
		t.Fatalf("resubmit via non-owner: %v cached=%v", err, hit.Cached)
	}
	if !bytes.Equal(hit.Result, want) {
		t.Fatal("non-owner cached result differs")
	}
	if got := b.srv.met.executed.Value(); got != 1 {
		t.Fatalf("resubmission re-executed on owner (%d)", got)
	}

	// The ownership preview agrees with where the run went.
	info, err := a.c.Cluster(ctx, hashOf(t, body))
	if err != nil {
		t.Fatal(err)
	}
	if info.Ownership == nil || info.Ownership.Owner.ID != b.srv.nodeID {
		t.Fatalf("ownership preview disagrees: %+v", info.Ownership)
	}
	if len(info.View.Live()) != 2 {
		t.Fatalf("view has %d live members, want 2", len(info.View.Live()))
	}
}

// TestProxyFallbackLocal pins the availability contract: a hash owned
// by an unreachable peer executes locally instead of failing, with the
// fallback counted.
func TestProxyFallbackLocal(t *testing.T) {
	// A seed list naming a dead owner: nothing listens on the peer port.
	dead := "http://127.0.0.1:1"
	srv, err := New(hbOpts(Options{Workers: 2, Node: "http://127.0.0.1:2", Peers: []string{dead}}))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	c := client.New("http://" + ln.Addr().String())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	}()
	ctx := ctxT(t)

	body := configOwnedBy(t, srv, srv.clu.SelfID(), 60, 5000)
	// We need the opposite: a config owned by the dead seed.
	deadID := ""
	for _, n := range srv.clusterView().Nodes {
		if n.ID != srv.nodeID {
			deadID = n.ID
		}
	}
	body = configOwnedBy(t, srv, deadID, 60, 5000)
	want := directBytes(t, body)

	st, err := c.SubmitRunJSON(ctx, []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("fallback run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatal("fallback result differs from direct run")
	}
	if got := srv.met.proxyFallbck.Value(); got != 1 {
		t.Fatalf("fallback counter %d, want 1", got)
	}
	if got := srv.met.executed.Value(); got != 1 {
		t.Fatalf("executed %d, want 1", got)
	}
}

// TestForwardReresolve is the regression test for the one-hop bound
// dropping requests when ownership moves mid-flight: a forwarded
// submission arriving at a node whose membership view is NEWER than
// the sender's, and whose view assigns the hash to a third node, must
// be re-resolved and forwarded once more — not executed by a node that
// no longer owns it.
func TestForwardReresolve(t *testing.T) {
	nodes := bootCluster(t, 3, func(i int, self string, peers []string) Options {
		return hbOpts(Options{Workers: 2, Node: self, Peers: peers})
	})
	a, b, c := nodes[0], nodes[1], nodes[2]
	ctx := ctxT(t)

	// A config owned by C in everyone's (identical) view.
	body := configOwnedBy(t, b.srv, c.srv.nodeID, 100, 5000)
	want := directBytes(t, body)

	// Simulate a stale sender: a forwarded request claiming view version
	// 0 from a node that routed before C joined. B's view version is
	// strictly newer, B is not the owner, the claimed sender is not the
	// owner — so B must re-resolve and forward to C.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/runs",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, fmt.Sprintf("%s 0 1", a.srv.nodeID))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st runStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded submit: status %d", resp.StatusCode)
	}

	final, err := b.c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("re-resolved run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatal("re-resolved result differs from direct run")
	}
	if got := b.srv.met.reresolved.Value(); got != 1 {
		t.Fatalf("re-resolve counter %d, want 1", got)
	}
	if got := b.srv.met.executed.Value(); got != 0 {
		t.Fatalf("stale receiver executed %d runs locally, want 0 (must follow the ownership move)", got)
	}
	if got := c.srv.met.executed.Value(); got != 1 {
		t.Fatalf("true owner executed %d runs, want 1", got)
	}
}

// TestKillOwnerMidSweep is the headline resilience contract: a sweep
// submitted before the owner dies completes with results byte-identical
// to a direct Run, one terminal frame per leg (none lost, none
// duplicated), every re-homed execution counted, and every job ID
// resolvable on all surviving nodes.
func TestKillOwnerMidSweep(t *testing.T) {
	nodes := bootCluster(t, 3, func(i int, self string, peers []string) Options {
		o := hbOpts(Options{Workers: 2, Node: self, Peers: peers})
		if i == 1 {
			o.Workers = 1 // serialize the doomed owner so legs are in flight when it dies
		}
		return o
	})
	a, b, c := nodes[0], nodes[1], nodes[2]
	ctx := ctxT(t)

	// A sweep with several B-owned legs (slow enough to still be running
	// when B dies) plus legs owned elsewhere.
	const slowInstr = 120000
	var bodies []string
	bOwned := 0
	for seed := int64(200); len(bodies) < 6 && seed < 900; seed++ {
		cand := cfgWith(seed, slowInstr)
		owner, ok := a.srv.clu.Owner(hashOf(t, cand))
		if !ok {
			t.Fatal("no owner")
		}
		if owner.ID == b.srv.nodeID {
			if bOwned >= 3 {
				continue
			}
			bOwned++
		}
		bodies = append(bodies, cand)
	}
	if bOwned == 0 {
		t.Fatal("sweep has no B-owned legs")
	}
	wants := make([][]byte, len(bodies))
	for i, body := range bodies {
		wants[i] = directBytes(t, body)
	}
	payload := "[" + strings.Join(bodies, ",") + "]"

	// Kill B as soon as it starts executing its first leg.
	go func() {
		deadline := time.Now().Add(time.Minute)
		for b.srv.met.executed.Value() == 0 {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(time.Millisecond)
		}
		killNode(t, b)
	}()

	frames := map[int]client.SweepResult{}
	summary, err := a.c.SweepJSON(ctx, []byte(payload), func(sr client.SweepResult) error {
		if _, dup := frames[sr.Index]; dup {
			t.Errorf("index %d streamed twice", sr.Index)
		}
		frames[sr.Index] = sr
		return nil
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}

	// No lost or duplicated legs, everything done, bytes identical.
	if summary.Total != len(bodies) || summary.Done != len(bodies) ||
		summary.Failed != 0 || summary.Canceled != 0 || summary.Unsubmitted != 0 {
		t.Fatalf("summary %+v, want all %d done", summary, len(bodies))
	}
	if len(frames) != len(bodies) {
		t.Fatalf("%d frames, want %d", len(frames), len(bodies))
	}
	for i := range bodies {
		fr, ok := frames[i]
		if !ok {
			t.Fatalf("leg %d lost", i)
		}
		if !bytes.Equal(fr.Result, wants[i]) {
			t.Fatalf("leg %d: result differs from direct run (%d vs %d bytes)",
				i, len(fr.Result), len(wants[i]))
		}
	}

	// The owner death was noticed and the re-homing counted: every
	// execution beyond one-per-config is accounted for by a handoff or
	// fallback counter — never a silent duplicate.
	handoffs := a.srv.met.proxyHandoff.Value() + a.srv.met.proxyFallbck.Value()
	if handoffs == 0 {
		t.Fatal("owner died mid-sweep but no handoff or fallback was counted")
	}
	totalExec := a.srv.met.executed.Value() + b.srv.met.executed.Value() + c.srv.met.executed.Value()
	if extra := int64(totalExec) - int64(len(bodies)); extra < 0 || uint64(extra) > handoffs {
		t.Fatalf("%d executions for %d configs with %d counted handoffs: silent duplication",
			totalExec, len(bodies), handoffs)
	}

	// Every leg's job ID resolves on both survivors, byte-identically.
	for i := range bodies {
		id := frames[i].ID
		for _, n := range []clusterNode{a, c} {
			st, err := n.c.GetRun(ctx, id)
			if err != nil {
				t.Fatalf("leg %d: resolving %s on %s: %v", i, id, n.base, err)
			}
			if st.State != client.StateDone || !bytes.Equal(st.Result, wants[i]) {
				t.Fatalf("leg %d: %s resolved on %s as %s with %d bytes", i, id, n.base, st.State, len(st.Result))
			}
		}
	}
}

// TestReplicationSurvivesOwnerDeath: a result executed on its owner is
// pushed write-behind to the HRW successors, so after the owner dies a
// successor serves the run — same job ID, same bytes — having executed
// nothing itself.
func TestReplicationSurvivesOwnerDeath(t *testing.T) {
	nodes := bootCluster(t, 3, func(i int, self string, peers []string) Options {
		return hbOpts(Options{Workers: 2, Node: self, Peers: peers})
	})
	a, b, c := nodes[0], nodes[1], nodes[2]
	ctx := ctxT(t)

	body := configOwnedBy(t, a.srv, b.srv.nodeID, 300, 5000)
	hash := hashOf(t, body)
	want := directBytes(t, body)

	st, err := a.c.SubmitRunJSON(ctx, []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	final, err := a.c.Wait(ctx, st.ID)
	if err != nil || final.State != client.StateDone {
		t.Fatalf("run: %v %+v", err, final)
	}

	// Wait for the write-behind replica to land on C (A already has the
	// bytes copy-on-proxy; C only ever gets them via replication).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := c.srv.results.Get(hash); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never landed on the successor")
		}
		time.Sleep(5 * time.Millisecond)
	}

	killNode(t, b)

	// The successor serves the run's ID from its replicated store:
	// byte-identical, zero executions of its own.
	got, err := c.c.GetRun(ctx, st.ID)
	if err != nil {
		t.Fatalf("resolving %s on successor: %v", st.ID, err)
	}
	if got.State != client.StateDone || !bytes.Equal(got.Result, want) {
		t.Fatalf("successor served %s with %d bytes", got.State, len(got.Result))
	}
	if exec := c.srv.met.executed.Value(); exec != 0 {
		t.Fatalf("successor executed %d runs, want 0 (replica must serve)", exec)
	}
	// A resubmission of the config anywhere is a store hit, not a
	// re-execution.
	hit, err := c.c.SubmitRunJSON(ctx, []byte(body))
	if err != nil || !hit.Cached {
		t.Fatalf("post-death resubmit: %v cached=%v", err, hit.Cached)
	}
	if c.srv.met.executed.Value() != 0 {
		t.Fatal("post-death resubmit re-executed")
	}
}

// TestMembershipChurnResolvable: a join/leave cycle keeps every job ID
// resolvable from every live node — the late joiner learns the minting
// nodes transitively and proxies or serves accordingly.
func TestMembershipChurnResolvable(t *testing.T) {
	nodes := bootCluster(t, 2, func(i int, self string, peers []string) Options {
		return hbOpts(Options{Workers: 2, Node: self, Peers: peers})
	})
	a, b := nodes[0], nodes[1]
	ctx := ctxT(t)

	// One run minted on each node.
	bodyA, bodyB := cfgWith(400, 5000), cfgWith(401, 5000)
	stA, err := a.c.SubmitRunJSON(ctx, []byte(bodyA))
	if err != nil {
		t.Fatal(err)
	}
	stB, err := b.c.SubmitRunJSON(ctx, []byte(bodyB))
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := a.c.Wait(ctx, stA.ID); err != nil || fin.State != client.StateDone {
		t.Fatalf("run A: %v %+v", err, fin)
	}
	if fin, err := b.c.Wait(ctx, stB.ID); err != nil || fin.State != client.StateDone {
		t.Fatalf("run B: %v %+v", err, fin)
	}

	// Join: a third node seeded with only A must learn B via gossip and
	// resolve both IDs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	joiner, err := New(hbOpts(Options{Workers: 2, Node: base, Peers: []string{a.base}}))
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: joiner.Handler()}
	go hs.Serve(ln)
	jn := clusterNode{srv: joiner, base: base, hs: hs, c: client.New(base)}
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
		joiner.Shutdown(sctx)
	})
	waitLive(t, []clusterNode{a, b, jn}, 3)

	for _, id := range []string{stA.ID, stB.ID} {
		for _, n := range []clusterNode{a, b, jn} {
			st, err := n.c.GetRun(ctx, id)
			if err != nil || st.State != client.StateDone || len(st.Result) == 0 {
				t.Fatalf("after join: %s on %s: %v %+v", id, n.base, err, st)
			}
		}
	}

	// Leave: kill the joiner; the survivors demote it and every ID
	// keeps resolving.
	killNode(t, jn)
	waitLive(t, []clusterNode{a, b}, 2)
	for _, id := range []string{stA.ID, stB.ID} {
		for _, n := range []clusterNode{a, b} {
			st, err := n.c.GetRun(ctx, id)
			if err != nil || st.State != client.StateDone {
				t.Fatalf("after leave: %s on %s: %v %+v", id, n.base, err, st)
			}
		}
	}
}

// TestSweepAdmissionControl: a sweep exceeding the cluster queue budget
// is rejected up front with the typed queue-full error and Retry-After,
// before any leg is committed.
func TestSweepAdmissionControl(t *testing.T) {
	nodes := bootCluster(t, 2, func(i int, self string, peers []string) Options {
		o := hbOpts(Options{Workers: 1, Node: self, Peers: peers})
		o.ClusterQueueBudget = 2
		return o
	})
	a := nodes[0]
	ctx := ctxT(t)

	bodies := make([]string, 5)
	for i := range bodies {
		bodies[i] = cfgWith(int64(500+i), 5000)
	}
	payload := "[" + strings.Join(bodies, ",") + "]"
	_, err := a.c.SweepJSON(ctx, []byte(payload), nil)
	if !errors.Is(err, client.ErrQueueFull) {
		t.Fatalf("over-budget sweep: %v, want ErrQueueFull", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
		t.Fatalf("over-budget sweep missing Retry-After: %v", err)
	}
	if got := a.srv.met.sweepBounced.Value(); got != 1 {
		t.Fatalf("admission-rejected counter %d, want 1", got)
	}

	// A within-budget sweep sails through.
	small := "[" + bodies[0] + "]"
	summary, err := a.c.SweepJSON(ctx, []byte(small), nil)
	if err != nil || summary.Done != 1 {
		t.Fatalf("within-budget sweep: %v %+v", err, summary)
	}
}

// TestSweepSSE is the batch contract: POST /v1/sweeps streams one
// result frame per config as it completes — each embedding the raw
// Result bytes, identical to a direct system.Run — and closes with a
// summary. A duplicated config still yields a frame per index.
func TestSweepSSE(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	ctx := ctxT(t)

	bodies := []string{smallConfig(70), smallConfig(71), smallConfig(70)}
	wants := make([][]byte, len(bodies))
	for i, b := range bodies {
		wants[i] = directBytes(t, b)
	}

	seen := map[int]bool{}
	var results []client.SweepResult
	summary, err := c.SweepJSON(ctx, []byte("["+strings.Join(bodies, ",")+"]"),
		func(sr client.SweepResult) error {
			if seen[sr.Index] {
				t.Fatalf("index %d streamed twice", sr.Index)
			}
			seen[sr.Index] = true
			results = append(results, sr)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	if len(results) != len(bodies) {
		t.Fatalf("%d result frames, want %d", len(results), len(bodies))
	}
	for _, r := range results {
		if r.State != client.StateDone {
			t.Fatalf("config %d ended %s: %s", r.Index, r.State, r.Error)
		}
		if !bytes.Equal(r.Result, wants[r.Index]) {
			t.Fatalf("config %d: streamed result differs from direct run (%d vs %d bytes)",
				r.Index, len(r.Result), len(wants[r.Index]))
		}
	}
	if summary.Total != 3 || summary.Done != 3 || summary.Failed != 0 || summary.Canceled != 0 {
		t.Fatalf("summary %+v", summary)
	}
}

// TestSweepValidation: an invalid element fails the whole batch with a
// typed invalid-config error naming the index, before any streaming.
func TestSweepValidation(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := ctxT(t)

	_, err := c.SweepJSON(ctx,
		[]byte(`[`+smallConfig(80)+`, {"schema": 1, "org": "nocstar", "apps": []}]`), nil)
	if !errors.Is(err, client.ErrInvalidConfig) {
		t.Fatalf("invalid element: %v, want ErrInvalidConfig", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || !strings.Contains(apiErr.Message, "config[1]") {
		t.Fatalf("error does not name the offending index: %v", err)
	}

	// Not an array at all.
	if _, err := c.SweepJSON(ctx, []byte(`{"not":"an array"}`), nil); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("non-array: %v, want ErrBadRequest", err)
	}
}

// TestSweepServesFromStore: a sweep resubmitted end-to-end is all cache
// hits — zero new executions — with byte-identical frames.
func TestSweepServesFromStore(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 2})
	ctx := ctxT(t)
	payload := []byte("[" + smallConfig(90) + "," + smallConfig(91) + "]")

	first := map[int][]byte{}
	if _, err := c.SweepJSON(ctx, payload, func(sr client.SweepResult) error {
		first[sr.Index] = sr.Result
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	executed := srv.met.executed.Value()
	if executed != 2 {
		t.Fatalf("first sweep executed %d, want 2", executed)
	}

	summary, err := c.SweepJSON(ctx, payload, func(sr client.SweepResult) error {
		if !sr.Cached {
			t.Fatalf("replayed config %d not served from store", sr.Index)
		}
		if !bytes.Equal(sr.Result, first[sr.Index]) {
			t.Fatalf("replayed config %d differs from first sweep", sr.Index)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.met.executed.Value() != executed {
		t.Fatal("replayed sweep re-executed configs")
	}
	if summary.CacheHits != 2 {
		t.Fatalf("replayed sweep cache hits %d, want 2", summary.CacheHits)
	}
}
