package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"nocstar/internal/system"
)

// directBytes is the byte-identity reference: json.Marshal of a direct
// in-process Run of the config.
func directBytes(t *testing.T, body string) []byte {
	t.Helper()
	cfg, err := system.UnmarshalConfig([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func hashOf(t *testing.T, body string) string {
	t.Helper()
	cfg, err := system.UnmarshalConfig([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	h, err := cfg.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestRestartSurvival populates the persistent store through one server,
// shuts it down, and verifies a brand-new server over the same directory
// serves the result as a cache hit — byte-identical, zero executions.
func TestRestartSurvival(t *testing.T) {
	dir := t.TempDir()
	body := smallConfig(40)
	want := directBytes(t, body)

	srv1, ts1 := newTestServer(t, Options{Workers: 2, StoreDir: dir})
	code, st := postRun(t, ts1.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if final := pollUntilTerminal(t, ts1.URL, st.ID); final.State != string(stateDone) {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same store directory.
	srv2, ts2 := newTestServer(t, Options{Workers: 2, StoreDir: dir})
	code, hit := postRun(t, ts2.URL, body)
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("post-restart submit: status %d cached=%v", code, hit.Cached)
	}
	if !bytes.Equal(hit.Result, want) {
		t.Fatalf("post-restart result differs from direct run (%d vs %d bytes)", len(hit.Result), len(want))
	}
	if got := srv2.met.executed.Value(); got != 0 {
		t.Fatalf("restarted server executed %d runs, want 0", got)
	}
}

// clusterNode boots a Server on a pre-bound loopback listener so peer
// URLs can exist before the servers that use them.
type clusterNode struct {
	srv  *Server
	base string
}

func bootCluster(t *testing.T, n int, mkOpts func(i int, self string, peers []string) Options) []clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]clusterNode, n)
	for i := range nodes {
		srv, err := New(mkOpts(i, peers[i], peers))
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		nodes[i] = clusterNode{srv: srv, base: peers[i]}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
			srv.Shutdown(ctx)
		})
	}
	return nodes
}

// TestTwoNodeProxy is the consistent-hash sharding contract: a config
// whose hash is owned by node B, submitted to node A, executes exactly
// once cluster-wide (on B), is served byte-identically through A, and
// afterwards lives in A's own store so A serves it without B.
func TestTwoNodeProxy(t *testing.T) {
	nodes := bootCluster(t, 2, func(i int, self string, peers []string) Options {
		return Options{Workers: 2, StoreDir: t.TempDir(), Node: self, Peers: peers}
	})
	a, b := nodes[0], nodes[1]

	// Find a config owned by B, so submitting to A must proxy.
	var body string
	for seed := int64(50); ; seed++ {
		if seed > 200 {
			t.Fatal("no B-owned config found in 150 seeds")
		}
		cand := smallConfig(seed)
		if a.srv.owner(hashOf(t, cand)) == b.base {
			body = cand
			break
		}
	}
	want := directBytes(t, body)

	code, st := postRun(t, a.base, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit via non-owner: status %d", code)
	}
	final := pollUntilTerminal(t, a.base, st.ID)
	if final.State != string(stateDone) {
		t.Fatalf("proxied run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("proxied result differs from direct run (%d vs %d bytes)", len(final.Result), len(want))
	}

	// Exactly one execution cluster-wide, and it happened on the owner.
	if got := b.srv.met.executed.Value(); got != 1 {
		t.Fatalf("owner executed %d runs, want 1", got)
	}
	if got := a.srv.met.executed.Value(); got != 0 {
		t.Fatalf("non-owner executed %d runs, want 0", got)
	}
	if got := a.srv.met.proxied.Value(); got != 1 {
		t.Fatalf("non-owner proxied %d runs, want 1", got)
	}

	// The proxied result entered A's own store: resubmission hits the
	// cache without touching B.
	code, hit := postRun(t, a.base, body)
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("resubmit via non-owner: status %d cached=%v", code, hit.Cached)
	}
	if !bytes.Equal(hit.Result, want) {
		t.Fatal("non-owner cached result differs")
	}
	if got := b.srv.met.executed.Value(); got != 1 {
		t.Fatalf("resubmission re-executed on owner (%d)", got)
	}
}

// TestProxyFallbackLocal pins the availability contract: a hash owned
// by an unreachable peer executes locally instead of failing.
func TestProxyFallbackLocal(t *testing.T) {
	// A peer list naming a dead owner: nothing listens on the peer port.
	dead := "http://127.0.0.1:1"
	srv, err := New(Options{Workers: 2, Node: "http://127.0.0.1:2", Peers: []string{"http://127.0.0.1:2", dead}})
	if err != nil {
		t.Fatal(err)
	}
	ts := struct{ URL string }{}
	hs, ln := serveOn(t, srv)
	ts.URL = "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	}()

	var body string
	for seed := int64(60); ; seed++ {
		if seed > 200 {
			t.Fatal("no dead-owned config found")
		}
		cand := smallConfig(seed)
		if srv.owner(hashOf(t, cand)) == dead {
			body = cand
			break
		}
	}
	want := directBytes(t, body)

	code, st := postRun(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID)
	if final.State != string(stateDone) {
		t.Fatalf("fallback run ended %s: %s", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatal("fallback result differs from direct run")
	}
	if got := srv.met.proxyFallbck.Value(); got != 1 {
		t.Fatalf("fallback counter %d, want 1", got)
	}
	if got := srv.met.executed.Value(); got != 1 {
		t.Fatalf("executed %d, want 1", got)
	}
}

func serveOn(t *testing.T, srv *Server) (*http.Server, net.Listener) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return hs, ln
}

// readSweep parses an SSE sweep stream into result frames and the
// terminal summary.
func readSweep(t *testing.T, body io.Reader) ([]sweepResult, sweepSummary) {
	t.Helper()
	var (
		results []sweepResult
		summary sweepSummary
		event   string
		sawSum  bool
	)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "result":
				var r sweepResult
				if err := json.Unmarshal(data, &r); err != nil {
					t.Fatalf("decoding result frame: %v", err)
				}
				results = append(results, r)
			case "summary":
				if err := json.Unmarshal(data, &summary); err != nil {
					t.Fatalf("decoding summary frame: %v", err)
				}
				sawSum = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSum {
		t.Fatal("stream ended without a summary event")
	}
	return results, summary
}

// TestSweepSSE is the batch contract: POST /v1/sweeps streams one
// result frame per config as it completes — each embedding the raw
// Result bytes, identical to a direct system.Run — and closes with a
// summary. A duplicated config still yields a frame per index.
func TestSweepSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})

	bodies := []string{smallConfig(70), smallConfig(71), smallConfig(70)}
	wants := make([][]byte, len(bodies))
	for i, b := range bodies {
		wants[i] = directBytes(t, b)
	}

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader("["+strings.Join(bodies, ",")+"]"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	results, summary := readSweep(t, resp.Body)

	if len(results) != len(bodies) {
		t.Fatalf("%d result frames, want %d", len(results), len(bodies))
	}
	seen := map[int]bool{}
	for _, r := range results {
		if seen[r.Index] {
			t.Fatalf("index %d streamed twice", r.Index)
		}
		seen[r.Index] = true
		if r.State != string(stateDone) {
			t.Fatalf("config %d ended %s: %s", r.Index, r.State, r.Error)
		}
		if !bytes.Equal(r.Result, wants[r.Index]) {
			t.Fatalf("config %d: streamed result differs from direct run (%d vs %d bytes)",
				r.Index, len(r.Result), len(wants[r.Index]))
		}
	}
	if summary.Total != 3 || summary.Done != 3 || summary.Failed != 0 || summary.Canceled != 0 {
		t.Fatalf("summary %+v", summary)
	}
}

// TestSweepValidation: an invalid element fails the whole batch with a
// 400 naming the index, before any streaming.
func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`[`+smallConfig(80)+`, {"schema": 1, "org": "nocstar", "apps": []}]`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "config[1]") {
		t.Fatalf("400 body does not name the offending index: %s", raw)
	}

	// Not an array at all.
	resp2, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(`{"not":"an array"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-array: status %d, want 400", resp2.StatusCode)
	}
}

// TestSweepServesFromStore: a sweep resubmitted end-to-end is all cache
// hits — zero new executions — with byte-identical frames.
func TestSweepServesFromStore(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	bodies := []string{smallConfig(90), smallConfig(91)}
	payload := "[" + strings.Join(bodies, ",") + "]"

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := readSweep(t, resp.Body)
	resp.Body.Close()
	executed := srv.met.executed.Value()
	if executed != 2 {
		t.Fatalf("first sweep executed %d, want 2", executed)
	}

	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	second, summary := readSweep(t, resp.Body)
	resp.Body.Close()
	if srv.met.executed.Value() != executed {
		t.Fatal("replayed sweep re-executed configs")
	}
	if summary.CacheHits != 2 {
		t.Fatalf("replayed sweep cache hits %d, want 2", summary.CacheHits)
	}
	byIdx := map[int][]byte{}
	for _, r := range first {
		byIdx[r.Index] = r.Result
	}
	for _, r := range second {
		if !r.Cached {
			t.Fatalf("replayed config %d not served from store", r.Index)
		}
		if !bytes.Equal(r.Result, byIdx[r.Index]) {
			t.Fatalf("replayed config %d differs from first sweep", r.Index)
		}
	}
}
