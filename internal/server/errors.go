package server

import (
	"net/http"

	"nocstar/internal/system"
)

// The unified error envelope: every non-2xx /v1 response carries
//
//	{"error":{"code":"...","message":"...","fields":[...]}}
//
// with a stable machine-readable code, so clients branch on codes
// instead of parsing prose. The public client package decodes this
// envelope into typed Go errors; testdata/error_envelope.golden.json
// pins the schema.

// Stable error codes. These are API surface: never renumber or reuse.
const (
	// codeBadRequest: the request itself is malformed (unreadable
	// body, bad query parameter, non-array sweep, oversized batch).
	codeBadRequest = "bad_request"
	// codeInvalidConfig: the submitted config failed decoding or
	// validation; Fields carries the per-field diagnoses when the
	// validator produced them.
	codeInvalidConfig = "invalid_config"
	// codeQueueFull: admission control rejected the work — the local
	// bounded queue is full, or a sweep exceeds the cluster-wide
	// queue budget. Responses carry Retry-After.
	codeQueueFull = "queue_full"
	// codeDraining: the node is shutting down and refuses new work.
	codeDraining = "draining"
	// codeNotFound: no such run, on this node or anywhere the
	// membership view can reach.
	codeNotFound = "not_found"
	// codeOwnerUnreachable: the job ID names a node the membership
	// view knows but cannot currently reach, and no replicated result
	// exists locally.
	codeOwnerUnreachable = "owner_unreachable"
	// codeInternal: the server failed; the message says how.
	codeInternal = "internal"
)

// errorBody is the inner error object.
type errorBody struct {
	Code    string              `json:"code"`
	Message string              `json:"message"`
	Fields  []system.FieldError `json:"fields,omitempty"`
}

// errorEnvelope is the top-level non-2xx response document.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// writeError emits one enveloped error response.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeErrorFields(w, status, code, message, nil)
}

// writeErrorFields emits one enveloped error response with per-field
// diagnoses.
func writeErrorFields(w http.ResponseWriter, status int, code, message string, fields []system.FieldError) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: message, Fields: fields}})
}
