package server

import "container/list"

// lru is a fixed-capacity least-recently-used cache from canonical
// config hash to the marshaled Result of a completed run. It amortizes
// the repeated-query pattern of paper sweeps: re-submitting a config
// already simulated serves the cached bytes instead of re-running.
// Callers synchronize access (the server's mutex).
type lru struct {
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lru) get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *lru) add(key string, val []byte) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lru) len() int { return c.order.Len() }
