package tlb

import (
	"math"

	"nocstar/internal/vm"
)

// L1Sizing is the Haswell per-core L1 TLB organization the paper models:
// 64-entry 4-way for 4K pages, 32-entry 4-way for 2M pages, 4-entry fully
// associative for 1G pages, all single-cycle and accessed in parallel with
// the L1 cache (VIPT).
type L1Sizing struct {
	Entries4K, Ways4K int
	Entries2M, Ways2M int
	Entries1G         int
}

// DefaultL1Sizing returns the paper's baseline L1 TLB sizes.
func DefaultL1Sizing() L1Sizing {
	return L1Sizing{Entries4K: 64, Ways4K: 4, Entries2M: 32, Ways2M: 4, Entries1G: 4}
}

// Scale returns the sizing with entry counts multiplied by f (the paper's
// 0.5× and 1.5× L1 studies in Fig. 6), rounded to the nearest valid
// power-of-two set count at the same associativity.
func (s L1Sizing) Scale(f float64) L1Sizing {
	scaleEntries := func(entries, ways int) int {
		if f == 1 {
			return entries
		}
		target := float64(entries) * f
		// Round set count to nearest power of two at fixed ways.
		sets := target / float64(ways)
		pow := math.Round(math.Log2(sets))
		if pow < 0 {
			pow = 0
		}
		return ways * (1 << uint(pow))
	}
	out := s
	out.Entries4K = scaleEntries(s.Entries4K, s.Ways4K)
	out.Entries2M = scaleEntries(s.Entries2M, s.Ways2M)
	n1g := int(math.Round(float64(s.Entries1G) * f))
	if n1g < 1 {
		n1g = 1
	}
	out.Entries1G = n1g
	return out
}

// L1Group is one core's set of per-page-size L1 TLBs.
type L1Group struct {
	t4k, t2m, t1g *TLB
}

// NewL1Group builds the three L1 TLBs from a sizing.
func NewL1Group(s L1Sizing) *L1Group {
	return &L1Group{
		t4k: New(Config{Name: "L1-4K", Entries: s.Entries4K, Ways: s.Ways4K, Sizes: []vm.PageSize{vm.Page4K}}),
		t2m: New(Config{Name: "L1-2M", Entries: s.Entries2M, Ways: s.Ways2M, Sizes: []vm.PageSize{vm.Page2M}}),
		t1g: New(Config{Name: "L1-1G", Entries: s.Entries1G, Ways: s.Entries1G, Sizes: []vm.PageSize{vm.Page1G}}),
	}
}

// Lookup probes the three arrays in parallel (hardware does this in one
// cycle). It returns the hit entry if any.
func (g *L1Group) Lookup(ctx vm.ContextID, va vm.VirtAddr) (Entry, bool) {
	if e, ok := g.t4k.Lookup(ctx, va); ok {
		return e, true
	}
	if e, ok := g.t2m.Lookup(ctx, va); ok {
		return e, true
	}
	if e, ok := g.t1g.Lookup(ctx, va); ok {
		return e, true
	}
	return Entry{}, false
}

// Insert places a translation in the array matching its page size.
func (g *L1Group) Insert(ctx vm.ContextID, vpn uint64, size vm.PageSize, pfn uint64) {
	g.bySize(size).Insert(ctx, vpn, size, pfn)
}

// Apply executes an invalidation against all three arrays, returning the
// number of entries removed.
func (g *L1Group) Apply(inv vm.Invalidation) int {
	if inv.FullFlush {
		return g.t4k.InvalidateContext(inv.Ctx) +
			g.t2m.InvalidateContext(inv.Ctx) +
			g.t1g.InvalidateContext(inv.Ctx)
	}
	return g.bySize(inv.Size).Apply(inv)
}

// Probe reports whether the group holds the translation, without
// touching LRU state or statistics (used by invariant checking to
// assert delivered shootdowns really removed their target).
func (g *L1Group) Probe(ctx vm.ContextID, vpn uint64, size vm.PageSize) bool {
	return g.bySize(size).Probe(ctx, vpn, size)
}

// Flush empties all three arrays.
func (g *L1Group) Flush() {
	g.t4k.Flush()
	g.t2m.Flush()
	g.t1g.Flush()
}

// bySize returns the array holding pages of size s.
func (g *L1Group) bySize(s vm.PageSize) *TLB {
	switch s {
	case vm.Page4K:
		return g.t4k
	case vm.Page2M:
		return g.t2m
	case vm.Page1G:
		return g.t1g
	}
	panic("tlb: invalid page size")
}

// Stats sums lookup statistics across the three arrays. A miss in the
// group is counted once per constituent array, so MissRate on the sum is
// not meaningful; use GroupStats for per-access accounting.
func (g *L1Group) Stats() (s4k, s2m, s1g Stats) {
	return g.t4k.Stats(), g.t2m.Stats(), g.t1g.Stats()
}

// ResetStats zeroes the counters of all three arrays.
func (g *L1Group) ResetStats() {
	g.t4k.ResetStats()
	g.t2m.ResetStats()
	g.t1g.ResetStats()
}

// GroupSnapshot deep-copies the warm state of all three arrays.
type GroupSnapshot struct {
	S4K, S2M, S1G Snapshot
}

// Snapshot deep-copies the group's warm state.
func (g *L1Group) Snapshot() GroupSnapshot {
	return GroupSnapshot{S4K: g.t4k.Snapshot(), S2M: g.t2m.Snapshot(), S1G: g.t1g.Snapshot()}
}

// RestoreSnapshot copies a group snapshot into this group's arrays.
func (g *L1Group) RestoreSnapshot(s GroupSnapshot) error {
	if err := g.t4k.RestoreSnapshot(s.S4K); err != nil {
		return err
	}
	if err := g.t2m.RestoreSnapshot(s.S2M); err != nil {
		return err
	}
	return g.t1g.RestoreSnapshot(s.S1G)
}

// TLB4K exposes the 4K array (used by sizing-sensitivity experiments).
func (g *L1Group) TLB4K() *TLB { return g.t4k }
