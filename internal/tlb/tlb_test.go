package tlb

import (
	"testing"
	"testing/quick"

	"nocstar/internal/vm"
)

func newSmall() *TLB {
	return New(Config{Name: "t", Entries: 8, Ways: 2, Sizes: []vm.PageSize{vm.Page4K, vm.Page2M}})
}

func TestLookupInsert(t *testing.T) {
	tl := newSmall()
	va := vm.VirtAddr(0x12345000)
	if _, ok := tl.Lookup(1, va); ok {
		t.Fatal("empty TLB hit")
	}
	tl.Insert(1, va.VPN(vm.Page4K), vm.Page4K, 0x999)
	e, ok := tl.Lookup(1, va)
	if !ok || e.PFN != 0x999 || e.Size != vm.Page4K {
		t.Fatalf("lookup = %+v %v", e, ok)
	}
	// Different context misses.
	if _, ok := tl.Lookup(2, va); ok {
		t.Fatal("wrong-context hit")
	}
	st := tl.Stats()
	if st.Lookups != 3 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDualPageSize(t *testing.T) {
	tl := newSmall()
	va := vm.VirtAddr(0x40000000)
	tl.Insert(1, va.VPN(vm.Page2M), vm.Page2M, 0x7)
	e, ok := tl.Lookup(1, va+0x123456)
	if !ok || e.Size != vm.Page2M || e.PFN != 0x7 {
		t.Fatalf("2M lookup through unified array failed: %+v %v", e, ok)
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := New(Config{Name: "t", Entries: 2, Ways: 2, Sizes: []vm.PageSize{vm.Page4K}})
	tl.Insert(1, 10, vm.Page4K, 1)
	tl.Insert(1, 20, vm.Page4K, 2)
	tl.Lookup(1, vm.VirtAddr(10<<12)) // refresh vpn 10
	if evicted := tl.Insert(1, 30, vm.Page4K, 3); !evicted {
		t.Fatal("full set insert did not evict")
	}
	if !tl.Probe(1, 10, vm.Page4K) {
		t.Fatal("MRU entry evicted")
	}
	if tl.Probe(1, 20, vm.Page4K) {
		t.Fatal("LRU entry survived")
	}
}

func TestInsertRefreshNoDuplicate(t *testing.T) {
	tl := newSmall()
	tl.Insert(1, 5, vm.Page4K, 100)
	tl.Insert(1, 5, vm.Page4K, 200) // remap: refresh in place
	if tl.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", tl.Occupancy())
	}
	e, _ := tl.Lookup(1, vm.VirtAddr(5<<12))
	if e.PFN != 200 {
		t.Fatalf("PFN = %d, want refreshed 200", e.PFN)
	}
}

func TestInvalidatePage(t *testing.T) {
	tl := newSmall()
	tl.Insert(3, 7, vm.Page4K, 1)
	if !tl.InvalidatePage(3, 7, vm.Page4K) {
		t.Fatal("invalidate missed present entry")
	}
	if tl.InvalidatePage(3, 7, vm.Page4K) {
		t.Fatal("double invalidate succeeded")
	}
	if tl.Probe(3, 7, vm.Page4K) {
		t.Fatal("entry survived invalidation")
	}
}

func TestInvalidateContext(t *testing.T) {
	tl := newSmall()
	tl.Insert(1, 1, vm.Page4K, 1)
	tl.Insert(1, 2, vm.Page4K, 2)
	tl.Insert(2, 3, vm.Page4K, 3)
	if n := tl.InvalidateContext(1); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if !tl.Probe(2, 3, vm.Page4K) {
		t.Fatal("other context's entry removed")
	}
}

func TestFlushAndOccupancy(t *testing.T) {
	tl := newSmall()
	for i := uint64(0); i < 6; i++ {
		tl.Insert(1, i, vm.Page4K, i)
	}
	occ := tl.Occupancy()
	if occ == 0 {
		t.Fatal("no occupancy after inserts")
	}
	if n := tl.Flush(); n != occ {
		t.Fatalf("flush dropped %d, occupancy was %d", n, occ)
	}
	if tl.Occupancy() != 0 {
		t.Fatal("entries survive flush")
	}
}

func TestApplyInvalidation(t *testing.T) {
	tl := newSmall()
	tl.Insert(4, 9, vm.Page4K, 5)
	tl.Insert(4, 11, vm.Page4K, 6)
	if n := tl.Apply(vm.Invalidation{Ctx: 4, VPN: 9, Size: vm.Page4K}); n != 1 {
		t.Fatalf("page apply = %d", n)
	}
	if n := tl.Apply(vm.Invalidation{Ctx: 4, FullFlush: true}); n != 1 {
		t.Fatalf("flush apply = %d", n)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 0},
		{Entries: 10, Ways: 4}, // not divisible into whole sets
		{Entries: -1, Ways: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestFullyAssociativeClamp(t *testing.T) {
	tl := New(Config{Name: "fa", Entries: 4, Ways: 0, Sizes: []vm.PageSize{vm.Page1G}})
	if tl.Sets() != 1 || tl.Ways() != 4 {
		t.Fatalf("sets=%d ways=%d, want 1x4", tl.Sets(), tl.Ways())
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty MissRate != 0")
	}
	s = Stats{Lookups: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
}

// Property: after inserting a random stream, looking up the most recent
// insert of any (ctx, vpn) pair that was never evicted or shadowed must
// hit. We verify the weaker but universal invariant: a lookup immediately
// after an insert hits and returns the inserted PFN.
func TestInsertLookupCoherenceProperty(t *testing.T) {
	tl := New(Config{Name: "p", Entries: 64, Ways: 4, Sizes: []vm.PageSize{vm.Page4K}})
	f := func(ctxRaw uint8, vpn uint32, pfn uint32) bool {
		ctx := vm.ContextID(ctxRaw)
		tl.Insert(ctx, uint64(vpn), vm.Page4K, uint64(pfn))
		e, ok := tl.Lookup(ctx, vm.VirtAddr(uint64(vpn)<<12))
		return ok && e.PFN == uint64(pfn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy never exceeds capacity and no (ctx,vpn,size) pair is
// ever duplicated.
func TestNoDuplicatesProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tl := New(Config{Name: "p", Entries: 16, Ways: 4, Sizes: []vm.PageSize{vm.Page4K}})
		for _, op := range ops {
			tl.Insert(vm.ContextID(op>>14), uint64(op&0x3f), vm.Page4K, uint64(op))
		}
		if tl.Occupancy() > 16 {
			return false
		}
		seen := map[[2]uint64]bool{}
		for s := 0; s < tl.Sets(); s++ {
			for _, vpn := range []uint64{0, 1, 2, 3} {
				_ = vpn
				_ = s
			}
		}
		// Probe the full key space used above for duplicates via Probe +
		// InvalidatePage: removing once must make a second probe miss.
		for ctx := 0; ctx < 4; ctx++ {
			for vpn := uint64(0); vpn < 64; vpn++ {
				if tl.Probe(vm.ContextID(ctx), vpn, vm.Page4K) {
					key := [2]uint64{uint64(ctx), vpn}
					if seen[key] {
						return false
					}
					seen[key] = true
					tl.InvalidatePage(vm.ContextID(ctx), vpn, vm.Page4K)
					if tl.Probe(vm.ContextID(ctx), vpn, vm.Page4K) {
						return false // duplicate entry
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestL1GroupLookupInsert(t *testing.T) {
	g := NewL1Group(DefaultL1Sizing())
	va4k := vm.VirtAddr(0x1000)
	va2m := vm.VirtAddr(0x40000000)
	va1g := vm.VirtAddr(0x80000000)
	g.Insert(1, va4k.VPN(vm.Page4K), vm.Page4K, 1)
	g.Insert(1, va2m.VPN(vm.Page2M), vm.Page2M, 2)
	g.Insert(1, va1g.VPN(vm.Page1G), vm.Page1G, 3)
	for _, tc := range []struct {
		va   vm.VirtAddr
		size vm.PageSize
	}{{va4k, vm.Page4K}, {va2m + 0x12345, vm.Page2M}, {va1g + 0x3456789, vm.Page1G}} {
		e, ok := g.Lookup(1, tc.va)
		if !ok || e.Size != tc.size {
			t.Fatalf("va %#x: %+v %v", tc.va, e, ok)
		}
	}
}

func TestL1GroupApplyAndFlush(t *testing.T) {
	g := NewL1Group(DefaultL1Sizing())
	g.Insert(1, 5, vm.Page4K, 1)
	g.Insert(1, 6, vm.Page2M, 2)
	if n := g.Apply(vm.Invalidation{Ctx: 1, VPN: 5, Size: vm.Page4K}); n != 1 {
		t.Fatalf("apply = %d", n)
	}
	if n := g.Apply(vm.Invalidation{Ctx: 1, FullFlush: true}); n != 1 {
		t.Fatalf("flush apply = %d", n)
	}
	g.Insert(2, 9, vm.Page4K, 1)
	g.Flush()
	if _, ok := g.Lookup(2, vm.VirtAddr(9<<12)); ok {
		t.Fatal("entry survived group flush")
	}
}

func TestL1SizingScale(t *testing.T) {
	s := DefaultL1Sizing()
	half := s.Scale(0.5)
	if half.Entries4K != 32 || half.Entries2M != 16 || half.Entries1G != 2 {
		t.Fatalf("0.5x sizing = %+v", half)
	}
	bigger := s.Scale(1.5)
	if bigger.Entries4K <= s.Entries4K {
		t.Fatalf("1.5x did not grow: %+v", bigger)
	}
	// Scaled geometries must construct valid TLBs.
	NewL1Group(half)
	NewL1Group(bigger)
	same := s.Scale(1)
	if same != s {
		t.Fatalf("1x scale changed sizing: %+v", same)
	}
}

func TestL1GroupStats(t *testing.T) {
	g := NewL1Group(DefaultL1Sizing())
	g.Lookup(1, 0x1000)
	s4k, s2m, s1g := g.Stats()
	if s4k.Lookups != 1 || s2m.Lookups != 1 || s1g.Lookups != 1 {
		t.Fatalf("stats = %+v %+v %+v", s4k, s2m, s1g)
	}
	if g.TLB4K() == nil {
		t.Fatal("TLB4K accessor nil")
	}
}

func TestIndexHashSpreadsStridedVPNs(t *testing.T) {
	// VPNs strided by 32 (a 32-slice system's resident pattern) must not
	// all collapse onto a handful of sets when IndexHash is on.
	hashed := New(Config{Name: "h", Entries: 1024, Ways: 8, IndexHash: true, Sizes: []vm.PageSize{vm.Page4K}})
	plain := New(Config{Name: "p", Entries: 1024, Ways: 8, Sizes: []vm.PageSize{vm.Page4K}})
	for i := uint64(0); i < 1024; i++ {
		hashed.Insert(1, i*32, vm.Page4K, i)
		plain.Insert(1, i*32, vm.Page4K, i)
	}
	if h, p := hashed.Occupancy(), plain.Occupancy(); h <= p {
		t.Fatalf("hashed occupancy %d not above plain %d for strided VPNs", h, p)
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// The paper's area-normalized 920-entry NOCSTAR slice: 115 sets of 8.
	tl := New(Config{Name: "slice", Entries: 920, Ways: 8, Sizes: []vm.PageSize{vm.Page4K}})
	if tl.Sets() != 115 {
		t.Fatalf("sets = %d, want 115", tl.Sets())
	}
	for vpn := uint64(0); vpn < 5000; vpn++ {
		tl.Insert(1, vpn, vm.Page4K, vpn)
		if _, ok := tl.Lookup(1, vm.VirtAddr(vpn<<12)); !ok {
			t.Fatalf("lookup after insert failed at vpn %d", vpn)
		}
	}
	if occ := tl.Occupancy(); occ > 920 {
		t.Fatalf("occupancy %d exceeds capacity", occ)
	}
}

func TestMaxCtxWaysQuota(t *testing.T) {
	// One set of 8 ways, quota 5: context 1 floods, context 2's entries
	// must survive once inserted.
	tl := New(Config{Name: "qos", Entries: 8, Ways: 8, MaxCtxWays: 5, Sizes: []vm.PageSize{vm.Page4K}})
	tl.Insert(2, 100, vm.Page4K, 1)
	tl.Insert(2, 101, vm.Page4K, 1)
	tl.Insert(2, 102, vm.Page4K, 1)
	for vpn := uint64(0); vpn < 50; vpn++ {
		tl.Insert(1, vpn, vm.Page4K, vpn)
	}
	for _, vpn := range []uint64{100, 101, 102} {
		if !tl.Probe(2, vpn, vm.Page4K) {
			t.Fatalf("victim entry %d evicted despite quota", vpn)
		}
	}
	// The aggressor holds at most its quota.
	own := 0
	for vpn := uint64(0); vpn < 50; vpn++ {
		if tl.Probe(1, vpn, vm.Page4K) {
			own++
		}
	}
	if own > 5 {
		t.Fatalf("aggressor holds %d ways, quota is 5", own)
	}
}

func TestMaxCtxWaysStillFillsEmpty(t *testing.T) {
	// Quotas never block filling invalid ways.
	tl := New(Config{Name: "qos", Entries: 8, Ways: 8, MaxCtxWays: 2, Sizes: []vm.PageSize{vm.Page4K}})
	for vpn := uint64(0); vpn < 8; vpn++ {
		tl.Insert(1, vpn, vm.Page4K, vpn)
	}
	if occ := tl.Occupancy(); occ != 8 {
		t.Fatalf("sole tenant limited to %d entries by its own quota", occ)
	}
}
