package tlb

import (
	"testing"

	"nocstar/internal/vm"
)

// benchFill populates a TLB with n consecutive 4K translations of ctx 1.
func benchFill(t *TLB, n uint64) {
	for vpn := uint64(0); vpn < n; vpn++ {
		t.Insert(1, vpn, vm.Page4K, vpn+100)
	}
}

// BenchmarkLookupHitL1 probes a Haswell-sized L1 4K array (64 entries,
// 4-way) with addresses that always hit, the dominant probe in the
// simulator: every memory reference starts here.
func BenchmarkLookupHitL1(b *testing.B) {
	t := New(Config{Name: "L1-4K", Entries: 64, Ways: 4, Sizes: []vm.PageSize{vm.Page4K}})
	benchFill(t, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := vm.VirtAddr(uint64(i) % 64 << 12)
		if _, ok := t.Lookup(1, va); !ok {
			b.Fatal("expected hit")
		}
	}
}

// BenchmarkLookupMissL1 probes the same array with addresses that always
// miss — the path every L1 miss pays three times (4K, 2M, 1G arrays).
func BenchmarkLookupMissL1(b *testing.B) {
	t := New(Config{Name: "L1-4K", Entries: 64, Ways: 4, Sizes: []vm.PageSize{vm.Page4K}})
	benchFill(t, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := vm.VirtAddr((uint64(i)%64 + 1000) << 12)
		if _, ok := t.Lookup(1, va); ok {
			b.Fatal("expected miss")
		}
	}
}

// BenchmarkLookupHitSlice probes a shared-slice-sized unified array (920
// entries is not set-divisible; slices use hashed power-of-two sets) with
// both supported page sizes live, so the probe pays the two-size loop.
func BenchmarkLookupHitSlice(b *testing.B) {
	t := New(Config{Name: "slice", Entries: 1024, Ways: 8,
		Sizes: []vm.PageSize{vm.Page4K, vm.Page2M}, IndexHash: true})
	benchFill(t, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := vm.VirtAddr(uint64(i) % 1024 << 12)
		t.Lookup(1, va)
	}
}

// BenchmarkInsert exercises the insert/evict path on a full array.
func BenchmarkInsert(b *testing.B) {
	t := New(Config{Name: "slice", Entries: 1024, Ways: 8,
		Sizes: []vm.PageSize{vm.Page4K, vm.Page2M}, IndexHash: true})
	benchFill(t, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(1, uint64(i), vm.Page4K, uint64(i))
	}
}
