// Package tlb implements the TLB structures of the paper: set-associative
// translation arrays whose entries carry a valid bit, a context ID, and
// the translation (Section III-A), split per-page-size L1 TLBs matching
// the Haswell organization, and unified dual-page-size L2 TLBs used as
// private L2 TLBs, monolithic shared banks, or distributed shared slices.
package tlb

import (
	"fmt"

	"nocstar/internal/vm"
)

// Entry is one TLB entry.
type Entry struct {
	Valid bool
	Ctx   vm.ContextID
	VPN   uint64 // page number at Size granularity
	Size  vm.PageSize
	PFN   uint64 // physical frame number at Size granularity
	lru   uint64
}

// Packed-key layout: the way-match loop — the hottest code in the
// simulator — compares one word per way instead of four fields. Bit 63
// is the valid bit (a zero key never matches), bits 62-61 the page size,
// bits 60-45 the 16-bit context ID, and bits 44-0 the VPN. 2^45 4 KiB
// pages cover a 128 TB address space, beyond every layout constant in
// the model; keyFor panics if a VPN ever overflows the field rather than
// silently aliasing.
const (
	keyValid    = uint64(1) << 63
	keySizeLsb  = 61
	keyCtxLsb   = 45
	keyVPNBits  = keyCtxLsb
	keyVPNLimit = uint64(1) << keyVPNBits
)

// keyFor builds the packed comparison key of a live entry.
func keyFor(ctx vm.ContextID, size vm.PageSize, vpn uint64) uint64 {
	if vpn >= keyVPNLimit {
		panic("tlb: VPN overflows packed key")
	}
	return keyValid | uint64(size)<<keySizeLsb | uint64(ctx)<<keyCtxLsb | vpn
}

// Config describes a TLB array.
type Config struct {
	Name    string
	Entries int           // total entry count
	Ways    int           // associativity; Ways >= Entries means fully associative
	Sizes   []vm.PageSize // page sizes this array can hold
	// IndexHash folds high VPN bits into the set index. Distributed
	// shared slices need it: slice selection consumes low address bits,
	// so plain modulo indexing inside a slice would alias entire page
	// ranges onto a few sets.
	IndexHash bool
	// MaxCtxWays caps how many ways of each set a single context may
	// occupy (0 = no cap). This is the QoS/fairness partitioning the
	// paper leaves as future work: it stops one aggressive application
	// from monopolizing shared slices in multiprogrammed mixes.
	MaxCtxWays int
}

// Stats counts TLB events since construction.
type Stats struct {
	Lookups     uint64
	Hits        uint64
	Misses      uint64
	Inserts     uint64
	Evictions   uint64
	Invalidated uint64
}

// MissRate returns misses/lookups, or 0 with no lookups.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// TLB is a set-associative translation array. Entries of different page
// sizes coexist in the same physical array (Haswell's unified L2 TLB holds
// 4K and 2M translations concurrently); lookups probe once per supported
// size, as skewed/unified TLBs do in hardware.
type TLB struct {
	cfg Config
	// entries holds all sets contiguously, set-major: set s spans
	// entries[s*ways : (s+1)*ways]. One flat array keeps a whole set on
	// adjacent cache lines and removes the per-set pointer chase of a
	// slice-of-slices layout — Lookup/Insert are the hottest flat CPU in
	// the simulator's profile.
	entries []Entry
	// keys mirrors entries as a contiguous set-major block of packed
	// key words: keys[i] is keyFor(entries[i]) or zero when invalid. The
	// way-match scan runs over this block — compare every way,
	// accumulate a match mask, then select — so a whole 4-way set costs
	// half a 64-byte line and entries is only touched on a hit.
	// Maintained by Insert and the invalidation paths.
	keys    []uint64
	ways    int
	nsets   uint64
	setMask uint64 // nsets-1 when nsets is a power of two, else 0
	tick    uint64
	stats   Stats
	sizes   []vm.PageSize
}

// New returns an empty TLB. Entries must be divisible into power-of-two
// sets by Ways (after clamping Ways to Entries); New panics on a malformed
// geometry since that is a configuration bug.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic("tlb: Entries must be positive")
	}
	ways := cfg.Ways
	if ways <= 0 || ways > cfg.Entries {
		ways = cfg.Entries
	}
	nsets := cfg.Entries / ways
	if nsets*ways != cfg.Entries {
		panic(fmt.Sprintf("tlb: %d entries not divisible by %d ways", cfg.Entries, ways))
	}
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = []vm.PageSize{vm.Page4K}
	}
	t := &TLB{
		cfg:     cfg,
		entries: make([]Entry, nsets*ways),
		keys:    make([]uint64, nsets*ways),
		ways:    ways,
		nsets:   uint64(nsets),
		sizes:   sizes,
	}
	if nsets&(nsets-1) == 0 {
		t.setMask = uint64(nsets - 1)
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Sets reports the number of sets.
func (t *TLB) Sets() int { return int(t.nsets) }

// Ways reports the effective associativity.
func (t *TLB) Ways() int { return t.ways }

// Stats returns a copy of the event counters.
func (t *TLB) Stats() Stats { return t.stats }

// setFor returns the set index for a page number. The paper's design uses
// simple modulo indexing on low-order VPN bits (Section III-E); with
// IndexHash the higher bits are XOR-folded in first.
func (t *TLB) setFor(vpn uint64) uint64 {
	if t.cfg.IndexHash {
		vpn ^= vpn >> 13
		vpn ^= vpn >> 7
	}
	if t.setMask != 0 || t.nsets == 1 {
		return vpn & t.setMask
	}
	return vpn % t.nsets
}

// set returns the ways of one set as a sub-slice of the flat array.
func (t *TLB) set(vpn uint64) []Entry {
	i := int(t.setFor(vpn)) * t.ways
	return t.entries[i : i+t.ways]
}

// findWay scans one set's keys for key and returns the matching way, or
// -1. At most one way matches (Insert refreshes duplicates in place).
// A branch-free compare-all-then-select variant of this scan (accumulate
// per-way equality bits into a mask, pick with bits.TrailingZeros64) was
// benchmarked in BenchmarkLookup* and lost to the early exit on both hit
// and miss: with ≤8 single-word keys per set the whole block is one or
// two cache lines either way, and the predictable early exit saves the
// mask bookkeeping. Lookup repeats this body inline — keep them in sync.
func (t *TLB) findWay(base int, key uint64) int {
	keys := t.keys[base : base+t.ways]
	for w := 0; w < len(keys); w++ {
		if keys[w] == key {
			return w
		}
	}
	return -1
}

// Lookup probes the array for the translation of va in context ctx,
// trying every supported page size. It returns the matching entry.
//
// This is the hottest function in the simulator — every memory reference
// probes three L1 arrays through it — so the findWay scan is repeated
// inline here: the compiler does not inline functions with loops, and an
// outlined call per size costs more than the whole scan of a 4-way set,
// which touches at most two cache lines of packed keys.
func (t *TLB) Lookup(ctx vm.ContextID, va vm.VirtAddr) (Entry, bool) {
	t.stats.Lookups++
	t.tick++
	for _, size := range t.sizes {
		vpn := va.VPN(size)
		key := keyValid | uint64(size)<<keySizeLsb | uint64(ctx)<<keyCtxLsb | vpn
		base := int(t.setFor(vpn)) * t.ways
		keys := t.keys[base : base+t.ways]
		for w := 0; w < len(keys); w++ {
			if keys[w] == key {
				e := &t.entries[base+w]
				e.lru = t.tick
				t.stats.Hits++
				return *e, true
			}
		}
	}
	t.stats.Misses++
	return Entry{}, false
}

// Probe reports whether the translation is present without touching LRU
// state or counting statistics (used by invariants and shootdown checks).
func (t *TLB) Probe(ctx vm.ContextID, vpn uint64, size vm.PageSize) bool {
	base := int(t.setFor(vpn)) * t.ways
	return t.findWay(base, keyFor(ctx, size, vpn)) >= 0
}

// Insert installs a translation, replacing the set's LRU entry when full.
// Inserting an already-present translation refreshes it in place. When a
// MaxCtxWays quota is configured and the inserting context is at its
// cap, the victim is the context's own LRU entry, preserving other
// applications' occupancy. It reports whether a valid entry was evicted.
func (t *TLB) Insert(ctx vm.ContextID, vpn uint64, size vm.PageSize, pfn uint64) bool {
	t.stats.Inserts++
	t.tick++
	base := int(t.setFor(vpn)) * t.ways
	set := t.entries[base : base+t.ways]
	key := keyFor(ctx, size, vpn)
	keys := t.keys[base : base+t.ways]
	victim := 0
	ctxWays := 0
	ownLRU := -1
	for i := range set {
		if keys[i] == key {
			e := &set[i]
			e.PFN = pfn
			e.lru = t.tick
			return false
		}
		e := &set[i]
		if !e.Valid {
			victim = i
			// Keep scanning: the entry might exist in a later way.
			continue
		}
		if e.Ctx == ctx {
			ctxWays++
			if ownLRU < 0 || e.lru < set[ownLRU].lru {
				ownLRU = i
			}
		}
		if set[victim].Valid && e.lru < set[victim].lru {
			victim = i
		}
	}
	if t.cfg.MaxCtxWays > 0 && ctxWays >= t.cfg.MaxCtxWays && set[victim].Valid &&
		set[victim].Ctx != ctx && ownLRU >= 0 {
		victim = ownLRU
	}
	evicted := set[victim].Valid
	if evicted {
		t.stats.Evictions++
	}
	set[victim] = Entry{Valid: true, Ctx: ctx, VPN: vpn, Size: size, PFN: pfn, lru: t.tick}
	t.keys[base+victim] = key
	return evicted
}

// InvalidatePage removes the translation of (ctx, vpn, size) if present,
// reporting whether an entry was invalidated.
func (t *TLB) InvalidatePage(ctx vm.ContextID, vpn uint64, size vm.PageSize) bool {
	base := int(t.setFor(vpn)) * t.ways
	w := t.findWay(base, keyFor(ctx, size, vpn))
	if w < 0 {
		return false
	}
	t.entries[base+w].Valid = false
	t.keys[base+w] = 0
	t.stats.Invalidated++
	return true
}

// InvalidateContext removes every translation belonging to ctx, returning
// the number invalidated (an x86 context-switch flush for shared TLBs).
func (t *TLB) InvalidateContext(ctx vm.ContextID) int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.Ctx == ctx {
			e.Valid = false
			t.keys[i] = 0
			n++
		}
	}
	t.stats.Invalidated += uint64(n)
	return n
}

// Flush removes everything, returning the number of entries dropped.
func (t *TLB) Flush() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
		t.entries[i] = Entry{}
	}
	clear(t.keys)
	t.stats.Invalidated += uint64(n)
	return n
}

// Apply executes a vm.Invalidation against this array, returning the
// number of entries removed.
func (t *TLB) Apply(inv vm.Invalidation) int {
	if inv.FullFlush {
		return t.InvalidateContext(inv.Ctx)
	}
	if t.InvalidatePage(inv.Ctx, inv.VPN, inv.Size) {
		return 1
	}
	return 0
}

// ResetStats zeroes the event counters, so a measurement window that
// begins mid-run (after a warmup) counts only its own events. Array
// contents and LRU state are untouched.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Snapshot is a deep copy of a TLB's warm state: the entry array, the
// packed key mirror, and the LRU tick. Statistics are deliberately
// excluded — a snapshot is taken at a measurement boundary where they
// have just been reset. The layout is versioned by
// system.CheckpointVersion.
type Snapshot struct {
	Entries []Entry
	Keys    []uint64
	Tick    uint64
}

// Snapshot deep-copies the array's warm state.
func (t *TLB) Snapshot() Snapshot {
	s := Snapshot{
		Entries: make([]Entry, len(t.entries)),
		Keys:    make([]uint64, len(t.keys)),
		Tick:    t.tick,
	}
	copy(s.Entries, t.entries)
	copy(s.Keys, t.keys)
	return s
}

// RestoreSnapshot copies a snapshot's state into this array. The snapshot
// is not aliased, so one snapshot can seed many arrays concurrently. It
// errors if the geometries disagree.
func (t *TLB) RestoreSnapshot(s Snapshot) error {
	if len(s.Entries) != len(t.entries) || len(s.Keys) != len(t.keys) {
		return fmt.Errorf("tlb: snapshot geometry %d/%d entries/keys does not match array %d/%d",
			len(s.Entries), len(s.Keys), len(t.entries), len(t.keys))
	}
	copy(t.entries, s.Entries)
	copy(t.keys, s.Keys)
	t.tick = s.Tick
	return nil
}

// Occupancy reports the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
	}
	return n
}
