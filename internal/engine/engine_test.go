package engine

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(5, func() { got = append(got, 5) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(3, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle order not FIFO: %v", got)
		}
	}
}

func TestZeroDelayRunsThisCycle(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(2, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "b") })
	})
	e.Schedule(3, func() { order = append(order, "c") })
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestEndOfCycleAfterEvents(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(4, func() {
		e.AtEndOfCycle(func() { order = append(order, "final") })
		e.Schedule(0, func() { order = append(order, "late-event") })
		order = append(order, "event")
	})
	e.Run()
	want := []string{"event", "late-event", "final"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFinalizerCanScheduleNextCycle(t *testing.T) {
	e := New()
	hits := 0
	var tick func()
	tick = func() {
		e.AtEndOfCycle(func() {
			hits++
			if hits < 5 {
				e.Schedule(1, tick)
			}
		})
	}
	e.Schedule(1, tick)
	e.Run()
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", e.Now())
	}
}

func TestFinalizerSameCycleEventLoop(t *testing.T) {
	// A finalizer schedules a zero-delay event which registers another
	// finalizer; the engine must keep alternating phases within the cycle.
	e := New()
	var order []string
	e.Schedule(1, func() {
		order = append(order, "ev1")
		e.AtEndOfCycle(func() {
			order = append(order, "fin1")
			e.Schedule(0, func() {
				order = append(order, "ev2")
				e.AtEndOfCycle(func() { order = append(order, "fin2") })
			})
		})
	})
	e.Run()
	want := []string{"ev1", "fin1", "ev2", "fin2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 1 {
		t.Fatalf("Now() = %d, want 1 (all work in one cycle)", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := make(map[Cycle]bool)
	for _, c := range []Cycle{1, 5, 10, 20} {
		c := c
		e.At(c, func() { ran[c] = true })
	}
	e.RunUntil(10)
	if !ran[1] || !ran[5] || !ran[10] {
		t.Fatalf("events within limit not run: %v", ran)
	}
	if ran[20] {
		t.Fatal("event beyond limit ran")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if !ran[20] {
		t.Fatal("remaining event not run by Run")
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(3, func() {})
	})
	e.Run()
}

func TestProcessedCounts(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.Schedule(Cycle(i), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", e.Processed())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Cycle {
		e := New()
		r := NewRand(42)
		var trace []Cycle
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth == 0 {
				return
			}
			e.Schedule(Cycle(1+r.Intn(10)), func() { spawn(depth - 1) })
			e.Schedule(Cycle(1+r.Intn(10)), func() { spawn(depth - 1) })
		}
		e.Schedule(0, func() { spawn(6) })
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d = %d, too far from uniform", i, b)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRandSplitIndependence(t *testing.T) {
	a := NewRand(99)
	b := a.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d collisions", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the 4-ary heap pops events in exact (when, seq) order under
// arbitrary interleavings of pushes and pops.
func TestEventQueueOrderProperty(t *testing.T) {
	f := func(whens []uint16, popEvery uint8) bool {
		var q eventQueue
		var drained []event
		seq := uint64(0)
		interval := int(popEvery%7) + 1
		for i, w := range whens {
			seq++
			q.push(event{when: Cycle(w % 50), seq: seq})
			if i%interval == 0 && q.len() > 0 {
				drained = append(drained, q.pop())
			}
		}
		for q.len() > 0 {
			drained = append(drained, q.pop())
		}
		if len(drained) != len(whens) {
			return false
		}
		// Within the drain phase the full (when, seq) order must hold;
		// across the mixed phase, popped events must never decrease in
		// `when` relative to what remains impossible to check simply, so
		// verify the invariant that matters: a later pop with the same
		// `when` has a larger seq, and the final drain is totally ordered.
		seenAt := map[Cycle]uint64{}
		for _, e := range drained {
			if s, ok := seenAt[e.when]; ok && e.seq <= s {
				return false
			}
			seenAt[e.when] = e.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: events always execute in non-decreasing cycle order, whatever
// the scheduling pattern.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		e := New()
		var seen []Cycle
		for _, d := range delays {
			e.Schedule(Cycle(d), func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
