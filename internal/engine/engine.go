// Package engine provides a deterministic cycle-driven discrete-event
// simulation core.
//
// The engine advances a single global clock measured in Cycle units.
// Events scheduled for the same cycle execute in the order they were
// scheduled, which makes runs with identical inputs bit-for-bit
// reproducible. A second phase per cycle — end-of-cycle finalizers —
// supports synchronous hardware semantics such as link arbitration, where
// every request issued during a cycle must be visible before any grant
// decision is made.
package engine

// Cycle is a point in simulated time, measured in clock cycles.
type Cycle uint64

// Actor handles typed events. Hot simulation paths schedule through
// ScheduleAct/AtAct instead of closure callbacks: the event carries a
// persistent Actor (the model object), a small operation code selecting
// the continuation, and an opaque pointer payload. None of the three
// allocate — interfaces over pointers box nothing — so a steady-state
// transaction path can run without a single heap allocation, where an
// equivalent closure would capture its variables on the heap at every
// scheduling site.
type Actor interface {
	// Act executes the continuation op with payload arg.
	Act(op uint8, arg any)
}

// event is a scheduled callback: either a plain closure (fn) or a typed
// (actor, op, arg) triple. fn takes precedence when non-nil.
type event struct {
	when  Cycle
	seq   uint64
	fn    func()
	actor Actor
	op    uint8
	arg   any
}

// less orders events by (when, seq): cycle first, FIFO within a cycle.
func (e event) less(o event) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	return e.seq < o.seq
}

// eventQueue is a typed 4-ary min-heap of events ordered by (when, seq),
// used as the timing wheel's overflow store for events scheduled beyond
// the wheel horizon.
//
// It replaces container/heap, which boxes every event through interface{}
// on each Push and Pop — two heap allocations per event. The typed heap
// keeps events inline in one slice (zero steady-state allocations) and
// the 4-ary layout halves the tree depth, trading slightly more
// comparisons per level for far fewer cache-missing levels.
type eventQueue struct {
	ev []event
}

const heapArity = 4

func (q *eventQueue) len() int { return len(q.ev) }

// head returns the minimum event without removing it. Only valid when
// len() > 0.
func (q *eventQueue) head() *event { return &q.ev[0] }

// push adds an event and restores the heap by sifting it up.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q.ev[i].less(q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event. Only valid when len() > 0.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // release the callback for GC
	q.ev = q.ev[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown places e, displaced from the root, back into heap position.
func (q *eventQueue) siftDown(e event) {
	ev := q.ev
	n := len(ev)
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		// Find the smallest child.
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if ev[c].less(ev[min]) {
				min = c
			}
		}
		if !ev[min].less(e) {
			break
		}
		ev[i] = ev[min]
		i = min
	}
	ev[i] = e
}

// defaultWheelSize is the standalone engine's horizon in cycles. Nearly
// every delay in the simulator is short (port waits, SRAM latencies, NoC
// traversals, page walks, shootdown intervals), so events overwhelmingly
// land within the wheel; only far-future schedules take the overflow
// heap. Must be a power of two.
const defaultWheelSize = 8192

// Engine is a discrete-event simulator clock. The zero value is not ready
// for use; call New.
//
// Events are kept in a timing wheel: one FIFO bucket per cycle in
// [now, now+wheelSize). Because sequence numbers are assigned in
// scheduling order and scheduling only happens while the clock stands
// still, appending to a bucket already yields (when, seq) order — popping
// a bucket front-to-back replays a cycle exactly as the old comparison
// heap did, without the O(log n) sift (and its 64-byte event moves) per
// push and pop on the simulator's hottest path. Events beyond the horizon
// wait in an overflow min-heap and migrate into the wheel as the clock
// advances, before any newer (higher-seq) event can be appended behind
// them, so the total order is preserved.
type Engine struct {
	now Cycle
	seq uint64
	// wheel[c&wheelMask] holds the events of cycle c, for c in
	// [now, now+wheelSize), in seq order. Buckets keep their capacity
	// across laps, so the steady state allocates nothing. The size is
	// fixed at construction: standalone engines use defaultWheelSize,
	// while sharded runs carve many engines with small wheels so a
	// 1024-region run stays memory-bounded.
	wheel        [][]event
	wheelSize    Cycle
	wheelMask    int
	wheelPending int
	overflow     eventQueue // events at now+wheelSize or later
	finalizers   []func()   // end-of-cycle actions for the current cycle
	// finalizerFree is the drained finalizer buffer from the previous
	// phase, recycled so a steady stream of AtEndOfCycle registrations
	// (one per NoC arbitration round) reallocates nothing.
	finalizerFree []func()
	processed     uint64
	observe       func(when Cycle, seq uint64)
	check         func(when Cycle, seq uint64)
}

// SetObserver installs fn, invoked immediately before every ordinary
// event executes with the event's (cycle, seq). The (cycle, seq) stream
// is the engine's total event order, so regression tests can pin it
// byte-for-byte across refactors of the scheduling machinery. A nil fn
// removes the observer. Finalizers carry no sequence number and are not
// observed.
func (e *Engine) SetObserver(fn func(when Cycle, seq uint64)) {
	e.observe = fn
}

// SetCheck installs fn as the engine's invariant-check hook: like the
// observer it receives every executed event's (cycle, seq) immediately
// before the event runs, but it is a separate slot so golden-order
// tracing (SetObserver) and invariant checking (internal/check) can be
// attached to the same run independently. A nil fn removes the hook.
// With no hook installed the event loop pays one predictable branch.
func (e *Engine) SetCheck(fn func(when Cycle, seq uint64)) {
	e.check = fn
}

// wheelBucketCap is the initial per-bucket capacity. Buckets are carved
// from one shared slab in New: profiles showed bucket append-growth was
// the single largest allocation-count source in a sweep (a few small
// grow-copies for nearly every bucket of every engine). Most buckets
// never hold more than a couple of events at once, so a small carved
// capacity absorbs almost all inserts; the rare busy bucket spills to a
// normally-grown slice and keeps it across laps.
const wheelBucketCap = 4

// New returns an engine with the clock at cycle 0 and no pending events.
func New() *Engine {
	return NewSized(defaultWheelSize)
}

// NewSized returns an engine whose timing wheel spans the given horizon,
// which must be a power of two. Small horizons trade overflow-heap
// traffic for memory: a sharded run instantiates one engine per region
// and keeps each wheel short.
func NewSized(wheelSize int) *Engine {
	if wheelSize <= 0 || wheelSize&(wheelSize-1) != 0 {
		panic("engine: wheel size must be a positive power of two")
	}
	e := &Engine{
		wheel:     make([][]event, wheelSize),
		wheelSize: Cycle(wheelSize),
		wheelMask: wheelSize - 1,
	}
	slab := make([]event, wheelSize*wheelBucketCap)
	for i := range e.wheel {
		e.wheel[i] = slab[i*wheelBucketCap : i*wheelBucketCap : (i+1)*wheelBucketCap]
	}
	return e
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return e.wheelPending + e.overflow.len() + len(e.finalizers) }

// Clock is the engine's schedule position: the current cycle and the
// sequence number the next scheduled event will receive. Together they
// pin the (cycle, seq) total order, so restoring a Clock into an empty
// engine makes subsequent schedules indistinguishable from a run that
// reached that position natively.
type Clock struct {
	Now Cycle
	Seq uint64
}

// Clock captures the current schedule position, for checkpointing.
func (e *Engine) Clock() Clock { return Clock{Now: e.now, Seq: e.seq} }

// SetClock restores a schedule position captured by Clock. The engine
// must be empty (no pending events — the wheel is indexed modulo the
// horizon, so warping under in-flight events would corrupt it) and the
// clock may only move forward. Resets nothing else; Processed is
// unchanged.
func (e *Engine) SetClock(c Clock) {
	if e.Pending() > 0 {
		panic("engine: SetClock with pending events")
	}
	if c.Now < e.now {
		panic("engine: SetClock moving backwards")
	}
	e.now = c.Now
	e.seq = c.Seq
}

// ResetProcessed zeroes the processed-event counter, so a measurement
// phase that begins mid-run (after a warmup) reports only its own events.
func (e *Engine) ResetProcessed() { e.processed = 0 }

// Schedule runs fn delay cycles from now. A delay of zero runs fn later in
// the current cycle, before any end-of-cycle finalizers fire.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute cycle. Scheduling in the past panics:
// it indicates a model bug that would otherwise corrupt causality.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic("engine: event scheduled in the past")
	}
	e.seq++
	e.insert(event{when: when, seq: e.seq, fn: fn})
}

// insert places an event in the wheel when it is within the horizon, in
// the overflow heap otherwise.
func (e *Engine) insert(ev event) {
	if ev.when < e.now+e.wheelSize {
		b := int(ev.when) & e.wheelMask
		e.wheel[b] = append(e.wheel[b], ev)
		e.wheelPending++
		return
	}
	e.overflow.push(ev)
}

// drainOverflow migrates every overflow event that has come within the
// horizon into the wheel. It must run each time the clock advances,
// before any event of the new cycle executes: events scheduled from then
// on carry higher sequence numbers than everything drained here, so
// bucket append order stays seq order. The heap pops in (when, seq)
// order, which likewise keeps multiple drained events of one cycle
// sorted.
func (e *Engine) drainOverflow() {
	limit := e.now + e.wheelSize
	for e.overflow.len() > 0 && e.overflow.head().when < limit {
		ev := e.overflow.pop()
		b := int(ev.when) & e.wheelMask
		e.wheel[b] = append(e.wheel[b], ev)
		e.wheelPending++
	}
}

// NextPending reports the cycle of the earliest pending ordinary event,
// if any. Finalizers for the current cycle are not considered. The
// sharded scheduler uses it to fast-forward over globally idle windows.
func (e *Engine) NextPending() (Cycle, bool) {
	return e.nextEventCycle()
}

// nextEventCycle returns the cycle of the earliest pending event.
func (e *Engine) nextEventCycle() (Cycle, bool) {
	if e.wheelPending > 0 {
		// All wheel events lie in [now, now+wheelSize), and every event
		// earlier than the overflow heap's horizon is in the wheel, so the
		// first populated bucket from now is the global minimum.
		for c := e.now; ; c++ {
			if len(e.wheel[int(c)&e.wheelMask]) > 0 {
				return c, true
			}
		}
	}
	if e.overflow.len() > 0 {
		return e.overflow.head().when, true
	}
	return 0, false
}

// ScheduleAct runs a.Act(op, arg) delay cycles from now. It is the
// allocation-free counterpart of Schedule: typed events interleave with
// closure events in one (cycle, seq) order, so the two styles can be
// mixed freely without perturbing determinism.
func (e *Engine) ScheduleAct(delay Cycle, a Actor, op uint8, arg any) {
	e.AtAct(e.now+delay, a, op, arg)
}

// AtAct runs a.Act(op, arg) at the given absolute cycle. Scheduling in
// the past panics, as with At.
func (e *Engine) AtAct(when Cycle, a Actor, op uint8, arg any) {
	if when < e.now {
		panic("engine: event scheduled in the past")
	}
	e.seq++
	e.insert(event{when: when, seq: e.seq, actor: a, op: op, arg: arg})
}

// AtEndOfCycle runs fn after every ordinary event of the current cycle has
// executed. Finalizers run in registration order. A finalizer may schedule
// new events for the current cycle; the engine keeps alternating between
// event and finalizer phases until the cycle quiesces.
func (e *Engine) AtEndOfCycle(fn func()) {
	e.finalizers = append(e.finalizers, fn)
}

// step executes every event and finalizer for the next populated cycle.
// It reports false when nothing remains.
func (e *Engine) step() bool {
	if e.wheelPending == 0 && e.overflow.len() == 0 && len(e.finalizers) == 0 {
		return false
	}
	if len(e.finalizers) == 0 {
		if next, ok := e.nextEventCycle(); ok && next > e.now {
			e.now = next
		}
	}
	e.drainOverflow()
	// Alternate between draining same-cycle events and running
	// finalizers until the cycle produces no further work.
	bi := int(e.now) & e.wheelMask
	for {
		ran := false
		// The current bucket is in seq order; events executed here may
		// append same-cycle events behind the cursor, so the length is
		// re-read every iteration.
		for i := 0; i < len(e.wheel[bi]); i++ {
			ev := e.wheel[bi][i]
			e.wheelPending--
			e.processed++
			if e.observe != nil {
				e.observe(e.now, ev.seq)
			}
			if e.check != nil {
				e.check(e.now, ev.seq)
			}
			if ev.fn != nil {
				ev.fn()
			} else {
				ev.actor.Act(ev.op, ev.arg)
			}
			ran = true
		}
		if len(e.wheel[bi]) > 0 {
			// Truncate without zeroing: the stale events beyond the new
			// length keep their payloads reachable, but those are the
			// model's own long-lived actors and free-listed transaction
			// objects, so nothing leaks — and skipping the clear removes a
			// bulk memclr plus its pointer write barriers from the hottest
			// loop in the simulator. Capacity stays bounded by the busiest
			// cycle the bucket has ever seen.
			e.wheel[bi] = e.wheel[bi][:0]
		}
		if len(e.finalizers) > 0 {
			// Swap in the recycled buffer before running: finalizers may
			// register new finalizers for the same cycle, which land in
			// the other buffer while this one drains.
			fns := e.finalizers
			e.finalizers = e.finalizerFree[:0]
			for i, fn := range fns {
				e.processed++
				fns[i] = nil // release the callback for GC
				fn()
			}
			e.finalizerFree = fns[:0]
			ran = true
		}
		if !ran {
			return true
		}
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with cycle <= limit. Events beyond the limit
// remain queued and the clock stops at the limit (or at the last processed
// event, whichever is later).
func (e *Engine) RunUntil(limit Cycle) {
	for {
		if e.wheelPending == 0 && e.overflow.len() == 0 && len(e.finalizers) == 0 {
			return
		}
		if len(e.finalizers) == 0 {
			if next, ok := e.nextEventCycle(); ok && next > limit {
				return
			}
		}
		e.step()
	}
}
