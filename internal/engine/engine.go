// Package engine provides a deterministic cycle-driven discrete-event
// simulation core.
//
// The engine advances a single global clock measured in Cycle units.
// Events scheduled for the same cycle execute in the order they were
// scheduled, which makes runs with identical inputs bit-for-bit
// reproducible. A second phase per cycle — end-of-cycle finalizers —
// supports synchronous hardware semantics such as link arbitration, where
// every request issued during a cycle must be visible before any grant
// decision is made.
package engine

// Cycle is a point in simulated time, measured in clock cycles.
type Cycle uint64

// event is a scheduled callback.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

// less orders events by (when, seq): cycle first, FIFO within a cycle.
func (e event) less(o event) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	return e.seq < o.seq
}

// eventQueue is a typed 4-ary min-heap of events ordered by (when, seq).
//
// It replaces container/heap, which boxes every event through interface{}
// on each Push and Pop — two heap allocations per scheduled event on the
// simulator's hottest path. The typed heap keeps events inline in one
// slice (zero steady-state allocations) and the 4-ary layout halves the
// tree depth, trading slightly more comparisons per level for far fewer
// cache-missing levels.
type eventQueue struct {
	ev []event
}

const heapArity = 4

func (q *eventQueue) len() int { return len(q.ev) }

// head returns the minimum event without removing it. Only valid when
// len() > 0.
func (q *eventQueue) head() *event { return &q.ev[0] }

// push adds an event and restores the heap by sifting it up.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q.ev[i].less(q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event. Only valid when len() > 0.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // release the callback for GC
	q.ev = q.ev[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown places e, displaced from the root, back into heap position.
func (q *eventQueue) siftDown(e event) {
	ev := q.ev
	n := len(ev)
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		// Find the smallest child.
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if ev[c].less(ev[min]) {
				min = c
			}
		}
		if !ev[min].less(e) {
			break
		}
		ev[i] = ev[min]
		i = min
	}
	ev[i] = e
}

// Engine is a discrete-event simulator clock. The zero value is not ready
// for use; call New.
type Engine struct {
	now        Cycle
	seq        uint64
	events     eventQueue
	finalizers []func() // end-of-cycle actions for the current cycle
	processed  uint64
}

// New returns an engine with the clock at cycle 0 and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return e.events.len() + len(e.finalizers) }

// Schedule runs fn delay cycles from now. A delay of zero runs fn later in
// the current cycle, before any end-of-cycle finalizers fire.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute cycle. Scheduling in the past panics:
// it indicates a model bug that would otherwise corrupt causality.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic("engine: event scheduled in the past")
	}
	e.seq++
	e.events.push(event{when: when, seq: e.seq, fn: fn})
}

// AtEndOfCycle runs fn after every ordinary event of the current cycle has
// executed. Finalizers run in registration order. A finalizer may schedule
// new events for the current cycle; the engine keeps alternating between
// event and finalizer phases until the cycle quiesces.
func (e *Engine) AtEndOfCycle(fn func()) {
	e.finalizers = append(e.finalizers, fn)
}

// step executes every event and finalizer for the next populated cycle.
// It reports false when nothing remains.
func (e *Engine) step() bool {
	if e.events.len() == 0 && len(e.finalizers) == 0 {
		return false
	}
	if e.events.len() > 0 {
		next := e.events.head().when
		if next > e.now && len(e.finalizers) == 0 {
			e.now = next
		}
	}
	// Alternate between draining same-cycle events and running
	// finalizers until the cycle produces no further work.
	for {
		ran := false
		for e.events.len() > 0 && e.events.head().when == e.now {
			ev := e.events.pop()
			e.processed++
			ev.fn()
			ran = true
		}
		if len(e.finalizers) > 0 {
			fns := e.finalizers
			e.finalizers = nil
			for _, fn := range fns {
				e.processed++
				fn()
			}
			ran = true
		}
		if !ran {
			return true
		}
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with cycle <= limit. Events beyond the limit
// remain queued and the clock stops at the limit (or at the last processed
// event, whichever is later).
func (e *Engine) RunUntil(limit Cycle) {
	for {
		if e.events.len() == 0 && len(e.finalizers) == 0 {
			return
		}
		if len(e.finalizers) == 0 && e.events.head().when > limit {
			return
		}
		e.step()
	}
}
