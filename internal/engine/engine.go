// Package engine provides a deterministic cycle-driven discrete-event
// simulation core.
//
// The engine advances a single global clock measured in Cycle units.
// Events scheduled for the same cycle execute in the order they were
// scheduled, which makes runs with identical inputs bit-for-bit
// reproducible. A second phase per cycle — end-of-cycle finalizers —
// supports synchronous hardware semantics such as link arbitration, where
// every request issued during a cycle must be visible before any grant
// decision is made.
package engine

import "container/heap"

// Cycle is a point in simulated time, measured in clock cycles.
type Cycle uint64

// event is a scheduled callback.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

// eventHeap orders events by (when, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator clock. The zero value is not ready
// for use; call New.
type Engine struct {
	now        Cycle
	seq        uint64
	events     eventHeap
	finalizers []func() // end-of-cycle actions for the current cycle
	processed  uint64
}

// New returns an engine with the clock at cycle 0 and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.events) + len(e.finalizers) }

// Schedule runs fn delay cycles from now. A delay of zero runs fn later in
// the current cycle, before any end-of-cycle finalizers fire.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute cycle. Scheduling in the past panics:
// it indicates a model bug that would otherwise corrupt causality.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic("engine: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, event{when: when, seq: e.seq, fn: fn})
}

// AtEndOfCycle runs fn after every ordinary event of the current cycle has
// executed. Finalizers run in registration order. A finalizer may schedule
// new events for the current cycle; the engine keeps alternating between
// event and finalizer phases until the cycle quiesces.
func (e *Engine) AtEndOfCycle(fn func()) {
	e.finalizers = append(e.finalizers, fn)
}

// step executes every event and finalizer for the next populated cycle.
// It reports false when nothing remains.
func (e *Engine) step() bool {
	if len(e.events) == 0 && len(e.finalizers) == 0 {
		return false
	}
	if len(e.events) > 0 {
		next := e.events[0].when
		if next > e.now && len(e.finalizers) == 0 {
			e.now = next
		}
	}
	// Alternate between draining same-cycle events and running
	// finalizers until the cycle produces no further work.
	for {
		ran := false
		for len(e.events) > 0 && e.events[0].when == e.now {
			ev := heap.Pop(&e.events).(event)
			e.processed++
			ev.fn()
			ran = true
		}
		if len(e.finalizers) > 0 {
			fns := e.finalizers
			e.finalizers = nil
			for _, fn := range fns {
				e.processed++
				fn()
			}
			ran = true
		}
		if !ran {
			return true
		}
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with cycle <= limit. Events beyond the limit
// remain queued and the clock stops at the limit (or at the last processed
// event, whichever is later).
func (e *Engine) RunUntil(limit Cycle) {
	for {
		if len(e.events) == 0 && len(e.finalizers) == 0 {
			return
		}
		if len(e.finalizers) == 0 && e.events[0].when > limit {
			return
		}
		e.step()
	}
}
