package engine

import "testing"

// The event-queue benchmarks use the classic "hold" model: a fixed
// population of self-rescheduling events churns through the queue, so
// steady-state Push/Pop cost dominates. Two delay distributions cover the
// simulator's real access patterns: uniform (timing wheels of in-flight
// messages) and skewed (bursts of same-cycle events with a long tail of
// far-future timeouts, the shape TLB shootdown storms produce).

const benchHoldWidth = 4096

func benchmarkScheduleRun(b *testing.B, next func(*Rand) Cycle) {
	b.ReportAllocs()
	e := New()
	r := NewRand(1)
	n := b.N
	var hold func()
	hold = func() {
		if n <= 0 {
			return
		}
		n--
		e.Schedule(next(r), hold)
	}
	width := benchHoldWidth
	if width > b.N {
		width = b.N
	}
	for i := 0; i < width; i++ {
		e.Schedule(next(r), hold)
	}
	e.Run()
}

func BenchmarkScheduleRun(b *testing.B) {
	b.Run("uniform", func(b *testing.B) {
		benchmarkScheduleRun(b, func(r *Rand) Cycle {
			return Cycle(1 + r.Intn(1000))
		})
	})
	b.Run("skewed", func(b *testing.B) {
		benchmarkScheduleRun(b, func(r *Rand) Cycle {
			// 90% of events land within the next few cycles; the rest
			// model far-future timeouts.
			if r.Float64() < 0.9 {
				return Cycle(r.Intn(4))
			}
			return Cycle(1 + r.Intn(5000))
		})
	})
}

// BenchmarkSchedulePushPop isolates queue maintenance: fill then drain,
// no rescheduling.
func BenchmarkSchedulePushPop(b *testing.B) {
	b.ReportAllocs()
	r := NewRand(7)
	for i := 0; i < b.N; i += benchHoldWidth {
		e := New()
		for j := 0; j < benchHoldWidth; j++ {
			e.Schedule(Cycle(r.Intn(10000)), func() {})
		}
		e.Run()
	}
}
