// Sharded execution: many region engines advanced in parallel under a
// conservative lookahead window.
//
// The simulated machine is partitioned into R regions, each with its own
// Engine (its own timing wheel, clock, and sequence counter). K worker
// goroutines own contiguous region ranges and advance them window by
// window: within a window [t0, t0+W) regions are fully independent,
// because every cross-region interaction takes at least W cycles (W is
// chosen as the minimum cross-region NoC latency — the classical
// conservative-lookahead bound). Cross-region events are not scheduled
// directly; they are appended to the sending worker's outbox stamped
// with (when, srcRegion, srcSeq) and delivered at the next window
// boundary, merge-sorted on that key. Both the per-region (cycle, seq)
// event streams and the boundary delivery order are therefore invariant
// in K: a K-worker run executes byte-identically to a 1-worker run.
//
// Events that must observe or mutate state across regions (shootdown
// broadcasts, warmup boundaries, storm disturbances) are globals: they
// run in a serial window, executed by the barrier leader while every
// worker is parked, interleaved deterministically with region events in
// (cycle, globalSeq) order.
package engine

import (
	"runtime"
	"slices"
	"sync/atomic"
)

// shardMsg is one cross-region event in flight between windows.
type shardMsg struct {
	when  Cycle
	src   int    // source region
	seq   uint64 // per-source-region send sequence (unique with when+src)
	dst   int
	fn    func()
	actor Actor
	op    uint8
	arg   any
}

// shardWorker is one worker goroutine's state. Workers are allocated
// individually so their hot fields do not share cache lines.
type shardWorker struct {
	id     int
	lo, hi int // owned region range [lo, hi)

	// outbox[p] collects the cross-region sends of the window with
	// parity p. It is written only by this worker (or by the barrier
	// leader during a serial window, while everyone is parked), read by
	// all workers during the following window, and cleared by this
	// worker one window later — each step separated by a barrier.
	outbox [2][]shardMsg
	inbox  []shardMsg // reused merge buffer for boundary deliveries

	// Published immediately before arriving at the barrier; the leader
	// reads them after observing every arrival.
	pending int   // events still queued in owned regions
	outMsgs int   // messages in the current-parity outbox
	nextMin Cycle // earliest pending cycle among owned regions and outbox
	nextOk  bool
}

// global is a coordinator-level event outside any region.
type global struct {
	when Cycle
	seq  uint64
	fn   func()
}

// Sharded coordinates R region engines across K workers.
type Sharded struct {
	regions []*Engine
	owner   []int // region -> owning worker
	workers []*shardWorker
	window  Cycle
	sendSeq []uint64 // per-region cross-region send counters

	globals []global // min-heap on (when, seq)
	gseq    uint64

	// Window control, written by the barrier leader and read by workers
	// after the generation bump (which orders the accesses).
	t0     Cycle
	curEnd Cycle
	parity int
	limit  Cycle
	err    error
	done   atomic.Bool

	hook func(t0 Cycle) func() // window hook; see SetWindowHook
	poll func() error          // cancellation hook, polled by the leader

	// Sense-reversing barrier.
	arrived atomic.Int32
	gen     atomic.Uint64

	windows uint64 // windows executed (including serial ones)
}

// pollStride is how many windows pass between cancellation polls.
const pollStride = 1024

// NewSharded builds a coordinator over the given region engines with k
// workers and the given lookahead window. window must be at least 1 and
// no larger than the minimum cross-region event latency, or Send will
// panic when the conservative bound is violated. k is clamped to
// [1, len(regions)].
func NewSharded(regions []*Engine, k int, window Cycle) *Sharded {
	r := len(regions)
	if r == 0 {
		panic("engine: NewSharded with no regions")
	}
	if window < 1 {
		panic("engine: NewSharded window must be >= 1")
	}
	if k < 1 {
		k = 1
	}
	if k > r {
		k = r
	}
	s := &Sharded{
		regions: regions,
		owner:   make([]int, r),
		workers: make([]*shardWorker, k),
		window:  window,
		sendSeq: make([]uint64, r),
	}
	// Contiguous ranges, remainder spread over the leading workers.
	per, rem := r/k, r%k
	lo := 0
	for w := 0; w < k; w++ {
		hi := lo + per
		if w < rem {
			hi++
		}
		s.workers[w] = &shardWorker{id: w, lo: lo, hi: hi}
		for i := lo; i < hi; i++ {
			s.owner[i] = w
		}
		lo = hi
	}
	return s
}

// Region returns region engine i.
func (s *Sharded) Region(i int) *Engine { return s.regions[i] }

// Regions reports the region count.
func (s *Sharded) Regions() int { return len(s.regions) }

// Workers reports the effective worker count.
func (s *Sharded) Workers() int { return len(s.workers) }

// Window reports the lookahead window width.
func (s *Sharded) Window() Cycle { return s.window }

// WindowsRun reports how many windows (parallel and serial) have been
// executed, for instrumentation.
func (s *Sharded) WindowsRun() uint64 { return s.windows }

// T0 reports the current window's start cycle. Only stable when read by
// the barrier leader (poll and window hooks) or after Run returns.
func (s *Sharded) T0() Cycle { return s.t0 }

// SetPoll installs fn, called by the barrier leader every pollStride
// windows; a non-nil error stops the run and is returned by Run.
func (s *Sharded) SetPoll(fn func() error) { s.poll = fn }

// SetWindowHook installs fn, invoked by the barrier leader at every
// window boundary with the upcoming window's start cycle, while all
// regions are quiescent. fn must only read state that is stable at a
// barrier (e.g. atomic counters maintained by region events). To mutate
// model state it returns a non-nil action: the coordinator schedules it
// as a global at t0, which serializes that window.
func (s *Sharded) SetWindowHook(fn func(t0 Cycle) func()) { s.hook = fn }

// ScheduleGlobal schedules fn as a coordinator-level global at the given
// cycle. Globals run in serial windows, ordered by (when, schedule
// order), after every region has advanced through their cycle. It may
// be called before Run, or from within a global or window-hook action;
// calling it from region event context is a data race.
func (s *Sharded) ScheduleGlobal(when Cycle, fn func()) {
	s.gseq++
	s.globals = append(s.globals, global{when: when, seq: s.gseq, fn: fn})
	// Sift up (binary min-heap on when, seq).
	i := len(s.globals) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.globalLess(i, p) {
			break
		}
		s.globals[i], s.globals[p] = s.globals[p], s.globals[i]
		i = p
	}
}

func (s *Sharded) globalLess(a, b int) bool {
	if s.globals[a].when != s.globals[b].when {
		return s.globals[a].when < s.globals[b].when
	}
	return s.globals[a].seq < s.globals[b].seq
}

func (s *Sharded) popGlobal() global {
	top := s.globals[0]
	n := len(s.globals) - 1
	s.globals[0] = s.globals[n]
	s.globals[n] = global{}
	s.globals = s.globals[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.globalLess(l, min) {
			min = l
		}
		if r < n && s.globalLess(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s.globals[i], s.globals[min] = s.globals[min], s.globals[i]
		i = min
	}
	return top
}

// Send schedules a cross-region typed event: a.Act(op, arg) runs on
// region dst at the given cycle. when must be no earlier than the end of
// the current window — the conservative-lookahead invariant; violating
// it panics, because the destination region may already have advanced
// past it. Same-region sends schedule directly. Send must be called from
// the event context of region src (or from a global).
func (s *Sharded) Send(src, dst int, when Cycle, a Actor, op uint8, arg any) {
	if src == dst {
		s.regions[dst].AtAct(when, a, op, arg)
		return
	}
	if when < s.curEnd {
		panic("engine: cross-region send inside the lookahead window")
	}
	s.sendSeq[src]++
	w := s.workers[s.owner[src]]
	w.outbox[s.parity] = append(w.outbox[s.parity], shardMsg{
		when: when, src: src, seq: s.sendSeq[src], dst: dst,
		actor: a, op: op, arg: arg,
	})
}

// SendFunc is Send for closure events.
func (s *Sharded) SendFunc(src, dst int, when Cycle, fn func()) {
	if src == dst {
		s.regions[dst].At(when, fn)
		return
	}
	if when < s.curEnd {
		panic("engine: cross-region send inside the lookahead window")
	}
	s.sendSeq[src]++
	w := s.workers[s.owner[src]]
	w.outbox[s.parity] = append(w.outbox[s.parity], shardMsg{
		when: when, src: src, seq: s.sendSeq[src], dst: dst, fn: fn,
	})
}

// Run advances all regions until no work remains (regions, in-flight
// messages, and globals all drained) or every remaining event lies
// beyond limit, whichever comes first. It returns the poll hook's error
// if the run was cancelled. Run may only be called once.
func (s *Sharded) Run(limit Cycle) error {
	s.limit = limit
	// Initial window selection happens single-threaded; it may already
	// run serial windows (e.g. a warmup boundary at cycle 0) or detect
	// an empty system. Publish the init-time schedules first so the
	// leader sees them.
	for _, w := range s.workers {
		s.publish(w, s.parity)
	}
	s.control()
	if !s.done.Load() {
		for i := 1; i < len(s.workers); i++ {
			go s.workerLoop(s.workers[i])
		}
		s.workerLoop(s.workers[0])
	}
	return s.err
}

// workerLoop advances the worker's regions window by window until the
// coordinator signals completion.
func (s *Sharded) workerLoop(w *shardWorker) {
	for {
		s.runWindow(w)
		s.barrier()
		if s.done.Load() {
			return
		}
	}
}

// runWindow executes one parallel window for w's regions: clear the
// current-parity outbox, deliver last window's messages, advance every
// owned region to the window end, and publish queue summaries for the
// leader.
func (s *Sharded) runWindow(w *shardWorker) {
	p := s.parity
	w.outbox[p] = w.outbox[p][:0]
	s.deliver(w, 1-p)
	end := s.curEnd
	for i := w.lo; i < w.hi; i++ {
		s.regions[i].RunUntil(end - 1)
	}
	s.publish(w, p)
}

// publish records w's pending-work summary for the barrier leader.
func (s *Sharded) publish(w *shardWorker, p int) {
	w.pending = 0
	w.outMsgs = len(w.outbox[p])
	w.nextOk = false
	for i := w.lo; i < w.hi; i++ {
		e := s.regions[i]
		w.pending += e.Pending()
		if c, ok := e.NextPending(); ok && (!w.nextOk || c < w.nextMin) {
			w.nextMin, w.nextOk = c, true
		}
	}
	for _, m := range w.outbox[p] {
		if !w.nextOk || m.when < w.nextMin {
			w.nextMin, w.nextOk = m.when, true
		}
	}
}

// deliver merges the previous window's cross-region messages destined
// for w's regions, in (when, srcRegion, srcSeq) order — a total order
// independent of the worker count — and schedules them on the owning
// engines.
func (s *Sharded) deliver(w *shardWorker, p int) {
	w.inbox = w.inbox[:0]
	for _, src := range s.workers {
		for _, m := range src.outbox[p] {
			if m.dst >= w.lo && m.dst < w.hi {
				w.inbox = append(w.inbox, m)
			}
		}
	}
	if len(w.inbox) == 0 {
		return
	}
	slices.SortFunc(w.inbox, func(a, b shardMsg) int {
		switch {
		case a.when != b.when:
			if a.when < b.when {
				return -1
			}
			return 1
		case a.src != b.src:
			return a.src - b.src
		case a.seq < b.seq:
			return -1
		default:
			return 1
		}
	})
	for i := range w.inbox {
		m := &w.inbox[i]
		if m.fn != nil {
			s.regions[m.dst].At(m.when, m.fn)
		} else {
			s.regions[m.dst].AtAct(m.when, m.actor, m.op, m.arg)
		}
	}
}

// barrier is the per-window rendezvous. The last worker to arrive is the
// leader: it runs the window-control logic (termination, fast-forward,
// serial windows, cancellation) while everyone else is parked, then
// bumps the generation to release them.
func (s *Sharded) barrier() {
	g := s.gen.Load()
	if int(s.arrived.Add(1)) == len(s.workers) {
		s.control()
		s.arrived.Store(0)
		s.gen.Add(1)
		return
	}
	for spins := 0; s.gen.Load() == g; spins++ {
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// control decides the next window. It runs with every worker quiescent
// (at the barrier, or single-threaded before workers start). Serial
// windows — those containing globals — are executed inline here, by the
// leader, until a fully parallel window (or completion) is reached.
func (s *Sharded) control() {
	for {
		s.windows++
		if s.poll != nil && s.windows%pollStride == 0 {
			if err := s.poll(); err != nil {
				s.err = err
				s.done.Store(true)
				return
			}
		}

		// Gather pending work. After a serial window the published
		// summaries are stale, so recompute directly — the leader has
		// exclusive access here.
		pending := 0
		var minNext Cycle
		haveNext := false
		for _, w := range s.workers {
			pending += w.pending + w.outMsgs
			if w.nextOk && (!haveNext || w.nextMin < minNext) {
				minNext, haveNext = w.nextMin, true
			}
		}
		if len(s.globals) > 0 {
			if g := s.globals[0].when; !haveNext || g < minNext {
				minNext, haveNext = g, true
			}
			pending += len(s.globals)
		}
		if pending == 0 || !haveNext {
			s.done.Store(true)
			return
		}
		if minNext > s.limit {
			s.done.Store(true)
			return
		}

		// Next window start: the grid is anchored at cycle 0 with pitch
		// W, independent of K, so fast-forwarding over idle stretches
		// lands every worker count on the same window sequence.
		t0 := s.t0 + s.window
		if aligned := minNext - minNext%s.window; aligned > t0 {
			t0 = aligned
		}
		if s.windows == 1 {
			// Initial window: include minNext's own window, which may
			// be window zero.
			t0 = minNext - minNext%s.window
		}
		s.t0 = t0
		s.curEnd = t0 + s.window
		s.parity ^= 1

		var boundary func()
		if s.hook != nil {
			boundary = s.hook(t0)
		}
		if boundary != nil {
			s.ScheduleGlobal(t0, boundary)
		}
		if len(s.globals) == 0 || s.globals[0].when >= s.curEnd {
			return // parallel window; workers take it from here
		}
		s.runSerialWindow()
	}
}

// runSerialWindow executes the current window on the leader alone:
// deliveries, every region's events, and the window's globals,
// interleaved so a global at cycle g runs after all region events at
// cycles <= g. Cross-region sends made here are routed through the
// ordinary outboxes and delivered at the next boundary.
func (s *Sharded) runSerialWindow() {
	p := s.parity
	for _, w := range s.workers {
		w.outbox[p] = w.outbox[p][:0]
	}
	for _, w := range s.workers {
		s.deliver(w, 1-p)
	}
	end := s.curEnd
	for len(s.globals) > 0 && s.globals[0].when < end {
		g := s.popGlobal()
		for _, e := range s.regions {
			e.RunUntil(g.when)
		}
		g.fn()
	}
	for _, e := range s.regions {
		e.RunUntil(end - 1)
	}
	for _, w := range s.workers {
		s.publish(w, p)
	}
}
