package engine

import "math"

// Rand is a small, fast, deterministic pseudo-random source
// (xorshift64star). It is not safe for concurrent use; each simulated
// agent owns its own instance so that runs replay identically regardless
// of host scheduling.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRand(seed int64) *Rand {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &Rand{state: s}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("engine: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Threshold converts a probability into the 53-bit integer threshold
// Below compares against. For every 64-bit draw u, Float64() < p and
// u>>11 < Threshold(p) decide identically: Float64 is (u>>11)/2^53, and
// scaling by 2^53 only shifts the exponent, so p*2^53 is exact and the
// ceiling makes the strict integer compare match the real compare
// whether or not p*2^53 is integral.
func Threshold(p float64) uint64 {
	return uint64(math.Ceil(p * (1 << 53)))
}

// Below draws one Uint64 and reports Float64() < p for t = Threshold(p),
// without the integer-to-float conversion. It consumes exactly one draw,
// like Float64, so streams interleave identically.
func (r *Rand) Below(t uint64) bool {
	return r.Uint64()>>11 < t
}

// Split derives an independent generator from this one. Useful for giving
// each simulated core its own stream from one top-level seed.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() | 1}
}

// State returns the generator's internal state, for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state captured by State. A zero state is remapped
// exactly as NewRand remaps a zero seed, preserving the no-fixed-point
// invariant.
func (r *Rand) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}
