package engine

// Rand is a small, fast, deterministic pseudo-random source
// (xorshift64star). It is not safe for concurrent use; each simulated
// agent owns its own instance so that runs replay identically regardless
// of host scheduling.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRand(seed int64) *Rand {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &Rand{state: s}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("engine: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator from this one. Useful for giving
// each simulated core its own stream from one top-level seed.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() | 1}
}
