package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// fnvStep folds one (cycle, seq) pair into a golden-order hash.
func fnvStep(h, when, seq uint64) uint64 {
	const prime = 1099511628211
	if h == 0 {
		h = 14695981039346656037
	}
	for _, v := range [2]uint64{when, seq} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

const (
	opShKick  = 1
	opShLocal = 2
	opShRecv  = 3
)

// shActor is a synthetic region workload: it mixes a checksum on every
// event, schedules local follow-ups, and sends cross-region messages at
// lookahead-respecting delays, all driven by a per-region RNG so the
// event stream is a pure function of region-local state.
type shActor struct {
	sh        *Sharded
	peers     []*shActor
	id        int
	rng       *Rand
	sum       uint64
	remaining int
}

func (a *shActor) Act(op uint8, arg any) {
	eng := a.sh.Region(a.id)
	now := eng.Now()
	a.sum = a.sum*1099511628211 + uint64(now)<<8 + uint64(op)
	if a.remaining <= 0 {
		return
	}
	a.remaining--
	r := a.rng.Uint64()
	eng.ScheduleAct(Cycle(1+r%5), a, opShLocal, nil)
	if r%3 == 0 {
		dst := int(r/7) % len(a.peers)
		w := a.sh.Window()
		a.sh.Send(a.id, dst, now+w+Cycle(r%9), a.peers[dst], opShRecv, nil)
	}
}

// shScenario runs the synthetic workload on R regions with k workers and
// returns per-region golden hashes, checksums, and final clocks.
func shScenario(t *testing.T, k, r, perRegion int, globalTicks int) (hashes, sums []uint64, nows []Cycle) {
	t.Helper()
	regions := make([]*Engine, r)
	for i := range regions {
		regions[i] = NewSized(256)
	}
	sh := NewSharded(regions, k, 4)
	actors := make([]*shActor, r)
	hashes = make([]uint64, r)
	for i := range actors {
		actors[i] = &shActor{sh: sh, id: i, rng: NewRand(int64(i + 1)), remaining: perRegion}
	}
	for i := range actors {
		actors[i].peers = actors
		i := i
		regions[i].SetObserver(func(when Cycle, seq uint64) {
			hashes[i] = fnvStep(hashes[i], uint64(when), seq)
		})
		regions[i].AtAct(Cycle(i%3), actors[i], opShKick, nil)
	}
	// A recurring global reads and perturbs every region — the shootdown
	// pattern: broadcast state mutation outside any one region.
	if globalTicks > 0 {
		ticks := 0
		var tick func()
		tick = func() {
			var total uint64
			for _, a := range actors {
				total += a.sum
			}
			for _, a := range actors {
				a.sum ^= total
			}
			ticks++
			if ticks < globalTicks {
				sh.ScheduleGlobal(sh.globals0When()+64, tick)
			}
		}
		sh.ScheduleGlobal(64, tick)
	}
	if err := sh.Run(1 << 30); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sums = make([]uint64, r)
	nows = make([]Cycle, r)
	for i, a := range actors {
		sums[i] = a.sum
		nows[i] = regions[i].Now()
	}
	return hashes, sums, nows
}

// globals0When lets the recurring test global re-arm itself relative to
// the cycle it is running at (globals run with the heap already popped,
// so "now" is the leader's current serial-window position — approximated
// by t0, which is deterministic).
func (s *Sharded) globals0When() Cycle { return s.t0 }

// TestShardedIdentity pins the core guarantee: for every worker count K,
// the per-region golden event order, model checksums, and final clocks
// are identical — TestGoldenEventOrder semantics per shard, and (because
// the per-region streams and the deterministic boundary merge key are
// K-invariant) for the merged stream too.
func TestShardedIdentity(t *testing.T) {
	baseH, baseS, baseN := shScenario(t, 1, 8, 400, 5)
	for _, k := range []int{2, 3, 4, 8} {
		h, s, n := shScenario(t, k, 8, 400, 5)
		for i := range baseH {
			if h[i] != baseH[i] {
				t.Errorf("k=%d region %d: golden hash %x, want %x", k, i, h[i], baseH[i])
			}
			if s[i] != baseS[i] {
				t.Errorf("k=%d region %d: checksum %x, want %x", k, i, s[i], baseS[i])
			}
			if n[i] != baseN[i] {
				t.Errorf("k=%d region %d: final cycle %d, want %d", k, i, n[i], baseN[i])
			}
		}
	}
}

// TestShardedNoGlobals covers the pure fast-forward path (no serial
// windows at all).
func TestShardedNoGlobals(t *testing.T) {
	baseH, baseS, _ := shScenario(t, 1, 5, 200, 0)
	h, s, _ := shScenario(t, 4, 5, 200, 0)
	for i := range baseH {
		if h[i] != baseH[i] || s[i] != baseS[i] {
			t.Fatalf("region %d diverged: hash %x/%x sum %x/%x", i, h[i], baseH[i], s[i], baseS[i])
		}
	}
}

// TestShardedWindowHook exercises the barrier hook: it may only read
// barrier-stable state, and fires a serializing action exactly once.
func TestShardedWindowHook(t *testing.T) {
	run := func(k int) (uint64, Cycle) {
		regions := make([]*Engine, 4)
		for i := range regions {
			regions[i] = NewSized(256)
		}
		sh := NewSharded(regions, k, 4)
		actors := make([]*shActor, 4)
		var done atomic.Int64
		for i := range actors {
			actors[i] = &shActor{sh: sh, id: i, rng: NewRand(int64(i + 1)), remaining: 100}
		}
		for i := range actors {
			actors[i].peers = actors
			regions[i].AtAct(0, actors[i], opShKick, nil)
		}
		// Count finished actors via an atomic the hook may legally read;
		// each region increments it exactly once, from its own events.
		finished := make([]bool, len(actors))
		for i := range regions {
			i := i
			regions[i].SetObserver(func(when Cycle, seq uint64) {
				if actors[i].remaining == 0 && !finished[i] {
					finished[i] = true
					done.Add(1)
				}
			})
		}
		var fired uint64
		var firedAt Cycle
		sh.SetWindowHook(func(t0 Cycle) func() {
			if fired == 0 && done.Load() == int64(len(actors)) {
				fired++
				return func() {
					firedAt = t0
					for _, a := range actors {
						a.sum ^= 0xdeadbeef
					}
				}
			}
			return nil
		})
		if err := sh.Run(1 << 30); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var total uint64
		for _, a := range actors {
			total = total*31 + a.sum
		}
		return total, firedAt
	}
	s1, at1 := run(1)
	s4, at4 := run(4)
	if s1 != s4 || at1 != at4 {
		t.Fatalf("hook run diverged: sum %x/%x firedAt %d/%d", s1, s4, at1, at4)
	}
	if at1 == 0 {
		t.Fatal("hook action never fired")
	}
}

// TestShardedLookaheadViolation pins the conservative bound: a
// cross-region send targeting a cycle inside the current window panics.
func TestShardedLookaheadViolation(t *testing.T) {
	regions := []*Engine{NewSized(64), NewSized(64)}
	sh := NewSharded(regions, 1, 8)
	var bad Actor = actFunc(func(op uint8, arg any) {})
	regions[0].At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("in-window cross-region send did not panic")
			}
		}()
		sh.Send(0, 1, regions[0].Now()+1, bad, 0, nil)
	})
	if err := sh.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
}

type actFunc func(op uint8, arg any)

func (f actFunc) Act(op uint8, arg any) { f(op, arg) }

// TestShardedLimit stops a self-sustaining system at the limit.
func TestShardedLimit(t *testing.T) {
	regions := []*Engine{NewSized(64), NewSized(64)}
	sh := NewSharded(regions, 2, 4)
	var ping func()
	n := 0
	ping = func() {
		n++
		regions[0].Schedule(3, ping)
	}
	regions[0].At(0, ping)
	if err := sh.Run(1000); err != nil {
		t.Fatal(err)
	}
	if now := regions[0].Now(); now > 1000+4 {
		t.Fatalf("ran past limit: now=%d", now)
	}
	if n == 0 {
		t.Fatal("nothing ran")
	}
}

// TestShardedPoll propagates cancellation from the leader's poll hook.
func TestShardedPoll(t *testing.T) {
	regions := []*Engine{NewSized(64)}
	sh := NewSharded(regions, 1, 4)
	var ping func()
	ping = func() { regions[0].Schedule(1, ping) }
	regions[0].At(0, ping)
	stop := errors.New("stop")
	polls := 0
	sh.SetPoll(func() error {
		polls++
		if polls >= 3 {
			return stop
		}
		return nil
	})
	if err := sh.Run(1 << 40); !errors.Is(err, stop) {
		t.Fatalf("Run err = %v, want %v", err, stop)
	}
}

// TestShardedWorkerClamp: worker counts beyond the region count clamp.
func TestShardedWorkerClamp(t *testing.T) {
	regions := []*Engine{NewSized(64), NewSized(64)}
	sh := NewSharded(regions, 16, 4)
	if got := sh.Workers(); got != 2 {
		t.Fatalf("Workers() = %d, want 2", got)
	}
	if got := fmt.Sprint(sh.Regions()); got != "2" {
		t.Fatalf("Regions() = %s", got)
	}
}
