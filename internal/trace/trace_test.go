package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"nocstar/internal/workload"
)

func capture(t *testing.T) *Trace {
	t.Helper()
	spec, ok := workload.ByName("canneal")
	if !ok {
		t.Fatal("missing workload")
	}
	return Capture(spec, 4, 5000, 42)
}

func TestCaptureShape(t *testing.T) {
	tr := capture(t)
	if len(tr.Threads) != 4 {
		t.Fatalf("threads = %d", len(tr.Threads))
	}
	if tr.Refs() != 4*5000 {
		t.Fatalf("refs = %d", tr.Refs())
	}
	if tr.Name != "canneal" {
		t.Fatalf("name = %q", tr.Name)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := capture(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Threads) != len(tr.Threads) {
		t.Fatalf("header mismatch: %q %d", got.Name, len(got.Threads))
	}
	for i := range tr.Threads {
		if len(got.Threads[i]) != len(tr.Threads[i]) {
			t.Fatalf("thread %d length mismatch", i)
		}
		for j := range tr.Threads[i] {
			if got.Threads[i][j] != tr.Threads[i][j] {
				t.Fatalf("thread %d ref %d: %d != %d", i, j, got.Threads[i][j], tr.Threads[i][j])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pagesRaw [][]uint32, nameRaw uint8) bool {
		tr := &Trace{Name: string(rune('a' + nameRaw%26))}
		for _, th := range pagesRaw {
			refs := make([]uint64, len(th))
			for i, p := range th {
				refs[i] = uint64(p)
			}
			tr.Threads = append(tr.Threads, refs)
		}
		if len(tr.Threads) == 0 || len(tr.Threads) > 65535 {
			return true
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Refs() != tr.Refs() {
			return false
		}
		for i := range tr.Threads {
			for j := range tr.Threads[i] {
				if got.Threads[i][j] != tr.Threads[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaEncodingCompact(t *testing.T) {
	// Temporal locality means most deltas fit in 1-2 bytes: the encoded
	// size must be far below 8 bytes per reference.
	tr := capture(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	bytesPerRef := float64(buf.Len()) / float64(tr.Refs())
	if bytesPerRef > 5 {
		t.Fatalf("%.2f bytes/ref, delta encoding ineffective", bytesPerRef)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXXGARBAGE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated after a valid header.
	tr := capture(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReplayerMatchesAndWraps(t *testing.T) {
	tr := capture(t)
	r, err := tr.NewReplayer(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		want := tr.Threads[2][i] << 12
		if got := uint64(r.Next()); got != want {
			t.Fatalf("ref %d: %#x != %#x", i, got, want)
		}
	}
	// Wrap-around.
	if got := uint64(r.Next()); got != tr.Threads[2][0]<<12 {
		t.Fatalf("wrap failed: %#x", got)
	}
	if r.Position() != 1 {
		t.Fatalf("position = %d", r.Position())
	}
}

func TestReplayerErrors(t *testing.T) {
	tr := &Trace{Threads: [][]uint64{{}}}
	if _, err := tr.NewReplayer(0); err == nil {
		t.Fatal("empty stream accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range thread did not panic")
		}
	}()
	tr.NewReplayer(5)
}

func TestAnalyze(t *testing.T) {
	tr := &Trace{
		Name: "x",
		Threads: [][]uint64{
			{10, 10, 11, 700},
			{10, 900},
		},
	}
	s := Analyze(tr)
	if s.Refs != 6 || s.Threads != 2 {
		t.Fatalf("refs=%d threads=%d", s.Refs, s.Threads)
	}
	if s.DistinctPages != 4 {
		t.Fatalf("distinct = %d, want 4", s.DistinctPages)
	}
	if s.SharedPages != 1 { // page 10 touched by both threads
		t.Fatalf("shared = %d, want 1", s.SharedPages)
	}
	// Pages 10, 11 share extent 0; 700 is extent 1; 900 is extent 1 too
	// (700>>9 = 1, 900>>9 = 1).
	if s.Distinct2M != 2 {
		t.Fatalf("extents = %d, want 2", s.Distinct2M)
	}
	if s.ReuseRate != 1.0/6 { // one repeat of page 10 within thread 0
		t.Fatalf("reuse = %v", s.ReuseRate)
	}
}

func TestAnalyzeCapturedSharing(t *testing.T) {
	// canneal is 95% shared: most multi-thread-touched pages must exist.
	s := Analyze(capture(t))
	if s.SharedPages == 0 {
		t.Fatal("no shared pages in a 95 percent shared workload")
	}
	if s.ReuseRate < 0.5 {
		t.Fatalf("reuse rate %.2f too low for RepeatProb 0.88", s.ReuseRate)
	}
}

func TestCaptureDeterministic(t *testing.T) {
	a, b := capture(t), capture(t)
	for i := range a.Threads {
		for j := range a.Threads[i] {
			if a.Threads[i][j] != b.Threads[i][j] {
				t.Fatal("capture not deterministic")
			}
		}
	}
}
