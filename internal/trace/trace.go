// Package trace records and replays virtual-address reference traces.
//
// The paper's evaluation runs on a trace/execution-driven simulator; this
// package is the trace side of that substrate: capture a workload's
// per-thread address streams into a compact binary file, inspect its
// TLB-relevant statistics, and replay it deterministically into the
// simulator in place of the live generators.
//
// Format (little-endian):
//
//	magic "NSTR" | version u16 | threads u16 | name len u8 | name bytes
//	per thread: refs u64, then refs varint-encoded zig-zag deltas of the
//	4 KiB page number (offsets are irrelevant to TLB studies), delta
//	measured against the previous reference of the same thread.
//
// Delta encoding exploits the streams' temporal locality: repeated and
// nearby pages encode in one or two bytes.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nocstar/internal/engine"
	"nocstar/internal/vm"
	"nocstar/internal/workload"
)

var magic = [4]byte{'N', 'S', 'T', 'R'}

// version of the on-disk format.
const version = 1

// Trace is a fully loaded trace: one page-number sequence per thread.
type Trace struct {
	Name    string
	Threads [][]uint64 // 4 KiB page numbers per thread, in program order
}

// Refs returns the total reference count across threads.
func (t *Trace) Refs() uint64 {
	var n uint64
	for _, th := range t.Threads {
		n += uint64(len(th))
	}
	return n
}

// Capture drives a workload's generators for refsPerThread references
// each and returns the resulting trace.
func Capture(spec workload.Spec, threads int, refsPerThread uint64, seed int64) *Trace {
	t := &Trace{Name: spec.Name, Threads: make([][]uint64, threads)}
	root := engine.NewRand(seed)
	for i := 0; i < threads; i++ {
		gen := workload.NewGenerator(spec, threads, i, root.Split())
		refs := make([]uint64, refsPerThread)
		for j := range refs {
			refs[j] = uint64(gen.Next()) >> 12
		}
		t.Threads[i] = refs
	}
	return t
}

// Write serializes the trace.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(t.Name) > 255 {
		return fmt.Errorf("trace: name %q too long", t.Name)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint16(hdr[0:2], version)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(t.Threads)))
	hdr[4] = byte(len(t.Name))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, refs := range t.Threads {
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], uint64(len(refs)))
		if _, err := bw.Write(cnt[:]); err != nil {
			return err
		}
		prev := uint64(0)
		for _, page := range refs {
			delta := int64(page) - int64(prev)
			n := binary.PutVarint(buf[:], delta)
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			prev = page
		}
	}
	return bw.Flush()
}

// Read deserializes a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	threads := int(binary.LittleEndian.Uint16(hdr[2:4]))
	name := make([]byte, hdr[4])
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Trace{Name: string(name), Threads: make([][]uint64, threads)}
	for i := 0; i < threads; i++ {
		var cnt [8]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, fmt.Errorf("trace: thread %d count: %w", i, err)
		}
		refs := make([]uint64, binary.LittleEndian.Uint64(cnt[:]))
		prev := uint64(0)
		for j := range refs {
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d ref %d: %w", i, j, err)
			}
			page := uint64(int64(prev) + delta)
			refs[j] = page
			prev = page
		}
		t.Threads[i] = refs
	}
	return t, nil
}

// Replayer replays one thread's captured stream. When the trace is
// exhausted it wraps around, so a replayed run can be longer than the
// capture.
type Replayer struct {
	refs []uint64
	pos  int
}

// NewReplayer returns a Stream over the given thread of the trace. It
// panics for an out-of-range thread (a caller bug) and returns an error
// for an empty stream.
func (t *Trace) NewReplayer(thread int) (*Replayer, error) {
	if thread < 0 || thread >= len(t.Threads) {
		panic(fmt.Sprintf("trace: thread %d out of range", thread))
	}
	if len(t.Threads[thread]) == 0 {
		return nil, fmt.Errorf("trace: thread %d is empty", thread)
	}
	return &Replayer{refs: t.Threads[thread]}, nil
}

// Next implements workload.Stream.
func (r *Replayer) Next() vm.VirtAddr {
	page := r.refs[r.pos]
	r.pos++
	if r.pos == len(r.refs) {
		r.pos = 0
	}
	return vm.VirtAddr(page << 12)
}

// Wrapped reports how far the replayer has advanced (for tests).
func (r *Replayer) Position() int { return r.pos }

var _ workload.Stream = (*Replayer)(nil)

// Stats summarizes a trace's TLB-relevant properties.
type Stats struct {
	Name          string
	Threads       int
	Refs          uint64
	DistinctPages uint64
	Distinct2M    uint64
	// SharedPages counts distinct pages touched by more than one thread.
	SharedPages uint64
	// ReuseRate is the fraction of references to a page already touched
	// by the same thread.
	ReuseRate float64
}

// Analyze computes trace statistics.
func Analyze(t *Trace) Stats {
	s := Stats{Name: t.Name, Threads: len(t.Threads), Refs: t.Refs()}
	owners := map[uint64]int{} // page -> first thread+1, or -1 if shared
	extents := map[uint64]struct{}{}
	var reuses uint64
	for ti, refs := range t.Threads {
		seen := map[uint64]struct{}{}
		for _, p := range refs {
			if _, ok := seen[p]; ok {
				reuses++
			}
			seen[p] = struct{}{}
			extents[p>>9] = struct{}{}
			switch prev, ok := owners[p]; {
			case !ok:
				owners[p] = ti + 1
			case prev != ti+1 && prev != -1:
				owners[p] = -1
			}
		}
	}
	s.DistinctPages = uint64(len(owners))
	s.Distinct2M = uint64(len(extents))
	for _, o := range owners {
		if o == -1 {
			s.SharedPages++
		}
	}
	if s.Refs > 0 {
		s.ReuseRate = float64(reuses) / float64(s.Refs)
	}
	return s
}
