package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConcurrencyBucketsCoverAll(t *testing.T) {
	// Every positive count must land in exactly one bucket.
	for n := 1; n <= 100; n++ {
		hits := 0
		for _, b := range ConcurrencyBuckets {
			if n >= b.Lo && (b.Hi < 0 || n <= b.Hi) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("count %d lands in %d buckets", n, hits)
		}
	}
}

func TestConcurrencyHistFractions(t *testing.T) {
	var h ConcurrencyHist
	for i := 0; i < 60; i++ {
		h.Observe(1)
	}
	for i := 0; i < 30; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(40)
	}
	f := h.Fractions()
	if math.Abs(f[0]-0.6) > 1e-9 || math.Abs(f[1]-0.3) > 1e-9 || math.Abs(f[8]-0.1) > 1e-9 {
		t.Fatalf("fractions = %v", f)
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestConcurrencyHistClampsBelowOne(t *testing.T) {
	var h ConcurrencyHist
	h.Observe(0)
	h.Observe(-5)
	if f := h.Fractions(); f[0] != 1 {
		t.Fatalf("fractions = %v, want all mass in bucket 0", f)
	}
}

func TestConcurrencyHistMerge(t *testing.T) {
	var a, b ConcurrencyHist
	a.Observe(1)
	b.Observe(2)
	b.Observe(6)
	a.Merge(&b)
	if a.Total() != 3 {
		t.Fatalf("merged total = %d", a.Total())
	}
	f := a.Fractions()
	if math.Abs(f[0]-1.0/3) > 1e-9 || math.Abs(f[1]-1.0/3) > 1e-9 || math.Abs(f[2]-1.0/3) > 1e-9 {
		t.Fatalf("merged fractions = %v", f)
	}
}

func TestConcurrencyFractionsSumToOne(t *testing.T) {
	f := func(samples []uint8) bool {
		var h ConcurrencyHist
		for _, s := range samples {
			h.Observe(int(s))
		}
		if len(samples) == 0 {
			return true
		}
		sum := 0.0
		for _, v := range h.Fractions() {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	for _, v := range []float64{2, 4, 6} {
		m.Add(v)
	}
	if m.Mean() != 4 || m.Min() != 2 || m.Max() != 6 || m.N() != 3 {
		t.Fatalf("mean=%v min=%v max=%v n=%v", m.Mean(), m.Min(), m.Max(), m.N())
	}
}

func TestMeanEmpty(t *testing.T) {
	// With no samples there is no mean: NaN, not a 0 that renders as a
	// legitimate measurement.
	var m Mean
	if !math.IsNaN(m.Mean()) || !math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) {
		t.Fatalf("empty mean = %v/%v/%v, want NaN", m.Mean(), m.Min(), m.Max())
	}
}

func TestPercentileSorted(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if got := PercentileSorted(s, 50); got != 2.5 {
		t.Fatalf("P50 = %v, want 2.5", got)
	}
	if PercentileSorted(s, 0) != 1 || PercentileSorted(s, 100) != 4 {
		t.Fatal("extremes wrong")
	}
	// Agrees with the copying Percentile on unsorted input.
	unsorted := []float64{4, 1, 3, 2}
	if Percentile(unsorted, 75) != PercentileSorted(s, 75) {
		t.Fatal("Percentile and PercentileSorted disagree")
	}
	// Percentile must not have reordered its input.
	if unsorted[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestTableRendersNaNAsDash(t *testing.T) {
	tb := NewTable("")
	tb.Row("h1", "h2")
	tb.Row(math.NaN(), 1.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	fields := strings.Fields(lines[len(lines)-1])
	if len(fields) != 2 || fields[0] != "-" || fields[1] != "1.500" {
		t.Fatalf("NaN cell not rendered as -: %q\n%s", fields, out)
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("Geomean(1,4) = %v, want 2", got)
	}
	if Geomean(nil) != 1 {
		t.Fatal("Geomean(nil) != 1")
	}
	// Non-positive values ignored.
	if g := Geomean([]float64{-1, 0, 9, 1}); math.Abs(g-3) > 1e-9 {
		t.Fatalf("Geomean with junk = %v, want 3", g)
	}
}

func TestMean64AndMinMax(t *testing.T) {
	vs := []float64{3, 1, 2}
	if Mean64(vs) != 2 {
		t.Fatalf("Mean64 = %v", Mean64(vs))
	}
	lo, hi := MinMax(vs)
	if lo != 1 || hi != 3 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	if Mean64(nil) != 0 {
		t.Fatal("Mean64(nil) != 0")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(vs, 0); p != 10 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(vs, 100); p != 50 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(vs, 50); p != 30 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(vs, 25); p != 20 {
		t.Fatalf("p25 = %v", p)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vs := []float64{5, 1, 3}
	Percentile(vs, 50)
	if vs[0] != 5 || vs[1] != 1 || vs[2] != 3 {
		t.Fatalf("input mutated: %v", vs)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo")
	tb.Row("workload", "speedup")
	tb.Row("gups", 1.25)
	tb.Row("canneal", 1.125)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1.250") || !strings.Contains(out, "canneal") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableEmpty(t *testing.T) {
	if !strings.Contains(NewTable("x").String(), "(empty)") {
		t.Fatal("empty table should say so")
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}
