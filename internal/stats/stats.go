// Package stats provides the measurement plumbing shared by every
// experiment: counters, the concurrency histograms used by the paper's
// Fig. 5 and Fig. 6, distribution summaries, and fixed-width ASCII table
// rendering for regenerated tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ConcurrencyBuckets are the x-axis buckets of the paper's Fig. 5/6:
// an access observed alone, concurrent with 2-4 others, 5-8, and so on.
// The final bucket is open-ended ("29+ accesses").
var ConcurrencyBuckets = []struct {
	Lo, Hi int // inclusive; Hi < 0 means unbounded
	Label  string
}{
	{1, 1, "1 acc"},
	{2, 4, "2-4 acc"},
	{5, 8, "5-8 acc"},
	{9, 12, "9-12 acc"},
	{13, 16, "13-16 acc"},
	{17, 20, "17-20 acc"},
	{21, 24, "21-24 acc"},
	{25, 28, "25-28 acc"},
	{29, -1, "29+ acc"},
}

// ConcurrencyHist counts, for every observed access, how many accesses
// (including itself) were outstanding at the instant it began.
type ConcurrencyHist struct {
	counts [9]uint64
	total  uint64
}

// Observe records an access that began while n accesses (including itself,
// so n >= 1) were outstanding.
func (h *ConcurrencyHist) Observe(n int) {
	if n < 1 {
		n = 1
	}
	for i, b := range ConcurrencyBuckets {
		if n >= b.Lo && (b.Hi < 0 || n <= b.Hi) {
			h.counts[i]++
			h.total++
			return
		}
	}
}

// Total reports the number of observations.
func (h *ConcurrencyHist) Total() uint64 { return h.total }

// Fractions returns the per-bucket fraction of observations, in
// ConcurrencyBuckets order. All zeros when nothing was observed.
func (h *ConcurrencyHist) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Merge adds the observations of other into h.
func (h *ConcurrencyHist) Merge(other *ConcurrencyHist) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.total += other.total
}

// Mean is an online mean/min/max accumulator.
type Mean struct {
	n        uint64
	sum      float64
	min, max float64
}

// Add records a sample.
func (m *Mean) Add(v float64) {
	if m.n == 0 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	m.n++
	m.sum += v
}

// N reports the sample count.
func (m *Mean) N() uint64 { return m.n }

// Mean reports the sample mean, or NaN with no samples. NaN propagates
// loudly (Table renders it as "-") where a silent 0 used to masquerade as
// a legitimate measured value.
func (m *Mean) Mean() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.sum / float64(m.n)
}

// Min reports the smallest sample, or NaN with no samples.
func (m *Mean) Min() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.min
}

// Max reports the largest sample, or NaN with no samples.
func (m *Mean) Max() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.max
}

// Geomean returns the geometric mean of vs, ignoring non-positive values.
// It returns 1 for an empty input, matching its use for speedup ratios.
func Geomean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// Mean64 returns the arithmetic mean of vs, or 0 for empty input.
func Mean64(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// MinMax returns the smallest and largest of vs. It panics on empty input.
func MinMax(vs []float64) (lo, hi float64) {
	if len(vs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0..100) of vs using linear
// interpolation. It panics on empty input. The input is copied and
// sorted on every call; callers extracting several percentiles of the
// same data should sort once and use PercentileSorted.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted returns the p-th percentile (0..100) of an
// already-ascending slice using linear interpolation, without copying or
// re-sorting. It panics on empty input.
func PercentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		panic("stats: PercentileSorted of empty slice")
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Table renders aligned rows for experiment output. The first added row is
// treated as the header.
type Table struct {
	title string
	rows  [][]string
}

// NewTable returns a table with the given title.
func NewTable(title string) *Table {
	return &Table{title: title}
}

// Row appends a row of cells. Non-string cells are formatted with %v;
// float64 cells with %.3f, except NaN — the "no samples" sentinel — which
// renders as "-" rather than a value a reader could mistake for a
// measurement.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			if math.IsNaN(v) {
				row[i] = "-"
			} else {
				row[i] = fmt.Sprintf("%.3f", v)
			}
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with columns padded to their widest cell.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return t.title + "\n(empty)\n"
	}
	ncol := 0
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	for ri, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(r)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
