// Package cluster provides heartbeat-based dynamic membership for the
// serve tier. Each node periodically pings every peer it knows about
// with a small JSON heartbeat carrying its identity (stable ID derived
// from its base URL, plus a per-process epoch), its load (queue depth
// and capacity), and its store population; the response carries the
// receiver's own heartbeat plus the addresses it knows, so membership
// knowledge spreads transitively and a node seeded with a single peer
// learns the whole cluster. A peer that stops answering (and stops
// pinging us) is marked suspect after SuspectAfter and dead after
// DeadAfter; a dead node keeps being pinged at the normal cadence so a
// restarted process rejoins by simply answering again.
//
// Every membership-affecting change — a node joining, changing state,
// or returning with a new epoch — bumps a monotonic view version, and
// the rendezvous (HRW) owner function is computed over the *live* nodes
// of the current view. Ownership therefore recomputes on join/leave
// instead of being frozen at process start: when the owner of a config
// hash dies, the next node in HRW order becomes the owner everywhere,
// with no coordination beyond the heartbeats themselves — the
// coordination-light structure the paper argues distributed last-level
// designs need to scale.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// State is a member's liveness classification.
type State string

const (
	// StateAlive: heard from (either direction) within SuspectAfter.
	StateAlive State = "alive"
	// StateSuspect: missed deadlines, not yet written off. Suspect
	// nodes are excluded from ownership so traffic routes around them
	// immediately; a single successful heartbeat restores them.
	StateSuspect State = "suspect"
	// StateDead: silent past DeadAfter. Still pinged, so a restarted
	// process rejoins by answering.
	StateDead State = "dead"
)

// Node is one member as seen by the local view.
type Node struct {
	// ID is the stable identity: fnv64a of the normalized base URL,
	// hex. Job IDs embed it, so any node can route a job ID back to
	// the node that minted it.
	ID string `json:"id"`
	// Addr is the member's base URL.
	Addr string `json:"addr"`
	// Epoch distinguishes process incarnations of the same address
	// (unix nanoseconds at process start). A node returning with a new
	// epoch lost its in-memory job registry.
	Epoch int64 `json:"epoch"`
	// State is the local liveness classification.
	State State `json:"state"`
	// QueueDepth and QueueCap are the member's last gossiped
	// submission-queue occupancy and capacity.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// StoreEntries is the member's last gossiped result-store
	// population.
	StoreEntries int `json:"store_entries"`
	// LastSeenMS is milliseconds since the member was last heard from
	// (0 for self).
	LastSeenMS int64 `json:"last_seen_ms"`
}

// View is a versioned snapshot of the membership.
type View struct {
	// Version increments on every membership-affecting change (join,
	// state transition, epoch change). Load stats do not bump it.
	Version uint64 `json:"version"`
	// Self is the local node's ID.
	Self string `json:"self"`
	// Nodes lists every known member, self included, sorted by ID.
	Nodes []Node `json:"nodes"`
}

// Live returns the view's non-dead, non-suspect members.
func (v View) Live() []Node {
	var out []Node
	for _, n := range v.Nodes {
		if n.State == StateAlive {
			out = append(out, n)
		}
	}
	return out
}

// Stats is the local load snapshot gossiped in heartbeats.
type Stats struct {
	QueueDepth   int
	QueueCap     int
	StoreEntries int
}

// Options configures a Membership.
type Options struct {
	// Self is this node's base URL (required).
	Self string
	// Seeds are peer base URLs to bootstrap from (self is filtered
	// out; more members are learned via heartbeat gossip).
	Seeds []string
	// Interval paces outgoing heartbeats (default 1s).
	Interval time.Duration
	// SuspectAfter and DeadAfter are the silence thresholds (defaults
	// 3x and 8x Interval).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// StatsFunc supplies the local load snapshot included in outgoing
	// heartbeats and views. Optional.
	StatsFunc func() Stats
	// Client performs heartbeat HTTP calls; nil selects a client with
	// a per-call timeout of min(Interval, 5s)... capped below.
	Client *http.Client
}

// NodeID derives the stable member ID from a base URL.
func NodeID(addr string) string {
	h := fnv.New64a()
	io.WriteString(h, strings.TrimRight(strings.TrimSpace(addr), "/"))
	return fmt.Sprintf("%016x", h.Sum64())
}

// member is the internal per-node record.
type member struct {
	node   Node
	lastOK time.Time // last time we heard from it, either direction
}

// Membership tracks the cluster from one node's point of view.
type Membership struct {
	opts   Options
	selfID string
	epoch  int64
	client *http.Client

	mu      sync.Mutex
	version uint64
	members map[string]*member // by ID; excludes self
	stats   Stats              // self stats cache for views

	stop chan struct{}
	wg   sync.WaitGroup
}

// heartbeat is the wire form of one ping (and its response).
type heartbeat struct {
	From  Node     `json:"from"`
	Known []string `json:"known,omitempty"` // addresses, gossip
}

// New builds a membership rooted at opts.Self with the given seed
// peers. Call Start to begin heartbeating; HandleHeartbeat must be
// mounted on the node's HTTP mux at /v1/cluster/heartbeat.
func New(opts Options) *Membership {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 3 * opts.Interval
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 8 * opts.Interval
	}
	opts.Self = strings.TrimRight(strings.TrimSpace(opts.Self), "/")
	m := &Membership{
		opts:    opts,
		selfID:  NodeID(opts.Self),
		epoch:   time.Now().UnixNano(),
		client:  opts.Client,
		members: map[string]*member{},
		stop:    make(chan struct{}),
	}
	if m.client == nil {
		timeout := 2 * opts.Interval
		if timeout > 5*time.Second {
			timeout = 5 * time.Second
		}
		if timeout < 50*time.Millisecond {
			timeout = 50 * time.Millisecond
		}
		m.client = &http.Client{Timeout: timeout}
	}
	now := time.Now()
	for _, seed := range opts.Seeds {
		m.addLocked(seed, now)
	}
	return m
}

// addLocked registers a new address as an alive member (it has
// DeadAfter to prove itself). Caller holds m.mu or is in New.
func (m *Membership) addLocked(addr string, now time.Time) {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" || addr == m.opts.Self {
		return
	}
	id := NodeID(addr)
	if _, ok := m.members[id]; ok {
		return
	}
	m.members[id] = &member{
		node:   Node{ID: id, Addr: addr, State: StateAlive},
		lastOK: now,
	}
	m.version++
}

// Start launches the heartbeat loop.
func (m *Membership) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.tick()
			}
		}
	}()
}

// Stop ends the heartbeat loop and waits for in-flight pings.
func (m *Membership) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.wg.Wait()
}

// SelfID returns the local node's stable ID.
func (m *Membership) SelfID() string { return m.selfID }

// SelfAddr returns the local node's base URL.
func (m *Membership) SelfAddr() string { return m.opts.Self }

// Epoch returns the local process incarnation.
func (m *Membership) Epoch() int64 { return m.epoch }

// Version returns the current membership view version.
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.refreshLocked(time.Now())
	return m.version
}

// selfNode snapshots the local node's entry. Caller holds m.mu.
func (m *Membership) selfNodeLocked() Node {
	return Node{
		ID:           m.selfID,
		Addr:         m.opts.Self,
		Epoch:        m.epoch,
		State:        StateAlive,
		QueueDepth:   m.stats.QueueDepth,
		QueueCap:     m.stats.QueueCap,
		StoreEntries: m.stats.StoreEntries,
	}
}

// refreshLocked recomputes liveness states from last-heard times,
// bumping the version on any transition. Caller holds m.mu.
func (m *Membership) refreshLocked(now time.Time) {
	for _, mem := range m.members {
		silent := now.Sub(mem.lastOK)
		want := StateAlive
		switch {
		case silent >= m.opts.DeadAfter:
			want = StateDead
		case silent >= m.opts.SuspectAfter:
			want = StateSuspect
		}
		if mem.node.State != want {
			mem.node.State = want
			m.version++
		}
	}
}

// View snapshots the membership, self included, sorted by ID.
func (m *Membership) View() View {
	now := time.Now()
	if m.opts.StatsFunc != nil {
		st := m.opts.StatsFunc()
		m.mu.Lock()
		m.stats = st
	} else {
		m.mu.Lock()
	}
	defer m.mu.Unlock()
	m.refreshLocked(now)
	nodes := make([]Node, 0, len(m.members)+1)
	nodes = append(nodes, m.selfNodeLocked())
	for _, mem := range m.members {
		n := mem.node
		n.LastSeenMS = now.Sub(mem.lastOK).Milliseconds()
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return View{Version: m.version, Self: m.selfID, Nodes: nodes}
}

// Lookup resolves a member ID to its current record (self included).
func (m *Membership) Lookup(id string) (Node, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == m.selfID {
		return m.selfNodeLocked(), true
	}
	m.refreshLocked(time.Now())
	mem, ok := m.members[id]
	if !ok {
		return Node{}, false
	}
	return mem.node, true
}

// observe records that we heard from a node (heartbeat in either
// direction), creating or reviving it and adopting its self-reported
// identity and load.
func (m *Membership) observe(n Node, now time.Time) {
	if n.Addr == "" || n.Addr == m.opts.Self {
		return
	}
	id := NodeID(n.Addr)
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok {
		m.addLocked(n.Addr, now)
		mem = m.members[id]
		if mem == nil {
			return
		}
	}
	mem.lastOK = now
	if mem.node.State != StateAlive {
		mem.node.State = StateAlive
		m.version++
	}
	if n.Epoch != 0 && mem.node.Epoch != n.Epoch {
		mem.node.Epoch = n.Epoch
		m.version++
	}
	mem.node.QueueDepth = n.QueueDepth
	mem.node.QueueCap = n.QueueCap
	mem.node.StoreEntries = n.StoreEntries
}

// mergeKnown adopts addresses gossiped by a peer.
func (m *Membership) mergeKnown(addrs []string, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range addrs {
		m.addLocked(a, now)
	}
}

// ReportFailure marks a member suspect after a failed direct call
// (proxy or replication), so ownership routes around it before the
// heartbeat deadlines notice. A successful heartbeat revives it.
func (m *Membership) ReportFailure(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok || mem.node.State != StateAlive {
		return
	}
	// Backdate lastOK so the next refresh agrees it is at least
	// suspect rather than instantly flipping back.
	cutoff := time.Now().Add(-m.opts.SuspectAfter)
	if mem.lastOK.After(cutoff) {
		mem.lastOK = cutoff
	}
	mem.node.State = StateSuspect
	m.version++
}

// knownAddrsLocked lists every known address including self.
func (m *Membership) knownAddrsLocked() []string {
	out := make([]string, 0, len(m.members)+1)
	out = append(out, m.opts.Self)
	for _, mem := range m.members {
		out = append(out, mem.node.Addr)
	}
	sort.Strings(out)
	return out
}

// outgoingLocked builds the heartbeat payload. Caller holds m.mu.
func (m *Membership) outgoingLocked() heartbeat {
	return heartbeat{From: m.selfNodeLocked(), Known: m.knownAddrsLocked()}
}

// tick sends one round of heartbeats to every known member (dead ones
// included, so restarts rejoin) and applies the responses.
func (m *Membership) tick() {
	if m.opts.StatsFunc != nil {
		st := m.opts.StatsFunc()
		m.mu.Lock()
		m.stats = st
	} else {
		m.mu.Lock()
	}
	hb := m.outgoingLocked()
	targets := make([]Node, 0, len(m.members))
	for _, mem := range m.members {
		targets = append(targets, mem.node)
	}
	m.refreshLocked(time.Now())
	m.mu.Unlock()

	body, err := json.Marshal(hb)
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t Node) {
			defer wg.Done()
			m.ping(t, body)
		}(t)
	}
	wg.Wait()
}

// ping delivers one heartbeat and applies the response.
func (m *Membership) ping(t Node, body []byte) {
	timeout := m.client.Timeout
	if timeout <= 0 {
		timeout = 2 * m.opts.Interval
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		t.Addr+"/v1/cluster/heartbeat", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.client.Do(req)
	if err != nil {
		return // silence accrues; refreshLocked will demote it
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	var hb heartbeat
	if err := json.Unmarshal(raw, &hb); err != nil {
		return
	}
	now := time.Now()
	m.observe(hb.From, now)
	m.mergeKnown(hb.Known, now)
}

// HandleHeartbeat is the receiving side: it records the sender as
// alive, adopts gossiped addresses, and answers with the local node's
// own heartbeat. Mount at POST /v1/cluster/heartbeat.
func (m *Membership) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "reading heartbeat", http.StatusBadRequest)
		return
	}
	var hb heartbeat
	if err := json.Unmarshal(raw, &hb); err != nil {
		http.Error(w, "decoding heartbeat", http.StatusBadRequest)
		return
	}
	now := time.Now()
	m.observe(hb.From, now)
	m.mergeKnown(hb.Known, now)

	if m.opts.StatsFunc != nil {
		st := m.opts.StatsFunc()
		m.mu.Lock()
		m.stats = st
	} else {
		m.mu.Lock()
	}
	out := m.outgoingLocked()
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// hrwScore is the rendezvous digest: every node computes the same
// (member, hash) score, so the ordering — and therefore the owner —
// needs no coordination.
func hrwScore(id, hash string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, id)
	h.Write([]byte{0})
	io.WriteString(h, hash)
	return h.Sum64()
}

// Ranked returns the live members (self included) in HRW order for
// hash: index 0 is the owner, the rest are its successors. Ties break
// toward the smaller ID so every node agrees.
func (m *Membership) Ranked(hash string) []Node {
	v := m.View()
	live := v.Live()
	sort.Slice(live, func(i, j int) bool {
		si, sj := hrwScore(live[i].ID, hash), hrwScore(live[j].ID, hash)
		if si != sj {
			return si > sj
		}
		return live[i].ID < live[j].ID
	})
	return live
}

// Owner returns the live HRW owner of hash. ok is false when no live
// member exists (never: self is always live).
func (m *Membership) Owner(hash string) (Node, bool) {
	r := m.Ranked(hash)
	if len(r) == 0 {
		return Node{}, false
	}
	return r[0], true
}

// Successors returns up to n live members after the owner in HRW
// order — the replication targets for hash.
func (m *Membership) Successors(hash string, n int) []Node {
	r := m.Ranked(hash)
	if len(r) <= 1 || n <= 0 {
		return nil
	}
	r = r[1:]
	if len(r) > n {
		r = r[:n]
	}
	return r
}

// Load aggregates the cluster's gossiped queue occupancy: the summed
// depth and capacity over live members. The caller folds in its own
// instantaneous depth (gossiped self stats lag).
func (m *Membership) Load() (depth, cap int) {
	v := m.View()
	for _, n := range v.Live() {
		depth += n.QueueDepth
		cap += n.QueueCap
	}
	return depth, cap
}
