package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newStatic builds a membership that never heartbeats (Start not
// called), for deterministic unit tests over the view logic.
func newStatic(self string, seeds []string, interval time.Duration) *Membership {
	return New(Options{Self: self, Seeds: seeds, Interval: interval})
}

// TestHRWAgreement: every node computes the same owner and successor
// order for any hash, regardless of its own identity.
func TestHRWAgreement(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	hashes := []string{"00ab", "17ff", "deadbeef", "0123456789abcdef"}
	for _, h := range hashes {
		var want []string
		for i, self := range addrs {
			m := newStatic(self, addrs, time.Hour)
			ranked := m.Ranked(h)
			ids := make([]string, len(ranked))
			for k, n := range ranked {
				ids[k] = n.ID
			}
			if i == 0 {
				want = ids
				continue
			}
			if len(ids) != len(want) {
				t.Fatalf("hash %s: node %s ranked %d members, node %s ranked %d",
					h, self, len(ids), addrs[0], len(want))
			}
			for k := range ids {
				if ids[k] != want[k] {
					t.Fatalf("hash %s: HRW order disagrees between nodes: %v vs %v", h, ids, want)
				}
			}
		}
		if len(want) != len(addrs) {
			t.Fatalf("hash %s: ranked %d members, want %d", h, len(want), len(addrs))
		}
	}
}

// TestOwnershipRecomputesOnDeath: marking the owner suspect moves
// ownership to the next node in HRW order; revival restores it.
func TestOwnershipRecomputesOnDeath(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:1", "http://c:1"}
	m := newStatic(addrs[0], addrs, time.Hour)
	const hash = "cafef00d"
	ranked := m.Ranked(hash)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d, want 3", len(ranked))
	}
	owner, next := ranked[0], ranked[1]

	v0 := m.Version()
	m.ReportFailure(owner.ID)
	if owner.ID == m.SelfID() {
		// Self cannot be demoted; pick a hash owned by a peer instead.
		t.Skip("hash owned by self; covered by other seeds")
	}
	if got := m.Version(); got <= v0 {
		t.Fatalf("ReportFailure did not bump version (%d -> %d)", v0, got)
	}
	after, ok := m.Owner(hash)
	if !ok {
		t.Fatal("no owner after failure")
	}
	if after.ID == owner.ID {
		t.Fatal("suspect node still owns the hash")
	}
	if after.ID != next.ID {
		t.Fatalf("ownership moved to %s, want HRW successor %s", after.ID, next.ID)
	}

	// Revival: observing the node alive again restores ownership.
	m.observe(Node{Addr: owner.Addr, Epoch: 7}, time.Now())
	back, _ := m.Owner(hash)
	if back.ID != owner.ID {
		t.Fatalf("revived node did not regain ownership (owner %s, want %s)", back.ID, owner.ID)
	}
}

// TestSuspectDeadTransitions: silence demotes alive -> suspect -> dead
// on the configured deadlines, bumping the version each time.
func TestSuspectDeadTransitions(t *testing.T) {
	m := New(Options{
		Self:         "http://self:1",
		Seeds:        []string{"http://peer:1"},
		Interval:     10 * time.Millisecond,
		SuspectAfter: 20 * time.Millisecond,
		DeadAfter:    50 * time.Millisecond,
	})
	peerID := NodeID("http://peer:1")
	get := func() Node {
		n, ok := m.Lookup(peerID)
		if !ok {
			t.Fatal("peer vanished")
		}
		return n
	}
	if st := get().State; st != StateAlive {
		t.Fatalf("fresh seed state %s, want alive", st)
	}
	deadline := time.Now().Add(2 * time.Second)
	for get().State != StateSuspect {
		if time.Now().After(deadline) {
			t.Fatal("peer never became suspect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for get().State != StateDead {
		if time.Now().After(deadline) {
			t.Fatal("peer never died")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Dead members are excluded from ownership.
	ranked := m.Ranked("aa")
	if len(ranked) != 1 || ranked[0].ID != m.SelfID() {
		t.Fatalf("dead peer still ranked: %+v", ranked)
	}
}

// TestHeartbeatJoinAndGossip: three real memberships over loopback
// HTTP; C is seeded with only A, yet learns B transitively and all
// three converge to a 3-alive view with matching owner functions.
func TestHeartbeatJoinAndGossip(t *testing.T) {
	mk := func() (*httptest.Server, func(m *Membership)) {
		mux := http.NewServeMux()
		ts := httptest.NewServer(mux)
		return ts, func(m *Membership) {
			mux.HandleFunc("POST /v1/cluster/heartbeat", m.HandleHeartbeat)
		}
	}
	tsA, mountA := mk()
	tsB, mountB := mk()
	tsC, mountC := mk()
	defer tsA.Close()
	defer tsB.Close()
	defer tsC.Close()

	opts := func(self string, seeds ...string) Options {
		return Options{Self: self, Seeds: seeds, Interval: 10 * time.Millisecond,
			SuspectAfter: 50 * time.Millisecond, DeadAfter: 150 * time.Millisecond,
			StatsFunc: func() Stats { return Stats{QueueDepth: 1, QueueCap: 4} }}
	}
	a := New(opts(tsA.URL, tsB.URL))
	b := New(opts(tsB.URL, tsA.URL))
	c := New(opts(tsC.URL, tsA.URL)) // C knows only A
	mountA(a)
	mountB(b)
	mountC(c)
	for _, m := range []*Membership{a, b, c} {
		m.Start()
		defer m.Stop()
	}

	deadline := time.Now().Add(5 * time.Second)
	converged := func(m *Membership) bool {
		v := m.View()
		return len(v.Live()) == 3
	}
	for !(converged(a) && converged(b) && converged(c)) {
		if time.Now().After(deadline) {
			t.Fatalf("views never converged: a=%d b=%d c=%d live",
				len(a.View().Live()), len(b.View().Live()), len(c.View().Live()))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// All three agree on every owner.
	for _, hash := range []string{"00", "a1b2", "ffee"} {
		oa, _ := a.Owner(hash)
		ob, _ := b.Owner(hash)
		oc, _ := c.Owner(hash)
		if oa.ID != ob.ID || ob.ID != oc.ID {
			t.Fatalf("hash %s: owners disagree: %s %s %s", hash, oa.ID, ob.ID, oc.ID)
		}
	}

	// Gossiped stats propagate.
	depth, cap := a.Load()
	if cap < 8 { // at least the two peers' gossiped caps
		t.Fatalf("aggregate load depth=%d cap=%d, want peer caps gossiped", depth, cap)
	}

	// Leave: stop C; A and B demote it to dead and drop it from
	// ownership.
	c.Stop()
	tsC.Close()
	cID := NodeID(tsC.URL)
	for {
		if time.Now().After(deadline) {
			t.Fatal("stopped node never died in peer views")
		}
		n, ok := a.Lookup(cID)
		if ok && n.State == StateDead {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, hash := range []string{"00", "a1b2", "ffee"} {
		ranked := a.Ranked(hash)
		for _, n := range ranked {
			if n.ID == cID {
				t.Fatalf("dead node %s still in HRW ranking", cID)
			}
		}
	}
}

// TestSuccessors: successors exclude the owner, preserve HRW order,
// and cap at n.
func TestSuccessors(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	m := newStatic(addrs[0], addrs, time.Hour)
	const hash = "beef"
	ranked := m.Ranked(hash)
	succ := m.Successors(hash, 2)
	if len(succ) != 2 {
		t.Fatalf("%d successors, want 2", len(succ))
	}
	if succ[0].ID != ranked[1].ID || succ[1].ID != ranked[2].ID {
		t.Fatal("successors out of HRW order")
	}
	if succ[0].ID == ranked[0].ID || succ[1].ID == ranked[0].ID {
		t.Fatal("owner among its own successors")
	}
}
