package system

import (
	"testing"

	"nocstar/internal/check"
	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/workload"
)

// checkedConfig is smallConfig with a fresh invariant checker attached.
func checkedConfig(org Org) Config {
	cfg := smallConfig(org)
	cfg.Check = check.New()
	return cfg
}

// TestCheckedRunAllOrgs runs every organization — covering all four
// Table III interconnect variants (mesh and SMART monolithic, mesh
// distributed, NOCSTAR) plus the baselines and ideals — under the shadow
// oracle and asserts zero violations, real checking coverage, and that
// attaching the checker does not perturb the simulated timing.
func TestCheckedRunAllOrgs(t *testing.T) {
	for _, org := range []Org{Private, MonolithicMesh, MonolithicSMART,
		DistributedMesh, Nocstar, NocstarIdeal, IdealShared} {
		cfg := checkedConfig(org)
		r := mustRun(t, cfg)
		ck := cfg.Check
		if !ck.Ok() {
			t.Fatalf("%v: %v (%d more dropped)", org, ck.Err(), ck.Dropped())
		}
		st := ck.Stats()
		if st.Translations == 0 || st.Walks == 0 || st.Inserts == 0 ||
			st.Events == 0 || st.Ports == 0 {
			t.Fatalf("%v: oracle checked nothing: %+v", org, st)
		}
		if org == Nocstar && st.Grants == 0 {
			t.Fatalf("%v: no circuit grants shadowed", org)
		}
		plain := mustRun(t, smallConfig(org))
		if r.Cycles != plain.Cycles || r.L2Accesses != plain.L2Accesses {
			t.Fatalf("%v: checker perturbed the run: %d/%d cycles, %d/%d accesses",
				org, r.Cycles, plain.Cycles, r.L2Accesses, plain.L2Accesses)
		}
	}
}

// TestCheckedDisturbedRuns turns on every invalidation source at once —
// steady shootdowns with leaders, the TLB storm, THP, prefetching — and
// asserts the stale-serve oracle and the probe-after-invalidate
// assertions stay clean.
func TestCheckedDisturbedRuns(t *testing.T) {
	for _, org := range []Org{Private, MonolithicMesh, Nocstar} {
		cfg := checkedConfig(org)
		cfg.ShootdownInterval = 2000
		cfg.InvLeaders = 2
		cfg.THP = true
		cfg.PrefetchDegree = 2
		cfg.Storm = &StormConfig{
			ContextSwitchInterval: 20_000,
			PromoteDemoteInterval: 3_000,
			Pages:                 4096,
		}
		if org == Nocstar {
			cfg.Acquire = noc.RoundTripAcquire
		}
		mustRun(t, cfg)
		ck := cfg.Check
		if !ck.Ok() {
			t.Fatalf("%v disturbed: %v (%d more dropped)", org, ck.Err(), ck.Dropped())
		}
		if st := ck.Stats(); st.Invalidations == 0 {
			t.Fatalf("%v disturbed: no invalidations recorded: %+v", org, st)
		}
	}
}

// legacyReleaseConfig is a round-trip NOCSTAR run whose releases arrive
// late: the hammered slice's port backlog (and the storm's port charges)
// push lookups far past the conservative hold estimate, so by the time a
// holder releases, its links have expired and been re-granted — the
// foreign-hold situation the PR 3 clobber corrupted.
func legacyReleaseConfig() Config {
	cfg := Config{
		Org:     Nocstar,
		Cores:   8,
		Acquire: noc.RoundTripAcquire,
		Apps: []App{
			{Spec: smallSpec(), Threads: 1, HammerSlice: HammerNone},
			{Spec: workload.Uniform("hammer", 4000), Threads: 7, HammerSlice: 7},
		},
		InstrPerThread: 20_000,
		Seed:           3,
		Storm: &StormConfig{
			ContextSwitchInterval: 20_000,
			PromoteDemoteInterval: 3_000,
			Pages:                 4096,
		},
	}
	cfg.Check = check.New()
	return cfg
}

// TestCheckerCatchesLegacyReleaseInSystem reintroduces the PR 3
// unconditional link rewind inside a full round-trip NOCSTAR run: the
// circuit shadow must flag the clobbered reservations and the run must
// fail with the checker's error. The control run below pins that the
// same traffic is clean with the fixed release — the violations come
// from the reintroduced bug, not the workload.
func TestCheckerCatchesLegacyReleaseInSystem(t *testing.T) {
	cfg := legacyReleaseConfig()
	if _, err := Run(cfg); err != nil || !cfg.Check.Ok() {
		t.Fatalf("control run with fixed release not clean: %v", cfg.Check.Err())
	}
	if cfg.Check.Stats().Releases == 0 {
		t.Fatal("control run exercised no releases")
	}

	cfg = legacyReleaseConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.fabric.SetLegacyReleaseForTest(true)
	if _, err := s.run(); err == nil || cfg.Check.Ok() {
		t.Fatal("legacy unconditional release escaped the circuit shadow in a full run")
	}
}

// FuzzCheckedSystem runs small randomized machine configurations with
// the shadow oracle attached: whatever the fuzzer combines — org, walk
// policy, acquisition mode, SMT, THP, prefetching, shootdowns, the
// storm, fabric topology, slice placement — the run must complete with
// zero invariant violations. fabSel packs the fabric axes: the low two
// bits pick the topology, the next two the placement strategy; either
// is dropped when the drawn organization does not admit it (mirroring
// Config validation rather than rejecting the input).
func FuzzCheckedSystem(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), int64(3))   // private baseline, quiet
	f.Add(uint8(1), uint8(3), uint8(0), int64(7))   // monolithic mesh, shootdowns + storm
	f.Add(uint8(2), uint8(12), uint8(0), int64(1))  // monolithic SMART, THP + prefetch
	f.Add(uint8(3), uint8(33), uint8(0), int64(5))  // distributed mesh, shootdowns + remote walks
	f.Add(uint8(4), uint8(19), uint8(0), int64(9))  // nocstar, round-trip + shootdowns + storm
	f.Add(uint8(4), uint8(64), uint8(0), int64(2))  // nocstar, SMT
	f.Add(uint8(5), uint8(2), uint8(0), int64(11))  // nocstar ideal, storm
	f.Add(uint8(6), uint8(15), uint8(0), int64(13)) // ideal shared, everything at once
	f.Add(uint8(3), uint8(33), uint8(1), int64(5))  // distributed over the torus
	f.Add(uint8(3), uint8(3), uint8(2), int64(7))   // distributed over the crossbar, storm
	f.Add(uint8(1), uint8(12), uint8(3), int64(1))  // monolithic over the hybrid
	f.Add(uint8(3), uint8(1), uint8(12), int64(4))  // distributed, annealed placement
	f.Add(uint8(4), uint8(19), uint8(8), int64(9))  // nocstar, locality placement
	f.Add(uint8(3), uint8(35), uint8(7), int64(6))  // torus + random placement + remote walks
	f.Fuzz(func(t *testing.T, orgSel, knobs, fabSel uint8, seed int64) {
		orgs := []Org{Private, MonolithicMesh, MonolithicSMART,
			DistributedMesh, Nocstar, NocstarIdeal, IdealShared}
		cfg := smallConfig(orgs[int(orgSel)%len(orgs)])
		cfg.InstrPerThread = 5_000
		cfg.Seed = seed
		if topo := noc.TopologyKind(fabSel & 3); topo != noc.TopoMesh {
			switch cfg.Org {
			case MonolithicMesh, DistributedMesh:
				cfg.Topology = topo
			}
		}
		if strat := place.Strategy((fabSel >> 2) & 3); strat != place.RowMajor {
			switch cfg.Org {
			case DistributedMesh, Nocstar, NocstarIdeal, IdealShared:
				cfg.Placement = strat
			}
		}
		if knobs&1 != 0 {
			cfg.ShootdownInterval = 1500
			cfg.InvLeaders = 2
		}
		if knobs&2 != 0 {
			cfg.Storm = &StormConfig{
				ContextSwitchInterval: 5_000,
				PromoteDemoteInterval: 2_000,
				Pages:                 2048,
			}
		}
		if knobs&4 != 0 {
			cfg.THP = true
		}
		if knobs&8 != 0 {
			cfg.PrefetchDegree = 2
		}
		if knobs&16 != 0 {
			cfg.Acquire = noc.RoundTripAcquire
		}
		if knobs&32 != 0 {
			cfg.Policy = WalkAtRemote
		}
		if knobs&64 != 0 {
			cfg.SMT = 2
			cfg.Apps[0].Threads = 16
		}
		cfg.Check = check.New()
		if _, err := Run(cfg); err != nil {
			t.Fatalf("checked run failed: %v", err)
		}
		if !cfg.Check.Ok() {
			t.Fatal(cfg.Check.Err())
		}
	})
}
