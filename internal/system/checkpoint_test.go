package system

import (
	"context"
	"reflect"
	"testing"
)

// warmConfig is smallConfig with a warmup phase attached.
func warmConfig(org Org) Config {
	cfg := smallConfig(org)
	cfg.WarmupInstr = 5_000
	return cfg
}

// TestCheckpointRestoreMatchesInline is the subsystem's core contract:
// restoring a warmup checkpoint into a fresh system and measuring must
// produce a Result byte-identical to running warmup + measurement inline
// in one system.
func TestCheckpointRestoreMatchesInline(t *testing.T) {
	ctx := context.Background()
	for _, org := range []Org{Private, MonolithicMesh, DistributedMesh, Nocstar, IdealShared} {
		cfg := warmConfig(org)
		inline, err := RunContext(ctx, cfg)
		if err != nil {
			t.Fatalf("%v: inline: %v", org, err)
		}
		cp, err := WarmupCheckpoint(ctx, cfg)
		if err != nil {
			t.Fatalf("%v: checkpoint: %v", org, err)
		}
		restored, err := RunFromCheckpoint(ctx, cfg, cp)
		if err != nil {
			t.Fatalf("%v: restore: %v", org, err)
		}
		if !reflect.DeepEqual(inline, restored) {
			t.Fatalf("%v: restored result differs from inline warmup run\ninline:   %+v\nrestored: %+v",
				org, inline, restored)
		}
	}
}

// TestCheckpointRestoreIsRepeatable pins that one checkpoint restores
// into many systems without being consumed or mutated: a second restore
// must match the first, and a config differing only in measurement-phase
// knobs (instruction budget, shootdowns) may reuse the same checkpoint.
func TestCheckpointRestoreIsRepeatable(t *testing.T) {
	ctx := context.Background()
	cfg := warmConfig(Nocstar)
	cp, err := WarmupCheckpoint(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunFromCheckpoint(ctx, cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunFromCheckpoint(ctx, cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("second restore from the same checkpoint differs from the first")
	}

	other := cfg
	other.InstrPerThread = 30_000
	other.ShootdownInterval = 40_000
	if k1, _ := WarmupKey(cfg); true {
		k2, ok := WarmupKey(other)
		if !ok || k1 != k2 {
			t.Fatalf("measurement-phase knobs changed the warmup key: %q vs %q", k1, k2)
		}
	}
	inline, err := RunContext(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RunFromCheckpoint(ctx, other, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inline, restored) {
		t.Fatal("cross-config restore differs from that config's inline warmup run")
	}
}

func TestWarmupKey(t *testing.T) {
	cfg := warmConfig(Nocstar)
	key, ok := WarmupKey(cfg)
	if !ok || key == "" {
		t.Fatal("expected a warmup key")
	}

	cold := cfg
	cold.WarmupInstr = 0
	if _, ok := WarmupKey(cold); ok {
		t.Fatal("config without warmup must not be keyable")
	}

	diff := warmConfig(Nocstar)
	diff.Cores = 16
	diff.Apps[0].Threads = 16
	k2, ok := WarmupKey(diff)
	if !ok || k2 == key {
		t.Fatal("warmup-relevant change must change the key")
	}

	mism := warmConfig(Nocstar)
	mism.WarmupInstr = 7_000
	k3, ok := WarmupKey(mism)
	if !ok || k3 == key {
		t.Fatal("different warmup length must change the key")
	}
	if _, err := RunFromCheckpoint(context.Background(), mism, mustCheckpoint(t, cfg)); err == nil {
		t.Fatal("restore with mismatched key must fail")
	}
}

func mustCheckpoint(t *testing.T, cfg Config) *Checkpoint {
	t.Helper()
	cp, err := WarmupCheckpoint(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestWarmupChangesMeasurement sanity-checks that warmup actually warms:
// a warmed run must see fewer L2 TLB misses per reference than a cold
// run of the same measured length.
func TestWarmupChangesMeasurement(t *testing.T) {
	cold := mustRun(t, smallConfig(Nocstar))
	warm := mustRun(t, warmConfig(Nocstar))
	if warm.MemRefs != cold.MemRefs {
		t.Fatalf("measured reference counts differ: warm %d cold %d", warm.MemRefs, cold.MemRefs)
	}
	if warm.Walks >= cold.Walks {
		t.Fatalf("warmup did not reduce page walks: warm %d >= cold %d", warm.Walks, cold.Walks)
	}
}
