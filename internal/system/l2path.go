package system

import (
	"nocstar/internal/check"
	"nocstar/internal/energy"
	"nocstar/internal/engine"
	"nocstar/internal/metrics"
	"nocstar/internal/noc"
	"nocstar/internal/tlb"
	"nocstar/internal/vm"
)

// accessL2 is the entry point of the last-level TLB access path: the
// thread has missed its L1 TLB and stalls until the translation returns
// (address translation is on the critical path of every L1 cache access).
//
// The thread resumes at finish(); the *access* — the Fig. 5/6
// "outstanding shared L2 TLB access" window — ends at endAccess, when the
// response or miss message returns to the requester. A subsequent page
// walk stalls the thread but is not an outstanding L2 TLB access.
func (s *System) accessL2(x *xact) {
	th := x.th
	s.ensureMapped(th.app, x.va)
	x.start = s.eng.Now()
	s.m.l2Accesses.Inc()
	s.outstanding++
	s.conc.Observe(s.outstanding)

	switch s.cfg.Org {
	case Private:
		s.privateAccess(x)
	case MonolithicMesh, MonolithicSMART, MonolithicFixed:
		s.monoAccess(x)
	case DistributedMesh, IdealShared:
		s.distAccess(x)
	case Nocstar, NocstarIdeal:
		s.nocstarAccess(x)
	}
}

// endAccess closes the outstanding-access window opened in accessL2.
// slice is the shared slice involved, or -1 for organizations without
// per-slice tracking.
func (s *System) endAccess(slice int) {
	s.outstanding--
	if slice >= 0 {
		s.sliceEnd(slice)
	}
}

// finish releases the thread: account its stall and issue its next run of
// references. The transaction is recycled first so the next L1 miss (in
// this very call) can reuse it.
func (s *System) finish(x *xact) {
	th := x.th
	th.stall += uint64(s.eng.Now() - x.start)
	s.putXact(x)
	s.threadLoop(th)
}

// resumeWithEntry finishes a hit: install the translation in the L1 TLB
// and release the thread.
func (s *System) resumeWithEntry(x *xact) {
	th := x.th
	e := x.entry
	th.core.l1.Insert(th.app.as.Ctx, e.VPN, e.Size, e.PFN)
	if s.check != nil {
		s.check.Inserted(th.app.as.Ctx, e.VPN, e.Size)
	}
	s.finish(x)
}

// resumeWithWalk finishes a miss after its walk: install in L1.
func (s *System) resumeWithWalk(x *xact) {
	th := x.th
	size := x.res.Size
	th.core.l1.Insert(th.app.as.Ctx, x.va.VPN(size), size, uint64(x.res.PA)>>size.Shift())
	if s.check != nil {
		s.check.Inserted(th.app.as.Ctx, x.va.VPN(size), size)
	}
	s.finish(x)
}

// scheduleWalk runs a page-table walk at core c, scheduling op at the
// walk's completion cycle with the result in x.res.
func (s *System) scheduleWalk(c *core, x *xact, op uint8) {
	lat, res, ok := c.walker.Walk(s.eng.Now(), x.th.app.as, x.va)
	if !ok {
		panic("system: walk of unmapped address (ensureMapped missing)")
	}
	s.m.walks.Inc()
	s.m.walkLat.Observe(uint64(lat))
	if s.tracer != nil {
		s.tracer.Emit(metrics.TraceWalk, uint64(s.eng.Now()), uint64(lat),
			int32(c.id), int32(x.slice))
	}
	x.res = res
	if s.check != nil {
		s.check.WalkResult(x.th.app.as, x.va, res)
	}
	s.eng.ScheduleAct(engine.Cycle(lat), s, op, x)
}

// localWalked completes a walk performed at the requesting core: install
// the translation, charge the insert message that ships it to the shared
// structure (off the critical path), and resume the thread.
func (s *System) localWalked(x *xact) {
	slice := x.slice
	if slice < 0 {
		slice = 0
	}
	s.insertTranslation(x.th, x.va, x.res, slice)
	switch s.cfg.Org {
	case Private:
		// The walked entry stays in the private L2: no message.
	case MonolithicMesh, MonolithicSMART, MonolithicFixed:
		s.meter.AddMessage(energy.MonolithicMessage(x.hops, 0)) // insert msg
	case DistributedMesh, IdealShared:
		if x.src != x.dst {
			s.meter.AddMessage(energy.DistributedMessage(x.hops, 0))
		}
	case Nocstar, NocstarIdeal:
		s.sendInsertMessage(x.src, x.dst)
	}
	s.resumeWithWalk(x)
}

// remoteWalked completes a WalkAtRemote walk at the slice/bank owner:
// install the translation there, then carry the result back to the
// requester over the organization's interconnect.
func (s *System) remoteWalked(x *xact) {
	slice := x.slice
	if slice < 0 {
		slice = 0
	}
	s.insertTranslation(x.th, x.va, x.res, slice)
	switch s.cfg.Org {
	case Nocstar, NocstarIdeal:
		x.arrived = arrWalkRemote
		s.sendNocstarResponse(x, s.eng.Now())
	default:
		s.eng.ScheduleAct(engine.Cycle(x.oneWay), s, opEndResumeWalk, x)
	}
}

// insertTranslation installs a walked translation into the L2 structure
// (private L2, monolithic array, or the given slice), plus the ±k
// prefetch neighbours of Table III. Prefetched translations piggyback on
// the PTE cache line the walk fetched, so they cost no extra walk; only
// already-mapped neighbours can be prefetched.
func (s *System) insertTranslation(th *thread, va vm.VirtAddr, res vm.WalkResult, slice int) {
	a := th.app
	size := res.Size
	vpn := va.VPN(size)
	pfn := uint64(res.PA) >> size.Shift()
	s.insertOne(th, a, vpn, size, pfn, slice)

	for k := 1; k <= s.cfg.PrefetchDegree; k++ {
		for _, d := range [2]int64{int64(k), -int64(k)} {
			nvpn := uint64(int64(vpn) + d)
			nva := vm.VirtAddr(nvpn << size.Shift())
			// The OS maps whole regions eagerly, so neighbouring PTEs
			// exist even before the application touches those pages.
			s.ensureMapped(a, nva)
			pa, nsize, ok := a.as.Translate(nva)
			if !ok || nsize != size {
				continue
			}
			ns := slice
			if s.slices != nil {
				ns = s.sliceFor(th, nva)
			}
			s.insertOne(th, a, nvpn, size, uint64(pa)>>size.Shift(), ns)
			s.m.prefetches.Inc()
		}
	}
}

// insertOne installs one translation into the organization's L2 store.
func (s *System) insertOne(th *thread, a *app, vpn uint64, size vm.PageSize, pfn uint64, slice int) {
	switch {
	case th.core.privL2 != nil:
		th.core.privL2.Insert(a.as.Ctx, vpn, size, pfn)
	case s.mono != nil:
		s.mono.Insert(a.as.Ctx, vpn, size, pfn)
	case s.slices != nil:
		s.slices[slice].Insert(a.as.Ctx, vpn, size, pfn)
	}
	if s.check != nil {
		s.check.Inserted(a.as.Ctx, vpn, size)
	}
}

// ---------------------------------------------------------------------
// Private L2 TLBs (Fig. 1a) — the baseline.

func (s *System) privateAccess(x *xact) {
	th := x.th
	c := th.core
	x.slice = -1
	avail := x.start
	if c.privPortFree > avail {
		avail = c.privPortFree
	}
	c.privPortFree = avail + 1 // pipelined: one lookup starts per cycle
	if s.check != nil {
		s.check.Port(check.PortPriv, c.id, c.privPortFree)
	}
	lookupDone := avail + engine.Cycle(s.sliceLat)

	e, hit := c.privL2.Lookup(th.app.as.Ctx, x.va)
	if hit {
		if s.check != nil {
			s.check.Served(th.app.as, e.VPN, e.Size, e.PFN)
		}
		s.m.l2Hits.Inc()
		s.noteHit(x, lookupDone)
		x.entry = e
		s.eng.AtAct(lookupDone, s, opHitDone, x)
		return
	}
	s.noteMiss(x)
	s.eng.AtAct(lookupDone, s, opLocalMiss, x)
}

// ---------------------------------------------------------------------
// Monolithic banked shared L2 TLB (Fig. 1c) over mesh / SMART / a forced
// flat latency (Fig. 4).

func (s *System) monoAccess(x *xact) {
	th := x.th
	bank := s.bankFor(x.va)
	x.slice = -1
	x.dst = s.bankNodes[bank]
	x.src = th.core.node

	switch s.cfg.Org {
	case MonolithicMesh:
		x.oneWay = s.mesh.Latency(x.src, x.dst)
	case MonolithicSMART:
		x.oneWay = s.smart.Latency(x.src, x.dst)
	case MonolithicFixed:
		x.oneWay = 0 // folded into the forced access latency
	}
	x.hops = s.topo.Hops(x.src, x.dst)
	s.meter.AddMessage(energy.MonolithicMessage(2*x.hops, 0))
	s.m.netLat.Observe(uint64(2 * x.oneWay))
	s.m.remote.Inc()

	arrive := x.start + engine.Cycle(x.oneWay)
	avail := arrive
	if s.bankPortFree[bank] > avail {
		avail = s.bankPortFree[bank]
	}
	s.bankPortFree[bank] = avail + bankServiceCycles
	if s.check != nil {
		s.check.Port(check.PortBank, bank, s.bankPortFree[bank])
	}
	lat := s.monoLat
	if s.cfg.Org == MonolithicFixed {
		lat = s.cfg.FixedAccessLatency
	}
	lookupDone := avail + engine.Cycle(lat)

	e, hit := s.mono.Lookup(th.app.as.Ctx, x.va)
	if hit {
		if s.check != nil {
			s.check.Served(th.app.as, e.VPN, e.Size, e.PFN)
		}
		resume := lookupDone + engine.Cycle(x.oneWay)
		s.m.l2Hits.Inc()
		s.noteHit(x, resume)
		x.entry = e
		s.eng.AtAct(resume, s, opHitDone, x)
		return
	}
	s.noteMiss(x)
	if s.cfg.Policy == WalkAtRemote {
		x.wcore = s.cores[int(x.dst)]
		s.eng.AtAct(lookupDone, s, opRemoteWalkStart, x)
		return
	}
	// Walk at requester: miss message returns, requester walks, then an
	// insert message flows back (off the critical path).
	backAt := lookupDone + engine.Cycle(x.oneWay)
	s.eng.AtAct(backAt, s, opLocalMiss, x)
}

// bankServiceCycles is the initiation interval of one monolithic bank: a
// multi-kiloentry array with a shared H-tree cannot accept a new lookup
// every cycle the way a small slice can, which is the port contention the
// paper's Section II-C3 charges against the monolithic organization.
const bankServiceCycles = 8

// pollutionLines is how many resident lines a foreign page walk displaces
// in the slice-owner's caches under the remote-walk policy ("it pollutes
// the local cache of the remote core (degrading performance)" — a mild,
// steady pressure, not a flush).
const pollutionLines = 2

// ---------------------------------------------------------------------
// Distributed shared slices over a multi-hop mesh (Fig. 1d), and the
// zero-interconnect-latency "ideal" reference.

func (s *System) distAccess(x *xact) {
	th := x.th
	slice := s.sliceFor(th, x.va)
	s.sliceBegin(slice)
	x.slice = slice

	x.src = th.core.node
	x.dst = noc.NodeID(slice)
	if s.cfg.Org == DistributedMesh {
		x.oneWay = s.mesh.Latency(x.src, x.dst)
	}
	if x.src == x.dst {
		s.m.localSlice.Inc()
	} else {
		x.hops = s.topo.Hops(x.src, x.dst)
		s.meter.AddMessage(energy.DistributedMessage(2*x.hops, 0))
		s.m.netLat.Observe(uint64(2 * x.oneWay))
		s.m.remote.Inc()
	}

	arrive := x.start + engine.Cycle(x.oneWay)
	doneAt, e, hit := s.sliceLookup(th.app, x.va, slice, arrive)
	if hit {
		resume := doneAt + engine.Cycle(x.oneWay)
		s.m.l2Hits.Inc()
		s.noteHit(x, resume)
		x.entry = e
		s.eng.AtAct(resume, s, opHitDone, x)
		return
	}
	s.noteMiss(x)
	if s.cfg.Policy == WalkAtRemote && x.src != x.dst {
		x.wcore = s.cores[slice]
		s.eng.AtAct(doneAt, s, opRemoteWalkStart, x)
		return
	}
	backAt := doneAt + engine.Cycle(x.oneWay)
	s.eng.AtAct(backAt, s, opLocalMiss, x)
}

// sliceLookup models the pipelined, ported slice array: a lookup may
// begin no earlier than `earliest`, one new lookup starts per cycle, and
// results return after the slice's SRAM latency.
func (s *System) sliceLookup(a *app, va vm.VirtAddr, slice int, earliest engine.Cycle) (doneAt engine.Cycle, e tlb.Entry, hit bool) {
	avail := earliest
	if s.slicePortFree[slice] > avail {
		avail = s.slicePortFree[slice]
	}
	s.slicePortFree[slice] = avail + 1
	e, hit = s.slices[slice].Lookup(a.as.Ctx, va)
	if s.check != nil {
		s.check.Port(check.PortSlice, slice, s.slicePortFree[slice])
		if hit {
			s.check.Served(a.as, e.VPN, e.Size, e.PFN)
		}
	}
	return avail + engine.Cycle(s.sliceLat), e, hit
}

// sliceBegin / sliceEnd maintain the Fig. 6-right per-slice concurrency
// histogram.
func (s *System) sliceBegin(slice int) {
	s.sliceOut[slice]++
	s.sliceConc.Observe(s.sliceOut[slice])
}

func (s *System) sliceEnd(slice int) { s.sliceOut[slice]-- }

// ---------------------------------------------------------------------
// NOCSTAR: distributed slices over the latchless circuit-switched fabric
// (Section III; timeline of Fig. 10).

func (s *System) nocstarAccess(x *xact) {
	th := x.th
	slice := s.sliceFor(th, x.va)
	s.sliceBegin(slice)
	x.slice = slice

	x.src = th.core.node
	x.dst = noc.NodeID(slice)
	if x.src == x.dst {
		// Local slice: identical to a private L2 TLB access (Fig. 11a
		// "Case 1").
		s.m.localSlice.Inc()
		doneAt, e, hit := s.sliceLookup(th.app, x.va, slice, x.start)
		if hit {
			s.m.l2Hits.Inc()
			s.noteHit(x, doneAt)
			x.entry = e
			s.eng.AtAct(doneAt, s, opHitDone, x)
			return
		}
		s.noteMiss(x)
		s.eng.AtAct(doneAt, s, opLocalMiss, x)
		return
	}

	s.m.remote.Inc()
	// NOCSTAR routes the mesh grid structurally (per-link XY circuits);
	// validation pins its Topology to the mesh, so geometry hops are the
	// fabric's hops.
	x.hops = s.geo.Hops(x.src, x.dst)
	s.meter.AddMessage(energy.NocstarMessage(2*x.hops, 0))

	trav := s.fabric.TraversalCycles(x.hops)
	hold := s.fabric.HoldCyclesOneWay(x.src, x.dst)
	if s.cfg.Acquire == noc.RoundTripAcquire {
		// Hold the path for the whole remote access: request traversal,
		// estimated queue, lookup, response traversal.
		hold = engine.Cycle(2*trav+s.sliceLat) + 2
	}
	x.hold = hold
	s.fabric.RequestPathTo(x.src, x.dst, hold, s, grantRequest, x)
}

// nocstarGranted continues a remote NOCSTAR access once the request path
// is granted. Now() is the first traversal cycle; the message lands at the
// slice at the end of traversal, and the lookup may start the following
// cycle.
func (s *System) nocstarGranted(x *xact, gotTrav int) {
	if s.cfg.Acquire == noc.RoundTripAcquire {
		// The grant was delivered one cycle after arbitration reserved the
		// links through (arbitration cycle + hold); remember that window so
		// the eventual release frees exactly this grant's reservations.
		x.relUntil = s.eng.Now() - 1 + x.hold
	}
	arrive := s.eng.Now() + engine.Cycle(gotTrav-1)
	doneAt, e, hit := s.sliceLookup(x.th.app, x.va, x.slice, arrive+1)
	if hit {
		s.m.l2Hits.Inc()
		x.entry = e
		x.arrived = arrHit
		s.sendNocstarResponse(x, doneAt)
		return
	}
	s.noteMiss(x)
	if s.cfg.Policy == WalkAtRemote {
		x.wcore = s.cores[x.slice]
		s.eng.AtAct(doneAt, s, opRemoteWalkStart, x)
		return
	}
	// Walk at requester: the miss message is the response.
	x.arrived = arrMiss
	s.sendNocstarResponse(x, doneAt)
}

// sendNocstarResponse delivers a response (or miss message) from the
// slice back to the requester. readyAt is when the payload is available.
// Under one-way acquisition, the response path is set up speculatively
// during the slice lookup (Fig. 10), so an uncontended response departs
// the cycle the lookup completes. Under round-trip acquisition the links
// are already held; the response simply traverses and the path releases.
func (s *System) sendNocstarResponse(x *xact, readyAt engine.Cycle) {
	trav := s.fabric.TraversalCycles(s.geo.Hops(x.dst, x.src))
	if s.cfg.Acquire == noc.RoundTripAcquire {
		back := readyAt + engine.Cycle(trav)
		s.eng.AtAct(back, s, opNocRelease, x)
		s.nocstarArrived(x, back)
		return
	}
	issueAt := readyAt - 1 // speculative overlap with the lookup
	if s.cfg.NoSpeculativeResponse {
		issueAt = readyAt // arbitration only begins once the result is known
	}
	if issueAt < s.eng.Now() {
		issueAt = s.eng.Now()
	}
	x.readyAt = readyAt
	s.eng.AtAct(issueAt, s, opNocRespIssue, x)
}

// nocstarArrived schedules the requester-side continuation for a response
// landing at cycle back.
func (s *System) nocstarArrived(x *xact, back engine.Cycle) {
	switch x.arrived {
	case arrHit:
		s.noteHit(x, back)
		s.eng.AtAct(back, s, opHitDone, x)
	case arrMiss:
		s.eng.AtAct(back, s, opLocalMiss, x)
	case arrWalkRemote:
		s.eng.AtAct(back, s, opEndResumeWalk, x)
	}
}

// sendInsertMessage ships a walked translation to its home slice, off the
// thread's critical path: the message still occupies real links.
func (s *System) sendInsertMessage(src, dst noc.NodeID) {
	if src == dst {
		return
	}
	s.meter.AddMessage(energy.NocstarMessage(s.geo.Hops(src, dst), 0))
	// On arrival the slice write port is charged; the grant payload points
	// into slicePortFree, which is never reallocated after New.
	s.fabric.RequestPathTo(src, dst, s.fabric.HoldCyclesOneWay(src, dst),
		s, grantInsert, &s.slicePortFree[int(dst)])
}
