package system

import (
	"nocstar/internal/energy"
	"nocstar/internal/engine"
	"nocstar/internal/noc"
	"nocstar/internal/tlb"
	"nocstar/internal/vm"
)

// accessL2 is the entry point of the last-level TLB access path: the
// thread has missed its L1 TLB and stalls until the translation returns
// (address translation is on the critical path of every L1 cache access).
func (s *System) accessL2(th *thread, va vm.VirtAddr) {
	s.ensureMapped(th.app, va)
	start := s.eng.Now()
	s.l2Accesses++
	s.outstanding++
	s.conc.Observe(s.outstanding)

	// The thread resumes at done(); the *access* — the Fig. 5/6
	// "outstanding shared L2 TLB access" window — ends at endAccess,
	// when the response or miss message returns to the requester. A
	// subsequent page walk stalls the thread but is not an outstanding
	// L2 TLB access.
	done := func() {
		th.stall += uint64(s.eng.Now() - start)
		s.threadLoop(th)
	}

	switch s.cfg.Org {
	case Private:
		s.privateAccess(th, va, start, done)
	case MonolithicMesh, MonolithicSMART, MonolithicFixed:
		s.monoAccess(th, va, start, done)
	case DistributedMesh, IdealShared:
		s.distAccess(th, va, start, done)
	case Nocstar, NocstarIdeal:
		s.nocstarAccess(th, va, start, done)
	}
}

// endAccess closes the outstanding-access window opened in accessL2.
// slice is the shared slice involved, or -1 for organizations without
// per-slice tracking.
func (s *System) endAccess(slice int) {
	s.outstanding--
	if slice >= 0 {
		s.sliceEnd(slice)
	}
}

// resumeWithEntry finishes a hit: install the translation in the L1 TLB
// and release the thread.
func (s *System) resumeWithEntry(th *thread, e tlb.Entry, done func()) {
	th.core.l1.Insert(th.app.as.Ctx, e.VPN, e.Size, e.PFN)
	done()
}

// resumeWithWalk finishes a miss after its walk: install in L1.
func (s *System) resumeWithWalk(th *thread, va vm.VirtAddr, res vm.WalkResult, done func()) {
	size := res.Size
	th.core.l1.Insert(th.app.as.Ctx, va.VPN(size), size, uint64(res.PA)>>size.Shift())
	done()
}

// performWalk runs a page-table walk at core c, invoking cb with the walk
// result at its completion cycle.
func (s *System) performWalk(c *core, a *app, va vm.VirtAddr, cb func(res vm.WalkResult)) {
	lat, res, ok := c.walker.Walk(s.eng.Now(), a.as, va)
	if !ok {
		panic("system: walk of unmapped address (ensureMapped missing)")
	}
	s.walks++
	s.eng.Schedule(engine.Cycle(lat), func() { cb(res) })
}

// insertTranslation installs a walked translation into the L2 structure
// (private L2, monolithic array, or the given slice), plus the ±k
// prefetch neighbours of Table III. Prefetched translations piggyback on
// the PTE cache line the walk fetched, so they cost no extra walk; only
// already-mapped neighbours can be prefetched.
func (s *System) insertTranslation(th *thread, va vm.VirtAddr, res vm.WalkResult, slice int) {
	a := th.app
	size := res.Size
	vpn := va.VPN(size)
	pfn := uint64(res.PA) >> size.Shift()
	s.insertOne(th, a, vpn, size, pfn, slice)

	for k := 1; k <= s.cfg.PrefetchDegree; k++ {
		for _, d := range [2]int64{int64(k), -int64(k)} {
			nvpn := uint64(int64(vpn) + d)
			nva := vm.VirtAddr(nvpn << size.Shift())
			// The OS maps whole regions eagerly, so neighbouring PTEs
			// exist even before the application touches those pages.
			s.ensureMapped(a, nva)
			pa, nsize, ok := a.as.Translate(nva)
			if !ok || nsize != size {
				continue
			}
			ns := slice
			if s.slices != nil {
				ns = s.sliceFor(th, nva)
			}
			s.insertOne(th, a, nvpn, size, uint64(pa)>>size.Shift(), ns)
			s.prefetches++
		}
	}
}

// insertOne installs one translation into the organization's L2 store.
func (s *System) insertOne(th *thread, a *app, vpn uint64, size vm.PageSize, pfn uint64, slice int) {
	switch {
	case th.core.privL2 != nil:
		th.core.privL2.Insert(a.as.Ctx, vpn, size, pfn)
	case s.mono != nil:
		s.mono.Insert(a.as.Ctx, vpn, size, pfn)
	case s.slices != nil:
		s.slices[slice].Insert(a.as.Ctx, vpn, size, pfn)
	}
}

// ---------------------------------------------------------------------
// Private L2 TLBs (Fig. 1a) — the baseline.

func (s *System) privateAccess(th *thread, va vm.VirtAddr, start engine.Cycle, done func()) {
	c := th.core
	avail := start
	if c.privPortFree > avail {
		avail = c.privPortFree
	}
	c.privPortFree = avail + 1 // pipelined: one lookup starts per cycle
	lookupDone := avail + engine.Cycle(s.sliceLat)

	e, hit := c.privL2.Lookup(th.app.as.Ctx, va)
	if hit {
		s.l2Hits++
		s.accessCycles += uint64(lookupDone - start)
		s.hitCount++
		s.eng.At(lookupDone, func() {
			s.endAccess(-1)
			s.resumeWithEntry(th, e, done)
		})
		return
	}
	s.l2Misses++
	s.eng.At(lookupDone, func() {
		s.endAccess(-1)
		s.performWalk(c, th.app, va, func(res vm.WalkResult) {
			s.insertTranslation(th, va, res, 0)
			s.resumeWithWalk(th, va, res, done)
		})
	})
}

// ---------------------------------------------------------------------
// Monolithic banked shared L2 TLB (Fig. 1c) over mesh / SMART / a forced
// flat latency (Fig. 4).

func (s *System) monoAccess(th *thread, va vm.VirtAddr, start engine.Cycle, done func()) {
	bank := s.bankFor(va)
	dst := s.bankNodes[bank]
	src := th.core.node

	var oneWay int
	switch s.cfg.Org {
	case MonolithicMesh:
		oneWay = s.mesh.Latency(src, dst)
	case MonolithicSMART:
		oneWay = s.smart.Latency(src, dst)
	case MonolithicFixed:
		oneWay = 0 // folded into the forced access latency
	}
	hops := s.geo.Hops(src, dst)
	s.meter.AddMessage(energy.MonolithicMessage(2*hops, 0))
	s.netCycles += uint64(2 * oneWay)
	s.remoteCount++

	arrive := start + engine.Cycle(oneWay)
	avail := arrive
	if s.bankPortFree[bank] > avail {
		avail = s.bankPortFree[bank]
	}
	s.bankPortFree[bank] = avail + bankServiceCycles
	lat := s.monoLat
	if s.cfg.Org == MonolithicFixed {
		lat = s.cfg.FixedAccessLatency
	}
	lookupDone := avail + engine.Cycle(lat)

	e, hit := s.mono.Lookup(th.app.as.Ctx, va)
	if hit {
		resume := lookupDone + engine.Cycle(oneWay)
		s.l2Hits++
		s.accessCycles += uint64(resume - start)
		s.hitCount++
		s.eng.At(resume, func() {
			s.endAccess(-1)
			s.resumeWithEntry(th, e, done)
		})
		return
	}
	s.l2Misses++
	if s.cfg.Policy == WalkAtRemote {
		remote := s.cores[int(dst)]
		s.eng.At(lookupDone, func() {
			remote.hier.Pollute(pollutionLines)
			s.performWalk(remote, th.app, va, func(res vm.WalkResult) {
				s.insertTranslation(th, va, res, 0)
				s.eng.Schedule(engine.Cycle(oneWay), func() {
					s.endAccess(-1)
					s.resumeWithWalk(th, va, res, done)
				})
			})
		})
		return
	}
	// Walk at requester: miss message returns, requester walks, then an
	// insert message flows back (off the critical path).
	backAt := lookupDone + engine.Cycle(oneWay)
	s.eng.At(backAt, func() {
		s.endAccess(-1)
		s.performWalk(th.core, th.app, va, func(res vm.WalkResult) {
			s.insertTranslation(th, va, res, 0)
			s.meter.AddMessage(energy.MonolithicMessage(hops, 0)) // insert msg
			s.resumeWithWalk(th, va, res, done)
		})
	})
}

// bankServiceCycles is the initiation interval of one monolithic bank: a
// multi-kiloentry array with a shared H-tree cannot accept a new lookup
// every cycle the way a small slice can, which is the port contention the
// paper's Section II-C3 charges against the monolithic organization.
const bankServiceCycles = 8

// pollutionLines is how many resident lines a foreign page walk displaces
// in the slice-owner's caches under the remote-walk policy ("it pollutes
// the local cache of the remote core (degrading performance)" — a mild,
// steady pressure, not a flush).
const pollutionLines = 2

// ---------------------------------------------------------------------
// Distributed shared slices over a multi-hop mesh (Fig. 1d), and the
// zero-interconnect-latency "ideal" reference.

func (s *System) distAccess(th *thread, va vm.VirtAddr, start engine.Cycle, done func()) {
	slice := s.sliceFor(th, va)
	s.sliceBegin(slice)

	src := th.core.node
	dst := noc.NodeID(slice)
	oneWay := 0
	if s.cfg.Org == DistributedMesh {
		oneWay = s.mesh.Latency(src, dst)
	}
	if src == dst {
		s.localSlice++
	} else {
		hops := s.geo.Hops(src, dst)
		s.meter.AddMessage(energy.DistributedMessage(2*hops, 0))
		s.netCycles += uint64(2 * oneWay)
		s.remoteCount++
	}

	arrive := start + engine.Cycle(oneWay)
	doneAt, e, hit := s.sliceLookup(th.app, va, slice, arrive)
	if hit {
		resume := doneAt + engine.Cycle(oneWay)
		s.l2Hits++
		s.accessCycles += uint64(resume - start)
		s.hitCount++
		s.eng.At(resume, func() {
			s.endAccess(slice)
			s.resumeWithEntry(th, e, done)
		})
		return
	}
	s.l2Misses++
	if s.cfg.Policy == WalkAtRemote && src != dst {
		remote := s.cores[slice]
		s.eng.At(doneAt, func() {
			remote.hier.Pollute(pollutionLines)
			s.performWalk(remote, th.app, va, func(res vm.WalkResult) {
				s.insertTranslation(th, va, res, slice)
				s.eng.Schedule(engine.Cycle(oneWay), func() {
					s.endAccess(slice)
					s.resumeWithWalk(th, va, res, done)
				})
			})
		})
		return
	}
	backAt := doneAt + engine.Cycle(oneWay)
	s.eng.At(backAt, func() {
		s.endAccess(slice)
		s.performWalk(th.core, th.app, va, func(res vm.WalkResult) {
			s.insertTranslation(th, va, res, slice)
			if src != dst {
				s.meter.AddMessage(energy.DistributedMessage(s.geo.Hops(src, dst), 0))
			}
			s.resumeWithWalk(th, va, res, done)
		})
	})
}

// sliceLookup models the pipelined, ported slice array: a lookup may
// begin no earlier than `earliest`, one new lookup starts per cycle, and
// results return after the slice's SRAM latency.
func (s *System) sliceLookup(a *app, va vm.VirtAddr, slice int, earliest engine.Cycle) (doneAt engine.Cycle, e tlb.Entry, hit bool) {
	avail := earliest
	if s.slicePortFree[slice] > avail {
		avail = s.slicePortFree[slice]
	}
	s.slicePortFree[slice] = avail + 1
	e, hit = s.slices[slice].Lookup(a.as.Ctx, va)
	return avail + engine.Cycle(s.sliceLat), e, hit
}

// sliceBegin / sliceEnd maintain the Fig. 6-right per-slice concurrency
// histogram.
func (s *System) sliceBegin(slice int) {
	s.sliceOut[slice]++
	s.sliceConc.Observe(s.sliceOut[slice])
}

func (s *System) sliceEnd(slice int) { s.sliceOut[slice]-- }

// ---------------------------------------------------------------------
// NOCSTAR: distributed slices over the latchless circuit-switched fabric
// (Section III; timeline of Fig. 10).

func (s *System) nocstarAccess(th *thread, va vm.VirtAddr, start engine.Cycle, done func()) {
	slice := s.sliceFor(th, va)
	s.sliceBegin(slice)

	src := th.core.node
	dst := noc.NodeID(slice)
	if src == dst {
		// Local slice: identical to a private L2 TLB access (Fig. 11a
		// "Case 1").
		s.localSlice++
		doneAt, e, hit := s.sliceLookup(th.app, va, slice, start)
		if hit {
			s.l2Hits++
			s.accessCycles += uint64(doneAt - start)
			s.hitCount++
			s.eng.At(doneAt, func() {
				s.endAccess(slice)
				s.resumeWithEntry(th, e, done)
			})
			return
		}
		s.l2Misses++
		s.eng.At(doneAt, func() {
			s.endAccess(slice)
			s.performWalk(th.core, th.app, va, func(res vm.WalkResult) {
				s.insertTranslation(th, va, res, slice)
				s.resumeWithWalk(th, va, res, done)
			})
		})
		return
	}

	s.remoteCount++
	hops := s.geo.Hops(src, dst)
	s.meter.AddMessage(energy.NocstarMessage(2*hops, 0))

	trav := s.fabric.TraversalCycles(hops)
	hold := s.fabric.HoldCyclesOneWay(src, dst)
	if s.cfg.Acquire == noc.RoundTripAcquire {
		// Hold the path for the whole remote access: request traversal,
		// estimated queue, lookup, response traversal.
		hold = engine.Cycle(2*trav+s.sliceLat) + 2
	}

	s.fabric.RequestPath(src, dst, hold, func(gotTrav int) {
		// Now() is the first traversal cycle; the message lands at the
		// slice at the end of traversal, and the lookup may start the
		// following cycle.
		arrive := s.eng.Now() + engine.Cycle(gotTrav-1)
		doneAt, e, hit := s.sliceLookup(th.app, va, slice, arrive+1)
		if hit {
			s.l2Hits++
			s.sendNocstarResponse(dst, src, doneAt, func(back engine.Cycle) {
				s.accessCycles += uint64(back - start)
				s.hitCount++
				s.eng.At(back, func() {
					s.endAccess(slice)
					s.resumeWithEntry(th, e, done)
				})
			})
			return
		}
		s.l2Misses++
		if s.cfg.Policy == WalkAtRemote {
			remote := s.cores[slice]
			s.eng.At(doneAt, func() {
				remote.hier.Pollute(pollutionLines)
				s.performWalk(remote, th.app, va, func(res vm.WalkResult) {
					s.insertTranslation(th, va, res, slice)
					s.sendNocstarResponse(dst, src, s.eng.Now(), func(back engine.Cycle) {
						s.eng.At(back, func() {
							s.endAccess(slice)
							s.resumeWithWalk(th, va, res, done)
						})
					})
				})
			})
			return
		}
		// Walk at requester: the miss message is the response.
		s.sendNocstarResponse(dst, src, doneAt, func(back engine.Cycle) {
			s.eng.At(back, func() {
				s.endAccess(slice)
				s.performWalk(th.core, th.app, va, func(res vm.WalkResult) {
					s.insertTranslation(th, va, res, slice)
					s.sendInsertMessage(src, dst)
					s.resumeWithWalk(th, va, res, done)
				})
			})
		})
	})
}

// sendNocstarResponse delivers a response (or miss message) from the
// slice back to the requester. readyAt is when the payload is available.
// Under one-way acquisition, the response path is set up speculatively
// during the slice lookup (Fig. 10), so an uncontended response departs
// the cycle the lookup completes. Under round-trip acquisition the links
// are already held; the response simply traverses and the path releases.
func (s *System) sendNocstarResponse(from, to noc.NodeID, readyAt engine.Cycle, arrived func(back engine.Cycle)) {
	trav := s.fabric.TraversalCycles(s.geo.Hops(from, to))
	if s.cfg.Acquire == noc.RoundTripAcquire {
		back := readyAt + engine.Cycle(trav)
		s.eng.At(back, func() { s.fabric.Release(to, from) })
		arrived(back)
		return
	}
	issueAt := readyAt - 1 // speculative overlap with the lookup
	if s.cfg.NoSpeculativeResponse {
		issueAt = readyAt // arbitration only begins once the result is known
	}
	if issueAt < s.eng.Now() {
		issueAt = s.eng.Now()
	}
	s.eng.At(issueAt, func() {
		s.fabric.RequestPath(from, to, s.fabric.HoldCyclesOneWay(from, to), func(gotTrav int) {
			back := s.eng.Now() + engine.Cycle(gotTrav-1)
			if back < readyAt {
				back = readyAt
			}
			arrived(back)
		})
	})
}

// sendInsertMessage ships a walked translation to its home slice, off the
// thread's critical path: the message still occupies real links.
func (s *System) sendInsertMessage(src, dst noc.NodeID) {
	if src == dst {
		return
	}
	s.meter.AddMessage(energy.NocstarMessage(s.geo.Hops(src, dst), 0))
	s.fabric.RequestPath(src, dst, s.fabric.HoldCyclesOneWay(src, dst), func(int) {
		// Charge the slice write port on arrival.
		slice := int(dst)
		if s.slicePortFree[slice] < s.eng.Now() {
			s.slicePortFree[slice] = s.eng.Now()
		}
		s.slicePortFree[slice]++
	})
}
