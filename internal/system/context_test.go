package system

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"nocstar/internal/workload"
)

func ctxTestCfg() Config {
	return Config{
		Org:   Nocstar,
		Cores: 4,
		Apps: []App{{
			Spec: workload.Spec{
				Name:           "ctx-test",
				FootprintPages: 512,
				MemRefPerInstr: 0.3,
				BaseCPI:        1.2,
			},
			Threads:     4,
			HammerSlice: HammerNone,
		}},
		InstrPerThread: 5_000,
		Seed:           3,
	}
}

// TestRunContextBackgroundEqualsRun pins that attaching a background
// context changes nothing: Run and RunContext(Background) produce
// deeply equal Results.
func TestRunContextBackgroundEqualsRun(t *testing.T) {
	cfg := ctxTestCfg()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunContext(Background) differs from Run")
	}
}

// TestRunContextCancellableEqualsRun pins that a live (cancellable but
// never canceled) context also changes nothing — the strided polling
// must not perturb the simulation.
func TestRunContextCancellableEqualsRun(t *testing.T) {
	cfg := ctxTestCfg()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunContext with live context differs from Run")
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, ctxTestCfg())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestRunContextDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, ctxTestCfg())
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
}

// TestRunContextCancelMidRun cancels a run that would otherwise
// simulate for a very long time and checks it stops promptly with the
// typed error.
func TestRunContextCancelMidRun(t *testing.T) {
	cfg := ctxTestCfg()
	cfg.InstrPerThread = 1 << 40 // would run for hours
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunContext(ctx, cfg)
		done <- outcome{res, err}
	}()
	time.Sleep(100 * time.Millisecond) // let it get well into the run
	cancel()
	select {
	case o := <-done:
		if !errors.Is(o.err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return within 30s")
	}
}
