package system

import (
	"nocstar/internal/check"
	"nocstar/internal/engine"
	"nocstar/internal/vm"
	"nocstar/internal/workload"
)

// This file implements the virtual-memory disturbance machinery: steady
// shootdown traffic (Fig. 16 right), and the Section V TLB-storm
// microbenchmark — rapid context switches (full shared-TLB flushes on
// x86) interleaved with superpage promotions/demotions whose 512-entry
// invalidation bursts all target a single TLB slice.

// storm is the storm microbenchmark's OS-side state.
type storm struct {
	as       *vm.AddressSpace
	base     vm.VirtAddr
	regions  uint64 // 2 MB regions cycled through
	next     uint64
	promoted []bool
}

// startDisturbances arms the shootdown generator and/or the storm co-run.
func (s *System) startDisturbances() {
	if s.cfg.ShootdownInterval > 0 {
		s.eng.ScheduleAct(engine.Cycle(s.cfg.ShootdownInterval), s, opShootdownTick, nil)
	}
	if s.cfg.Storm != nil {
		st := &storm{
			as:   vm.NewAddressSpace(vm.ContextID(len(s.apps) + 1)),
			base: 0x7000_0000_0000,
		}
		st.regions = s.cfg.Storm.Pages / 512
		if st.regions == 0 {
			st.regions = 1
		}
		st.promoted = make([]bool, st.regions)
		if s.cfg.Storm.PromoteDemoteInterval > 0 {
			s.eng.ScheduleAct(engine.Cycle(s.cfg.Storm.PromoteDemoteInterval), s, opStormPromote, st)
		}
		if s.cfg.Storm.ContextSwitchInterval > 0 {
			s.eng.ScheduleAct(engine.Cycle(s.cfg.Storm.ContextSwitchInterval), s, opStormCtxSwitch, nil)
		}
	}
}

// shootdownTick remaps one random hot page of a random app, broadcasting
// the invalidation, then re-arms while any thread remains live.
func (s *System) shootdownTick() {
	if s.threadsLive == 0 {
		return
	}
	a := s.apps[s.rng.Intn(len(s.apps))]
	reg := a.regions[0] // remap in the shared region: every core caches it
	idx := s.rng.Uint64n(reg.Pages)
	va := reg.Base + vm.VirtAddr(workload.PageSlot(idx, reg.Pages)*vm.Page4K.Bytes())
	s.ensureMapped(a, va) // the OS can remap a not-yet-touched page too
	_, size, ok := a.as.Translate(va)
	if ok {
		s.deliverInvalidations([]vm.Invalidation{
			{Ctx: a.as.Ctx, VPN: va.VPN(size), Size: size},
		})
	}
	s.eng.ScheduleAct(engine.Cycle(s.cfg.ShootdownInterval), s, opShootdownTick, nil)
}

// stormPromoteDemote performs the microbenchmark's next promote or demote
// on its region ring: "allocate 4KB pages, promote them to 2MB
// superpages, and then break them into 4KB pages again".
func (s *System) stormPromoteDemote(st *storm) {
	if s.threadsLive == 0 {
		return
	}
	idx := st.next % st.regions
	st.next++
	base := st.base + vm.VirtAddr(idx*vm.Page2M.Bytes())
	var invs []vm.Invalidation
	if !st.promoted[idx] {
		for i := uint64(0); i < 512; i++ {
			st.as.EnsureMapped(base+vm.VirtAddr(i*vm.Page4K.Bytes()), vm.Page4K)
		}
		if got, err := st.as.Promote2M(base); err == nil {
			invs = got
			st.promoted[idx] = true
		}
	} else {
		if got, err := st.as.Demote2M(base); err == nil {
			invs = got
			st.promoted[idx] = false
		}
	}
	horizon := s.deliverInvalidations(invs)
	// Shootdowns are synchronous: the storm process waits for the burst
	// to drain before its next promote/demote, so congestion is bounded
	// (and painful) rather than divergent.
	next := engine.Cycle(s.cfg.Storm.PromoteDemoteInterval)
	if wait := horizon - s.eng.Now(); wait > next {
		next = wait + engine.Cycle(s.cfg.Storm.PromoteDemoteInterval)/4
	}
	s.eng.ScheduleAct(next, s, opStormPromote, st)
}

// stormContextSwitch models an x86 context switch under the storm: all
// shared TLB contents are flushed, as are L1 TLBs and page-walk caches.
func (s *System) stormContextSwitch() {
	if s.threadsLive == 0 {
		return
	}
	if s.check != nil {
		s.check.FlushedAll()
	}
	for _, c := range s.cores {
		c.l1.Flush()
		c.walker.InvalidatePWC()
		if c.privL2 != nil {
			// The private L2 TLB's port performs the flush too: the
			// private baseline does not get context switches for free
			// while the shared organizations pay theirs below.
			c.privL2.Flush()
			s.chargePrivPort(c, 4)
		}
	}
	if s.mono != nil {
		s.mono.Flush()
		for b := range s.bankPortFree {
			s.chargeBankPort(b, 4)
		}
	}
	for i, sl := range s.slices {
		sl.Flush()
		s.chargeSlicePort(i, 4)
	}
	s.eng.ScheduleAct(engine.Cycle(s.cfg.Storm.ContextSwitchInterval), s, opStormCtxSwitch, nil)
}

// deliverInvalidations executes one shootdown: the IPI handler
// invalidates every core's L1 TLB and page-walk cache, then invalidation
// messages are relayed to the owning shared-TLB structure — either
// directly from every core (InvLeaders == 0) or via the configured
// invalidation leaders (Section III-G). Message traffic is charged to the
// structure ports so it contends with demand lookups. Bursts targeting
// the same structure (a superpage promotion invalidating 512 base-page
// entries of one home slice) coalesce into at most a full set-scrub of
// that structure, the way range invalidations work in hardware — so a
// small slice absorbs a burst far faster than a monolithic bank.
// It returns the latest cycle any charged port stays busy through.
func (s *System) deliverInvalidations(invs []vm.Invalidation) engine.Cycle {
	if len(invs) == 0 {
		return s.eng.Now()
	}
	s.m.invLat.Observe(uint64(len(invs)))

	// How many relayed messages reach the shared structure per
	// invalidation, and the relay serialization at leader cores.
	senders := s.cfg.Cores
	if s.cfg.InvLeaders > 0 && s.cfg.InvLeaders < s.cfg.Cores {
		senders = s.cfg.InvLeaders
		group := (s.cfg.Cores + senders - 1) / senders
		for l := 0; l < s.cfg.Cores; l += group {
			s.chargeSlicePortIfAny(l, group)
		}
	}

	sliceCharges := map[int]int{}
	bankCharges := map[int]int{}
	privCharges := 0

	for _, inv := range invs {
		if s.check != nil {
			s.check.Invalidated(inv)
		}
		for _, c := range s.cores {
			c.l1.Apply(inv)
			c.walker.InvalidatePWC()
		}

		switch {
		case s.mono != nil:
			s.mono.Apply(inv)
			if inv.FullFlush {
				// The flush scrubs every bank's share of the array, so
				// every bank's port is busy — mirroring the sliced
				// branch below, which charges every slice.
				for b := range s.bankPortFree {
					bankCharges[b]++
				}
				s.m.shootdowns.Add(uint64(s.cfg.Banks))
				continue
			}
			bank := s.bankFor(vm.VirtAddr(inv.VPN << inv.Size.Shift()))
			bankCharges[bank] += senders
			s.m.shootdowns.Add(uint64(senders))
			s.checkScrubbed(inv, -1, true)
		case s.slices != nil:
			if inv.FullFlush {
				for i, sl := range s.slices {
					sl.Apply(inv)
					sliceCharges[i]++
				}
				s.m.shootdowns.Add(uint64(len(s.slices)))
				continue
			}
			home := s.homeSlice(vm.VirtAddr(inv.VPN << inv.Size.Shift()))
			s.slices[home].Apply(inv)
			sliceCharges[home] += senders
			s.m.shootdowns.Add(uint64(senders))
			s.checkScrubbed(inv, home, false)
		default:
			// Private org: every core's private L2 TLB performs the
			// invalidation lookup, occupying its port — IPI shootdowns
			// are not free on the baseline either.
			for _, c := range s.cores {
				c.privL2.Apply(inv)
			}
			privCharges++
			s.m.shootdowns.Inc()
			s.checkScrubbed(inv, -1, false)
		}
	}

	// Apply coalesced charges: a burst costs at most one scrub of the
	// target structure's sets plus the message delivery itself.
	horizon := s.eng.Now()
	for slice, n := range sliceCharges {
		cap := s.slices[slice].Sets() + senders
		if n > cap {
			n = cap
		}
		s.chargeSlicePort(slice, n)
		if s.slicePortFree[slice] > horizon {
			horizon = s.slicePortFree[slice]
		}
	}
	for bank, n := range bankCharges {
		cap := s.mono.Sets()/s.cfg.Banks + senders
		if n > cap {
			n = cap
		}
		s.chargeBankPort(bank, n)
		if s.bankPortFree[bank] > horizon {
			horizon = s.bankPortFree[bank]
		}
	}
	if privCharges > 0 {
		// The same scrub coalescing applies to each private L2 TLB.
		n := privCharges
		if cap := s.cores[0].privL2.Sets() + 1; n > cap {
			n = cap
		}
		for _, c := range s.cores {
			s.chargePrivPort(c, n)
			if c.privPortFree > horizon {
				horizon = c.privPortFree
			}
		}
	}
	return horizon
}

// checkScrubbed asserts (checker runs only) that after a targeted
// invalidation no L1 TLB — nor the invalidation's home structure —
// still serves the scrubbed translation. slice names the home slice
// (-1: none); bank is true when the monolithic TLB was the target.
func (s *System) checkScrubbed(inv vm.Invalidation, slice int, bank bool) {
	if s.check == nil || inv.FullFlush {
		return
	}
	for _, c := range s.cores {
		if c.l1.Probe(inv.Ctx, inv.VPN, inv.Size) {
			s.check.Violatef("core %d L1 TLB still holds ctx=%d vpn=%#x size=%v after invalidation",
				c.id, inv.Ctx, inv.VPN, inv.Size)
		}
		if c.privL2 != nil && c.privL2.Probe(inv.Ctx, inv.VPN, inv.Size) {
			s.check.Violatef("core %d private L2 TLB still holds ctx=%d vpn=%#x size=%v after invalidation",
				c.id, inv.Ctx, inv.VPN, inv.Size)
		}
	}
	if bank && s.mono.Probe(inv.Ctx, inv.VPN, inv.Size) {
		s.check.Violatef("monolithic TLB still holds ctx=%d vpn=%#x size=%v after invalidation",
			inv.Ctx, inv.VPN, inv.Size)
	}
	if slice >= 0 && s.slices[slice].Probe(inv.Ctx, inv.VPN, inv.Size) {
		s.check.Violatef("slice %d still holds ctx=%d vpn=%#x size=%v after invalidation",
			slice, inv.Ctx, inv.VPN, inv.Size)
	}
}

// chargeSlicePort makes the slice's ports busy for n extra cycles.
func (s *System) chargeSlicePort(slice, n int) {
	now := s.eng.Now()
	if s.slicePortFree[slice] < now {
		s.slicePortFree[slice] = now
	}
	s.slicePortFree[slice] += engine.Cycle(n)
	if s.check != nil {
		s.check.Port(check.PortSlice, slice, s.slicePortFree[slice])
	}
}

// chargeSlicePortIfAny is chargeSlicePort guarded for organizations
// without slices (leader relay charges only exist there and for banks).
func (s *System) chargeSlicePortIfAny(slice, n int) {
	if s.slices == nil || slice >= len(s.slicePortFree) {
		return
	}
	s.chargeSlicePort(slice, n)
}

// chargeBankPort makes a monolithic bank's port busy for n extra cycles.
func (s *System) chargeBankPort(bank, n int) {
	now := s.eng.Now()
	if s.bankPortFree[bank] < now {
		s.bankPortFree[bank] = now
	}
	s.bankPortFree[bank] += engine.Cycle(n)
	if s.check != nil {
		s.check.Port(check.PortBank, bank, s.bankPortFree[bank])
	}
}

// chargePrivPort makes a core's private L2 TLB port busy for n extra
// cycles.
func (s *System) chargePrivPort(c *core, n int) {
	now := s.eng.Now()
	if c.privPortFree < now {
		c.privPortFree = now
	}
	c.privPortFree += engine.Cycle(n)
	if s.check != nil {
		s.check.Port(check.PortPriv, c.id, c.privPortFree)
	}
}
