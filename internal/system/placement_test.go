package system

import (
	"reflect"
	"testing"

	"nocstar/internal/noc"
	"nocstar/internal/place"
)

// TestBankNodesWithinCores is the regression pin for the padded-grid
// bank-placement bug: a core count whose grid pads spare tiles (5 -> 3x2,
// 7 -> 3x3, 11 -> 4x3) used to place monolithic banks on tile IDs at or
// beyond Cores, and the first remote walk indexed s.cores out of range.
func TestBankNodesWithinCores(t *testing.T) {
	for _, cores := range []int{5, 7, 11} {
		cfg := smallConfig(MonolithicMesh)
		cfg.Cores = cores
		cfg.Apps[0].Threads = cores
		cfg.Policy = WalkAtRemote
		cfg.InstrPerThread = 5_000

		norm, err := cfg.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(norm)
		if err != nil {
			t.Fatal(err)
		}
		for b, nd := range s.bankNodes {
			if int(nd) >= cores {
				t.Fatalf("cores=%d: bank %d on padded tile %d", cores, b, nd)
			}
		}
		// The full run exercises the walk path that panicked pre-fix.
		r := mustRun(t, cfg)
		if r.Cycles == 0 || r.Instructions != uint64(cores)*5_000 {
			t.Fatalf("cores=%d: degenerate run %+v", cores, r)
		}
	}
}

// topologyConfig is the base config of the fabric matrix tests: a
// 16-core distributed organization (4x4 grid, so the hybrid's cluster
// structure and the torus wrap both engage).
func topologyConfig(kind noc.TopologyKind) Config {
	cfg := smallConfig(DistributedMesh)
	cfg.Cores = 16
	cfg.Apps[0].Threads = 16
	cfg.InstrPerThread = 8_000
	cfg.Topology = kind
	return cfg
}

// TestTopologyShardIdentity extends the K-identity pin across every
// fabric: for each topology, sharded runs at K in {2, 4} must produce a
// Result deep-equal to the K=1 run.
func TestTopologyShardIdentity(t *testing.T) {
	for _, kind := range noc.TopologyKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := topologyConfig(kind)
			cfg.Policy = WalkAtRemote
			cfg.ShootdownInterval = 30_000
			base, err := RunSharded(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if base.Cycles == 0 || base.L2Accesses == 0 {
				t.Fatalf("degenerate run: %+v", base)
			}
			for _, k := range []int{2, 4} {
				got, err := RunSharded(cfg, k)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("shards=%d diverges from shards=1 under %v", k, kind)
				}
			}
		})
	}
}

// TestTopologyChangesLatency sanity-checks that the fabric actually
// flows into timing: the single-hop crossbar must finish a distributed
// run in no more cycles than the multi-hop mesh.
func TestTopologyChangesLatency(t *testing.T) {
	mesh := mustRun(t, topologyConfig(noc.TopoMesh))
	xbar := mustRun(t, topologyConfig(noc.TopoXBar))
	if xbar.Cycles > mesh.Cycles {
		t.Fatalf("crossbar run slower than mesh: %d > %d cycles", xbar.Cycles, mesh.Cycles)
	}
	if xbar.Cycles == mesh.Cycles {
		t.Fatalf("crossbar run identical to mesh (%d cycles): topology not wired into timing", xbar.Cycles)
	}
}

// TestPlacementShardIdentity pins K-invariance for the optimizing
// placements: both engines must build the identical table and produce
// the identical Result.
func TestPlacementShardIdentity(t *testing.T) {
	for _, strat := range []place.Strategy{place.Random, place.LocalityAware, place.Annealed} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			cfg := topologyConfig(noc.TopoMesh)
			cfg.Placement = strat
			base, err := RunSharded(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4} {
				got, err := RunSharded(cfg, k)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("shards=%d diverges from shards=1 under %v placement", k, strat)
				}
			}
		})
	}
}

// TestPlacementDeterminism: for a fixed seed the annealed strategy must
// produce the identical mapping and the identical Result on repeated
// runs (the make-placement CI smoke depends on this).
func TestPlacementDeterminism(t *testing.T) {
	cfg := topologyConfig(noc.TopoMesh)
	cfg.Placement = place.Annealed
	cfg.PlacementSeed = 11

	t1, _, _, err := PlacementPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, _, err := PlacementPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Equal(t2) {
		t.Fatalf("annealed mapping not deterministic:\n %v\n %v", t1.Perm(), t2.Perm())
	}
	if r1, r2 := mustRun(t, cfg), mustRun(t, cfg); !reflect.DeepEqual(r1, r2) {
		t.Fatal("annealed runs differ for fixed seed")
	}
}

// TestPlacementPlanShapesAndIdentity: the plan reports the table the
// engines simulate with, row-major is the identity, and the optimizing
// tables are valid permutations.
func TestPlacementPlan(t *testing.T) {
	cfg := topologyConfig(noc.TopoMesh)
	tab, tr, topo, err := PlacementPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.IsIdentity() {
		t.Fatal("row-major plan not the identity")
	}
	if tr == nil || tr.Total() == 0 {
		t.Fatal("plan sampled no traffic for a generative workload")
	}
	if topo.Kind() != noc.TopoMesh {
		t.Fatalf("plan topology %v", topo.Kind())
	}

	cfg.Placement = place.Annealed
	ann, annTr, _, err := PlacementPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ann.IsIdentity() {
		t.Fatal("annealed plan degenerated to identity despite sampled traffic")
	}
	if c1, c0 := place.Cost(ann, topo, annTr), place.Cost(tab, topo, annTr); c1 > c0 {
		t.Fatalf("annealed plan costs more than row-major: %v > %v", c1, c0)
	}
	// The engine must adopt exactly this table.
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(norm)
	if err != nil {
		t.Fatal(err)
	}
	if !s.pl.Equal(ann) {
		t.Fatal("engine placement table differs from PlacementPlan")
	}
}

// TestPlacementSamplerIndependence: enabling an optimized placement must
// not perturb the simulated address streams — the run's instruction and
// access totals match the row-major run (only latencies may move).
func TestPlacementSamplerIndependence(t *testing.T) {
	base := mustRun(t, topologyConfig(noc.TopoMesh))
	cfg := topologyConfig(noc.TopoMesh)
	cfg.Placement = place.Annealed
	opt := mustRun(t, cfg)
	if base.Instructions != opt.Instructions || base.L2Accesses != opt.L2Accesses {
		t.Fatalf("placement changed the simulated workload: instr %d vs %d, accesses %d vs %d",
			base.Instructions, opt.Instructions, base.L2Accesses, opt.L2Accesses)
	}
}

// TestPlacementKeyDistinctness (satellite of the cache-key plumbing):
// configs that differ only in the placement knobs must never share a
// canonical key — and the deterministic strategies must collapse the
// redundant seed axis to a single key.
func TestPlacementKeyDistinctness(t *testing.T) {
	hash := func(cfg Config) string {
		t.Helper()
		h, err := cfg.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	base := topologyConfig(noc.TopoMesh)
	keys := map[string]string{}
	for _, kind := range noc.TopologyKinds() {
		cfg := base
		cfg.Topology = kind
		if prev, dup := keys[hash(cfg)]; dup {
			t.Fatalf("topology %v collides with %s", kind, prev)
		}
		keys[hash(cfg)] = kind.String()
	}
	for _, strat := range []place.Strategy{place.Random, place.LocalityAware, place.Annealed} {
		cfg := base
		cfg.Placement = strat
		if prev, dup := keys[hash(cfg)]; dup {
			t.Fatalf("placement %v collides with %s", strat, prev)
		}
		keys[hash(cfg)] = strat.String()
	}

	// Seeded strategies: distinct seeds are distinct keys.
	a, b := base, base
	a.Placement, b.Placement = place.Annealed, place.Annealed
	a.PlacementSeed, b.PlacementSeed = 1, 2
	if hash(a) == hash(b) {
		t.Fatal("annealed configs differing only in PlacementSeed share a key")
	}
	// A zero seed adopts Seed, so it keys like an explicit Seed-valued one.
	c := base
	c.Placement = place.Annealed
	c.PlacementSeed = 0
	d := c
	d.PlacementSeed = base.Seed
	if hash(c) != hash(d) {
		t.Fatal("defaulted PlacementSeed does not normalize to Seed")
	}
	// Deterministic strategies pin the seed: one behavior, one key.
	e, f := base, base
	e.Placement, f.Placement = place.LocalityAware, place.LocalityAware
	e.PlacementSeed, f.PlacementSeed = 5, 9
	if hash(e) != hash(f) {
		t.Fatal("locality placement splits one behavior across seed-keyed entries")
	}

	// The warm-state key must separate placements too.
	wa, okA := WarmupKey(withWarmup(a))
	wb, okB := WarmupKey(withWarmup(b))
	if !okA || !okB {
		t.Fatal("warmup key unavailable for placement configs")
	}
	if wa == wb {
		t.Fatal("warmup key ignores PlacementSeed")
	}
}

func withWarmup(cfg Config) Config {
	cfg.WarmupInstr = 2_000
	return cfg
}
