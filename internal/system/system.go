package system

import (
	"context"
	"fmt"

	"nocstar/internal/cache"
	"nocstar/internal/check"
	"nocstar/internal/energy"
	"nocstar/internal/engine"
	"nocstar/internal/metrics"
	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/ptw"
	"nocstar/internal/sram"
	"nocstar/internal/stats"
	"nocstar/internal/tlb"
	"nocstar/internal/vm"
	"nocstar/internal/workload"
)

// core is one tile: a core with its L1 TLBs, page-table walker, and cache
// hierarchy, co-located with a shared-TLB slice in distributed designs.
type core struct {
	id     int
	node   noc.NodeID
	l1     *tlb.L1Group
	walker *ptw.Walker
	hier   *cache.Hierarchy
	// privL2 is the per-core private L2 TLB (Private organization only).
	privL2       *tlb.TLB
	privPortFree engine.Cycle
}

// app is one running application.
type app struct {
	cfg     App
	idx     int
	as      *vm.AddressSpace
	regions []workload.Region
	// superLimit[i] is the page index within regions[i] below which the
	// OS backs the range with transparent 2 MB pages.
	superLimit []uint64

	threadsLeft int
	instrDone   uint64
	finish      engine.Cycle
}

// thread is one (hyper)thread's execution state.
type thread struct {
	app  *app
	core *core
	gen  workload.Stream

	// Batched reference generation: when gen supports NextBatch, buf is
	// refilled a slice at a time and the hot loop consumes it by index
	// bump; bufPos..bufLen is the unconsumed window. batch is nil for
	// plain Streams (trace replayers, test stubs), which fall back to
	// per-reference Next.
	batch  workload.BatchStream
	buf    []vm.VirtAddr
	bufPos int
	bufLen int

	refsTotal    uint64 // workload length, for end-of-run reconciliation
	refsLeft     uint64
	cyclesPerRef float64
	carry        float64
	stall        uint64
	finished     bool
}

// threadBatchSize is how many references one refill pregenerates.
// Refills are clamped to refsLeft so the generator never draws past the
// configured workload length — its RNG state at any phase boundary is
// exactly what the scalar path would have left, which warm-state
// checkpointing depends on.
const threadBatchSize = 1024

// System is one configured machine mid-run.
type System struct {
	cfg  Config
	eng  *engine.Engine
	geo  noc.Geometry
	topo noc.Topology
	pl   *place.Table
	rng  *engine.Rand

	cores   []*core
	apps    []*app
	threads []*thread

	// Shared last-level TLB state.
	slices        []*tlb.TLB // distributed orgs: one per node
	slicePortFree []engine.Cycle
	mono          *tlb.TLB // monolithic orgs
	bankPortFree  []engine.Cycle
	bankNodes     []noc.NodeID
	sliceLat      int // SRAM cycles of a slice / private L2
	monoLat       int // SRAM cycles of a monolithic bank

	fabric *noc.Nocstar
	mesh   *noc.Mesh
	smart  *noc.SMART

	// Shootdown plumbing.
	leaderOf   []int // core -> leader core
	leaderFree []engine.Cycle

	// Live accounting. The named counters and latency histograms that
	// used to be loose uint64 fields live in the metrics registry; m
	// holds their typed handles for direct hot-path increments.
	outstanding int
	sliceOut    []int
	conc        stats.ConcurrencyHist
	sliceConc   stats.ConcurrencyHist
	reg         *metrics.Registry
	m           sysMetrics
	tracer      *metrics.Tracer
	meter       energy.Meter

	threadsLive int

	// measureStart is the engine cycle at which the measurement phase
	// began: 0 in cold runs, the warmup-drain cycle in warmed runs. All
	// cycle-denominated Result fields are reported relative to it.
	measureStart engine.Cycle

	// check is the optional invariant checker (Config.Check). Nil in
	// normal runs: every hot-path hook guards with one nil test.
	check *check.Checker

	// xfree is the free list of recycled translation transactions.
	xfree *xact
}

// maxCycles bounds a run as a safety net against model bugs.
const maxCycles = engine.Cycle(2_000_000_000)

// New builds a system from the configuration.
func New(cfg Config) (*System, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg: cfg,
		eng: engine.New(),
		geo: noc.GridFor(cfg.Cores),
		rng: engine.NewRand(cfg.Seed),
	}
	s.topo = noc.NewTopology(cfg.Topology, s.geo)
	s.pl = buildPlacement(cfg, s.topo)
	s.initMetrics()

	sizing := tlb.DefaultL1Sizing().Scale(cfg.L1Scale)
	s.sliceLat = sram.AccessCycles(cfg.L2EntriesPerCore)

	llc := cache.New(cache.LLCConfig()) // one physical LLC shared chip-wide
	for i := 0; i < cfg.Cores; i++ {
		hier := cache.WalkerHierarchyWithLLC(llc)
		s.cores = append(s.cores, &core{
			id:     i,
			node:   noc.NodeID(i),
			l1:     tlb.NewL1Group(sizing),
			walker: ptw.New(cfg.PTW, hier),
			hier:   hier,
		})
	}

	switch cfg.Org {
	case Private:
		for _, c := range s.cores {
			c.privL2 = tlb.New(tlb.Config{
				Name:    fmt.Sprintf("privL2-%d", c.id),
				Entries: cfg.L2EntriesPerCore,
				Ways:    8,
				Sizes:   []vm.PageSize{vm.Page4K, vm.Page2M},
			})
		}
	case MonolithicMesh, MonolithicSMART, MonolithicFixed:
		total := cfg.L2EntriesPerCore * cfg.Cores
		s.mono = tlb.New(tlb.Config{
			Name:       "monolithic",
			Entries:    total,
			Ways:       8,
			Sizes:      []vm.PageSize{vm.Page4K, vm.Page2M},
			MaxCtxWays: cfg.QoSMaxCtxWays,
		})
		// Banking multiplies ports but the monolithic structure is still
		// one physical array: its lookup latency is the full-capacity
		// latency (Fig. 4's 16-cycle SRAM for the 32x structure).
		s.monoLat = sram.AccessCycles(total)
		s.bankPortFree = make([]engine.Cycle, cfg.Banks)
		// The monolithic structure sits at one end of the chip: banks
		// spread along the bottom row (Section II-C2). GridFor pads
		// non-rectangular core counts, so a bottom-row tile may hold no
		// core; clamp each bank to the last real tile — under the
		// remote-walk policy the bank's node indexes s.cores directly,
		// and an unclamped padded node is out of range.
		for b := 0; b < cfg.Banks; b++ {
			col := (2*b + 1) * s.geo.Cols / (2 * cfg.Banks)
			nd := s.geo.Node(s.geo.Rows-1, col)
			if int(nd) >= cfg.Cores {
				nd = noc.NodeID(cfg.Cores - 1)
			}
			s.bankNodes = append(s.bankNodes, nd)
		}
		mc := noc.DefaultMeshConfig(s.geo)
		mc.Topology = s.topo
		s.mesh = noc.NewMesh(mc)
		s.smart = noc.NewSMART(noc.DefaultSMARTConfig(s.geo))
	case DistributedMesh, Nocstar, NocstarIdeal, IdealShared:
		for i := 0; i < cfg.Cores; i++ {
			s.slices = append(s.slices, tlb.New(tlb.Config{
				Name:       fmt.Sprintf("slice-%d", i),
				Entries:    cfg.L2EntriesPerCore,
				Ways:       8,
				Sizes:      []vm.PageSize{vm.Page4K, vm.Page2M},
				IndexHash:  true,
				MaxCtxWays: cfg.QoSMaxCtxWays,
			}))
		}
		s.slicePortFree = make([]engine.Cycle, cfg.Cores)
		s.sliceOut = make([]int, cfg.Cores)
		mc := noc.DefaultMeshConfig(s.geo)
		mc.Topology = s.topo
		s.mesh = noc.NewMesh(mc)
		if cfg.Org == Nocstar || cfg.Org == NocstarIdeal {
			s.fabric = noc.NewNocstar(s.eng, noc.NocstarConfig{
				Geometry: s.geo,
				HPCmax:   cfg.HPCmax,
				Ideal:    cfg.Org == NocstarIdeal,
			})
		}
	default:
		return nil, fmt.Errorf("system: unknown organization %v", cfg.Org)
	}
	if s.fabric != nil {
		s.fabric.AttachMetrics(s.reg)
	}

	// Shootdown invalidation leaders (Section III-G): core i reports to
	// leader (i / groupSize) * groupSize.
	s.leaderOf = make([]int, cfg.Cores)
	s.leaderFree = make([]engine.Cycle, cfg.Cores)
	group := cfg.Cores
	if cfg.InvLeaders > 0 && cfg.InvLeaders < cfg.Cores {
		group = (cfg.Cores + cfg.InvLeaders - 1) / cfg.InvLeaders
	} else if cfg.InvLeaders == 0 {
		group = 1 // every core is its own leader (direct sends)
	}
	for i := range s.leaderOf {
		s.leaderOf[i] = (i / group) * group
	}

	// Applications, address spaces, threads.
	nextCore := 0
	for ai := range cfg.Apps {
		acfg := cfg.Apps[ai]
		a := &app{
			cfg: acfg,
			idx: ai,
			as:  vm.NewAddressSpace(vm.ContextID(ai + 1)),
		}
		a.regions = acfg.Spec.Regions(acfg.Threads)
		for _, r := range a.regions {
			limit := uint64(0)
			if cfg.THP {
				// Align the THP boundary to whole 2 MB extents so no
				// region mixes superpage and base-page backing within
				// one page-table subtree.
				limit = uint64(float64(r.Span)*acfg.Spec.SuperpageFrac) / 512 * 512
			}
			a.superLimit = append(a.superLimit, limit)
		}
		a.threadsLeft = acfg.Threads
		s.apps = append(s.apps, a)

		for t := 0; t < acfg.Threads; t++ {
			c := s.cores[nextCore%cfg.Cores]
			nextCore++
			refs := uint64(float64(cfg.InstrPerThread) * acfg.Spec.MemRefPerInstr)
			if refs == 0 {
				refs = 1
			}
			var stream workload.Stream
			if acfg.Streams != nil {
				stream = acfg.Streams[t]
			} else {
				stream = workload.NewGenerator(acfg.Spec, acfg.Threads, t, s.rng.Split())
			}
			th := &thread{
				app:          a,
				core:         c,
				gen:          stream,
				refsTotal:    refs,
				refsLeft:     refs,
				cyclesPerRef: acfg.Spec.BaseCPI / acfg.Spec.MemRefPerInstr,
			}
			if bs, ok := stream.(workload.BatchStream); ok {
				th.batch = bs
				th.buf = make([]vm.VirtAddr, threadBatchSize)
			}
			s.threads = append(s.threads, th)
		}
	}
	s.threadsLive = len(s.threads)

	// Bind the optional invariant checker to this run's engine, port
	// arrays, and fabric (internal/check; one Checker per run).
	if cfg.Check != nil {
		s.check = cfg.Check
		s.check.AttachEngine(s.eng)
		s.check.BindPorts(len(s.slicePortFree), len(s.bankPortFree), cfg.Cores)
		if s.fabric != nil {
			s.check.AttachFabric(s.fabric)
		}
	}
	return s, nil
}

// Run executes the configured simulation to completion. It is
// RunContext with a background context: uncancellable, no deadline.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunTraced is Run with an event-order observer: observe is invoked for
// every engine event the run executes, in execution order, with the
// event's (cycle, seq). The stream is a fingerprint of the engine's total
// event order, which the golden-order regression tests pin across
// refactors of the scheduling machinery.
func RunTraced(cfg Config, observe func(cycle, seq uint64)) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	s.eng.SetObserver(func(when engine.Cycle, seq uint64) { observe(uint64(when), seq) })
	return s.run()
}

func (s *System) run() (Result, error) {
	return s.runCtx(context.Background())
}

func (s *System) runCtx(ctx context.Context) (Result, error) {
	if s.cfg.WarmupInstr > 0 {
		if err := s.warmup(ctx); err != nil {
			return Result{}, err
		}
	}
	return s.measured(ctx)
}

// warmup executes Config.WarmupInstr instructions per thread through the
// normal execution path — filling TLBs, page tables, PTE caches, and NoC
// reservation state — then resets every statistic at the boundary so the
// measurement phase reports only its own events. Disturbances
// (shootdowns, storms) do not run during warmup; they belong to the
// measured phase. The post-warmup state is exactly what Checkpoint
// captures, so a run restored from a checkpoint of an identically
// configured warmup is indistinguishable from this inline path.
func (s *System) warmup(ctx context.Context) error {
	for _, th := range s.threads {
		refs := uint64(float64(s.cfg.WarmupInstr) * th.app.cfg.Spec.MemRefPerInstr)
		if refs == 0 {
			refs = 1
		}
		th.refsTotal = refs
		th.refsLeft = refs
		s.eng.ScheduleAct(0, s, opThreadLoop, th)
	}
	if err := s.advanceCtx(ctx, maxCycles); err != nil {
		return err
	}
	if s.threadsLive > 0 {
		return fmt.Errorf("system: warmup exceeded %d cycles with %d threads live",
			maxCycles, s.threadsLive)
	}
	s.boundaryReset()
	return nil
}

// boundaryReset zeroes every statistic and rearms the threads with their
// measured workload length, leaving all warm microarchitectural state
// (TLB contents, page tables, caches, link reservations, RNG positions)
// intact. The engine clock keeps running monotonically across the
// boundary; measureStart records where measurement began.
func (s *System) boundaryReset() {
	s.eng.ResetProcessed()
	s.reg.Reset()
	s.conc = stats.ConcurrencyHist{}
	s.sliceConc = stats.ConcurrencyHist{}
	s.meter = energy.Meter{}
	for _, c := range s.cores {
		c.l1.ResetStats()
		c.walker.ResetStats()
		c.hier.ResetStats()
		if c.privL2 != nil {
			c.privL2.ResetStats()
		}
	}
	for _, sl := range s.slices {
		sl.ResetStats()
	}
	if s.mono != nil {
		s.mono.ResetStats()
	}
	if s.fabric != nil {
		s.fabric.ResetStats()
	}
	if s.mesh != nil {
		s.mesh.ResetStats()
	}
	for _, a := range s.apps {
		a.threadsLeft = a.cfg.Threads
		a.instrDone = 0
		a.finish = 0
	}
	for _, th := range s.threads {
		refs := uint64(float64(s.cfg.InstrPerThread) * th.app.cfg.Spec.MemRefPerInstr)
		if refs == 0 {
			refs = 1
		}
		th.refsTotal = refs
		th.refsLeft = refs
		th.carry = 0
		th.stall = 0
		th.finished = false
		th.bufPos, th.bufLen = 0, 0
	}
	s.threadsLive = len(s.threads)
	s.measureStart = s.eng.Now()
}

// measured runs the measurement phase: the full configured workload plus
// any disturbances, from the current (cold or warmed) state.
func (s *System) measured(ctx context.Context) (Result, error) {
	for _, th := range s.threads {
		s.eng.ScheduleAct(0, s, opThreadLoop, th)
	}
	s.startDisturbances()
	if err := s.advanceCtx(ctx, maxCycles); err != nil {
		return Result{}, err
	}
	if s.threadsLive > 0 {
		return Result{}, fmt.Errorf("system: run exceeded %d cycles with %d threads live",
			maxCycles, s.threadsLive)
	}
	if s.check != nil {
		// Commit reconciliation: every thread must have consumed exactly
		// its configured workload length, and the memory-reference
		// counter must agree with the sum.
		var total uint64
		for _, th := range s.threads {
			s.check.Committed(th.core.id, th.refsTotal-th.refsLeft, th.refsTotal)
			total += th.refsTotal
		}
		if got := s.m.memRefs.Value(); got != total {
			s.check.Violatef("commit: %d memory references counted, workloads total %d", got, total)
		}
		if err := s.check.Err(); err != nil {
			return Result{}, err
		}
	}
	return s.collect(), nil
}

// maxRefsPerSlice bounds how many references one threadLoop invocation
// may retire without yielding to the engine. Between L1 misses the loop
// runs as plain Go code with the simulated clock frozen; a working set
// that fits entirely in the L1 TLBs would otherwise retire its whole
// instruction budget inside a single event — starving every other actor
// of the cycles those references logically span, and starving
// RunContext's stride-based cancellation poll, which only runs between
// engine events. Realistic configs miss every few dozen references and
// never reach the bound, so their event streams are unchanged.
const maxRefsPerSlice = 1 << 16

// threadLoop advances a thread through memory references until the next
// L1 TLB miss, then hands off to the L2 access path.
func (s *System) threadLoop(th *thread) {
	if th.finished {
		return
	}
	ctx := th.app.as.Ctx
	carry := th.carry
	budget := maxRefsPerSlice
	for th.refsLeft > 0 {
		if budget <= 0 {
			if whole := engine.Cycle(carry); whole > 0 {
				th.carry = carry - float64(whole)
				s.eng.ScheduleAct(whole, s, opThreadLoop, th)
				return
			}
			// Degenerate sub-cycle slice (cyclesPerRef pathologically
			// small): yielding at delay 0 would respin the same engine
			// cycle, so keep running instead.
			budget = maxRefsPerSlice
		}
		budget--
		carry += th.cyclesPerRef
		var va vm.VirtAddr
		if th.batch != nil {
			if th.bufPos == th.bufLen {
				n := len(th.buf)
				if th.refsLeft < uint64(n) {
					n = int(th.refsLeft)
				}
				th.batch.NextBatch(th.buf[:n])
				th.bufPos, th.bufLen = 0, n
			}
			va = th.buf[th.bufPos]
			th.bufPos++
		} else {
			va = th.gen.Next()
		}
		th.refsLeft--
		s.m.memRefs.Inc()
		if e, ok := th.core.l1.Lookup(ctx, va); ok {
			if s.check != nil {
				s.check.Served(th.app.as, e.VPN, e.Size, e.PFN)
			}
			continue
		}
		s.m.l1Misses.Inc()
		whole := engine.Cycle(carry)
		th.carry = carry - float64(whole)
		x := s.getXact()
		x.th = th
		x.va = va
		s.eng.ScheduleAct(whole, s, opAccessL2, x)
		return
	}
	th.carry = carry
	s.finishThread(th, s.eng.Now()+engine.Cycle(carry))
}

// finishThread retires a thread and updates app accounting.
func (s *System) finishThread(th *thread, at engine.Cycle) {
	th.finished = true
	s.threadsLive--
	a := th.app
	a.threadsLeft--
	a.instrDone += s.cfg.InstrPerThread
	if at > a.finish {
		a.finish = at
	}
}

// collect assembles the Result after the run drains.
func (s *System) collect() Result {
	r := Result{Org: s.cfg.Org}
	for _, a := range s.apps {
		finish := engine.Cycle(0)
		if a.finish > s.measureStart {
			finish = a.finish - s.measureStart
		}
		ar := AppResult{
			Name:         a.cfg.Spec.Name,
			Instructions: a.instrDone,
			FinishCycle:  uint64(finish),
		}
		if finish > 0 {
			ar.IPC = float64(a.instrDone) / float64(finish)
		}
		r.Apps = append(r.Apps, ar)
		r.Instructions += a.instrDone
		if ar.FinishCycle > r.Cycles {
			r.Cycles = ar.FinishCycle
		}
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	r.MemRefs = s.m.memRefs.Value()
	r.L1Misses = s.m.l1Misses.Value()
	r.L2Accesses = s.m.l2Accesses.Value()
	r.L2Hits = s.m.l2Hits.Value()
	r.L2Misses = s.m.l2Misses.Value()
	r.Walks = s.m.walks.Value()
	r.LocalSlice = s.m.localSlice.Value()
	r.Prefetches = s.m.prefetches.Value()
	r.Shootdowns = s.m.shootdowns.Value()
	for _, th := range s.threads {
		r.StallCycles += th.stall
	}
	if s.m.hitLat.Count() > 0 {
		r.AvgL2AccessCycles = float64(s.m.hitLat.Sum()) / float64(s.m.hitLat.Count())
	}
	// The round-trip histogram only observes mesh/SMART traversals (the
	// NOCSTAR fabric accounts its own network time in Noc), so the
	// divisor is the remote-access counter, preserving the legacy
	// AvgNetCycles semantics exactly.
	if remote := s.m.remote.Value(); remote > 0 {
		r.AvgNetCycles = float64(s.m.netLat.Sum()) / float64(remote)
	}
	r.Conc = s.conc
	r.SliceConc = s.sliceConc
	if s.fabric != nil {
		r.Noc = s.fabric.Stats()
	}
	for _, c := range s.cores {
		w := c.walker.Stats()
		r.PTW.Walks += w.Walks
		r.PTW.TotalCycles += w.TotalCycles
		r.PTW.QueueCycles += w.QueueCycles
		r.PTW.PWCHits += w.PWCHits
		r.PTW.LeafFromLLCOrMem += w.LeafFromLLCOrMem
		for i := range w.MemRefsByLevel {
			r.PTW.MemRefsByLevel[i] += w.MemRefsByLevel[i]
		}
	}
	s.chargeEnergy(&r)
	r.Energy = s.meter
	s.collectLayerMetrics()
	r.Metrics = s.reg.Snapshot()
	return r
}

// chargeEnergy finalizes the run's energy meter.
func (s *System) chargeEnergy(r *Result) {
	s.meter.AddL1Lookups(r.MemRefs)
	entries := s.cfg.L2EntriesPerCore
	if s.mono != nil {
		entries = s.mono.Config().Entries / s.cfg.Banks
	}
	s.meter.AddL2Lookups(r.L2Accesses, entries)
	s.meter.AddWalkRefs(r.PTW.MemRefsByLevel)
	totalEntries := s.cfg.Cores * (s.cfg.L2EntriesPerCore + 100) // + L1 arrays
	s.meter.AddStatic(r.Cycles, totalEntries)
}

// mapSize returns the page size the OS backs va with for this app.
func (a *app) mapSize(va vm.VirtAddr, thp bool) vm.PageSize {
	if !thp {
		return vm.Page4K
	}
	for i, reg := range a.regions {
		if va >= reg.Base && va < reg.End() {
			idx := uint64(va-reg.Base) / vm.Page4K.Bytes()
			if idx < a.superLimit[i] {
				return vm.Page2M
			}
			return vm.Page4K
		}
	}
	return vm.Page4K
}

// ensureMapped demand-maps va at the OS-chosen size, falling back to a
// base page if a superpage cannot be installed (a conflicting 4 KB
// mapping already exists in the extent).
func (s *System) ensureMapped(a *app, va vm.VirtAddr) {
	a.as.EnsureMapped(va, a.mapSize(va, s.cfg.THP))
	if _, _, ok := a.as.Translate(va); !ok {
		a.as.EnsureMapped(va, vm.Page4K)
	}
}

// mix is a 64-bit finalizer used for slice/bank selection so that
// 2 MB-granular regions spread evenly (Section III-A "simple indexing
// mechanism using bits from virtual address", hashed to avoid striding
// artifacts of the synthetic layouts).
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sliceFor returns the home slice of va. Selection uses 2 MB-granular
// address bits so 4 KB and 2 MB translations of the same region share a
// home and the requester needs no size information.
func (s *System) sliceFor(th *thread, va vm.VirtAddr) int {
	if th != nil && th.app.cfg.HammerSlice >= 0 {
		return th.app.cfg.HammerSlice % s.cfg.Cores
	}
	return s.homeSlice(va)
}

// homeSlice is sliceFor without per-app redirection: the address hash
// picks a logical slice and the placement table maps it onto a physical
// tile (the identity under the default row-major placement).
func (s *System) homeSlice(va vm.VirtAddr) int {
	return s.pl.Slice(int(mix(uint64(va)>>21) % uint64(s.cfg.Cores)))
}

// bankFor returns the monolithic bank of va.
func (s *System) bankFor(va vm.VirtAddr) int {
	return int(mix(uint64(va)>>21) % uint64(s.cfg.Banks))
}
