package system

import (
	"nocstar/internal/check"
	"nocstar/internal/engine"
	"nocstar/internal/noc"
	"nocstar/internal/tlb"
	"nocstar/internal/vm"
)

// xact is one in-flight L2 TLB translation: the state a closure chain used
// to capture, flattened into a typed object recycled through the System's
// free list. A thread has at most one outstanding translation, so one xact
// carries the whole thread-issue → L2/NoC → walk → resume sequence; the
// continuation to run next is selected by the op code of the event (or
// grant) that delivers it, not by which closure was captured.
type xact struct {
	th    *thread
	va    vm.VirtAddr
	start engine.Cycle
	slice int // home slice, or -1 for organizations without slice tracking

	src, dst noc.NodeID
	oneWay   int // mesh/SMART one-way latency (monolithic and distributed)
	hops     int
	wcore    *core // remote walking core (WalkAtRemote)

	entry   tlb.Entry     // hit payload
	res     vm.WalkResult // walk payload
	readyAt engine.Cycle  // NOCSTAR response payload-ready cycle
	arrived uint8         // arr* selector: what to do when the response lands

	// Round-trip path bookkeeping: the requested hold, and the grant's
	// reservation window (reservedUntil value) so the early release frees
	// only this grant's links.
	hold     engine.Cycle
	relUntil engine.Cycle

	next *xact
}

// System operation codes (engine.Actor). Each op is the body of what was a
// scheduled closure; comments give the continuation it replaces.
const (
	opThreadLoop      uint8 = iota // run threadLoop(arg.(*thread))
	opAccessL2                     // start the L2 access path for an xact
	opHitDone                      // end the access window, resume with x.entry
	opLocalMiss                    // end the access window, walk at the requester
	opLocalWalked                  // requester walk done: insert + resume
	opRemoteWalkStart              // pollute the remote core, start its walk
	opRemoteWalked                 // remote walk done: insert + return result
	opEndResumeWalk                // end the access window, resume with x.res
	opNocRespIssue                 // arbitrate the speculative NOCSTAR response
	opNocRelease                   // release a round-trip-held NOCSTAR path
	opShootdownTick                // disturbance re-arm: shootdown generator
	opStormPromote                 // disturbance re-arm: storm promote/demote
	opStormCtxSwitch               // disturbance re-arm: storm context switch
)

// Grant operation codes (noc.GrantHandler).
const (
	grantRequest  uint8 = iota // request path granted: lookup at the slice
	grantResponse              // response path granted: deliver to requester
	grantInsert                // insert message arrived: charge the slice port
)

// arrived selectors: the continuation scheduled when a NOCSTAR response
// lands back at the requester.
const (
	arrHit        uint8 = iota // schedule opHitDone
	arrMiss                    // schedule opLocalMiss (walk at requester)
	arrWalkRemote              // schedule opEndResumeWalk (walk already done)
)

// getXact pops a zeroed transaction from the free list.
func (s *System) getXact() *xact {
	x := s.xfree
	if x == nil {
		return &xact{}
	}
	s.xfree = x.next
	*x = xact{}
	return x
}

// putXact recycles a finished transaction.
func (s *System) putXact(x *xact) {
	*x = xact{next: s.xfree}
	s.xfree = x
}

// Act dispatches the system's typed events (engine.Actor).
func (s *System) Act(op uint8, arg any) {
	switch op {
	case opThreadLoop:
		s.threadLoop(arg.(*thread))
		return
	case opShootdownTick:
		s.shootdownTick()
		return
	case opStormPromote:
		s.stormPromoteDemote(arg.(*storm))
		return
	case opStormCtxSwitch:
		s.stormContextSwitch()
		return
	}
	x := arg.(*xact)
	switch op {
	case opAccessL2:
		s.accessL2(x)
	case opHitDone:
		s.endAccess(x.slice)
		s.resumeWithEntry(x)
	case opLocalMiss:
		s.endAccess(x.slice)
		s.scheduleWalk(x.th.core, x, opLocalWalked)
	case opLocalWalked:
		s.localWalked(x)
	case opRemoteWalkStart:
		x.wcore.hier.Pollute(pollutionLines)
		s.scheduleWalk(x.wcore, x, opRemoteWalked)
	case opRemoteWalked:
		s.remoteWalked(x)
	case opEndResumeWalk:
		s.endAccess(x.slice)
		s.resumeWithWalk(x)
	case opNocRespIssue:
		s.fabric.RequestPathTo(x.dst, x.src,
			s.fabric.HoldCyclesOneWay(x.dst, x.src), s, grantResponse, x)
	case opNocRelease:
		s.fabric.Release(x.src, x.dst, x.relUntil)
	default:
		panic("system: unknown op")
	}
}

// PathGranted dispatches NOCSTAR fabric grants (noc.GrantHandler).
func (s *System) PathGranted(op uint8, arg any, traversal int) {
	switch op {
	case grantRequest:
		s.nocstarGranted(arg.(*xact), traversal)
	case grantResponse:
		// Now() is the first traversal cycle; the payload may lag the
		// speculatively acquired path.
		x := arg.(*xact)
		back := s.eng.Now() + engine.Cycle(traversal-1)
		if back < x.readyAt {
			back = x.readyAt
		}
		s.nocstarArrived(x, back)
	case grantInsert:
		// Insert message arrived: charge the home slice's write port. arg
		// points into slicePortFree, which is never reallocated after New.
		p := arg.(*engine.Cycle)
		if now := s.eng.Now(); *p < now {
			*p = now
		}
		*p++
		if s.check != nil {
			// Recover the slice index for the horizon check (the grant
			// payload is the port pointer; checker-on runs can afford the
			// scan).
			for i := range s.slicePortFree {
				if p == &s.slicePortFree[i] {
					s.check.Port(check.PortSlice, i, *p)
					break
				}
			}
		}
	default:
		panic("system: unknown grant op")
	}
}
