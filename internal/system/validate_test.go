package system

import (
	"errors"
	"strings"
	"testing"

	"nocstar/internal/ptw"
	"nocstar/internal/workload"
)

// validCfg is a minimal valid config relying on defaults everywhere
// defaults exist.
func validCfg() Config {
	return Config{
		Org:   Nocstar,
		Cores: 4,
		Apps: []App{{
			Spec: workload.Spec{
				Name:           "validate-test",
				FootprintPages: 256,
				MemRefPerInstr: 0.3,
				BaseCPI:        1.2,
			},
			Threads:     4,
			HammerSlice: HammerNone,
		}},
		InstrPerThread: 1000,
		Seed:           1,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Zero values that Normalized fills are valid, not errors.
	cfg := validCfg()
	cfg.SMT = 0
	cfg.L1Scale = 0
	cfg.L2EntriesPerCore = 0
	cfg.Banks = 0
	cfg.HPCmax = 0
	cfg.Seed = 0
	cfg.InstrPerThread = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("defaultable zeros rejected: %v", err)
	}
}

// TestValidateFields drives every rejection path and checks the typed
// field name each one reports.
func TestValidateFields(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"org out of range", func(c *Config) { c.Org = IdealShared + 1 }, "Org"},
		{"org negative", func(c *Config) { c.Org = -1 }, "Org"},
		{"no cores", func(c *Config) { c.Cores = 0 }, "Cores"},
		{"negative smt", func(c *Config) { c.SMT = -2 }, "SMT"},
		{"negative l1 scale", func(c *Config) { c.L1Scale = -0.5 }, "L1Scale"},
		{"negative l2 entries", func(c *Config) { c.L2EntriesPerCore = -1 }, "L2EntriesPerCore"},
		{"negative banks", func(c *Config) { c.Banks = -4 }, "Banks"},
		{"negative fixed latency", func(c *Config) { c.FixedAccessLatency = -1 }, "FixedAccessLatency"},
		{"mono-fixed without latency", func(c *Config) { c.Org = MonolithicFixed }, "FixedAccessLatency"},
		{"negative hpcmax", func(c *Config) { c.HPCmax = -1 }, "HPCmax"},
		{"bad acquire", func(c *Config) { c.Acquire = 99 }, "Acquire"},
		{"bad ptw mode", func(c *Config) { c.PTW.Mode = 99 }, "PTW.Mode"},
		{"fixed ptw without latency", func(c *Config) { c.PTW.Mode = ptw.Fixed }, "PTW.FixedLatency"},
		{"negative pwc", func(c *Config) { c.PTW.PWCEntries = -1 }, "PTW.PWCEntries"},
		{"negative overhead", func(c *Config) { c.PTW.Overhead = -1 }, "PTW.Overhead"},
		{"negative walkers", func(c *Config) { c.PTW.Walkers = -1 }, "PTW.Walkers"},
		{"bad policy", func(c *Config) { c.Policy = 99 }, "Policy"},
		{"negative prefetch", func(c *Config) { c.PrefetchDegree = -1 }, "PrefetchDegree"},
		{"negative leaders", func(c *Config) { c.InvLeaders = -1 }, "InvLeaders"},
		{"negative qos ways", func(c *Config) { c.QoSMaxCtxWays = -1 }, "QoSMaxCtxWays"},
		{"no apps", func(c *Config) { c.Apps = nil }, "Apps"},
		{"no threads", func(c *Config) { c.Apps[0].Threads = 0 }, "Apps[0].Threads"},
		{"stream count mismatch", func(c *Config) {
			c.Apps[0].Streams = make([]workload.Stream, 2)
		}, "Apps[0].Streams"},
		{"hammer below none", func(c *Config) { c.Apps[0].HammerSlice = -2 }, "Apps[0].HammerSlice"},
		{"too many threads", func(c *Config) { c.Apps[0].Threads = 5 }, "Apps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validCfg()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("want *ValidationError, got %T: %v", err, err)
			}
			for _, f := range ve.Fields {
				if f.Field == tc.field {
					return
				}
			}
			t.Fatalf("no FieldError for %q in %v", tc.field, ve.Fields)
		})
	}
}

// TestValidateGathersAll checks the error lists every problem, not just
// the first.
func TestValidateGathersAll(t *testing.T) {
	cfg := validCfg()
	cfg.Cores = 0
	cfg.PrefetchDegree = -1
	cfg.Apps[0].Threads = 0
	err := cfg.Validate()
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *ValidationError, got %v", err)
	}
	if len(ve.Fields) < 3 {
		t.Fatalf("want >= 3 field errors, got %d: %v", len(ve.Fields), ve.Fields)
	}
	if !strings.Contains(ve.Error(), "Cores") || !strings.Contains(ve.Error(), "PrefetchDegree") {
		t.Fatalf("Error() does not name the fields: %s", ve.Error())
	}
}

// TestRunRejectsInvalid checks the typed error surfaces through Run.
func TestRunRejectsInvalid(t *testing.T) {
	cfg := validCfg()
	cfg.Cores = -3
	_, err := Run(cfg)
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("Run of invalid config: want *ValidationError, got %v", err)
	}
}
