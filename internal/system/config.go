// Package system assembles the full simulated machine of the paper: tiled
// Haswell-class cores with per-page-size L1 TLBs, one of the last-level
// TLB organizations of Fig. 1 (private, monolithic banked, distributed,
// or NOCSTAR), the interconnect connecting them, per-core page-table
// walkers over a real cache hierarchy, transparent superpages, shootdown
// invalidation leaders, prefetching and SMT — and a cycle-level timing
// model of the address-translation path that produces the runtime,
// energy, and contention statistics every figure of the evaluation plots.
package system

import (
	"fmt"

	"nocstar/internal/check"
	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/ptw"
	"nocstar/internal/workload"
)

// Org selects the last-level TLB organization (Fig. 1 plus the idealized
// references used in Figs. 4, 12 and 15).
type Org int

const (
	// Private is the baseline: a per-core private L2 TLB (Fig. 1a).
	Private Org = iota
	// MonolithicMesh is the banked monolithic shared L2 TLB at one end of
	// the chip, reached over a multi-hop mesh (Fig. 1c).
	MonolithicMesh
	// MonolithicSMART is the monolithic organization over a SMART NoC.
	MonolithicSMART
	// MonolithicFixed is the Fig. 4 abstraction: a banked monolithic
	// shared TLB whose total access latency is forced to a constant.
	MonolithicFixed
	// DistributedMesh is per-core shared slices over a multi-hop mesh
	// (Fig. 1d with a conventional NoC).
	DistributedMesh
	// Nocstar is the paper's design: distributed slices over the
	// latchless circuit-switched single-cycle fabric.
	Nocstar
	// NocstarIdeal is NOCSTAR with a contention-free fabric (Fig. 15's
	// "NOCSTAR (ideal)").
	NocstarIdeal
	// IdealShared is the zero-interconnect-latency shared TLB reference:
	// only slice port contention and SRAM latency remain.
	IdealShared
)

// String implements fmt.Stringer.
func (o Org) String() string {
	switch o {
	case Private:
		return "private"
	case MonolithicMesh:
		return "monolithic(mesh)"
	case MonolithicSMART:
		return "monolithic(SMART)"
	case MonolithicFixed:
		return "monolithic(fixed)"
	case DistributedMesh:
		return "distributed"
	case Nocstar:
		return "nocstar"
	case NocstarIdeal:
		return "nocstar(ideal)"
	case IdealShared:
		return "ideal"
	}
	return fmt.Sprintf("Org(%d)", int(o))
}

// IsShared reports whether the organization shares L2 TLB capacity
// between cores.
func (o Org) IsShared() bool { return o != Private }

// WalkPolicy selects where a page walk triggered by a shared-slice miss
// executes (Section III-F, Fig. 17).
type WalkPolicy int

const (
	// WalkAtRequester sends a miss message back to the requesting core,
	// which walks and then sends an insert message to the remote slice.
	WalkAtRequester WalkPolicy = iota
	// WalkAtRemote walks at the core owning the slice, polluting its
	// caches but saving the miss message.
	WalkAtRemote
)

// String implements fmt.Stringer.
func (p WalkPolicy) String() string {
	if p == WalkAtRemote {
		return "remote"
	}
	return "request"
}

// HammerNone disables App.HammerSlice redirection: the app's L2
// accesses spread across slices by address as usual. It replaces the
// bare -1 sentinel the call sites used to spell out.
const HammerNone = -1

// App is one application in the (possibly multiprogrammed) workload mix.
type App struct {
	Spec    workload.Spec
	Threads int
	// HammerSlice, when >= 0, redirects every L2 access of this app to
	// that slice — the Section V "TLB slice microbenchmark". HammerNone
	// (the usual setting) disables the redirection.
	HammerSlice int
	// Streams, when non-nil, supplies each thread's address stream
	// (e.g. a trace replayer) instead of the live synthetic generator.
	// Its length must equal Threads.
	Streams []workload.Stream
}

// StormConfig enables the Section V TLB-storm microbenchmark co-run: a
// process that context-switches rapidly (full shared-TLB flushes on x86)
// and continuously promotes 4 KB pages to 2 MB superpages and breaks them
// apart again (512-entry invalidation bursts).
type StormConfig struct {
	// ContextSwitchInterval is the cycles between context switches. The
	// paper studies an unrealistically aggressive 0.5 ms (1M cycles at
	// 2 GHz), scaled to the simulated window.
	ContextSwitchInterval uint64
	// PromoteDemoteInterval is the cycles between superpage promote or
	// demote operations, each generating a shootdown burst.
	PromoteDemoteInterval uint64
	// Pages is the storm process's own footprint in 4 KB pages.
	Pages uint64
}

// Config describes one simulated machine and run.
type Config struct {
	Org   Org
	Cores int
	// SMT is hyperthreads per core (Table III; default 1).
	SMT int
	// L1Scale scales the per-core L1 TLB sizes (Fig. 6's 0.5x and 1.5x).
	L1Scale float64
	// L2EntriesPerCore sizes the private L2 TLBs / monolithic share /
	// distributed slices (default 1024). NOCSTAR organizations default to
	// 920 for the paper's area normalization (Table II).
	L2EntriesPerCore int
	// Banks is the monolithic bank count (default: 4 up to 32 cores,
	// 8 at 64+, the paper's best-performing settings).
	Banks int
	// FixedAccessLatency forces the MonolithicFixed total access latency.
	FixedAccessLatency int
	// HPCmax bounds hops per cycle on the NOCSTAR fabric (default 16).
	HPCmax int
	// Acquire selects one-way vs round-trip link reservation.
	Acquire noc.AcquireMode
	// Topology selects the fabric topology routing the packet-switched
	// organizations (mesh, torus, xbar, hybrid; see noc.TopologyKind).
	// The default mesh is valid everywhere; the alternatives are valid
	// only for the MonolithicMesh and DistributedMesh organizations —
	// NOCSTAR, SMART and the fixed/ideal references model their fabric
	// structurally and always route the mesh grid.
	Topology noc.TopologyKind
	// Placement selects the address→slice placement strategy for the
	// sliced organizations (row-major, random, locality, annealed; see
	// place.Strategy). Non-row-major placements are valid only for orgs
	// with per-tile slices (DistributedMesh, Nocstar, NocstarIdeal,
	// IdealShared). App.HammerSlice bypasses placement: it names a
	// physical slice.
	Placement place.Strategy
	// PlacementSeed seeds the randomized placement strategies and the
	// traffic sampler. 0 adopts Seed; it is forced to 0 for the
	// deterministic strategies (row-major, locality) so configs that
	// differ only in an inert seed share one cache key.
	PlacementSeed int64
	// PTW configures the page-table walkers.
	PTW ptw.Config
	// Policy selects where shared-slice-miss walks run.
	Policy WalkPolicy
	// PrefetchDegree inserts translations for vpn±1..±k on every walk
	// (Table III; 0 disables).
	PrefetchDegree int
	// InvLeaders is the number of shootdown invalidation leaders
	// (Section III-G). 0 means every core relays its own invalidations.
	InvLeaders int
	// THP backs each region's SuperpageFrac with transparent 2 MB pages.
	THP bool
	// QoSMaxCtxWays, when positive, caps how many ways of each shared
	// set one application may occupy — the LLC-style QoS/fairness
	// partitioning the paper leaves to future work (Section V).
	QoSMaxCtxWays int
	// NoSpeculativeResponse disables the Fig. 10 optimization of setting
	// up the response path during the slice lookup, for ablation.
	NoSpeculativeResponse bool
	// Apps is the workload mix; a single-entry mix is a multithreaded run.
	Apps []App
	// InstrPerThread is the instruction budget simulated per thread.
	InstrPerThread uint64
	// WarmupInstr, when nonzero, prepends a warmup phase of that many
	// instructions per thread before measurement begins: the warmup
	// executes the same workload generators (filling TLBs, page tables,
	// PTE caches) and then every statistic is reset at the boundary, so
	// the Result covers only the measured InstrPerThread instructions.
	// Sweep runners share one warmup across configs that agree on the
	// warmup-relevant prefix (see WarmupKey).
	WarmupInstr uint64
	// ShootdownInterval, when nonzero, remaps a random page every N
	// cycles, generating steady shootdown traffic (Fig. 16 right).
	ShootdownInterval uint64
	// Storm optionally enables the TLB-storm co-run.
	Storm *StormConfig
	// Check, when non-nil, attaches the differential-oracle and
	// invariant checker (internal/check) to the run: every served
	// translation is verified against the page table, NOCSTAR circuit
	// reservations are shadowed, and timing horizons are asserted
	// monotone. One Checker serves exactly one run. Nil (the default)
	// keeps the translation critical path allocation-free; the runner
	// never dedups or memoizes checked configs.
	Check *check.Checker
	// Seed drives all pseudo-randomness; equal seeds replay identically.
	Seed int64
}

// Normalized validates (Validate) and fills defaults, returning the
// effective config. All rejection happens up front in Validate with
// typed field errors; the default-filling below cannot fail.
func (c Config) Normalized() (Config, error) {
	if err := c.Validate(); err != nil {
		return c, err
	}
	if c.SMT <= 0 {
		c.SMT = 1
	}
	if c.L1Scale <= 0 {
		c.L1Scale = 1
	}
	if c.L2EntriesPerCore <= 0 {
		if c.Org == Nocstar || c.Org == NocstarIdeal {
			c.L2EntriesPerCore = 920 // Table II area normalization
		} else {
			c.L2EntriesPerCore = 1024
		}
	}
	if c.Banks <= 0 {
		if c.Cores >= 64 {
			c.Banks = 8
		} else {
			c.Banks = 4
		}
	}
	if c.HPCmax <= 0 {
		c.HPCmax = 16
	}
	if c.PTW.Mode == ptw.Variable && c.PTW.PWCEntries == 0 && c.PTW.Overhead == 0 {
		c.PTW = ptw.DefaultConfig()
	}
	if c.InstrPerThread == 0 {
		c.InstrPerThread = 200_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch c.Placement {
	case place.RowMajor, place.LocalityAware:
		// Pin the seed so the deterministic strategies cannot split one
		// simulated behavior across several cache keys (row-major uses
		// no seed at all; locality samples traffic with the pinned one).
		c.PlacementSeed = 0
	default:
		if c.PlacementSeed == 0 {
			c.PlacementSeed = c.Seed
		}
	}
	return c, nil
}
