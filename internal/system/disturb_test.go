package system

import (
	"testing"

	"nocstar/internal/vm"
)

// TestMonoFullFlushChargesAllBanks is the regression test for the
// shootdown cost-model bug where a FullFlush on the monolithic
// organization charged only bank 0's port: the flush scrubs every bank's
// share of the array, so every bank must be busy, exactly like the
// sliced organizations charge every slice.
func TestMonoFullFlushChargesAllBanks(t *testing.T) {
	s, err := New(smallConfig(MonolithicMesh))
	if err != nil {
		t.Fatal(err)
	}
	flush := []vm.Invalidation{{Ctx: 1, FullFlush: true}}
	monoHorizon := s.deliverInvalidations(flush)
	for b, free := range s.bankPortFree {
		if free != 1 {
			t.Fatalf("bank %d port free = %d after full flush, want 1 (every bank charged once)",
				b, free)
		}
	}
	// The monolithic horizon now matches the sliced organizations': one
	// coalesced scrub per bank/slice, regardless of the core count that
	// used to be charged to bank 0 alone.
	d, err := New(smallConfig(DistributedMesh))
	if err != nil {
		t.Fatal(err)
	}
	if slicedHorizon := d.deliverInvalidations(flush); monoHorizon != slicedHorizon {
		t.Fatalf("full-flush horizons diverge: monolithic %d vs sliced %d",
			monoHorizon, slicedHorizon)
	}
}

// TestStormContextSwitchChargesPrivatePorts is the regression test for
// the storm cost-model bug where a context switch flushed private L2
// TLBs for free while charging the shared organizations' banks and
// slices 4 cycles each.
func TestStormContextSwitchChargesPrivatePorts(t *testing.T) {
	cfg := smallConfig(Private)
	cfg.Storm = &StormConfig{ContextSwitchInterval: 1000, PromoteDemoteInterval: 1000, Pages: 512}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.stormContextSwitch()
	for _, c := range s.cores {
		if c.privPortFree != 4 {
			t.Fatalf("core %d private port free = %d after storm context switch, want 4",
				c.id, c.privPortFree)
		}
	}
	// Shared organizations keep paying the same flush cost.
	mcfg := smallConfig(MonolithicMesh)
	mcfg.Storm = cfg.Storm
	m, err := New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	m.stormContextSwitch()
	for b, free := range m.bankPortFree {
		if free != 4 {
			t.Fatalf("bank %d port free = %d after storm context switch, want 4", b, free)
		}
	}
}
