package system

import (
	"nocstar/internal/engine"
	"nocstar/internal/metrics"
)

// sysMetrics holds the typed handles of every hot-path metric. All
// registration happens in initMetrics (called from New); the handles are
// incremented directly on the translation critical path, which stays
// allocation-free — the alloc-regression suite pins that with the
// registry attached.
type sysMetrics struct {
	memRefs    *metrics.Counter // sys.mem_refs
	l1Misses   *metrics.Counter // tlb.l1_misses
	l2Accesses *metrics.Counter // tlb.l2_accesses
	l2Hits     *metrics.Counter // tlb.l2_hits
	l2Misses   *metrics.Counter // tlb.l2_misses
	localSlice *metrics.Counter // tlb.local_slice
	remote     *metrics.Counter // tlb.remote_accesses
	prefetches *metrics.Counter // tlb.prefetch_inserts
	walks      *metrics.Counter // vm.walks
	shootdowns *metrics.Counter // vm.shootdowns

	hitLat  *metrics.Hist // tlb.l2_hit_cycles: full access window, hits only
	netLat  *metrics.Hist // net.round_trip_cycles: mesh/SMART round trips
	walkLat *metrics.Hist // ptw.walk_cycles
	invLat  *metrics.Hist // vm.inv_burst_size: invalidations per shootdown burst

	// Filled once at collect() time from the engine, walker, and cache
	// layers, which keep their own internal accounting.
	engEvents    *metrics.Counter // engine.events
	engCycles    *metrics.Counter // engine.cycles
	ptwQueue     *metrics.Counter // ptw.queue_cycles
	ptwPWCHits   *metrics.Counter // ptw.pwc_hits
	ptwLeafLLC   *metrics.Counter // ptw.leaf_from_llc_or_mem
	cacheAccess  *metrics.Counter // cache.walk_accesses
	cacheMemFill *metrics.Counter // cache.mem_fills
}

// invBurstBounds buckets shootdown burst sizes (invalidations per burst).
var invBurstBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128}

// newSysMetrics registers every metric in reg, in the canonical order
// shared by all registries of a run. Sharded runs build one registry per
// region plus one fold target; positional Registry.Merge depends on every
// instance registering identically, which funneling all registration
// through this one constructor guarantees.
func newSysMetrics(reg *metrics.Registry) sysMetrics {
	var m sysMetrics
	m.memRefs = reg.Counter("sys.mem_refs")
	m.l1Misses = reg.Counter("tlb.l1_misses")
	m.l2Accesses = reg.Counter("tlb.l2_accesses")
	m.l2Hits = reg.Counter("tlb.l2_hits")
	m.l2Misses = reg.Counter("tlb.l2_misses")
	m.localSlice = reg.Counter("tlb.local_slice")
	m.remote = reg.Counter("tlb.remote_accesses")
	m.prefetches = reg.Counter("tlb.prefetch_inserts")
	m.walks = reg.Counter("vm.walks")
	m.shootdowns = reg.Counter("vm.shootdowns")
	m.hitLat = reg.Hist("tlb.l2_hit_cycles", nil)
	m.netLat = reg.Hist("net.round_trip_cycles", nil)
	m.walkLat = reg.Hist("ptw.walk_cycles", nil)
	m.invLat = reg.Hist("vm.inv_burst_size", invBurstBounds)
	m.engEvents = reg.Counter("engine.events")
	m.engCycles = reg.Counter("engine.cycles")
	m.ptwQueue = reg.Counter("ptw.queue_cycles")
	m.ptwPWCHits = reg.Counter("ptw.pwc_hits")
	m.ptwLeafLLC = reg.Counter("ptw.leaf_from_llc_or_mem")
	m.cacheAccess = reg.Counter("cache.walk_accesses")
	m.cacheMemFill = reg.Counter("cache.mem_fills")
	return m
}

// initMetrics builds the run's registry and registers every metric.
func (s *System) initMetrics() {
	s.reg = metrics.NewRegistry()
	s.m = newSysMetrics(s.reg)
}

// Metrics exposes the run's registry (for tests and external wiring).
func (s *System) Metrics() *metrics.Registry { return s.reg }

// SetTracer attaches an event tracer to the system and its NOCSTAR
// fabric (nil detaches). Call before the run starts; the hot paths guard
// every emit with a nil check.
func (s *System) SetTracer(tr *metrics.Tracer) {
	s.tracer = tr
	if s.fabric != nil {
		s.fabric.SetTracer(tr)
	}
}

// RunWithTracer is Run with an event tracer attached for the whole run.
// The tracer is deliberately not part of Config: configs are compared and
// formatted as values by the experiment cache.
func RunWithTracer(cfg Config, tr *metrics.Tracer) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	s.SetTracer(tr)
	return s.run()
}

// noteHit closes a hit's latency accounting: the access window ran from
// x.start through done (lookup + network + queueing).
func (s *System) noteHit(x *xact, done engine.Cycle) {
	s.m.hitLat.Observe(uint64(done - x.start))
	if s.tracer != nil {
		s.tracer.Emit(metrics.TraceL2Hit, uint64(x.start), uint64(done-x.start),
			int32(x.th.core.id), int32(x.slice))
	}
}

// noteMiss records a shared-L2 miss decided for x.
func (s *System) noteMiss(x *xact) {
	s.m.l2Misses.Inc()
	if s.tracer != nil {
		s.tracer.Emit(metrics.TraceL2Miss, uint64(x.start), 0,
			int32(x.th.core.id), int32(x.slice))
	}
}

// collectLayerMetrics folds the engine's, walkers', and cache
// hierarchies' own accounting into the registry, once, after the run
// drains.
func (s *System) collectLayerMetrics() {
	s.m.engEvents.Add(s.eng.Processed())
	s.m.engCycles.Add(uint64(s.eng.Now() - s.measureStart))
	for _, c := range s.cores {
		w := c.walker.Stats()
		s.m.ptwQueue.Add(w.QueueCycles)
		s.m.ptwPWCHits.Add(w.PWCHits)
		s.m.ptwLeafLLC.Add(w.LeafFromLLCOrMem)
		acc, _, fills := c.hier.Stats()
		s.m.cacheAccess.Add(acc)
		s.m.cacheMemFill.Add(fills)
	}
}
