// Warm-state checkpointing.
//
// A sweep typically varies measurement-phase knobs (shootdown intervals,
// storms, instruction budgets) across configs that share an identical
// warmup: same machine, same workloads, same seed. Re-simulating that
// warmup per config is pure waste, so the warmup phase can be captured
// once as a Checkpoint — a deep copy of every piece of simulation state
// the measurement phase reads — and restored into fresh Systems for each
// measurement run. Restoration is constructed to be indistinguishable
// from the inline warmup path: the checkpoint is taken at the exact
// boundary where the inline path calls boundaryReset, the engine's
// (cycle, seq) schedule position is restored verbatim, and every mutable
// structure is cloned, never aliased, so one checkpoint can seed many
// concurrent restores. Results are byte-identical either way; a
// determinism test pins this.
package system

import (
	"context"
	"fmt"

	"nocstar/internal/cache"
	"nocstar/internal/engine"
	"nocstar/internal/ptw"
	"nocstar/internal/tlb"
	"nocstar/internal/vm"
	"nocstar/internal/workload"
)

// CheckpointVersion identifies the in-memory checkpoint layout. It is a
// guard against restoring a checkpoint across incompatible code
// revisions if checkpoints ever become persistent; today checkpoints
// live only within one process.
const CheckpointVersion = 1

// coreCheckpoint is one tile's warm state.
type coreCheckpoint struct {
	l1           tlb.GroupSnapshot
	priv         *tlb.Snapshot // Private organization only
	privPortFree engine.Cycle
	walker       ptw.Snapshot
	l2           cache.Snapshot // the walker hierarchy's private L2 share
}

// Checkpoint is the warm state of a System at its measurement boundary.
// It is immutable once taken: Restore clones, never aliases, so a single
// checkpoint may be restored into many Systems, concurrently.
type Checkpoint struct {
	version int
	key     string // WarmupKey of the config family this warms
	clock   engine.Clock
	rng     uint64

	cores  []coreCheckpoint
	llc    cache.Snapshot // the chip's shared LLC, captured once
	slices []tlb.Snapshot
	mono   *tlb.Snapshot

	slicePortFree  []engine.Cycle
	bankPortFree   []engine.Cycle
	leaderFree     []engine.Cycle
	fabricReserved []engine.Cycle // nil when the config has no NOCSTAR fabric

	spaces []*vm.AddressSpace // per-app page tables and allocators
	gens   []workload.State   // per-thread generator positions
}

// Key reports the WarmupKey this checkpoint was taken under.
func (cp *Checkpoint) Key() string { return cp.key }

// WarmupKey derives the cache key under which cfg's warmup state may be
// shared: the canonical hash of the warmup-relevant config prefix. Two
// configs with equal keys perform byte-identical warmups, so one
// checkpoint serves both. The derivation overwrites the measured
// instruction budget with the warmup budget and strips the
// measurement-phase-only knobs (shootdowns and storms never run during
// warmup). ok is false when the config does not warm up (WarmupInstr
// zero) or cannot be keyed — attached Checker or injected Streams, the
// same conditions that already exclude a config from runner dedup.
func WarmupKey(cfg Config) (key string, ok bool) {
	if cfg.WarmupInstr == 0 || cfg.Check != nil {
		return "", false
	}
	w := cfg
	w.InstrPerThread = cfg.WarmupInstr
	w.WarmupInstr = 0
	w.ShootdownInterval = 0
	w.Storm = nil
	h, err := w.CanonicalHash()
	if err != nil {
		return "", false
	}
	return h, true
}

// WarmupCheckpoint builds a fresh system for cfg, runs its warmup phase,
// and captures the boundary state. The returned checkpoint restores into
// any config whose WarmupKey equals cfg's.
func WarmupCheckpoint(ctx context.Context, cfg Config) (*Checkpoint, error) {
	key, ok := WarmupKey(cfg)
	if !ok {
		return nil, fmt.Errorf("system: config has no warmup key (WarmupInstr zero or unkeyable)")
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.warmup(ctx); err != nil {
		return nil, err
	}
	return s.checkpoint(key)
}

// RunFromCheckpoint builds a fresh system for cfg, restores cp in place
// of running the warmup, and executes the measurement phase. The result
// is byte-identical to RunContext(ctx, cfg).
func RunFromCheckpoint(ctx context.Context, cfg Config, cp *Checkpoint) (Result, error) {
	key, ok := WarmupKey(cfg)
	if !ok {
		return Result{}, fmt.Errorf("system: config has no warmup key")
	}
	if key != cp.key {
		return Result{}, fmt.Errorf("system: checkpoint key mismatch: config warms %s, checkpoint holds %s",
			key[:12], cp.key[:12])
	}
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	if err := s.restore(cp); err != nil {
		return Result{}, err
	}
	return s.measured(ctx)
}

// checkpoint captures the system's warm state. It must be called exactly
// at the measurement boundary (immediately after warmup's
// boundaryReset): statistics are assumed zero and no events pending.
func (s *System) checkpoint(key string) (*Checkpoint, error) {
	if s.eng.Pending() > 0 {
		return nil, fmt.Errorf("system: checkpoint with %d events pending", s.eng.Pending())
	}
	cp := &Checkpoint{
		version: CheckpointVersion,
		key:     key,
		clock:   s.eng.Clock(),
		rng:     s.rng.State(),
		llc:     s.cores[0].hier.Level(1).Snapshot(),

		slicePortFree: append([]engine.Cycle(nil), s.slicePortFree...),
		bankPortFree:  append([]engine.Cycle(nil), s.bankPortFree...),
		leaderFree:    append([]engine.Cycle(nil), s.leaderFree...),
	}
	for _, c := range s.cores {
		cc := coreCheckpoint{
			l1:           c.l1.Snapshot(),
			privPortFree: c.privPortFree,
			walker:       c.walker.Snapshot(),
			l2:           c.hier.Level(0).Snapshot(),
		}
		if c.privL2 != nil {
			snap := c.privL2.Snapshot()
			cc.priv = &snap
		}
		cp.cores = append(cp.cores, cc)
	}
	for _, sl := range s.slices {
		cp.slices = append(cp.slices, sl.Snapshot())
	}
	if s.mono != nil {
		snap := s.mono.Snapshot()
		cp.mono = &snap
	}
	if s.fabric != nil {
		cp.fabricReserved = s.fabric.SnapshotReserved()
	}
	for _, a := range s.apps {
		cp.spaces = append(cp.spaces, a.as.Clone())
	}
	for _, th := range s.threads {
		g, ok := th.gen.(*workload.Generator)
		if !ok {
			return nil, fmt.Errorf("system: checkpoint requires generative workloads, thread has %T", th.gen)
		}
		cp.gens = append(cp.gens, g.State())
	}
	return cp, nil
}

// restore overwrites a freshly constructed system's state with cp. It
// must run before any event is scheduled.
func (s *System) restore(cp *Checkpoint) error {
	if cp.version != CheckpointVersion {
		return fmt.Errorf("system: checkpoint version %d, want %d", cp.version, CheckpointVersion)
	}
	switch {
	case len(cp.cores) != len(s.cores),
		len(cp.slices) != len(s.slices),
		(cp.mono != nil) != (s.mono != nil),
		(cp.fabricReserved != nil) != (s.fabric != nil),
		len(cp.slicePortFree) != len(s.slicePortFree),
		len(cp.bankPortFree) != len(s.bankPortFree),
		len(cp.leaderFree) != len(s.leaderFree),
		len(cp.spaces) != len(s.apps),
		len(cp.gens) != len(s.threads):
		return fmt.Errorf("system: checkpoint shape does not match configuration")
	}
	s.eng.SetClock(cp.clock)
	s.rng.SetState(cp.rng)
	for i, c := range s.cores {
		cc := &cp.cores[i]
		if err := c.l1.RestoreSnapshot(cc.l1); err != nil {
			return err
		}
		c.privPortFree = cc.privPortFree
		c.walker.RestoreSnapshot(cc.walker)
		c.hier.Level(0).RestoreSnapshot(cc.l2)
		if (c.privL2 != nil) != (cc.priv != nil) {
			return fmt.Errorf("system: checkpoint organization does not match configuration")
		}
		if c.privL2 != nil {
			if err := c.privL2.RestoreSnapshot(*cc.priv); err != nil {
				return err
			}
		}
	}
	s.cores[0].hier.Level(1).RestoreSnapshot(cp.llc)
	for i, sl := range s.slices {
		if err := sl.RestoreSnapshot(cp.slices[i]); err != nil {
			return err
		}
	}
	if s.mono != nil {
		if err := s.mono.RestoreSnapshot(*cp.mono); err != nil {
			return err
		}
	}
	copy(s.slicePortFree, cp.slicePortFree)
	copy(s.bankPortFree, cp.bankPortFree)
	copy(s.leaderFree, cp.leaderFree)
	if s.fabric != nil {
		s.fabric.RestoreReserved(cp.fabricReserved)
	}
	// Clone again per restore: the checkpoint's spaces stay pristine so
	// further restores (possibly concurrent) see the same state.
	for i, a := range s.apps {
		a.as = cp.spaces[i].Clone()
	}
	for i, th := range s.threads {
		g, ok := th.gen.(*workload.Generator)
		if !ok {
			return fmt.Errorf("system: restore requires generative workloads, thread has %T", th.gen)
		}
		g.SetState(cp.gens[i])
	}
	s.measureStart = cp.clock.Now
	return nil
}
