package system

import (
	"fmt"
	"reflect"
	"testing"

	"nocstar/internal/engine"
	"nocstar/internal/vm"
	"nocstar/internal/workload"
)

// shardedCases are the configs the K-identity matrix runs: both shardable
// organizations, exercised with warmup, THP superpages, prefetch, remote
// walks, QoS partitioning, hammer redirection, steady shootdowns, and the
// full TLB storm. Every determinism-relevant code path appears at least
// once.
func shardedCases() map[string]Config {
	return map[string]Config{
		"private": func() Config {
			c := smallConfig(Private)
			c.WarmupInstr = 5_000
			c.THP = true
			c.PrefetchDegree = 2
			c.ShootdownInterval = 40_000
			return c
		}(),
		"dist-base": smallConfig(DistributedMesh),
		"dist-remote-walk": func() Config {
			c := smallConfig(DistributedMesh)
			c.Policy = WalkAtRemote
			c.PrefetchDegree = 2
			c.THP = true
			c.WarmupInstr = 5_000
			return c
		}(),
		"dist-storm": func() Config {
			c := smallConfig(DistributedMesh)
			c.ShootdownInterval = 30_000
			c.InvLeaders = 2
			c.QoSMaxCtxWays = 4
			c.Storm = &StormConfig{
				ContextSwitchInterval: 120_000,
				PromoteDemoteInterval: 25_000,
				Pages:                 2048,
			}
			return c
		}(),
		"dist-hammer": func() Config {
			c := smallConfig(DistributedMesh)
			c.Apps[0].HammerSlice = 3
			return c
		}(),
	}
}

// TestShardedSystemIdentity is the tentpole determinism pin: for every
// shardable config, a -shards=K run produces a Result deep-equal to the
// K=1 run — counters, histograms, energy, per-app results, the full
// metrics snapshot — for every K.
func TestShardedSystemIdentity(t *testing.T) {
	for name, cfg := range shardedCases() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base, err := RunSharded(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if base.Cycles == 0 || base.L2Accesses == 0 {
				t.Fatalf("degenerate run: %+v", base)
			}
			for _, k := range []int{2, 4, 8} {
				got, err := RunSharded(cfg, k)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("shards=%d diverges from shards=1:\n base=%+v\n got=%+v", k, base, got)
				}
			}
		})
	}
}

// TestShardedGoldenEventOrder pins the stronger property underneath the
// Result identity: the per-region event order — every (cycle, seq) pair
// each region's engine processes — is invariant in the worker count.
func TestShardedGoldenEventOrder(t *testing.T) {
	cfg := smallConfig(DistributedMesh)
	cfg.ShootdownInterval = 30_000
	cfg.PrefetchDegree = 1

	hash := func(shards int) ([]uint64, uint64) {
		hashes := make([]uint64, cfg.Cores)
		for i := range hashes {
			hashes[i] = 14695981039346656037 // FNV-1a offset basis
		}
		_, err := RunShardedTraced(cfg, shards, func(region int, cycle, seq uint64) {
			h := hashes[region]
			h = (h ^ cycle) * 1099511628211
			h = (h ^ seq) * 1099511628211
			hashes[region] = h
		})
		if err != nil {
			t.Fatal(err)
		}
		var merged uint64 = 14695981039346656037
		for _, h := range hashes {
			merged = (merged ^ h) * 1099511628211
		}
		return hashes, merged
	}

	base, baseMerged := hash(1)
	for _, k := range []int{2, 4} {
		got, gotMerged := hash(k)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("shards=%d: region %d event order diverges (hash %x != %x)",
					k, i, got[i], base[i])
			}
		}
		if gotMerged != baseMerged {
			t.Fatalf("shards=%d: merged event-order hash diverges", k)
		}
	}
}

// TestShardedTracedRejectsUnshardable: the per-region observer has no
// meaning on the single-engine fallback path.
func TestShardedTracedRejectsUnshardable(t *testing.T) {
	if _, err := RunShardedTraced(smallConfig(Nocstar), 2, func(int, uint64, uint64) {}); err == nil {
		t.Fatal("RunShardedTraced accepted a non-shardable org")
	}
}

// TestShardedFallback: non-shardable organizations silently run on the
// legacy engine and must match Run exactly.
func TestShardedFallback(t *testing.T) {
	cfg := smallConfig(Nocstar)
	want := mustRun(t, cfg)
	got, err := RunSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("fallback RunSharded diverges from Run")
	}
}

// TestShardedStormContention is the -race target: a multi-worker run
// where coordinator globals (shootdowns, storm promote/demote bursts,
// chip-wide context-switch flushes) interleave with hot cross-region
// traffic on every barrier. Correctness of the numbers is pinned by the
// identity test; this one exists to put the memory model under the race
// detector.
func TestShardedStormContention(t *testing.T) {
	cfg := smallConfig(DistributedMesh)
	cfg.InstrPerThread = 8_000
	cfg.ShootdownInterval = 10_000
	cfg.Policy = WalkAtRemote
	cfg.PrefetchDegree = 2
	cfg.Storm = &StormConfig{
		ContextSwitchInterval: 60_000,
		PromoteDemoteInterval: 15_000,
		Pages:                 1024,
	}
	r, err := RunSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shootdowns == 0 {
		t.Fatal("storm run produced no shootdowns")
	}
}

// shardedAllocSystem builds a Private-organization partitioned system in
// steady state. Private regions exchange no hot-path messages, so each
// region's engine can be driven directly — exactly the code the worker
// goroutines run between barriers — without a coordinator.
func shardedAllocSystem(t testing.TB) (*shSystem, *engine.Cycle) {
	t.Helper()
	const threads = 8
	spec := workload.Spec{
		Name:           "alloc-ring",
		FootprintPages: 1,
		MemRefPerInstr: 1.0,
		BaseCPI:        1.0,
	}
	app := App{Spec: spec, Threads: threads, HammerSlice: HammerNone}
	for i := 0; i < threads; i++ {
		app.Streams = append(app.Streams, &ringStream{
			base:  vm.VirtAddr(0x1000_0000_0000 + uint64(i)*0x4000_0000),
			pages: 4096,
		})
	}
	cfg := Config{
		Org:            Private,
		Cores:          threads,
		Apps:           []App{app},
		InstrPerThread: 1 << 40,
		Seed:           5,
	}
	ncfg, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	s := newShSystem(ncfg, 4)
	for _, th := range s.threads {
		rg := s.region(th)
		rg.eng.ScheduleAct(0, rg, shThreadLoop, th)
	}
	limit := engine.Cycle(2_000_000)
	for _, rg := range s.regions {
		rg.eng.RunUntil(limit)
	}
	var walks uint64
	for _, rg := range s.regions {
		walks += rg.m.walks.Value()
	}
	if walks == 0 {
		t.Fatal("warmup did not exercise the walk path")
	}
	return s, &limit
}

// BenchmarkSharded measures wall-clock scaling of the partitioned engine
// on a large DistributedMesh machine: one high-miss-rate thread per core,
// heavy cross-slice traffic, identical simulated work at every shard
// count (the results are byte-identical; only the wall clock moves).
func BenchmarkSharded(b *testing.B) {
	spec, ok := workload.ByName("gups")
	if !ok {
		b.Fatal("gups workload missing")
	}
	const cores = 64
	cfg := Config{
		Org:            DistributedMesh,
		Cores:          cores,
		Apps:           []App{{Spec: spec, Threads: cores, HammerSlice: HammerNone}},
		InstrPerThread: 30_000,
		Seed:           1,
	}
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := RunSharded(cfg, k)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.MemRefs), "memrefs")
				}
			}
		})
	}
}

// TestShardedRegionAllocFree pins the per-shard hot path at zero heap
// allocations in steady state: thread issue, L1 miss, private L2 lookup
// and port arbitration, page walk, translation insert, resume.
func TestShardedRegionAllocFree(t *testing.T) {
	s, limit := shardedAllocSystem(t)
	avg := testing.AllocsPerRun(10, func() {
		*limit += 20_000
		for _, rg := range s.regions {
			rg.eng.RunUntil(*limit)
		}
	})
	if avg != 0 {
		t.Fatalf("sharded region hot path allocates: %.1f allocs per 20k cycles, want 0", avg)
	}
}
