package system

import (
	"testing"
	"testing/quick"

	"nocstar/internal/noc"
	"nocstar/internal/vm"
	"nocstar/internal/workload"
)

// These tests pin down cross-module invariants of the assembled machine
// rather than individual component behaviour.

func TestSliceMappingStable(t *testing.T) {
	s, err := New(smallConfig(Nocstar))
	if err != nil {
		t.Fatal(err)
	}
	// The home slice of an address never changes and covers all slices.
	seen := map[int]bool{}
	f := func(vaRaw uint64) bool {
		va := vm.VirtAddr(vaRaw)
		a := s.homeSlice(va)
		b := s.homeSlice(va)
		if a != b || a < 0 || a >= s.cfg.Cores {
			return false
		}
		seen[a] = true
		// All addresses in the same 2MB extent share a home slice, so a
		// requester needs no page-size information.
		return s.homeSlice(va.PageBase(vm.Page2M)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if len(seen) < s.cfg.Cores/2 {
		t.Fatalf("slice mapping only reached %d of %d slices", len(seen), s.cfg.Cores)
	}
}

func TestBankMappingInRange(t *testing.T) {
	cfg := smallConfig(MonolithicMesh)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vaRaw uint64) bool {
		b := s.bankFor(vm.VirtAddr(vaRaw))
		return b >= 0 && b < len(s.bankNodes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionConservation(t *testing.T) {
	// Every organization retires exactly the configured instructions.
	for _, org := range []Org{Private, MonolithicSMART, DistributedMesh, Nocstar} {
		cfg := smallConfig(org)
		cfg.InstrPerThread = 7_777
		r := mustRun(t, cfg)
		want := uint64(cfg.Cores) * 7_777
		if r.Instructions != want {
			t.Fatalf("%v: retired %d, want %d", org, r.Instructions, want)
		}
	}
}

func TestStallCyclesBounded(t *testing.T) {
	// Translation stalls can never exceed total thread-cycles.
	r := mustRun(t, smallConfig(Nocstar))
	if r.StallCycles > r.Cycles*uint64(8) {
		t.Fatalf("stalls %d exceed aggregate cycles %d x 8 threads", r.StallCycles, r.Cycles)
	}
	if r.StallCycles == 0 {
		t.Fatal("no translation stalls at all (model degenerate)")
	}
}

func TestHitsInsertIntoL1(t *testing.T) {
	// Mostly-inclusive hierarchy: after a shared-L2 hit the L1 holds the
	// translation, so immediate re-access of the same page is an L1 hit.
	// Statistically: the L1 hit rate must far exceed the repeat
	// probability alone would suggest misses.
	r := mustRun(t, smallConfig(Nocstar))
	if r.L1MissRate() > 0.2 {
		t.Fatalf("L1 miss rate %.3f suggests fills are not reaching the L1", r.L1MissRate())
	}
}

func TestSharedCapacityScalesHitRate(t *testing.T) {
	// The same workload on more cores has a bigger shared TLB and a
	// lower shared miss ratio (Fig. 2's mechanism). Per-thread work is
	// held constant.
	spec := smallSpec()
	miss := func(cores int) float64 {
		cfg := Config{
			Org:            IdealShared,
			Cores:          cores,
			Apps:           []App{{Spec: spec, Threads: cores, HammerSlice: HammerNone}},
			InstrPerThread: 30_000,
			Seed:           3,
		}
		return mustRun(t, cfg).L2MissRate()
	}
	small, big := miss(4), miss(16)
	if big >= small {
		t.Fatalf("shared L2 miss rate did not drop with scale: %d-core %.3f vs %.3f",
			16, big, small)
	}
}

func TestNocstarIdealNoContention(t *testing.T) {
	r := mustRun(t, smallConfig(NocstarIdeal))
	if r.Noc.NoContentionFraction() != 1 {
		t.Fatalf("ideal fabric had contention: %.3f", r.Noc.NoContentionFraction())
	}
	if r.Noc.AvgSetupCycles() != 1 {
		t.Fatalf("ideal fabric setup %.2f, want exactly 1", r.Noc.AvgSetupCycles())
	}
}

func TestAreaNormalizedSliceDefault(t *testing.T) {
	cfg, err := smallConfig(Nocstar).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L2EntriesPerCore != 920 {
		t.Fatalf("NOCSTAR default slice = %d entries, want the paper's 920", cfg.L2EntriesPerCore)
	}
	cfg2, _ := smallConfig(Private).Normalized()
	if cfg2.L2EntriesPerCore != 1024 {
		t.Fatalf("private default = %d entries, want 1024", cfg2.L2EntriesPerCore)
	}
}

func TestBankDefaults(t *testing.T) {
	c, _ := Config{Org: MonolithicMesh, Cores: 32,
		Apps: []App{{Spec: smallSpec(), Threads: 1}}}.Normalized()
	if c.Banks != 4 {
		t.Fatalf("32-core banks = %d, want 4", c.Banks)
	}
	c, _ = Config{Org: MonolithicMesh, Cores: 64,
		Apps: []App{{Spec: smallSpec(), Threads: 1}}}.Normalized()
	if c.Banks != 8 {
		t.Fatalf("64-core banks = %d, want 8 (paper's best banking)", c.Banks)
	}
}

func TestRoundTripAcquireHoldsLinks(t *testing.T) {
	// Round-trip acquisition holds paths longer: strictly more setup
	// contention on the fabric for the same traffic.
	oneWay := smallConfig(Nocstar)
	oneWay.Acquire = noc.OneWayAcquire
	rt := smallConfig(Nocstar)
	rt.Acquire = noc.RoundTripAcquire
	a, b := mustRun(t, oneWay), mustRun(t, rt)
	if b.Noc.NoContentionFraction() > a.Noc.NoContentionFraction() {
		t.Fatalf("round-trip acquire had less contention: %.3f vs %.3f",
			b.Noc.NoContentionFraction(), a.Noc.NoContentionFraction())
	}
}

func TestWalkerHierarchySharedLLC(t *testing.T) {
	// A page walked by one core must warm the shared LLC for every other
	// core: the second core's cold walk is cheaper than the first's.
	s, err := New(smallConfig(Private))
	if err != nil {
		t.Fatal(err)
	}
	as := vm.NewAddressSpace(50)
	as.EnsureMapped(0x1234000, vm.Page4K)
	lat0, _, ok := s.cores[0].walker.Walk(0, as, 0x1234000)
	if !ok {
		t.Fatal("walk failed")
	}
	lat1, _, _ := s.cores[1].walker.Walk(1000, as, 0x1234000)
	if lat1 >= lat0 {
		t.Fatalf("shared LLC did not help the second walker: %d then %d", lat0, lat1)
	}
}

func TestUniformWorkloadRuns(t *testing.T) {
	cfg := Config{
		Org:            Nocstar,
		Cores:          4,
		Apps:           []App{{Spec: workload.Uniform("ub", 2000), Threads: 4, HammerSlice: HammerNone}},
		InstrPerThread: 10_000,
		Seed:           1,
	}
	r := mustRun(t, cfg)
	if r.L2Accesses == 0 {
		t.Fatal("uniform microbenchmark generated no L2 traffic")
	}
}

func TestGridsForPaperCoreCounts(t *testing.T) {
	for _, n := range []int{16, 32, 64, 128, 256, 512} {
		g := noc.GridFor(n)
		if g.Nodes() != n {
			t.Fatalf("%d cores tiled as %dx%d = %d nodes, want exact",
				n, g.Rows, g.Cols, g.Nodes())
		}
	}
}

func TestTraceReplayDeterministic(t *testing.T) {
	// Replaying identical streams must yield identical results, and the
	// stream count must match the thread count.
	spec := smallSpec()
	mkStreams := func() []workload.Stream {
		var out []workload.Stream
		for i := 0; i < 4; i++ {
			out = append(out, workload.NewGenerator(spec, 4, i, engineRand(int64(100+i))))
		}
		return out
	}
	mk := func() Config {
		return Config{
			Org:            Nocstar,
			Cores:          4,
			Apps:           []App{{Spec: spec, Threads: 4, HammerSlice: HammerNone, Streams: mkStreams()}},
			InstrPerThread: 15_000,
			Seed:           9,
		}
	}
	a := mustRun(t, mk())
	b := mustRun(t, mk())
	if a.Cycles != b.Cycles || a.L2Misses != b.L2Misses {
		t.Fatalf("replayed runs diverged: %d/%d vs %d/%d",
			a.Cycles, a.L2Misses, b.Cycles, b.L2Misses)
	}
	// Mismatched stream count must be rejected.
	bad := mk()
	bad.Apps[0].Streams = bad.Apps[0].Streams[:2]
	if _, err := Run(bad); err == nil {
		t.Fatal("mismatched stream count accepted")
	}
}
