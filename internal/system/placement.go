package system

// Slice-placement construction. The placement table is a pure function
// of the (normalized) Config: both engines — the legacy single-wheel
// System and the partitioned shSystem — call buildPlacement during
// construction and get the identical mapping, so sharded and legacy
// runs of one config agree on where every logical slice lives.
//
// The optimizing strategies need a demand estimate. placementTraffic
// samples each thread's workload generator with an RNG derived from
// PlacementSeed — independent of the simulation's own Seed-derived
// generator streams, so enabling placement never perturbs the addresses
// a run actually simulates.

import (
	"nocstar/internal/engine"
	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/workload"
)

// placementSamples is how many addresses the traffic sampler draws per
// thread. A few thousand 2 MB-granule samples per source pins the hot
// columns of the demand matrix well past the annealer's needs.
const placementSamples = 2048

// buildPlacement returns the slice-placement table cfg simulates with.
// cfg must be normalized.
func buildPlacement(cfg Config, topo noc.Topology) *place.Table {
	if cfg.Placement == place.RowMajor {
		return place.Identity(cfg.Cores)
	}
	return place.Build(cfg.Placement, topo, cfg.Cores, placementTraffic(cfg), cfg.PlacementSeed)
}

// sampleSeed derives the per-thread sampler seed. Any deterministic
// mixing works; the requirement is independence from the simulation RNG
// tree (which is rooted at Seed and split in construction order).
func sampleSeed(seed int64, appIdx, thread int) int64 {
	const domain = 0x9e3779b97f4a7c15 // keep sampler streams off the Seed tree
	return int64(mix(uint64(seed)^domain) ^ mix(uint64(appIdx)<<32|uint64(uint32(thread))))
}

// placementTraffic samples the source-core × logical-slice demand
// matrix: threads are laid onto cores round-robin exactly as New does,
// and each thread's generator is rebuilt with an independent RNG and
// drawn placementSamples times. Hammered apps are skipped (their L2
// traffic is pinned to a physical slice the placement cannot move), as
// are live Streams (stateful; sampling would consume them).
func placementTraffic(cfg Config) *place.Traffic {
	n := cfg.Cores
	tr := place.NewTraffic(n)
	nextCore := 0
	for ai, acfg := range cfg.Apps {
		pinned := acfg.HammerSlice >= 0 || acfg.Streams != nil
		for t := 0; t < acfg.Threads; t++ {
			src := nextCore % n
			nextCore++
			if pinned {
				continue
			}
			rng := engine.NewRand(sampleSeed(cfg.PlacementSeed, ai, t))
			gen := workload.NewGenerator(acfg.Spec, acfg.Threads, t, rng)
			for i := 0; i < placementSamples; i++ {
				va := gen.Next()
				logical := int(mix(uint64(va)>>21) % uint64(n))
				tr.Add(src, logical, 1)
			}
		}
	}
	return tr
}

// PlacementPlan returns the placement table cfg would simulate with,
// the sampled traffic matrix behind it, and the topology it was
// optimized for. The traffic matrix is sampled even for the row-major
// strategy so callers can cost the identity mapping under the same
// demand the optimizing strategies see.
func PlacementPlan(cfg Config) (*place.Table, *place.Traffic, noc.Topology, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, nil, nil, err
	}
	topo := noc.NewTopology(cfg.Topology, noc.GridFor(cfg.Cores))
	return buildPlacement(cfg, topo), placementTraffic(cfg), topo, nil
}
