package system

import (
	"testing"

	"nocstar/internal/engine"
	"nocstar/internal/noc"
	"nocstar/internal/ptw"
	"nocstar/internal/workload"
)

// smallSpec is a fast workload for unit tests.
func smallSpec() workload.Spec {
	return workload.Spec{
		Name:           "unit",
		FootprintPages: 6000,
		SharedFrac:     0.9,
		HotFrac:        0.15,
		HotProb:        0.9,
		ZipfTheta:      0.5,
		RepeatProb:     0.85,
		MemRefPerInstr: 0.33,
		BaseCPI:        1.0,
		SuperpageFrac:  0.5,
	}
}

func smallConfig(org Org) Config {
	return Config{
		Org:            org,
		Cores:          8,
		Apps:           []App{{Spec: smallSpec(), Threads: 8, HammerSlice: HammerNone}},
		InstrPerThread: 20_000,
		Seed:           3,
	}
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunAllOrgs(t *testing.T) {
	for _, org := range []Org{Private, MonolithicMesh, MonolithicSMART,
		DistributedMesh, Nocstar, NocstarIdeal, IdealShared} {
		r := mustRun(t, smallConfig(org))
		if r.Cycles == 0 || r.Instructions != 8*20_000 {
			t.Fatalf("%v: cycles=%d instr=%d", org, r.Cycles, r.Instructions)
		}
		if r.L2Accesses == 0 || r.L2Accesses != r.L2Hits+r.L2Misses {
			t.Fatalf("%v: accesses=%d hits=%d misses=%d", org, r.L2Accesses, r.L2Hits, r.L2Misses)
		}
		if r.L2Misses != r.Walks {
			t.Fatalf("%v: misses %d != walks %d", org, r.L2Misses, r.Walks)
		}
		if r.L1MissRate() <= 0 || r.L1MissRate() >= 1 {
			t.Fatalf("%v: L1 miss rate %v out of range", org, r.L1MissRate())
		}
	}
}

func TestMonolithicFixedRequiresLatency(t *testing.T) {
	cfg := smallConfig(MonolithicFixed)
	if _, err := Run(cfg); err == nil {
		t.Fatal("MonolithicFixed without latency accepted")
	}
	cfg.FixedAccessLatency = 16
	mustRun(t, cfg)
}

func TestDeterministicRuns(t *testing.T) {
	a := mustRun(t, smallConfig(Nocstar))
	b := mustRun(t, smallConfig(Nocstar))
	if a.Cycles != b.Cycles || a.L2Misses != b.L2Misses || a.Noc.Messages != b.Noc.Messages {
		t.Fatalf("runs with identical seeds diverged: %+v vs %+v", a.Cycles, b.Cycles)
	}
	c := smallConfig(Nocstar)
	c.Seed = 99
	other := mustRun(t, c)
	if other.Cycles == a.Cycles && other.L2Accesses == a.L2Accesses {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestSharedEliminatesMisses(t *testing.T) {
	priv := mustRun(t, smallConfig(Private))
	shared := mustRun(t, smallConfig(Nocstar))
	elim := shared.MissesEliminatedVs(priv)
	if elim <= 0.2 {
		t.Fatalf("shared TLB eliminated only %.2f of private misses", elim)
	}
}

func TestOrgOrdering(t *testing.T) {
	// The paper's headline ordering at a fixed seed: NOCSTAR beats the
	// distributed mesh, which beats the monolithic mesh; NOCSTAR is close
	// to the zero-interconnect ideal.
	cfg := smallConfig(Private)
	cfg.Cores = 16
	cfg.Apps[0].Threads = 16
	cfg.InstrPerThread = 60_000
	priv := mustRun(t, cfg)
	speedup := func(org Org) float64 {
		c := cfg
		c.Org = org
		return mustRun(t, c).SpeedupOver(priv)
	}
	mono := speedup(MonolithicMesh)
	dist := speedup(DistributedMesh)
	ns := speedup(Nocstar)
	ideal := speedup(IdealShared)
	if !(mono < dist && dist < ns && ns <= ideal*1.001) {
		t.Fatalf("ordering violated: mono=%.3f dist=%.3f nocstar=%.3f ideal=%.3f",
			mono, dist, ns, ideal)
	}
	if ns < 0.9*ideal {
		t.Fatalf("NOCSTAR %.3f not within 90%% of ideal %.3f", ns, ideal)
	}
}

func TestNocstarLatencyNearSingleCycle(t *testing.T) {
	r := mustRun(t, smallConfig(Nocstar))
	if r.Noc.Messages == 0 {
		t.Fatal("no fabric messages")
	}
	if avg := r.Noc.AvgSetupCycles(); avg > 3 {
		t.Fatalf("average setup %.2f cycles, paper reports 1-3", avg)
	}
	if frac := r.Noc.NoContentionFraction(); frac < 0.5 {
		t.Fatalf("only %.2f of messages contention-free", frac)
	}
}

func TestLocalSliceFraction(t *testing.T) {
	r := mustRun(t, smallConfig(Nocstar))
	frac := float64(r.LocalSlice) / float64(r.L2Accesses)
	// 8 slices: ~1/8 of accesses are local.
	if frac < 0.04 || frac > 0.30 {
		t.Fatalf("local slice fraction %.3f, want ~1/8", frac)
	}
}

func TestTHPReducesWalkLevels(t *testing.T) {
	cfg := smallConfig(Private)
	cfg.THP = true
	thp := mustRun(t, cfg)
	// Superpage-backed pages must appear: average walk must be cheaper
	// than the pure-4K run and 2M mappings must exist.
	flat := mustRun(t, smallConfig(Private))
	if thp.MPKI() >= flat.MPKI() {
		t.Fatalf("THP did not reduce MPKI: %.2f vs %.2f", thp.MPKI(), flat.MPKI())
	}
}

func TestSMTSharesL1(t *testing.T) {
	cfg := smallConfig(Private)
	cfg.SMT = 2
	cfg.Apps[0].Threads = 16 // 2 threads per core
	r := mustRun(t, cfg)
	solo := mustRun(t, smallConfig(Private))
	// Twice the threads on the same L1 TLBs: higher miss rate.
	if r.L1MissRate() <= solo.L1MissRate() {
		t.Fatalf("SMT did not increase L1 TLB pressure: %.4f vs %.4f",
			r.L1MissRate(), solo.L1MissRate())
	}
}

func TestSMTOverSubscriptionRejected(t *testing.T) {
	cfg := smallConfig(Private)
	cfg.Apps[0].Threads = 9 // 9 threads, 8 cores, SMT 1
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestPrefetchingInsertsNeighbours(t *testing.T) {
	cfg := smallConfig(Nocstar)
	cfg.PrefetchDegree = 2
	r := mustRun(t, cfg)
	if r.Prefetches == 0 {
		t.Fatal("no prefetches with degree 2")
	}
	base := mustRun(t, smallConfig(Nocstar))
	if r.MPKI() >= base.MPKI() {
		t.Fatalf("prefetching did not reduce MPKI: %.3f vs %.3f", r.MPKI(), base.MPKI())
	}
}

func TestFixedPTWLatency(t *testing.T) {
	cfg := smallConfig(Private)
	cfg.PTW = ptw.Config{Mode: ptw.Fixed, FixedLatency: 40}
	r := mustRun(t, cfg)
	if got := r.PTW.AvgCycles(); got != 40 {
		t.Fatalf("fixed PTW avg = %v, want 40", got)
	}
	cfg.PTW = ptw.Config{Mode: ptw.Fixed} // missing latency
	if _, err := Run(cfg); err == nil {
		t.Fatal("fixed PTW without latency accepted")
	}
}

func TestWalkPolicies(t *testing.T) {
	req := smallConfig(Nocstar)
	req.Policy = WalkAtRequester
	rem := smallConfig(Nocstar)
	rem.Policy = WalkAtRemote
	a := mustRun(t, req)
	b := mustRun(t, rem)
	if a.Walks == 0 || b.Walks == 0 {
		t.Fatal("no walks under a policy")
	}
	// The paper finds request-core walks slightly better on average.
	if float64(a.Cycles) > 1.1*float64(b.Cycles) {
		t.Fatalf("request-core policy much worse than remote: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestAcquireModes(t *testing.T) {
	oneWay := smallConfig(Nocstar)
	oneWay.Acquire = noc.OneWayAcquire
	roundTrip := smallConfig(Nocstar)
	roundTrip.Acquire = noc.RoundTripAcquire
	a := mustRun(t, oneWay)
	b := mustRun(t, roundTrip)
	// Fig. 16 left: one-way acquisition performs at least as well.
	if a.Cycles > b.Cycles {
		t.Fatalf("one-way acquire slower than round-trip: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestMultiprogrammedApps(t *testing.T) {
	s1 := smallSpec()
	s2 := smallSpec()
	s2.Name = "unit2"
	s2.FootprintPages = 3000
	cfg := Config{
		Org:            Nocstar,
		Cores:          8,
		Apps:           []App{{Spec: s1, Threads: 4, HammerSlice: HammerNone}, {Spec: s2, Threads: 4, HammerSlice: HammerNone}},
		InstrPerThread: 20_000,
		Seed:           3,
	}
	r := mustRun(t, cfg)
	if len(r.Apps) != 2 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	for _, a := range r.Apps {
		if a.IPC <= 0 || a.Instructions != 4*20_000 {
			t.Fatalf("bad app result %+v", a)
		}
	}
	if r.WorstAppSpeedupOver(r) != 1 {
		t.Fatal("self worst-app speedup != 1")
	}
}

func TestShootdownTraffic(t *testing.T) {
	cfg := smallConfig(Nocstar)
	cfg.ShootdownInterval = 2000
	cfg.InvLeaders = 2
	r := mustRun(t, cfg)
	if r.Shootdowns == 0 {
		t.Fatal("no shootdowns delivered")
	}
	quiet := mustRun(t, smallConfig(Nocstar))
	if r.Cycles < quiet.Cycles {
		t.Fatal("shootdown traffic accelerated the run (impossible)")
	}
}

func TestStormDegradesPerformance(t *testing.T) {
	cfg := smallConfig(Nocstar)
	cfg.Storm = &StormConfig{
		ContextSwitchInterval: 20_000,
		PromoteDemoteInterval: 3_000,
		Pages:                 4096,
	}
	storm := mustRun(t, cfg)
	quiet := mustRun(t, smallConfig(Nocstar))
	if storm.Cycles <= quiet.Cycles {
		t.Fatalf("storm did not degrade: %d vs %d", storm.Cycles, quiet.Cycles)
	}
	if storm.Shootdowns == 0 {
		t.Fatal("storm produced no invalidations")
	}
}

func TestSliceHammer(t *testing.T) {
	victim := smallSpec()
	hammer := workload.Uniform("hammer", 4000)
	cfg := Config{
		Org:   Nocstar,
		Cores: 8,
		Apps: []App{
			{Spec: victim, Threads: 1, HammerSlice: HammerNone},
			{Spec: hammer, Threads: 7, HammerSlice: 7},
		},
		InstrPerThread: 20_000,
		Seed:           3,
	}
	r := mustRun(t, cfg)
	if r.SliceConc.Total() == 0 {
		t.Fatal("no per-slice concurrency recorded")
	}
	// The hammered slice sees heavy concurrency: the top buckets of the
	// per-slice histogram must be populated.
	f := r.SliceConc.Fractions()
	if f[0] > 0.9 {
		t.Fatalf("hammered run shows almost no slice concurrency: %v", f)
	}
}

func TestConcurrencyHistogramPopulated(t *testing.T) {
	r := mustRun(t, smallConfig(Nocstar))
	if r.Conc.Total() != r.L2Accesses {
		t.Fatalf("concurrency observations %d != accesses %d", r.Conc.Total(), r.L2Accesses)
	}
	if r.SliceConc.Total() != r.L2Accesses {
		t.Fatalf("slice concurrency observations %d != accesses %d", r.SliceConc.Total(), r.L2Accesses)
	}
}

func TestEnergyAccounting(t *testing.T) {
	priv := mustRun(t, smallConfig(Private))
	ns := mustRun(t, smallConfig(Nocstar))
	if priv.Energy.TotalPJ() <= 0 || ns.Energy.TotalPJ() <= 0 {
		t.Fatal("zero energy recorded")
	}
	if priv.Energy.NetworkPJ != 0 {
		t.Fatal("private org charged network energy")
	}
	if ns.Energy.NetworkPJ == 0 {
		t.Fatal("NOCSTAR org charged no network energy")
	}
	// Shared TLB saves walk energy (fewer walks -> fewer LLC/mem refs).
	if ns.Energy.WalkPJ >= priv.Energy.WalkPJ {
		t.Fatalf("shared TLB did not save walk energy: %.0f vs %.0f",
			ns.Energy.WalkPJ, priv.Energy.WalkPJ)
	}
}

func TestL1ScaleChangesPressure(t *testing.T) {
	small := smallConfig(Private)
	small.L1Scale = 0.5
	big := smallConfig(Private)
	big.L1Scale = 1.5
	a := mustRun(t, small)
	b := mustRun(t, big)
	if a.L1MissRate() <= b.L1MissRate() {
		t.Fatalf("halved L1 TLBs not worse than 1.5x: %.4f vs %.4f",
			a.L1MissRate(), b.L1MissRate())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Cores: 0, Apps: []App{{Spec: smallSpec(), Threads: 1}}},
		{Cores: 4},
		{Cores: 4, Apps: []App{{Spec: smallSpec(), Threads: 0}}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestOrgStrings(t *testing.T) {
	for _, org := range []Org{Private, MonolithicMesh, MonolithicSMART, MonolithicFixed,
		DistributedMesh, Nocstar, NocstarIdeal, IdealShared} {
		if org.String() == "" || org.String()[0] == 'O' {
			t.Fatalf("missing String for %d", int(org))
		}
	}
	if Private.IsShared() || !Nocstar.IsShared() {
		t.Fatal("IsShared wrong")
	}
	if WalkAtRequester.String() != "request" || WalkAtRemote.String() != "remote" {
		t.Fatal("WalkPolicy strings wrong")
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	var r Result
	if r.L1MissRate() != 0 || r.L2MissRate() != 0 || r.MPKI() != 0 || r.SpeedupOver(r) != 0 {
		t.Fatal("zero result not zero metrics")
	}
	r = Result{Cycles: 100, Instructions: 1000, MemRefs: 500, L1Misses: 50,
		L2Accesses: 50, L2Misses: 10, IPC: 10}
	if r.L1MissRate() != 0.1 || r.L2MissRate() != 0.2 || r.MPKI() != 10 {
		t.Fatalf("metrics wrong: %v %v %v", r.L1MissRate(), r.L2MissRate(), r.MPKI())
	}
	base := Result{Cycles: 200, IPC: 5, Apps: []AppResult{{IPC: 2}}}
	r.Apps = []AppResult{{IPC: 3}}
	if r.SpeedupOver(base) != 2 || r.ThroughputSpeedupOver(base) != 2 || r.WorstAppSpeedupOver(base) != 1.5 {
		t.Fatal("speedup metrics wrong")
	}
}

// engineRand builds a deterministic stream seed helper for tests.
func engineRand(seed int64) *engine.Rand { return engine.NewRand(seed) }
