package system

import (
	"context"
	"testing"
	"time"

	"nocstar/internal/engine"
	"nocstar/internal/metrics"
	"nocstar/internal/vm"
	"nocstar/internal/workload"
)

// ringStream cycles a thread over a fixed ring of 4 KB pages. A working
// set larger than the L1 TLBs (and, across threads, than the shared L2)
// keeps the full critical path busy: L1 misses, remote NOCSTAR slice
// accesses, L2 misses, and page walks.
type ringStream struct {
	base  vm.VirtAddr
	pages uint64
	next  uint64
}

func (r *ringStream) Next() vm.VirtAddr {
	va := r.base + vm.VirtAddr((r.next%r.pages)*4096)
	r.next++
	return va
}

// allocTestSystem builds a running NOCSTAR system in steady state: thread
// loops started (as run() does) and warmed far enough that every page of
// every ring is mapped (including prefetch neighbours), all free lists
// are populated, and the engine's timing wheel has completed a full lap.
func allocTestSystem(t testing.TB) (*System, *engine.Cycle) {
	t.Helper()
	const threads = 8
	spec := workload.Spec{
		Name:           "alloc-ring",
		FootprintPages: 1, // unused: streams are injected
		MemRefPerInstr: 1.0,
		BaseCPI:        1.0,
	}
	app := App{Spec: spec, Threads: threads, HammerSlice: HammerNone}
	for i := 0; i < threads; i++ {
		app.Streams = append(app.Streams, &ringStream{
			base:  vm.VirtAddr(0x1000_0000_0000 + uint64(i)*0x4000_0000),
			pages: 4096,
		})
	}
	cfg := Config{
		Org:            Nocstar,
		Cores:          threads,
		Apps:           []App{app},
		InstrPerThread: 1 << 40, // never finishes during the test
		Seed:           5,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range s.threads {
		s.eng.ScheduleAct(0, s, opThreadLoop, th)
	}
	s.startDisturbances()
	// The long warmup matters: beyond mapping every page and filling the
	// free lists, each of the engine's 8192 wheel buckets must see its
	// steady-state maximum event count so bucket capacities stop growing.
	// Empirically the last append-growth happens before cycle 8M with this
	// workload; 10M leaves margin.
	limit := engine.Cycle(10_000_000)
	s.eng.RunUntil(limit)
	if s.m.walks.Value() == 0 || s.m.l2Misses.Value() == 0 || s.m.remote.Value() == 0 {
		t.Fatalf("warmup did not exercise the full path: walks=%d l2Misses=%d remote=%d",
			s.m.walks.Value(), s.m.l2Misses.Value(), s.m.remote.Value())
	}
	return s, &limit
}

// TestAccessL2AllocFree pins the tentpole property end to end: a warm
// system advances — thread issue, L1 miss, NOCSTAR path setup, slice
// lookup, page walk, resume — without a single heap allocation.
func TestAccessL2AllocFree(t *testing.T) {
	s, limit := allocTestSystem(t)
	avg := testing.AllocsPerRun(10, func() {
		*limit += 20_000
		s.eng.RunUntil(*limit)
	})
	if avg != 0 {
		t.Fatalf("steady-state translation path allocates: %.1f allocs per 20k cycles, want 0", avg)
	}
}

// TestAccessL2AllocFreeWithTracer repeats the allocation pin with an
// event tracer attached: a full recording window keeps dropping events,
// and an open window appends into preallocated storage — neither may
// allocate. (The metrics registry is always attached: New registers it.)
func TestAccessL2AllocFreeWithTracer(t *testing.T) {
	s, limit := allocTestSystem(t)
	s.SetTracer(metrics.NewTracer(1 << 16))
	avg := testing.AllocsPerRun(10, func() {
		*limit += 20_000
		s.eng.RunUntil(*limit)
	})
	if avg != 0 {
		t.Fatalf("traced translation path allocates: %.1f allocs per 20k cycles, want 0", avg)
	}
}

// TestAccessL2AllocFreeWithContext repeats the allocation pin while the
// engine is driven through the context-polling path (advanceCtx with a
// live cancellable context, as RunContext uses): the strided polling
// sits outside the event loop and must not put the critical path back
// on the heap.
func TestAccessL2AllocFreeWithContext(t *testing.T) {
	s, limit := allocTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	var ctxErr error
	avg := testing.AllocsPerRun(10, func() {
		*limit += 20_000
		if err := s.advanceCtx(ctx, *limit); err != nil {
			ctxErr = err
		}
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	if avg != 0 {
		t.Fatalf("context-polled translation path allocates: %.1f allocs per 20k cycles, want 0", avg)
	}
}

// BenchmarkAccessL2 measures steady-state simulation throughput of the
// full translation critical path, in wall time per simulated cycle.
func BenchmarkAccessL2(b *testing.B) {
	s, limit := allocTestSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	*limit += engine.Cycle(b.N)
	s.eng.RunUntil(*limit)
}
