package system

import (
	"nocstar/internal/energy"
	"nocstar/internal/metrics"
	"nocstar/internal/noc"
	"nocstar/internal/ptw"
	"nocstar/internal/stats"
)

// AppResult is one application's outcome within a run.
type AppResult struct {
	Name         string
	Instructions uint64
	// FinishCycle is when the app's slowest thread retired its budget.
	FinishCycle uint64
	// IPC is aggregate instructions / finish cycles.
	IPC float64
}

// Result is the outcome of one simulated run.
type Result struct {
	Org Org

	// Cycles is the run's total simulated time (slowest thread).
	Cycles uint64
	// Instructions retired across all threads.
	Instructions uint64
	// IPC is aggregate Instructions/Cycles across the machine.
	IPC float64

	Apps []AppResult

	// Translation-path event counts.
	MemRefs     uint64
	L1Misses    uint64
	L2Accesses  uint64
	L2Hits      uint64
	L2Misses    uint64
	Walks       uint64
	LocalSlice  uint64 // L2 accesses that hit the local slice (no network)
	Prefetches  uint64
	Shootdowns  uint64 // invalidation messages delivered to slices
	StallCycles uint64 // total translation stall cycles across threads

	// AvgL2AccessCycles is the mean stall per L2 access (lookup +
	// network + queueing, excluding walks).
	AvgL2AccessCycles float64
	// AvgNetCycles is the mean network round-trip portion per remote
	// access.
	AvgNetCycles float64

	// Conc is the Fig. 5 histogram: concurrency observed at each shared
	// L2 access. SliceConc is the Fig. 6-right per-slice variant.
	Conc      stats.ConcurrencyHist
	SliceConc stats.ConcurrencyHist

	// Energy is the run's address-translation energy.
	Energy energy.Meter

	// Noc carries NOCSTAR fabric statistics (zero for other orgs).
	Noc noc.NocstarStats
	// PTW aggregates walker statistics across cores.
	PTW ptw.Stats

	// Metrics is the frozen registry snapshot: every named counter and
	// latency histogram the run observed, in stable sorted order.
	Metrics metrics.Snapshot
}

// L1MissRate is misses per memory reference.
func (r Result) L1MissRate() float64 {
	if r.MemRefs == 0 {
		return 0
	}
	return float64(r.L1Misses) / float64(r.MemRefs)
}

// L2MissRate is misses per L2 access.
func (r Result) L2MissRate() float64 {
	if r.L2Accesses == 0 {
		return 0
	}
	return float64(r.L2Misses) / float64(r.L2Accesses)
}

// MPKI is L2 TLB misses per kilo-instruction.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.L2Misses) / float64(r.Instructions)
}

// SpeedupOver returns this run's speedup relative to a baseline run of
// the same work (baseline cycles / these cycles).
func (r Result) SpeedupOver(baseline Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// ThroughputSpeedupOver returns aggregate-IPC speedup versus a baseline,
// the Fig. 18 "overall throughput" metric.
func (r Result) ThroughputSpeedupOver(baseline Result) float64 {
	if baseline.IPC == 0 {
		return 0
	}
	return r.IPC / baseline.IPC
}

// WorstAppSpeedupOver returns the minimum per-app IPC speedup versus the
// same app in the baseline run — Fig. 18's "minimum achieved speedup".
func (r Result) WorstAppSpeedupOver(baseline Result) float64 {
	worst := 0.0
	for i, a := range r.Apps {
		if i >= len(baseline.Apps) || baseline.Apps[i].IPC == 0 {
			continue
		}
		s := a.IPC / baseline.Apps[i].IPC
		if worst == 0 || s < worst {
			worst = s
		}
	}
	return worst
}

// MissesEliminatedVs reports the fraction of the baseline's L2 TLB misses
// this run avoids — the Fig. 2 metric (private vs shared).
func (r Result) MissesEliminatedVs(baseline Result) float64 {
	if baseline.L2Misses == 0 {
		return 0
	}
	// Normalize per instruction in case instruction counts differ.
	b := float64(baseline.L2Misses) / float64(baseline.Instructions)
	c := float64(r.L2Misses) / float64(r.Instructions)
	if c >= b {
		return 0
	}
	return (b - c) / b
}
