package system

// Partitioned parallel execution: the machine is split into one region
// per tile (core + its co-located shared-TLB slice), each region with its
// own engine, advanced by K worker goroutines under the conservative
// lookahead window of engine.Sharded. The region granularity is always
// per-tile regardless of K, so the per-region event streams — and the
// deterministic boundary merge of cross-region messages — are invariant
// in the worker count: a -shards=K run produces byte-identical Results to
// -shards=1.
//
// The partitioned model is a documented variant of the legacy
// single-engine model, not a bit-identical reimplementation:
//
//   - Remote slice lookups are message-passed: port arbitration and the
//     lookup happen when the request *arrives* at the home tile, not at
//     issue time (the legacy model resolved remote port contention with
//     requester-side foresight). Insert messages likewise land after a
//     mesh traversal instead of instantaneously.
//   - Each core's page walker sees a private 1/Cores partition of the
//     LLC instead of one shared array, so walk-latency interactions
//     between cores disappear.
//   - Demand paging uses vm.SetParallelSafe: frames are order-independent
//     hashes of the virtual page, not bump-allocated.
//   - The concurrency histogram observes per-region outstanding counts;
//     the slice-concurrency histogram brackets [arrival, lookup-done] at
//     the home tile.
//
// All of these are K-invariant by construction; determinism across K is
// pinned by TestShardedSystemIdentity and the cmd-level report matrix.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nocstar/internal/cache"
	"nocstar/internal/energy"
	"nocstar/internal/engine"
	"nocstar/internal/metrics"
	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/ptw"
	"nocstar/internal/sram"
	"nocstar/internal/stats"
	"nocstar/internal/tlb"
	"nocstar/internal/vm"
	"nocstar/internal/workload"
)

// shRegion is one tile's simulation region: a core, its slice of the
// shared TLB (distributed orgs), and everything the region's events may
// touch without synchronization. It implements engine.Actor for the
// region's typed events.
type shRegion struct {
	sys  *shSystem
	id   int
	eng  *engine.Engine
	core *core

	// Distributed orgs: this tile's shared-TLB slice and its port.
	slice         *tlb.TLB
	slicePortFree engine.Cycle
	sliceOut      int

	threads []*thread
	live    int // threads of this region still running (current phase)

	outstanding int
	conc        stats.ConcurrencyHist
	sliceConc   stats.ConcurrencyHist
	reg         *metrics.Registry
	m           sysMetrics
	meter       energy.Meter

	// Per-app accounting, folded at collect (the app structs themselves
	// are shared read-only between regions).
	appInstr  []uint64
	appFinish []engine.Cycle

	xfree *xact
}

// shSystem is one configured machine running on the partitioned engine.
type shSystem struct {
	cfg     Config
	geo     noc.Geometry
	topo    noc.Topology
	pl      *place.Table
	rng     *engine.Rand // globals (disturbances) only
	mesh    *noc.Mesh    // pure latency/hops calculator; never mutated
	sh      *engine.Sharded
	workers int
	window  engine.Cycle

	regions []*shRegion
	apps    []*app
	appMu   []sync.RWMutex // walk-vs-map exclusion per address space
	threads []*thread

	sliceLat     int
	measureStart engine.Cycle

	// insPool recycles cross-region insert messages. A sync.Pool is safe
	// here because only message *identity* is pooled; the simulation state
	// a message carries is deterministic regardless of which allocation
	// services it.
	insPool sync.Pool
}

// shIns is a cross-region translation-insert message.
type shIns struct {
	ctx  vm.ContextID
	vpn  uint64
	size vm.PageSize
	pfn  uint64
}

// shRegionWheel is the per-region timing-wheel span. Region events are
// short-range (thread slices, SRAM latencies, walk completions); the rare
// longer-range event rides the overflow heap.
const shRegionWheel = 256

// privateWindow is the lookahead window for organizations with no
// cross-region traffic at all (Private): only serialized globals
// interact across regions, so the window is limited only by how often
// the coordinator should rendezvous.
const privateWindow = 4096

// Shardable reports whether cfg can run on the partitioned parallel
// engine. Organizations with chip-global arbitration state (NOCSTAR's
// link arbiters, the monolithic banks) and checker-attached runs fall
// back to the legacy single-engine path.
func Shardable(cfg Config) bool {
	if cfg.Check != nil {
		return false
	}
	return cfg.Org == Private || cfg.Org == DistributedMesh
}

// RunSharded executes cfg on the partitioned engine with the given worker
// count (clamped to [1, Cores]). Results are byte-identical for every
// worker count; non-Shardable configs run on the legacy engine, where the
// worker count is irrelevant.
func RunSharded(cfg Config, shards int) (Result, error) {
	return RunShardedContext(context.Background(), cfg, shards)
}

// RunShardedContext is RunSharded under a context; cancellation is polled
// by the coordinator's barrier leader.
func RunShardedContext(ctx context.Context, cfg Config, shards int) (Result, error) {
	return runShardedObserved(ctx, cfg, shards, nil)
}

// RunShardedTraced is RunSharded with a per-region event-order observer:
// observe is invoked for every engine event of every region, with the
// region index and the event's (cycle, seq). Calls for different regions
// arrive concurrently from different workers; observe must partition its
// state by region. Non-Shardable configs return an error (the legacy
// path has RunTraced).
func RunShardedTraced(cfg Config, shards int, observe func(region int, cycle, seq uint64)) (Result, error) {
	ncfg, err := cfg.Normalized()
	if err != nil {
		return Result{}, err
	}
	if !Shardable(ncfg) {
		return Result{}, fmt.Errorf("system: org %v is not shardable; use RunTraced", ncfg.Org)
	}
	return runShardedObserved(context.Background(), cfg, shards, observe)
}

func runShardedObserved(ctx context.Context, cfg Config, shards int, observe func(region int, cycle, seq uint64)) (Result, error) {
	ncfg, err := cfg.Normalized()
	if err != nil {
		return Result{}, err
	}
	if !Shardable(ncfg) {
		return RunContext(ctx, cfg)
	}
	s := newShSystem(ncfg, shards)
	if observe != nil {
		for i, rg := range s.regions {
			i := i
			rg.eng.SetObserver(func(when engine.Cycle, seq uint64) {
				observe(i, uint64(when), seq)
			})
		}
	}
	return s.runCtx(ctx)
}

// newShSystem builds the partitioned machine. Construction is fully
// serial and ordered exactly like the legacy New: app and generator
// seeding draw from the same RNG stream in the same order.
func newShSystem(cfg Config, shards int) *shSystem {
	s := &shSystem{
		cfg:     cfg,
		geo:     noc.GridFor(cfg.Cores),
		rng:     engine.NewRand(cfg.Seed),
		workers: shards,
	}
	s.topo = noc.NewTopology(cfg.Topology, s.geo)
	s.pl = buildPlacement(cfg, s.topo)
	mc := noc.DefaultMeshConfig(s.geo)
	mc.Topology = s.topo
	s.mesh = noc.NewMesh(mc)
	s.sliceLat = sram.AccessCycles(cfg.L2EntriesPerCore)
	if cfg.Org == Private {
		s.window = privateWindow
	} else {
		// Every cross-region message covers at least Topology.MinHops()
		// hops, so MinCrossLatency is a sound conservative lookahead for
		// all four fabrics.
		s.window = engine.Cycle(s.mesh.MinCrossLatency())
	}
	s.insPool.New = func() any { return &shIns{} }

	// The chip-wide LLC is partitioned per tile so each walker hierarchy
	// is region-owned: same total capacity, no cross-region walk-latency
	// coupling.
	llcCfg := cache.LLCConfig()
	sets := llcCfg.Sets / cfg.Cores
	if sets < 1 {
		sets = 1
	}
	for sets&(sets-1) != 0 {
		sets &= sets - 1 // round down to a power of two
	}
	llcCfg.Sets = sets

	sizing := tlb.DefaultL1Sizing().Scale(cfg.L1Scale)
	napps := len(cfg.Apps)
	for i := 0; i < cfg.Cores; i++ {
		hier := cache.WalkerHierarchyWithLLC(cache.New(llcCfg))
		rg := &shRegion{
			sys: s,
			id:  i,
			eng: engine.NewSized(shRegionWheel),
			core: &core{
				id:     i,
				node:   noc.NodeID(i),
				l1:     tlb.NewL1Group(sizing),
				walker: ptw.New(cfg.PTW, hier),
				hier:   hier,
			},
			appInstr:  make([]uint64, napps),
			appFinish: make([]engine.Cycle, napps),
			reg:       metrics.NewRegistry(),
		}
		rg.m = newSysMetrics(rg.reg)
		switch cfg.Org {
		case Private:
			rg.core.privL2 = tlb.New(tlb.Config{
				Name:    fmt.Sprintf("privL2-%d", i),
				Entries: cfg.L2EntriesPerCore,
				Ways:    8,
				Sizes:   []vm.PageSize{vm.Page4K, vm.Page2M},
			})
		case DistributedMesh:
			rg.slice = tlb.New(tlb.Config{
				Name:       fmt.Sprintf("slice-%d", i),
				Entries:    cfg.L2EntriesPerCore,
				Ways:       8,
				Sizes:      []vm.PageSize{vm.Page4K, vm.Page2M},
				IndexHash:  true,
				MaxCtxWays: cfg.QoSMaxCtxWays,
			})
		}
		s.regions = append(s.regions, rg)
	}

	// Applications, address spaces, threads — legacy construction order,
	// with every address space switched to order-independent demand
	// mapping before any region can touch it.
	s.appMu = make([]sync.RWMutex, napps)
	nextCore := 0
	for ai := range cfg.Apps {
		acfg := cfg.Apps[ai]
		a := &app{
			cfg: acfg,
			idx: ai,
			as:  vm.NewAddressSpace(vm.ContextID(ai + 1)),
		}
		a.as.SetParallelSafe()
		a.regions = acfg.Spec.Regions(acfg.Threads)
		for _, r := range a.regions {
			limit := uint64(0)
			if cfg.THP {
				limit = uint64(float64(r.Span)*acfg.Spec.SuperpageFrac) / 512 * 512
			}
			a.superLimit = append(a.superLimit, limit)
		}
		s.apps = append(s.apps, a)

		for t := 0; t < acfg.Threads; t++ {
			rg := s.regions[nextCore%cfg.Cores]
			nextCore++
			refs := uint64(float64(cfg.InstrPerThread) * acfg.Spec.MemRefPerInstr)
			if refs == 0 {
				refs = 1
			}
			var stream workload.Stream
			if acfg.Streams != nil {
				stream = acfg.Streams[t]
			} else {
				stream = workload.NewGenerator(acfg.Spec, acfg.Threads, t, s.rng.Split())
			}
			th := &thread{
				app:          a,
				core:         rg.core,
				gen:          stream,
				refsTotal:    refs,
				refsLeft:     refs,
				cyclesPerRef: acfg.Spec.BaseCPI / acfg.Spec.MemRefPerInstr,
			}
			if bs, ok := stream.(workload.BatchStream); ok {
				th.batch = bs
				th.buf = make([]vm.VirtAddr, threadBatchSize)
			}
			s.threads = append(s.threads, th)
			rg.threads = append(rg.threads, th)
		}
	}
	for _, rg := range s.regions {
		rg.live = len(rg.threads)
	}
	return s
}

// region returns the region owning th.
func (s *shSystem) region(th *thread) *shRegion { return s.regions[th.core.id] }

func (s *shSystem) liveSum() int {
	n := 0
	for _, rg := range s.regions {
		n += rg.live
	}
	return n
}

func (s *shSystem) maxNow() engine.Cycle {
	var max engine.Cycle
	for _, rg := range s.regions {
		if now := rg.eng.Now(); now > max {
			max = now
		}
	}
	return max
}

// runCtx executes warmup (optionally) and the measured phase. Each phase
// gets a fresh coordinator over the same region engines; the window grid
// is anchored at cycle 0 either way, so phase boundaries are K-invariant.
func (s *shSystem) runCtx(ctx context.Context) (Result, error) {
	if s.cfg.WarmupInstr > 0 {
		for _, th := range s.threads {
			refs := uint64(float64(s.cfg.WarmupInstr) * th.app.cfg.Spec.MemRefPerInstr)
			if refs == 0 {
				refs = 1
			}
			th.refsTotal = refs
			th.refsLeft = refs
			rg := s.region(th)
			rg.eng.ScheduleAct(0, rg, shThreadLoop, th)
		}
		if err := s.runPhase(ctx, nil); err != nil {
			return Result{}, err
		}
		if live := s.liveSum(); live > 0 {
			return Result{}, fmt.Errorf("system: warmup exceeded %d cycles with %d threads live",
				maxCycles, live)
		}
		s.boundaryReset()
	}
	for _, th := range s.threads {
		rg := s.region(th)
		rg.eng.ScheduleAct(0, rg, shThreadLoop, th)
	}
	if err := s.runPhase(ctx, s.startDisturbances); err != nil {
		return Result{}, err
	}
	if live := s.liveSum(); live > 0 {
		return Result{}, fmt.Errorf("system: run exceeded %d cycles with %d threads live",
			maxCycles, live)
	}
	return s.collect(), nil
}

// runPhase drives one coordinator over the region engines to drain (or
// maxCycles). arm, when non-nil, schedules the phase's globals once the
// coordinator exists.
func (s *shSystem) runPhase(ctx context.Context, arm func()) error {
	engines := make([]*engine.Engine, len(s.regions))
	for i, rg := range s.regions {
		engines[i] = rg.eng
	}
	s.sh = engine.NewSharded(engines, s.workers, s.window)
	if ctx != nil && ctx.Done() != nil {
		s.sh.SetPoll(func() error {
			if err := ctx.Err(); err != nil {
				kind := ErrCanceled
				if errors.Is(err, context.DeadlineExceeded) {
					kind = ErrDeadlineExceeded
				}
				return fmt.Errorf("%w at cycle %d", kind, s.sh.T0())
			}
			return nil
		})
	}
	if arm != nil {
		arm()
	}
	return s.sh.Run(maxCycles)
}

// boundaryReset is the warmup→measurement boundary: zero every statistic,
// rearm the threads, keep all warm microarchitectural state. It runs
// single-threaded between phases.
func (s *shSystem) boundaryReset() {
	s.measureStart = s.maxNow()
	for _, rg := range s.regions {
		// The warmup drain leaves each region's clock at its own last event;
		// realign them all to the boundary so measured-phase cross-region
		// messages (stamped sender-now + mesh latency) can never land in a
		// faster region's past. The engines are empty here, which is
		// exactly when SetClock is legal.
		rg.eng.SetClock(engine.Clock{Now: s.measureStart, Seq: rg.eng.Clock().Seq})
		rg.eng.ResetProcessed()
		rg.reg.Reset()
		rg.conc = stats.ConcurrencyHist{}
		rg.sliceConc = stats.ConcurrencyHist{}
		rg.meter = energy.Meter{}
		rg.core.l1.ResetStats()
		rg.core.walker.ResetStats()
		rg.core.hier.ResetStats()
		if rg.core.privL2 != nil {
			rg.core.privL2.ResetStats()
		}
		if rg.slice != nil {
			rg.slice.ResetStats()
		}
		for i := range rg.appInstr {
			rg.appInstr[i] = 0
			rg.appFinish[i] = 0
		}
		rg.live = len(rg.threads)
	}
	for _, th := range s.threads {
		refs := uint64(float64(s.cfg.InstrPerThread) * th.app.cfg.Spec.MemRefPerInstr)
		if refs == 0 {
			refs = 1
		}
		th.refsTotal = refs
		th.refsLeft = refs
		th.carry = 0
		th.stall = 0
		th.finished = false
		th.bufPos, th.bufLen = 0, 0
	}
}

// collect assembles the Result by folding per-region state in region
// index order — the one fold order every worker count shares.
func (s *shSystem) collect() Result {
	r := Result{Org: s.cfg.Org}
	for ai, a := range s.apps {
		var instr uint64
		var finish engine.Cycle
		for _, rg := range s.regions {
			instr += rg.appInstr[ai]
			if rg.appFinish[ai] > finish {
				finish = rg.appFinish[ai]
			}
		}
		rel := engine.Cycle(0)
		if finish > s.measureStart {
			rel = finish - s.measureStart
		}
		ar := AppResult{
			Name:         a.cfg.Spec.Name,
			Instructions: instr,
			FinishCycle:  uint64(rel),
		}
		if rel > 0 {
			ar.IPC = float64(instr) / float64(rel)
		}
		r.Apps = append(r.Apps, ar)
		r.Instructions += instr
		if ar.FinishCycle > r.Cycles {
			r.Cycles = ar.FinishCycle
		}
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}

	merged := metrics.NewRegistry()
	m := newSysMetrics(merged)
	for _, rg := range s.regions {
		rg.collectLayer()
		merged.Merge(rg.reg)
	}
	if now := s.maxNow(); now > s.measureStart {
		m.engCycles.Add(uint64(now - s.measureStart))
	}

	r.MemRefs = m.memRefs.Value()
	r.L1Misses = m.l1Misses.Value()
	r.L2Accesses = m.l2Accesses.Value()
	r.L2Hits = m.l2Hits.Value()
	r.L2Misses = m.l2Misses.Value()
	r.Walks = m.walks.Value()
	r.LocalSlice = m.localSlice.Value()
	r.Prefetches = m.prefetches.Value()
	r.Shootdowns = m.shootdowns.Value()
	for _, th := range s.threads {
		r.StallCycles += th.stall
	}
	if m.hitLat.Count() > 0 {
		r.AvgL2AccessCycles = float64(m.hitLat.Sum()) / float64(m.hitLat.Count())
	}
	if remote := m.remote.Value(); remote > 0 {
		r.AvgNetCycles = float64(m.netLat.Sum()) / float64(remote)
	}
	for _, rg := range s.regions {
		r.Conc.Merge(&rg.conc)
		r.SliceConc.Merge(&rg.sliceConc)
		w := rg.core.walker.Stats()
		r.PTW.Walks += w.Walks
		r.PTW.TotalCycles += w.TotalCycles
		r.PTW.QueueCycles += w.QueueCycles
		r.PTW.PWCHits += w.PWCHits
		r.PTW.LeafFromLLCOrMem += w.LeafFromLLCOrMem
		for i := range w.MemRefsByLevel {
			r.PTW.MemRefsByLevel[i] += w.MemRefsByLevel[i]
		}
	}

	var meter energy.Meter
	for _, rg := range s.regions {
		meter.NetworkPJ += rg.meter.NetworkPJ
	}
	meter.AddL1Lookups(r.MemRefs)
	meter.AddL2Lookups(r.L2Accesses, s.cfg.L2EntriesPerCore)
	meter.AddWalkRefs(r.PTW.MemRefsByLevel)
	meter.AddStatic(r.Cycles, s.cfg.Cores*(s.cfg.L2EntriesPerCore+100))
	r.Energy = meter

	r.Metrics = merged.Snapshot()
	return r
}

// collectLayer folds the region's engine, walker, and cache accounting
// into its registry, once, after the run drains.
func (rg *shRegion) collectLayer() {
	rg.m.engEvents.Add(rg.eng.Processed())
	w := rg.core.walker.Stats()
	rg.m.ptwQueue.Add(w.QueueCycles)
	rg.m.ptwPWCHits.Add(w.PWCHits)
	rg.m.ptwLeafLLC.Add(w.LeafFromLLCOrMem)
	acc, _, fills := rg.core.hier.Stats()
	rg.m.cacheAccess.Add(acc)
	rg.m.cacheMemFill.Add(fills)
}

// ---------------------------------------------------------------------
// Disturbances. All disturbance machinery runs as coordinator globals:
// serialized, with every worker parked, free to read and mutate any
// region. Port charges use the global's scheduled cycle as "now", since
// region clocks are only guaranteed to have reached that cycle.

// startDisturbances arms the measured phase's globals. Intervals are
// anchored at the measurement start so warmed and cold runs agree.
func (s *shSystem) startDisturbances() {
	base := s.measureStart
	if s.cfg.ShootdownInterval > 0 {
		when := base + engine.Cycle(s.cfg.ShootdownInterval)
		s.sh.ScheduleGlobal(when, func() { s.shootdownTick(when) })
	}
	if s.cfg.Storm != nil {
		st := &storm{
			as:   vm.NewAddressSpace(vm.ContextID(len(s.apps) + 1)),
			base: 0x7000_0000_0000,
		}
		st.regions = s.cfg.Storm.Pages / 512
		if st.regions == 0 {
			st.regions = 1
		}
		st.promoted = make([]bool, st.regions)
		if s.cfg.Storm.PromoteDemoteInterval > 0 {
			when := base + engine.Cycle(s.cfg.Storm.PromoteDemoteInterval)
			s.sh.ScheduleGlobal(when, func() { s.stormPromoteDemote(st, when) })
		}
		if s.cfg.Storm.ContextSwitchInterval > 0 {
			when := base + engine.Cycle(s.cfg.Storm.ContextSwitchInterval)
			s.sh.ScheduleGlobal(when, func() { s.stormContextSwitch(when) })
		}
	}
}

// shootdownTick mirrors the legacy generator: remap one random hot page,
// broadcast the invalidation, re-arm while any thread is live.
func (s *shSystem) shootdownTick(now engine.Cycle) {
	if s.liveSum() == 0 {
		return
	}
	a := s.apps[s.rng.Intn(len(s.apps))]
	reg := a.regions[0]
	idx := s.rng.Uint64n(reg.Pages)
	va := reg.Base + vm.VirtAddr(workload.PageSlot(idx, reg.Pages)*vm.Page4K.Bytes())
	s.ensureMapped(a, va)
	_, size, ok := s.translate(a, va)
	if ok {
		s.deliverInvalidations(now, []vm.Invalidation{
			{Ctx: a.as.Ctx, VPN: va.VPN(size), Size: size},
		})
	}
	next := now + engine.Cycle(s.cfg.ShootdownInterval)
	s.sh.ScheduleGlobal(next, func() { s.shootdownTick(next) })
}

// stormPromoteDemote mirrors the legacy storm: promote or demote the next
// 2 MB region, synchronously waiting out the invalidation burst.
func (s *shSystem) stormPromoteDemote(st *storm, now engine.Cycle) {
	if s.liveSum() == 0 {
		return
	}
	idx := st.next % st.regions
	st.next++
	base := st.base + vm.VirtAddr(idx*vm.Page2M.Bytes())
	var invs []vm.Invalidation
	if !st.promoted[idx] {
		for i := uint64(0); i < 512; i++ {
			st.as.EnsureMapped(base+vm.VirtAddr(i*vm.Page4K.Bytes()), vm.Page4K)
		}
		if got, err := st.as.Promote2M(base); err == nil {
			invs = got
			st.promoted[idx] = true
		}
	} else {
		if got, err := st.as.Demote2M(base); err == nil {
			invs = got
			st.promoted[idx] = false
		}
	}
	horizon := s.deliverInvalidations(now, invs)
	next := engine.Cycle(s.cfg.Storm.PromoteDemoteInterval)
	if wait := horizon - now; wait > next {
		next = wait + engine.Cycle(s.cfg.Storm.PromoteDemoteInterval)/4
	}
	at := now + next
	s.sh.ScheduleGlobal(at, func() { s.stormPromoteDemote(st, at) })
}

// stormContextSwitch flushes all TLB state chip-wide, as the legacy
// version does.
func (s *shSystem) stormContextSwitch(now engine.Cycle) {
	if s.liveSum() == 0 {
		return
	}
	for _, rg := range s.regions {
		rg.core.l1.Flush()
		rg.core.walker.InvalidatePWC()
		if rg.core.privL2 != nil {
			rg.core.privL2.Flush()
			s.chargePrivPort(rg, 4, now)
		}
		if rg.slice != nil {
			rg.slice.Flush()
			s.chargeSlicePort(rg.id, 4, now)
		}
	}
	next := now + engine.Cycle(s.cfg.Storm.ContextSwitchInterval)
	s.sh.ScheduleGlobal(next, func() { s.stormContextSwitch(next) })
}

// deliverInvalidations is the sharded twin of the legacy shootdown
// delivery: L1/PWC scrub everywhere, relayed messages charged to the
// owning slice or private-TLB ports (coalesced to at most a set scrub),
// returning the latest busy horizon. Burst statistics land in region 0's
// registry — an arbitrary but fixed choice; folds are sums.
func (s *shSystem) deliverInvalidations(now engine.Cycle, invs []vm.Invalidation) engine.Cycle {
	if len(invs) == 0 {
		return now
	}
	m := &s.regions[0].m
	m.invLat.Observe(uint64(len(invs)))

	senders := s.cfg.Cores
	if s.cfg.InvLeaders > 0 && s.cfg.InvLeaders < s.cfg.Cores {
		senders = s.cfg.InvLeaders
		group := (s.cfg.Cores + senders - 1) / senders
		for l := 0; l < s.cfg.Cores; l += group {
			if s.cfg.Org == DistributedMesh {
				s.chargeSlicePort(l, group, now)
			}
		}
	}

	sliceCharges := map[int]int{}
	privCharges := 0
	for _, inv := range invs {
		for _, rg := range s.regions {
			rg.core.l1.Apply(inv)
			rg.core.walker.InvalidatePWC()
		}
		switch s.cfg.Org {
		case DistributedMesh:
			if inv.FullFlush {
				for _, rg := range s.regions {
					rg.slice.Apply(inv)
					sliceCharges[rg.id]++
				}
				m.shootdowns.Add(uint64(len(s.regions)))
				continue
			}
			home := s.homeSliceSh(vm.VirtAddr(inv.VPN << inv.Size.Shift()))
			s.regions[home].slice.Apply(inv)
			sliceCharges[home] += senders
			m.shootdowns.Add(uint64(senders))
		default: // Private
			for _, rg := range s.regions {
				rg.core.privL2.Apply(inv)
			}
			privCharges++
			m.shootdowns.Inc()
		}
	}

	horizon := now
	for slice, n := range sliceCharges {
		rg := s.regions[slice]
		cap := rg.slice.Sets() + senders
		if n > cap {
			n = cap
		}
		s.chargeSlicePort(slice, n, now)
		if rg.slicePortFree > horizon {
			horizon = rg.slicePortFree
		}
	}
	if privCharges > 0 {
		n := privCharges
		if cap := s.regions[0].core.privL2.Sets() + 1; n > cap {
			n = cap
		}
		for _, rg := range s.regions {
			s.chargePrivPort(rg, n, now)
			if rg.core.privPortFree > horizon {
				horizon = rg.core.privPortFree
			}
		}
	}
	return horizon
}

// chargeSlicePort makes a slice's port busy for n extra cycles from now.
func (s *shSystem) chargeSlicePort(slice, n int, now engine.Cycle) {
	rg := s.regions[slice]
	if rg.slicePortFree < now {
		rg.slicePortFree = now
	}
	rg.slicePortFree += engine.Cycle(n)
}

// chargePrivPort makes a core's private L2 TLB port busy for n cycles.
func (s *shSystem) chargePrivPort(rg *shRegion, n int, now engine.Cycle) {
	if rg.core.privPortFree < now {
		rg.core.privPortFree = now
	}
	rg.core.privPortFree += engine.Cycle(n)
}

// ---------------------------------------------------------------------
// Shared virtual-memory access. Page tables are in parallel-safe mode
// (order-independent frames, pure walks); an RWMutex per address space
// excludes Map from concurrent walks.

// ensureMapped demand-maps va for a, first probing under the read lock —
// pages never become unmapped during a run, so a positive probe is
// final and the write lock is only taken on the miss path.
func (s *shSystem) ensureMapped(a *app, va vm.VirtAddr) {
	mu := &s.appMu[a.idx]
	mu.RLock()
	_, _, ok := a.as.Translate(va)
	mu.RUnlock()
	if ok {
		return
	}
	mu.Lock()
	a.as.EnsureMapped(va, a.mapSize(va, s.cfg.THP))
	if _, _, ok := a.as.Translate(va); !ok {
		a.as.EnsureMapped(va, vm.Page4K)
	}
	mu.Unlock()
}

// translate walks a's page table under the read lock.
func (s *shSystem) translate(a *app, va vm.VirtAddr) (vm.PhysAddr, vm.PageSize, bool) {
	mu := &s.appMu[a.idx]
	mu.RLock()
	pa, size, ok := a.as.Translate(va)
	mu.RUnlock()
	return pa, size, ok
}

// sliceForSh mirrors the legacy sliceFor (hammer redirection included).
func (s *shSystem) sliceForSh(th *thread, va vm.VirtAddr) int {
	if th != nil && th.app.cfg.HammerSlice >= 0 {
		return th.app.cfg.HammerSlice % s.cfg.Cores
	}
	return s.homeSliceSh(va)
}

// homeSliceSh is the home-slice hash (identical to the legacy mapping):
// address hash to a logical slice, placement table to a physical tile.
func (s *shSystem) homeSliceSh(va vm.VirtAddr) int {
	return s.pl.Slice(int(mix(uint64(va)>>21) % uint64(s.cfg.Cores)))
}

func (s *shSystem) getIns() *shIns  { return s.insPool.Get().(*shIns) }
func (s *shSystem) putIns(m *shIns) { s.insPool.Put(m) }
