package system

import (
	"context"
	"errors"
	"fmt"

	"nocstar/internal/engine"
)

// Typed run-termination errors. RunContext maps the context package's
// sentinel errors onto these so callers (and the HTTP service layer) can
// distinguish an operator cancellation from an expired deadline with
// errors.Is, without string matching.
var (
	// ErrCanceled reports a run stopped because its context was canceled.
	ErrCanceled = errors.New("system: run canceled")
	// ErrDeadlineExceeded reports a run stopped because its context's
	// deadline passed.
	ErrDeadlineExceeded = errors.New("system: run deadline exceeded")
)

// ctxPollStride is the simulated-cycle stride between context polls.
// Polling sits entirely outside the event loop — the engine runs whole
// strides at a time — so the translation critical path stays
// allocation-free and branch-identical whether or not a cancellable
// context is attached; the alloc-regression gate pins this. One stride
// is a tiny fraction of any real run (full runs simulate millions of
// cycles), so cancellation latency is dominated by the wall-clock cost
// of one stride: microseconds.
const ctxPollStride = 1 << 16

// RunContext executes one configured simulation to completion under ctx.
// Cancellation is polled every ctxPollStride simulated cycles; a
// canceled or deadlined run returns a zero Result and an error matching
// ErrCanceled or ErrDeadlineExceeded. A background-like context (one
// whose Done channel is nil) skips polling entirely and is equivalent to
// Run.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.runCtx(ctx)
}

// ctxError maps a context error onto the run's typed sentinel, stamped
// with the cycle the simulation stopped at.
func (s *System) ctxError(err error) error {
	kind := ErrCanceled
	if errors.Is(err, context.DeadlineExceeded) {
		kind = ErrDeadlineExceeded
	}
	return fmt.Errorf("%w at cycle %d", kind, s.eng.Now())
}

// advanceCtx drives the engine until hard, polling ctx between
// ctxPollStride-cycle strides. It returns nil when the engine drains or
// reaches hard, and the typed cancellation error otherwise.
func (s *System) advanceCtx(ctx context.Context, hard engine.Cycle) error {
	if ctx == nil || ctx.Done() == nil {
		s.eng.RunUntil(hard)
		return nil
	}
	limit := s.eng.Now()
	for s.eng.Pending() > 0 {
		if err := ctx.Err(); err != nil {
			return s.ctxError(err)
		}
		limit += ctxPollStride
		if limit >= hard {
			s.eng.RunUntil(hard)
			return nil
		}
		s.eng.RunUntil(limit)
	}
	return nil
}
