package system

import (
	"fmt"
	"strings"

	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/ptw"
)

// FieldError names one invalid Config field. Field uses Go selector
// syntax rooted at Config ("Cores", "Apps[1].Threads", "PTW.FixedLatency")
// so API clients can map it back onto the document they submitted.
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

// Error implements error.
func (e FieldError) Error() string { return e.Field + ": " + e.Msg }

// ValidationError is the typed list of everything wrong with a Config.
// Validate gathers every failure instead of stopping at the first, so a
// caller fixing a rejected config sees the full damage at once; the HTTP
// service layer maps it onto a 400 response with per-field messages.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

// Error implements error.
func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "system: invalid config: " + strings.Join(msgs, "; ")
}

// Validate checks cfg without running it, returning nil or a
// *ValidationError listing every invalid field. Zero values that
// Normalized fills with defaults (SMT, L1Scale, Banks, ...) are valid;
// negative values, unknown enum values, impossible thread placements and
// missing required fields are not. Run and New validate implicitly —
// this is the front door for callers (drivers, the HTTP service) that
// want typed, field-level errors before committing to a simulation.
func (c Config) Validate() error {
	var fields []FieldError
	add := func(field, format string, args ...any) {
		fields = append(fields, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	if c.Org < Private || c.Org > IdealShared {
		add("Org", "unknown organization %d", int(c.Org))
	}
	if c.Cores <= 0 {
		add("Cores", "must be positive, got %d", c.Cores)
	}
	if c.SMT < 0 {
		add("SMT", "must be 0 (default 1) or positive, got %d", c.SMT)
	}
	if c.L1Scale < 0 {
		add("L1Scale", "must be 0 (default 1.0) or positive, got %g", c.L1Scale)
	}
	if c.L2EntriesPerCore < 0 {
		add("L2EntriesPerCore", "must be 0 (default) or positive, got %d", c.L2EntriesPerCore)
	}
	if c.Banks < 0 {
		add("Banks", "must be 0 (default) or positive, got %d", c.Banks)
	}
	if c.FixedAccessLatency < 0 {
		add("FixedAccessLatency", "must not be negative, got %d", c.FixedAccessLatency)
	}
	if c.Org == MonolithicFixed && c.FixedAccessLatency <= 0 {
		add("FixedAccessLatency", "required for the monolithic(fixed) organization")
	}
	if c.HPCmax < 0 {
		add("HPCmax", "must be 0 (default 16) or positive, got %d", c.HPCmax)
	}
	if c.Acquire != noc.OneWayAcquire && c.Acquire != noc.RoundTripAcquire {
		add("Acquire", "unknown acquire mode %d", int(c.Acquire))
	}
	if !c.Topology.Valid() {
		add("Topology", "unknown topology %d", int(c.Topology))
	} else if c.Topology != noc.TopoMesh {
		switch c.Org {
		case MonolithicMesh, DistributedMesh:
		default:
			add("Topology", "%v topology requires the monolithic(mesh) or distributed organization, got %v",
				c.Topology, c.Org)
		}
	}
	if !c.Placement.Valid() {
		add("Placement", "unknown placement strategy %d", int(c.Placement))
	} else if c.Placement != place.RowMajor {
		switch c.Org {
		case DistributedMesh, Nocstar, NocstarIdeal, IdealShared:
		default:
			add("Placement", "%v placement requires a sliced organization, got %v",
				c.Placement, c.Org)
		}
	}
	switch c.PTW.Mode {
	case ptw.Variable:
	case ptw.Fixed:
		if c.PTW.FixedLatency <= 0 {
			add("PTW.FixedLatency", "fixed PTW mode requires a positive latency, got %d", c.PTW.FixedLatency)
		}
	default:
		add("PTW.Mode", "unknown walk mode %d", int(c.PTW.Mode))
	}
	if c.PTW.FixedLatency < 0 && c.PTW.Mode != ptw.Fixed {
		add("PTW.FixedLatency", "must not be negative, got %d", c.PTW.FixedLatency)
	}
	if c.PTW.PWCEntries < 0 {
		add("PTW.PWCEntries", "must not be negative, got %d", c.PTW.PWCEntries)
	}
	if c.PTW.Overhead < 0 {
		add("PTW.Overhead", "must not be negative, got %d", c.PTW.Overhead)
	}
	if c.PTW.Walkers < 0 {
		add("PTW.Walkers", "must be 0 (default 2) or positive, got %d", c.PTW.Walkers)
	}
	if c.Policy != WalkAtRequester && c.Policy != WalkAtRemote {
		add("Policy", "unknown walk policy %d", int(c.Policy))
	}
	if c.PrefetchDegree < 0 {
		add("PrefetchDegree", "must not be negative, got %d", c.PrefetchDegree)
	}
	if c.InvLeaders < 0 {
		add("InvLeaders", "must not be negative, got %d", c.InvLeaders)
	}
	if c.QoSMaxCtxWays < 0 {
		add("QoSMaxCtxWays", "must not be negative, got %d", c.QoSMaxCtxWays)
	}

	if len(c.Apps) == 0 {
		add("Apps", "at least one App required")
	}
	threads := 0
	for i, a := range c.Apps {
		if a.Threads <= 0 {
			add(fmt.Sprintf("Apps[%d].Threads", i), "must be positive, got %d", a.Threads)
		}
		if a.Streams != nil && len(a.Streams) != a.Threads {
			add(fmt.Sprintf("Apps[%d].Streams", i), "%d streams for %d threads",
				len(a.Streams), a.Threads)
		}
		if a.HammerSlice < HammerNone {
			add(fmt.Sprintf("Apps[%d].HammerSlice", i),
				"must be HammerNone (-1) or a slice index, got %d", a.HammerSlice)
		}
		threads += a.Threads
	}
	smt := c.SMT
	if smt <= 0 {
		smt = 1
	}
	if c.Cores > 0 && len(c.Apps) > 0 && threads > c.Cores*smt {
		add("Apps", "%d threads exceed %d cores x %d SMT", threads, c.Cores, smt)
	}

	if len(fields) == 0 {
		return nil
	}
	return &ValidationError{Fields: fields}
}
