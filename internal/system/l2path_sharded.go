package system

// The sharded translation path. Each region's events run on its own
// engine; anything that crosses a region boundary travels as an
// engine.Sharded message timed with the real mesh latency, which is never
// below the lookahead window. The xact object itself migrates with its
// request — mutations are ordered by the window barriers — and always
// returns to (and is recycled by) the requester region's free list.

import (
	"nocstar/internal/energy"
	"nocstar/internal/engine"
	"nocstar/internal/noc"
	"nocstar/internal/tlb"
	"nocstar/internal/vm"
)

// Region operation codes (engine.Actor dispatch for shRegion).
const (
	shThreadLoop      uint8 = iota // run threadLoop(arg.(*thread))
	shAccessL2                     // start the L2 access path for an xact
	shHitDone                      // hit response at requester: end window, resume
	shMissBack                     // miss response at requester: end window, walk
	shLocalWalked                  // requester walk done: insert + resume
	shArrive                       // request arrived at the home slice
	shRemoteWalkStart              // home-side walk start (WalkAtRemote)
	shRemoteWalked                 // home-side walk done: insert + return result
	shEndResumeWalk                // remote-walked result at requester: resume
	shSliceEnd                     // home-side slice-concurrency window closes
	shInsert                       // cross-region translation insert arrived
)

// Act dispatches the region's typed events (engine.Actor).
func (rg *shRegion) Act(op uint8, arg any) {
	switch op {
	case shThreadLoop:
		rg.threadLoop(arg.(*thread))
		return
	case shSliceEnd:
		rg.sliceOut--
		return
	case shInsert:
		m := arg.(*shIns)
		rg.slice.Insert(m.ctx, m.vpn, m.size, m.pfn)
		rg.sys.putIns(m)
		return
	}
	x := arg.(*xact)
	switch op {
	case shAccessL2:
		rg.accessL2(x)
	case shHitDone:
		rg.endAccess(x)
		th := x.th
		e := x.entry
		th.core.l1.Insert(th.app.as.Ctx, e.VPN, e.Size, e.PFN)
		rg.finish(x)
	case shMissBack:
		rg.endAccess(x)
		rg.scheduleWalk(x, shLocalWalked)
	case shLocalWalked:
		rg.localWalked(x)
	case shArrive:
		rg.arrive(x)
	case shRemoteWalkStart:
		rg.core.hier.Pollute(pollutionLines)
		rg.scheduleWalk(x, shRemoteWalked)
	case shRemoteWalked:
		rg.remoteWalked(x)
	case shEndResumeWalk:
		rg.endAccess(x)
		rg.resumeWithWalk(x)
	default:
		panic("system: unknown sharded op")
	}
}

// getXact / putXact: the region-local transaction free list.
func (rg *shRegion) getXact() *xact {
	x := rg.xfree
	if x == nil {
		return &xact{}
	}
	rg.xfree = x.next
	*x = xact{}
	return x
}

func (rg *shRegion) putXact(x *xact) {
	*x = xact{next: rg.xfree}
	rg.xfree = x
}

// threadLoop is the legacy loop against region-local engine and metrics.
func (rg *shRegion) threadLoop(th *thread) {
	if th.finished {
		return
	}
	ctx := th.app.as.Ctx
	carry := th.carry
	budget := maxRefsPerSlice
	for th.refsLeft > 0 {
		if budget <= 0 {
			if whole := engine.Cycle(carry); whole > 0 {
				th.carry = carry - float64(whole)
				rg.eng.ScheduleAct(whole, rg, shThreadLoop, th)
				return
			}
			budget = maxRefsPerSlice
		}
		budget--
		carry += th.cyclesPerRef
		var va vm.VirtAddr
		if th.batch != nil {
			if th.bufPos == th.bufLen {
				n := len(th.buf)
				if th.refsLeft < uint64(n) {
					n = int(th.refsLeft)
				}
				th.batch.NextBatch(th.buf[:n])
				th.bufPos, th.bufLen = 0, n
			}
			va = th.buf[th.bufPos]
			th.bufPos++
		} else {
			va = th.gen.Next()
		}
		th.refsLeft--
		rg.m.memRefs.Inc()
		if _, ok := th.core.l1.Lookup(ctx, va); ok {
			continue
		}
		rg.m.l1Misses.Inc()
		whole := engine.Cycle(carry)
		th.carry = carry - float64(whole)
		x := rg.getXact()
		x.th = th
		x.va = va
		rg.eng.ScheduleAct(whole, rg, shAccessL2, x)
		return
	}
	th.carry = carry
	rg.finishThread(th, rg.eng.Now()+engine.Cycle(carry))
}

// finishThread retires a thread into the region's per-app accounting.
func (rg *shRegion) finishThread(th *thread, at engine.Cycle) {
	th.finished = true
	rg.live--
	ai := th.app.idx
	rg.appInstr[ai] += rg.sys.cfg.InstrPerThread
	if at > rg.appFinish[ai] {
		rg.appFinish[ai] = at
	}
}

// finish releases the thread after its translation resolves.
func (rg *shRegion) finish(x *xact) {
	th := x.th
	th.stall += uint64(rg.eng.Now() - x.start)
	rg.putXact(x)
	rg.threadLoop(th)
}

// endAccess closes the outstanding-access window on the requester; the
// slice-concurrency window closes at the home tile (which is this region
// exactly when the access was slice-local).
func (rg *shRegion) endAccess(x *xact) {
	rg.outstanding--
	if x.slice == rg.id {
		rg.sliceOut--
	}
}

func (rg *shRegion) resumeWithWalk(x *xact) {
	th := x.th
	size := x.res.Size
	th.core.l1.Insert(th.app.as.Ctx, x.va.VPN(size), size, uint64(x.res.PA)>>size.Shift())
	rg.finish(x)
}

// accessL2 opens the L2 access window on the requester region.
func (rg *shRegion) accessL2(x *xact) {
	s := rg.sys
	s.ensureMapped(x.th.app, x.va)
	x.start = rg.eng.Now()
	rg.m.l2Accesses.Inc()
	rg.outstanding++
	rg.conc.Observe(rg.outstanding)
	if s.cfg.Org == Private {
		rg.privateAccess(x)
		return
	}
	rg.distAccess(x)
}

// privateAccess is the Private baseline: entirely region-local.
func (rg *shRegion) privateAccess(x *xact) {
	th := x.th
	c := rg.core
	x.slice = -1
	avail := x.start
	if c.privPortFree > avail {
		avail = c.privPortFree
	}
	c.privPortFree = avail + 1
	lookupDone := avail + engine.Cycle(rg.sys.sliceLat)

	e, hit := c.privL2.Lookup(th.app.as.Ctx, x.va)
	if hit {
		rg.m.l2Hits.Inc()
		rg.m.hitLat.Observe(uint64(lookupDone - x.start))
		x.entry = e
		rg.eng.AtAct(lookupDone, rg, shHitDone, x)
		return
	}
	rg.m.l2Misses.Inc()
	rg.eng.AtAct(lookupDone, rg, shMissBack, x)
}

// distAccess issues a distributed-slice access. Slice-local requests run
// inline; remote requests become a cross-region message landing at the
// home tile after the mesh's one-way latency (which is the lookahead
// bound, so the send is always legal).
func (rg *shRegion) distAccess(x *xact) {
	s := rg.sys
	th := x.th
	slice := s.sliceForSh(th, x.va)
	x.slice = slice
	x.src = th.core.node
	x.dst = noc.NodeID(slice)

	if slice == rg.id {
		rg.m.localSlice.Inc()
		rg.sliceBegin()
		doneAt, e, hit := rg.sliceLookup(th.app, x.va, x.start)
		if hit {
			rg.m.l2Hits.Inc()
			rg.m.hitLat.Observe(uint64(doneAt - x.start))
			x.entry = e
			rg.eng.AtAct(doneAt, rg, shHitDone, x)
			return
		}
		rg.m.l2Misses.Inc()
		rg.eng.AtAct(doneAt, rg, shMissBack, x)
		return
	}

	hops := s.topo.Hops(x.src, x.dst)
	x.hops = hops
	x.oneWay = s.mesh.LatencyForHops(hops)
	rg.meter.AddMessage(energy.DistributedMessage(2*hops, 0))
	rg.m.netLat.Observe(uint64(2 * x.oneWay))
	rg.m.remote.Inc()
	arrive := x.start + engine.Cycle(x.oneWay)
	s.sh.Send(rg.id, slice, arrive, s.regions[slice], shArrive, x)
}

// arrive serves a remote request at the home tile: port arbitration and
// the slice lookup happen at arrival time.
func (rg *shRegion) arrive(x *xact) {
	s := rg.sys
	rg.sliceBegin()
	doneAt, e, hit := rg.sliceLookup(x.th.app, x.va, rg.eng.Now())
	rg.eng.AtAct(doneAt, rg, shSliceEnd, nil)
	src := int(x.src)
	if hit {
		rg.m.l2Hits.Inc()
		resume := doneAt + engine.Cycle(x.oneWay)
		rg.m.hitLat.Observe(uint64(resume - x.start))
		x.entry = e
		s.sh.Send(rg.id, src, resume, s.regions[src], shHitDone, x)
		return
	}
	rg.m.l2Misses.Inc()
	if s.cfg.Policy == WalkAtRemote {
		rg.eng.AtAct(doneAt, rg, shRemoteWalkStart, x)
		return
	}
	backAt := doneAt + engine.Cycle(x.oneWay)
	s.sh.Send(rg.id, src, backAt, s.regions[src], shMissBack, x)
}

// sliceLookup models the home tile's pipelined slice array.
func (rg *shRegion) sliceLookup(a *app, va vm.VirtAddr, earliest engine.Cycle) (doneAt engine.Cycle, e tlb.Entry, hit bool) {
	avail := earliest
	if rg.slicePortFree > avail {
		avail = rg.slicePortFree
	}
	rg.slicePortFree = avail + 1
	e, hit = rg.slice.Lookup(a.as.Ctx, va)
	return avail + engine.Cycle(rg.sys.sliceLat), e, hit
}

// sliceBegin opens the home tile's slice-concurrency window. For
// slice-local accesses endAccess closes it; for remote accesses a
// shSliceEnd event at lookup completion does.
func (rg *shRegion) sliceBegin() {
	rg.sliceOut++
	rg.sliceConc.Observe(rg.sliceOut)
}

// scheduleWalk runs a page-table walk on this region's walker, under the
// address space's read lock (walker-local state is region-owned; only
// the page-table read needs exclusion against concurrent Maps).
func (rg *shRegion) scheduleWalk(x *xact, op uint8) {
	s := rg.sys
	a := x.th.app
	mu := &s.appMu[a.idx]
	mu.RLock()
	lat, res, ok := rg.core.walker.Walk(rg.eng.Now(), a.as, x.va)
	mu.RUnlock()
	if !ok {
		panic("system: walk of unmapped address (ensureMapped missing)")
	}
	rg.m.walks.Inc()
	rg.m.walkLat.Observe(uint64(lat))
	x.res = res
	rg.eng.ScheduleAct(engine.Cycle(lat), rg, op, x)
}

// localWalked completes a requester-side walk: install the translation
// (shipping cross-region inserts as messages), charge the insert
// message, resume the thread.
func (rg *shRegion) localWalked(x *xact) {
	slice := x.slice
	if slice < 0 {
		slice = 0
	}
	rg.insertTranslation(x.th, x.va, x.res, slice)
	if rg.sys.cfg.Org == DistributedMesh && x.src != x.dst {
		rg.meter.AddMessage(energy.DistributedMessage(x.hops, 0))
	}
	rg.resumeWithWalk(x)
}

// remoteWalked completes a home-side walk (WalkAtRemote): install here,
// carry the result back to the requester.
func (rg *shRegion) remoteWalked(x *xact) {
	rg.insertTranslation(x.th, x.va, x.res, x.slice)
	src := int(x.src)
	back := rg.eng.Now() + engine.Cycle(x.oneWay)
	rg.sys.sh.Send(rg.id, src, back, rg.sys.regions[src], shEndResumeWalk, x)
}

// insertTranslation installs a walked translation plus its prefetch
// neighbours. Inserts owned by this region are immediate; foreign slices
// receive an insert message after the mesh's one-way latency (the legacy
// model installed them instantaneously — the message-passed variant is
// the more physical one, and K-invariant).
func (rg *shRegion) insertTranslation(th *thread, va vm.VirtAddr, res vm.WalkResult, slice int) {
	s := rg.sys
	a := th.app
	size := res.Size
	vpn := va.VPN(size)
	rg.insertOne(a, vpn, size, uint64(res.PA)>>size.Shift(), slice)

	for k := 1; k <= s.cfg.PrefetchDegree; k++ {
		for _, d := range [2]int64{int64(k), -int64(k)} {
			nvpn := uint64(int64(vpn) + d)
			nva := vm.VirtAddr(nvpn << size.Shift())
			s.ensureMapped(a, nva)
			pa, nsize, ok := s.translate(a, nva)
			if !ok || nsize != size {
				continue
			}
			ns := slice
			if s.cfg.Org != Private {
				ns = s.sliceForSh(th, nva)
			}
			rg.insertOne(a, nvpn, size, uint64(pa)>>size.Shift(), ns)
			rg.m.prefetches.Inc()
		}
	}
}

// insertOne installs one translation into the L2 store. For the Private
// organization every walk runs on the owning thread's region, so the
// region's core is the thread's core.
func (rg *shRegion) insertOne(a *app, vpn uint64, size vm.PageSize, pfn uint64, slice int) {
	s := rg.sys
	if s.cfg.Org == Private {
		rg.core.privL2.Insert(a.as.Ctx, vpn, size, pfn)
		return
	}
	if slice == rg.id {
		rg.slice.Insert(a.as.Ctx, vpn, size, pfn)
		return
	}
	m := s.getIns()
	m.ctx = a.as.Ctx
	m.vpn = vpn
	m.size = size
	m.pfn = pfn
	hops := s.topo.Hops(noc.NodeID(rg.id), noc.NodeID(slice))
	when := rg.eng.Now() + engine.Cycle(s.mesh.LatencyForHops(hops))
	s.sh.Send(rg.id, slice, when, s.regions[slice], shInsert, m)
}
