// Canonical, schema-versioned JSON encoding of Config.
//
// The canonical form is the service layer's wire format and the cache /
// singleflight key: one stable field order (struct declaration order),
// every default made explicit (the config is Normalized before
// encoding), enums spelled as names, and no insignificant whitespace —
// so two Configs that simulate identically encode identically, byte for
// byte. A golden test pins the encoding; ConfigSchemaVersion gates
// breaking layout changes the same way the -report document's schema
// field does.

package system

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/ptw"
	"nocstar/internal/workload"
)

// ConfigSchemaVersion identifies the canonical Config JSON layout. Bump
// it on any breaking change to the document structure; decoding rejects
// documents stamped with a newer version than it understands.
//
// v2 added warmup_instr.
// v3 added topology, placement, placement_seed.
const ConfigSchemaVersion = 3

// orgTokens are the stable wire names of the organizations.
var orgTokens = map[Org]string{
	Private:         "private",
	MonolithicMesh:  "mono-mesh",
	MonolithicSMART: "mono-smart",
	MonolithicFixed: "mono-fixed",
	DistributedMesh: "distributed",
	Nocstar:         "nocstar",
	NocstarIdeal:    "nocstar-ideal",
	IdealShared:     "ideal",
}

// OrgTokens returns the wire names of every organization, sorted — the
// vocabulary POST /v1/runs accepts in the "org" field.
func OrgTokens() []string {
	out := make([]string, 0, len(orgTokens))
	for _, tok := range orgTokens {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// ParseOrg resolves a wire name back to an organization.
func ParseOrg(tok string) (Org, bool) {
	for o, t := range orgTokens {
		if t == tok {
			return o, true
		}
	}
	return 0, false
}

const (
	acquireOneWayToken    = "one-way"
	acquireRoundTripToken = "round-trip"
	policyRequestToken    = "request"
	policyRemoteToken     = "remote"
	ptwVariableToken      = "variable"
	ptwFixedToken         = "fixed"
)

// The wire mirror of Config. Field declaration order is the canonical
// field order — do not reorder without bumping ConfigSchemaVersion.
type configJSON struct {
	Schema                int        `json:"schema"`
	Org                   string     `json:"org"`
	Cores                 int        `json:"cores"`
	SMT                   int        `json:"smt"`
	L1Scale               float64    `json:"l1_scale"`
	L2EntriesPerCore      int        `json:"l2_entries_per_core"`
	Banks                 int        `json:"banks"`
	FixedAccessLatency    int        `json:"fixed_access_latency"`
	HPCmax                int        `json:"hpc_max"`
	Acquire               string     `json:"acquire"`
	Topology              string     `json:"topology"`
	Placement             string     `json:"placement"`
	PlacementSeed         int64      `json:"placement_seed"`
	PTW                   ptwJSON    `json:"ptw"`
	Policy                string     `json:"policy"`
	PrefetchDegree        int        `json:"prefetch_degree"`
	InvLeaders            int        `json:"inv_leaders"`
	THP                   bool       `json:"thp"`
	QoSMaxCtxWays         int        `json:"qos_max_ctx_ways"`
	NoSpeculativeResponse bool       `json:"no_speculative_response"`
	Apps                  []appJSON  `json:"apps"`
	InstrPerThread        uint64     `json:"instr_per_thread"`
	WarmupInstr           uint64     `json:"warmup_instr"`
	ShootdownInterval     uint64     `json:"shootdown_interval"`
	Storm                 *stormJSON `json:"storm,omitempty"`
	Seed                  int64      `json:"seed"`
}

type ptwJSON struct {
	Mode         string `json:"mode"`
	FixedLatency int    `json:"fixed_latency"`
	PWCEntries   int    `json:"pwc_entries"`
	Overhead     int    `json:"overhead"`
	Walkers      int    `json:"walkers"`
}

// appJSON carries either a full generative Spec or, on input only, the
// name of a suite workload as shorthand. HammerSlice is a pointer so an
// omitted field defaults to HammerNone rather than slice 0.
type appJSON struct {
	Workload    string    `json:"workload,omitempty"`
	Spec        *specJSON `json:"spec,omitempty"`
	Threads     int       `json:"threads"`
	HammerSlice *int      `json:"hammer_slice,omitempty"`
}

// specJSON mirrors workload.Spec field-for-field (conversion below
// depends on identical layout).
type specJSON struct {
	Name           string  `json:"name"`
	FootprintPages uint64  `json:"footprint_pages"`
	SharedFrac     float64 `json:"shared_frac"`
	HotFrac        float64 `json:"hot_frac"`
	HotProb        float64 `json:"hot_prob"`
	ZipfTheta      float64 `json:"zipf_theta"`
	RepeatProb     float64 `json:"repeat_prob"`
	MemRefPerInstr float64 `json:"mem_ref_per_instr"`
	BaseCPI        float64 `json:"base_cpi"`
	SuperpageFrac  float64 `json:"superpage_frac"`
}

type stormJSON struct {
	ContextSwitchInterval uint64 `json:"context_switch_interval"`
	PromoteDemoteInterval uint64 `json:"promote_demote_interval"`
	Pages                 uint64 `json:"pages"`
}

// MarshalCanonical returns the canonical JSON encoding of c. The config
// is Normalized first, so every default is explicit and two configs
// that would simulate identically produce identical bytes — the
// property the runner's singleflight key and the service's result cache
// rely on. Configs that carry live state (attached Checker, injected
// Streams) have no canonical encoding and return an error.
func (c Config) MarshalCanonical() ([]byte, error) {
	if c.Check != nil {
		return nil, fmt.Errorf("system: config with an attached Checker has no canonical encoding")
	}
	for i, a := range c.Apps {
		if a.Streams != nil {
			return nil, fmt.Errorf("system: app %d carries live address streams; no canonical encoding", i)
		}
	}
	n, err := c.Normalized()
	if err != nil {
		return nil, err
	}
	mode := ptwVariableToken
	if n.PTW.Mode == ptw.Fixed {
		mode = ptwFixedToken
	}
	acquire := acquireOneWayToken
	if n.Acquire == noc.RoundTripAcquire {
		acquire = acquireRoundTripToken
	}
	policy := policyRequestToken
	if n.Policy == WalkAtRemote {
		policy = policyRemoteToken
	}
	doc := configJSON{
		Schema:             ConfigSchemaVersion,
		Org:                orgTokens[n.Org],
		Cores:              n.Cores,
		SMT:                n.SMT,
		L1Scale:            n.L1Scale,
		L2EntriesPerCore:   n.L2EntriesPerCore,
		Banks:              n.Banks,
		FixedAccessLatency: n.FixedAccessLatency,
		HPCmax:             n.HPCmax,
		Acquire:            acquire,
		Topology:           n.Topology.String(),
		Placement:          n.Placement.String(),
		PlacementSeed:      n.PlacementSeed,
		PTW: ptwJSON{
			Mode:         mode,
			FixedLatency: n.PTW.FixedLatency,
			PWCEntries:   n.PTW.PWCEntries,
			Overhead:     n.PTW.Overhead,
			Walkers:      n.PTW.Walkers,
		},
		Policy:                policy,
		PrefetchDegree:        n.PrefetchDegree,
		InvLeaders:            n.InvLeaders,
		THP:                   n.THP,
		QoSMaxCtxWays:         n.QoSMaxCtxWays,
		NoSpeculativeResponse: n.NoSpeculativeResponse,
		InstrPerThread:        n.InstrPerThread,
		WarmupInstr:           n.WarmupInstr,
		ShootdownInterval:     n.ShootdownInterval,
		Seed:                  n.Seed,
	}
	for _, a := range n.Apps {
		spec := specJSON(a.Spec)
		hammer := a.HammerSlice
		doc.Apps = append(doc.Apps, appJSON{
			Spec:        &spec,
			Threads:     a.Threads,
			HammerSlice: &hammer,
		})
	}
	if n.Storm != nil {
		storm := stormJSON(*n.Storm)
		doc.Storm = &storm
	}
	return json.Marshal(doc)
}

// CanonicalHash returns the SHA-256 of the canonical encoding, hex
// encoded — the key the service's result cache and job singleflight use.
func (c Config) CanonicalHash() (string, error) {
	b, err := c.MarshalCanonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// UnmarshalConfig decodes a JSON config document — canonical output or
// hand-written input. Unknown fields are rejected (a typo'd knob must
// not silently simulate the default), omitted fields take the same
// defaults Normalized fills, enums are spelled as names, and an app may
// name a suite workload ("workload": "canneal") instead of carrying a
// full generative spec. The decoded Config is not yet validated; call
// Validate (or let Run do it) for typed field errors.
func UnmarshalConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc configJSON
	if err := dec.Decode(&doc); err != nil {
		return Config{}, fmt.Errorf("system: decoding config: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("system: trailing data after config document")
	}
	if doc.Schema > ConfigSchemaVersion {
		return Config{}, fmt.Errorf("system: config schema %d is newer than supported %d",
			doc.Schema, ConfigSchemaVersion)
	}
	cfg := Config{
		Cores:                 doc.Cores,
		SMT:                   doc.SMT,
		L1Scale:               doc.L1Scale,
		L2EntriesPerCore:      doc.L2EntriesPerCore,
		Banks:                 doc.Banks,
		FixedAccessLatency:    doc.FixedAccessLatency,
		HPCmax:                doc.HPCmax,
		PrefetchDegree:        doc.PrefetchDegree,
		InvLeaders:            doc.InvLeaders,
		THP:                   doc.THP,
		QoSMaxCtxWays:         doc.QoSMaxCtxWays,
		NoSpeculativeResponse: doc.NoSpeculativeResponse,
		InstrPerThread:        doc.InstrPerThread,
		WarmupInstr:           doc.WarmupInstr,
		ShootdownInterval:     doc.ShootdownInterval,
		Seed:                  doc.Seed,
	}
	if doc.Org != "" {
		org, ok := ParseOrg(doc.Org)
		if !ok {
			return Config{}, fmt.Errorf("system: unknown org %q (have %s)",
				doc.Org, strings.Join(OrgTokens(), ", "))
		}
		cfg.Org = org
	}
	switch doc.Acquire {
	case "", acquireOneWayToken:
	case acquireRoundTripToken:
		cfg.Acquire = noc.RoundTripAcquire
	default:
		return Config{}, fmt.Errorf("system: unknown acquire mode %q (have %s, %s)",
			doc.Acquire, acquireOneWayToken, acquireRoundTripToken)
	}
	if doc.Topology != "" {
		kind, ok := noc.ParseTopologyKind(doc.Topology)
		if !ok {
			return Config{}, fmt.Errorf("system: unknown topology %q (have %s)",
				doc.Topology, strings.Join(noc.TopologyTokens(), ", "))
		}
		cfg.Topology = kind
	}
	if doc.Placement != "" {
		strategy, ok := place.ParseStrategy(doc.Placement)
		if !ok {
			return Config{}, fmt.Errorf("system: unknown placement strategy %q (have %s)",
				doc.Placement, strings.Join(place.Tokens(), ", "))
		}
		cfg.Placement = strategy
	}
	cfg.PlacementSeed = doc.PlacementSeed
	switch doc.Policy {
	case "", policyRequestToken:
	case policyRemoteToken:
		cfg.Policy = WalkAtRemote
	default:
		return Config{}, fmt.Errorf("system: unknown walk policy %q (have %s, %s)",
			doc.Policy, policyRequestToken, policyRemoteToken)
	}
	cfg.PTW = ptw.Config{
		FixedLatency: doc.PTW.FixedLatency,
		PWCEntries:   doc.PTW.PWCEntries,
		Overhead:     doc.PTW.Overhead,
		Walkers:      doc.PTW.Walkers,
	}
	switch doc.PTW.Mode {
	case "", ptwVariableToken:
	case ptwFixedToken:
		cfg.PTW.Mode = ptw.Fixed
	default:
		return Config{}, fmt.Errorf("system: unknown PTW mode %q (have %s, %s)",
			doc.PTW.Mode, ptwVariableToken, ptwFixedToken)
	}
	for i, a := range doc.Apps {
		app := App{Threads: a.Threads, HammerSlice: HammerNone}
		if a.HammerSlice != nil {
			app.HammerSlice = *a.HammerSlice
		}
		switch {
		case a.Workload != "" && a.Spec != nil:
			return Config{}, fmt.Errorf("system: app %d names both a workload and a spec; pick one", i)
		case a.Workload != "":
			spec, ok := workload.ByName(a.Workload)
			if !ok {
				return Config{}, fmt.Errorf("system: app %d: unknown workload %q (have %s)",
					i, a.Workload, strings.Join(workload.Names(), ", "))
			}
			app.Spec = spec
		case a.Spec != nil:
			app.Spec = workload.Spec(*a.Spec)
		default:
			return Config{}, fmt.Errorf("system: app %d needs a workload name or a spec", i)
		}
		cfg.Apps = append(cfg.Apps, app)
	}
	if doc.Storm != nil {
		storm := StormConfig(*doc.Storm)
		cfg.Storm = &storm
	}
	return cfg, nil
}
