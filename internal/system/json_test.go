package system

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocstar/internal/noc"
	"nocstar/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/config.golden.json")

// goldenCfg exercises every canonical-encoding branch: explicit spec,
// non-default enums, a storm co-run, and a hammered slice.
func goldenCfg() Config {
	return Config{
		Org:            Nocstar,
		Cores:          32,
		Acquire:        noc.RoundTripAcquire,
		Policy:         WalkAtRemote,
		PrefetchDegree: 2,
		InvLeaders:     4,
		THP:            true,
		Apps: []App{
			{
				Spec: workload.Spec{
					Name:           "golden",
					FootprintPages: 1 << 18,
					SharedFrac:     0.4,
					HotFrac:        0.1,
					HotProb:        0.7,
					MemRefPerInstr: 0.35,
					BaseCPI:        1.1,
					SuperpageFrac:  0.3,
				},
				Threads:     24,
				HammerSlice: HammerNone,
			},
			{
				Spec: workload.Spec{
					Name:           "hammer",
					FootprintPages: 1 << 12,
					MemRefPerInstr: 0.5,
					BaseCPI:        1.0,
				},
				Threads:     8,
				HammerSlice: 5,
			},
		},
		InstrPerThread:    100_000,
		ShootdownInterval: 250_000,
		Storm: &StormConfig{
			ContextSwitchInterval: 1_000_000,
			PromoteDemoteInterval: 400_000,
			Pages:                 4096,
		},
		Seed: 7,
	}
}

// TestCanonicalGolden pins the canonical encoding byte-for-byte. If
// this test fails because the layout deliberately changed, bump
// ConfigSchemaVersion and regenerate with -update-golden.
func TestCanonicalGolden(t *testing.T) {
	got, err := goldenCfg().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "config.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical encoding drifted from golden.\n got: %s\nwant: %s\n"+
			"If the change is intentional, bump ConfigSchemaVersion and rerun with -update-golden.",
			got, want)
	}
}

// TestCanonicalDefaultsExplicit pins the property the cache key relies
// on: a config spelling defaults explicitly encodes identically to one
// leaving them zero.
func TestCanonicalDefaultsExplicit(t *testing.T) {
	minimal := goldenCfg()
	explicit := minimal
	explicit.SMT = 1
	explicit.L1Scale = 1
	explicit.L2EntriesPerCore = 920 // NOCSTAR Table II default
	explicit.Banks = 4
	explicit.HPCmax = 16

	a, err := minimal.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("defaulted and explicit configs encode differently:\n%s\n%s", a, b)
	}
	ha, _ := minimal.CanonicalHash()
	hb, _ := explicit.CanonicalHash()
	if ha != hb || ha == "" {
		t.Fatalf("hashes differ: %s vs %s", ha, hb)
	}
}

// TestCanonicalRoundTrip checks decode(encode(cfg)) re-encodes to the
// same bytes.
func TestCanonicalRoundTrip(t *testing.T) {
	first, err := goldenCfg().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalConfig(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := decoded.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip drifted:\n%s\n%s", first, second)
	}
}

func TestUnmarshalWorkloadShorthand(t *testing.T) {
	cfg, err := UnmarshalConfig([]byte(`{
		"schema": 1, "org": "nocstar", "cores": 4,
		"apps": [{"workload": "gups", "threads": 4}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want, ok := workload.ByName("gups")
	if !ok {
		t.Fatal("suite lost gups")
	}
	if cfg.Apps[0].Spec != want {
		t.Fatalf("shorthand resolved to %+v, want %+v", cfg.Apps[0].Spec, want)
	}
	if cfg.Apps[0].HammerSlice != HammerNone {
		t.Fatalf("omitted hammer_slice decoded to %d, want HammerNone", cfg.Apps[0].HammerSlice)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("decoded config invalid: %v", err)
	}
}

func TestUnmarshalRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"org": "nocstar", "coars": 4}`, "coars"},
		{"newer schema", `{"schema": 99, "org": "nocstar"}`, "schema 99"},
		{"unknown org", `{"org": "toroidal"}`, `org "toroidal"`},
		{"unknown acquire", `{"acquire": "psychic"}`, "acquire"},
		{"unknown policy", `{"policy": "nearest-pub"}`, "policy"},
		{"unknown ptw mode", `{"ptw": {"mode": "teleport"}}`, "PTW mode"},
		{"unknown workload", `{"apps": [{"workload": "nope", "threads": 1}]}`, `workload "nope"`},
		{"workload and spec", `{"apps": [{"workload": "gups", "spec": {"name": "x"}, "threads": 1}]}`, "pick one"},
		{"neither workload nor spec", `{"apps": [{"threads": 1}]}`, "needs a workload"},
		{"trailing data", `{"org": "nocstar"} {"org": "private"}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalConfig([]byte(tc.doc))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCanonicalRejectsLiveState: configs carrying state the value does
// not capture have no canonical encoding (and therefore no cache key).
func TestCanonicalRejectsLiveState(t *testing.T) {
	cfg := goldenCfg()
	cfg.Apps[0].Streams = make([]workload.Stream, 24)
	if _, err := cfg.MarshalCanonical(); err == nil {
		t.Fatal("config with live streams encoded")
	}
}
