// Package place implements the searchable address→slice placement
// layer. The distributed organizations hash a virtual address to a
// *logical* slice index; a placement Table maps logical slices onto
// physical tiles. Row-major (the identity) is the paper's fixed
// mapping; the alternative strategies permute it to move heavily used
// slices toward the cores that use them, under whatever topology the
// fabric routes — a random shuffle baseline, a greedy locality-aware
// assignment, and a simulated-annealing search minimizing the mean hop
// distance weighted by a sampled traffic matrix. All strategies are
// pure functions of (topology, traffic, seed), so every engine that
// builds a table for the same config gets the same mapping.
package place

import (
	"fmt"
	"math"
	"sort"

	"nocstar/internal/engine"
	"nocstar/internal/noc"
)

// Strategy selects a placement strategy.
type Strategy int

const (
	// RowMajor is the identity mapping: logical slice i lives on tile i
	// (the paper's fixed modulo placement).
	RowMajor Strategy = iota
	// Random shuffles the mapping uniformly (the upcycle randomize_llc
	// baseline) — it destroys pathological striding but optimizes
	// nothing.
	Random
	// LocalityAware greedily assigns the most-trafficked logical slices
	// to the most-central tiles of the topology.
	LocalityAware
	// Annealed runs a simulated-annealing search minimizing the
	// traffic-weighted mean hop distance.
	Annealed

	numStrategies
)

// strategyTokens are the stable wire names, used by the canonical
// config encoding and the -placement flag.
var strategyTokens = map[Strategy]string{
	RowMajor:      "row-major",
	Random:        "random",
	LocalityAware: "locality",
	Annealed:      "annealed",
}

// Valid reports whether s names a known strategy.
func (s Strategy) Valid() bool { return s >= RowMajor && s < numStrategies }

// String returns the wire name of the strategy.
func (s Strategy) String() string {
	if tok, ok := strategyTokens[s]; ok {
		return tok
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy resolves a wire name back to a strategy.
func ParseStrategy(tok string) (Strategy, bool) {
	for s, t := range strategyTokens {
		if t == tok {
			return s, true
		}
	}
	return 0, false
}

// Tokens returns the wire names of every strategy, sorted.
func Tokens() []string {
	out := make([]string, 0, len(strategyTokens))
	for _, tok := range strategyTokens {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// Strategies returns every strategy in declaration order.
func Strategies() []Strategy {
	return []Strategy{RowMajor, Random, LocalityAware, Annealed}
}

// Traffic is a sampled source-core × logical-slice demand matrix: W[s][l]
// estimates how many L2 accesses core s sends to logical slice l.
type Traffic struct {
	n int
	w []float64 // len n*n, w[src*n+logical]
}

// NewTraffic returns an empty n×n matrix.
func NewTraffic(n int) *Traffic {
	return &Traffic{n: n, w: make([]float64, n*n)}
}

// N returns the matrix dimension.
func (t *Traffic) N() int { return t.n }

// Add accumulates weight onto the (src, logical) cell.
func (t *Traffic) Add(src, logical int, weight float64) {
	t.w[src*t.n+logical] += weight
}

// Weight returns the (src, logical) cell.
func (t *Traffic) Weight(src, logical int) float64 {
	return t.w[src*t.n+logical]
}

// Total returns the sum of all cells.
func (t *Traffic) Total() float64 {
	total := 0.0
	for _, w := range t.w {
		total += w
	}
	return total
}

// Table is one placement: a permutation sending logical slice indices
// to physical tiles.
type Table struct {
	strategy Strategy
	perm     []int32
}

// Identity returns the row-major table over n slices.
func Identity(n int) *Table {
	t := &Table{strategy: RowMajor, perm: make([]int32, n)}
	for i := range t.perm {
		t.perm[i] = int32(i)
	}
	return t
}

// Strategy reports the strategy that built the table.
func (t *Table) Strategy() Strategy { return t.strategy }

// N returns the slice count.
func (t *Table) N() int { return len(t.perm) }

// Slice maps a logical slice index to its physical tile.
func (t *Table) Slice(logical int) int { return int(t.perm[logical]) }

// Perm returns a copy of the full permutation.
func (t *Table) Perm() []int {
	out := make([]int, len(t.perm))
	for i, p := range t.perm {
		out[i] = int(p)
	}
	return out
}

// IsIdentity reports whether the table is the row-major mapping.
func (t *Table) IsIdentity() bool {
	for i, p := range t.perm {
		if int(p) != i {
			return false
		}
	}
	return true
}

// Equal reports whether two tables hold the same permutation.
func (t *Table) Equal(o *Table) bool {
	if len(t.perm) != len(o.perm) {
		return false
	}
	for i, p := range t.perm {
		if p != o.perm[i] {
			return false
		}
	}
	return true
}

// Cost returns the traffic-weighted mean hop distance of the table
// under topo: sum over (src, logical) of W[src][logical] *
// Hops(src, table[logical]), divided by the total weight. Zero-traffic
// matrices (and nil) cost 0.
func Cost(t *Table, topo noc.Topology, tr *Traffic) float64 {
	if tr == nil {
		return 0
	}
	n := tr.n
	total, weighted := 0.0, 0.0
	for src := 0; src < n; src++ {
		row := tr.w[src*n : (src+1)*n]
		for l, w := range row {
			if w == 0 {
				continue
			}
			total += w
			weighted += w * float64(topo.Hops(noc.NodeID(src), noc.NodeID(t.perm[l])))
		}
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// hopsOf precomputes the full distance matrix D[src*n+p] so the search
// loops never re-derive coordinates.
func hopsOf(topo noc.Topology, n int) []int32 {
	d := make([]int32, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			d[a*n+b] = int32(topo.Hops(noc.NodeID(a), noc.NodeID(b)))
		}
	}
	return d
}

// Build constructs the placement table for n slices under the given
// strategy, topology, traffic matrix, and seed. The result is a pure
// function of the arguments. Strategies that weigh traffic degrade to
// the identity when tr is nil or carries no weight — with nothing to
// optimize, the row-major mapping is already optimal and keeps the
// simulated behavior byte-identical to the fixed mapping.
func Build(strategy Strategy, topo noc.Topology, n int, tr *Traffic, seed int64) *Table {
	switch strategy {
	case RowMajor:
		return Identity(n)
	case Random:
		t := Identity(n)
		t.strategy = Random
		rng := engine.NewRand(seed)
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			t.perm[i], t.perm[j] = t.perm[j], t.perm[i]
		}
		return t
	case LocalityAware, Annealed:
		if tr == nil || tr.Total() == 0 || n != tr.n {
			return Identity(n)
		}
		t := locality(topo, n, tr)
		if strategy == LocalityAware {
			return t
		}
		return anneal(t, topo, n, tr, seed)
	}
	panic(fmt.Sprintf("place: unknown strategy %d", int(strategy)))
}

// locality assigns the heaviest logical slices to the most central
// tiles: slices sorted by total inbound traffic (descending), tiles by
// mean distance to all sources (ascending), ties broken by index so the
// result is deterministic.
func locality(topo noc.Topology, n int, tr *Traffic) *Table {
	d := hopsOf(topo, n)
	load := make([]float64, n)    // per-logical-slice inbound weight
	central := make([]float64, n) // per-tile mean distance from all tiles
	for src := 0; src < n; src++ {
		for l := 0; l < n; l++ {
			load[l] += tr.w[src*n+l]
			central[l] += float64(d[src*n+l])
		}
	}
	slices := make([]int, n)
	tiles := make([]int, n)
	for i := 0; i < n; i++ {
		slices[i], tiles[i] = i, i
	}
	sort.SliceStable(slices, func(a, b int) bool {
		return load[slices[a]] > load[slices[b]]
	})
	sort.SliceStable(tiles, func(a, b int) bool {
		return central[tiles[a]] < central[tiles[b]]
	})
	t := &Table{strategy: LocalityAware, perm: make([]int32, n)}
	for i := 0; i < n; i++ {
		t.perm[slices[i]] = int32(tiles[i])
	}
	return t
}

// annealIters returns the move budget: enough to converge small systems
// and scale linearly for large ones.
func annealIters(n int) int {
	iters := 20_000
	if scaled := 50 * n; scaled > iters {
		iters = scaled
	}
	return iters
}

// anneal refines a starting table by simulated annealing over slice
// swaps. The cost of a swap is evaluated incrementally in O(n) from the
// traffic columns and the distance matrix; the temperature follows a
// geometric schedule from a tenth of the initial cost down three
// decades. The best table seen wins, so the search never returns
// something worse than its seed placement.
func anneal(start *Table, topo noc.Topology, n int, tr *Traffic, seed int64) *Table {
	if n < 2 {
		out := &Table{strategy: Annealed, perm: append([]int32(nil), start.perm...)}
		return out
	}
	d := hopsOf(topo, n)
	// Column-major traffic: wcol[l][src], so a swap's delta walks two
	// contiguous columns.
	wcol := make([][]float64, n)
	for l := 0; l < n; l++ {
		col := make([]float64, n)
		for src := 0; src < n; src++ {
			col[src] = tr.w[src*n+l]
		}
		wcol[l] = col
	}
	perm := append([]int32(nil), start.perm...)
	cost := 0.0
	for src := 0; src < n; src++ {
		for l := 0; l < n; l++ {
			if w := wcol[l][src]; w != 0 {
				cost += w * float64(d[src*n+int(perm[l])])
			}
		}
	}
	best := append([]int32(nil), perm...)
	bestCost := cost

	rng := engine.NewRand(seed)
	iters := annealIters(n)
	t0 := cost/10 + 1e-9
	alpha := math.Pow(1e-3, 1/float64(iters)) // t0 -> t0/1000 over the run
	temp := t0
	for it := 0; it < iters; it++ {
		l1 := rng.Intn(n)
		l2 := rng.Intn(n - 1)
		if l2 >= l1 {
			l2++
		}
		p1, p2 := int(perm[l1]), int(perm[l2])
		// delta = sum_src (w[src][l1]-w[src][l2]) * (D[src][p2]-D[src][p1])
		delta := 0.0
		c1, c2 := wcol[l1], wcol[l2]
		for src := 0; src < n; src++ {
			if dw := c1[src] - c2[src]; dw != 0 {
				delta += dw * float64(d[src*n+p2]-d[src*n+p1])
			}
		}
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			perm[l1], perm[l2] = perm[l2], perm[l1]
			cost += delta
			if cost < bestCost {
				bestCost = cost
				copy(best, perm)
			}
		}
		temp *= alpha
	}
	return &Table{strategy: Annealed, perm: best}
}
