package place

import (
	"testing"

	"nocstar/internal/noc"
)

func TestStrategyTokens(t *testing.T) {
	for _, s := range Strategies() {
		if !s.Valid() {
			t.Fatalf("declared strategy %d invalid", int(s))
		}
		got, ok := ParseStrategy(s.String())
		if !ok || got != s {
			t.Fatalf("token round trip failed for %v: got %v ok=%v", s, got, ok)
		}
	}
	if _, ok := ParseStrategy("greedy"); ok {
		t.Fatal("parsed unknown token")
	}
	toks := Tokens()
	if len(toks) != len(Strategies()) {
		t.Fatalf("token count %d != strategy count %d", len(toks), len(Strategies()))
	}
	for i := 1; i < len(toks); i++ {
		if toks[i-1] >= toks[i] {
			t.Fatalf("tokens not sorted: %q before %q", toks[i-1], toks[i])
		}
	}
	if Strategy(42).Valid() {
		t.Fatal("strategy 42 reported valid")
	}
}

func TestIdentityTable(t *testing.T) {
	tab := Identity(8)
	if tab.Strategy() != RowMajor || tab.N() != 8 || !tab.IsIdentity() {
		t.Fatalf("identity table wrong: strategy=%v n=%d identity=%v", tab.Strategy(), tab.N(), tab.IsIdentity())
	}
	for i := 0; i < 8; i++ {
		if tab.Slice(i) != i {
			t.Fatalf("identity Slice(%d) = %d", i, tab.Slice(i))
		}
	}
}

// checkPermutation fails unless tab maps the n logical slices onto the
// n tiles bijectively.
func checkPermutation(t *testing.T, tab *Table, n int) {
	t.Helper()
	if tab.N() != n {
		t.Fatalf("table size %d, want %d", tab.N(), n)
	}
	seen := make([]bool, n)
	for l := 0; l < n; l++ {
		p := tab.Slice(l)
		if p < 0 || p >= n {
			t.Fatalf("Slice(%d) = %d outside [0,%d)", l, p, n)
		}
		if seen[p] {
			t.Fatalf("tile %d assigned twice", p)
		}
		seen[p] = true
	}
}

// skewedTraffic concentrates demand: every source hammers logical slice
// n-1 (placed at the far corner under row-major) and lightly touches
// slice 0, so any optimizer has an obvious win.
func skewedTraffic(n int) *Traffic {
	tr := NewTraffic(n)
	for src := 0; src < n; src++ {
		tr.Add(src, n-1, 100)
		tr.Add(src, 0, 1)
	}
	return tr
}

func TestBuildDeterministicAndValid(t *testing.T) {
	const n = 16
	topo := noc.NewTopology(noc.TopoMesh, noc.GridFor(n))
	tr := skewedTraffic(n)
	for _, s := range Strategies() {
		a := Build(s, topo, n, tr, 7)
		b := Build(s, topo, n, tr, 7)
		if !a.Equal(b) {
			t.Fatalf("%v not deterministic for fixed seed", s)
		}
		if a.Strategy() != s {
			t.Fatalf("%v table reports strategy %v", s, a.Strategy())
		}
		checkPermutation(t, a, n)
	}
	// Different seeds must move the seeded strategies.
	r1 := Build(Random, topo, n, tr, 1)
	r2 := Build(Random, topo, n, tr, 2)
	if r1.Equal(r2) {
		t.Fatal("random placement identical across seeds")
	}
}

func TestOptimizersDegradeToIdentity(t *testing.T) {
	const n = 8
	topo := noc.NewTopology(noc.TopoMesh, noc.GridFor(n))
	for _, s := range []Strategy{LocalityAware, Annealed} {
		if !Build(s, topo, n, nil, 3).IsIdentity() {
			t.Fatalf("%v with nil traffic not identity", s)
		}
		if !Build(s, topo, n, NewTraffic(n), 3).IsIdentity() {
			t.Fatalf("%v with zero traffic not identity", s)
		}
		if !Build(s, topo, n, NewTraffic(n+1), 3).IsIdentity() {
			t.Fatalf("%v with mismatched traffic not identity", s)
		}
	}
}

// TestOptimizersReduceCost: on skewed traffic the locality and annealed
// tables must beat row-major, and annealing (seeded from the locality
// table, keeping the best state seen) must never lose to it.
func TestOptimizersReduceCost(t *testing.T) {
	const n = 16
	topo := noc.NewTopology(noc.TopoMesh, noc.GridFor(n))
	tr := skewedTraffic(n)
	base := Cost(Identity(n), topo, tr)
	loc := Cost(Build(LocalityAware, topo, n, tr, 5), topo, tr)
	ann := Cost(Build(Annealed, topo, n, tr, 5), topo, tr)
	if loc >= base {
		t.Fatalf("locality cost %v not below row-major %v", loc, base)
	}
	if ann > loc+1e-9 {
		t.Fatalf("annealed cost %v above its locality seed %v", ann, loc)
	}
	if ann >= base {
		t.Fatalf("annealed cost %v not below row-major %v", ann, base)
	}
}

// TestLocalityCentersHotSlice: the single hot slice must land on the
// most central tile of the mesh.
func TestLocalityCentersHotSlice(t *testing.T) {
	const n = 16
	g := noc.GridFor(n)
	topo := noc.NewTopology(noc.TopoMesh, g)
	tr := NewTraffic(n)
	for src := 0; src < n; src++ {
		tr.Add(src, 3, 10) // logical slice 3 is the only demand
	}
	tab := Build(LocalityAware, topo, n, tr, 0)
	hot := noc.NodeID(tab.Slice(3))
	// No tile may have a strictly smaller total distance to all sources.
	sumDist := func(p noc.NodeID) int {
		s := 0
		for src := 0; src < n; src++ {
			s += topo.Hops(noc.NodeID(src), p)
		}
		return s
	}
	hotSum := sumDist(hot)
	for p := 0; p < n; p++ {
		if sumDist(noc.NodeID(p)) < hotSum {
			t.Fatalf("hot slice on tile %d (total distance %d), tile %d is more central (%d)",
				hot, hotSum, p, sumDist(noc.NodeID(p)))
		}
	}
}

func TestCostZeroCases(t *testing.T) {
	topo := noc.NewTopology(noc.TopoMesh, noc.GridFor(4))
	if c := Cost(Identity(4), topo, nil); c != 0 {
		t.Fatalf("nil traffic cost = %v", c)
	}
	if c := Cost(Identity(4), topo, NewTraffic(4)); c != 0 {
		t.Fatalf("zero traffic cost = %v", c)
	}
}

// TestCostMatchesDefinition verifies Cost against a hand-computed
// weighted mean.
func TestCostMatchesDefinition(t *testing.T) {
	const n = 4 // 2x2 grid
	topo := noc.NewTopology(noc.TopoMesh, noc.GridFor(n))
	tr := NewTraffic(n)
	tr.Add(0, 3, 2) // hops(0,3) = 2, weight 2
	tr.Add(1, 0, 1) // hops(1,0) = 1, weight 1
	want := (2.0*2 + 1.0*1) / 3.0
	if got := Cost(Identity(n), topo, tr); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestAnnealTinySystem(t *testing.T) {
	topo := noc.NewTopology(noc.TopoMesh, noc.GridFor(1))
	tr := NewTraffic(1)
	tr.Add(0, 0, 5)
	tab := Build(Annealed, topo, 1, tr, 9)
	if tab.Strategy() != Annealed || !tab.IsIdentity() {
		t.Fatalf("1-slice anneal: strategy=%v perm=%v", tab.Strategy(), tab.Perm())
	}
}
