// Package cache models a latency-oriented set-associative cache hierarchy.
//
// The TLB studies use it for one purpose the paper calls out explicitly:
// page-table walks have *variable* latency because page-table entries live
// in the regular cache hierarchy (L1 4 cycles, L2 12 cycles, LLC 50
// cycles, then memory). The walker probes this hierarchy per level, which
// reproduces the paper's observation that 70-87 % of walks reach the LLC
// or memory for the leaf PTE while upper levels mostly hit.
package cache

import "nocstar/internal/vm"

// LineBytes is the cache line size; PTEs are 8 bytes, so one line holds 8.
const LineBytes = 64

// Config describes one cache level.
type Config struct {
	Name       string
	Sets       int // must be a power of two
	Ways       int
	HitLatency int // total load-to-use latency of a hit at this level
}

// line is one cache line's bookkeeping.
type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

// Cache is a single set-associative level.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	tick    uint64

	hits, misses uint64
}

// New returns an empty cache. Sets must be a power of two and Ways
// positive; New panics otherwise, since a malformed cache is a
// configuration bug, not a runtime condition.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("cache: Sets must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("cache: Ways must be positive")
	}
	sets := make([][]line, cfg.Sets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(cfg.Sets - 1)}
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// index splits a physical address into set index and tag.
func (c *Cache) index(pa vm.PhysAddr) (uint64, uint64) {
	lineAddr := uint64(pa) / LineBytes
	return lineAddr & c.setMask, lineAddr >> 0 // full line address as tag is fine
}

// Lookup probes the cache without modifying contents except LRU state.
// It reports whether the line is present.
func (c *Cache) Lookup(pa vm.PhysAddr) bool {
	set, tag := c.index(pa)
	c.tick++
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.lru = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Insert fills the line for pa, evicting the set's LRU way if needed.
func (c *Cache) Insert(pa vm.PhysAddr) {
	set, tag := c.index(pa)
	c.tick++
	victim := 0
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.lru = c.tick
			return
		}
		if !l.valid {
			victim = i
			break
		}
		if c.sets[set][i].lru < c.sets[set][victim].lru {
			victim = i
		}
	}
	c.sets[set][victim] = line{valid: true, tag: tag, lru: c.tick}
}

// EvictRandomLines invalidates up to n lines starting from a deterministic
// sweep position, modeling pollution pressure from foreign fills.
func (c *Cache) EvictRandomLines(n int) {
	for i := 0; i < n; i++ {
		set := (c.tick + uint64(i)) & c.setMask
		way := int(c.tick+uint64(i)) % c.cfg.Ways
		c.sets[set][way].valid = false
	}
	c.tick += uint64(n)
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
}

// Stats reports hits and misses since construction.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Hierarchy is an inclusive multi-level cache backed by memory.
type Hierarchy struct {
	levels     []*Cache
	memLatency int

	accesses  uint64
	levelHits []uint64
	memFills  uint64
}

// NewHierarchy builds a hierarchy from inner to outer level configs.
// memLatency is the flat miss-to-memory latency.
func NewHierarchy(memLatency int, cfgs ...Config) *Hierarchy {
	h := &Hierarchy{memLatency: memLatency}
	for _, cfg := range cfgs {
		h.levels = append(h.levels, New(cfg))
	}
	h.levelHits = make([]uint64, len(h.levels))
	return h
}

// NewHierarchyFromLevels builds a hierarchy over existing caches, which
// may be shared with other hierarchies — the chip's LLC is one physical
// structure that every core's walker fills and hits.
func NewHierarchyFromLevels(memLatency int, levels ...*Cache) *Hierarchy {
	h := &Hierarchy{memLatency: memLatency, levels: levels}
	h.levelHits = make([]uint64, len(levels))
	return h
}

// DefaultHierarchy returns the paper's Haswell memory system for one core:
// 32 KB 8-way L1 (4 cycles), 256 KB 8-way L2 (12 cycles), 8 MB LLC slice
// (50 cycles), 200-cycle memory.
func DefaultHierarchy() *Hierarchy {
	return NewHierarchy(200,
		Config{Name: "L1", Sets: 64, Ways: 8, HitLatency: 4},
		Config{Name: "L2", Sets: 512, Ways: 8, HitLatency: 12},
		Config{Name: "LLC", Sets: 8192, Ways: 16, HitLatency: 50},
	)
}

// WalkerHierarchy returns the memory system as the page-table walker sees
// it: PTE fetches contend with the data working set, which owns the L1D
// and the bulk of the L2, so walker references see a small effective L2
// share (64 KB), then the LLC (50 cycles), then memory. This keeps
// realistic walk latencies in the band the paper observes — 20-40 cycles
// for well-cached upper levels, with 70-87 % of leaf PTEs served from the
// LLC or memory.
func WalkerHierarchy() *Hierarchy {
	return WalkerHierarchyWithLLC(New(LLCConfig()))
}

// LLCConfig is the shared last-level cache: 8 MB, 16-way, 50 cycles.
func LLCConfig() Config {
	return Config{Name: "LLC", Sets: 8192, Ways: 16, HitLatency: 50}
}

// WalkerHierarchyWithLLC builds one core's walker view over a shared LLC
// instance: PTE lines one core's walker fetched serve every other core.
// The walker's effective L2 share is tiny (64 lines): under real data
// pressure, by the time a translation has aged out of a 1024-entry L2
// TLB its PTE line has long been evicted from the L2, so TLB misses
// fetch their leaf PTE from the LLC or memory — the paper's observed
// 70-87 %.
func WalkerHierarchyWithLLC(llc *Cache) *Hierarchy {
	return NewHierarchyFromLevels(200,
		New(Config{Name: "L2", Sets: 8, Ways: 8, HitLatency: 12}),
		llc,
	)
}

// Access loads pa through the hierarchy: it returns the latency of the
// access and the level index that served it (len(levels) means memory).
// Misses fill every level on the way back (inclusive).
func (h *Hierarchy) Access(pa vm.PhysAddr) (latency int, servedBy int) {
	h.accesses++
	for i, c := range h.levels {
		if c.Lookup(pa) {
			h.levelHits[i]++
			// Fill inner levels (they missed).
			for j := 0; j < i; j++ {
				h.levels[j].Insert(pa)
			}
			return c.cfg.HitLatency, i
		}
	}
	h.memFills++
	for _, c := range h.levels {
		c.Insert(pa)
	}
	return h.memLatency, len(h.levels)
}

// Levels reports the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Level returns the i-th cache (0 = innermost).
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// MemLatency returns the backing-memory latency.
func (h *Hierarchy) MemLatency() int { return h.memLatency }

// Stats reports total accesses, hits per level, and memory fills.
func (h *Hierarchy) Stats() (accesses uint64, levelHits []uint64, memFills uint64) {
	out := make([]uint64, len(h.levelHits))
	copy(out, h.levelHits)
	return h.accesses, out, h.memFills
}

// Flush empties every level.
func (h *Hierarchy) Flush() {
	for _, c := range h.levels {
		c.Flush()
	}
}

// Pollute models foreign fills displacing resident lines in the two inner
// levels, the effect the paper attributes to performing page walks at the
// remote core ("it pollutes the local cache of the remote core").
func (h *Hierarchy) Pollute(lines int) {
	for i, c := range h.levels {
		if i >= 2 {
			break
		}
		c.EvictRandomLines(lines)
	}
}

// Snapshot is a deep copy of one cache level's content state — lines and
// the LRU clock, not hit/miss statistics. Restoring it into a same-shaped
// cache reproduces the exact replacement behavior of the source.
type Snapshot struct {
	lines [][]line
	tick  uint64
}

// Snapshot captures the cache's content state.
func (c *Cache) Snapshot() Snapshot {
	lines := make([][]line, len(c.sets))
	for i, s := range c.sets {
		lines[i] = append([]line(nil), s...)
	}
	return Snapshot{lines: lines, tick: c.tick}
}

// RestoreSnapshot overwrites the cache's content state with a snapshot
// taken from an identically configured cache.
func (c *Cache) RestoreSnapshot(s Snapshot) {
	if len(s.lines) != len(c.sets) {
		panic("cache: RestoreSnapshot geometry mismatch")
	}
	for i := range c.sets {
		copy(c.sets[i], s.lines[i])
	}
	c.tick = s.tick
}

// ResetStats zeroes hit/miss counts without touching contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// ResetStats zeroes the hierarchy's aggregate counters and each level's
// hit/miss counts. Levels may be shared between hierarchies (the LLC);
// resetting a shared level twice is harmless.
func (h *Hierarchy) ResetStats() {
	h.accesses, h.memFills = 0, 0
	for i := range h.levelHits {
		h.levelHits[i] = 0
	}
	for _, c := range h.levels {
		c.ResetStats()
	}
}
