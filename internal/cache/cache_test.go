package cache

import (
	"testing"
	"testing/quick"

	"nocstar/internal/vm"
)

func small() *Cache {
	return New(Config{Name: "t", Sets: 4, Ways: 2, HitLatency: 3})
}

func TestLookupMissThenHit(t *testing.T) {
	c := small()
	if c.Lookup(0x1000) {
		t.Fatal("empty cache hit")
	}
	c.Insert(0x1000)
	if !c.Lookup(0x1000) {
		t.Fatal("inserted line missed")
	}
	// Same line, different byte.
	if !c.Lookup(0x1004) {
		t.Fatal("same-line byte missed")
	}
	// Different line.
	if c.Lookup(0x2000) {
		t.Fatal("different line hit")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d hits %d misses", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets x 2 ways, 64B lines: set = (pa/64)%4
	// Three lines in set 0: pa = 0, 256, 512 (line addrs 0, 4, 8).
	c.Insert(0)
	c.Insert(256)
	c.Lookup(0) // make line 0 MRU
	c.Insert(512)
	if !c.Lookup(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Lookup(256) {
		t.Fatal("LRU line survived")
	}
	if !c.Lookup(512) {
		t.Fatal("new line missing")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := small()
	c.Insert(0)
	c.Insert(256)
	c.Insert(0) // refresh, not duplicate
	c.Insert(512)
	if !c.Lookup(0) {
		t.Fatal("refreshed line evicted")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Insert(0x1000)
	c.Flush()
	if c.Lookup(0x1000) {
		t.Fatal("line survived flush")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{Sets: 3, Ways: 2},
		{Sets: 0, Ways: 2},
		{Sets: 4, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(100,
		Config{Name: "L1", Sets: 2, Ways: 1, HitLatency: 4},
		Config{Name: "L2", Sets: 8, Ways: 2, HitLatency: 12},
	)
	lat, lvl := h.Access(0x4000)
	if lat != 100 || lvl != 2 {
		t.Fatalf("cold access = %d cycles level %d", lat, lvl)
	}
	lat, lvl = h.Access(0x4000)
	if lat != 4 || lvl != 0 {
		t.Fatalf("warm access = %d cycles level %d", lat, lvl)
	}
}

func TestHierarchyInclusiveFill(t *testing.T) {
	h := NewHierarchy(100,
		Config{Name: "L1", Sets: 2, Ways: 1, HitLatency: 4},
		Config{Name: "L2", Sets: 8, Ways: 4, HitLatency: 12},
	)
	h.Access(0x0000) // set 0 of L1
	h.Access(0x0080) // also L1 set 0 (line 2 % 2 = 0): evicts 0x0000 from L1
	lat, lvl := h.Access(0x0000)
	if lvl != 1 || lat != 12 {
		t.Fatalf("expected L2 hit after L1 eviction, got level %d lat %d", lvl, lat)
	}
	// And the L2 hit refills L1.
	lat, lvl = h.Access(0x0000)
	if lvl != 0 || lat != 4 {
		t.Fatalf("expected L1 hit after refill, got level %d lat %d", lvl, lat)
	}
}

func TestHierarchyStats(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(0x1234)
	h.Access(0x1234)
	acc, hits, fills := h.Stats()
	if acc != 2 || fills != 1 || hits[0] != 1 {
		t.Fatalf("acc=%d hits=%v fills=%d", acc, hits, fills)
	}
	if h.Levels() != 3 || h.MemLatency() != 200 {
		t.Fatalf("default hierarchy shape wrong: %d levels mem %d", h.Levels(), h.MemLatency())
	}
}

func TestDefaultHierarchyPaperLatencies(t *testing.T) {
	h := DefaultHierarchy()
	wants := []int{4, 12, 50}
	for i, w := range wants {
		if got := h.Level(i).Config().HitLatency; got != w {
			t.Fatalf("level %d latency = %d, want %d (paper Haswell)", i, got, w)
		}
	}
}

func TestPolluteEvicts(t *testing.T) {
	h := NewHierarchy(100,
		Config{Name: "L1", Sets: 2, Ways: 1, HitLatency: 4},
		Config{Name: "L2", Sets: 2, Ways: 1, HitLatency: 12},
	)
	h.Access(0x0000)
	h.Access(0x0040)
	h.Pollute(16) // larger than both caches: everything gone
	if lat, _ := h.Access(0x0000); lat != 100 {
		t.Fatalf("line survived saturating pollution (lat %d)", lat)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := DefaultHierarchy()
	h.Access(0x9000)
	h.Flush()
	if lat, _ := h.Access(0x9000); lat != 200 {
		t.Fatalf("flush did not empty hierarchy (lat %d)", lat)
	}
}

// Property: a just-inserted line always hits, whatever else is resident.
func TestInsertThenLookupProperty(t *testing.T) {
	c := New(Config{Name: "p", Sets: 16, Ways: 4, HitLatency: 1})
	f := func(addrs []uint32, probe uint32) bool {
		for _, a := range addrs {
			c.Insert(vm.PhysAddr(a))
		}
		c.Insert(vm.PhysAddr(probe))
		return c.Lookup(vm.PhysAddr(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hierarchy access latency is always one of the configured
// level latencies or the memory latency.
func TestHierarchyLatencyDomainProperty(t *testing.T) {
	h := DefaultHierarchy()
	valid := map[int]bool{4: true, 12: true, 50: true, 200: true}
	f := func(addr uint32) bool {
		lat, _ := h.Access(vm.PhysAddr(addr))
		return valid[lat]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
