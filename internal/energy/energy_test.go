package energy

import (
	"testing"
	"testing/quick"
)

func TestFig11bOrdering(t *testing.T) {
	// At any hop count, per-message energy must order
	// NOCSTAR <= Distributed < Monolithic (Fig. 11b); at zero hops the
	// slice designs coincide (both are just one slice SRAM lookup).
	for _, hops := range []int{0, 1, 2, 4, 6, 8, 10, 12} {
		m := MonolithicMessage(hops, 32*1024).Total()
		d := DistributedMessage(hops, 1024).Total()
		n := NocstarMessage(hops, 1024).Total()
		if !(n <= d && d < m) {
			t.Fatalf("hops %d: N=%v D=%v M=%v, want N<=D<M", hops, n, d, m)
		}
		if hops > 0 && n >= d {
			t.Fatalf("hops %d: NOCSTAR %v not strictly below distributed %v", hops, n, d)
		}
	}
}

func TestNocstarControlCostHigher(t *testing.T) {
	// The paper: NOCSTAR "has a more expensive control path" than the
	// distributed mesh, but a cheaper datapath switch.
	n := NocstarMessage(8, 1024)
	d := DistributedMessage(8, 1024)
	if n.Control <= d.Control {
		t.Fatalf("NOCSTAR control %v not above distributed %v", n.Control, d.Control)
	}
	if n.Switch >= d.Switch {
		t.Fatalf("NOCSTAR switch %v not below distributed %v", n.Switch, d.Switch)
	}
	if n.Link != d.Link {
		t.Fatal("link energy should be identical (same wires)")
	}
}

func TestSRAMDominatesMonolithic(t *testing.T) {
	m := MonolithicMessage(4, 64*1024)
	if m.SRAM < m.Link+m.Switch+m.Control {
		t.Fatalf("monolithic SRAM %v should dominate network %v",
			m.SRAM, m.Link+m.Switch+m.Control)
	}
}

// Property: message energy is non-negative and monotonically
// non-decreasing in hop count for every design.
func TestEnergyMonotoneInHops(t *testing.T) {
	f := func(h uint8) bool {
		hops := int(h % 30)
		for _, fn := range []func(int, int) MessageEnergy{
			MonolithicMessage, DistributedMessage, NocstarMessage,
		} {
			a, b := fn(hops, 1024).Total(), fn(hops+1, 1024).Total()
			if a < 0 || b < a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterAccumulation(t *testing.T) {
	var m Meter
	m.AddL1Lookups(10)
	if m.L1TLBPJ != 10*L1TLBLookupPJ {
		t.Fatalf("L1 = %v", m.L1TLBPJ)
	}
	m.AddL2Lookups(5, 1024)
	if m.L2TLBPJ <= 0 {
		t.Fatal("L2 lookups not charged")
	}
	m.AddMessage(NocstarMessage(4, 1024))
	if m.NetworkPJ <= 0 {
		t.Fatal("message not charged")
	}
	// AddMessage must not double count SRAM.
	net := NocstarMessage(4, 1024)
	if m.NetworkPJ != net.Link+net.Switch+net.Control {
		t.Fatalf("network charge %v includes SRAM?", m.NetworkPJ)
	}
	m.AddWalkRefs([4]uint64{1, 1, 1, 1})
	wantWalk := CacheAccessPJ[0] + CacheAccessPJ[1] + CacheAccessPJ[2] + CacheAccessPJ[3]
	if m.WalkPJ != wantWalk {
		t.Fatalf("walk = %v, want %v", m.WalkPJ, wantWalk)
	}
	m.AddStatic(2000, 1024)
	if m.StaticPJ <= 0 {
		t.Fatal("static not charged")
	}
	if m.TotalPJ() != m.L1TLBPJ+m.L2TLBPJ+m.NetworkPJ+m.WalkPJ+m.StaticPJ {
		t.Fatal("TotalPJ != sum of components")
	}
}

func TestWalkEnergyDominates(t *testing.T) {
	// A DRAM page-walk reference must cost orders of magnitude more than
	// a TLB lookup — the premise of the paper's energy argument.
	var tlbOnly, walkHeavy Meter
	tlbOnly.AddL2Lookups(1, 1024)
	walkHeavy.AddWalkRefs([4]uint64{0, 0, 1, 1})
	if walkHeavy.TotalPJ() < 50*tlbOnly.TotalPJ() {
		t.Fatalf("walk %v vs TLB %v: gap too small", walkHeavy.TotalPJ(), tlbOnly.TotalPJ())
	}
}

func TestPercentSaved(t *testing.T) {
	var base, cfg Meter
	base.AddWalkRefs([4]uint64{0, 0, 10, 0})
	cfg.AddWalkRefs([4]uint64{0, 0, 5, 0})
	if got := PercentSaved(&cfg, &base); got != 50 {
		t.Fatalf("PercentSaved = %v, want 50", got)
	}
	var zero Meter
	if PercentSaved(&cfg, &zero) != 0 {
		t.Fatal("zero baseline should report 0")
	}
	// A costlier config yields negative savings.
	if PercentSaved(&base, &cfg) >= 0 {
		t.Fatal("negative savings expected")
	}
}

func TestStaticEnergyUnits(t *testing.T) {
	var m Meter
	// 2 GHz: 2000 cycles = 1000 ns; LeakagePowerMW(1024) mW x 1000 ns.
	m.AddStatic(2000, 1024)
	want := 1000.0 * 0.5 * 10.91 // ns * leakage share * Fig.9 mW
	if m.StaticPJ < want*0.99 || m.StaticPJ > want*1.01 {
		t.Fatalf("static = %v pJ, want ~%v", m.StaticPJ, want)
	}
}
