// Package energy provides the event-based energy accounting behind the
// paper's Fig. 11(b) (per-message interconnect energy, split into link /
// switch / control / SRAM) and Fig. 14 right (percent of address
// translation energy saved versus private L2 TLBs).
//
// Per-event costs are anchored to the Fig. 9 place-and-route data via
// internal/sram, with first-order 28 nm constants for links, routers, and
// cache/DRAM accesses. The experiments consume only *relative* energy, so
// the anchoring preserves the published shapes: slices beat the monolithic
// SRAM, NOCSTAR's datapath beats a buffered router per hop, NOCSTAR's
// control costs slightly more than a distributed mesh's, and eliminated
// page walks dominate the end-to-end savings.
package energy

import "nocstar/internal/sram"

// Per-hop interconnect energies (pJ) for a ~70-bit translation message.
const (
	// LinkPJPerHop is the repeated-wire energy of one tile-to-tile hop,
	// identical for all designs (same wires).
	LinkPJPerHop = 0.8
	// RouterSwitchPJPerHop is a buffered mesh/SMART router traversal:
	// buffer write/read, VC allocation, crossbar.
	RouterSwitchPJPerHop = 1.5
	// NocstarSwitchPJPerHop is the latchless mux switch of Fig. 7(c).
	NocstarSwitchPJPerHop = 0.3
	// MeshControlPJPerHop is per-router route computation/arbitration.
	MeshControlPJPerHop = 0.2
	// NocstarControlPJPerHop is the request wire to a link arbiter, the
	// arbitration, and the grant wire back (Fig. 8). The paper notes this
	// "shows up as a slightly higher control cost than Distributed"
	// because all arbiters in the path arbitrate simultaneously.
	NocstarControlPJPerHop = 0.45
)

// CacheAccessPJ is the dynamic energy of a lookup at each level of the
// data cache hierarchy (L1, L2, LLC, DRAM). The orders-of-magnitude gap
// between TLB lookups and LLC/DRAM page-walk references is the effect the
// paper cites from [Karakostas et al., HPCA 2016]: "the energy spent
// accessing hardware caches for page table walks is orders of magnitude
// more expensive than the energy spent on TLB accesses". The LLC and
// DRAM values are McPAT-class numbers for an 8 MB LLC and a DDR access.
var CacheAccessPJ = [4]float64{10, 25, 600, 4000}

// L1TLBLookupPJ is one lookup across the three small L1 TLB arrays.
const L1TLBLookupPJ = 1.5

// MessageEnergy is one Fig. 11(b) bar: the energy of a single TLB request
// message traversing the interconnect and looking up its destination
// array.
type MessageEnergy struct {
	Link    float64
	Switch  float64
	Control float64
	SRAM    float64
}

// Total sums the components.
func (m MessageEnergy) Total() float64 { return m.Link + m.Switch + m.Control + m.SRAM }

// MonolithicMessage returns the energy of a message crossing hops mesh
// hops to a monolithic shared TLB of totalEntries (per-bank lookup energy
// is dominated by the huge array).
func MonolithicMessage(hops, totalEntries int) MessageEnergy {
	h := float64(hops)
	return MessageEnergy{
		Link:    LinkPJPerHop * h,
		Switch:  RouterSwitchPJPerHop * h,
		Control: MeshControlPJPerHop * h,
		SRAM:    sram.AccessEnergyPJ(totalEntries),
	}
}

// DistributedMessage returns the energy of a message crossing hops mesh
// hops to a distributed slice of sliceEntries.
func DistributedMessage(hops, sliceEntries int) MessageEnergy {
	h := float64(hops)
	return MessageEnergy{
		Link:    LinkPJPerHop * h,
		Switch:  RouterSwitchPJPerHop * h,
		Control: MeshControlPJPerHop * h,
		SRAM:    sram.AccessEnergyPJ(sliceEntries),
	}
}

// NocstarMessage returns the energy of a message crossing hops latchless
// switches to a NOCSTAR slice of sliceEntries.
func NocstarMessage(hops, sliceEntries int) MessageEnergy {
	h := float64(hops)
	return MessageEnergy{
		Link:    LinkPJPerHop * h,
		Switch:  NocstarSwitchPJPerHop * h,
		Control: NocstarControlPJPerHop * h,
		SRAM:    sram.AccessEnergyPJ(sliceEntries),
	}
}

// Meter accumulates the address-translation energy of one simulated run.
type Meter struct {
	L1TLBPJ   float64
	L2TLBPJ   float64
	NetworkPJ float64
	WalkPJ    float64
	StaticPJ  float64
}

// AddL1Lookups charges n L1 TLB lookups.
func (m *Meter) AddL1Lookups(n uint64) {
	m.L1TLBPJ += float64(n) * L1TLBLookupPJ
}

// AddL2Lookups charges n lookups in an L2 TLB array of the given size.
func (m *Meter) AddL2Lookups(n uint64, entries int) {
	m.L2TLBPJ += float64(n) * sram.AccessEnergyPJ(entries)
}

// AddMessage charges one interconnect message (SRAM component excluded —
// lookups are charged via AddL2Lookups to avoid double counting).
func (m *Meter) AddMessage(e MessageEnergy) {
	m.NetworkPJ += e.Link + e.Switch + e.Control
}

// AddWalkRefs charges page-walk memory references by serving level
// (L1, L2, LLC, memory).
func (m *Meter) AddWalkRefs(byLevel [4]uint64) {
	for i, n := range byLevel {
		m.WalkPJ += float64(n) * CacheAccessPJ[i]
	}
}

// AddStatic charges leakage for a structure of totalTLBEntries over the
// run's cycle count at the 2 GHz design clock.
func (m *Meter) AddStatic(cycles uint64, totalTLBEntries int) {
	ns := float64(cycles) / sram.ClockGHz
	m.StaticPJ += sram.LeakagePowerMW(totalTLBEntries) * ns // 1 mW x 1 ns = 1 pJ
}

// TotalPJ sums every component.
func (m *Meter) TotalPJ() float64 {
	return m.L1TLBPJ + m.L2TLBPJ + m.NetworkPJ + m.WalkPJ + m.StaticPJ
}

// PercentSaved reports how much of baseline's translation energy the
// config avoids, as a percentage (positive = savings).
func PercentSaved(config, baseline *Meter) float64 {
	b := baseline.TotalPJ()
	if b == 0 {
		return 0
	}
	return 100 * (1 - config.TotalPJ()/b)
}
