package runner

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"nocstar/internal/system"
	"nocstar/internal/workload"
)

func smallCfg(seed int64) system.Config {
	return system.Config{
		Org:   system.Nocstar,
		Cores: 4,
		Apps: []system.App{{
			Spec: workload.Spec{
				Name:           "runner-ctx",
				FootprintPages: 256,
				MemRefPerInstr: 0.3,
				BaseCPI:        1.2,
			},
			Threads:     4,
			HammerSlice: system.HammerNone,
		}},
		InstrPerThread: 2_000,
		Seed:           seed,
	}
}

// TestSubmitContextCancel cancels an effectively endless run submitted
// through the pool and checks the future resolves promptly with the
// typed error — the path the HTTP service's DELETE handler exercises.
func TestSubmitContextCancel(t *testing.T) {
	cfg := smallCfg(1)
	cfg.InstrPerThread = 1 << 40
	r := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	fut := r.SubmitContext(ctx, cfg)
	time.Sleep(50 * time.Millisecond)
	cancel()

	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := fut.Result()
		done <- outcome{err}
	}()
	select {
	case o := <-done:
		if !errors.Is(o.err, system.ErrCanceled) {
			t.Fatalf("want system.ErrCanceled, got %v", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not resolve within 30s")
	}

	// A canceled run must not poison the singleflight map: resubmitting
	// the same config (now uncanceled) must run for real.
	ctx2, cancel2 := context.WithCancel(context.Background())
	fut2 := r.SubmitContext(ctx2, cfg)
	cancel2()
	if _, err := fut2.Result(); !errors.Is(err, system.ErrCanceled) {
		t.Fatalf("resubmission after cancel: want ErrCanceled, got %v", err)
	}
}

// TestSubmitDeadOnArrival pins that a submission whose context is
// already canceled resolves immediately with the typed error, never
// registers an in-flight call (a live identical submission must not
// join it and inherit the cancellation), and never consumes a worker
// slot or a Submitted count.
func TestSubmitDeadOnArrival(t *testing.T) {
	cfg := smallCfg(9)
	r := New(1)
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	fut := r.SubmitContext(dead, cfg)
	if _, err := fut.Result(); !errors.Is(err, system.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if p := r.Progress(); p.Submitted != 0 {
		t.Fatalf("dead submission was scheduled: %+v", p)
	}

	// An identical live submission starts fresh instead of joining the
	// dead one.
	res, err := r.SubmitContext(context.Background(), cfg).Result()
	if err != nil {
		t.Fatalf("live resubmission failed: %v", err)
	}
	if res.MemRefs == 0 {
		t.Fatal("live resubmission produced an empty result")
	}
	if p := r.Progress(); p.Submitted != 1 || p.Deduped != 0 {
		t.Fatalf("want 1 fresh execution and 0 dedups, got %+v", p)
	}

	// A deadline that already passed maps to the deadline sentinel.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := r.SubmitContext(expired, cfg).Result(); !errors.Is(err, system.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
}

// TestKeyCanonical pins that the dedup key is the canonical encoding:
// defaulted and explicitly-spelled configs share one key, so concurrent
// submissions of either form singleflight to one execution.
func TestKeyCanonical(t *testing.T) {
	minimal := smallCfg(1)
	explicit := minimal
	explicit.SMT = 1
	explicit.L1Scale = 1
	explicit.HPCmax = 16

	ka, oka := Key(minimal)
	kb, okb := Key(explicit)
	if !oka || !okb {
		t.Fatal("valid configs not keyed")
	}
	if ka != kb {
		t.Fatalf("defaulted and explicit configs key differently:\n%s\n%s", ka, kb)
	}

	r := New(2)
	fa := r.Submit(minimal)
	fb := r.SubmitCached(explicit)
	ra := fa.Wait()
	rb := fb.Wait()
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("deduped submissions returned different results")
	}
	p := r.Progress()
	if p.Submitted != 1 || p.Deduped != 1 {
		t.Fatalf("want 1 execution + 1 dedup, got %+v", p)
	}
}

// TestKeyRejectsLiveState: configs with injected streams (or a checker)
// have no key and every submission runs independently.
func TestKeyRejectsLiveState(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Apps[0].Streams = make([]workload.Stream, 4)
	if _, ok := Key(cfg); ok {
		t.Fatal("config with live streams got a dedup key")
	}
}
