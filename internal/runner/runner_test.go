package runner

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nocstar/internal/system"
	"nocstar/internal/workload"
)

func testConfig(instr uint64) system.Config {
	spec, _ := workload.ByName("canneal")
	return system.Config{
		Org:            system.Nocstar,
		Cores:          16,
		Apps:           []system.App{{Spec: spec, Threads: 16, HammerSlice: system.HammerNone}},
		InstrPerThread: instr,
		Seed:           1,
	}
}

// The engine's reproducibility contract must survive the worker pool: a
// config run directly, run on the pool, and run on the pool again must
// produce identical Results in every field.
func TestDeterministicAcrossPool(t *testing.T) {
	cfg := testConfig(8_000)
	direct, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := New(4)
	a := r.Submit(cfg).Wait()
	b := r.Submit(cfg).Wait()
	if !reflect.DeepEqual(direct, a) || !reflect.DeepEqual(a, b) {
		t.Fatal("pooled run diverged from direct run")
	}
}

// Futures submitted together must join in submission order with each
// future bound to its own config.
func TestJoinOrder(t *testing.T) {
	r := New(3)
	instrs := []uint64{2_000, 4_000, 6_000, 8_000}
	var futs []*Future
	for _, n := range instrs {
		futs = append(futs, r.Submit(testConfig(n)))
	}
	for i, f := range futs {
		res := f.Wait()
		want := uint64(16) * instrs[i]
		if res.Instructions != want {
			t.Fatalf("future %d: %d instructions, want %d", i, res.Instructions, want)
		}
	}
}

func TestSingleflightDedup(t *testing.T) {
	r := New(2)
	cfg := testConfig(8_000)
	var futs []*Future
	for i := 0; i < 6; i++ {
		futs = append(futs, r.Submit(cfg))
	}
	first := futs[0].Wait()
	for _, f := range futs[1:] {
		if !reflect.DeepEqual(first, f.Wait()) {
			t.Fatal("deduped futures disagree")
		}
	}
	p := r.Progress()
	if p.Submitted+p.Deduped != 6 {
		t.Fatalf("submitted %d + deduped %d != 6", p.Submitted, p.Deduped)
	}
	if p.Deduped == 0 {
		t.Fatal("identical in-flight configs were not deduplicated")
	}
}

func TestSubmitCachedMemoizes(t *testing.T) {
	r := New(1)
	cfg := testConfig(4_000)
	a := r.SubmitCached(cfg).Wait()
	if got := r.Progress().Submitted; got != 1 {
		t.Fatalf("submitted = %d, want 1", got)
	}
	// Second submission — sequential, so nothing is in flight — must be
	// served from the memo without a new execution. Plain Submit shares
	// the memoized result too.
	b := r.SubmitCached(cfg).Wait()
	c := r.Submit(cfg).Wait()
	if got := r.Progress().Submitted; got != 1 {
		t.Fatalf("memoized config re-ran: submitted = %d", got)
	}
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Fatal("memoized results disagree")
	}
	// Plain Submit must NOT memoize: a fresh config submitted twice
	// sequentially runs twice (benchmarks rely on re-running).
	cfg2 := testConfig(2_000)
	r.Submit(cfg2).Wait()
	r.Submit(cfg2).Wait()
	if got := r.Progress().Submitted; got != 3 {
		t.Fatalf("plain Submit memoized: submitted = %d, want 3", got)
	}
}

func TestParallelismBound(t *testing.T) {
	r := New(3)
	var active, peak atomic.Int64
	var mu sync.Mutex
	bump := func() {
		a := active.Add(1)
		mu.Lock()
		if a > peak.Load() {
			peak.Store(a)
		}
		mu.Unlock()
	}
	Map(r, make([]int, 32), func(int) int {
		bump()
		defer active.Add(-1)
		time.Sleep(2 * time.Millisecond)
		return 0
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds limit 3", p)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("pool never ran concurrently (peak %d)", p)
	}
}

func TestSetParallelism(t *testing.T) {
	r := New(2)
	if r.Parallelism() != 2 {
		t.Fatalf("Parallelism() = %d", r.Parallelism())
	}
	r.SetParallelism(5)
	if r.Parallelism() != 5 {
		t.Fatalf("after SetParallelism(5): %d", r.Parallelism())
	}
	r.SetParallelism(0)
	if r.Parallelism() < 1 {
		t.Fatalf("SetParallelism(0) must restore GOMAXPROCS, got %d", r.Parallelism())
	}
}

func TestMapOrdered(t *testing.T) {
	r := New(4)
	in := []int{5, 3, 9, 1, 7, 2}
	out := Map(r, in, func(v int) int { return v * v })
	for i, v := range in {
		if out[i] != v*v {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], v*v)
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	r := New(1)
	bad := system.Config{} // no cores, no apps
	if _, err := r.Submit(bad).Result(); err == nil {
		t.Fatal("invalid config produced no error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wait did not panic on config error")
		}
	}()
	r.Submit(bad).Wait()
}

func TestKeyStreamsNotDeduped(t *testing.T) {
	cfg := testConfig(1_000)
	if _, ok := Key(cfg); !ok {
		t.Fatal("plain config must be keyable")
	}
	cfg.Apps[0].Streams = make([]workload.Stream, cfg.Apps[0].Threads)
	if _, ok := Key(cfg); ok {
		t.Fatal("config with live streams must not be keyable")
	}
}

func TestKeyDistinguishesConfigs(t *testing.T) {
	a := testConfig(1_000)
	b := testConfig(1_000)
	b.Seed = 2
	c := testConfig(1_000)
	c.Storm = &system.StormConfig{ContextSwitchInterval: 10_000, PromoteDemoteInterval: 8_000, Pages: 64}
	ka, _ := Key(a)
	kb, _ := Key(b)
	kc, _ := Key(c)
	if ka == kb || ka == kc || kb == kc {
		t.Fatal("distinct configs collided")
	}
	ka2, _ := Key(testConfig(1_000))
	if ka != ka2 {
		t.Fatal("equal configs produced different keys")
	}
}

// warmTestConfig is testConfig with a warmup phase and a varying
// measurement budget: every instance shares one warmup prefix.
func warmTestConfig(instr uint64) system.Config {
	cfg := testConfig(instr)
	cfg.WarmupInstr = 4_000
	return cfg
}

// TestSweepSharesOneWarmup pins the sweep-wide warm-state contract: a
// sweep of many configs differing only in measurement-phase knobs
// executes exactly one warmup, and every result is byte-identical to the
// config's standalone inline run — at any parallelism.
func TestSweepSharesOneWarmup(t *testing.T) {
	const n = 12
	var cfgs []system.Config
	for i := 0; i < n; i++ {
		cfgs = append(cfgs, warmTestConfig(5_000+uint64(i)*1_000))
	}
	want := make([]system.Result, n)
	for i, cfg := range cfgs {
		res, err := system.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, par := range []int{1, 4, 16} {
		r := New(par)
		var futs []*Future
		for _, cfg := range cfgs {
			futs = append(futs, r.Submit(cfg))
		}
		for i, f := range futs {
			res, err := f.Result()
			if err != nil {
				t.Fatalf("par %d: run %d: %v", par, i, err)
			}
			if !reflect.DeepEqual(res, want[i]) {
				t.Fatalf("par %d: run %d diverged from its inline run", par, i)
			}
		}
		if got := r.Progress().Warmups; got != 1 {
			t.Fatalf("par %d: %d warmups for %d configs sharing one warmup prefix, want 1",
				par, got, n)
		}
	}
}

// TestWarmupKeysPartitionSweep checks that configs with distinct warmup
// prefixes do not share warm state: two warmup lengths mean two warmups.
func TestWarmupKeysPartitionSweep(t *testing.T) {
	r := New(4)
	a := warmTestConfig(5_000)
	b := warmTestConfig(6_000)
	c := warmTestConfig(5_000)
	c.WarmupInstr = 2_000
	d := warmTestConfig(7_000)
	d.WarmupInstr = 2_000
	var futs []*Future
	for _, cfg := range []system.Config{a, b, c, d} {
		futs = append(futs, r.Submit(cfg))
	}
	for i, f := range futs {
		if _, err := f.Result(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := r.Progress().Warmups; got != 2 {
		t.Fatalf("%d warmups, want 2 (one per distinct warmup prefix)", got)
	}
}
