// Package runner fans independent simulation runs out across a bounded
// pool of goroutines and joins their results deterministically.
//
// Every system.Run is a pure function of its Config — equal configs
// produce bit-identical Results — so the experiment drivers can submit
// all of a figure's runs up front, let them execute in any order on the
// pool, and then aggregate the joined results in the original submission
// order. The rendered output is byte-identical to the serial path at any
// parallelism.
//
// The runner also deduplicates work: identical configs submitted while a
// run is in flight share one execution (singleflight), and configs
// submitted through SubmitCached are memoized for the life of the runner
// — the concurrency-safe replacement for the experiments package's old
// unsynchronized baselineCache map.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"nocstar/internal/system"
)

// call is one scheduled execution, possibly shared by several futures.
type call struct {
	done chan struct{}
	res  system.Result
	err  error
}

// Future is a handle to an in-flight (or completed) simulation.
type Future struct {
	c *call
}

// Result blocks until the run completes and returns its outcome.
func (f *Future) Result() (system.Result, error) {
	<-f.c.done
	return f.c.res, f.c.err
}

// Wait blocks until the run completes, panicking on configuration errors
// (experiment configs are code, not user input — matching the drivers'
// historical run() contract).
func (f *Future) Wait() system.Result {
	res, err := f.Result()
	if err != nil {
		panic(fmt.Sprintf("runner: %v", err))
	}
	return res
}

// Progress is a snapshot of the runner's counters. Submitted counts
// scheduled executions (deduplicated submissions are not re-counted);
// Completed counts finished ones; Deduped counts submissions resolved by
// an identical in-flight or memoized run; Warmups counts warm-state
// checkpoint constructions — in a sweep whose configs share a warmup
// prefix, exactly one warmup executes no matter how many runs reuse it.
type Progress struct {
	Submitted uint64
	Completed uint64
	Deduped   uint64
	Warmups   uint64
	// MemRefs totals the simulated memory references of completed runs;
	// benchmarks delta it against wall time for a refs/sec throughput.
	MemRefs uint64
}

// Runner is a bounded worker pool with in-flight deduplication and an
// opt-in memo cache. The zero value is not ready; call New.
type Runner struct {
	mu       sync.Mutex
	cond     *sync.Cond
	active   int
	limit    int
	shards   int                  // >0: run shardable configs on the partitioned engine
	inflight map[string]*call     // keyed in-flight runs (singleflight)
	memo     map[string]*call     // completed SubmitCached runs
	warm     map[string]*warmCall // warm-state checkpoints by WarmupKey

	submitted atomic.Uint64
	completed atomic.Uint64
	deduped   atomic.Uint64
	warmups   atomic.Uint64
	memRefs   atomic.Uint64
}

// warmCall is one warmup execution, shared by every run whose config
// carries the same WarmupKey.
type warmCall struct {
	done chan struct{}
	cp   *system.Checkpoint
	err  error
}

// New returns a runner executing at most parallelism simulations at once.
// parallelism <= 0 selects GOMAXPROCS.
func New(parallelism int) *Runner {
	r := &Runner{
		inflight: map[string]*call{},
		memo:     map[string]*call{},
		warm:     map[string]*warmCall{},
	}
	r.cond = sync.NewCond(&r.mu)
	r.limit = normalize(parallelism)
	return r
}

func normalize(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

var (
	defaultOnce   sync.Once
	defaultRunner *Runner
)

// Default returns the process-wide shared runner. Sharing one runner
// across experiment drivers lets memoized runs (notably the private
// baselines every speedup divides by) execute once per process.
func Default() *Runner {
	defaultOnce.Do(func() { defaultRunner = New(0) })
	return defaultRunner
}

// SetParallelism adjusts the concurrency bound for subsequent acquisitions
// (n <= 0 restores GOMAXPROCS). Runs already executing are unaffected.
func (r *Runner) SetParallelism(n int) {
	r.mu.Lock()
	r.limit = normalize(n)
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Parallelism reports the current concurrency bound.
func (r *Runner) Parallelism() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.limit
}

// SetShards selects intra-run parallelism: k > 0 makes every subsequent
// shardable submission (system.Shardable) execute on the partitioned
// engine with k worker goroutines; k <= 0 (the default) keeps the legacy
// single-engine path. The partitioned engine is a documented model
// variant, so its results are memoized under a distinct key — dedup
// never crosses the engine setting. Within the sharded engine results
// are invariant in k, so the key does not embed k itself.
func (r *Runner) SetShards(k int) {
	r.mu.Lock()
	if k < 0 {
		k = 0
	}
	r.shards = k
	r.mu.Unlock()
}

// Shards reports the current intra-run parallelism (0 = legacy engine).
func (r *Runner) Shards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shards
}

// Progress returns the current counters.
func (r *Runner) Progress() Progress {
	return Progress{
		Submitted: r.submitted.Load(),
		Completed: r.completed.Load(),
		Deduped:   r.deduped.Load(),
		Warmups:   r.warmups.Load(),
		MemRefs:   r.memRefs.Load(),
	}
}

// Submit schedules cfg on the pool and returns a future for its result.
// An identical config already in flight (or memoized by SubmitCached) is
// shared rather than re-run.
func (r *Runner) Submit(cfg system.Config) *Future {
	return r.submit(context.Background(), cfg, false)
}

// SubmitContext is Submit with a context governing the execution: the
// simulation runs through system.RunContext, so cancelling ctx (or its
// deadline passing) stops the run promptly with a typed error. A
// duplicate submission that joins an in-flight identical run shares that
// run's context — the joiner's own ctx does not cancel work it merely
// observes. Canceled runs complete with an error and are never memoized.
func (r *Runner) SubmitContext(ctx context.Context, cfg system.Config) *Future {
	return r.submit(ctx, cfg, false)
}

// SubmitCached is Submit with memoization: the completed result is kept
// for the life of the runner, so identical future submissions — from any
// goroutine or driver — return it without re-running. Use it for runs
// shared across experiments, such as private baselines.
func (r *Runner) SubmitCached(cfg system.Config) *Future {
	return r.submit(context.Background(), cfg, true)
}

// SubmitCachedContext is SubmitCached with a context governing the
// execution (and carrying the WithExperiment label, if any).
func (r *Runner) SubmitCachedContext(ctx context.Context, cfg system.Config) *Future {
	return r.submit(ctx, cfg, true)
}

// Run is Submit followed by Wait.
func (r *Runner) Run(cfg system.Config) system.Result {
	return r.Submit(cfg).Wait()
}

func (r *Runner) submit(ctx context.Context, cfg system.Config, cache bool) *Future {
	if ctx != nil && ctx.Err() != nil {
		// Dead on arrival (e.g. a service job canceled while it waited in
		// the queue): complete immediately with the typed error instead of
		// occupying a worker slot — and, crucially, without registering an
		// in-flight call that a live identical submission could join and
		// inherit the cancellation from.
		c := &call{done: make(chan struct{}), err: ctxSentinel(ctx.Err())}
		close(c.done)
		return &Future{c: c}
	}
	key, keyed := Key(cfg)
	if keyed && r.Shards() > 0 && system.Shardable(cfg) {
		// The partitioned engine is a model variant: never share results
		// with legacy-engine runs of the same config.
		key = "sharded|" + key
	}
	if keyed {
		r.mu.Lock()
		if c, ok := r.memo[key]; ok {
			r.mu.Unlock()
			r.deduped.Add(1)
			return &Future{c: c}
		}
		if c, ok := r.inflight[key]; ok {
			r.mu.Unlock()
			r.deduped.Add(1)
			return &Future{c: c}
		}
		c := &call{done: make(chan struct{})}
		r.inflight[key] = c
		r.mu.Unlock()
		r.submitted.Add(1)
		go r.execute(ctx, cfg, c, key, cache)
		return &Future{c: c}
	}
	c := &call{done: make(chan struct{})}
	r.submitted.Add(1)
	go r.execute(ctx, cfg, c, "", cache)
	return &Future{c: c}
}

func (r *Runner) execute(ctx context.Context, cfg system.Config, c *call, key string, cache bool) {
	r.acquire()
	// Label the execution for CPU profiles: pprof samples taken while
	// this run executes carry the config's identity and the experiment
	// that submitted it, so a sweep profile decomposes by figure and by
	// config rather than blurring every simulation together.
	hash, err := cfg.CanonicalHash()
	if err != nil {
		hash = "unkeyed"
	}
	pprof.Do(ctx, pprof.Labels(
		"nocstar_config", hash,
		"nocstar_experiment", Experiment(ctx),
	), func(ctx context.Context) {
		c.res, c.err = r.runOne(ctx, cfg)
	})
	r.release()
	if c.err == nil {
		r.memRefs.Add(c.res.MemRefs)
	}
	if key != "" {
		r.mu.Lock()
		delete(r.inflight, key)
		if cache && c.err == nil {
			r.memo[key] = c
		}
		r.mu.Unlock()
	}
	close(c.done)
	r.completed.Add(1)
}

// runOne executes one simulation, going through the shared warm-state
// checkpoint when the config warms up. The warmup for each WarmupKey is
// built once (singleflight) and restored into every run that shares it.
// A failed warmup — cancellation, model error — falls back to the full
// inline path, which produces the identical result and reports its own
// error faithfully, so the checkpoint layer can never change an outcome.
func (r *Runner) runOne(ctx context.Context, cfg system.Config) (system.Result, error) {
	if k := r.Shards(); k > 0 && system.Shardable(cfg) {
		// The partitioned engine runs its own warmup phase inline; warm
		// checkpoints belong to the legacy engine's state model.
		return system.RunShardedContext(ctx, cfg, k)
	}
	if wkey, ok := system.WarmupKey(cfg); ok {
		if cp, err := r.warmCheckpoint(ctx, cfg, wkey); err == nil {
			return system.RunFromCheckpoint(ctx, cfg, cp)
		}
	}
	return system.RunContext(ctx, cfg)
}

// warmCheckpoint returns the shared checkpoint for wkey, building it from
// cfg's warmup phase if no other run got there first. Joiners block on
// the owner; the owner holds its own worker slot and never waits on
// another, so the rendezvous cannot deadlock at any parallelism. A
// failed build is not cached — the next submission retries.
func (r *Runner) warmCheckpoint(ctx context.Context, cfg system.Config, wkey string) (*system.Checkpoint, error) {
	r.mu.Lock()
	if w, ok := r.warm[wkey]; ok {
		r.mu.Unlock()
		<-w.done
		return w.cp, w.err
	}
	w := &warmCall{done: make(chan struct{})}
	r.warm[wkey] = w
	r.mu.Unlock()
	w.cp, w.err = system.WarmupCheckpoint(ctx, cfg)
	if w.err != nil {
		r.mu.Lock()
		delete(r.warm, wkey)
		r.mu.Unlock()
	} else {
		r.warmups.Add(1)
	}
	close(w.done)
	return w.cp, w.err
}

// ctxSentinel maps a context error onto the system package's typed
// run-termination sentinels, matching what RunContext would return.
func ctxSentinel(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w before start", system.ErrDeadlineExceeded)
	}
	return fmt.Errorf("%w before start", system.ErrCanceled)
}

// acquire blocks until a worker slot is free.
func (r *Runner) acquire() {
	r.mu.Lock()
	for r.active >= r.limit {
		r.cond.Wait()
	}
	r.active++
	r.mu.Unlock()
}

func (r *Runner) release() {
	r.mu.Lock()
	r.active--
	r.mu.Unlock()
	r.cond.Signal()
}

// Map runs fn over items on the runner's pool and returns the results in
// item order — the deterministic fan-out for work that is not a
// system.Config (e.g. the Fig. 11c injection-rate sweep). fn must not
// block on other pool work, or the pool can deadlock at low parallelism.
func Map[T, R any](r *Runner, items []T, fn func(T) R) []R {
	out := make([]R, len(items))
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		r.submitted.Add(1)
		go func(i int) {
			defer wg.Done()
			r.acquire()
			defer func() {
				r.release()
				r.completed.Add(1)
			}()
			out[i] = fn(items[i])
		}(i)
	}
	wg.Wait()
	return out
}

// Key returns the canonical dedup key for cfg: its schema-versioned
// canonical JSON encoding (system.Config.MarshalCanonical), the same
// bytes the HTTP service hashes for its result cache. Because the
// encoding normalizes first, two configs that differ only in
// defaulted-versus-explicit fields share one key — and one execution.
// ok is false when the config cannot be keyed: it carries live address
// streams or an attached Checker (state the config value does not
// capture), or it is invalid — in which case every submission runs.
func Key(cfg system.Config) (key string, ok bool) {
	b, err := cfg.MarshalCanonical()
	if err != nil {
		return "", false
	}
	return string(b), true
}

// experimentKey carries the submitting experiment's name in a context.
type experimentKey struct{}

// WithExperiment labels ctx with the experiment (figure/table) that owns
// the runs submitted under it; the runner attaches it as a pprof label.
func WithExperiment(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, experimentKey{}, name)
}

// Experiment reports the experiment name ctx was labeled with, or
// "unlabeled".
func Experiment(ctx context.Context) string {
	if name, ok := ctx.Value(experimentKey{}).(string); ok && name != "" {
		return name
	}
	return "unlabeled"
}
