// Package sram models the circuit-level characteristics of the SRAM
// arrays, switches, and link arbiters that the paper obtained from TSMC
// 28 nm memory compilers and place-and-route (Fig. 3 and Fig. 9).
//
// The downstream experiments consume only the published functions —
// entries → access cycles, and per-structure power/area/energy — so the
// model is an analytic fit anchored to every data point the paper prints:
//
//   - a 1536-entry L2 TLB takes 9 cycles; a 32×1536-entry array takes
//     close to 15 cycles (Fig. 3, 2 GHz target clock);
//   - per-tile place-and-route: switch 0.43 mW / 0.0022 mm², 4× link
//     arbiters 2.39 mW / 0.0038 mm², SRAM TLB 10.91 mW / 0.4646 mm²
//     (Fig. 9, 0.5 ns clock).
package sram

import "math"

// ReferenceEntries is the paper's reference L2 TLB size (Intel Skylake
// private L2 TLB), the 1× point of Fig. 3.
const ReferenceEntries = 1536

// referenceLatency is the lookup latency of a ReferenceEntries array.
const referenceLatency = 9.0

// latencySlope is the added cycles per doubling of capacity, fit so that
// 32× reaches ~15 cycles as Fig. 3 reports ((15-9)/log2(32) = 1.2).
const latencySlope = 1.2

// AccessCycles returns the lookup latency, in cycles at the 2 GHz design
// point, of an SRAM TLB array with the given number of entries. The fit
// (ceiling of the log curve) reproduces every published anchor: 9 cycles
// at 1536 entries (Fig. 3) *and* at the 1024-entry Haswell private L2 TLB
// (Section IV), 15 at 32×1536, 17 at 64×, 8 at 0.5×. Latency is floored
// at 2 cycles for tiny arrays.
func AccessCycles(entries int) int {
	if entries <= 0 {
		return 2
	}
	l := referenceLatency + latencySlope*math.Log2(float64(entries)/ReferenceEntries)
	c := int(math.Ceil(l - 1e-9))
	if c < 2 {
		c = 2
	}
	return c
}

// ClockGHz is the design-point clock of the place-and-routed tile.
const ClockGHz = 2.0

// TileCosts is the per-tile power/area breakdown of Fig. 9.
type TileCosts struct {
	SwitchPowerMW  float64 // latchless switch
	SwitchAreaMM2  float64
	ArbiterPowerMW float64 // the 4 link arbiters of a tile
	ArbiterAreaMM2 float64
	SRAMPowerMW    float64 // the 1024-entry-class L2 TLB slice SRAM
	SRAMAreaMM2    float64
	TileWidthUM    float64 // place-and-routed tile extent
	TileHeightUM   float64
	SwitchWidthUM  float64
	ArbiterWidthUM float64
	TargetClockNS  float64
}

// Fig9 returns the published place-and-route numbers for one NOCSTAR tile
// in 28 nm TSMC at a 0.5 ns target clock period.
func Fig9() TileCosts {
	return TileCosts{
		SwitchPowerMW:  0.43,
		SwitchAreaMM2:  0.0022,
		ArbiterPowerMW: 2.39,
		ArbiterAreaMM2: 0.0038,
		SRAMPowerMW:    10.91,
		SRAMAreaMM2:    0.4646,
		TileWidthUM:    681,
		TileHeightUM:   681,
		SwitchWidthUM:  31,
		ArbiterWidthUM: 47,
		TargetClockNS:  0.5,
	}
}

// InterconnectAreaFraction reports the area of the NOCSTAR switch plus
// arbiters relative to the tile's L2 TLB SRAM. The paper states this is
// below 1 %... of the order of 1.3 % by the published numbers; the claim
// "less than 1%" refers to the switch alone. Both are exposed.
func (t TileCosts) InterconnectAreaFraction() (switchOnly, switchPlusArbiters float64) {
	return t.SwitchAreaMM2 / t.SRAMAreaMM2,
		(t.SwitchAreaMM2 + t.ArbiterAreaMM2) / t.SRAMAreaMM2
}

// referenceSRAMEnergyPJ is the dynamic energy of one lookup in a
// 1024-entry-class slice, derived from the Fig. 9 SRAM power at the 2 GHz
// clock assuming roughly half the power is dynamic at full utilization:
// 10.91 mW / 2 GHz ≈ 5.5 pJ/cycle, and a pipelined lookup occupies the
// array for ~2 effective cycles of switched capacitance.
const referenceSRAMEnergyPJ = 11.0

// referenceSRAMEntries is the slice size the Fig. 9 SRAM corresponds to.
const referenceSRAMEntries = 1024

// AccessEnergyPJ returns the dynamic energy of one lookup in an SRAM array
// with the given entry count. Energy scales with the square root of
// capacity (bitline/wordline lengths each scale with sqrt of area), which
// matches the monolithic-vs-slice gap visible in Fig. 11(b).
func AccessEnergyPJ(entries int) float64 {
	if entries <= 0 {
		return 0
	}
	return referenceSRAMEnergyPJ * math.Sqrt(float64(entries)/referenceSRAMEntries)
}

// LeakagePowerMW returns the static power of an SRAM array with the given
// entry count, scaled linearly from the Fig. 9 slice (roughly half the
// published total power is leakage for dense SRAM in 28 nm).
func LeakagePowerMW(entries int) float64 {
	if entries <= 0 {
		return 0
	}
	return 0.5 * Fig9().SRAMPowerMW * float64(entries) / referenceSRAMEntries
}

// AreaMM2 returns the area of an SRAM array with the given entry count,
// scaled linearly from the Fig. 9 slice.
func AreaMM2(entries int) float64 {
	if entries <= 0 {
		return 0
	}
	return Fig9().SRAMAreaMM2 * float64(entries) / referenceSRAMEntries
}
