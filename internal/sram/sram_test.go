package sram

import (
	"testing"
	"testing/quick"
)

func TestAccessCyclesAnchors(t *testing.T) {
	// Published anchors from Fig. 3 and the text.
	if got := AccessCycles(ReferenceEntries); got != 9 {
		t.Fatalf("1536 entries = %d cycles, want 9", got)
	}
	if got := AccessCycles(32 * ReferenceEntries); got != 15 {
		t.Fatalf("32x = %d cycles, want 15", got)
	}
	if got := AccessCycles(ReferenceEntries / 2); got < 7 || got > 8 {
		t.Fatalf("0.5x = %d cycles, want 7-8", got)
	}
	if got := AccessCycles(64 * ReferenceEntries); got < 16 || got > 17 {
		t.Fatalf("64x = %d cycles, want 16-17", got)
	}
	// A 1024-entry Haswell private L2 TLB lands at the paper's 9-cycle
	// baseline (Section IV; Intel manuals: 7-10 cycles), as does the
	// area-normalized 920-entry NOCSTAR slice.
	if got := AccessCycles(1024); got != 9 {
		t.Fatalf("1024 entries = %d cycles, want 9", got)
	}
	if got := AccessCycles(920); got != 9 {
		t.Fatalf("920 entries = %d cycles, want 9", got)
	}
}

func TestAccessCyclesMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return AccessCycles(x) <= AccessCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessCyclesFloor(t *testing.T) {
	if got := AccessCycles(1); got < 2 {
		t.Fatalf("tiny array latency %d below floor", got)
	}
	if got := AccessCycles(0); got != 2 {
		t.Fatalf("0 entries = %d, want floor 2", got)
	}
	if got := AccessCycles(-5); got != 2 {
		t.Fatalf("negative entries = %d, want floor 2", got)
	}
}

func TestFig9Published(t *testing.T) {
	c := Fig9()
	if c.SwitchPowerMW != 0.43 || c.ArbiterPowerMW != 2.39 || c.SRAMPowerMW != 10.91 {
		t.Fatalf("power numbers drifted from Fig. 9: %+v", c)
	}
	if c.SwitchAreaMM2 != 0.0022 || c.ArbiterAreaMM2 != 0.0038 || c.SRAMAreaMM2 != 0.4646 {
		t.Fatalf("area numbers drifted from Fig. 9: %+v", c)
	}
}

func TestInterconnectAreaFraction(t *testing.T) {
	sw, both := Fig9().InterconnectAreaFraction()
	if sw >= 0.01 {
		t.Fatalf("switch-only fraction %.4f, paper claims <1%%", sw)
	}
	if both <= sw || both > 0.02 {
		t.Fatalf("switch+arbiter fraction %.4f out of plausible range", both)
	}
}

func TestEnergyScaling(t *testing.T) {
	small := AccessEnergyPJ(1024)
	big := AccessEnergyPJ(32 * 1024)
	if small <= 0 || big <= small {
		t.Fatalf("energy not increasing: %v vs %v", small, big)
	}
	// sqrt scaling: 32x capacity => ~5.66x energy.
	ratio := big / small
	if ratio < 5 || ratio > 6.5 {
		t.Fatalf("energy ratio %v, want ~5.66 (sqrt scaling)", ratio)
	}
	if AccessEnergyPJ(0) != 0 {
		t.Fatal("zero entries should cost nothing")
	}
}

func TestLeakageAndAreaLinear(t *testing.T) {
	if LeakagePowerMW(2048) <= LeakagePowerMW(1024) {
		t.Fatal("leakage not increasing with capacity")
	}
	if a := AreaMM2(1024); a != Fig9().SRAMAreaMM2 {
		t.Fatalf("1024-entry area = %v, want published %v", a, Fig9().SRAMAreaMM2)
	}
	if AreaMM2(-1) != 0 || LeakagePowerMW(0) != 0 {
		t.Fatal("non-positive entries should have zero cost")
	}
}

func TestEnergyMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return AccessEnergyPJ(x) <= AccessEnergyPJ(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
