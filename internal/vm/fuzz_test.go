package vm

import "testing"

// FuzzPageTable round-trips random Map/Unmap/DropEmptyPT/Walk sequences
// against a map-based shadow of the live leaf mappings. The virtual
// space is deliberately tiny (4 x 1G regions, 8 x 2M regions each,
// 8 x 4K pages each) so operations collide constantly: every walk must
// agree with the shadow, conflicting maps must be rejected exactly when
// the shadow predicts, and dropping an empty page-table page must never
// remove a live mapping.
func FuzzPageTable(f *testing.F) {
	// Seed corpus: map/walk round trips at each size, remaps, conflicts,
	// unmap-then-remap at a larger size via DropEmptyPT (the promotion
	// sequence), and interleavings across sibling regions.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x01, 0x20, 0x01, 0x20, 0x02, 0x20, 0x01, 0x24})
	f.Add([]byte{0x00, 0x01, 0x00, 0x02, 0x04, 0x01, 0x08, 0x01})
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x00, 0x40, 0x01, 0x45})
	f.Add([]byte{0x02, 0x33, 0x00, 0x33, 0x01, 0x33, 0x02, 0x33, 0x00, 0x77, 0x03, 0x12})
	f.Add([]byte{0x00, 0xff, 0x01, 0xff, 0x00, 0x80, 0x02, 0x80, 0x01, 0x81, 0x03, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		pt := NewPageTable(nil)
		type leaf struct {
			pa   PhysAddr
			size PageSize
		}
		shadow := map[VirtAddr]leaf{} // live leaves, keyed by page base
		pts := map[VirtAddr]bool{}    // 2M bases with a materialized leaf PT page
		pds := map[VirtAddr]bool{}    // 1G bases with a materialized PD page
		frames := uint64(0)

		// decode maps a selector byte onto the tiny address space.
		decode := func(b byte) VirtAddr {
			return VirtAddr(uint64(b&3)<<30 | uint64((b>>2)&7)<<21 | uint64((b>>5)&7)<<12)
		}
		// covering returns the shadow leaf covering va, if any.
		covering := func(va VirtAddr) (leaf, bool) {
			for _, s := range []PageSize{Page4K, Page2M, Page1G} {
				if l, ok := shadow[va.PageBase(s)]; ok && l.size == s {
					return l, true
				}
			}
			return leaf{}, false
		}
		// mapConflicts predicts whether Map(base, size) must fail: the
		// target is covered by a larger live leaf, or a page-table
		// subtree (possibly empty — Unmap never reclaims table pages)
		// occupies the slot the leaf PTE would use.
		mapConflicts := func(base VirtAddr, size PageSize) bool {
			for _, s := range []PageSize{Page2M, Page1G} {
				if s <= size {
					continue
				}
				if l, ok := shadow[base.PageBase(s)]; ok && l.size == s {
					return true
				}
			}
			switch size {
			case Page2M:
				return pts[base]
			case Page1G:
				return pds[base]
			}
			return false
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, sel := data[i], data[i+1]
			size := PageSize(op >> 4 % 3)
			va := decode(sel)
			base := va.PageBase(size)
			switch op & 3 {
			case 0: // Map
				frames++
				pa := PhysAddr(frames << size.Shift())
				err := pt.Map(base, pa, size)
				if conflicts := mapConflicts(base, size); (err == nil) == conflicts {
					t.Fatalf("op %d: Map(%#x, %s) err=%v, shadow predicts conflict=%v",
						i, uint64(base), size, err, conflicts)
				}
				if err == nil {
					shadow[base] = leaf{pa: pa, size: size}
					if size == Page4K {
						pts[base.PageBase(Page2M)] = true
					}
					if size != Page1G {
						pds[base.PageBase(Page1G)] = true
					}
				}
			case 1: // Unmap
				_, want := shadow[base]
				want = want && shadow[base].size == size
				if got := pt.Unmap(base, size); got != want {
					t.Fatalf("op %d: Unmap(%#x, %s) = %v, shadow has mapping: %v",
						i, uint64(base), size, got, want)
				}
				if want {
					delete(shadow, base)
				}
			case 2: // DropEmptyPT
				b2m := va.PageBase(Page2M)
				want := pts[b2m]
				for k, l := range shadow {
					if l.size == Page4K && k.PageBase(Page2M) == b2m {
						want = false // a live 4K leaf keeps the PT page
					}
				}
				if got := pt.DropEmptyPT(va); got != want {
					t.Fatalf("op %d: DropEmptyPT(%#x) = %v, shadow predicts %v",
						i, uint64(va), got, want)
				}
				if want {
					delete(pts, b2m)
				}
			}

			// Every live mapping still translates (DropEmptyPT and failed
			// maps must never disturb them), probed at a rotating offset.
			probe := decode(sel ^ data[i])
			res, ok := pt.Walk(probe)
			if l, want := covering(probe); want {
				off := PhysAddr(probe.Offset(l.size))
				if !ok || res.Size != l.size || res.PA != l.pa+off {
					t.Fatalf("op %d: Walk(%#x) = (%#x, %v, %v), shadow has (%#x, %v)",
						i, uint64(probe), uint64(res.PA), res.Size, ok, uint64(l.pa+off), l.size)
				}
			} else if ok {
				t.Fatalf("op %d: Walk(%#x) translated, shadow has no covering leaf", i, uint64(probe))
			}
		}

		// Final reconciliation: per-size mapped counts match the shadow.
		var want [3]uint64
		for _, l := range shadow {
			want[l.size]++
		}
		for _, s := range []PageSize{Page4K, Page2M, Page1G} {
			if got := pt.MappedCount(s); got != want[s] {
				t.Fatalf("MappedCount(%s) = %d, shadow has %d", s, got, want[s])
			}
		}
	})
}
