package vm

import "testing"

// TestPromote2MPartialRegion pins the documented behavior: promotion
// collapses whatever base pages are present into a fresh 2 MB extent —
// it does not demand-map absent pages first — and the invalidation list
// covers exactly the PTEs that existed.
func TestPromote2MPartialRegion(t *testing.T) {
	as := NewAddressSpace(5)
	base := VirtAddr(0x40000000)
	// A sparse region: 3 of 512 pages present, scattered.
	for _, i := range []int{0, 17, 511} {
		if !as.EnsureMapped(base+VirtAddr(i*4096), Page4K) {
			t.Fatalf("page %d not mapped", i)
		}
	}
	invs, err := as.Promote2M(base + 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 3 {
		t.Fatalf("invalidations = %d, want 3 (one per present PTE, none for absent pages)", len(invs))
	}
	// The whole region — including the 509 never-mapped pages — now
	// translates through the single superpage.
	pa2m, size, ok := as.Translate(base)
	if !ok || size != Page2M {
		t.Fatalf("base: ok=%v size=%v", ok, size)
	}
	for _, i := range []int{1, 16, 100, 510} {
		pa, size, ok := as.Translate(base + VirtAddr(i*4096))
		if !ok || size != Page2M || pa != pa2m+PhysAddr(i*4096) {
			t.Fatalf("page %d: ok=%v size=%v pa=%#x", i, ok, size, pa)
		}
	}
	// An entirely empty region promotes too (zero invalidations).
	invs, err = as.Promote2M(base + VirtAddr(Page2M.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 0 {
		t.Fatalf("empty-region promotion produced %d invalidations", len(invs))
	}
}

// TestPromote2MExtentCounter pins that next2M advances once per
// *successful* promotion, so every promotion lands on a distinct fresh
// extent and a failed Map cannot leak a counter increment.
func TestPromote2MExtentCounter(t *testing.T) {
	as := NewAddressSpace(6)
	base := VirtAddr(0x40000000)
	if _, err := as.Promote2M(base); err != nil {
		t.Fatal(err)
	}
	if as.next2M != 1 {
		t.Fatalf("next2M = %d after one promotion, want 1", as.next2M)
	}
	first, _, _ := as.Translate(base)

	// A promotion rejected up front (region already superpage-backed)
	// must not consume an extent.
	if _, err := as.Promote2M(base); err == nil {
		t.Fatal("double promotion accepted")
	}
	if as.next2M != 1 {
		t.Fatalf("next2M = %d after failed promotion, want 1 (counter leaked)", as.next2M)
	}

	// Demote and re-promote: a fresh extent, distinct from the first.
	if _, err := as.Demote2M(base); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Promote2M(base); err != nil {
		t.Fatal(err)
	}
	if as.next2M != 2 {
		t.Fatalf("next2M = %d after re-promotion, want 2", as.next2M)
	}
	second, _, _ := as.Translate(base)
	if first == second {
		t.Fatalf("re-promotion reused extent %#x", first)
	}
	// EnsureMapped(2M) draws from the same counter and must not collide.
	other := VirtAddr(0x40000000 + 4*Page2M.Bytes())
	as.EnsureMapped(other, Page2M)
	pa, _, _ := as.Translate(other)
	if pa == first || pa == second {
		t.Fatalf("EnsureMapped 2M extent %#x collides with a promotion extent", pa)
	}
}
