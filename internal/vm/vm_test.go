package vm

import (
	"testing"
	"testing/quick"
)

func TestPageSizeGeometry(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page2M.Bytes() != 2<<20 || Page1G.Bytes() != 1<<30 {
		t.Fatal("page sizes wrong")
	}
	va := VirtAddr(0x12345678)
	if va.VPN(Page4K) != 0x12345 {
		t.Fatalf("VPN = %#x", va.VPN(Page4K))
	}
	if va.PageBase(Page4K) != 0x12345000 {
		t.Fatalf("PageBase = %#x", va.PageBase(Page4K))
	}
	if va.Offset(Page4K) != 0x678 {
		t.Fatalf("Offset = %#x", va.Offset(Page4K))
	}
	if Page4K.String() != "4K" || Page2M.String() != "2M" || Page1G.String() != "1G" {
		t.Fatal("String() wrong")
	}
}

func TestMapWalkRoundTrip(t *testing.T) {
	pt := NewPageTable(nil)
	if err := pt.Map(0x7f0000400000, 0x10000000, Page4K); err != nil {
		t.Fatal(err)
	}
	pa, size, ok := pt.Translate(0x7f0000400abc)
	if !ok || size != Page4K || pa != 0x10000abc {
		t.Fatalf("translate = %#x %v %v", pa, size, ok)
	}
	if _, _, ok := pt.Translate(0x7f0000401000); ok {
		t.Fatal("adjacent page should be unmapped")
	}
}

func TestMapSuperpages(t *testing.T) {
	pt := NewPageTable(nil)
	if err := pt.Map(0x40000000, 0x80000000, Page2M); err != nil {
		t.Fatal(err)
	}
	pa, size, ok := pt.Translate(0x40000000 + 0x123456)
	if !ok || size != Page2M || pa != 0x80123456 {
		t.Fatalf("2M translate = %#x %v %v", pa, size, ok)
	}
	if err := pt.Map(0x80000000, 0x100000000, Page1G); err != nil {
		t.Fatal(err)
	}
	pa, size, ok = pt.Translate(0x80000000 + 0x3fffffff)
	if !ok || size != Page1G || pa != 0x100000000+0x3fffffff {
		t.Fatalf("1G translate = %#x %v %v", pa, size, ok)
	}
}

func TestMapAlignmentErrors(t *testing.T) {
	pt := NewPageTable(nil)
	if err := pt.Map(0x1001, 0x2000, Page4K); err == nil {
		t.Fatal("unaligned va accepted")
	}
	if err := pt.Map(0x1000, 0x2001, Page4K); err == nil {
		t.Fatal("unaligned pa accepted")
	}
	if err := pt.Map(0x200000, 0x1000, Page2M); err == nil {
		t.Fatal("unaligned 2M pa accepted")
	}
}

func TestMapConflicts(t *testing.T) {
	pt := NewPageTable(nil)
	if err := pt.Map(0x200000, 0x400000, Page2M); err != nil {
		t.Fatal(err)
	}
	// A 4K map under an existing 2M leaf must fail.
	if err := pt.Map(0x200000, 0x1000, Page4K); err == nil {
		t.Fatal("4K map under 2M leaf accepted")
	}
	// A 2M map over an existing 4K subtree must fail.
	if err := pt.Map(0x400000+4096, 0x1000, Page4K); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x400000, 0x800000, Page2M); err == nil {
		t.Fatal("2M leaf over 4K subtree accepted")
	}
}

func TestUnmap(t *testing.T) {
	pt := NewPageTable(nil)
	if err := pt.Map(0x5000, 0x9000, Page4K); err != nil {
		t.Fatal(err)
	}
	if pt.MappedCount(Page4K) != 1 {
		t.Fatalf("mapped count = %d", pt.MappedCount(Page4K))
	}
	if !pt.Unmap(0x5000, Page4K) {
		t.Fatal("unmap failed")
	}
	if pt.Unmap(0x5000, Page4K) {
		t.Fatal("double unmap succeeded")
	}
	if _, _, ok := pt.Translate(0x5000); ok {
		t.Fatal("still translates after unmap")
	}
	if pt.MappedCount(Page4K) != 0 {
		t.Fatalf("mapped count = %d after unmap", pt.MappedCount(Page4K))
	}
}

func TestWalkTrace(t *testing.T) {
	pt := NewPageTable(nil)
	if err := pt.Map(0x7000, 0x3000, Page4K); err != nil {
		t.Fatal(err)
	}
	res, ok := pt.Walk(0x7000)
	if !ok {
		t.Fatal("walk failed")
	}
	if res.Levels != 4 {
		t.Fatalf("4K walk levels = %d, want 4", res.Levels)
	}
	seen := map[PhysAddr]bool{}
	for i := 0; i < res.Levels; i++ {
		a := res.PTEAddrs[i]
		if a == 0 {
			t.Fatalf("level %d PTE address is zero", i)
		}
		if seen[a] {
			t.Fatalf("duplicate PTE address %#x", a)
		}
		seen[a] = true
	}
	// 2M walk is one level shorter.
	if err := pt.Map(0x40000000, 0x80000000, Page2M); err != nil {
		t.Fatal(err)
	}
	res, ok = pt.Walk(0x40000000)
	if !ok || res.Levels != 3 {
		t.Fatalf("2M walk levels = %d, want 3", res.Levels)
	}
}

func TestWalkMissTrace(t *testing.T) {
	pt := NewPageTable(nil)
	res, ok := pt.Walk(0x123456789000)
	if ok {
		t.Fatal("empty table translated")
	}
	if res.Levels != 1 {
		t.Fatalf("miss at root should record 1 level, got %d", res.Levels)
	}
}

// Property: walk(map(va)) returns the mapped pa for arbitrary va/frame at
// every page size.
func TestMapWalkProperty(t *testing.T) {
	f := func(vaRaw, frame uint64, sizeSel uint8) bool {
		size := PageSize(sizeSel % 3)
		va := VirtAddr(vaRaw & 0x0000_7fff_ffff_ffff).PageBase(size)
		pa := PhysAddr((frame % (1 << 20)) << size.Shift())
		pt := NewPageTable(nil)
		if err := pt.Map(va, pa, size); err != nil {
			return false
		}
		probe := va + VirtAddr(size.Bytes()/2)
		got, gotSize, ok := pt.Translate(probe)
		return ok && gotSize == size && got == pa+PhysAddr(size.Bytes()/2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceDemandMapping(t *testing.T) {
	as := NewAddressSpace(3)
	if !as.EnsureMapped(0x1000, Page4K) {
		t.Fatal("first EnsureMapped did not map")
	}
	if as.EnsureMapped(0x1000, Page4K) {
		t.Fatal("second EnsureMapped remapped")
	}
	pa, size, ok := as.Translate(0x1234)
	if !ok || size != Page4K {
		t.Fatalf("translate = %v %v", size, ok)
	}
	if pa == 0 {
		t.Fatal("zero physical address")
	}
}

func TestAddressSpacesDisjointPhysical(t *testing.T) {
	a, b := NewAddressSpace(1), NewAddressSpace(2)
	a.EnsureMapped(0x1000, Page4K)
	b.EnsureMapped(0x1000, Page4K)
	paA, _, _ := a.Translate(0x1000)
	paB, _, _ := b.Translate(0x1000)
	if paA == paB {
		t.Fatalf("two address spaces share physical frame %#x", paA)
	}
}

func TestPromote2M(t *testing.T) {
	as := NewAddressSpace(7)
	base := VirtAddr(0x40000000)
	// Pre-map 10 of the 512 pages.
	for i := 0; i < 10; i++ {
		as.EnsureMapped(base+VirtAddr(i*4096), Page4K)
	}
	invs, err := as.Promote2M(base + 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 10 {
		t.Fatalf("invalidations = %d, want 10 (one per present PTE)", len(invs))
	}
	for _, inv := range invs {
		if inv.Size != Page4K || inv.Ctx != 7 || inv.FullFlush {
			t.Fatalf("bad invalidation %+v", inv)
		}
	}
	// Every covered 4K page must now translate through the superpage.
	for i := 0; i < 512; i++ {
		_, size, ok := as.Translate(base + VirtAddr(i*4096))
		if !ok || size != Page2M {
			t.Fatalf("page %d: ok=%v size=%v", i, ok, size)
		}
	}
	// Promoting an already promoted region fails.
	if _, err := as.Promote2M(base); err == nil {
		t.Fatal("double promotion accepted")
	}
}

func TestDemote2M(t *testing.T) {
	as := NewAddressSpace(9)
	base := VirtAddr(0x80000000)
	if _, err := as.Promote2M(base); err != nil {
		t.Fatal(err)
	}
	pa2m, _, _ := as.Translate(base)
	invs, err := as.Demote2M(base + 0x5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 1 || invs[0].Size != Page2M {
		t.Fatalf("invs = %+v, want single 2M invalidation", invs)
	}
	// Demotion preserves the translation of every covered base page.
	for i := uint64(0); i < 512; i++ {
		pa, size, ok := as.Translate(base + VirtAddr(i*4096))
		if !ok || size != Page4K {
			t.Fatalf("page %d: ok=%v size=%v", i, ok, size)
		}
		if pa != pa2m+PhysAddr(i*4096) {
			t.Fatalf("page %d: pa %#x, want %#x", i, pa, pa2m+PhysAddr(i*4096))
		}
	}
	if _, err := as.Demote2M(base); err == nil {
		t.Fatal("double demotion accepted")
	}
}

// Property: promote-then-demote preserves the translation of every
// previously mapped base page's virtual address (the physical frames may
// move, but mappings must exist and be 4K again).
func TestPromoteDemoteInverseProperty(t *testing.T) {
	f := func(seed uint8) bool {
		as := NewAddressSpace(ContextID(seed))
		base := VirtAddr(0x40000000)
		for i := 0; i < int(seed%64)+1; i++ {
			as.EnsureMapped(base+VirtAddr(i*4096*3), Page4K)
		}
		if _, err := as.Promote2M(base); err != nil {
			return false
		}
		if _, err := as.Demote2M(base); err != nil {
			return false
		}
		for i := 0; i < 512; i++ {
			_, size, ok := as.Translate(base + VirtAddr(i*4096))
			if !ok || size != Page4K {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFullFlushInvalidation(t *testing.T) {
	as := NewAddressSpace(11)
	inv := as.FullFlushInvalidation()
	if !inv.FullFlush || inv.Ctx != 11 {
		t.Fatalf("inv = %+v", inv)
	}
}

func TestFrameAllocDistinct(t *testing.T) {
	a := NewFrameAlloc(100)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		f := a.Alloc()
		if seen[f] {
			t.Fatalf("frame %d handed out twice", f)
		}
		seen[f] = true
	}
	if a.Allocated(100) != 1000 {
		t.Fatalf("Allocated = %d", a.Allocated(100))
	}
}

func TestFrameAllocZeroStart(t *testing.T) {
	a := NewFrameAlloc(0)
	if a.Alloc() == 0 {
		t.Fatal("frame 0 must never be allocated")
	}
	var zero FrameAlloc
	if zero.Alloc() == 0 {
		t.Fatal("zero-value allocator handed out frame 0")
	}
}
