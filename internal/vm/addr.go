// Package vm is the virtual-memory substrate under the TLB studies: x86-64
// style addresses and page sizes, a 4-level radix page table, per-process
// address spaces with context IDs, a physical frame allocator, transparent
// 2 MB superpage promotion/demotion, and TLB shootdown (IPI) event
// generation. The paper's workloads run on Linux 4.14 with transparent
// superpages; this package is the stand-in for that OS behaviour.
package vm

import "fmt"

// VirtAddr is a virtual byte address.
type VirtAddr uint64

// PhysAddr is a physical byte address.
type PhysAddr uint64

// PageSize enumerates the x86-64 page sizes the TLBs must handle.
type PageSize uint8

const (
	// Page4K is a 4 KiB base page.
	Page4K PageSize = iota
	// Page2M is a 2 MiB superpage (PD-level leaf).
	Page2M
	// Page1G is a 1 GiB superpage (PDPT-level leaf).
	Page1G
)

// Shift returns log2 of the page size in bytes.
func (s PageSize) Shift() uint {
	switch s {
	case Page4K:
		return 12
	case Page2M:
		return 21
	case Page1G:
		return 30
	}
	panic(fmt.Sprintf("vm: invalid page size %d", s))
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return 1 << s.Shift() }

// String implements fmt.Stringer.
func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4K"
	case Page2M:
		return "2M"
	case Page1G:
		return "1G"
	}
	return fmt.Sprintf("PageSize(%d)", uint8(s))
}

// VPN returns the virtual page number of va at page size s.
func (va VirtAddr) VPN(s PageSize) uint64 { return uint64(va) >> s.Shift() }

// PageBase returns va rounded down to its page boundary at size s.
func (va VirtAddr) PageBase(s PageSize) VirtAddr {
	return VirtAddr(uint64(va) &^ (s.Bytes() - 1))
}

// Offset returns the within-page offset of va at size s.
func (va VirtAddr) Offset(s PageSize) uint64 { return uint64(va) & (s.Bytes() - 1) }

// FrameSize is the size of one physical frame / page-table page.
const FrameSize = 4096

// ContextID identifies an address space (an ASID / PCID analogue). TLB
// entries are tagged with it so multiprogrammed workloads can coexist.
type ContextID uint16
