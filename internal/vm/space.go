package vm

import "fmt"

// AddressSpace is one process: a context ID plus a page table and the
// physical ranges its pages are allocated from. Frame ranges for distinct
// sizes are disjoint by construction so superpage allocation never has
// alignment conflicts with base pages.
type AddressSpace struct {
	Ctx ContextID
	PT  *PageTable

	frames *FrameAlloc // 4K data frames
	tables *FrameAlloc // page-table pages
	next2M uint64      // 2M page counter
	next1G uint64      // 1G page counter
	region uint64      // per-space physical region selector

	// parallelSafe switches demand-mapping to order-independent frame
	// assignment (see SetParallelSafe).
	parallelSafe bool
}

// Physical layout: bits 56-48 select the address space's region; within a
// region, bit 46 set marks 2M-page frames and bit 47 marks 1G-page frames,
// keeping all three allocators trivially disjoint.
const (
	regionShift = 48
	flag2M      = 1 << 46
	flag1G      = 1 << 47
)

// NewAddressSpace returns an empty address space with the given context
// ID. Each context gets a disjoint physical region derived from its ID.
func NewAddressSpace(ctx ContextID) *AddressSpace {
	region := uint64(ctx) + 1
	tableAlloc := NewFrameAlloc(region<<(regionShift-12) | 1)
	return &AddressSpace{
		Ctx:    ctx,
		PT:     NewPageTable(tableAlloc),
		frames: NewFrameAlloc(region<<(regionShift-12) | 1<<30),
		tables: tableAlloc,
		region: region,
	}
}

// Deterministic (order-independent) physical sub-spaces, used in
// parallel-safe mode. Each is tagged with its own high bit pattern below
// regionShift so the hashed ranges stay disjoint from each other and
// from every bump allocator's range (table pages from ~0, 4K data from
// bit 42, 2M extents at bit 46, 1G extents at bit 47).
const (
	detData4K  = 1 << 45       // | hash<<12, hash < 2^32
	detTable   = 1 << 44       // | hash<<12, hash < 2^31
	detData2M  = 1<<45 | 1<<44 // | hash<<21, hash < 2^23
	det4KMask  = 1<<32 - 1
	detTblMask = 1<<31 - 1
	det2MMask  = 1<<23 - 1
)

// detMix is a 64-bit finalizer (splitmix64) used to scatter
// deterministic frame numbers.
func detMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SetParallelSafe switches the space to order-independent demand
// mapping, for runtimes that map pages concurrently from parallel
// simulation regions: data and page-table frames become pure functions
// of the virtual page they back (instead of bump-allocated, where the
// numbering — and therefore PTE addresses and downstream cache behavior
// — would depend on arrival order), and the page table's internal walk
// cache is disabled so Walk and Translate are pure reads. Callers remain
// responsible for mutual exclusion between Map and concurrent walks.
// Hashed frames may rarely collide (two pages sharing a frame is a
// benign cache-aliasing artifact); they never collide with the bump
// allocators' ranges, so superpage promotion keeps working.
func (as *AddressSpace) SetParallelSafe() {
	as.parallelSafe = true
	as.PT.noWalkCache = true
	region := as.region
	as.PT.frameFn = func(level int, va VirtAddr) uint64 {
		prefix := uint64(va) >> levelShift(level)
		return region<<(regionShift-12) | (detTable >> 12) |
			detMix(prefix*ptLevels+uint64(level))&detTblMask
	}
}

// EnsureMapped demand-maps the page of the given size covering va, if no
// mapping (of any size) already covers it. It reports whether a new
// mapping was created.
func (as *AddressSpace) EnsureMapped(va VirtAddr, s PageSize) bool {
	if _, _, ok := as.PT.Translate(va); ok {
		return false
	}
	base := va.PageBase(s)
	var pa PhysAddr
	switch {
	case as.parallelSafe && s == Page4K:
		pa = PhysAddr(as.region<<regionShift | detData4K |
			(detMix(uint64(base)>>12)&det4KMask)<<12)
	case as.parallelSafe && s == Page2M:
		pa = PhysAddr(as.region<<regionShift | detData2M |
			(detMix(uint64(base)>>21)&det2MMask)<<21)
	case s == Page4K:
		pa = PhysAddr(as.frames.Alloc() << 12)
	case s == Page2M:
		as.next2M++
		pa = PhysAddr(as.region<<regionShift | flag2M | as.next2M<<21)
	case s == Page1G:
		as.next1G++
		pa = PhysAddr(as.region<<regionShift | flag1G | as.next1G<<30)
	}
	if err := as.PT.Map(base, pa, s); err != nil {
		// A conflicting larger/smaller mapping raced in; treat as mapped.
		return false
	}
	return true
}

// Translate walks the page table for va.
func (as *AddressSpace) Translate(va VirtAddr) (PhysAddr, PageSize, bool) {
	return as.PT.Translate(va)
}

// Invalidation is one TLB shootdown unit: invalidate a single page of a
// context, or flush everything for the context (FullFlush).
type Invalidation struct {
	Ctx       ContextID
	VPN       uint64 // page number at Size granularity (ignored for FullFlush)
	Size      PageSize
	FullFlush bool
}

// Promote2M collapses the 2 MB region containing va into one superpage
// backed by a freshly allocated 2 MB extent (the OS copies whatever base
// pages were present into it; absent pages are simply covered by the new
// mapping — no per-page demand-mapping happens first). It returns the
// shootdown invalidations the OS must broadcast: one per previously
// present 4 KB PTE, plus none for the new mapping itself.
func (as *AddressSpace) Promote2M(va VirtAddr) ([]Invalidation, error) {
	base := va.PageBase(Page2M)
	if _, size, ok := as.PT.Translate(base); ok && size != Page4K {
		return nil, fmt.Errorf("vm: Promote2M: va %#x already backed by %s page", uint64(va), size)
	}
	var invs []Invalidation
	for i := uint64(0); i < 512; i++ {
		p := base + VirtAddr(i*Page4K.Bytes())
		if as.PT.Unmap(p, Page4K) {
			invs = append(invs, Invalidation{Ctx: as.Ctx, VPN: p.VPN(Page4K), Size: Page4K})
		}
	}
	as.PT.DropEmptyPT(base)
	pa := PhysAddr(as.region<<regionShift | flag2M | (as.next2M+1)<<21)
	if err := as.PT.Map(base, pa, Page2M); err != nil {
		return invs, fmt.Errorf("vm: Promote2M: %w", err)
	}
	as.next2M++ // counted only once the extent is actually mapped
	return invs, nil
}

// Demote2M splits the 2 MB superpage containing va back into 512 base
// pages. It returns the single invalidation for the superpage entry.
func (as *AddressSpace) Demote2M(va VirtAddr) ([]Invalidation, error) {
	base := va.PageBase(Page2M)
	pa, size, ok := as.PT.Translate(base)
	if !ok || size != Page2M {
		return nil, fmt.Errorf("vm: Demote2M: va %#x not backed by a 2M page", uint64(va))
	}
	if !as.PT.Unmap(base, Page2M) {
		return nil, fmt.Errorf("vm: Demote2M: unmap failed for va %#x", uint64(va))
	}
	invs := []Invalidation{{Ctx: as.Ctx, VPN: base.VPN(Page2M), Size: Page2M}}
	for i := uint64(0); i < 512; i++ {
		p := base + VirtAddr(i*Page4K.Bytes())
		sub := PhysAddr(uint64(pa) + i*Page4K.Bytes())
		if err := as.PT.Map(p, sub, Page4K); err != nil {
			return invs, fmt.Errorf("vm: Demote2M: remap: %w", err)
		}
	}
	return invs, nil
}

// FullFlushInvalidation returns the invalidation representing an x86
// context switch, which flushes all of this context's translations from
// shared TLB structures.
func (as *AddressSpace) FullFlushInvalidation() Invalidation {
	return Invalidation{Ctx: as.Ctx, FullFlush: true}
}

// Clone deep-copies the address space: the page table, both frame
// allocators, and the superpage counters. The clone and the original
// evolve independently but deterministically identically under identical
// operation sequences — the basis of warm-state checkpointing, where one
// warmed space is cloned into many measurement runs.
func (as *AddressSpace) Clone() *AddressSpace {
	tables := &FrameAlloc{next: as.tables.next}
	c := &AddressSpace{
		Ctx:    as.Ctx,
		PT:     as.PT.Clone(tables),
		frames: &FrameAlloc{next: as.frames.next},
		tables: tables,
		next2M: as.next2M,
		next1G: as.next1G,
		region: as.region,
	}
	if as.parallelSafe {
		c.SetParallelSafe()
	}
	return c
}
